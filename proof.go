// Package proof is a from-scratch Go reproduction of PRoof (ICPP 2024):
// a comprehensive hierarchical profiling framework for deep neural
// networks with roofline analysis.
//
// PRoof profiles a DNN model on a (simulated) inference runtime and
// hardware platform, maps the runtime's optimized backend layers back to
// the original model-design layers, and performs end-to-end and
// layer-wise roofline analysis — either with analytically predicted FLOP
// and memory-access metrics (fast, platform-independent) or with
// (simulated) hardware-counter measurements.
//
// Quick start:
//
//	report, err := proof.Profile(proof.Options{
//		Model:    "resnet-50",
//		Platform: "a100",
//		Batch:    128,
//	})
//	if err != nil { ... }
//	proof.WriteText(os.Stdout, report, 15)
//
// The package re-exports the stable API surface; the implementation
// lives under internal/ (graph IR, model zoo, analysis representations,
// simulated runtimes and hardware, roofline analysis, power tuning,
// data viewer).
package proof

import (
	"context"
	"io"
	"strings"

	"proof/internal/advisor"
	"proof/internal/core"
	"proof/internal/dataviewer"
	"proof/internal/distributed"
	"proof/internal/graph"
	"proof/internal/graphops"
	"proof/internal/hardware"
	"proof/internal/hardware/characterize"
	"proof/internal/memo"
	"proof/internal/modelfmt"
	"proof/internal/models"
	"proof/internal/obs"
	"proof/internal/onnx"
	"proof/internal/power"
	"proof/internal/profsession"
	"proof/internal/roofline"
	"proof/internal/server"
)

// Options configures one profiling run. See core.Options.
type Options = core.Options

// Report is a complete profiling result.
type Report = core.Report

// LayerReport is the per-backend-layer result.
type LayerReport = core.LayerReport

// Mode selects predicted vs measured metrics.
type Mode = core.Mode

// Metric modes.
const (
	ModePredicted = core.ModePredicted
	ModeMeasured  = core.ModeMeasured
)

// ModelInfo describes a zoo model.
type ModelInfo = models.Info

// Platform describes a hardware platform.
type Platform = hardware.Platform

// Clocks is a DVFS clock configuration.
type Clocks = hardware.Clocks

// Graph is the model intermediate representation.
type Graph = graph.Graph

// DataType is a tensor element type.
type DataType = graph.DataType

// Tensor element types.
const (
	Float32 = graph.Float32
	Float16 = graph.Float16
	Int8    = graph.Int8
)

// RooflineModel is a set of roofline ceilings.
type RooflineModel = roofline.Model

// RooflinePoint is one roofline chart point.
type RooflinePoint = roofline.Point

// Profile runs the full PRoof pipeline: build → optimize on the backend
// → profile → layer mapping → metrics → roofline analysis.
func Profile(opts Options) (*Report, error) { return core.Profile(opts) }

// ProfileCtx is Profile with cancellation: ctx is checked between
// pipeline stages, so an abandoned request (Ctrl-C, timed-out service
// call) stops doing work at the next stage boundary.
func ProfileCtx(ctx context.Context, opts Options) (*Report, error) {
	return core.ProfileCtx(ctx, opts)
}

// Session is a cached, deduplicated profiling front-end: repeated
// Profile calls with an identical configuration are served from a
// content-addressed LRU report cache, and concurrent identical requests
// share one pipeline execution. See NewSession.
type Session = profsession.Session

// SessionStats is a snapshot of a Session's hit/miss/eviction/in-flight
// counters.
type SessionStats = profsession.Stats

// NewSession creates a profiling session with the given report-cache
// capacity (<= 0 selects the default of 256 reports).
func NewSession(capacity int) *Session { return profsession.New(capacity) }

// FingerprintOptions returns the canonical content-addressed cache key
// of a profiling configuration — the identity a Session caches under.
func FingerprintOptions(opts Options) (string, error) { return profsession.Fingerprint(opts) }

// CacheOutcome reports how a Session served one request: "hit", "miss"
// or "dedup".
type CacheOutcome = profsession.Outcome

// MemoStore is a layer-unit memo store: per-layer profiling results
// keyed by canonical layer signature (op type, attributes, tensor
// shapes/dtypes, batch, mode and platform descriptor hash), shared
// across models, platforms and batch sizes. See internal/memo.
type MemoStore = memo.Store

// MemoStats is a snapshot of a MemoStore's hit/miss/eviction counters.
type MemoStats = memo.Stats

// NewMemoStore creates a layer-unit memo store with the given unit
// capacity (<= 0 selects the default of 16384 units).
func NewMemoStore(capacity int) *MemoStore {
	if capacity <= 0 {
		capacity = memo.DefaultUnitCapacity
	}
	return memo.NewStore(memo.StoreConfig{UnitCapacity: capacity})
}

// NewMemoSession creates a profiling session whose cache-miss
// executions share the given layer-unit memo store: structurally
// identical layers across requests, sweeps and batch grids are
// profiled once. A nil store yields a plain session.
func NewMemoSession(capacity int, st *MemoStore) *Session {
	return profsession.NewWithConfig(profsession.Config{Capacity: capacity, Memo: st})
}

// Server is the proofd HTTP profiling service (JSON API over a shared
// Session, admission control, request timeouts, graceful drain). See
// cmd/proofd and NewServer.
type Server = server.Server

// ServerConfig tunes a Server; the zero value selects serving-sane
// defaults.
type ServerConfig = server.Config

// NewServer constructs the proofd HTTP service. Serve it with
// (*Server).ListenAndServe(ctx, addr); cancelling ctx starts a graceful
// drain.
func NewServer(cfg ServerConfig) *Server { return server.New(cfg) }

// Tracer records the nested spans of one traced profiling run
// (pipeline stages, backend build internals, sweep fan-out workers).
// Install it with WithTracer; a context without a tracer profiles with
// zero overhead.
type Tracer = obs.Tracer

// Trace is a snapshot of a Tracer's finished spans; WriteChrome
// exports it in the Chrome trace-event format for Perfetto /
// chrome://tracing.
type Trace = obs.Trace

// NewTracer creates an enabled tracer; name labels the whole trace.
func NewTracer(name string) *Tracer { return obs.NewTracer(name) }

// WithTracer returns a context that records pipeline spans into t.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	return obs.WithTracer(ctx, t)
}

// MetricsRegistry is the shared counters/gauges/histograms registry
// (Prometheus text exposition) used by proofd and the CLIs.
type MetricsRegistry = obs.Registry

// NewMetricsRegistry creates an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// Models lists the model zoo (all Table 3 models plus the peak test).
func Models() []ModelInfo { return models.List() }

// BuildModel constructs a zoo model graph at batch 1.
func BuildModel(key string) (*Graph, error) { return models.Build(key) }

// Platforms lists the evaluation hardware platforms (Table 2).
func Platforms() []*Platform { return hardware.List() }

// LookupPlatform returns a platform by key.
func LookupPlatform(key string) (*Platform, error) { return hardware.Get(key) }

// SaveModel writes a model graph to the JSON model format.
func SaveModel(g *Graph, w io.Writer) error { return modelfmt.Save(g, w) }

// LoadModel reads a model graph from the JSON model format.
func LoadModel(r io.Reader) (*Graph, error) { return modelfmt.Load(r) }

// LoadModelFile reads a model graph from a file path. Files ending in
// ".onnx" are parsed as ONNX protobuf; everything else as the JSON
// model format.
func LoadModelFile(path string) (*Graph, error) {
	if strings.HasSuffix(path, ".onnx") {
		return onnx.LoadFile(path)
	}
	return modelfmt.LoadFile(path)
}

// LoadONNX parses an ONNX model (protobuf ModelProto) from r.
func LoadONNX(r io.Reader) (*Graph, error) { return onnx.Load(r) }

// ExportONNX serializes a graph as ONNX protobuf bytes (structural
// export: weight payloads are omitted, small integer constants kept).
func ExportONNX(g *Graph) ([]byte, error) { return onnx.Export(g) }

// SaveModelFile writes a model graph to a path, choosing ONNX protobuf
// for ".onnx" and the JSON format otherwise.
func SaveModelFile(g *Graph, path string) error {
	if strings.HasSuffix(path, ".onnx") {
		return onnx.SaveFile(g, path)
	}
	return modelfmt.SaveFile(g, path)
}

// WriteText renders a report as text (summary, category shares, top
// layers).
func WriteText(w io.Writer, r *Report, topN int) { dataviewer.WriteText(w, r, topN) }

// WriteFullStackTrace renders the Figure 3 hierarchy: model design
// layer(s) -> backend layer -> kernels, with attributed latencies.
func WriteFullStackTrace(w io.Writer, r *Report, maxLayers int) {
	dataviewer.WriteFullStackTrace(w, r, maxLayers)
}

// AttributeKernel maps a kernel name back to the model-design layers
// responsible for it (the upward Figure 3 mapping).
func AttributeKernel(r *Report, kernelName string) (modelLayers []string, backendLayer string, ok bool) {
	return dataviewer.AttributeKernel(r, kernelName)
}

// OptimizeStats summarizes a graph-optimization run.
type OptimizeStats = graphops.OptimizeStats

// OptimizeGraph applies runtime-style cleanup passes in place: identity
// elimination, shape-chain constant folding, dead-node elimination.
func OptimizeGraph(g *Graph) (OptimizeStats, error) { return graphops.Optimize(g) }

// QuantizeInt8 converts a float model to the int8 deployment form with
// explicit QuantizeLinear/DequantizeLinear boundary nodes.
func QuantizeInt8(g *Graph) (int, error) { return graphops.QuantizeInt8(g) }

// BatchPoint is one point of a batch-size sweep.
type BatchPoint = core.BatchPoint

// PlatformResult is one row of a cross-platform sweep.
type PlatformResult = core.PlatformResult

// PlatformSweep profiles a model on every platform at its default
// configuration and ranks the results by throughput — the deployment
// question behind Figure 4.
func PlatformSweep(model string, mode Mode) ([]PlatformResult, error) {
	return core.PlatformSweep(model, mode)
}

// PlatformSweepCtx is PlatformSweep with cancellation; when sess is
// non-nil the per-platform profiling points are served through its
// cache, so repeated sweeps over overlapping configurations are cheap.
func PlatformSweepCtx(ctx context.Context, model string, mode Mode, sess *Session) ([]PlatformResult, error) {
	if sess != nil {
		return core.PlatformSweepWith(ctx, model, mode, sess.ProfileCtx)
	}
	return core.PlatformSweepCtx(ctx, model, mode)
}

// RunStats aggregates repeated profiling runs.
type RunStats = core.RunStats

// ProfileRuns profiles the same configuration several times with
// different jitter seeds and reports latency statistics (best-of-N).
func ProfileRuns(opts Options, runs int) (*RunStats, error) { return core.ProfileRuns(opts, runs) }

// ProfileRunsCtx is ProfileRuns with cancellation; when sess is
// non-nil the per-seed runs are served through its cache, so a repeated
// best-of-N over the same base configuration is fully cache-served.
func ProfileRunsCtx(ctx context.Context, opts Options, runs int, sess *Session) (*RunStats, error) {
	if sess != nil {
		return core.ProfileRunsWith(ctx, opts, runs, sess.ProfileCtx)
	}
	return core.ProfileRunsCtx(ctx, opts, runs)
}

// OptimalBatch sweeps batch sizes and returns the throughput-optimal
// one (how the paper picks the Table 5 batch sizes). nil candidates =
// powers of two up to 2048.
func OptimalBatch(opts Options, candidates []int) (int, []BatchPoint, error) {
	return core.OptimalBatch(opts, candidates)
}

// OptimalBatchCtx is OptimalBatch with cancellation; when sess is
// non-nil the batch points are served through its cache.
func OptimalBatchCtx(ctx context.Context, opts Options, candidates []int, sess *Session) (int, []BatchPoint, error) {
	if sess != nil {
		return core.OptimalBatchWith(ctx, opts, candidates, sess.ProfileCtx)
	}
	return core.OptimalBatchCtx(ctx, opts, candidates)
}

// DistributedOptions configures a data-parallel profiling run (§5
// future work: adapting PRoof to distributed environments).
type DistributedOptions = distributed.Options

// DistributedResult is a data-parallel profiling result.
type DistributedResult = distributed.Result

// ScalingPoint is one point of a device-scaling curve.
type ScalingPoint = distributed.ScalingPoint

// ProfileDistributed simulates data-parallel inference of a global
// batch across N identical devices.
func ProfileDistributed(opts DistributedOptions) (*DistributedResult, error) {
	return distributed.Profile(opts)
}

// DistributedScalingCurve sweeps device counts and reports throughput
// and scaling efficiency.
func DistributedScalingCurve(opts DistributedOptions, deviceCounts []int) ([]ScalingPoint, error) {
	return distributed.ScalingCurve(opts, deviceCounts)
}

// RenderHTML renders a report as a self-contained HTML page with SVG
// roofline charts.
func RenderHTML(r *Report) string { return dataviewer.ReportHTML(r) }

// WriteCSV exports the per-layer results as CSV.
func WriteCSV(w io.Writer, r *Report) error { return dataviewer.WriteCSV(w, r) }

// WriteChromeTrace exports the profiled timeline in the Chrome
// trace-event format for chrome://tracing / Perfetto.
func WriteChromeTrace(w io.Writer, r *Report) error { return dataviewer.WriteChromeTrace(w, r) }

// CompareReports renders a side-by-side summary of two reports.
func CompareReports(w io.Writer, label1 string, r1 *Report, label2 string, r2 *Report) {
	dataviewer.CompareReports(w, label1, r1, label2, r2)
}

// RooflineSVG renders a roofline chart for arbitrary points.
func RooflineSVG(m RooflineModel, points []RooflinePoint, title string) string {
	return dataviewer.RooflineSVG(m, points, dataviewer.ChartOptions{Title: title})
}

// ParseDataType converts a data type name ("fp16", "int8", ...).
func ParseDataType(s string) (DataType, error) { return graph.ParseDataType(s) }

// Finding is one advisor finding.
type Finding = advisor.Finding

// Advise turns a report into optimization guidance, automating the
// paper's §4.3-§4.6 insights (memory-bound models, depth-wise
// convolutions, data-movement-dominated latency, overhead-bound
// batches, roofline headroom).
func Advise(r *Report) []Finding { return advisor.Analyze(r) }

// WriteFindings renders advisor findings as text.
func WriteFindings(w io.Writer, findings []Finding) { advisor.WriteFindings(w, findings) }

// PowerProfile is an nvpmodel-style clock/power profile.
type PowerProfile = power.Profile

// PowerResult is a workload evaluation under a power profile.
type PowerResult = power.WorkloadResult

// TuneResult is the outcome of the clock-tuning workflow (§4.6).
type TuneResult = power.TuneResult

// PeakResult is an achieved roofline peak measurement.
type PeakResult = roofline.PeakResult

// StockPowerProfiles returns the platform's built-in nvpmodel profiles
// (Jetson Orin NX: MAXN, 15W, 25W).
func StockPowerProfiles() []PowerProfile { return power.StockProfiles() }

// EvaluatePowerProfile profiles a workload under a clock profile and
// returns latency and power.
func EvaluatePowerProfile(platform, model string, batch int, dt DataType, p PowerProfile) (PowerResult, error) {
	return power.EvaluateProfile(platform, model, batch, dt, p)
}

// TuneClocks runs the §4.6 tuning workflow: pick the memory clock via
// roofline bandwidth-line analysis, then binary-search the GPU clock
// under the power budget.
func TuneClocks(platform, model string, batch int, dt DataType, budgetW, affectedThreshold float64) (*TuneResult, error) {
	return power.Tune(platform, model, batch, dt, budgetW, affectedThreshold)
}

// MeasurePeak is the context-free convenience form of MeasurePeakCtx.
func MeasurePeak(platform string, dt DataType, clk Clocks) (PeakResult, error) {
	return MeasurePeakCtx(context.Background(), platform, dt, clk)
}

// MeasurePeakCtx measures the achieved roofline peak of a platform
// with the §4.6 pseudo model (MatMul and memory-copy operators),
// honoring ctx cancellation between pseudo-model stages.
func MeasurePeakCtx(ctx context.Context, platform string, dt DataType, clk Clocks) (PeakResult, error) {
	plat, err := hardware.Get(platform)
	if err != nil {
		return PeakResult{}, err
	}
	return roofline.MeasurePeak(ctx, plat, dt, clk, 1)
}

// Calibration is the measured characterization of one platform's
// achievable ceilings (see internal/hardware/characterize).
type Calibration = hardware.Calibration

// CalibrationFile is the on-disk calibration.json format.
type CalibrationFile = hardware.CalibrationFile

// CharacterizeOptions tunes a characterization run.
type CharacterizeOptions = characterize.Options

// CharacterizeResult is the per-platform characterization outcome.
type CharacterizeResult = characterize.Result

// CharacterizePlatform runs the characterization protocol — the
// kernel-launch ladder, strided-copy sweep and MatMul ladder that
// derive the platform's achievable ceilings from micro-benchmarks run
// through its backend — against one platform.
func CharacterizePlatform(ctx context.Context, platform string, opts CharacterizeOptions) (*CharacterizeResult, error) {
	plat, err := hardware.Get(platform)
	if err != nil {
		return nil, err
	}
	return characterize.Platform(ctx, plat, opts)
}

// CharacterizeAll characterizes every platform and returns the
// calibration file `proof characterize` writes.
func CharacterizeAll(ctx context.Context, opts CharacterizeOptions) (*CalibrationFile, []*CharacterizeResult, error) {
	return characterize.All(ctx, opts)
}
