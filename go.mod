module proof

go 1.22
