package core

import (
	"encoding/json"
	"math"
	"testing"

	"proof/internal/graph"
	"proof/internal/hardware"
)

func TestProfileResNetPredicted(t *testing.T) {
	r, err := Profile(Options{Model: "resnet-50", Platform: "a100", Batch: 32})
	if err != nil {
		t.Fatal(err)
	}
	if r.Mode != ModePredicted {
		t.Errorf("default mode = %s", r.Mode)
	}
	if r.Backend != "trtsim" || r.DType != "fp16" {
		t.Errorf("platform defaults: backend=%s dtype=%s", r.Backend, r.DType)
	}
	if r.TotalLatency <= 0 || r.Throughput <= 0 {
		t.Error("latency/throughput must be positive")
	}
	if r.EndToEnd.FLOPS <= 0 || r.EndToEnd.AI <= 0 {
		t.Error("end-to-end point incomplete")
	}
	if r.EndToEnd.FLOPS > r.Roofline.PeakFLOPS*1.05 {
		t.Errorf("attained FLOP/s %.2e exceeds ceiling %.2e", r.EndToEnd.FLOPS, r.Roofline.PeakFLOPS)
	}
	if len(r.Layers) == 0 {
		t.Fatal("no layers")
	}
	var share float64
	for _, l := range r.Layers {
		share += l.Point.Share
		if !l.IsReformat && len(l.OriginalNodes) == 0 {
			t.Errorf("layer %q has no original-node mapping", l.Name)
		}
		if l.Category == "" {
			t.Errorf("layer %q has no category", l.Name)
		}
	}
	if math.Abs(share-1) > 1e-6 {
		t.Errorf("layer shares sum to %v", share)
	}
	if r.ProfilingOverhead != 0 {
		t.Error("predicted mode must not report profiling overhead")
	}
}

func TestProfileMeasuredMode(t *testing.T) {
	pred, err := Profile(Options{Model: "resnet-50", Platform: "a100", Batch: 8})
	if err != nil {
		t.Fatal(err)
	}
	meas, err := Profile(Options{Model: "resnet-50", Platform: "a100", Batch: 8, Mode: ModeMeasured})
	if err != nil {
		t.Fatal(err)
	}
	if meas.ProfilingOverhead <= 0 {
		t.Error("measured mode must report replay overhead")
	}
	// Table 4: analytical and corrected measured FLOP agree within
	// ~25% for ResNet-50 (the paper reports -2%).
	ratio := float64(pred.EndToEnd.FLOP) / float64(meas.EndToEnd.FLOP)
	if ratio < 0.75 || ratio > 1.25 {
		t.Errorf("predicted/measured FLOP = %.3f", ratio)
	}
	// Memory agreement within ~15% (paper reports ~1%; our fused
	// prediction vs counter deviation stays close).
	mratio := float64(pred.EndToEnd.Bytes) / float64(meas.EndToEnd.Bytes)
	if mratio < 0.80 || mratio > 1.20 {
		t.Errorf("predicted/measured bytes = %.3f", mratio)
	}
}

func TestProfileCustomGraph(t *testing.T) {
	g := graph.New("custom")
	g.AddTensor(&graph.Tensor{Name: "x", DType: graph.Float32, Shape: graph.Shape{1, 8, 32, 32}})
	g.AddTensor(&graph.Tensor{Name: "w", DType: graph.Float32, Shape: graph.Shape{16, 8, 3, 3}, Param: true})
	g.AddTensor(&graph.Tensor{Name: "c", DType: graph.Float32})
	g.AddTensor(&graph.Tensor{Name: "y", DType: graph.Float32})
	g.AddNode(&graph.Node{Name: "conv", OpType: "Conv", Inputs: []string{"x", "w"}, Outputs: []string{"c"},
		Attrs: graph.Attrs{"pads": graph.IntsAttr(1, 1, 1, 1), "kernel_shape": graph.IntsAttr(3, 3)}})
	g.AddNode(&graph.Node{Name: "relu", OpType: "Relu", Inputs: []string{"c"}, Outputs: []string{"y"}})
	g.Inputs = []string{"x"}
	g.Outputs = []string{"y"}

	r, err := Profile(Options{Graph: g, Platform: "rpi4b", Batch: 2})
	if err != nil {
		t.Fatal(err)
	}
	if r.Model != "custom" || r.Backend != "ortsim" {
		t.Errorf("model=%s backend=%s", r.Model, r.Backend)
	}
}

func TestNPUModelSupportGate(t *testing.T) {
	if _, err := Profile(Options{Model: "vit-t", Platform: "npu3720"}); err == nil {
		t.Error("NPU should refuse transformer models (as in §4.3)")
	}
	if _, err := Profile(Options{Model: "vit-t", Platform: "npu3720", IgnoreSupport: true, Batch: 1}); err != nil {
		t.Errorf("IgnoreSupport should force the run: %v", err)
	}
	if _, err := Profile(Options{Model: "resnet-50", Platform: "npu3720"}); err != nil {
		t.Errorf("NPU should run CNNs: %v", err)
	}
}

func TestProfileErrors(t *testing.T) {
	if _, err := Profile(Options{Model: "nope", Platform: "a100"}); err == nil {
		t.Error("unknown model must error")
	}
	if _, err := Profile(Options{Model: "resnet-50", Platform: "h100"}); err == nil {
		t.Error("unknown platform must error")
	}
	if _, err := Profile(Options{Model: "resnet-50", Platform: "a100", Backend: "tvm"}); err == nil {
		t.Error("unknown backend must error")
	}
}

func TestBatchAffectsThroughputAndLatency(t *testing.T) {
	r1, err := Profile(Options{Model: "resnet-50", Platform: "a100", Batch: 1})
	if err != nil {
		t.Fatal(err)
	}
	r128, err := Profile(Options{Model: "resnet-50", Platform: "a100", Batch: 128})
	if err != nil {
		t.Fatal(err)
	}
	if r128.TotalLatency <= r1.TotalLatency {
		t.Error("larger batch must take longer per inference")
	}
	if r128.Throughput <= r1.Throughput {
		t.Error("larger batch must raise throughput on a data-center GPU")
	}
	if r128.EndToEnd.FLOPS <= r1.EndToEnd.FLOPS {
		t.Error("larger batch must raise attained FLOP/s")
	}
}

func TestOrinClockOptionsAffectLatency(t *testing.T) {
	fast, err := Profile(Options{Model: "efficientnetv2-t", Platform: "orin-nx", Batch: 16})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := Profile(Options{Model: "efficientnetv2-t", Platform: "orin-nx", Batch: 16,
		Clocks: clocksFor(t, 510, 665)})
	if err != nil {
		t.Fatal(err)
	}
	if slow.TotalLatency <= fast.TotalLatency {
		t.Error("down-clocking must slow inference")
	}
	if fast.PowerW <= slow.PowerW {
		t.Error("max clocks must draw more power")
	}
}

func TestMeasuredRoofline(t *testing.T) {
	r, err := Profile(Options{Model: "resnet-50", Platform: "a100", Batch: 8, MeasuredRoofline: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.Roofline.PeakFLOPS <= 0 || r.Roofline.PeakFLOPS > r.Roofline.TheoreticalFLOPS {
		t.Errorf("measured roofline peak = %v", r.Roofline.PeakFLOPS)
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	r, err := Profile(Options{Model: "mobilenetv2-1.0", Platform: "a100", Batch: 4})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Model != r.Model || len(back.Layers) != len(r.Layers) {
		t.Error("JSON round trip lost data")
	}
}

func TestShuffleNetCategoriesPresent(t *testing.T) {
	r, err := Profile(Options{Model: "shufflenetv2-1.0", Platform: "a100", Batch: 128})
	if err != nil {
		t.Fatal(err)
	}
	cats := map[string]bool{}
	for _, l := range r.Layers {
		cats[l.Category] = true
	}
	for _, want := range []string{"transpose", "dwconv", "pwconv"} {
		if !cats[want] {
			t.Errorf("ShuffleNetV2 layer-wise analysis missing category %q (have %v)", want, cats)
		}
	}
}

// TestProfileEinsumAttention drives an Einsum-based attention graph
// (the form some transformer exports take) through the full pipeline.
func TestProfileEinsumAttention(t *testing.T) {
	g := graph.New("einsum-attn")
	g.AddTensor(&graph.Tensor{Name: "q", DType: graph.Float32, Shape: graph.Shape{1, 8, 64, 32}})
	g.AddTensor(&graph.Tensor{Name: "k", DType: graph.Float32, Shape: graph.Shape{1, 8, 64, 32}})
	g.AddTensor(&graph.Tensor{Name: "v", DType: graph.Float32, Shape: graph.Shape{1, 8, 64, 32}})
	for _, name := range []string{"scores", "probs", "ctx"} {
		g.AddTensor(&graph.Tensor{Name: name, DType: graph.Float32})
	}
	g.AddNode(&graph.Node{Name: "qk", OpType: "Einsum", Inputs: []string{"q", "k"}, Outputs: []string{"scores"},
		Attrs: graph.Attrs{"equation": graph.StringAttr("bhid,bhjd->bhij")}})
	g.AddNode(&graph.Node{Name: "softmax", OpType: "Softmax", Inputs: []string{"scores"}, Outputs: []string{"probs"},
		Attrs: graph.Attrs{"axis": graph.IntAttr(-1)}})
	g.AddNode(&graph.Node{Name: "av", OpType: "Einsum", Inputs: []string{"probs", "v"}, Outputs: []string{"ctx"},
		Attrs: graph.Attrs{"equation": graph.StringAttr("bhij,bhjd->bhid")}})
	g.Inputs = []string{"q", "k", "v"}
	g.Outputs = []string{"ctx"}

	r, err := Profile(Options{Graph: g, Platform: "a100", Batch: 4})
	if err != nil {
		t.Fatal(err)
	}
	// The two einsums carry the FLOP: 2 contractions of
	// 4*8*64*64*32 MACs each at batch 4.
	wantFLOP := int64(2 * 2 * 4 * 8 * 64 * 64 * 32)
	gotFLOP := r.EndToEnd.FLOP
	// Softmax adds a little on top.
	if gotFLOP < wantFLOP || gotFLOP > wantFLOP+wantFLOP/5 {
		t.Errorf("einsum attention FLOP = %d, want ~%d", gotFLOP, wantFLOP)
	}
	// On trtsim the three ops form one Myelin region.
	myelin := false
	for _, l := range r.Layers {
		if len(l.OriginalNodes) >= 3 {
			myelin = true
		}
	}
	if !myelin {
		t.Error("einsum attention should fuse into one region on trtsim")
	}
}

func clocksFor(t *testing.T, gpu, emc int) (c hardware.Clocks) {
	t.Helper()
	c.GPUMHz, c.EMCMHz, c.CPUClusters = gpu, emc, 1
	return c
}

// TestParseMode covers the wire-facing mode validation.
func TestParseMode(t *testing.T) {
	for in, want := range map[string]Mode{
		"": ModePredicted, "predicted": ModePredicted, "measured": ModeMeasured,
	} {
		got, err := ParseMode(in)
		if err != nil || got != want {
			t.Errorf("ParseMode(%q) = (%v, %v), want %v", in, got, err, want)
		}
	}
	for _, bad := range []string{"Predicted", "MEASURED", "psychic", "predicted "} {
		if _, err := ParseMode(bad); err == nil {
			t.Errorf("ParseMode(%q) succeeded, want error", bad)
		}
	}
}
