package core

import (
	"context"
	"fmt"
	"time"
)

// BatchPoint is one point of a batch-size sweep.
type BatchPoint struct {
	// Batch is the batch size.
	Batch int `json:"batch"`
	// Latency is the per-inference latency at that batch.
	Latency time.Duration `json:"latency_ns"`
	// Throughput is samples per second.
	Throughput float64 `json:"throughput"`
}

// DefaultBatchCandidates are the powers of two the sweep tries.
var DefaultBatchCandidates = []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048}

// OptimalBatch sweeps batch sizes and returns the one that maximizes
// throughput — how the paper selects "the batch size reached maximum
// throughput" for Table 5. The sweep stops early once throughput
// saturates (two consecutive candidates within 1%).
func OptimalBatch(opts Options, candidates []int) (int, []BatchPoint, error) {
	return OptimalBatchCtx(context.Background(), opts, candidates)
}

// OptimalBatchCtx is OptimalBatch with cancellation: the sweep checks
// ctx before each batch point and aborts with ctx.Err() when cancelled,
// returning the points measured so far.
func OptimalBatchCtx(ctx context.Context, opts Options, candidates []int) (int, []BatchPoint, error) {
	return OptimalBatchWith(ctx, opts, candidates, ProfileCtx)
}

// OptimalBatchWith runs the batch sweep through a custom profiling
// function (typically a caching session's ProfileCtx), so repeated
// sweeps over overlapping batch grids reuse cached points.
func OptimalBatchWith(ctx context.Context, opts Options, candidates []int, profile func(context.Context, Options) (*Report, error)) (int, []BatchPoint, error) {
	if profile == nil {
		profile = ProfileCtx
	}
	if candidates == nil {
		candidates = DefaultBatchCandidates
	}
	if len(candidates) == 0 {
		return 0, nil, fmt.Errorf("core: no batch candidates")
	}
	var points []BatchPoint
	best := candidates[0]
	bestTP := 0.0
	prevTP := 0.0
	for _, b := range candidates {
		if err := ctx.Err(); err != nil {
			return 0, points, err
		}
		o := opts
		o.Batch = b
		r, err := profile(ctx, o)
		if err != nil {
			return 0, points, fmt.Errorf("core: batch sweep at %d: %w", b, err)
		}
		p := BatchPoint{Batch: b, Latency: r.TotalLatency, Throughput: r.Throughput}
		points = append(points, p)
		if p.Throughput > bestTP {
			bestTP = p.Throughput
			best = b
		}
		if prevTP > 0 && p.Throughput < prevTP*1.01 && len(points) >= 3 {
			break // saturated
		}
		prevTP = p.Throughput
	}
	return best, points, nil
}
