package core

import (
	"context"
	"fmt"
	"time"

	"proof/internal/analysis"
	"proof/internal/backend"
	"proof/internal/graph"
	"proof/internal/hardware"
	"proof/internal/memo"
	"proof/internal/models"
	"proof/internal/obs"
	"proof/internal/roofline"
	"proof/internal/sim"
)

// MemoProfiler wraps a ProfileFunc so every request carries the given
// memo store (unless the request already brings its own). This is how a
// sweep driver, a CLI run, or a test attaches one shared store to many
// profiling calls without threading it by hand.
func MemoProfiler(st *memo.Store, next ProfileFunc) ProfileFunc {
	if next == nil {
		next = ProfileCtx
	}
	return func(ctx context.Context, opts Options) (*Report, error) {
		if opts.Memo == nil {
			opts.Memo = st
		}
		return next(ctx, opts)
	}
}

// memoPoint is the pipeline's per-run view of the memo store: the
// resolved configuration it keys on, prepared before the model is
// built so a plan hit can skip the build entirely.
type memoPoint struct {
	st         *memo.Store
	plat       *hardware.Platform
	platHash   string
	dt         graph.DataType
	batch      int
	backendKey string
	mode       Mode
	planKey    string
}

// prepareMemoPoint decides whether this run is memoizable and, if so,
// syncs the platform descriptor hash (purging entries from an edited
// descriptor) and derives the run's plan key. Only predicted-mode,
// constant-roofline runs are memoized: measured mode replays hardware
// counters and MeasuredRoofline re-runs the peak test, both of which
// must stay observable work.
func prepareMemoPoint(opts Options, plat *hardware.Platform, dt graph.DataType, batch int, backendKey string, mode Mode) *memoPoint {
	if opts.Memo == nil || mode != ModePredicted || opts.MeasuredRoofline {
		return nil
	}
	hash := plat.DescriptorHash()
	opts.Memo.SyncPlatform(plat.Key, hash)
	modelName := opts.Model
	source := "zoo:" + opts.Model
	if opts.Graph != nil {
		digest := opts.GraphDigest
		if digest == "" {
			d, err := memo.GraphDigest(opts.Graph)
			if err != nil {
				return nil // unhashable graph: run unmemoized
			}
			digest = d
		}
		if modelName == "" {
			modelName = opts.Graph.Name
		}
		source = "graph:" + digest
	}
	// The plan binding carries the *requested* data type; a quantized
	// graph resolves to int8 later, but quantized-ness is a function of
	// the model content, which source covers — the same (source,
	// binding) always resolves to the same effective type.
	b := memo.Binding{
		Backend:      backendKey,
		PlatformKey:  plat.Key,
		PlatformHash: hash,
		DType:        dt,
		Batch:        batch,
		Mode:         string(mode),
		Seed:         opts.Seed,
		Clocks:       opts.Clocks,
	}
	return &memoPoint{
		st:         opts.Memo,
		plat:       plat,
		platHash:   hash,
		dt:         dt,
		batch:      batch,
		backendKey: backendKey,
		mode:       mode,
		planKey:    memo.PlanKey(modelName, source, b),
	}
}

// tryFastPath serves the run from a cached plan when possible. done
// reports that the run is finished (either assembled or failed a
// pre-check the full pipeline would also fail); !done falls through to
// the full pipeline. The zoo lookup and support checks are replicated
// here so a cached plan can never mask the errors the unmemoized
// pipeline raises.
func (mp *memoPoint) tryFastPath(opts Options) (*Report, bool, error) {
	if opts.Graph == nil {
		info, ok := models.Lookup(opts.Model)
		if !ok {
			return nil, true, fmt.Errorf("core: unknown model %q", opts.Model)
		}
		if !opts.IgnoreSupport && !mp.plat.Supports(info.Type) {
			return nil, true, fmt.Errorf("core: platform %s does not support %s models (model %s failed to run in the paper's evaluation as well)",
				mp.plat.Key, info.Type, info.Key)
		}
	}
	plan, ok := mp.st.Plan(mp.planKey)
	if !ok {
		return nil, false, nil
	}
	report, ok := mp.assemble(plan, opts)
	if !ok {
		return nil, false, nil
	}
	return report, true, nil
}

// assemble rebuilds the full report from a plan and its units, running
// the same arithmetic in the same order as the pipeline's analysis
// stage — the differential suite holds it to byte-identical JSON. Any
// evicted unit aborts the assembly (no partial reports).
func (mp *memoPoint) assemble(plan *memo.Plan, opts Options) (*Report, bool) {
	units := make([]memo.Unit, len(plan.Layers))
	for i, pl := range plan.Layers {
		u, ok := mp.st.Unit(pl.Sig)
		if !ok {
			return nil, false
		}
		units[i] = u
	}

	rl := roofline.NewModel(mp.plat, plan.EffectiveDType, opts.Clocks)
	report := &Report{
		Model:     plan.Model,
		Platform:  mp.plat.Key,
		Backend:   plan.Backend,
		Batch:     plan.Batch,
		DType:     plan.DType,
		Mode:      mp.mode,
		Roofline:  rl,
		NodeCount: plan.NodeCount,
		ParamsM:   plan.ParamsM,
	}
	lw := &roofline.LayerWise{Model: rl, Points: make([]roofline.Point, 0, len(plan.Layers))}
	report.Layers = make([]LayerReport, 0, len(plan.Layers))
	timings := make([]sim.Timing, 0, len(plan.Layers))
	var total time.Duration
	for i, pl := range plan.Layers {
		unit := units[i]
		lr := LayerReport{
			Name:           pl.Name,
			IsReformat:     pl.IsReformat,
			OriginalNodes:  cloneStrings(pl.OriginalNodes),
			OpTypes:        cloneStrings(pl.OpTypes),
			Category:       unit.Category,
			ExecutionBound: unit.ExecutionBound,
		}
		p := roofline.NewPoint(pl.Name, unit.FLOP, unit.Bytes, unit.Latency, rl)
		p.Category = lr.Category
		lr.Point = p
		if len(pl.Kernels) > 0 {
			lr.Kernels = make([]KernelReport, 0, len(pl.Kernels))
		}
		for _, k := range pl.Kernels {
			lr.Kernels = append(lr.Kernels, KernelReport{
				Name:    k.Name,
				Latency: time.Duration(float64(unit.Latency) * k.Share),
			})
		}
		lw.Points = append(lw.Points, p)
		report.Layers = append(report.Layers, lr)
		total += unit.Latency
		timings = append(timings, sim.Timing{
			Latency:     unit.Latency,
			ComputeTime: unit.ComputeTime,
			MemoryTime:  unit.MemoryTime,
		})
	}
	finishReport(report, lw, timings, total, mp.plat, opts.Clocks)
	return report, true
}

// finish is the memoized analysis stage: instead of simulating every
// layer twice (Profile + Timings) and walking the mapping, it resolves
// each layer's unit through the store — profiling only the units the
// store is missing — and records the point's assembly plan for the next
// identical run. Called inside the pipeline's "analysis" span with the
// engine, mapping and representations already built.
func (mp *memoPoint) finish(ctx context.Context, pipe *obs.Span, eng *backend.Engine, mapping backend.Mapping, opt *analysis.OptimizedRep, rep *analysis.Rep, report *Report, rl roofline.Model, opts Options) (*Report, error) {
	cfg := eng.Config()
	b := memo.Binding{
		Backend:      mp.backendKey,
		PlatformKey:  mp.plat.Key,
		PlatformHash: mp.platHash,
		DType:        cfg.DType,
		Batch:        report.Batch,
		Mode:         string(mp.mode),
		Seed:         opts.Seed,
		Clocks:       opts.Clocks,
	}
	layers := eng.Layers()
	keys := eng.WorkKeys()
	plan := &memo.Plan{
		Model:          report.Model,
		Platform:       mp.plat.Key,
		Backend:        report.Backend,
		DType:          report.DType,
		EffectiveDType: cfg.DType,
		Batch:          report.Batch,
		NodeCount:      report.NodeCount,
		ParamsM:        report.ParamsM,
		Layers:         make([]memo.PlanLayer, 0, len(layers)),
	}
	lw := &roofline.LayerWise{Model: rl, Points: make([]roofline.Point, 0, len(layers))}
	report.Layers = make([]LayerReport, 0, len(layers))
	timings := make([]sim.Timing, 0, len(layers))
	var total time.Duration
	unitHits := 0
	for i, bl := range layers {
		// Replicate the unmemoized mapping check up front: a cached
		// unit must never mask a mapping hole.
		if !bl.IsReformat && mapping[bl.Name] == nil {
			return nil, fmt.Errorf("core: no mapping for backend layer %q", bl.Name)
		}
		i, bl := i, bl
		sig := memo.UnitSignature(keys[i], b)
		unit, outcome, err := mp.st.GetOrCompute(ctx, sig, mp.plat.Key, func() (memo.Unit, error) {
			t := eng.LayerTiming(i, opts.Seed)
			flop, bytes, cat, err := layerMetrics(bl, mapping, opt, rep)
			if err != nil {
				return memo.Unit{}, err
			}
			return memo.Unit{
				Latency:        t.Latency,
				ComputeTime:    t.ComputeTime,
				MemoryTime:     t.MemoryTime,
				ExecutionBound: t.Bound,
				FLOP:           flop,
				Bytes:          bytes,
				Category:       cat,
			}, nil
		})
		if err != nil {
			return nil, err
		}
		if outcome != memo.OutcomeMiss {
			unitHits++
		}
		lr := LayerReport{
			Name:           bl.Name,
			IsReformat:     bl.IsReformat,
			Category:       unit.Category,
			ExecutionBound: unit.ExecutionBound,
		}
		if layer := mapping[bl.Name]; layer != nil {
			for _, n := range layer.OriginalNodes() {
				lr.OriginalNodes = append(lr.OriginalNodes, n.Name)
			}
			lr.OpTypes = layer.OpTypes()
		}
		p := roofline.NewPoint(bl.Name, unit.FLOP, unit.Bytes, unit.Latency, rl)
		p.Category = lr.Category
		lr.Point = p
		planKernels := make([]memo.PlanKernel, 0, len(bl.Kernels))
		for _, k := range bl.Kernels {
			lr.Kernels = append(lr.Kernels, KernelReport{
				Name:    k.Name,
				Latency: time.Duration(float64(unit.Latency) * k.ShareOfLayer),
			})
			planKernels = append(planKernels, memo.PlanKernel{Name: k.Name, Share: k.ShareOfLayer})
		}
		lw.Points = append(lw.Points, p)
		report.Layers = append(report.Layers, lr)
		total += unit.Latency
		timings = append(timings, sim.Timing{
			Latency:     unit.Latency,
			ComputeTime: unit.ComputeTime,
			MemoryTime:  unit.MemoryTime,
		})
		plan.Layers = append(plan.Layers, memo.PlanLayer{
			Name:          bl.Name,
			IsReformat:    bl.IsReformat,
			OriginalNodes: cloneStrings(lr.OriginalNodes),
			OpTypes:       cloneStrings(lr.OpTypes),
			Kernels:       planKernels,
			Sig:           sig,
		})
	}
	finishReport(report, lw, timings, total, mp.plat, opts.Clocks)
	mp.st.PutPlan(mp.planKey, mp.plat.Key, plan)
	pipe.SetAttr("memo", "record")
	pipe.SetAttrInt("memo_unit_hits", int64(unitHits))
	return report, nil
}

// layerMetrics computes the predicted per-layer FLOP, bytes and chart
// category — the same arithmetic as the unmemoized analysis loop's
// predicted branches, factored out so memoized units are provably
// computed by the code the differential suite compares against.
func layerMetrics(bl backend.Layer, mapping backend.Mapping, opt *analysis.OptimizedRep, rep *analysis.Rep) (flop, bytes int64, category string, err error) {
	if bl.IsReformat {
		// Predicted reformat traffic: one read + one write of the
		// converted tensor.
		if t := rep.Graph.Tensor(bl.InputTensors[0]); t != nil {
			bytes = 2 * t.Bytes()
		}
		return 0, bytes, "copy", nil
	}
	layer := mapping[bl.Name]
	if layer == nil {
		return 0, 0, "", fmt.Errorf("core: no mapping for backend layer %q", bl.Name)
	}
	c, err := opt.LayerCost(layer)
	if err != nil {
		return 0, 0, "", err
	}
	return c.FLOP, c.MemoryBytes(), categorize(layer, rep.Graph), nil
}

// finishReport applies the shared report tail — latency shares, the
// end-to-end point, throughput, aggregate utilization and the power
// estimate — identically for the plain, memo-recording and
// plan-assembly paths.
func finishReport(report *Report, lw *roofline.LayerWise, timings []sim.Timing, total time.Duration, plat *hardware.Platform, clocks hardware.Clocks) {
	lw.FillShares()
	for i := range report.Layers {
		report.Layers[i].Point.Share = lw.Points[i].Share
	}
	report.EndToEnd = lw.EndToEnd(report.Model)
	report.TotalLatency = total
	if total > 0 {
		report.Throughput = float64(report.Batch) / total.Seconds()
	}
	// Aggregate utilization and power, as an external monitor (jtop)
	// would observe them.
	report.UtilCompute, report.UtilMem = sim.Utilization(timings)
	if plat.Power != nil {
		clk := clocks
		if clk.GPUMHz == 0 && plat.Clocks != nil {
			base := plat.DefaultClocks()
			base.GPUCapacity = clk.GPUCapacity
			base.CPUClusters = clk.CPUClusters
			base.CPUMHz = clk.CPUMHz
			clk = base
		}
		// Activity model: a GPU executing kernels draws most of its
		// load power whether the kernels are compute- or memory-
		// bound; the compute fraction modulates the rest. Severe
		// memory starvation (everything stalls on DRAM) is the only
		// regime where draw collapses (Table 7 #6).
		denom := report.UtilCompute + report.UtilMem
		cf := 0.5
		if denom > 0 {
			cf = report.UtilCompute / denom
		}
		utilGPU := 0.78 + 0.22*cf
		utilMem := 0.60 + 0.40*(1-cf)
		if w, err := plat.EstimatePower(clk, utilGPU, utilMem); err == nil {
			report.PowerW = w
		}
	}
}

func cloneStrings(s []string) []string {
	if s == nil {
		return nil
	}
	return append([]string(nil), s...)
}
