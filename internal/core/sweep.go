package core

import (
	"context"
	"sort"
	"time"

	"proof/internal/graph"
	"proof/internal/hardware"
	"proof/internal/memo"
	"proof/internal/models"
	"proof/internal/obs"
	"proof/internal/parallel"
)

// PlatformResult is one row of a cross-platform sweep: the same model
// profiled on one platform at its default configuration.
type PlatformResult struct {
	// Platform is the platform key.
	Platform string `json:"platform"`
	// Supported is false when the platform cannot run the model (the
	// coverage holes of Figure 4); the remaining fields are zero.
	Supported bool `json:"supported"`
	// Reason explains a skip.
	Reason string `json:"reason,omitempty"`
	// Batch and DType echo the platform defaults used.
	Batch int    `json:"batch,omitempty"`
	DType string `json:"dtype,omitempty"`
	// Latency and Throughput summarize performance.
	Latency    time.Duration `json:"latency_ns,omitempty"`
	Throughput float64       `json:"throughput,omitempty"`
	// AttainedFLOPS and Bound characterize the roofline position.
	AttainedFLOPS float64 `json:"attained_flops,omitempty"`
	Bound         string  `json:"bound,omitempty"`
}

// PlatformSweep profiles a model across every platform (the deployment
// question behind Figure 4: where does this model run best?). Results
// are ordered by throughput, descending, with unsupported platforms
// last.
func PlatformSweep(model string, mode Mode) ([]PlatformResult, error) {
	return PlatformSweepCtx(context.Background(), model, mode)
}

// PlatformSweepCtx is PlatformSweep with cancellation: cancelling ctx
// stops dispatching platforms and returns ctx.Err(). The per-platform
// profiling runs receive the same context. Profiler is the pluggable
// profiling function used for each platform point (nil = ProfileCtx),
// which lets a cached session serve the sweep.
func PlatformSweepCtx(ctx context.Context, model string, mode Mode) ([]PlatformResult, error) {
	return platformSweep(ctx, model, mode, ProfileCtx)
}

// PlatformSweepWith runs the sweep through a custom profiling function
// (typically a caching session's ProfileCtx).
func PlatformSweepWith(ctx context.Context, model string, mode Mode, profile ProfileFunc) ([]PlatformResult, error) {
	if profile == nil {
		profile = ProfileCtx
	}
	return platformSweep(ctx, model, mode, profile)
}

func platformSweep(ctx context.Context, model string, mode Mode, profile ProfileFunc) (_ []PlatformResult, err error) {
	ctx, sp := obs.Start(ctx, "sweep")
	sp.SetAttr("model", model)
	sp.SetAttr("mode", string(mode))
	defer func() { sp.EndErr(err) }()
	info, ok := models.Lookup(model)
	if !ok {
		return nil, errUnknownModel(model)
	}
	// Hoist the model build out of the per-platform closure: every
	// sweep point profiles a clone of one shared build (the pipeline
	// rebatches and dtype-converts its graph in place) instead of
	// re-running the zoo builder per platform. The digest is computed
	// once so memoized points are plan-keyed without re-hashing.
	base, err := sweepModelBuild(info)
	if err != nil {
		return nil, err
	}
	digest, err := memo.GraphDigest(base)
	if err != nil {
		return nil, err
	}
	platforms := hardware.List()
	sp.SetAttrInt("platforms", int64(len(platforms)))
	results, err := parallel.MapCtx(ctx, platforms, 0, func(ctx context.Context, p *hardware.Platform) (PlatformResult, error) {
		if !p.Supports(info.Type) {
			return PlatformResult{
				Platform: p.Key,
				Reason:   "platform does not support " + info.Type + " models",
			}, nil
		}
		r, err := profile(ctx, Options{Model: model, Graph: base.Clone(), GraphDigest: digest, Platform: p.Key, Mode: mode})
		if err != nil {
			if ctx.Err() != nil {
				return PlatformResult{}, ctx.Err()
			}
			return PlatformResult{Platform: p.Key, Reason: err.Error()}, nil
		}
		return PlatformResult{
			Platform:      p.Key,
			Supported:     true,
			Batch:         r.Batch,
			DType:         r.DType,
			Latency:       r.TotalLatency,
			Throughput:    r.Throughput,
			AttainedFLOPS: r.EndToEnd.FLOPS,
			Bound:         r.EndToEnd.Bound,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	sort.SliceStable(results, func(i, j int) bool {
		if results[i].Supported != results[j].Supported {
			return results[i].Supported
		}
		return results[i].Throughput > results[j].Throughput
	})
	return results, nil
}

// sweepModelBuild is the sweep's model-build seam: tests stub it to
// count builds (the regression guard for the one-build-per-sweep
// hoist).
var sweepModelBuild = func(info models.Info) (*graph.Graph, error) {
	return info.Build()
}

// errUnknownModel mirrors Profile's unknown-model error for sweeps.
func errUnknownModel(model string) error {
	return &unknownModelError{model}
}

type unknownModelError struct{ model string }

func (e *unknownModelError) Error() string {
	return "core: unknown model \"" + e.model + "\""
}
