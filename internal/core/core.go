// Package core orchestrates the full PRoof pipeline (Figure 1): model →
// analysis representation → backend build → built-in-profiler latencies
// → layer mapping → per-layer metrics (analytically predicted, or
// measured via simulated hardware counters) → end-to-end and layer-wise
// roofline analysis → report.
package core

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"proof/internal/analysis"
	"proof/internal/backend"
	_ "proof/internal/backend/ortsim" // register runtimes
	_ "proof/internal/backend/ovsim"
	_ "proof/internal/backend/trtsim"
	"proof/internal/graph"
	"proof/internal/graphops"
	"proof/internal/hardware"
	"proof/internal/memo"
	"proof/internal/models"
	"proof/internal/ncusim"
	"proof/internal/obs"
	"proof/internal/roofline"
	"proof/internal/sim"
)

// Mode selects how per-layer FLOP and memory metrics are obtained.
type Mode string

const (
	// ModePredicted uses PRoof's analytical model: only per-layer
	// latencies come from the runtime's built-in profiler; FLOP and
	// memory are predicted from the mapped model structure (§3.2).
	ModePredicted Mode = "predicted"
	// ModeMeasured uses the (simulated) hardware-counter profiler:
	// FLOP and memory traffic come from per-kernel counters, with the
	// tensor-core FLOP correction applied (§4.2). Adds large
	// profiling overhead.
	ModeMeasured Mode = "measured"
)

// ParseMode validates a metrics-mode name as it arrives from a flag or
// an API request body. The empty string selects ModePredicted, matching
// Options.Mode's zero-value behavior.
func ParseMode(s string) (Mode, error) {
	switch Mode(s) {
	case "", ModePredicted:
		return ModePredicted, nil
	case ModeMeasured:
		return ModeMeasured, nil
	}
	return "", fmt.Errorf("core: unknown mode %q (have %q, %q)", s, ModePredicted, ModeMeasured)
}

// Options configures one profiling run.
type Options struct {
	// Model is the zoo key ("resnet-50", ...). Ignored when Graph is
	// set.
	Model string
	// Graph optionally supplies a pre-built model graph. It is
	// modified in place (rebatching, dtype conversion).
	Graph *graph.Graph
	// Platform is the hardware key ("a100", ...).
	Platform string
	// Backend overrides the platform's default runtime.
	Backend string
	// Batch is the batch size (0 = platform default).
	Batch int
	// DType is the inference data type (invalid/zero = platform
	// default).
	DType graph.DataType
	// Mode selects predicted vs measured metrics ("" = predicted).
	Mode Mode
	// Clocks overrides the platform clock configuration.
	Clocks hardware.Clocks
	// Seed varies the simulated run-to-run jitter.
	Seed uint64
	// MeasuredRoofline draws the roofline ceilings from the peak-test
	// pseudo model instead of the platform constants.
	MeasuredRoofline bool
	// IgnoreSupport profiles even when the platform does not claim to
	// support the model family.
	IgnoreSupport bool
	// Memo optionally attaches a layer-unit memo store (internal/memo):
	// predicted-mode, constant-roofline runs then resolve per-layer
	// results through the store — profiling only units it has not seen —
	// and whole points repeated with an identical configuration are
	// assembled from a cached plan without building the model at all.
	// Other modes run the full pipeline unchanged. Memoized reports are
	// byte-identical to unmemoized ones (the differential suite in
	// internal/memo enforces this).
	Memo *memo.Store
	// GraphDigest optionally carries memo.GraphDigest(Graph), computed
	// once by callers that profile the same graph at many sweep points.
	// It must match the graph as passed — a stale digest (a mutated
	// Graph) would key the memo store wrongly. Leave empty to have the
	// pipeline compute it. Ignored when Graph is nil.
	GraphDigest string
}

// KernelReport is one lowered kernel of a backend layer (the bottom
// level of Figure 3's full-stack hierarchy).
type KernelReport struct {
	// Name is the kernel name as a system trace reports it.
	Name string `json:"name"`
	// Latency is the kernel's share of the layer latency.
	Latency time.Duration `json:"latency_ns"`
}

// LayerReport is the per-backend-layer profiling result.
type LayerReport struct {
	// Name is the backend layer name.
	Name string `json:"name"`
	// IsReformat marks runtime-inserted conversion layers.
	IsReformat bool `json:"is_reformat,omitempty"`
	// OriginalNodes are the model-design nodes this layer maps to
	// (empty for reformats) — the backward mapping of §3.3.
	OriginalNodes []string `json:"original_nodes,omitempty"`
	// OpTypes are the distinct original operator types in the layer.
	OpTypes []string `json:"op_types,omitempty"`
	// Category tags the layer for chart coloring.
	Category string `json:"category"`
	// Point is the roofline point (latency, FLOP, bytes, AI, rates).
	// Point.Bound classifies the layer's position against the
	// roofline ridge (memory vs compute side).
	Point roofline.Point `json:"point"`
	// ExecutionBound reports what actually dominated the layer's
	// simulated execution: "compute", "memory" or "overhead" (launch
	// cost larger than both).
	ExecutionBound string `json:"execution_bound,omitempty"`
	// Kernels are the layer's lowered kernels with attributed
	// latency — together with OriginalNodes this is the full-stack
	// model-layer ↔ backend-layer ↔ kernel mapping of Figure 3.
	Kernels []KernelReport `json:"kernels,omitempty"`
}

// Report is the complete profiling result of one run.
type Report struct {
	Model    string `json:"model"`
	Platform string `json:"platform"`
	Backend  string `json:"backend"`
	Batch    int    `json:"batch"`
	DType    string `json:"dtype"`
	Mode     Mode   `json:"mode"`
	// Roofline is the ceiling set used for analysis.
	Roofline roofline.Model `json:"roofline"`
	// EndToEnd is the whole-model roofline point (Figure 4).
	EndToEnd roofline.Point `json:"end_to_end"`
	// Layers is the layer-wise analysis (Figures 5, 6, 8).
	Layers []LayerReport `json:"layers"`
	// TotalLatency is the end-to-end inference latency.
	TotalLatency time.Duration `json:"total_latency_ns"`
	// Throughput is samples per second at the profiled batch size.
	Throughput float64 `json:"throughput"`
	// ProfilingOverhead is the counter-profiler replay cost (measured
	// mode only) — Table 4's "Prof. time".
	ProfilingOverhead time.Duration `json:"profiling_overhead_ns,omitempty"`
	// UtilCompute/UtilMem are the aggregate utilizations of the run.
	UtilCompute float64 `json:"util_compute"`
	UtilMem     float64 `json:"util_mem"`
	// PowerW is the estimated platform power draw during the run (0
	// when the platform has no power model).
	PowerW float64 `json:"power_w,omitempty"`
	// NodeCount and ParamsM describe the profiled model.
	NodeCount int     `json:"node_count"`
	ParamsM   float64 `json:"params_m"`
}

// ProfileFunc is the signature of ProfileCtx — the seam where caching
// sessions (profsession), fault injectors (faults.Wrap) and test stubs
// interpose on the pipeline. Everything above the pipeline programs
// against this type rather than the concrete function.
type ProfileFunc func(context.Context, Options) (*Report, error)

// timingsPool recycles the per-request simulation scratch: one
// []sim.Timing per concurrent profile, reused via Engine.TimingsInto so
// steady-state requests do not allocate timing slices at all.
var timingsPool = sync.Pool{New: func() any { return new([]sim.Timing) }}

// Profile runs the full PRoof pipeline.
func Profile(opts Options) (*Report, error) {
	return ProfileCtx(context.Background(), opts)
}

// ProfileCtx runs the full PRoof pipeline, honoring cancellation and
// deadline between pipeline stages (model build, backend build,
// profiling, layer mapping, metric collection). The pipeline stages
// themselves are synchronous; ctx is checked at each stage boundary so
// an abandoned request stops doing work at the next opportunity.
//
// When an obs.Tracer is installed in ctx, the run is recorded as a
// "pipeline" span with one child span per stage (model_build,
// backend_build, profile, layer_map, roofline, measure, analysis) —
// the profiler profiling itself. With no tracer installed the
// instrumentation is a true no-op.
func ProfileCtx(ctx context.Context, opts Options) (*Report, error) {
	ctx, pipe := obs.Start(ctx, "pipeline")
	rep, err := profilePipeline(ctx, opts, pipe)
	pipe.EndErr(err)
	return rep, err
}

func profilePipeline(ctx context.Context, opts Options, pipe *obs.Span) (*Report, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	plat, err := hardware.Get(opts.Platform)
	if err != nil {
		return nil, err
	}
	dt := opts.DType
	if !dt.Valid() {
		dt = plat.DefaultDType
	}
	batch := opts.Batch
	if batch <= 0 {
		batch = plat.DefaultBatch
	}
	backendKey := opts.Backend
	if backendKey == "" {
		backendKey = plat.Runtime
	}
	be, err := backend.Get(backendKey)
	if err != nil {
		return nil, err
	}
	mode := opts.Mode
	if mode == "" {
		mode = ModePredicted
	}
	pipe.SetAttr("model", opts.Model)
	pipe.SetAttr("platform", plat.Key)
	pipe.SetAttr("backend", backendKey)
	pipe.SetAttrInt("batch", int64(batch))
	pipe.SetAttr("dtype", dt.String())
	pipe.SetAttr("mode", string(mode))

	// Memo fast path: a point already profiled under an identical
	// configuration is assembled from its cached plan, skipping model
	// build, backend build, profiling and mapping entirely.
	mp := prepareMemoPoint(opts, plat, dt, batch, backendKey, mode)
	if mp != nil {
		report, done, err := mp.tryFastPath(opts)
		if err != nil {
			return nil, err
		}
		if done {
			pipe.SetAttr("memo", "hit")
			return report, nil
		}
	}

	_, msp := obs.Start(ctx, "model_build")
	g := opts.Graph
	modelName := opts.Model
	if g == nil {
		info, ok := models.Lookup(opts.Model)
		if !ok {
			err := fmt.Errorf("core: unknown model %q", opts.Model)
			msp.EndErr(err)
			return nil, err
		}
		if !opts.IgnoreSupport && !plat.Supports(info.Type) {
			err := fmt.Errorf("core: platform %s does not support %s models (model %s failed to run in the paper's evaluation as well)",
				plat.Key, info.Type, info.Key)
			msp.EndErr(err)
			return nil, err
		}
		g, err = info.Build()
		if err != nil {
			msp.EndErr(err)
			return nil, err
		}
	} else if modelName == "" {
		modelName = g.Name
	}

	// Static model verification gates the rest of the pipeline: every
	// backend and cost pass may assume the IR is structurally sound
	// (references resolve, one producer per tensor, acyclic, shapes
	// consistent). The typed *graph.ValidationError survives the wrap,
	// so proofd can answer 400 invalid_model instead of a 500.
	if err := g.Validate(); err != nil {
		err = fmt.Errorf("core: invalid model graph: %w", err)
		msp.EndErr(err)
		return nil, err
	}

	if graphops.IsQuantized(g) {
		// Explicitly quantized graphs (Q/DQ boundary nodes) keep
		// their tensor types and run on the int8 math units.
		dt = graph.Int8
	} else {
		g.ConvertFloatTensors(dt)
	}
	rep, err := analysis.NewRepWithBatch(g, batch)
	if err != nil {
		msp.EndErr(err)
		return nil, err
	}
	msp.SetAttrInt("nodes", int64(rep.NodeCount()))
	msp.End()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	cfg := backend.Config{Platform: plat, DType: dt, Batch: batch, Clocks: opts.Clocks}
	bctx, bsp := obs.Start(ctx, "backend_build")
	eng, err := be.Build(bctx, rep, cfg)
	if err != nil {
		bsp.EndErr(err)
		return nil, err
	}
	bsp.SetAttrInt("layers", int64(len(eng.Layers())))
	bsp.End()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Built-in profiler: per-layer latencies (all the runtime gives).
	// A memoized run skips it — the memoized analysis stage resolves
	// per-layer timings through the store instead of simulating every
	// layer unconditionally.
	var prof *backend.Profile
	if mp == nil {
		_, psp := obs.Start(ctx, "profile")
		prof, err = eng.Profile(opts.Seed)
		psp.EndErr(err)
		if err != nil {
			return nil, err
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}

	// Layer mapping: reconstruct the fused structure from the public
	// backend info.
	lctx, lsp := obs.Start(ctx, "layer_map")
	opt := analysis.NewOptimizedRep(rep)
	mapping, err := be.MapLayers(lctx, eng, opt)
	if err != nil {
		err = fmt.Errorf("core: layer mapping on %s: %w", backendKey, err)
		lsp.EndErr(err)
		return nil, err
	}
	lsp.End()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Roofline ceilings.
	var rl roofline.Model
	rctx, rsp := obs.Start(ctx, "roofline")
	if opts.MeasuredRoofline {
		rl, err = roofline.MeasuredModel(rctx, plat, dt, opts.Clocks, opts.Seed)
		if err != nil {
			rsp.EndErr(err)
			return nil, err
		}
	} else {
		rl = roofline.NewModel(plat, dt, opts.Clocks)
	}
	rsp.End()

	report := &Report{
		Model:     modelName,
		Platform:  plat.Key,
		Backend:   backendKey,
		Batch:     batch,
		DType:     dt.String(),
		Mode:      mode,
		Roofline:  rl,
		NodeCount: rep.NodeCount(),
		ParamsM:   float64(g.ParamCount()) / 1e6,
	}

	// Measured metrics, when requested. The counter-profiler replay is
	// the most expensive stage, so check for abandonment right before.
	var measured map[string]ncusim.LayerMeasurement
	if mode == ModeMeasured {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		_, nsp := obs.Start(ctx, "measure")
		res, err := ncusim.Measure(eng, opts.Seed)
		if err != nil {
			nsp.EndErr(err)
			return nil, err
		}
		nsp.SetAttrInt("kernels", int64(len(res.Layers)))
		nsp.End()
		measured = make(map[string]ncusim.LayerMeasurement, len(res.Layers))
		for _, lm := range res.Layers {
			measured[lm.LayerName] = lm
		}
		report.ProfilingOverhead = res.ProfilingTime
	}

	_, asp := obs.Start(ctx, "analysis")
	defer asp.End()
	if mp != nil {
		return mp.finish(ctx, pipe, eng, mapping, opt, rep, report, rl, opts)
	}
	// The timing scratch is pooled across requests and the per-layer
	// report slices sized up front: the layer->point loop below is the
	// per-request hot path (every profile, every sweep configuration)
	// and must not grow anything inside the loop.
	tbuf := timingsPool.Get().(*[]sim.Timing)
	defer timingsPool.Put(tbuf)
	timings := eng.TimingsInto(*tbuf, opts.Seed)
	*tbuf = timings
	layers := eng.Layers()
	lw := &roofline.LayerWise{Model: rl, Points: make([]roofline.Point, 0, len(layers))}
	report.Layers = make([]LayerReport, 0, len(layers))
	for i, bl := range layers {
		latency := prof.LayerLatency[bl.Name]
		lr := LayerReport{Name: bl.Name, IsReformat: bl.IsReformat}
		if i < len(timings) {
			lr.ExecutionBound = timings[i].Bound
		}

		var flop, bytes int64
		switch {
		case mode == ModeMeasured:
			lm := measured[bl.Name]
			flop, bytes = lm.CorrectedFLOP, lm.Bytes
		case bl.IsReformat:
			// Predicted reformat traffic: one read + one write of
			// the converted tensor.
			if t := rep.Graph.Tensor(bl.InputTensors[0]); t != nil {
				bytes = 2 * t.Bytes()
			}
		default:
			layer := mapping[bl.Name]
			if layer == nil {
				return nil, fmt.Errorf("core: no mapping for backend layer %q", bl.Name)
			}
			c, err := opt.LayerCost(layer)
			if err != nil {
				return nil, err
			}
			flop, bytes = c.FLOP, c.MemoryBytes()
		}

		if layer := mapping[bl.Name]; layer != nil {
			nodes := layer.OriginalNodes()
			lr.OriginalNodes = make([]string, 0, len(nodes))
			for _, n := range nodes {
				lr.OriginalNodes = append(lr.OriginalNodes, n.Name)
			}
			lr.OpTypes = layer.OpTypes()
			lr.Category = categorize(layer, rep.Graph)
		} else {
			lr.Category = "copy"
		}

		p := roofline.NewPoint(bl.Name, flop, bytes, latency, rl)
		p.Category = lr.Category
		lr.Point = p
		if len(bl.Kernels) > 0 {
			lr.Kernels = make([]KernelReport, 0, len(bl.Kernels))
		}
		for _, k := range bl.Kernels {
			lr.Kernels = append(lr.Kernels, KernelReport{
				Name:    k.Name,
				Latency: time.Duration(float64(latency) * k.ShareOfLayer),
			})
		}
		lw.Points = append(lw.Points, p)
		report.Layers = append(report.Layers, lr)
	}
	finishReport(report, lw, timings, prof.Total, plat, opts.Clocks)
	return report, nil
}

// categorize tags a mapped layer for roofline chart coloring, matching
// the paper's figures: depth-wise conv (Figures 5d, 8), point-wise
// conv, other conv, MatMul-containing layers (Figure 5b), transpose and
// data-copy layers (Figure 6).
func categorize(layer *analysis.Layer, g *graph.Graph) string {
	nodes := layer.OriginalNodes()
	class := sim.ClassifyNodes(nodes, g)
	switch class {
	case sim.ClassGEMM:
		return "matmul"
	case sim.ClassDWConv:
		return "dwconv"
	case sim.ClassConv:
		for _, n := range nodes {
			if n.OpType != "Conv" {
				continue
			}
			if w := g.Tensor(n.Inputs[1]); w != nil && w.Shape.Rank() == 4 &&
				w.Shape[2] == 1 && w.Shape[3] == 1 {
				return "pwconv"
			}
			return "conv"
		}
		return "conv"
	case sim.ClassDataMovement:
		for _, n := range nodes {
			if n.OpType == "Transpose" {
				return "transpose"
			}
		}
		return "copy"
	case sim.ClassMemCopy:
		return "copy"
	default:
		return strings.ToLower(class.String())
	}
}
