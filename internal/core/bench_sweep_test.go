package core

import (
	"context"
	"encoding/json"
	"flag"
	"os"
	"testing"
	"time"

	"proof/internal/hardware"
	"proof/internal/memo"
	"proof/internal/models"
)

var benchOut = flag.String("bench-out", "", "write the sweep-memo benchmark artifact (BENCH_sweep.json) to this path")

// benchSweepSeed pins the jitter seed so the benchmark grid is the
// same workload on every run and every host.
const benchSweepSeed = 1

// benchSweepModels returns the 20-model benchmark slice of the zoo
// (deterministic: models.List is sorted by the registry).
func benchSweepModels() []models.Info {
	infos := models.List()
	if len(infos) > 20 {
		infos = infos[:20]
	}
	return infos
}

// sweepGrid profiles the full benchmark grid — 20 models × every
// platform × batch {1, platform default} — through one store (nil =
// unmemoized) and returns the number of successfully profiled points.
// Unsupported model/platform combinations are skipped, matching what a
// real sweep does.
func sweepGrid(store *memo.Store) int {
	points := 0
	for _, info := range benchSweepModels() {
		for _, p := range hardware.List() {
			for _, batch := range []int{1, 0} {
				_, err := ProfileCtx(context.Background(), Options{
					Model:    info.Key,
					Platform: p.Key,
					Batch:    batch,
					Seed:     benchSweepSeed,
					Memo:     store,
				})
				if err == nil {
					points++
				}
			}
		}
	}
	return points
}

// BenchmarkSweepMemo measures the redundancy-aware sweep engine on the
// 20-model × all-platform × batch-grid workload. "off" runs the plain
// pipeline every iteration; "on" shares one memo store across
// iterations, so the first iteration records (cold) and the rest
// assemble from cached plans (warm) — the steady state of a long-lived
// proofd. Regenerate the committed artifact with `make bench-sweep`.
func BenchmarkSweepMemo(b *testing.B) {
	b.Run("off", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sweepGrid(nil)
		}
	})
	b.Run("on", func(b *testing.B) {
		store := memo.NewStore(memo.StoreConfig{})
		for i := 0; i < b.N; i++ {
			sweepGrid(store)
		}
	})
}

// sweepBenchArtifact is the committed BENCH_sweep.json schema: the
// pinned benchmark grid with memo-off vs memo-on (cold and warm)
// wall times, their speedups, and the store's hit ratios. Grid and
// seed are fixed, so point counts and hit ratios are identical across
// runs; only wall times move with the host.
type sweepBenchArtifact struct {
	Name          string  `json:"name"`
	Seed          uint64  `json:"seed"`
	Models        int     `json:"models"`
	Platforms     int     `json:"platforms"`
	Batches       []int   `json:"batches"`
	Points        int     `json:"points"`
	MemoOffNs     int64   `json:"memo_off_ns"`
	MemoColdNs    int64   `json:"memo_cold_ns"`
	MemoWarmNs    int64   `json:"memo_warm_ns"`
	ColdSpeedup   float64 `json:"cold_speedup"`
	WarmSpeedup   float64 `json:"warm_speedup"`
	ColdHitRatio  float64 `json:"cold_unit_hit_ratio"`
	UnitsProfiled int64   `json:"units_profiled"`
	PlanHits      int64   `json:"plan_hits"`
}

// TestWriteSweepBenchArtifact regenerates BENCH_sweep.json when run
// with -bench-out (wired to `make bench-sweep`); without the flag it
// cheaply asserts the headline claim on a reduced grid via the
// benchmark helpers, keeping the artifact honest in plain `go test`.
func TestWriteSweepBenchArtifact(t *testing.T) {
	if *benchOut == "" {
		t.Skip("no -bench-out path; artifact regeneration runs via `make bench-sweep`")
	}
	timeGrid := func(store *memo.Store) (time.Duration, int) {
		t0 := time.Now()
		points := sweepGrid(store)
		return time.Since(t0), points
	}

	offDur, points := timeGrid(nil)
	store := memo.NewStore(memo.StoreConfig{})
	coldDur, _ := timeGrid(store)
	coldStats := store.Stats()
	warmDur, _ := timeGrid(store)

	art := sweepBenchArtifact{
		Name:          "bench-sweep",
		Seed:          benchSweepSeed,
		Models:        len(benchSweepModels()),
		Platforms:     len(hardware.List()),
		Batches:       []int{1, 0},
		Points:        points,
		MemoOffNs:     offDur.Nanoseconds(),
		MemoColdNs:    coldDur.Nanoseconds(),
		MemoWarmNs:    warmDur.Nanoseconds(),
		ColdSpeedup:   float64(offDur) / float64(coldDur),
		WarmSpeedup:   float64(offDur) / float64(warmDur),
		ColdHitRatio:  coldStats.HitRatio(),
		UnitsProfiled: coldStats.Misses,
		PlanHits:      store.Stats().PlanHits,
	}
	if art.WarmSpeedup < 5 {
		t.Fatalf("warm memoized sweep only %.1fx faster than unmemoized (want >= 5x); not writing artifact", art.WarmSpeedup)
	}
	raw, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(*benchOut, append(raw, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: off=%v cold=%v warm=%v (%.1fx cold, %.1fx warm, %.0f%% unit hits)",
		*benchOut, offDur, coldDur, warmDur, art.ColdSpeedup, art.WarmSpeedup, 100*art.ColdHitRatio)
}

// TestSweepMemoSpeedup is the always-on guard behind the committed
// artifact: on a reduced grid (5 models × all platforms), the warm
// memoized sweep must beat the plain pipeline by a wide margin. The
// threshold is far below the measured ~10x+ so scheduler noise cannot
// flake it, while still catching a memoization regression (a broken
// plan path would land near 1x).
func TestSweepMemoSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	infos := benchSweepModels()[:5]
	grid := func(store *memo.Store) time.Duration {
		t0 := time.Now()
		for _, info := range infos {
			for _, p := range hardware.List() {
				_, _ = ProfileCtx(context.Background(), Options{Model: info.Key, Platform: p.Key, Seed: benchSweepSeed, Memo: store})
			}
		}
		return time.Since(t0)
	}
	off := grid(nil)
	store := memo.NewStore(memo.StoreConfig{})
	grid(store) // cold recording pass
	warm := grid(store)
	if warm*3 > off {
		t.Fatalf("warm memoized grid %v vs unmemoized %v: less than 3x — memoization regressed", warm, off)
	}
}
