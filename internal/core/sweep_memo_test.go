package core

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"

	"proof/internal/graph"
	"proof/internal/hardware"
	"proof/internal/memo"
	"proof/internal/models"
)

// TestSweepBuildsModelOnce is the regression guard for the sweep's
// hoisted model build: one sweep must call the zoo builder exactly once
// regardless of platform count, and every per-platform profiling call
// must receive a pre-built graph clone plus the precomputed digest
// (never the zoo key alone, which would rebuild per platform).
func TestSweepBuildsModelOnce(t *testing.T) {
	orig := sweepModelBuild
	defer func() { sweepModelBuild = orig }()

	var builds atomic.Int64
	sweepModelBuild = func(info models.Info) (*graph.Graph, error) {
		builds.Add(1)
		return orig(info)
	}

	var mu sync.Mutex
	var seen []Options
	profile := func(ctx context.Context, opts Options) (*Report, error) {
		mu.Lock()
		seen = append(seen, opts)
		mu.Unlock()
		return ProfileCtx(ctx, opts)
	}

	results, err := PlatformSweepWith(context.Background(), "resnet-18", ModePredicted, profile)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(hardware.List()) {
		t.Fatalf("sweep returned %d results for %d platforms", len(results), len(hardware.List()))
	}
	if n := builds.Load(); n != 1 {
		t.Fatalf("sweep built the model %d times, want exactly 1", n)
	}
	if len(seen) == 0 {
		t.Fatal("profile stub never called")
	}
	var wantDigest string
	for i, opts := range seen {
		if opts.Graph == nil {
			t.Fatalf("profile call %d: sweep passed no pre-built graph", i)
		}
		if opts.GraphDigest == "" {
			t.Fatalf("profile call %d: sweep passed no precomputed digest", i)
		}
		if wantDigest == "" {
			wantDigest = opts.GraphDigest
		} else if opts.GraphDigest != wantDigest {
			t.Fatalf("profile call %d: digest %s differs from %s — not computed once", i, opts.GraphDigest, wantDigest)
		}
	}
}

// TestSweepMemoizedMatchesPlain: a sweep through a memo store must
// produce the same rows as a plain sweep, and a repeat sweep must be
// served from cached plans.
func TestSweepMemoizedMatchesPlain(t *testing.T) {
	plain, err := PlatformSweepWith(context.Background(), "resnet-18", ModePredicted, nil)
	if err != nil {
		t.Fatal(err)
	}
	store := memo.NewStore(memo.StoreConfig{})
	memoProfile := func(ctx context.Context, opts Options) (*Report, error) {
		opts.Memo = store
		return ProfileCtx(ctx, opts)
	}
	for pass := 0; pass < 2; pass++ {
		got, err := PlatformSweepWith(context.Background(), "resnet-18", ModePredicted, memoProfile)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(plain) {
			t.Fatalf("pass %d: %d rows, want %d", pass, len(got), len(plain))
		}
		for i := range got {
			if got[i] != plain[i] {
				t.Fatalf("pass %d row %d differs:\n  plain: %+v\n  memo:  %+v", pass, i, plain[i], got[i])
			}
		}
	}
	st := store.Stats()
	if st.PlanHits == 0 {
		t.Fatalf("repeat sweep hit no cached plans: %+v", st)
	}
}
