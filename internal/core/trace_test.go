package core

import (
	"context"
	"testing"

	"proof/internal/obs"
)

// TestPipelineSpans asserts a traced ProfileCtx run emits the full
// stage hierarchy — the paper's own-overhead visibility (Table 4) —
// with correct parent/child nesting and the pipeline attributes.
func TestPipelineSpans(t *testing.T) {
	tr := obs.NewTracer("test")
	ctx := obs.WithTracer(context.Background(), tr)
	_, err := ProfileCtx(ctx, Options{Model: "mobilenetv2-0.5", Platform: "a100", Batch: 2})
	if err != nil {
		t.Fatal(err)
	}

	trace := tr.Snapshot()
	pipe := trace.Find("pipeline")
	if pipe == nil {
		t.Fatal("no pipeline span recorded")
	}
	for _, stage := range []string{"model_build", "backend_build", "profile", "layer_map", "roofline", "analysis"} {
		s := trace.Find(stage)
		if s == nil {
			t.Errorf("stage span %q missing", stage)
			continue
		}
		if s.ParentID != pipe.ID {
			t.Errorf("%s.ParentID = %d, want pipeline %d", stage, s.ParentID, pipe.ID)
		}
	}
	// Backend internals nest under their stages.
	if fuse := trace.Find("fuse"); fuse == nil {
		t.Error("fuse span missing")
	} else if bb := trace.Find("backend_build"); fuse.ParentID != bb.ID {
		t.Errorf("fuse.ParentID = %d, want backend_build %d", fuse.ParentID, bb.ID)
	}
	if ml := trace.Find("map_layers"); ml == nil {
		t.Error("map_layers span missing")
	} else if lm := trace.Find("layer_map"); ml.ParentID != lm.ID {
		t.Errorf("map_layers.ParentID = %d, want layer_map %d", ml.ParentID, lm.ID)
	}
	attrs := map[string]string{}
	for _, a := range pipe.Attrs {
		attrs[a.Key] = a.Value
	}
	if attrs["model"] != "mobilenetv2-0.5" || attrs["platform"] != "a100" {
		t.Errorf("pipeline attrs = %v", attrs)
	}
}

// TestUntracedProfileUnchanged: without a tracer the pipeline must run
// identically (the disabled path is a true no-op).
func TestUntracedProfileUnchanged(t *testing.T) {
	rep, err := ProfileCtx(context.Background(), Options{Model: "mobilenetv2-0.5", Platform: "a100", Batch: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalLatency <= 0 {
		t.Errorf("report latency = %v", rep.TotalLatency)
	}
}
