package core

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// update regenerates the golden report fixtures:
//
//	go test ./internal/core -run TestGoldenReports -update
var update = flag.Bool("update", false, "rewrite golden report fixtures")

// goldenConfigs pins a spread of (model, platform, seed) points: a
// conv net on the datacenter GPU, a mobile net on the edge SoC, a CPU
// run, a transformer, and one measured-mode run so the counter
// profiler is covered too. Small batches keep the fixtures fast and
// compact; the numbers are as deterministic at batch 4 as at 128.
var goldenConfigs = []struct {
	name string
	opts Options
}{
	{"mobilenetv2-0.5_a100_s1", Options{Model: "mobilenetv2-0.5", Platform: "a100", Batch: 8, Seed: 1}},
	{"shufflenetv2-0.5_orin-nx_s2", Options{Model: "shufflenetv2-0.5", Platform: "orin-nx", Batch: 4, Seed: 2}},
	{"resnet-18_xeon-6330_s3", Options{Model: "resnet-18", Platform: "xeon-6330", Batch: 4, Seed: 3}},
	{"vit-t_a100_s4", Options{Model: "vit-t", Platform: "a100", Batch: 8, Seed: 4}},
	{"resnet-18_a100_measured_s5", Options{Model: "resnet-18", Platform: "a100", Batch: 8, Seed: 5, Mode: ModeMeasured}},
}

// TestGoldenReports locks the full serialized Report of a fixed config
// set against committed fixtures, so an optimizer, backend or cost-
// model change can never silently shift the numbers: an intentional
// change must re-run with -update and show up in the diff.
func TestGoldenReports(t *testing.T) {
	for _, cfg := range goldenConfigs {
		t.Run(cfg.name, func(t *testing.T) {
			r, err := Profile(cfg.opts)
			if err != nil {
				t.Fatal(err)
			}
			got, err := json.MarshalIndent(r, "", " ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')
			path := filepath.Join("testdata", "golden", cfg.name+".json")
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to regenerate)", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("report drifted from %s (%s)\nIf the change is intentional, regenerate with:\n  go test ./internal/core -run TestGoldenReports -update",
					path, firstDiff(want, got))
			}
		})
	}
}

// TestGoldenDeterminism double-runs one config to confirm the report is
// bit-for-bit reproducible — the property the golden fixtures rely on.
func TestGoldenDeterminism(t *testing.T) {
	opts := goldenConfigs[0].opts
	a, err := Profile(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Profile(opts)
	if err != nil {
		t.Fatal(err)
	}
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if !bytes.Equal(aj, bj) {
		t.Fatalf("identical options produced different reports (%s)", firstDiff(aj, bj))
	}
}

// firstDiff locates the first byte divergence for a readable failure.
func firstDiff(want, got []byte) string {
	n := len(want)
	if len(got) < n {
		n = len(got)
	}
	for i := 0; i < n; i++ {
		if want[i] != got[i] {
			lo := i - 40
			if lo < 0 {
				lo = 0
			}
			hiW, hiG := i+40, i+40
			if hiW > len(want) {
				hiW = len(want)
			}
			if hiG > len(got) {
				hiG = len(got)
			}
			return fmt.Sprintf("first diff at byte %d: want ...%q, got ...%q", i, want[lo:hiW], got[lo:hiG])
		}
	}
	return fmt.Sprintf("lengths differ: want %d bytes, got %d", len(want), len(got))
}
