package core

import (
	"testing"

	"proof/internal/graphops"
	"proof/internal/models"
)

func TestOptimalBatch(t *testing.T) {
	best, points, err := OptimalBatch(Options{Model: "resnet-50", Platform: "a100"},
		[]int{1, 8, 64, 256, 512})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) < 3 {
		t.Fatalf("sweep points = %d", len(points))
	}
	// On a data-center GPU, throughput grows with batch before
	// saturating; the best batch is not 1.
	if best == 1 {
		t.Error("optimal batch on A100 should exceed 1")
	}
	var bestTP float64
	for _, p := range points {
		if p.Throughput > bestTP {
			bestTP = p.Throughput
		}
	}
	for _, p := range points {
		if p.Batch == best && p.Throughput != bestTP {
			t.Error("reported best batch does not hold the best throughput")
		}
	}
	if _, _, err := OptimalBatch(Options{Model: "resnet-50", Platform: "a100"}, []int{}); err == nil {
		t.Error("empty candidates must error")
	}
}

func TestProfileQuantizedGraph(t *testing.T) {
	g, err := models.Build("resnet-50")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := graphops.QuantizeInt8(g); err != nil {
		t.Fatal(err)
	}
	r, err := Profile(Options{Graph: g, Platform: "a100", Batch: 16})
	if err != nil {
		t.Fatal(err)
	}
	if r.DType != "int8" {
		t.Errorf("quantized graph should run at int8, got %s", r.DType)
	}
	// The Q/DQ boundary layers must appear as copy-class layers.
	found := 0
	for _, l := range r.Layers {
		for _, n := range l.OriginalNodes {
			if n == "quantize_input" || len(n) > 11 && n[:11] == "dequantize_" {
				found++
			}
		}
	}
	if found == 0 {
		t.Error("Q/DQ nodes missing from the mapped layers")
	}
	// Int8 on A100 doubles the compute ceiling vs fp16.
	fp16, err := Profile(Options{Model: "resnet-50", Platform: "a100", Batch: 16})
	if err != nil {
		t.Fatal(err)
	}
	if r.Roofline.PeakFLOPS <= fp16.Roofline.PeakFLOPS {
		t.Error("int8 roofline should exceed fp16")
	}
}

func TestKernelReportsPresent(t *testing.T) {
	r, err := Profile(Options{Model: "resnet-50", Platform: "a100", Batch: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range r.Layers {
		if len(l.Kernels) == 0 {
			t.Errorf("layer %q has no kernels", l.Name)
			continue
		}
		var sum int64
		for _, k := range l.Kernels {
			if k.Name == "" || k.Latency < 0 {
				t.Errorf("bad kernel in %q", l.Name)
			}
			sum += int64(k.Latency)
		}
		// Kernel latencies partition the layer latency.
		if diff := sum - int64(l.Point.Latency); diff > int64(l.Point.Latency)/100+2 || diff < -int64(l.Point.Latency)/100-2 {
			t.Errorf("layer %q kernel latencies sum to %d, layer %d", l.Name, sum, l.Point.Latency)
		}
	}
}
