package core

import "testing"

func TestPlatformSweepCNN(t *testing.T) {
	results, err := PlatformSweep("resnet-50", ModePredicted)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 7 {
		t.Fatalf("results = %d, want 7 platforms", len(results))
	}
	// CNNs run everywhere; results sorted by throughput.
	for i, r := range results {
		if !r.Supported {
			t.Errorf("%s unsupported for a CNN: %s", r.Platform, r.Reason)
		}
		if i > 0 && r.Throughput > results[i-1].Throughput {
			t.Error("results not sorted by throughput")
		}
	}
	// A data-center GPU must top a Raspberry Pi.
	if results[0].Platform == "rpi4b" {
		t.Error("RPi cannot be the fastest platform")
	}
	if results[len(results)-1].Platform != "rpi4b" {
		t.Errorf("RPi should be slowest, got %s", results[len(results)-1].Platform)
	}
}

func TestPlatformSweepTransformerSkips(t *testing.T) {
	results, err := PlatformSweep("vit-b", ModePredicted)
	if err != nil {
		t.Fatal(err)
	}
	var unsupported []string
	for _, r := range results {
		if !r.Supported {
			unsupported = append(unsupported, r.Platform)
			if r.Reason == "" {
				t.Errorf("%s: missing skip reason", r.Platform)
			}
		}
	}
	found := false
	for _, p := range unsupported {
		if p == "npu3720" {
			found = true
		}
	}
	if !found {
		t.Errorf("NPU should be unsupported for transformers, got %v", unsupported)
	}
}

func TestPlatformSweepUnknownModel(t *testing.T) {
	if _, err := PlatformSweep("nope", ModePredicted); err == nil {
		t.Error("unknown model must error")
	}
}
