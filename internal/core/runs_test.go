package core

import "testing"

func TestProfileRuns(t *testing.T) {
	stats, err := ProfileRuns(Options{Model: "resnet-50", Platform: "a100", Batch: 8}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Runs != 5 || stats.Best == nil {
		t.Fatal("incomplete stats")
	}
	if stats.MinLatency > stats.MeanLatency || stats.MeanLatency > stats.MaxLatency {
		t.Errorf("latency ordering broken: %v <= %v <= %v",
			stats.MinLatency, stats.MeanLatency, stats.MaxLatency)
	}
	if stats.Best.TotalLatency != stats.MinLatency {
		t.Error("best run must hold the minimum latency")
	}
	// Jitter is small but non-zero.
	if stats.CV <= 0 || stats.CV > 0.05 {
		t.Errorf("CV = %v, want small positive run-to-run variance", stats.CV)
	}
	if _, err := ProfileRuns(Options{Model: "resnet-50", Platform: "a100"}, 0); err == nil {
		t.Error("zero runs must error")
	}
}
