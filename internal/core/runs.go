package core

import (
	"context"
	"fmt"
	"math"
	"time"
)

// RunStats aggregates repeated profiling runs — real profilers report
// run-to-run variance, and PRoof's simulated runtimes carry a
// deterministic per-seed jitter that emulates it.
type RunStats struct {
	// Runs is the number of profiling runs.
	Runs int `json:"runs"`
	// MeanLatency, MinLatency and MaxLatency summarize the end-to-end
	// latency distribution.
	MeanLatency time.Duration `json:"mean_latency_ns"`
	MinLatency  time.Duration `json:"min_latency_ns"`
	MaxLatency  time.Duration `json:"max_latency_ns"`
	// StdDev is the standard deviation of the latency.
	StdDev time.Duration `json:"stddev_ns"`
	// CV is the coefficient of variation (stddev/mean).
	CV float64 `json:"cv"`
	// Best is the report of the fastest run (profilers conventionally
	// report best-of-N).
	Best *Report `json:"best"`
}

// ProfileRuns profiles the same configuration `runs` times with
// different jitter seeds and aggregates the latency statistics.
func ProfileRuns(opts Options, runs int) (*RunStats, error) {
	return ProfileRunsCtx(context.Background(), opts, runs)
}

// ProfileRunsCtx is ProfileRuns with cancellation: ctx is checked
// before each run and passed to the profiling pipeline.
func ProfileRunsCtx(ctx context.Context, opts Options, runs int) (*RunStats, error) {
	return ProfileRunsWith(ctx, opts, runs, ProfileCtx)
}

// ProfileRunsWith aggregates repeated runs through a custom profiling
// function (typically a caching session's ProfileCtx). Each run varies
// the jitter seed, so distinct runs are distinct cache entries; a
// repeated best-of-N over the same base seed is fully cache-served.
func ProfileRunsWith(ctx context.Context, opts Options, runs int, profile func(context.Context, Options) (*Report, error)) (*RunStats, error) {
	if profile == nil {
		profile = ProfileCtx
	}
	if runs < 1 {
		return nil, fmt.Errorf("core: runs must be >= 1")
	}
	stats := &RunStats{Runs: runs}
	var latencies []float64
	for i := 0; i < runs; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		o := opts
		o.Seed = opts.Seed + uint64(i)
		r, err := profile(ctx, o)
		if err != nil {
			return nil, err
		}
		lat := r.TotalLatency
		latencies = append(latencies, lat.Seconds())
		if stats.Best == nil || lat < stats.Best.TotalLatency {
			stats.Best = r
		}
		if stats.MinLatency == 0 || lat < stats.MinLatency {
			stats.MinLatency = lat
		}
		if lat > stats.MaxLatency {
			stats.MaxLatency = lat
		}
	}
	var sum float64
	for _, l := range latencies {
		sum += l
	}
	mean := sum / float64(runs)
	var varSum float64
	for _, l := range latencies {
		varSum += (l - mean) * (l - mean)
	}
	std := math.Sqrt(varSum / float64(runs))
	stats.MeanLatency = time.Duration(mean * float64(time.Second))
	stats.StdDev = time.Duration(std * float64(time.Second))
	if mean > 0 {
		stats.CV = std / mean
	}
	return stats, nil
}
