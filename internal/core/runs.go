package core

import (
	"fmt"
	"math"
	"time"
)

// RunStats aggregates repeated profiling runs — real profilers report
// run-to-run variance, and PRoof's simulated runtimes carry a
// deterministic per-seed jitter that emulates it.
type RunStats struct {
	// Runs is the number of profiling runs.
	Runs int `json:"runs"`
	// MeanLatency, MinLatency and MaxLatency summarize the end-to-end
	// latency distribution.
	MeanLatency time.Duration `json:"mean_latency_ns"`
	MinLatency  time.Duration `json:"min_latency_ns"`
	MaxLatency  time.Duration `json:"max_latency_ns"`
	// StdDev is the standard deviation of the latency.
	StdDev time.Duration `json:"stddev_ns"`
	// CV is the coefficient of variation (stddev/mean).
	CV float64 `json:"cv"`
	// Best is the report of the fastest run (profilers conventionally
	// report best-of-N).
	Best *Report `json:"best"`
}

// ProfileRuns profiles the same configuration `runs` times with
// different jitter seeds and aggregates the latency statistics.
func ProfileRuns(opts Options, runs int) (*RunStats, error) {
	if runs < 1 {
		return nil, fmt.Errorf("core: runs must be >= 1")
	}
	stats := &RunStats{Runs: runs}
	var latencies []float64
	for i := 0; i < runs; i++ {
		o := opts
		o.Seed = opts.Seed + uint64(i)
		r, err := Profile(o)
		if err != nil {
			return nil, err
		}
		lat := r.TotalLatency
		latencies = append(latencies, lat.Seconds())
		if stats.Best == nil || lat < stats.Best.TotalLatency {
			stats.Best = r
		}
		if stats.MinLatency == 0 || lat < stats.MinLatency {
			stats.MinLatency = lat
		}
		if lat > stats.MaxLatency {
			stats.MaxLatency = lat
		}
	}
	var sum float64
	for _, l := range latencies {
		sum += l
	}
	mean := sum / float64(runs)
	var varSum float64
	for _, l := range latencies {
		varSum += (l - mean) * (l - mean)
	}
	std := math.Sqrt(varSum / float64(runs))
	stats.MeanLatency = time.Duration(mean * float64(time.Second))
	stats.StdDev = time.Duration(std * float64(time.Second))
	if mean > 0 {
		stats.CV = std / mean
	}
	return stats, nil
}
