package core

import (
	"context"
	"encoding/json"
	"flag"
	"os"
	"testing"
	"time"

	"proof/internal/analysis"
	"proof/internal/backend"
	"proof/internal/graph"
	"proof/internal/hardware"
	"proof/internal/models"
	"proof/internal/roofline"
	"proof/internal/sim"
)

var rooflineBenchOut = flag.String("roofline-bench-out", "", "write the roofline hot-path benchmark artifact (BENCH_roofline.json) to this path")

// benchEngine builds the pinned benchmark engine: resnet-18 on the
// A100, the same configuration every run so ns/op is comparable across
// commits.
func benchEngine(tb testing.TB) *backend.Engine {
	tb.Helper()
	g, err := models.Build("resnet-18")
	if err != nil {
		tb.Fatal(err)
	}
	g.ConvertFloatTensors(graph.Float16)
	rep, err := analysis.NewRepWithBatch(g, 4)
	if err != nil {
		tb.Fatal(err)
	}
	plat, err := hardware.Get("a100")
	if err != nil {
		tb.Fatal(err)
	}
	be, err := backend.Get(plat.Runtime)
	if err != nil {
		tb.Fatal(err)
	}
	eng, err := be.Build(context.Background(), rep, backend.Config{Platform: plat, DType: graph.Float16, Batch: 4})
	if err != nil {
		tb.Fatal(err)
	}
	return eng
}

func benchModel(tb testing.TB) roofline.Model {
	tb.Helper()
	plat, err := hardware.Get("a100")
	if err != nil {
		tb.Fatal(err)
	}
	return roofline.NewModel(plat, graph.Float16, hardware.Clocks{})
}

// BenchmarkRooflineNewPoint measures single-point construction — the
// innermost call of the per-request analysis loop.
func BenchmarkRooflineNewPoint(b *testing.B) {
	m := benchModel(b)
	b.ReportAllocs()
	var sink float64
	for i := 0; i < b.N; i++ {
		p := roofline.NewPoint("layer", int64(i)+1e9, 3e6, time.Millisecond, m)
		sink += p.FLOPS
	}
	_ = sink
}

// BenchmarkRooflineClassifyBound measures bound classification across
// the memory/ridge/compute regimes.
func BenchmarkRooflineClassifyBound(b *testing.B) {
	m := benchModel(b)
	ridge := m.RidgeAI()
	ais := [3]float64{ridge / 4, ridge, ridge * 4}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if m.ClassifyBound(ais[i%3]) == "" {
			b.Fatal("empty bound")
		}
	}
}

// BenchmarkLayerPointMapping measures one full layer->point mapping
// pass over a built engine: pooled timings refill, per-layer point
// construction and share filling — the steady-state per-request work
// after the engine caches warm up. Must run allocation-free.
func BenchmarkLayerPointMapping(b *testing.B) {
	eng := benchEngine(b)
	m := benchModel(b)
	layers := eng.Layers()
	timings := eng.TimingsInto(nil, 1)
	lw := &roofline.LayerWise{Model: m, Points: make([]roofline.Point, 0, len(layers))}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		timings = eng.TimingsInto(timings, 1)
		lw.Points = lw.Points[:0]
		for j := range layers {
			t := timings[j]
			flop := t.ActualHWFLOP
			lw.Points = append(lw.Points, roofline.NewPoint(layers[j].Name, flop, t.ActualBytes, t.Latency, m))
		}
		lw.FillShares()
	}
	if len(lw.Points) != len(layers) {
		b.Fatalf("mapped %d points for %d layers", len(lw.Points), len(layers))
	}
}

// TestLayerPointMappingZeroAlloc is the always-on guard behind the
// benchmark artifact: the layer->point mapping loop (pooled timings +
// point construction + share fill) must not allocate per pass.
func TestLayerPointMappingZeroAlloc(t *testing.T) {
	eng := benchEngine(t)
	m := benchModel(t)
	layers := eng.Layers()
	timings := eng.TimingsInto(nil, 1)
	lw := &roofline.LayerWise{Model: m, Points: make([]roofline.Point, 0, len(layers))}
	n := testing.AllocsPerRun(50, func() {
		timings = eng.TimingsInto(timings, 1)
		lw.Points = lw.Points[:0]
		for j := range layers {
			tt := timings[j]
			lw.Points = append(lw.Points, roofline.NewPoint(layers[j].Name, tt.ActualHWFLOP, tt.ActualBytes, tt.Latency, m))
		}
		lw.FillShares()
	})
	if n != 0 {
		t.Fatalf("layer->point mapping allocates %v per pass, want 0", n)
	}
}

// TestProfilePipelineTimingsPooled checks the pool actually feeds the
// pipeline: two sequential profiles must reuse the timing scratch (the
// second run's pool Get returns the first run's buffer).
func TestProfilePipelineTimingsPooled(t *testing.T) {
	if _, err := Profile(Options{Model: "resnet-18", Platform: "a100", Seed: 1}); err != nil {
		t.Fatal(err)
	}
	buf := timingsPool.Get().(*[]sim.Timing)
	if cap(*buf) == 0 {
		t.Error("timings pool empty after a profile: hot path is not returning its scratch")
	}
	timingsPool.Put(buf)
}

// rooflineBenchArtifact is the committed BENCH_roofline.json schema:
// ns/op and allocs/op for the roofline hot-path micro-benchmarks.
// Allocs are asserted zero before writing; ns/op moves with the host.
type rooflineBenchArtifact struct {
	Name    string               `json:"name"`
	Seed    uint64               `json:"seed"`
	Results []rooflineBenchEntry `json:"results"`
}

type rooflineBenchEntry struct {
	Benchmark   string  `json:"benchmark"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// TestWriteRooflineBenchArtifact regenerates BENCH_roofline.json when
// run with -roofline-bench-out (wired to `make bench-roofline`). The
// writer refuses to pin an artifact whose hot paths allocate.
func TestWriteRooflineBenchArtifact(t *testing.T) {
	if *rooflineBenchOut == "" {
		t.Skip("no -roofline-bench-out path; artifact regeneration runs via `make bench-roofline`")
	}
	art := rooflineBenchArtifact{Name: "bench-roofline", Seed: 1}
	for _, bm := range []struct {
		name string
		fn   func(*testing.B)
	}{
		{"BenchmarkRooflineNewPoint", BenchmarkRooflineNewPoint},
		{"BenchmarkRooflineClassifyBound", BenchmarkRooflineClassifyBound},
		{"BenchmarkLayerPointMapping", BenchmarkLayerPointMapping},
	} {
		r := testing.Benchmark(bm.fn)
		if r.AllocsPerOp() != 0 {
			t.Fatalf("%s allocates %d/op (%d B/op); not writing artifact", bm.name, r.AllocsPerOp(), r.AllocedBytesPerOp())
		}
		art.Results = append(art.Results, rooflineBenchEntry{
			Benchmark:   bm.name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
		t.Logf("%s: %.1f ns/op, %d allocs/op", bm.name, float64(r.T.Nanoseconds())/float64(r.N), r.AllocsPerOp())
	}
	raw, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(*rooflineBenchOut, append(raw, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
