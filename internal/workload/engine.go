package workload

import (
	"context"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"proof/internal/obs"
)

// RunOptions tunes one execution of a plan.
type RunOptions struct {
	// Record, when non-nil, receives the issued requests as a JSONL
	// trace (see TraceEntry) — capture now, replay later.
	Record io.Writer
}

// maxViolationDetail bounds the verbatim violation messages a Result
// retains; the full count is always in ViolationCount.
const maxViolationDetail = 64

// Run executes a compiled plan against a target and tallies the
// outcome. The schedule is fixed by the plan; Run adds only real time:
// closed-loop clients self-pace on responses (plus think time),
// open-loop arrivals fire at their planned offsets regardless of how
// the target is doing. Cancellation of ctx stops issuing new requests
// and cancels in-flight ones; the partial Result is still returned.
func Run(ctx context.Context, p *Plan, tgt Target, opts RunOptions) (*Result, error) {
	if p.Requests() == 0 {
		return nil, fmt.Errorf("workload: plan has no requests")
	}
	eng := &engine{
		tgt:     tgt,
		beh:     p.Scenario.Behavior,
		lat:     obs.NewDigest(),
		started: time.Now(),
	}
	if opts.Record != nil {
		eng.rec = &recorder{}
	}

	var wg sync.WaitGroup
	if p.open {
		// Open loop: one dispatcher walks the schedule; every arrival
		// gets its own goroutine so a slow response never delays the
		// next arrival — that pressure is the point of open loop.
		for i := range p.arrivals {
			pl := p.arrivals[i]
			if !sleepCtx(ctx, pl.offset-time.Since(eng.started)) {
				break
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				eng.issue(ctx, pl)
			}()
		}
	} else {
		think := p.Scenario.Arrivals.Think.D()
		for c := range p.clients {
			stream := p.clients[c]
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range stream {
					if ctx.Err() != nil {
						return
					}
					eng.issue(ctx, stream[i])
					if i < len(stream)-1 && !sleepCtx(ctx, think) {
						return
					}
				}
			}()
		}
	}
	wg.Wait()

	res := eng.result(p)
	if eng.rec != nil {
		if err := WriteTrace(opts.Record, eng.rec.sorted()); err != nil {
			return res, fmt.Errorf("workload: writing trace: %w", err)
		}
	}
	return res, nil
}

// engine is the mutable state of one run.
type engine struct {
	tgt     Target
	beh     Behavior
	rec     *recorder
	started time.Time

	lat *obs.Digest // ok + degraded latencies

	requests, ok, degraded, shed, failed, canceled atomic.Int64
	violationCount                                 atomic.Int64

	mu         sync.Mutex
	violations []string
}

// issue executes one planned request and tallies its outcome.
func (e *engine) issue(ctx context.Context, pl planned) {
	req := pl.req
	req.SlowLoris = pl.slow

	rctx := ctx
	cancel := func() {}
	if pl.cancel {
		after := e.beh.CancelAfter.D()
		if after <= 0 {
			after = time.Millisecond
		}
		rctx, cancel = context.WithTimeout(ctx, after)
	}
	defer cancel()

	if e.rec != nil {
		e.rec.add(TraceEntry{Offset: Duration(time.Since(e.started)), Request: pl.req})
	}
	e.requests.Add(1)
	start := time.Now()
	resp := e.tgt.Do(rctx, req)
	elapsed := time.Since(start)

	switch resp.Class {
	case ClassOK:
		e.ok.Add(1)
		e.lat.Observe(elapsed)
	case ClassDegraded:
		e.degraded.Add(1)
		e.lat.Observe(elapsed)
	case ClassShed:
		e.shed.Add(1)
	case ClassCanceled:
		e.canceled.Add(1)
	default:
		e.failed.Add(1)
	}
	// A cancel-happy client that hung up cannot complain about what it
	// never read; everyone else's violations count.
	if resp.Violation != "" && !(pl.cancel && rctx.Err() != nil) {
		e.violationCount.Add(1)
		e.mu.Lock()
		if len(e.violations) < maxViolationDetail {
			e.violations = append(e.violations, resp.Violation)
		}
		e.mu.Unlock()
	}
}

// result snapshots the tallies into a Result.
func (e *engine) result(p *Plan) *Result {
	elapsed := time.Since(e.started)
	completed := e.ok.Load() + e.degraded.Load()
	rps := 0.0
	if elapsed > 0 {
		rps = float64(completed) / elapsed.Seconds()
	}
	e.mu.Lock()
	viol := append([]string(nil), e.violations...)
	e.mu.Unlock()
	return &Result{
		Scenario:       p.Scenario.Name,
		Seed:           p.Seed,
		ScheduleDigest: p.Digest(),
		Requests:       e.requests.Load(),
		OK:             e.ok.Load(),
		Degraded:       e.degraded.Load(),
		Shed:           e.shed.Load(),
		Failed:         e.failed.Load(),
		Canceled:       e.canceled.Load(),
		Violations:     viol,
		ViolationCount: e.violationCount.Load(),
		Latency: LatencySummary{
			Count: e.lat.Count(),
			Mean:  Duration(e.lat.Mean()),
			P50:   Duration(e.lat.Quantile(0.50)),
			P99:   Duration(e.lat.Quantile(0.99)),
			P999:  Duration(e.lat.Quantile(0.999)),
			Max:   Duration(e.lat.Max()),
		},
		Elapsed:       Duration(elapsed),
		ThroughputRPS: rps,
	}
}
