package workload

import (
	"encoding/json"
	"fmt"
	"time"
)

// Duration is a time.Duration that marshals as a human-readable string
// ("250ms") so scenario files and verdict reports stay hand-editable.
// Unmarshal accepts either a duration string or a bare number of
// nanoseconds.
type Duration time.Duration

// D converts for call sites that want the stdlib type.
func (d Duration) D() time.Duration { return time.Duration(d) }

func (d Duration) String() string { return time.Duration(d).String() }

// MarshalJSON renders the duration as its String form.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts "250ms"-style strings or nanosecond numbers.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var v any
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	switch x := v.(type) {
	case string:
		parsed, err := time.ParseDuration(x)
		if err != nil {
			return fmt.Errorf("workload: bad duration %q: %w", x, err)
		}
		*d = Duration(parsed)
	case float64:
		*d = Duration(time.Duration(x))
	default:
		return fmt.Errorf("workload: duration must be a string or number, got %T", v)
	}
	return nil
}
