package workload

import (
	"fmt"
	"math/rand/v2"
)

// Item is one entry in a request mix: a (model, platform)
// configuration, optionally fanned out across Seeds distinct profile
// seeds (cache busting: each seed is a distinct cache key), with a
// relative Weight for weighted mixes.
type Item struct {
	Model    string  `json:"model"`
	Platform string  `json:"platform"`
	Batch    int     `json:"batch,omitempty"`
	Mode     string  `json:"mode,omitempty"`
	Seeds    int     `json:"seeds,omitempty"`  // seed fan-out; <= 1 means one request shape with Seed 1
	Weight   float64 `json:"weight,omitempty"` // relative draw weight; <= 0 means 1
}

// Mix decides what each request asks for. With HotShare zero, items
// are drawn by Weight (split evenly across each item's seed fan).
// With HotShare set, the FIRST item is the hot key and takes that
// fraction of all traffic (e.g. 0.9 = one (model, platform) taking
// 90%), the remaining share splitting evenly over the other items —
// the skew that keeps one shard's cache red-hot while the long tail
// stays cold.
type Mix struct {
	Items    []Item  `json:"items"`
	HotShare float64 `json:"hot_share,omitempty"`
}

// Validate rejects mixes the picker cannot draw from.
func (m Mix) Validate() error {
	if len(m.Items) == 0 {
		return fmt.Errorf("workload: mix has no items")
	}
	if m.HotShare < 0 || m.HotShare >= 1 {
		if m.HotShare != 0 {
			return fmt.Errorf("workload: hot_share must be in [0, 1), got %g", m.HotShare)
		}
	}
	if m.HotShare > 0 && len(m.Items) < 2 {
		return fmt.Errorf("workload: hot_share needs at least two items (hot + tail)")
	}
	for i, it := range m.Items {
		if it.Model == "" || it.Platform == "" {
			return fmt.Errorf("workload: mix item %d needs model and platform", i)
		}
	}
	return nil
}

// expand lists an item's concrete request shapes, one per seed.
func (it Item) expand() []Request {
	n := it.Seeds
	if n <= 1 {
		n = 1
	}
	out := make([]Request, n)
	for s := 0; s < n; s++ {
		out[s] = Request{
			Model:    it.Model,
			Platform: it.Platform,
			Batch:    it.Batch,
			Seed:     uint64(s + 1),
			Mode:     it.Mode,
		}
	}
	return out
}

// Expand enumerates every distinct request shape the mix can emit —
// the universe a post-run sweep must verify (e.g. "after the storm,
// every configuration profiles cleanly").
func (m Mix) Expand() []Request {
	var out []Request
	for _, it := range m.Items {
		out = append(out, it.expand()...)
	}
	return out
}

// picker is the compiled draw table for one plan.
type picker struct {
	hotShare float64
	hot      []Request // HotShare mode: the first item's shapes
	tail     []Request // HotShare mode: everything else
	weighted []Request // weight mode: all shapes
	cum      []float64 // weight mode: cumulative weights over weighted
}

func newPicker(m Mix) *picker {
	p := &picker{hotShare: m.HotShare}
	if m.HotShare > 0 {
		p.hot = m.Items[0].expand()
		for _, it := range m.Items[1:] {
			p.tail = append(p.tail, it.expand()...)
		}
		return p
	}
	var total float64
	for _, it := range m.Items {
		w := it.Weight
		if w <= 0 {
			w = 1
		}
		shapes := it.expand()
		per := w / float64(len(shapes))
		for _, r := range shapes {
			total += per
			p.weighted = append(p.weighted, r)
			p.cum = append(p.cum, total)
		}
	}
	return p
}

// pick draws one request shape.
func (p *picker) pick(rng *rand.Rand) Request {
	if p.hotShare > 0 {
		if rng.Float64() < p.hotShare {
			return p.hot[rng.IntN(len(p.hot))]
		}
		return p.tail[rng.IntN(len(p.tail))]
	}
	x := rng.Float64() * p.cum[len(p.cum)-1]
	lo, hi := 0, len(p.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if p.cum[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return p.weighted[lo]
}
