package workload

import (
	"bytes"
	"context"
	"os"
	"sort"
	"sync"
	"testing"
	"time"
)

// fakeTarget classifies requests via a function and records every
// call — the engine's system-under-test stand-in.
type fakeTarget struct {
	mu      sync.Mutex
	calls   []Request
	respond func(ctx context.Context, req Request) Response
}

func (f *fakeTarget) Do(ctx context.Context, req Request) Response {
	f.mu.Lock()
	f.calls = append(f.calls, req)
	f.mu.Unlock()
	if f.respond != nil {
		return f.respond(ctx, req)
	}
	return Response{Class: ClassOK}
}

func (f *fakeTarget) requests() []Request {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]Request(nil), f.calls...)
}

// closedScenario is a small deterministic closed-loop scenario shared
// by the engine tests.
func closedScenario() *Scenario {
	return &Scenario{
		Name:     "engine-test",
		Seed:     1,
		Arrivals: Arrivals{Kind: KindClosed, Clients: 3, Requests: 8},
		Mix: Mix{Items: []Item{
			{Model: "resnet-50", Platform: "a100", Batch: 8, Seeds: 4},
			{Model: "resnet-18", Platform: "a100", Batch: 8, Seeds: 4},
		}},
	}
}

func TestPlanDigestPinsSchedule(t *testing.T) {
	sc := closedScenario()
	p1, err := BuildPlan(sc, 5)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := BuildPlan(sc, 5)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Digest() != p2.Digest() {
		t.Error("same seed produced different plan digests")
	}
	p3, err := BuildPlan(sc, 6)
	if err != nil {
		t.Fatal(err)
	}
	if p3.Digest() == p1.Digest() {
		t.Error("different seeds produced the same plan digest")
	}
	if got, want := p1.Requests(), 24; got != want {
		t.Errorf("plan requests = %d, want %d", got, want)
	}

	open := &Scenario{
		Name:     "open-test",
		Arrivals: Arrivals{Kind: KindPoisson, Rate: 2000, Duration: Duration(50 * time.Millisecond)},
		Mix:      sc.Mix,
	}
	o1, err := BuildPlan(open, 9)
	if err != nil {
		t.Fatal(err)
	}
	o2, err := BuildPlan(open, 9)
	if err != nil {
		t.Fatal(err)
	}
	if o1.Digest() != o2.Digest() {
		t.Error("open-loop plans with the same seed diverge")
	}
}

func TestClosedLoopRunIssuesEveryPlannedRequest(t *testing.T) {
	sc := closedScenario()
	plan, err := BuildPlan(sc, 1)
	if err != nil {
		t.Fatal(err)
	}
	tgt := &fakeTarget{}
	res, err := Run(context.Background(), plan, tgt, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 24 || res.OK != 24 {
		t.Errorf("result = %d requests / %d ok, want 24/24", res.Requests, res.OK)
	}
	if res.ScheduleDigest != plan.Digest() {
		t.Error("result does not carry the plan digest")
	}
	if got := len(tgt.requests()); got != 24 {
		t.Errorf("target saw %d requests, want 24", got)
	}
	// Every issued request must come from the mix universe.
	universe := make(map[Request]bool)
	for _, r := range plan.Distinct() {
		universe[r] = true
	}
	for _, r := range tgt.requests() {
		r.SlowLoris = false
		if !universe[r] {
			t.Errorf("issued request %+v outside the mix universe", r)
		}
	}
}

func TestRunTalliesEveryClass(t *testing.T) {
	sc := closedScenario()
	plan, err := BuildPlan(sc, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Classify deterministically off the request's profile seed.
	tgt := &fakeTarget{respond: func(ctx context.Context, req Request) Response {
		switch req.Seed {
		case 1:
			return Response{Class: ClassOK}
		case 2:
			return Response{Class: ClassDegraded}
		case 3:
			return Response{Class: ClassShed, Status: 429}
		default:
			return Response{Class: ClassFailed, Status: 503}
		}
	}}
	res, err := Run(context.Background(), plan, tgt, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK+res.Degraded+res.Shed+res.Failed+res.Canceled != res.Requests {
		t.Errorf("classes do not partition requests: %+v", res)
	}
	if res.OK == 0 || res.Degraded == 0 || res.Shed == 0 || res.Failed == 0 {
		t.Errorf("expected every class to appear under seed fan 4: %+v", res)
	}
	// Latency is only measured over successful responses.
	if res.Latency.Count != res.OK+res.Degraded {
		t.Errorf("latency count %d, want ok+degraded = %d", res.Latency.Count, res.OK+res.Degraded)
	}
}

func TestCancelHappyClientsAreCanceled(t *testing.T) {
	sc := closedScenario()
	sc.Behavior = Behavior{CancelEvery: 2, CancelAfter: Duration(2 * time.Millisecond)}
	plan, err := BuildPlan(sc, 3)
	if err != nil {
		t.Fatal(err)
	}
	// The target takes 50ms unless the per-request context dies first:
	// cancel-happy requests (2ms budget) resolve canceled, the rest ok.
	tgt := &fakeTarget{respond: func(ctx context.Context, req Request) Response {
		select {
		case <-ctx.Done():
			return Response{Class: ClassCanceled}
		case <-time.After(50 * time.Millisecond):
			return Response{Class: ClassOK}
		}
	}}
	res, err := Run(context.Background(), plan, tgt, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Every 2nd request of each client's 8-request stream: 4 x 3 clients.
	if res.Canceled != 12 || res.OK != 12 {
		t.Errorf("canceled/ok = %d/%d, want 12/12 (%+v)", res.Canceled, res.OK, res)
	}
	// Canceled requests never count against latency or the contract.
	if res.Latency.Count != res.OK {
		t.Errorf("latency count %d includes canceled requests", res.Latency.Count)
	}
}

func TestViolationsFailTheVerdict(t *testing.T) {
	sc := closedScenario()
	plan, err := BuildPlan(sc, 4)
	if err != nil {
		t.Fatal(err)
	}
	tgt := &fakeTarget{respond: func(ctx context.Context, req Request) Response {
		return Response{Class: ClassShed, Status: 429, Violation: "429 without Retry-After"}
	}}
	res, err := Run(context.Background(), plan, tgt, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.ViolationCount != res.Requests {
		t.Errorf("violation count = %d, want %d", res.ViolationCount, res.Requests)
	}
	v := Grade(res, SLO{})
	if v.Pass {
		t.Error("verdict passed despite contract violations")
	}
}

func TestOpenLoopRunFiresWholeSchedule(t *testing.T) {
	sc := &Scenario{
		Name:     "open-run",
		Arrivals: Arrivals{Kind: KindPoisson, Rate: 2000, Duration: Duration(100 * time.Millisecond)},
		Mix: Mix{Items: []Item{
			{Model: "resnet-50", Platform: "a100", Seeds: 2},
		}},
	}
	plan, err := BuildPlan(sc, 5)
	if err != nil {
		t.Fatal(err)
	}
	tgt := &fakeTarget{}
	res, err := Run(context.Background(), plan, tgt, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if int(res.Requests) != plan.Requests() {
		t.Errorf("issued %d of %d planned arrivals", res.Requests, plan.Requests())
	}
	if res.OK != res.Requests {
		t.Errorf("open-loop run had non-ok outcomes against an instant target: %+v", res)
	}
}

func TestRunCancellationReturnsPartialResult(t *testing.T) {
	sc := &Scenario{
		Name:     "cancel-run",
		Arrivals: Arrivals{Kind: KindClosed, Clients: 2, Requests: 1000},
		Mix:      Mix{Items: []Item{{Model: "resnet-50", Platform: "a100"}}},
	}
	plan, err := BuildPlan(sc, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var once sync.Once
	tgt := &fakeTarget{respond: func(_ context.Context, req Request) Response {
		once.Do(cancel) // stop the run after the first response
		return Response{Class: ClassOK}
	}}
	res, err := Run(ctx, plan, tgt, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests == 0 || res.Requests >= 2000 {
		t.Errorf("cancelled run issued %d requests, want a partial tally", res.Requests)
	}
}

func TestRecordThenReplayDrivesSameRequests(t *testing.T) {
	sc := closedScenario()
	plan, err := BuildPlan(sc, 6)
	if err != nil {
		t.Fatal(err)
	}
	var trace bytes.Buffer
	tgt := &fakeTarget{}
	if _, err := Run(context.Background(), plan, tgt, RunOptions{Record: &trace}); err != nil {
		t.Fatal(err)
	}
	entries, err := ReadTrace(&trace)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 24 {
		t.Fatalf("trace has %d entries, want 24", len(entries))
	}
	for i := 1; i < len(entries); i++ {
		if entries[i].Offset < entries[i-1].Offset {
			t.Fatalf("trace offsets regress at %d", i)
		}
	}

	replaySc := &Scenario{Name: "replayed", Arrivals: Arrivals{Kind: KindReplay}}
	replayPlan, err := PlanFromTrace(replaySc, entries)
	if err != nil {
		t.Fatal(err)
	}
	tgt2 := &fakeTarget{}
	res, err := Run(context.Background(), replayPlan, tgt2, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 24 {
		t.Fatalf("replay issued %d requests, want 24", res.Requests)
	}
	// The replay must drive the exact multiset of recorded requests.
	key := func(rs []Request) []Request {
		out := append([]Request(nil), rs...)
		for i := range out {
			out[i].SlowLoris = false
		}
		sort.Slice(out, func(i, j int) bool {
			a, b := out[i], out[j]
			if a.Model != b.Model {
				return a.Model < b.Model
			}
			return a.Seed < b.Seed
		})
		return out
	}
	orig, replayed := key(tgt.requests()), key(tgt2.requests())
	for i := range orig {
		if orig[i] != replayed[i] {
			t.Fatalf("replayed request %d = %+v, want %+v", i, replayed[i], orig[i])
		}
	}
}

func TestScenarioLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/sc.json"
	src := `{
  "name": "file-test",
  "seed": 9,
  "arrivals": {"kind": "poisson", "rate": 120, "duration": "750ms"},
  "mix": {"hot_share": 0.9, "items": [
    {"model": "resnet-50", "platform": "a100", "batch": 8},
    {"model": "resnet-18", "platform": "a100", "seeds": 4}
  ]},
  "behavior": {"cancel_every": 7, "cancel_after": "1ms"},
  "slo": {"p99": "250ms", "error_budget": 0.01, "degraded_budget": 0.05}
}`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	sc, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Arrivals.Duration.D() != 750*time.Millisecond {
		t.Errorf("duration = %s, want 750ms", sc.Arrivals.Duration)
	}
	if sc.SLO.P99.D() != 250*time.Millisecond || sc.SLO.ErrorBudget != 0.01 {
		t.Errorf("SLO did not round-trip: %+v", sc.SLO)
	}
	if sc.Mix.HotShare != 0.9 || sc.Behavior.CancelEvery != 7 {
		t.Errorf("mix/behavior did not round-trip")
	}

	// A typoed field must be rejected, not silently ignored.
	bad := path + ".bad"
	if err := os.WriteFile(bad, []byte(`{"name":"x","arivals":{"kind":"closed"}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bad); err == nil {
		t.Error("Load accepted a scenario with an unknown field")
	}
}

func TestBuiltinScenariosAreValid(t *testing.T) {
	for _, name := range BuiltinNames() {
		sc, ok := Builtin(name)
		if !ok {
			t.Fatalf("Builtin(%q) missing", name)
		}
		if err := sc.Validate(); err != nil {
			t.Errorf("builtin %s invalid: %v", name, err)
		}
		if sc.Arrivals.Kind == KindReplay {
			continue
		}
		if _, err := BuildPlan(sc, 0); err != nil {
			t.Errorf("builtin %s does not compile: %v", name, err)
		}
	}
}
