package workload

import (
	"math/rand/v2"
	"testing"
	"time"
)

// All generator tests are pure functions of (declaration, seed): no
// engine, no target, no wall clock. Fixed seeds make every assertion
// exact-repeatable; the statistical bounds are wide enough (>4 sigma)
// that they hold for any seed, and the fixed seed makes failures
// reproducible rather than flaky.

func TestPoissonScheduleDeterministic(t *testing.T) {
	a := Arrivals{Kind: KindPoisson, Rate: 500, Duration: Duration(time.Second)}
	s1, err := a.Schedule(42)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := a.Schedule(42)
	if err != nil {
		t.Fatal(err)
	}
	if len(s1) != len(s2) {
		t.Fatalf("same seed, different counts: %d vs %d", len(s1), len(s2))
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("same seed diverges at arrival %d: %s vs %s", i, s1[i], s2[i])
		}
	}
	s3, err := a.Schedule(43)
	if err != nil {
		t.Fatal(err)
	}
	if len(s3) == len(s1) {
		same := true
		for i := range s1 {
			if s1[i] != s3[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced an identical schedule")
		}
	}
}

func TestPoissonScheduleCountAndBounds(t *testing.T) {
	const rate = 1000.0
	a := Arrivals{Kind: KindPoisson, Rate: rate, Duration: Duration(time.Second)}
	sched, err := a.Schedule(1)
	if err != nil {
		t.Fatal(err)
	}
	// Poisson(1000): sigma ~ 32, so [850, 1150] is ~4.7 sigma.
	if n := len(sched); n < 850 || n > 1150 {
		t.Errorf("arrival count = %d, want ~1000 (within [850, 1150])", n)
	}
	var prev time.Duration
	var sumGap time.Duration
	for i, off := range sched {
		if off < 0 || off >= time.Second {
			t.Fatalf("arrival %d at %s outside [0, 1s)", i, off)
		}
		if off < prev {
			t.Fatalf("arrival %d at %s regresses below %s", i, off, prev)
		}
		sumGap += off - prev
		prev = off
	}
	// Mean inter-arrival must track 1/rate = 1ms.
	mean := sumGap / time.Duration(len(sched))
	if mean < 800*time.Microsecond || mean > 1200*time.Microsecond {
		t.Errorf("mean inter-arrival = %s, want ~1ms", mean)
	}
}

func TestRampScheduleSkewsLate(t *testing.T) {
	a := Arrivals{Kind: KindRamp, StartRate: 50, EndRate: 450, Duration: Duration(time.Second)}
	sched, err := a.Schedule(7)
	if err != nil {
		t.Fatal(err)
	}
	// Expected total: integral of the rate = (50+450)/2 = 250.
	if n := len(sched); n < 175 || n > 325 {
		t.Errorf("ramp count = %d, want ~250", n)
	}
	var first, second int
	for _, off := range sched {
		if off < 500*time.Millisecond {
			first++
		} else {
			second++
		}
	}
	// First half averages 150/s (expect ~75), second 350/s (~175):
	// the late half must dominate by at least 1.5x.
	if second <= first*3/2 {
		t.Errorf("ramp did not skew late: %d arrivals in first half, %d in second", first, second)
	}
}

func TestFlashCrowdScheduleBursts(t *testing.T) {
	a := Arrivals{
		Kind: KindFlash, BaseRate: 100, PeakRate: 2000,
		Duration:   Duration(time.Second),
		BurstStart: Duration(400 * time.Millisecond),
		BurstLen:   Duration(200 * time.Millisecond),
	}
	sched, err := a.Schedule(3)
	if err != nil {
		t.Fatal(err)
	}
	var inBurst, outside int
	for _, off := range sched {
		if off >= 400*time.Millisecond && off < 600*time.Millisecond {
			inBurst++
		} else {
			outside++
		}
	}
	// Burst window: 2000/s over 200ms ~ 400 arrivals. Outside: 100/s
	// over 800ms ~ 80.
	if inBurst < 300 {
		t.Errorf("burst window got %d arrivals, want ~400", inBurst)
	}
	if outside > 160 {
		t.Errorf("baseline got %d arrivals, want ~80", outside)
	}
	// Burst density (arrivals per ms) must dwarf the baseline's.
	burstDensity := float64(inBurst) / 200
	baseDensity := float64(outside) / 800
	if burstDensity < 10*baseDensity {
		t.Errorf("burst density %.2f/ms not >> baseline %.2f/ms", burstDensity, baseDensity)
	}
}

func TestHotKeySkewRatio(t *testing.T) {
	m := Mix{
		HotShare: 0.9,
		Items: []Item{
			{Model: "resnet-50", Platform: "a100", Seeds: 1},
			{Model: "resnet-18", Platform: "a100", Seeds: 4},
			{Model: "mobilenetv2-0.5", Platform: "a100", Seeds: 4},
		},
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	p := newPicker(m)
	rng := rand.New(rand.NewPCG(7, pcgStream))
	const draws = 20000
	hot := 0
	for i := 0; i < draws; i++ {
		if r := p.pick(rng); r.Model == "resnet-50" {
			hot++
		}
	}
	// Binomial(20000, 0.9): sigma ~ 42 draws (~0.2%); +-2% is ~10 sigma.
	frac := float64(hot) / draws
	if frac < 0.88 || frac > 0.92 {
		t.Errorf("hot key took %.3f of traffic, want ~0.9", frac)
	}
}

func TestWeightedMixRespectsWeights(t *testing.T) {
	m := Mix{Items: []Item{
		{Model: "resnet-50", Platform: "a100", Weight: 3},
		{Model: "resnet-18", Platform: "a100", Weight: 1},
	}}
	p := newPicker(m)
	rng := rand.New(rand.NewPCG(11, pcgStream))
	const draws = 20000
	heavy := 0
	for i := 0; i < draws; i++ {
		if p.pick(rng).Model == "resnet-50" {
			heavy++
		}
	}
	if frac := float64(heavy) / draws; frac < 0.72 || frac > 0.78 {
		t.Errorf("3:1 weighted item drew %.3f, want ~0.75", frac)
	}
}

func TestMixExpandEnumeratesSeedFans(t *testing.T) {
	m := Mix{Items: []Item{
		{Model: "resnet-50", Platform: "a100", Batch: 8, Seeds: 16},
		{Model: "resnet-18", Platform: "a100", Batch: 8, Seeds: 16},
		{Model: "mobilenetv2-0.5", Platform: "a100", Batch: 8, Seeds: 16},
	}}
	all := m.Expand()
	if len(all) != 48 {
		t.Fatalf("Expand() = %d shapes, want 48", len(all))
	}
	seen := make(map[Request]bool, len(all))
	for _, r := range all {
		if seen[r] {
			t.Fatalf("duplicate shape %+v", r)
		}
		seen[r] = true
		if r.Seed < 1 || r.Seed > 16 {
			t.Errorf("seed %d outside fan [1, 16]", r.Seed)
		}
	}
}

func TestArrivalsValidate(t *testing.T) {
	bad := []Arrivals{
		{Kind: "psychic"},
		{Kind: KindClosed, Clients: 0, Requests: 5},
		{Kind: KindClosed, Clients: 5, Requests: 0},
		{Kind: KindPoisson, Rate: 0, Duration: Duration(time.Second)},
		{Kind: KindPoisson, Rate: 100},
		{Kind: KindRamp, StartRate: 10, EndRate: 0, Duration: Duration(time.Second)},
		{Kind: KindFlash, BaseRate: 100, PeakRate: 50, Duration: Duration(time.Second), BurstLen: Duration(time.Millisecond)},
	}
	for i, a := range bad {
		if err := a.Validate(); err == nil {
			t.Errorf("case %d (%+v): Validate() = nil, want error", i, a)
		}
	}
	if err := (Arrivals{Kind: KindClosed, Clients: 2, Requests: 3}).Validate(); err != nil {
		t.Errorf("valid closed loop rejected: %v", err)
	}
	// Closed-loop and replay kinds have no generated schedule.
	if _, err := (Arrivals{Kind: KindClosed, Clients: 2, Requests: 3}).Schedule(1); err == nil {
		t.Error("closed-loop Schedule() = nil error, want error")
	}
}
