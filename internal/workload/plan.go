package workload

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"math/rand/v2"
	"time"
)

// planned is one fully decided request: what to ask for, when (open
// loop), and how the client misbehaves. Everything here is fixed
// before execution starts.
type planned struct {
	offset time.Duration // open loop / replay only
	req    Request
	cancel bool // cancel-happy: abandon CancelAfter after issuing
	slow   bool // slow-loris: dribble the request body (HTTP targets)
}

// Plan is a compiled scenario: the exact request schedule a run will
// execute. Compilation is a pure function of (scenario, seed) — the
// engine adds no randomness of its own — so Digest pins "two runs
// with the same seed produce identical request schedules".
type Plan struct {
	Scenario *Scenario
	Seed     uint64

	open     bool
	arrivals []planned   // open loop and replay
	clients  [][]planned // closed loop: one stream per virtual client
}

// pcgStream separates the plan's draw streams: arrival times and
// request picks must not consume the same random sequence, or adding
// a pick would silently shift every arrival.
const pcgStream = 0x6c6f6164 // "load"

// BuildPlan compiles a scenario under a seed. seed 0 selects the
// scenario's own default seed.
func BuildPlan(sc *Scenario, seed uint64) (*Plan, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if sc.Arrivals.Kind == KindReplay {
		return nil, fmt.Errorf("workload: replay scenarios compile with PlanFromTrace, not BuildPlan")
	}
	if seed == 0 {
		seed = sc.Seed
	}
	if seed == 0 {
		seed = 1
	}
	p := &Plan{Scenario: sc, Seed: seed}
	beh := sc.Behavior
	if p.open = sc.Arrivals.open(); p.open {
		offsets, err := sc.Arrivals.Schedule(seed)
		if err != nil {
			return nil, err
		}
		picks := newPicker(sc.Mix)
		rng := rand.New(rand.NewPCG(seed, pcgStream))
		p.arrivals = make([]planned, len(offsets))
		for i, off := range offsets {
			p.arrivals[i] = planned{
				offset: off,
				req:    picks.pick(rng),
				cancel: nth(beh.CancelEvery, i),
				slow:   nth(beh.SlowEvery, i),
			}
		}
		return p, nil
	}
	picks := newPicker(sc.Mix)
	p.clients = make([][]planned, sc.Arrivals.Clients)
	for c := range p.clients {
		// Each virtual client draws from its own deterministic stream,
		// so client counts can change without reshuffling the others.
		rng := rand.New(rand.NewPCG(seed, pcgStream+1+uint64(c)))
		stream := make([]planned, sc.Arrivals.Requests)
		for i := range stream {
			stream[i] = planned{
				req:    picks.pick(rng),
				cancel: nth(beh.CancelEvery, i),
				slow:   nth(beh.SlowEvery, i),
			}
		}
		p.clients[c] = stream
	}
	return p, nil
}

// nth selects every N-th index of a stream (i = 0-based): true at
// i = N-1, 2N-1, ... — disabled when every <= 0.
func nth(every, i int) bool {
	return every > 0 && i%every == every-1
}

// PlanFromTrace compiles a recorded trace into a replay plan: each
// entry fires at its recorded offset with its recorded request. The
// scenario supplies grading (SLO) and behavior; its arrivals must be
// KindReplay.
func PlanFromTrace(sc *Scenario, entries []TraceEntry) (*Plan, error) {
	if sc.Arrivals.Kind != KindReplay {
		return nil, fmt.Errorf("workload: scenario %s is %q, want %q arrivals for a trace replay",
			sc.Name, sc.Arrivals.Kind, KindReplay)
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("workload: trace is empty")
	}
	p := &Plan{Scenario: sc, Seed: sc.Seed, open: true}
	beh := sc.Behavior
	p.arrivals = make([]planned, len(entries))
	for i, e := range entries {
		if i > 0 && e.Offset < entries[i-1].Offset {
			return nil, fmt.Errorf("workload: trace offsets regress at entry %d (%s after %s)",
				i, e.Offset, entries[i-1].Offset)
		}
		p.arrivals[i] = planned{
			offset: e.Offset.D(),
			req:    e.Request,
			cancel: nth(beh.CancelEvery, i),
			slow:   nth(beh.SlowEvery, i),
		}
	}
	return p, nil
}

// Requests counts the plan's total planned requests.
func (p *Plan) Requests() int {
	if p.open {
		return len(p.arrivals)
	}
	n := 0
	for _, s := range p.clients {
		n += len(s)
	}
	return n
}

// Distinct enumerates the distinct request shapes the plan can issue
// (the mix universe for generated plans, the deduplicated trace for
// replays).
func (p *Plan) Distinct() []Request {
	if p.Scenario.Arrivals.Kind != KindReplay {
		return p.Scenario.Mix.Expand()
	}
	seen := make(map[Request]bool)
	var out []Request
	for _, a := range p.arrivals {
		if !seen[a.req] {
			seen[a.req] = true
			out = append(out, a.req)
		}
	}
	return out
}

// Digest is a stable hash over the full schedule — offsets, request
// shapes, and client misbehavior. Two plans with equal digests will
// issue byte-identical request sequences.
func (p *Plan) Digest() string {
	h := sha256.New()
	writeU64 := func(v uint64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	hashPlanned := func(pl planned) {
		writeU64(uint64(pl.offset))
		hashString(h, pl.req.Model)
		hashString(h, pl.req.Platform)
		writeU64(uint64(pl.req.Batch))
		writeU64(pl.req.Seed)
		hashString(h, pl.req.Mode)
		flags := uint64(0)
		if pl.cancel {
			flags |= 1
		}
		if pl.slow {
			flags |= 2
		}
		writeU64(flags)
	}
	writeU64(p.Seed)
	if p.open {
		for _, a := range p.arrivals {
			hashPlanned(a)
		}
	} else {
		for c, stream := range p.clients {
			writeU64(uint64(c))
			for _, pl := range stream {
				hashPlanned(pl)
			}
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

func hashString(h hash.Hash, s string) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(len(s)))
	h.Write(b[:])
	h.Write([]byte(s))
}
