package workload

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"
)

// Behavior declares how clients misbehave. Both knobs select every
// N-th request of a stream (a virtual client in closed loop, the
// arrival sequence in open loop), so misbehavior is part of the
// deterministic plan, not a coin flip at execution time.
type Behavior struct {
	// CancelEvery > 0 makes every N-th request a cancel-happy client:
	// it abandons the response CancelAfter after issuing (default
	// 1ms). The server must reclaim the slot and execution.
	CancelEvery int      `json:"cancel_every,omitempty"`
	CancelAfter Duration `json:"cancel_after,omitempty"`
	// SlowEvery > 0 makes every N-th request a slow-loris client: its
	// request body dribbles out one byte chunk per SlowDelay (default
	// 2ms) — only meaningful against an HTTP target, which must not
	// let slow writers starve everyone else.
	SlowEvery int      `json:"slow_every,omitempty"`
	SlowDelay Duration `json:"slow_delay,omitempty"`
}

// Scenario is one declarative load scenario: when requests fire
// (Arrivals), what they ask for (Mix), how clients misbehave
// (Behavior), and the budgets the run is graded against (SLO).
// Scenarios are plain JSON on disk (see Load) and plain Go structs in
// tests — the chaos suite builds its storm from the same type.
type Scenario struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	// Seed is the scenario's default schedule seed; callers may
	// override it (proofload -seed). Same seed, same schedule.
	Seed     uint64   `json:"seed,omitempty"`
	Arrivals Arrivals `json:"arrivals"`
	Mix      Mix      `json:"mix"`
	Behavior Behavior `json:"behavior,omitempty"`
	SLO      SLO      `json:"slo,omitempty"`
}

// Validate rejects scenarios the engine cannot execute.
func (sc *Scenario) Validate() error {
	if sc.Name == "" {
		return fmt.Errorf("workload: scenario needs a name")
	}
	if err := sc.Arrivals.Validate(); err != nil {
		return fmt.Errorf("scenario %s: %w", sc.Name, err)
	}
	if sc.Arrivals.Kind != KindReplay {
		if err := sc.Mix.Validate(); err != nil {
			return fmt.Errorf("scenario %s: %w", sc.Name, err)
		}
	}
	return nil
}

// Load reads one scenario from a JSON file, strictly (unknown fields
// are errors — a typoed budget must not silently grade as "no budget").
func Load(path string) (*Scenario, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	sc := &Scenario{}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(sc); err != nil {
		return nil, fmt.Errorf("workload: %s: %w", path, err)
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return sc, nil
}

// ---- builtin scenario library ----

// zooMix is the three-model mix the chaos suite has always stormed
// with: distinct seeds multiply each model into 16 cache keys so the
// storm keeps executing the faulty pipeline instead of coasting on
// the cache.
func zooMix(seeds int) Mix {
	return Mix{Items: []Item{
		{Model: "resnet-50", Platform: "a100", Batch: 8, Seeds: seeds},
		{Model: "resnet-18", Platform: "a100", Batch: 8, Seeds: seeds},
		{Model: "mobilenetv2-0.5", Platform: "a100", Batch: 8, Seeds: seeds},
	}}
}

// builtins is the named scenario library. Durations are kept short:
// these run in CI and tests; a real soak just scales the numbers in a
// scenario file.
var builtins = map[string]*Scenario{
	// smoke: the CI scenario — a short closed loop over cached
	// configurations with tight-but-safe budgets. Everything must
	// succeed; nothing may degrade.
	"smoke": {
		Name:        "smoke",
		Description: "short closed-loop sanity run over three cached configurations",
		Seed:        1,
		Arrivals:    Arrivals{Kind: KindClosed, Clients: 4, Requests: 12},
		Mix:         zooMix(2),
		SLO: SLO{
			P99:            Duration(5 * time.Second),
			ErrorBudget:    0,
			DegradedBudget: 0,
		},
	},
	// bench-serving: the committed perf-trajectory point
	// (BENCH_serving.json). One configuration, fixed request count:
	// the first request is the only pipeline execution, everything
	// after is the cache-hit path — the number future perf PRs move.
	"bench-serving": {
		Name:        "bench-serving",
		Description: "cache-hit path benchmark: one configuration, 1000 requests, 4 closed-loop clients",
		Seed:        1,
		Arrivals:    Arrivals{Kind: KindClosed, Clients: 4, Requests: 250},
		Mix: Mix{Items: []Item{
			{Model: "mobilenetv2-0.5", Platform: "a100", Batch: 8, Seeds: 1},
		}},
		SLO: SLO{
			P50:            Duration(50 * time.Millisecond),
			P99:            Duration(250 * time.Millisecond),
			P999:           Duration(time.Second),
			ErrorBudget:    0,
			DegradedBudget: 0,
		},
	},
	// poisson: sustained open-loop arrivals at a fixed rate.
	"poisson": {
		Name:        "poisson",
		Description: "open-loop Poisson arrivals at 300 req/s for 2s",
		Seed:        1,
		Arrivals:    Arrivals{Kind: KindPoisson, Rate: 300, Duration: Duration(2 * time.Second)},
		Mix:         zooMix(4),
		SLO: SLO{
			P99:            Duration(5 * time.Second),
			ErrorBudget:    0.01,
			DegradedBudget: 0.05,
		},
	},
	// hot-key: one (model, platform) takes 90% of open-loop traffic.
	"hot-key": {
		Name:        "hot-key",
		Description: "Poisson arrivals with one (model, platform) taking 90% of traffic",
		Seed:        1,
		Arrivals:    Arrivals{Kind: KindPoisson, Rate: 300, Duration: Duration(2 * time.Second)},
		Mix: Mix{
			HotShare: 0.9,
			Items: []Item{
				{Model: "resnet-50", Platform: "a100", Batch: 8, Seeds: 1},
				{Model: "resnet-18", Platform: "a100", Batch: 8, Seeds: 8},
				{Model: "mobilenetv2-0.5", Platform: "a100", Batch: 8, Seeds: 8},
			},
		},
		SLO: SLO{
			P99:            Duration(5 * time.Second),
			ErrorBudget:    0.01,
			DegradedBudget: 0.05,
		},
	},
	// ramp: a compressed diurnal curve, trough to peak.
	"ramp": {
		Name:        "ramp",
		Description: "diurnal ramp from 50 to 500 req/s over 2s",
		Seed:        1,
		Arrivals:    Arrivals{Kind: KindRamp, StartRate: 50, EndRate: 500, Duration: Duration(2 * time.Second)},
		Mix:         zooMix(4),
		SLO: SLO{
			P99:            Duration(5 * time.Second),
			ErrorBudget:    0.01,
			DegradedBudget: 0.05,
		},
	},
	// flash-crowd: steady state with a 10x burst in the middle.
	"flash-crowd": {
		Name:        "flash-crowd",
		Description: "100 req/s baseline with a 1000 req/s flash crowd for 500ms",
		Seed:        1,
		Arrivals: Arrivals{
			Kind: KindFlash, BaseRate: 100, PeakRate: 1000,
			Duration: Duration(2 * time.Second), BurstStart: Duration(750 * time.Millisecond), BurstLen: Duration(500 * time.Millisecond),
		},
		Mix: zooMix(4),
		SLO: SLO{
			P99:            Duration(5 * time.Second),
			ErrorBudget:    0.02,
			DegradedBudget: 0.05,
		},
	},
	// slow-loris: closed loop where a third of clients dribble their
	// request bodies and a seventh hang up early.
	"slow-loris": {
		Name:        "slow-loris",
		Description: "closed loop with slow-loris bodies and cancel-happy clients",
		Seed:        1,
		Arrivals:    Arrivals{Kind: KindClosed, Clients: 6, Requests: 10},
		Mix:         zooMix(2),
		Behavior: Behavior{
			SlowEvery:   3,
			SlowDelay:   Duration(2 * time.Millisecond),
			CancelEvery: 7,
			CancelAfter: Duration(time.Millisecond),
		},
		SLO: SLO{
			P99:            Duration(5 * time.Second),
			ErrorBudget:    0,
			DegradedBudget: 0,
		},
	},
	// chaos-storm: the seeded 30%-transient fault storm the chaos
	// suite (internal/server/chaos_test.go) drives through the full
	// HTTP stack. The fault injection itself is server-side
	// (faults.New in the test / -fault-* on proofd); this scenario is
	// the traffic half: 8 closed-loop clients, 25 requests each,
	// every 7th client request abandoned, over 48 distinct cache keys.
	"chaos-storm": {
		Name:        "chaos-storm",
		Description: "closed-loop storm over 48 cache keys with cancel-happy clients (pair with 30% transient fault injection)",
		Seed:        1,
		Arrivals:    Arrivals{Kind: KindClosed, Clients: 8, Requests: 25},
		Mix:         zooMix(16),
		Behavior: Behavior{
			CancelEvery: 7,
			CancelAfter: Duration(time.Millisecond),
		},
		// No latency budgets: the chaos suite grades the resilience
		// contract (every request resolves, no slot leaks), not speed.
	},
}

// Builtin returns a deep copy of a named builtin scenario, so callers
// may tweak budgets or seeds without mutating the library.
func Builtin(name string) (*Scenario, bool) {
	sc, ok := builtins[name]
	if !ok {
		return nil, false
	}
	c := *sc
	c.Mix.Items = append([]Item(nil), sc.Mix.Items...)
	return &c, true
}

// BuiltinNames lists the builtin scenario names, sorted.
func BuiltinNames() []string {
	names := make([]string, 0, len(builtins))
	for n := range builtins {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
