package workload

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"
)

// SLO declares the budgets a scenario is graded against. Zero-valued
// fields are ungraded (a scenario with no SLO always passes on
// budgets; contract violations still fail it). Degraded responses are
// deliberately budgeted SEPARATELY from errors: a degraded 200 kept a
// user working on stale data, an error did not — conflating them
// either hides real failures behind successful fallbacks or punishes
// the fallback that is doing exactly its job.
type SLO struct {
	// Latency budgets over successful responses (fresh + degraded).
	P50  Duration `json:"p50,omitempty"`
	P99  Duration `json:"p99,omitempty"`
	P999 Duration `json:"p999,omitempty"`
	// ErrorBudget is the largest tolerable failed fraction of
	// completed requests (failed / (requests - canceled)). Note zero
	// means "no errors tolerated" only when a sibling field marks the
	// SLO non-empty; use Grade's semantics below.
	ErrorBudget float64 `json:"error_budget"`
	// DegradedBudget is the largest tolerable degraded fraction of
	// completed requests.
	DegradedBudget float64 `json:"degraded_budget"`
	// ShedBudget is the largest tolerable shed (429) fraction of
	// completed requests; zero tolerates any shedding (backpressure
	// is not an error unless a scenario says so) — set it explicitly
	// to grade overload behavior.
	ShedBudget float64 `json:"shed_budget,omitempty"`
	// MinThroughputRPS is the floor on achieved successful
	// requests/second (0 = ungraded).
	MinThroughputRPS float64 `json:"min_throughput_rps,omitempty"`
}

// LatencySummary is the measured latency distribution over successful
// (fresh + degraded) responses.
type LatencySummary struct {
	Count int64    `json:"count"`
	Mean  Duration `json:"mean"`
	P50   Duration `json:"p50"`
	P99   Duration `json:"p99"`
	P999  Duration `json:"p999"`
	Max   Duration `json:"max"`
}

// Result is the raw outcome of one run: what was issued, how it
// resolved, how fast. Every issued request lands in exactly one of
// OK/Degraded/Shed/Failed/Canceled.
type Result struct {
	Scenario       string         `json:"scenario"`
	Seed           uint64         `json:"seed"`
	ScheduleDigest string         `json:"schedule_digest"`
	Requests       int64          `json:"requests"`
	OK             int64          `json:"ok"`
	Degraded       int64          `json:"degraded"`
	Shed           int64          `json:"shed"`
	Failed         int64          `json:"failed"`
	Canceled       int64          `json:"canceled"`
	ViolationCount int64          `json:"violation_count"`
	Violations     []string       `json:"violations,omitempty"`
	Latency        LatencySummary `json:"latency"`
	Elapsed        Duration       `json:"elapsed"`
	ThroughputRPS  float64        `json:"throughput_rps"`
}

// completed is the grading denominator: every request whose outcome
// the server owns. Canceled requests are the client's choice and
// count against nobody.
func (r *Result) completed() int64 {
	n := r.Requests - r.Canceled
	if n < 0 {
		return 0
	}
	return n
}

// Check is one graded budget: what was observed, what was allowed,
// and whether it held.
type Check struct {
	Name     string `json:"name"`
	Observed string `json:"observed"`
	Budget   string `json:"budget"`
	Pass     bool   `json:"pass"`
}

// Verdict is the graded outcome of a run: the result, the checks, and
// the overall pass/fail a CI gate or exit code keys off.
type Verdict struct {
	Scenario string  `json:"scenario"`
	Pass     bool    `json:"pass"`
	Checks   []Check `json:"checks"`
	Result   *Result `json:"result"`
}

// Grade evaluates a result against an SLO. The contract check
// (violation_count == 0) is always graded; latency percentiles,
// error/degraded/shed budgets and throughput only when declared.
func Grade(res *Result, slo SLO) *Verdict {
	v := &Verdict{Scenario: res.Scenario, Pass: true, Result: res}
	add := func(c Check) {
		if !c.Pass {
			v.Pass = false
		}
		v.Checks = append(v.Checks, c)
	}

	add(Check{
		Name:     "contract",
		Observed: fmt.Sprintf("%d violation(s)", res.ViolationCount),
		Budget:   "0 violations",
		Pass:     res.ViolationCount == 0,
	})

	latency := func(name string, observed Duration, budget Duration) {
		if budget <= 0 {
			return
		}
		add(Check{
			Name:     name,
			Observed: observed.String(),
			Budget:   "<= " + budget.String(),
			Pass:     observed <= budget,
		})
	}
	latency("latency_p50", res.Latency.P50, slo.P50)
	latency("latency_p99", res.Latency.P99, slo.P99)
	latency("latency_p999", res.Latency.P999, slo.P999)

	ratio := func(name string, count int64, budget float64) {
		den := res.completed()
		rate := 0.0
		if den > 0 {
			rate = float64(count) / float64(den)
		}
		add(Check{
			Name:     name,
			Observed: fmt.Sprintf("%.2f%% (%d/%d)", rate*100, count, den),
			Budget:   fmt.Sprintf("<= %.2f%%", budget*100),
			Pass:     rate <= budget,
		})
	}
	// Error and degraded budgets are always graded when the scenario
	// declares any SLO at all: "no budget named" means zero tolerance,
	// not unlimited. A completely zero SLO grades only the contract.
	if slo != (SLO{}) {
		ratio("error_budget", res.Failed, slo.ErrorBudget)
		ratio("degraded_budget", res.Degraded, slo.DegradedBudget)
	}
	if slo.ShedBudget > 0 {
		ratio("shed_budget", res.Shed, slo.ShedBudget)
	}
	if slo.MinThroughputRPS > 0 {
		add(Check{
			Name:     "throughput",
			Observed: fmt.Sprintf("%.1f req/s", res.ThroughputRPS),
			Budget:   fmt.Sprintf(">= %.1f req/s", slo.MinThroughputRPS),
			Pass:     res.ThroughputRPS >= slo.MinThroughputRPS,
		})
	}
	return v
}

// JSON renders the verdict as indented JSON with a trailing newline —
// the machine-readable artifact (BENCH_*.json, CI uploads).
func (v *Verdict) JSON() ([]byte, error) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// WriteTable renders the human verdict: an outcome summary, the
// latency line, and one row per check.
func (v *Verdict) WriteTable(w io.Writer) {
	res := v.Result
	fmt.Fprintf(w, "scenario %s  seed %d  schedule %.12s\n", res.Scenario, res.Seed, res.ScheduleDigest)
	fmt.Fprintf(w, "%d requests in %s  (%.1f successful req/s)\n",
		res.Requests, roundDur(res.Elapsed.D()), res.ThroughputRPS)
	fmt.Fprintf(w, "  ok %d  degraded %d  shed %d  failed %d  canceled %d\n",
		res.OK, res.Degraded, res.Shed, res.Failed, res.Canceled)
	fmt.Fprintf(w, "  latency p50 %s  p99 %s  p999 %s  max %s  (n=%d)\n",
		roundDur(res.Latency.P50.D()), roundDur(res.Latency.P99.D()),
		roundDur(res.Latency.P999.D()), roundDur(res.Latency.Max.D()), res.Latency.Count)
	fmt.Fprintln(w)
	nameW, obsW := len("check"), len("observed")
	for _, c := range v.Checks {
		nameW = max(nameW, len(c.Name))
		obsW = max(obsW, len(c.Observed))
	}
	fmt.Fprintf(w, "  %-*s  %-*s  %s\n", nameW, "check", obsW, "observed", "budget")
	for _, c := range v.Checks {
		mark := "PASS"
		if !c.Pass {
			mark = "FAIL"
		}
		fmt.Fprintf(w, "  %-*s  %-*s  %-18s %s\n", nameW, c.Name, obsW, c.Observed, c.Budget, mark)
	}
	fmt.Fprintln(w)
	if v.Pass {
		fmt.Fprintln(w, "verdict: PASS")
	} else {
		fmt.Fprintln(w, "verdict: FAIL")
	}
	for _, viol := range res.Violations {
		fmt.Fprintf(w, "  violation: %s\n", viol)
	}
	if extra := res.ViolationCount - int64(len(res.Violations)); extra > 0 {
		fmt.Fprintf(w, "  ... and %d more violation(s)\n", extra)
	}
}

// Table renders WriteTable to a string.
func (v *Verdict) Table() string {
	var b strings.Builder
	v.WriteTable(&b)
	return b.String()
}

// roundDur trims sub-microsecond noise out of human renderings.
func roundDur(d time.Duration) time.Duration {
	return d.Round(time.Microsecond)
}
