// Package workload is the traffic side of the serving story: a
// deterministic, seedable engine that drives proofd (over HTTP) or an
// in-process profiling session with realistic sustained traffic and
// grades what comes back against declared SLOs.
//
// The pieces compose left to right:
//
//   - an arrival process (Arrivals) decides WHEN requests fire —
//     closed-loop virtual clients, open-loop Poisson, diurnal ramps,
//     flash crowds, or the replay of a recorded trace;
//   - a request mix (Mix) decides WHAT each request asks for —
//     weighted (model, platform) items, optionally with hot-key skew
//     (one key taking 90% of traffic) and per-item seed fans for
//     cache busting;
//   - a client behavior (Behavior) decides HOW requests misbehave —
//     cancel-happy clients that abandon responses, slow-loris clients
//     that dribble their request bodies;
//   - a Target executes one request — HTTPTarget against a live
//     proofd, SessionTarget against an in-process
//     profsession.Session — and classifies the response;
//   - the engine (Run) executes a compiled Plan and accumulates a
//     Result; Grade turns a Result plus an SLO into a Verdict.
//
// Everything ahead of execution is deterministic: BuildPlan compiles a
// scenario and a seed into the exact sequence of (offset, request)
// pairs, so two runs with the same seed produce identical request
// schedules (Plan.Digest pins this). Only the measured latencies and
// the interleaving of concurrent completions vary between runs.
package workload

import (
	"context"
	"time"
)

// Request is one profiling request the engine issues: the wire-level
// subset of core.Options that load scenarios exercise.
type Request struct {
	Model    string `json:"model"`
	Platform string `json:"platform"`
	Batch    int    `json:"batch,omitempty"`
	Seed     uint64 `json:"seed,omitempty"`
	Mode     string `json:"mode,omitempty"`

	// SlowLoris is client behavior, not request identity: an HTTP
	// target dribbles the request body when set. The engine stamps it
	// from the plan at execution time; it never serializes.
	SlowLoris bool `json:"-"`
}

// Class buckets every response into the resilience contract's outcome
// classes. Every request the engine issues resolves into exactly one.
type Class int

const (
	// ClassOK: a fresh 200 (cache hit, miss or dedup).
	ClassOK Class = iota
	// ClassDegraded: a 200 served from the last-known-good store
	// (X-Degraded over HTTP, a stale fallback in process).
	ClassDegraded
	// ClassShed: backpressure — 429 over HTTP.
	ClassShed
	// ClassFailed: a structured 5xx (transient exhaustion, open
	// circuit, timeout) or any other terminal error.
	ClassFailed
	// ClassCanceled: the client abandoned the request (cancel-happy
	// behavior, or the run's own context ended mid-request).
	ClassCanceled
)

// String names the class for reports.
func (c Class) String() string {
	switch c {
	case ClassOK:
		return "ok"
	case ClassDegraded:
		return "degraded"
	case ClassShed:
		return "shed"
	case ClassFailed:
		return "failed"
	case ClassCanceled:
		return "canceled"
	}
	return "unknown"
}

// Response is a Target's classification of one executed request.
type Response struct {
	// Class is the outcome bucket.
	Class Class
	// Status is the HTTP status code when one exists (0 in process).
	Status int
	// Violation, when non-empty, records a breach of the serving
	// contract itself — a 429 without Retry-After, a 200 whose body is
	// not a report, a 5xx without a structured envelope. Violations
	// fail the verdict regardless of budgets: they mean the server
	// misbehaved, not that it was slow.
	Violation string
}

// Target executes one request against a system under test and
// classifies the outcome. Implementations must be safe for concurrent
// use; ctx carries the per-request cancellation (cancel-happy clients
// cancel it mid-flight).
type Target interface {
	Do(ctx context.Context, req Request) Response
}

// sleepCtx sleeps for d or until ctx ends, reporting whether the full
// sleep elapsed. Zero and negative d return immediately.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
