package workload

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
)

// TraceEntry is one line of a recorded request log: when (offset from
// run start) and what. The format is JSONL — greppable, appendable,
// and diffable — so a production-shaped capture can be trimmed with
// standard tools before re-driving it.
type TraceEntry struct {
	Offset Duration `json:"offset"`
	Request
}

// WriteTrace writes entries as JSONL.
func WriteTrace(w io.Writer, entries []TraceEntry) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range entries {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTrace parses a JSONL request log.
func ReadTrace(r io.Reader) ([]TraceEntry, error) {
	var out []TraceEntry
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var e TraceEntry
		if err := json.Unmarshal(raw, &e); err != nil {
			return nil, fmt.Errorf("workload: trace line %d: %w", line, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// LoadTrace reads a JSONL request log from disk.
func LoadTrace(path string) ([]TraceEntry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadTrace(f)
}

// recorder accumulates issued requests during a run, then sorts them
// by offset (concurrent clients finish recording out of order) for a
// replayable trace.
type recorder struct {
	mu      sync.Mutex
	entries []TraceEntry
}

func (rec *recorder) add(e TraceEntry) {
	rec.mu.Lock()
	rec.entries = append(rec.entries, e)
	rec.mu.Unlock()
}

func (rec *recorder) sorted() []TraceEntry {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	out := append([]TraceEntry(nil), rec.entries...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Offset < out[j].Offset })
	return out
}
