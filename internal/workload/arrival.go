package workload

import (
	"fmt"
	"math"
	"math/rand/v2"
	"time"
)

// ArrivalKind selects the arrival process shaping a scenario's traffic.
type ArrivalKind string

const (
	// KindClosed is a closed loop: Clients virtual clients, each
	// issuing Requests requests back to back (plus Think time), the
	// next only after the previous response — throughput self-limits
	// to what the server sustains, the classic load-generator mode
	// that can never overload the target.
	KindClosed ArrivalKind = "closed"
	// KindPoisson is an open loop: requests fire at exponentially
	// distributed inter-arrival times at Rate per second for Duration,
	// regardless of how fast the server answers — the mode that
	// reveals queueing collapse, because arrivals do not slow down
	// when the server does.
	KindPoisson ArrivalKind = "poisson"
	// KindRamp is an open loop whose rate climbs linearly from
	// StartRate to EndRate over Duration — a compressed diurnal curve.
	KindRamp ArrivalKind = "ramp"
	// KindFlash is an open loop at BaseRate with a flash crowd: the
	// rate jumps to PeakRate inside [BurstStart, BurstStart+BurstLen).
	KindFlash ArrivalKind = "flash"
	// KindReplay re-drives a recorded trace at its recorded offsets;
	// the schedule comes from the trace file, not a generator (see
	// PlanFromTrace).
	KindReplay ArrivalKind = "replay"
)

// Arrivals declares a scenario's arrival process. Exactly the fields
// of the selected Kind matter; the rest stay zero.
type Arrivals struct {
	Kind ArrivalKind `json:"kind"`

	// Closed loop.
	Clients  int      `json:"clients,omitempty"`
	Requests int      `json:"requests,omitempty"` // per client
	Think    Duration `json:"think,omitempty"`    // pause between a response and the next request

	// Open loop (poisson, ramp, flash).
	Duration Duration `json:"duration,omitempty"`
	Rate     float64  `json:"rate,omitempty"` // poisson: requests per second

	// Ramp.
	StartRate float64 `json:"start_rate,omitempty"`
	EndRate   float64 `json:"end_rate,omitempty"`

	// Flash crowd.
	BaseRate   float64  `json:"base_rate,omitempty"`
	PeakRate   float64  `json:"peak_rate,omitempty"`
	BurstStart Duration `json:"burst_start,omitempty"`
	BurstLen   Duration `json:"burst_len,omitempty"`
}

// Validate rejects arrival declarations the generators cannot execute.
func (a Arrivals) Validate() error {
	switch a.Kind {
	case KindClosed:
		if a.Clients <= 0 || a.Requests <= 0 {
			return fmt.Errorf("workload: closed loop needs clients > 0 and requests > 0, got %d/%d", a.Clients, a.Requests)
		}
	case KindPoisson:
		if a.Rate <= 0 || a.Duration <= 0 {
			return fmt.Errorf("workload: poisson needs rate > 0 and duration > 0, got %g/%s", a.Rate, a.Duration)
		}
	case KindRamp:
		if a.StartRate < 0 || a.EndRate <= 0 || a.Duration <= 0 {
			return fmt.Errorf("workload: ramp needs start_rate >= 0, end_rate > 0 and duration > 0")
		}
	case KindFlash:
		if a.BaseRate <= 0 || a.PeakRate < a.BaseRate || a.Duration <= 0 || a.BurstLen <= 0 {
			return fmt.Errorf("workload: flash needs base_rate > 0, peak_rate >= base_rate, duration > 0 and burst_len > 0")
		}
	case KindReplay:
		// The trace carries the schedule; nothing to validate here.
	default:
		return fmt.Errorf("workload: unknown arrival kind %q", a.Kind)
	}
	return nil
}

// open reports whether the kind generates an open-loop schedule.
func (a Arrivals) open() bool {
	return a.Kind == KindPoisson || a.Kind == KindRamp || a.Kind == KindFlash
}

// rateAt is the instantaneous arrival rate (req/s) at offset t.
func (a Arrivals) rateAt(t time.Duration) float64 {
	switch a.Kind {
	case KindPoisson:
		return a.Rate
	case KindRamp:
		frac := float64(t) / float64(a.Duration)
		return a.StartRate + (a.EndRate-a.StartRate)*frac
	case KindFlash:
		if t >= a.BurstStart.D() && t < a.BurstStart.D()+a.BurstLen.D() {
			return a.PeakRate
		}
		return a.BaseRate
	}
	return 0
}

// maxRate bounds rateAt over the scenario, for the thinning envelope.
func (a Arrivals) maxRate() float64 {
	switch a.Kind {
	case KindPoisson:
		return a.Rate
	case KindRamp:
		return math.Max(a.StartRate, a.EndRate)
	case KindFlash:
		return a.PeakRate
	}
	return 0
}

// Schedule generates the open-loop arrival offsets for seed: a sorted
// slice of offsets in [0, Duration). The generator is a pure function
// of (declaration, seed) — no wall clock anywhere — via Lewis-Shedler
// thinning: candidates arrive as a homogeneous Poisson process at the
// envelope rate maxRate, and each survives with probability
// rateAt(t)/maxRate, which realizes the declared time-varying rate
// exactly. Closed-loop and replay kinds have no generated schedule.
func (a Arrivals) Schedule(seed uint64) ([]time.Duration, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	if !a.open() {
		return nil, fmt.Errorf("workload: %s arrivals have no generated schedule", a.Kind)
	}
	rng := rand.New(rand.NewPCG(seed, 0x9e3779b97f4a7c15))
	env := a.maxRate()
	var out []time.Duration
	t := time.Duration(0)
	for {
		// Exponential inter-arrival at the envelope rate.
		gap := time.Duration(rng.ExpFloat64() / env * float64(time.Second))
		t += gap
		if t >= a.Duration.D() {
			return out, nil
		}
		if accept := a.rateAt(t) / env; accept >= 1 || rng.Float64() < accept {
			out = append(out, t)
		}
	}
}
