package workload

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden fixtures")

// fixtureResult is a hand-built run outcome: grading and rendering are
// pure functions over it, so the goldens are exactly stable.
func fixtureResult() *Result {
	return &Result{
		Scenario:       "golden",
		Seed:           7,
		ScheduleDigest: "f00dfacecafe0123456789abcdef0123456789abcdef0123456789abcdef0123",
		Requests:       1000,
		OK:             950,
		Degraded:       30,
		Shed:           8,
		Failed:         7,
		Canceled:       5,
		Latency: LatencySummary{
			Count: 980,
			Mean:  Duration(3200 * time.Microsecond),
			P50:   Duration(2500 * time.Microsecond),
			P99:   Duration(42 * time.Millisecond),
			P999:  Duration(180 * time.Millisecond),
			Max:   Duration(211 * time.Millisecond),
		},
		Elapsed:       Duration(2 * time.Second),
		ThroughputRPS: 490,
	}
}

func fixtureSLO() SLO {
	return SLO{
		P50:            Duration(5 * time.Millisecond),
		P99:            Duration(100 * time.Millisecond),
		P999:           Duration(500 * time.Millisecond),
		ErrorBudget:    0.01,
		DegradedBudget: 0.05,
		ShedBudget:     0.02,
	}
}

// checkGolden compares got against testdata/<name>, rewriting the
// fixture under -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s mismatch\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestVerdictGoldenPass(t *testing.T) {
	v := Grade(fixtureResult(), fixtureSLO())
	if !v.Pass {
		t.Fatalf("fixture verdict should pass: %+v", v.Checks)
	}
	data, err := v.JSON()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "verdict_pass.json", data)
	checkGolden(t, "verdict_pass.table", []byte(v.Table()))
}

func TestVerdictGoldenFail(t *testing.T) {
	res := fixtureResult()
	res.Failed = 120 // blows the 1% error budget
	res.Violations = []string{"POST /profile: 429 without Retry-After"}
	res.ViolationCount = 3
	v := Grade(res, fixtureSLO())
	if v.Pass {
		t.Fatal("fixture verdict should fail")
	}
	data, err := v.JSON()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "verdict_fail.json", data)
	checkGolden(t, "verdict_fail.table", []byte(v.Table()))
}

func TestGradeBudgetEdges(t *testing.T) {
	res := fixtureResult()

	// A zero SLO grades only the serving contract.
	v := Grade(res, SLO{})
	if len(v.Checks) != 1 || v.Checks[0].Name != "contract" {
		t.Errorf("zero SLO graded %d checks, want contract only", len(v.Checks))
	}
	if !v.Pass {
		t.Error("clean result failed a contract-only grade")
	}

	// Any declared SLO turns the error/degraded budgets on — with zero
	// budget meaning zero tolerance.
	strict := Grade(res, SLO{P99: Duration(time.Second)})
	var sawError, errorPassed bool
	for _, c := range strict.Checks {
		if c.Name == "error_budget" {
			sawError, errorPassed = true, c.Pass
		}
	}
	if !sawError {
		t.Fatal("declared SLO did not grade the error budget")
	}
	if errorPassed {
		t.Error("7 failures passed a zero error budget")
	}

	// Canceled requests shrink the grading denominator: 5 failures out
	// of 10 completed (not 100 issued) is a 50% error rate and must
	// blow a 30% budget.
	canceledHeavy := &Result{Requests: 100, Canceled: 90, OK: 5, Failed: 5}
	v2 := Grade(canceledHeavy, SLO{ErrorBudget: 0.3})
	for _, c := range v2.Checks {
		if c.Name == "error_budget" && c.Pass {
			t.Errorf("error budget graded over issued rather than completed requests: %+v", c)
		}
	}

	// Throughput floor fails when unmet.
	slow := fixtureResult()
	slow.ThroughputRPS = 10
	v3 := Grade(slow, SLO{MinThroughputRPS: 100})
	if v3.Pass {
		t.Error("10 req/s passed a 100 req/s floor")
	}
}
