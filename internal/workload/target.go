package workload

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"proof/internal/core"
	"proof/internal/graph"
	"proof/internal/hardware"
	"proof/internal/profsession"
)

// ---- HTTP target ----

// HTTPTarget drives a live proofd over HTTP: each request becomes a
// POST /v1/profile, and the response is classified against the
// serving contract (status codes, Retry-After discipline, structured
// envelopes, degraded headers). Safe for concurrent use.
type HTTPTarget struct {
	// BaseURL is the proofd base, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Client executes requests (nil = a dedicated client with a
	// connection pool sized for load generation).
	Client *http.Client
	// SlowDelay is the per-chunk dribble delay for slow-loris request
	// bodies (0 = 2ms).
	SlowDelay time.Duration
}

// NewHTTPTarget builds an HTTP target with a pooled transport.
func NewHTTPTarget(baseURL string) *HTTPTarget {
	tr := &http.Transport{
		MaxIdleConns:        256,
		MaxIdleConnsPerHost: 256,
	}
	return &HTTPTarget{
		BaseURL: strings.TrimRight(baseURL, "/"),
		Client:  &http.Client{Transport: tr},
	}
}

// profileBody is the POST /v1/profile payload a load request builds.
type profileBody struct {
	Model    string `json:"model"`
	Platform string `json:"platform"`
	Batch    int    `json:"batch,omitempty"`
	Seed     uint64 `json:"seed,omitempty"`
	Mode     string `json:"mode,omitempty"`
}

// Do executes one request and classifies the response.
func (t *HTTPTarget) Do(ctx context.Context, req Request) Response {
	payload, err := json.Marshal(profileBody{
		Model: req.Model, Platform: req.Platform, Batch: req.Batch,
		Seed: req.Seed, Mode: req.Mode,
	})
	if err != nil {
		return Response{Class: ClassFailed, Violation: "encode request: " + err.Error()}
	}
	var body io.Reader = strings.NewReader(string(payload))
	if req.SlowLoris {
		delay := t.SlowDelay
		if delay <= 0 {
			delay = 2 * time.Millisecond
		}
		// A reader with no known length forces chunked encoding, so
		// the server sees the body arrive one dribble at a time.
		body = &slowReader{ctx: ctx, data: payload, delay: delay}
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, t.BaseURL+"/v1/profile", body)
	if err != nil {
		return Response{Class: ClassFailed, Violation: "build request: " + err.Error()}
	}
	hreq.Header.Set("Content-Type", "application/json")
	client := t.Client
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Do(hreq)
	if err != nil {
		if ctx.Err() != nil {
			return Response{Class: ClassCanceled}
		}
		return Response{Class: ClassFailed, Violation: "transport error: " + err.Error()}
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		if ctx.Err() != nil {
			return Response{Class: ClassCanceled, Status: resp.StatusCode}
		}
		return Response{Class: ClassFailed, Status: resp.StatusCode, Violation: "read body: " + err.Error()}
	}
	return classifyHTTP(req, resp, raw)
}

// classifyHTTP maps one proofd response onto the outcome classes,
// recording contract breaches as violations.
func classifyHTTP(req Request, resp *http.Response, raw []byte) Response {
	out := Response{Status: resp.StatusCode}
	switch resp.StatusCode {
	case http.StatusOK:
		var rep struct {
			Model string `json:"model"`
		}
		if json.Unmarshal(raw, &rep) != nil || rep.Model == "" {
			out.Class = ClassFailed
			out.Violation = fmt.Sprintf("200 with invalid report body: %.80s", raw)
			return out
		}
		if rep.Model != req.Model {
			out.Class = ClassFailed
			out.Violation = fmt.Sprintf("asked %q, got report for %q", req.Model, rep.Model)
			return out
		}
		if resp.Header.Get("X-Degraded") != "" {
			out.Class = ClassDegraded
		} else {
			out.Class = ClassOK
		}
	case http.StatusTooManyRequests:
		out.Class = ClassShed
		if resp.Header.Get("Retry-After") == "" {
			out.Violation = "429 without Retry-After"
		}
	case http.StatusServiceUnavailable:
		out.Class = ClassFailed
		if resp.Header.Get("Retry-After") == "" {
			out.Violation = "503 without Retry-After"
			return out
		}
		var env struct {
			Error struct {
				Code string `json:"code"`
			} `json:"error"`
		}
		if json.Unmarshal(raw, &env) != nil || env.Error.Code == "" {
			out.Violation = fmt.Sprintf("503 without structured envelope: %.80s", raw)
		}
	case http.StatusGatewayTimeout:
		out.Class = ClassFailed
	default:
		out.Class = ClassFailed
		out.Violation = fmt.Sprintf("unexpected status %d: %.120s", resp.StatusCode, raw)
	}
	return out
}

// slowReader dribbles data one byte per delay — a slow-loris client's
// request body. It aborts early when the request context ends.
type slowReader struct {
	ctx   context.Context
	data  []byte
	pos   int
	delay time.Duration
}

func (r *slowReader) Read(p []byte) (int, error) {
	if r.pos >= len(r.data) {
		return 0, io.EOF
	}
	if !sleepCtx(r.ctx, r.delay) {
		return 0, r.ctx.Err()
	}
	p[0] = r.data[r.pos]
	r.pos++
	return 1, nil
}

// ---- in-process session target ----

// SessionTarget drives a profsession.Session directly — the
// no-network path for benchmarking the serving stack itself (cache,
// retries, breaker, stale fallback) without HTTP overhead, and for
// running proofload scenarios in process (proofload without -url).
type SessionTarget struct {
	Session *profsession.Session
	// Timeout bounds one request (0 = 60s, mirroring proofd's
	// default request budget).
	Timeout time.Duration
}

// Do executes one request against the session and classifies the
// outcome with the same policy the HTTP edge applies: fresh success,
// degraded stale fallback, structured failure, or canceled.
func (t *SessionTarget) Do(ctx context.Context, req Request) Response {
	mode, err := core.ParseMode(req.Mode)
	if err != nil {
		return Response{Class: ClassFailed, Violation: err.Error()}
	}
	opts := core.Options{
		Model:    req.Model,
		Platform: req.Platform,
		Batch:    req.Batch,
		Seed:     req.Seed,
		Mode:     mode,
		Clocks:   hardware.Clocks{CPUClusters: 1},
	}
	timeout := t.Timeout
	if timeout <= 0 {
		timeout = 60 * time.Second
	}
	rctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	_, _, err = t.Session.ProfileOutcome(rctx, opts)
	if err == nil {
		return Response{Class: ClassOK}
	}
	if ctx.Err() != nil {
		return Response{Class: ClassCanceled}
	}
	if _, ok := t.Session.FallbackFor(opts, err); ok {
		return Response{Class: ClassDegraded}
	}
	var coe *profsession.CircuitOpenError
	switch {
	case errors.As(err, &coe), errors.Is(err, context.DeadlineExceeded):
		return Response{Class: ClassFailed}
	default:
		if _, ok := graph.AsValidationError(err); ok {
			// An invalid model in a load mix is a scenario bug, not a
			// server failure: surface it loudly.
			return Response{Class: ClassFailed, Violation: "invalid model in mix: " + err.Error()}
		}
		return Response{Class: ClassFailed}
	}
}
