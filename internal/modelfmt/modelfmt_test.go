package modelfmt

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"proof/internal/analysis"
	"proof/internal/models"
)

func TestRoundTrip(t *testing.T) {
	g, err := models.Build("resnet-50")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(g, &buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Nodes) != len(g.Nodes) || len(back.Tensors) != len(g.Tensors) {
		t.Fatalf("round trip lost structure: %d/%d nodes, %d/%d tensors",
			len(back.Nodes), len(g.Nodes), len(back.Tensors), len(g.Tensors))
	}
	// Analysis must produce identical totals on the loaded copy.
	r1, err := analysis.NewRep(g)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := analysis.NewRep(back)
	if err != nil {
		t.Fatal(err)
	}
	if r1.TotalCost() != r2.TotalCost() {
		t.Errorf("cost changed after round trip: %v vs %v", r1.TotalCost(), r2.TotalCost())
	}
}

func TestRoundTripShuffleNetIntData(t *testing.T) {
	// ShuffleNet exercises Constant-node value propagation, which
	// relies on attribute round-tripping.
	g, err := models.Build("shufflenetv2-1.0")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(g, &buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := back.InferShapes(); err != nil {
		t.Fatalf("shape inference on loaded graph: %v", err)
	}
}

func TestSaveLoadFile(t *testing.T) {
	g, err := models.Build("mobilenetv2-0.5")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.json")
	if err := SaveFile(g, path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != g.Name {
		t.Errorf("name = %q", back.Name)
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file must error")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not json")); err == nil {
		t.Error("garbage must be rejected")
	}
	if _, err := Load(strings.NewReader(`{"format_version": 99, "graph": null}`)); err == nil {
		t.Error("wrong version must be rejected")
	}
	if _, err := Load(strings.NewReader(`{"format_version": 1}`)); err == nil {
		t.Error("missing graph must be rejected")
	}
	// Structurally invalid graph.
	bad := `{"format_version":1,"graph":{"name":"x","nodes":[{"name":"n","op_type":"Relu","inputs":["ghost"],"outputs":["y"]}],"tensors":{"y":{"name":"y","dtype":1}},"inputs":[],"outputs":[]}}`
	if _, err := Load(strings.NewReader(bad)); err == nil {
		t.Error("invalid graph must be rejected")
	}
}
