// Package modelfmt serializes model graphs to a self-contained JSON
// format, PRoof's stand-in for the ONNX file a real deployment would
// feed the CLI. The format stores exactly what PRoof's analysis needs:
// nodes with attributes, tensors with shapes/dtypes/parameter flags, and
// graph IO lists.
package modelfmt

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"proof/internal/graph"
)

// FormatVersion is the current file format version.
const FormatVersion = 1

// file is the on-disk envelope.
type file struct {
	FormatVersion int          `json:"format_version"`
	Producer      string       `json:"producer"`
	Graph         *graph.Graph `json:"graph"`
}

// Save writes the graph as JSON.
func Save(g *graph.Graph, w io.Writer) error {
	if err := g.Validate(); err != nil {
		return fmt.Errorf("modelfmt: refusing to save invalid graph: %w", err)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(file{FormatVersion: FormatVersion, Producer: "proof", Graph: g})
}

// Load reads a graph from JSON and validates it.
func Load(r io.Reader) (*graph.Graph, error) {
	var f file
	dec := json.NewDecoder(r)
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("modelfmt: decode: %w", err)
	}
	if f.FormatVersion != FormatVersion {
		return nil, fmt.Errorf("modelfmt: unsupported format version %d (want %d)", f.FormatVersion, FormatVersion)
	}
	if f.Graph == nil {
		return nil, fmt.Errorf("modelfmt: file contains no graph")
	}
	if f.Graph.Tensors == nil {
		f.Graph.Tensors = map[string]*graph.Tensor{}
	}
	if err := f.Graph.Validate(); err != nil {
		return nil, fmt.Errorf("modelfmt: invalid graph: %w", err)
	}
	return f.Graph, nil
}

// SaveFile writes the graph to a file path.
func SaveFile(g *graph.Graph, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return Save(g, f)
}

// LoadFile reads a graph from a file path.
func LoadFile(path string) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
