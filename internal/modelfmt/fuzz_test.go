package modelfmt

import (
	"bytes"
	"testing"

	"proof/internal/graph"
)

// fuzzSeedGraph builds a small but structurally complete graph — node
// attributes, a parameter tensor, an int-data tensor — exercising every
// field of the format. Full model exports (70-200KB) are deliberately
// NOT used as seeds: real-model round-trips are covered by the regular
// tests, and the fuzz engine's input minimization is unbounded on
// inputs that large, stalling the whole run.
func fuzzSeedGraph() *graph.Graph {
	g := graph.New("seed")
	g.AddTensor(&graph.Tensor{Name: "in", DType: graph.Float32, Shape: graph.Shape{1, 3, 8, 8}})
	g.AddTensor(&graph.Tensor{Name: "w", DType: graph.Float32, Shape: graph.Shape{4, 3, 3, 3}, Param: true})
	g.AddTensor(&graph.Tensor{
		Name: "shape", DType: graph.Int64, Shape: graph.Shape{2}, Param: true,
		IntData: []int64{1, -1},
	})
	g.AddTensor(&graph.Tensor{Name: "c"})
	g.AddTensor(&graph.Tensor{Name: "out"})
	g.AddNode(&graph.Node{
		Name: "conv", OpType: "Conv", Inputs: []string{"in", "w"}, Outputs: []string{"c"},
		Attrs: graph.Attrs{
			"kernel_shape": graph.IntsAttr(3, 3),
			"strides":      graph.IntsAttr(2, 2),
			"pads":         graph.IntsAttr(1, 1, 1, 1),
			"group":        graph.IntAttr(1),
			"equation":     graph.StringAttr("ij,jk->ik"),
		},
	})
	g.AddNode(&graph.Node{Name: "rs", OpType: "Reshape", Inputs: []string{"c", "shape"}, Outputs: []string{"out"}})
	g.Inputs = []string{"in"}
	g.Outputs = []string{"out"}
	return g
}

// FuzzModelFmtRoundTrip hardens the JSON model loader — the boundary
// that user-supplied -model-file inputs cross. Arbitrary bytes must
// either fail to load or round-trip stably: decode → encode → decode
// must reproduce the identical encoding and must never panic.
func FuzzModelFmtRoundTrip(f *testing.F) {
	var buf bytes.Buffer
	if err := Save(fuzzSeedGraph(), &buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"format_version":1}`))
	f.Add([]byte(`{"format_version":1,"graph":{}}`))
	f.Add([]byte(`{"format_version":1,"graph":{"name":"g","nodes":null,"tensors":null}}`))
	f.Add([]byte(`{"format_version":1,"graph":{"name":"g","tensors":{"t":{"name":"t","dtype":99,"shape":[-1,0]}},"inputs":["t"],"outputs":["t"]}}`))
	f.Add([]byte(`{"format_version":2,"graph":{"name":"g"}}`))
	f.Add([]byte(`not json at all`))

	f.Fuzz(func(t *testing.T, data []byte) {
		g1, err := Load(bytes.NewReader(data))
		if err != nil {
			return // rejected inputs just need to not panic
		}
		var enc1 bytes.Buffer
		if err := Save(g1, &enc1); err != nil {
			t.Fatalf("loaded graph failed to save: %v", err)
		}
		g2, err := Load(bytes.NewReader(enc1.Bytes()))
		if err != nil {
			t.Fatalf("re-load of own encoding failed: %v", err)
		}
		var enc2 bytes.Buffer
		if err := Save(g2, &enc2); err != nil {
			t.Fatalf("second save failed: %v", err)
		}
		if !bytes.Equal(enc1.Bytes(), enc2.Bytes()) {
			t.Fatalf("round trip unstable:\nfirst:  %s\nsecond: %s", enc1.Bytes(), enc2.Bytes())
		}
	})
}
