package modelfmt

import (
	"bytes"
	"encoding/json"
	"testing"

	"proof/internal/graph"
)

// fuzzSeedGraph builds a small but structurally complete graph — node
// attributes, a parameter tensor, an int-data tensor — exercising every
// field of the format. Full model exports (70-200KB) are deliberately
// NOT used as seeds: real-model round-trips are covered by the regular
// tests, and the fuzz engine's input minimization is unbounded on
// inputs that large, stalling the whole run.
func fuzzSeedGraph() *graph.Graph {
	g := graph.New("seed")
	g.AddTensor(&graph.Tensor{Name: "in", DType: graph.Float32, Shape: graph.Shape{1, 3, 8, 8}})
	g.AddTensor(&graph.Tensor{Name: "w", DType: graph.Float32, Shape: graph.Shape{4, 3, 3, 3}, Param: true})
	g.AddTensor(&graph.Tensor{
		Name: "shape", DType: graph.Int64, Shape: graph.Shape{2}, Param: true,
		IntData: []int64{1, -1},
	})
	g.AddTensor(&graph.Tensor{Name: "c"})
	g.AddTensor(&graph.Tensor{Name: "out"})
	g.AddNode(&graph.Node{
		Name: "conv", OpType: "Conv", Inputs: []string{"in", "w"}, Outputs: []string{"c"},
		Attrs: graph.Attrs{
			"kernel_shape": graph.IntsAttr(3, 3),
			"strides":      graph.IntsAttr(2, 2),
			"pads":         graph.IntsAttr(1, 1, 1, 1),
			"group":        graph.IntAttr(1),
			"equation":     graph.StringAttr("ij,jk->ik"),
		},
	})
	g.AddNode(&graph.Node{Name: "rs", OpType: "Reshape", Inputs: []string{"c", "shape"}, Outputs: []string{"out"}})
	g.Inputs = []string{"in"}
	g.Outputs = []string{"out"}
	return g
}

// FuzzModelFmtRoundTrip hardens the JSON model loader — the boundary
// that user-supplied -model-file inputs cross. Arbitrary bytes must
// either fail to load or round-trip stably: decode → encode → decode
// must reproduce the identical encoding and must never panic.
func FuzzModelFmtRoundTrip(f *testing.F) {
	var buf bytes.Buffer
	if err := Save(fuzzSeedGraph(), &buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"format_version":1}`))
	f.Add([]byte(`{"format_version":1,"graph":{}}`))
	f.Add([]byte(`{"format_version":1,"graph":{"name":"g","nodes":null,"tensors":null}}`))
	f.Add([]byte(`{"format_version":1,"graph":{"name":"g","tensors":{"t":{"name":"t","dtype":99,"shape":[-1,0]}},"inputs":["t"],"outputs":["t"]}}`))
	f.Add([]byte(`{"format_version":2,"graph":{"name":"g"}}`))
	f.Add([]byte(`not json at all`))

	f.Fuzz(func(t *testing.T, data []byte) {
		g1, err := Load(bytes.NewReader(data))
		if err != nil {
			return // rejected inputs just need to not panic
		}
		var enc1 bytes.Buffer
		if err := Save(g1, &enc1); err != nil {
			t.Fatalf("loaded graph failed to save: %v", err)
		}
		g2, err := Load(bytes.NewReader(enc1.Bytes()))
		if err != nil {
			t.Fatalf("re-load of own encoding failed: %v", err)
		}
		var enc2 bytes.Buffer
		if err := Save(g2, &enc2); err != nil {
			t.Fatalf("second save failed: %v", err)
		}
		if !bytes.Equal(enc1.Bytes(), enc2.Bytes()) {
			t.Fatalf("round trip unstable:\nfirst:  %s\nsecond: %s", enc1.Bytes(), enc2.Bytes())
		}
	})
}

// FuzzValidateCorruptGraph hardens the static model verifier: any graph
// that JSON-decodes — however corrupt (nil tensor entries, negative
// dimensions, dangling references, bogus dtypes, cyclic edges) — must
// be rejected or accepted by graph.Validate with a plain error, never a
// panic. proofd depends on this: an inline graph in a profile request
// reaches Validate directly from the wire, and a panic there would turn
// a malformed request into a crashed worker instead of a 400.
func FuzzValidateCorruptGraph(f *testing.F) {
	seed, err := json.Marshal(fuzzSeedGraph())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"name":"g","tensors":{"t":null},"inputs":["t"]}`))
	f.Add([]byte(`{"name":"g","tensors":{"t":{"name":"u","dtype":99,"shape":[-1,0]}},"outputs":["t"]}`))
	f.Add([]byte(`{"name":"g","nodes":[{"name":"n","op_type":"Relu","inputs":["x"],"outputs":["x"]}],"tensors":{"x":{"name":"x"}}}`))
	f.Add([]byte(`{"name":"g","nodes":[{"name":"a","op_type":"Add","inputs":["p","q"],"outputs":["r"]}],` +
		`"tensors":{"p":{"name":"p","dtype":1,"shape":[2,3]},"q":{"name":"q","dtype":1,"shape":[4]},"r":{"name":"r","dtype":1,"shape":[2,3]}}}`))
	f.Add([]byte(`{"name":"g","tensors":{"w":{"name":"w","dtype":1,"param":true,"int_data":[1,2,3]}}}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var g graph.Graph
		if err := json.Unmarshal(data, &g); err != nil {
			return // not even a graph; nothing to validate
		}
		if g.Tensors == nil {
			g.Tensors = map[string]*graph.Tensor{}
		}
		// Must classify, never panic.
		for _, ve := range g.ValidateAll() {
			if ve.Code == "" || ve.Error() == "" {
				t.Fatalf("untyped validation error: %+v", ve)
			}
		}
		_ = g.Validate()
	})
}
