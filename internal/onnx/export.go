package onnx

import (
	"fmt"
	"io"
	"os"

	"proof/internal/graph"
)

// opsetVersion is the opset the exporter declares.
const opsetVersion = 17

// Load parses an ONNX model from r and converts it to the internal IR.
func Load(r io.Reader) (*graph.Graph, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	m, err := ParseModel(data)
	if err != nil {
		return nil, err
	}
	return ToGraph(m)
}

// LoadFile parses an ONNX model file.
func LoadFile(path string) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// Export serializes a graph as an ONNX ModelProto. The export is
// *structural*: initializer tensors carry dims and data types but no
// weight payload (PRoof's analysis never reads weight values), except
// small int64 constants whose values shape inference needs.
func Export(g *graph.Graph) ([]byte, error) {
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("onnx: refusing to export invalid graph: %w", err)
	}
	var model encoder
	model.writeVarintField(1, 8) // ir_version
	model.writeStringField(2, "proof")

	var gp encoder
	gp.writeStringField(2, g.Name)
	for _, n := range g.Nodes {
		sub, err := exportNode(n)
		if err != nil {
			return nil, err
		}
		gp.writeMessageField(1, sub)
	}
	for _, name := range g.SortedTensorNames() {
		t := g.Tensor(name)
		if !t.Param {
			continue
		}
		gp.writeMessageField(5, exportTensor(t))
	}
	for _, in := range g.Inputs {
		gp.writeMessageField(11, exportValueInfo(g.Tensor(in)))
	}
	for _, out := range g.Outputs {
		gp.writeMessageField(12, exportValueInfo(g.Tensor(out)))
	}
	model.writeMessageField(7, &gp)

	var opset encoder
	opset.writeVarintField(2, opsetVersion)
	model.writeMessageField(8, &opset)
	return model.buf, nil
}

// SaveFile writes the graph to an .onnx file.
func SaveFile(g *graph.Graph, path string) error {
	data, err := Export(g)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

func exportNode(n *graph.Node) (*encoder, error) {
	var e encoder
	for _, in := range n.Inputs {
		e.writeStringField(1, in)
	}
	for _, out := range n.Outputs {
		e.writeStringField(2, out)
	}
	e.writeStringField(3, n.Name)
	e.writeStringField(4, n.OpType)

	// Constant nodes: translate value_ints/value_float back to the
	// ONNX "value" tensor attribute.
	if n.OpType == "Constant" {
		attr, err := exportConstantValue(n)
		if err != nil {
			return nil, err
		}
		e.writeMessageField(5, attr)
		return &e, nil
	}
	for name, a := range n.Attrs {
		var attr encoder
		attr.writeStringField(1, name)
		switch {
		case name == "to" && n.OpType == "Cast":
			dt, err := graph.ParseDataType(a.S)
			if err != nil {
				return nil, fmt.Errorf("onnx: node %q: %w", n.Name, err)
			}
			attr.writeVarintField(3, uint64(dtypeToONNX(dt)))
			attr.writeVarintField(20, AttrTypeInt)
		case a.Kind == graph.AttrInt:
			attr.writeVarintField(3, uint64(a.I))
			attr.writeVarintField(20, AttrTypeInt)
		case a.Kind == graph.AttrInts:
			vals := make([]int64, len(a.Ints))
			for i, v := range a.Ints {
				vals[i] = int64(v)
			}
			attr.writePackedInt64Field(8, vals)
			attr.writeVarintField(20, AttrTypeInts)
		case a.Kind == graph.AttrFloat:
			attr.writeFloatField(2, float32(a.F))
			attr.writeVarintField(20, AttrTypeFloat)
		case a.Kind == graph.AttrString:
			attr.writeStringField(4, a.S)
			attr.writeVarintField(20, AttrTypeString)
		default:
			return nil, fmt.Errorf("onnx: node %q attribute %q has unsupported kind", n.Name, name)
		}
		e.writeMessageField(5, &attr)
	}
	return &e, nil
}

func exportConstantValue(n *graph.Node) (*encoder, error) {
	var attr encoder
	attr.writeStringField(1, "value")
	var tensor encoder
	if v, ok := n.Attrs["value_ints"]; ok && v.Kind == graph.AttrInts {
		vals := make([]int64, len(v.Ints))
		for i, x := range v.Ints {
			vals[i] = int64(x)
		}
		tensor.writePackedInt64Field(1, []int64{int64(len(vals))}) // dims
		tensor.writeVarintField(2, TensorInt64)
		tensor.writePackedInt64Field(7, vals)
	} else if v, ok := n.Attrs["value_float"]; ok {
		tensor.writeVarintField(2, TensorFloat)
		var fd encoder
		fd.writeFloatFieldPayload(float32(v.F))
		tensor.writeBytesField(4, fd.buf)
	} else {
		return nil, fmt.Errorf("onnx: Constant node %q has no exportable value", n.Name)
	}
	attr.writeMessageField(5, &tensor)
	attr.writeVarintField(20, AttrTypeTensor)
	return &attr, nil
}

func exportTensor(t *graph.Tensor) *encoder {
	var e encoder
	dims := make([]int64, len(t.Shape))
	for i, d := range t.Shape {
		dims[i] = int64(d)
	}
	e.writePackedInt64Field(1, dims)
	e.writeVarintField(2, uint64(dtypeToONNX(t.DType)))
	if t.IntData != nil {
		e.writePackedInt64Field(7, t.IntData)
	}
	e.writeStringField(8, t.Name)
	return &e
}

func exportValueInfo(t *graph.Tensor) *encoder {
	var e encoder
	e.writeStringField(1, t.Name)
	var typ, tt, shape encoder
	tt.writeVarintField(1, uint64(dtypeToONNX(t.DType)))
	for _, d := range t.Shape {
		var dim encoder
		dim.writeVarintField(1, uint64(d))
		shape.writeMessageField(1, &dim)
	}
	tt.writeMessageField(2, &shape)
	typ.writeMessageField(1, &tt)
	e.writeMessageField(2, &typ)
	return &e
}

// writeFloatFieldPayload appends a bare little-endian float32 (for
// packed float_data payloads).
func (e *encoder) writeFloatFieldPayload(v float32) {
	var sub [4]byte
	putF32(sub[:], v)
	e.buf = append(e.buf, sub[:]...)
}
