package onnx

import (
	"testing"

	"proof/internal/graph"
)

func TestDTypeMappingRoundTrip(t *testing.T) {
	for _, dt := range []graph.DataType{
		graph.Float32, graph.Float16, graph.BFloat16, graph.Int8,
		graph.Int32, graph.Int64, graph.Bool,
	} {
		enum := dtypeToONNX(dt)
		back, err := dtypeFromONNX(enum)
		if err != nil {
			t.Fatalf("%v: %v", dt, err)
		}
		if back != dt {
			t.Errorf("%v -> %d -> %v", dt, enum, back)
		}
	}
	// Double maps to fp32; uint8 to int8; unknown errors.
	if dt, err := dtypeFromONNX(TensorDouble); err != nil || dt != graph.Float32 {
		t.Error("double mapping")
	}
	if dt, err := dtypeFromONNX(TensorUint8); err != nil || dt != graph.Int8 {
		t.Error("uint8 mapping")
	}
	if _, err := dtypeFromONNX(999); err == nil {
		t.Error("unknown dtype must error")
	}
}

func TestTensorInt64Values(t *testing.T) {
	// int64_data form.
	tp := &TensorProto{DataType: TensorInt64, Int64Data: []int64{1, -2, 3}}
	if v := tensorInt64Values(tp); len(v) != 3 || v[1] != -2 {
		t.Errorf("int64_data = %v", v)
	}
	// raw_data little-endian form.
	raw := make([]byte, 16)
	raw[0] = 5                   // 5
	raw[8], raw[15] = 0xFE, 0x00 // 254
	tp = &TensorProto{DataType: TensorInt64, RawData: raw}
	v := tensorInt64Values(tp)
	if len(v) != 2 || v[0] != 5 || v[1] != 254 {
		t.Errorf("raw_data = %v", v)
	}
	// negative value in raw form
	neg := make([]byte, 8)
	for i := range neg {
		neg[i] = 0xFF
	}
	tp = &TensorProto{DataType: TensorInt64, RawData: neg}
	if v := tensorInt64Values(tp); v[0] != -1 {
		t.Errorf("raw negative = %v", v)
	}
	// No payload -> nil.
	if v := tensorInt64Values(&TensorProto{DataType: TensorInt64}); v != nil {
		t.Errorf("empty = %v", v)
	}
}

func TestConvertConstantForms(t *testing.T) {
	g := graph.New("c")
	// Large float constant folds into an initializer (node dropped).
	node, err := convertConstant(g, &NodeProto{Output: []string{"big"}}, "big",
		&TensorProto{DataType: TensorFloat, Dims: []int64{4, 4}})
	if err != nil || node != nil {
		t.Fatalf("large float constant should fold: %v, %v", node, err)
	}
	tens := g.Tensor("big")
	if tens == nil || !tens.Param || !tens.Shape.Equal(graph.Shape{4, 4}) {
		t.Errorf("folded initializer = %+v", tens)
	}
	// Scalar float becomes a value_float Constant node.
	node, err = convertConstant(g, &NodeProto{Output: []string{"s"}}, "s",
		&TensorProto{DataType: TensorFloat, FloatData: []float32{2.5}})
	if err != nil || node == nil {
		t.Fatal(err)
	}
	if node.Attrs.Float("value_float", 0) != 2.5 {
		t.Errorf("scalar constant attrs = %v", node.Attrs)
	}
	// Small int64 becomes value_ints.
	node, err = convertConstant(g, &NodeProto{Output: []string{"i"}}, "i",
		&TensorProto{DataType: TensorInt64, Dims: []int64{2}, Int64Data: []int64{7, 9}})
	if err != nil || node == nil {
		t.Fatal(err)
	}
	ints := node.Attrs.Ints("value_ints", nil)
	if len(ints) != 2 || ints[1] != 9 {
		t.Errorf("int constant attrs = %v", node.Attrs)
	}
	// Unsupported dtype errors.
	if _, err := convertConstant(g, &NodeProto{Output: []string{"u"}}, "u",
		&TensorProto{DataType: 999, Dims: []int64{2, 2}}); err == nil {
		t.Error("unsupported constant dtype must error")
	}
}

func TestToGraphDropsEmptyOptionalInputs(t *testing.T) {
	m := &ModelProto{Graph: &GraphProto{
		Name:  "opt",
		Input: []*ValueInfoProto{{Name: "x", ElemType: TensorFloat, Dims: []int64{1, 4}}},
		Nodes: []*NodeProto{{
			OpType: "Clip", Input: []string{"x", "", ""}, Output: []string{"y"},
		}},
		Output: []*ValueInfoProto{{Name: "y"}},
	}}
	g, err := ToGraph(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Nodes[0].Inputs) != 1 {
		t.Errorf("optional empty inputs should be dropped: %v", g.Nodes[0].Inputs)
	}
	if err := g.InferShapes(); err != nil {
		t.Fatal(err)
	}
}

func TestToGraphDuplicateNodeNames(t *testing.T) {
	m := &ModelProto{Graph: &GraphProto{
		Name:  "dup",
		Input: []*ValueInfoProto{{Name: "x", ElemType: TensorFloat, Dims: []int64{1}}},
		Nodes: []*NodeProto{
			{Name: "n", OpType: "Relu", Input: []string{"x"}, Output: []string{"a"}},
			{Name: "n", OpType: "Relu", Input: []string{"a"}, Output: []string{"y"}},
		},
		Output: []*ValueInfoProto{{Name: "y"}},
	}}
	g, err := ToGraph(m)
	if err != nil {
		t.Fatalf("duplicate names should be uniquified: %v", err)
	}
	if g.Nodes[0].Name == g.Nodes[1].Name {
		t.Error("names not uniquified")
	}
}

func TestCastEnumConversion(t *testing.T) {
	m := &ModelProto{Graph: &GraphProto{
		Name:  "cast",
		Input: []*ValueInfoProto{{Name: "x", ElemType: TensorFloat, Dims: []int64{2}}},
		Nodes: []*NodeProto{{
			Name: "c", OpType: "Cast", Input: []string{"x"}, Output: []string{"y"},
			Attribute: []*AttributeProto{{Name: "to", Type: AttrTypeInt, I: TensorFloat16}},
		}},
		Output: []*ValueInfoProto{{Name: "y"}},
	}}
	g, err := ToGraph(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.InferShapes(); err != nil {
		t.Fatal(err)
	}
	if g.Tensor("y").DType != graph.Float16 {
		t.Errorf("cast output dtype = %v", g.Tensor("y").DType)
	}
	// Unsupported cast enum errors.
	m.Graph.Nodes[0].Attribute[0].I = 8 // STRING
	if _, err := ToGraph(m); err == nil {
		t.Error("unsupported cast target must error")
	}
}
