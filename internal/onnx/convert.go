package onnx

import (
	"fmt"

	"proof/internal/graph"
)

// dtypeFromONNX maps ONNX TensorProto data types to the IR.
func dtypeFromONNX(dt int) (graph.DataType, error) {
	switch dt {
	case TensorFloat:
		return graph.Float32, nil
	case TensorFloat16:
		return graph.Float16, nil
	case TensorBFloat16:
		return graph.BFloat16, nil
	case TensorInt8, TensorUint8:
		return graph.Int8, nil
	case TensorInt32, TensorInt16:
		return graph.Int32, nil
	case TensorInt64:
		return graph.Int64, nil
	case TensorBool:
		return graph.Bool, nil
	case TensorDouble:
		return graph.Float32, nil // doubles analyzed as fp32
	}
	return graph.DTypeInvalid, fmt.Errorf("onnx: unsupported tensor data type %d", dt)
}

func dtypeToONNX(dt graph.DataType) int {
	switch dt {
	case graph.Float32:
		return TensorFloat
	case graph.Float16:
		return TensorFloat16
	case graph.BFloat16:
		return TensorBFloat16
	case graph.Int8:
		return TensorInt8
	case graph.Int32:
		return TensorInt32
	case graph.Int64:
		return TensorInt64
	case graph.Bool:
		return TensorBool
	}
	return TensorFloat
}

// castEnumNames maps Cast's "to" data-type enum to IR type names.
var castEnumNames = map[int64]string{
	TensorFloat: "fp32", TensorFloat16: "fp16", TensorBFloat16: "bf16",
	TensorInt8: "int8", TensorInt32: "int32", TensorInt64: "int64",
	TensorBool: "bool", TensorDouble: "fp32",
}

// tensorInt64Values extracts the int64 payload of a TensorProto (from
// int64_data or raw_data).
func tensorInt64Values(t *TensorProto) []int64 {
	if len(t.Int64Data) > 0 {
		return t.Int64Data
	}
	if len(t.RawData) >= 8 && t.DataType == TensorInt64 {
		out := make([]int64, len(t.RawData)/8)
		for i := range out {
			var v uint64
			for b := 7; b >= 0; b-- {
				v = v<<8 | uint64(t.RawData[i*8+b])
			}
			out[i] = int64(v)
		}
		return out
	}
	return nil
}

func numElements(dims []int64) int64 {
	n := int64(1)
	for _, d := range dims {
		n *= d
	}
	return n
}

// ToGraph converts a parsed ONNX model into the internal IR. Symbolic
// dimensions (dim_param, usually the batch) become 1; rebatch with
// analysis.NewRepWithBatch. ONNX Constant nodes with large float
// payloads fold into initializers.
func ToGraph(m *ModelProto) (*graph.Graph, error) {
	gp := m.Graph
	name := gp.Name
	if name == "" {
		name = "onnx-model"
	}
	g := graph.New(name)

	initializers := map[string]bool{}
	for _, t := range gp.Initializer {
		dt, err := dtypeFromONNX(t.DataType)
		if err != nil {
			return nil, fmt.Errorf("onnx: initializer %q: %w", t.Name, err)
		}
		shape := make(graph.Shape, len(t.Dims))
		for i, d := range t.Dims {
			shape[i] = int(d)
		}
		tensor := &graph.Tensor{Name: t.Name, DType: dt, Shape: shape, Param: true}
		if dt == graph.Int64 && numElements(t.Dims) <= 64 {
			tensor.IntData = tensorInt64Values(t)
		}
		g.AddTensor(tensor)
		initializers[t.Name] = true
	}

	for _, vi := range gp.Input {
		if initializers[vi.Name] {
			continue // older exports list initializers as inputs
		}
		dt, err := dtypeFromONNX(vi.ElemType)
		if err != nil {
			return nil, fmt.Errorf("onnx: input %q: %w", vi.Name, err)
		}
		shape := make(graph.Shape, len(vi.Dims))
		for i, d := range vi.Dims {
			if d <= 0 {
				d = 1 // symbolic (batch) dimension
			}
			shape[i] = int(d)
		}
		g.AddTensor(&graph.Tensor{Name: vi.Name, DType: dt, Shape: shape})
		g.Inputs = append(g.Inputs, vi.Name)
	}

	usedNames := map[string]bool{}
	for i, n := range gp.Nodes {
		node, err := convertNode(g, n, i, usedNames)
		if err != nil {
			return nil, err
		}
		if node == nil {
			continue // folded (e.g. large Constant became initializer)
		}
		for _, out := range node.Outputs {
			if g.Tensor(out) == nil {
				g.AddTensor(&graph.Tensor{Name: out})
			}
		}
		g.AddNode(node)
	}

	for _, vi := range gp.Output {
		if g.Tensor(vi.Name) == nil {
			g.AddTensor(&graph.Tensor{Name: vi.Name})
		}
		g.Outputs = append(g.Outputs, vi.Name)
	}

	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("onnx: converted graph invalid: %w", err)
	}
	return g, nil
}

// convertNode translates one NodeProto; it may return (nil, nil) when
// the node folds away into an initializer.
func convertNode(g *graph.Graph, n *NodeProto, idx int, usedNames map[string]bool) (*graph.Node, error) {
	name := n.Name
	if name == "" {
		name = fmt.Sprintf("%s_%d", n.OpType, idx)
	}
	for usedNames[name] {
		name += "_"
	}
	usedNames[name] = true

	attrs := graph.Attrs{}
	var constTensor *TensorProto
	for _, a := range n.Attribute {
		switch {
		case a.Name == "value" && a.T != nil:
			constTensor = a.T
		case a.Name == "to" && n.OpType == "Cast":
			tn, ok := castEnumNames[a.I]
			if !ok {
				return nil, fmt.Errorf("onnx: Cast node %q to unsupported type %d", name, a.I)
			}
			attrs["to"] = graph.StringAttr(tn)
		case len(a.Ints) > 0 || a.Type == AttrTypeInts:
			ints := make([]int, len(a.Ints))
			for i, v := range a.Ints {
				ints[i] = int(v)
			}
			attrs[a.Name] = graph.IntsAttr(ints...)
		case a.Type == AttrTypeInt:
			attrs[a.Name] = graph.IntAttr(int(a.I))
		case a.Type == AttrTypeFloat:
			attrs[a.Name] = graph.FloatAttr(float64(a.F))
		case a.Type == AttrTypeString:
			attrs[a.Name] = graph.StringAttr(string(a.S))
		}
	}

	if n.OpType == "Constant" && constTensor != nil {
		return convertConstant(g, n, name, constTensor)
	}

	// Drop empty optional-input placeholders.
	inputs := make([]string, 0, len(n.Input))
	for _, in := range n.Input {
		if in == "" {
			continue
		}
		inputs = append(inputs, in)
	}
	return &graph.Node{
		Name:    name,
		OpType:  n.OpType,
		Inputs:  inputs,
		Outputs: append([]string(nil), n.Output...),
		Attrs:   attrs,
	}, nil
}

// convertConstant lowers an ONNX Constant node: small int64 payloads
// become IR Constant nodes with value_ints (so value propagation
// works); scalar floats become value_float; anything larger folds into
// an initializer tensor and the node disappears.
func convertConstant(g *graph.Graph, n *NodeProto, name string, t *TensorProto) (*graph.Node, error) {
	out := n.Output[0]
	elems := numElements(t.Dims)
	if t.DataType == TensorInt64 && elems <= 64 {
		vals := tensorInt64Values(t)
		ints := make([]int, len(vals))
		for i, v := range vals {
			ints[i] = int(v)
		}
		return &graph.Node{
			Name: name, OpType: "Constant", Outputs: []string{out},
			Attrs: graph.Attrs{"value_ints": graph.IntsAttr(ints...)},
		}, nil
	}
	if t.DataType == TensorFloat && elems == 1 {
		v := float64(0)
		if len(t.FloatData) > 0 {
			v = float64(t.FloatData[0])
		} else if len(t.RawData) >= 4 {
			v = float64(f32FromBytes(t.RawData))
		}
		return &graph.Node{
			Name: name, OpType: "Constant", Outputs: []string{out},
			Attrs: graph.Attrs{"value_float": graph.FloatAttr(v)},
		}, nil
	}
	// Large constant: materialize as an initializer.
	dt, err := dtypeFromONNX(t.DataType)
	if err != nil {
		return nil, fmt.Errorf("onnx: constant %q: %w", name, err)
	}
	shape := make(graph.Shape, len(t.Dims))
	for i, d := range t.Dims {
		shape[i] = int(d)
	}
	tensor := &graph.Tensor{Name: out, DType: dt, Shape: shape, Param: true}
	if dt == graph.Int64 && elems <= 4096 {
		tensor.IntData = tensorInt64Values(t)
	}
	g.AddTensor(tensor)
	return nil, nil
}
