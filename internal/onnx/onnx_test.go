package onnx

import (
	"bytes"
	"path/filepath"
	"testing"

	"proof/internal/analysis"
	"proof/internal/graph"
	"proof/internal/models"
)

// TestRoundTripZooModels is the strongest codec check: export every zoo
// model to ONNX bytes, parse them back, and verify the analysis totals
// (node count, params, FLOP, memory) are identical.
func TestRoundTripZooModels(t *testing.T) {
	keys := []string{"resnet-50", "mobilenetv2-1.0", "shufflenetv2-1.0", "vit-t", "distilbert", "efficientnet-b0"}
	for _, key := range keys {
		key := key
		t.Run(key, func(t *testing.T) {
			g, err := models.Build(key)
			if err != nil {
				t.Fatal(err)
			}
			data, err := Export(g)
			if err != nil {
				t.Fatalf("export: %v", err)
			}
			back, err := Load(bytes.NewReader(data))
			if err != nil {
				t.Fatalf("load: %v", err)
			}
			r1, err := analysis.NewRep(g)
			if err != nil {
				t.Fatal(err)
			}
			r2, err := analysis.NewRep(back)
			if err != nil {
				t.Fatalf("analyze round-tripped: %v", err)
			}
			if r1.NodeCount() != r2.NodeCount() {
				t.Errorf("nodes %d != %d", r1.NodeCount(), r2.NodeCount())
			}
			if g.ParamCount() != back.ParamCount() {
				t.Errorf("params %d != %d", g.ParamCount(), back.ParamCount())
			}
			if r1.TotalCost() != r2.TotalCost() {
				t.Errorf("cost %v != %v", r1.TotalCost(), r2.TotalCost())
			}
		})
	}
}

func TestRoundTripRebatch(t *testing.T) {
	g, err := models.Build("shufflenetv2-1.0")
	if err != nil {
		t.Fatal(err)
	}
	data, err := Export(g)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Load(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	// The dynamic shuffle chains must survive the codec: rebatching
	// the imported model works.
	rep, err := analysis.NewRepWithBatch(back, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BatchSize() != 4 {
		t.Error("rebatch failed")
	}
}

func TestSaveLoadFile(t *testing.T) {
	g, err := models.Build("mobilenetv2-0.5")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.onnx")
	if err := SaveFile(g, path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != g.Name {
		t.Errorf("name = %q", back.Name)
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.onnx")); err == nil {
		t.Error("missing file must error")
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, err := ParseModel([]byte{0xff, 0xff, 0xff}); err == nil {
		t.Error("garbage should not parse")
	}
	if _, err := ParseModel(nil); err == nil {
		t.Error("empty model has no graph")
	}
	if _, err := Load(bytes.NewReader([]byte("not onnx"))); err == nil {
		t.Error("text should not load")
	}
}

func TestVarintEdgeCases(t *testing.T) {
	var e encoder
	vals := []uint64{0, 1, 127, 128, 300, 1 << 20, 1<<63 - 1}
	for _, v := range vals {
		e.varint(v)
	}
	d := &decoder{buf: e.buf}
	for _, want := range vals {
		got, err := d.readVarint()
		if err != nil || got != want {
			t.Fatalf("varint %d -> %d, %v", want, got, err)
		}
	}
	// Truncated varint errors.
	d2 := &decoder{buf: []byte{0x80}}
	if _, err := d2.readVarint(); err == nil {
		t.Error("truncated varint must error")
	}
}

func TestSymbolicBatchDimension(t *testing.T) {
	// Build a tiny model where the input batch is symbolic (dim value
	// missing): the importer substitutes 1.
	var model encoder
	model.writeVarintField(1, 8)
	var gp encoder
	gp.writeStringField(2, "sym")

	// Input value info: name "x", float, dims [sym, 4].
	var vi encoder
	vi.writeStringField(1, "x")
	var typ, tt, shape encoder
	tt.writeVarintField(1, TensorFloat)
	var d1 encoder
	d1.writeStringField(2, "batch") // dim_param only
	shape.writeMessageField(1, &d1)
	var d2 encoder
	d2.writeVarintField(1, 4)
	shape.writeMessageField(1, &d2)
	tt.writeMessageField(2, &shape)
	typ.writeMessageField(1, &tt)
	vi.writeMessageField(2, &typ)
	gp.writeMessageField(11, &vi)

	// One Relu node x -> y.
	var node encoder
	node.writeStringField(1, "x")
	node.writeStringField(2, "y")
	node.writeStringField(3, "relu")
	node.writeStringField(4, "Relu")
	gp.writeMessageField(1, &node)

	// Output value info: y.
	var out encoder
	out.writeStringField(1, "y")
	gp.writeMessageField(12, &out)

	model.writeMessageField(7, &gp)
	g, err := Load(bytes.NewReader(model.buf))
	if err != nil {
		t.Fatal(err)
	}
	if !g.Tensor("x").Shape.Equal(graph.Shape{1, 4}) {
		t.Errorf("symbolic batch shape = %v", g.Tensor("x").Shape)
	}
	if err := g.InferShapes(); err != nil {
		t.Fatal(err)
	}
}

func TestConstantNodeConversion(t *testing.T) {
	g, err := models.Build("vit-t")
	if err != nil {
		t.Fatal(err)
	}
	data, err := Export(g)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Load(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	// Constant nodes with int payloads must survive with their
	// values (shape inference through Reshape targets).
	if err := back.InferShapes(); err != nil {
		t.Fatalf("constants lost values: %v", err)
	}
	constants := 0
	for _, n := range back.Nodes {
		if n.OpType == "Constant" {
			constants++
		}
	}
	if constants == 0 {
		t.Error("ViT export should retain Constant nodes")
	}
}
