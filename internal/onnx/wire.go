// Package onnx reads and writes ONNX model files (the protobuf
// ModelProto format) without any protobuf dependency: a hand-written
// wire-format codec covers the message subset PRoof needs — graphs,
// nodes, attributes, tensors, and value infos. Imported models convert
// to the internal graph IR; the exporter produces files other ONNX
// tooling can read, and powers round-trip tests against the model zoo.
package onnx

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Wire types of the protobuf encoding.
const (
	wireVarint = 0
	wireI64    = 1
	wireBytes  = 2
	wireI32    = 5
)

// field is one decoded protobuf field occurrence.
type field struct {
	num  int
	wire int
	// varint holds wireVarint and wireI64/wireI32 payloads.
	varint uint64
	// bytes holds wireBytes payloads (sub-messages, strings, packed
	// repeated scalars).
	bytes []byte
}

// decoder walks a protobuf buffer field by field.
type decoder struct {
	buf []byte
	pos int
}

func (d *decoder) done() bool { return d.pos >= len(d.buf) }

func (d *decoder) readVarint() (uint64, error) {
	var v uint64
	var shift uint
	for {
		if d.pos >= len(d.buf) {
			return 0, fmt.Errorf("onnx: truncated varint")
		}
		b := d.buf[d.pos]
		d.pos++
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v, nil
		}
		shift += 7
		if shift >= 64 {
			return 0, fmt.Errorf("onnx: varint overflow")
		}
	}
}

// next decodes the next field.
func (d *decoder) next() (field, error) {
	tag, err := d.readVarint()
	if err != nil {
		return field{}, err
	}
	f := field{num: int(tag >> 3), wire: int(tag & 7)}
	if f.num <= 0 {
		return field{}, fmt.Errorf("onnx: invalid field number %d", f.num)
	}
	switch f.wire {
	case wireVarint:
		f.varint, err = d.readVarint()
		return f, err
	case wireI64:
		if d.pos+8 > len(d.buf) {
			return field{}, fmt.Errorf("onnx: truncated fixed64")
		}
		f.varint = binary.LittleEndian.Uint64(d.buf[d.pos:])
		d.pos += 8
		return f, nil
	case wireI32:
		if d.pos+4 > len(d.buf) {
			return field{}, fmt.Errorf("onnx: truncated fixed32")
		}
		f.varint = uint64(binary.LittleEndian.Uint32(d.buf[d.pos:]))
		d.pos += 4
		return f, nil
	case wireBytes:
		n, err := d.readVarint()
		if err != nil {
			return field{}, err
		}
		if uint64(d.pos)+n > uint64(len(d.buf)) {
			return field{}, fmt.Errorf("onnx: truncated bytes field (%d)", n)
		}
		f.bytes = d.buf[d.pos : d.pos+int(n)]
		d.pos += int(n)
		return f, nil
	}
	return field{}, fmt.Errorf("onnx: unsupported wire type %d", f.wire)
}

// walk invokes fn for each field of buf.
func walk(buf []byte, fn func(field) error) error {
	d := &decoder{buf: buf}
	for !d.done() {
		f, err := d.next()
		if err != nil {
			return err
		}
		if err := fn(f); err != nil {
			return err
		}
	}
	return nil
}

// packedInt64 decodes a packed repeated int64 payload; it also accepts
// a single unpacked varint occurrence.
func packedInt64(f field) ([]int64, error) {
	if f.wire == wireVarint {
		return []int64{int64(f.varint)}, nil
	}
	var out []int64
	d := &decoder{buf: f.bytes}
	for !d.done() {
		v, err := d.readVarint()
		if err != nil {
			return nil, err
		}
		out = append(out, int64(v))
	}
	return out, nil
}

// encoder builds a protobuf buffer.
type encoder struct {
	buf []byte
}

func (e *encoder) varint(v uint64) {
	for v >= 0x80 {
		e.buf = append(e.buf, byte(v)|0x80)
		v >>= 7
	}
	e.buf = append(e.buf, byte(v))
}

func (e *encoder) tag(num, wire int) { e.varint(uint64(num)<<3 | uint64(wire)) }

func (e *encoder) writeVarintField(num int, v uint64) {
	e.tag(num, wireVarint)
	e.varint(v)
}

func (e *encoder) writeBytesField(num int, b []byte) {
	e.tag(num, wireBytes)
	e.varint(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

func (e *encoder) writeStringField(num int, s string) {
	e.writeBytesField(num, []byte(s))
}

func (e *encoder) writeFloatField(num int, v float32) {
	e.tag(num, wireI32)
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], math.Float32bits(v))
	e.buf = append(e.buf, b[:]...)
}

func (e *encoder) writeMessageField(num int, sub *encoder) {
	e.writeBytesField(num, sub.buf)
}

func (e *encoder) writePackedInt64Field(num int, vals []int64) {
	var sub encoder
	for _, v := range vals {
		sub.varint(uint64(v))
	}
	e.writeBytesField(num, sub.buf)
}

func f32FromBits(bits uint32) float32 { return math.Float32frombits(bits) }

func f32FromBytes(b []byte) float32 {
	return math.Float32frombits(binary.LittleEndian.Uint32(b))
}

func putF32(b []byte, v float32) {
	binary.LittleEndian.PutUint32(b, math.Float32bits(v))
}
