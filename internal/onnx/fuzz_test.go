package onnx

import (
	"bytes"
	"testing"

	"proof/internal/models"
)

// FuzzParseModel hardens the wire-format parser: arbitrary bytes must
// never panic — they either parse or return an error. Seeds include a
// real exported model and truncations of it.
func FuzzParseModel(f *testing.F) {
	g, err := models.Build("mobilenetv2-0.5")
	if err != nil {
		f.Fatal(err)
	}
	data, err := Export(g)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(data)
	f.Add(data[:len(data)/2])
	f.Add([]byte{})
	f.Add([]byte{0x08, 0x08})             // bare varint field
	f.Add([]byte{0x3a, 0x02, 0x08, 0x01}) // nested message
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, in []byte) {
		m, err := ParseModel(in)
		if err != nil || m == nil {
			return
		}
		// A successfully parsed model must convert or error cleanly.
		_, _ = ToGraph(m)
	})
}

// FuzzRoundTripTruncation: truncating a valid export at any point must
// not panic the loader.
func FuzzRoundTripTruncation(f *testing.F) {
	g, err := models.Build("shufflenetv2-0.5")
	if err != nil {
		f.Fatal(err)
	}
	data, err := Export(g)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(len(data) / 3)
	f.Add(len(data) - 1)
	f.Add(1)
	f.Fuzz(func(t *testing.T, cut int) {
		if cut < 0 || cut > len(data) {
			return
		}
		_, _ = Load(bytes.NewReader(data[:cut]))
	})
}
