package onnx

import "fmt"

// The message structs mirror the subset of onnx.proto PRoof consumes.

// ModelProto is the top-level ONNX file message.
type ModelProto struct {
	IRVersion     int64
	ProducerName  string
	Graph         *GraphProto
	OpsetVersions []int64
}

// GraphProto is an ONNX graph.
type GraphProto struct {
	Name        string
	Nodes       []*NodeProto
	Initializer []*TensorProto
	Input       []*ValueInfoProto
	Output      []*ValueInfoProto
	ValueInfo   []*ValueInfoProto
}

// NodeProto is one operator node.
type NodeProto struct {
	Name      string
	OpType    string
	Domain    string
	Input     []string
	Output    []string
	Attribute []*AttributeProto
}

// Attribute type enum values (onnx.AttributeProto.AttributeType).
const (
	AttrTypeFloat   = 1
	AttrTypeInt     = 2
	AttrTypeString  = 3
	AttrTypeTensor  = 4
	AttrTypeFloats  = 6
	AttrTypeInts    = 7
	AttrTypeStrings = 8
)

// AttributeProto is a node attribute.
type AttributeProto struct {
	Name   string
	Type   int
	F      float32
	I      int64
	S      []byte
	T      *TensorProto
	Floats []float32
	Ints   []int64
}

// ONNX TensorProto.DataType enum values.
const (
	TensorFloat    = 1
	TensorUint8    = 2
	TensorInt8     = 3
	TensorInt16    = 5
	TensorInt32    = 6
	TensorInt64    = 7
	TensorBool     = 9
	TensorFloat16  = 10
	TensorDouble   = 11
	TensorBFloat16 = 16
)

// TensorProto is a constant tensor (initializer or attribute value).
type TensorProto struct {
	Name      string
	Dims      []int64
	DataType  int
	RawData   []byte
	Int64Data []int64
	FloatData []float32
}

// ValueInfoProto declares a graph input/output/intermediate tensor.
type ValueInfoProto struct {
	Name     string
	ElemType int
	// Dims uses -1 for symbolic dimensions (dim_param).
	Dims []int64
}

// ---- Decoding ----

// ParseModel decodes a serialized ModelProto.
func ParseModel(data []byte) (*ModelProto, error) {
	m := &ModelProto{}
	err := walk(data, func(f field) error {
		switch f.num {
		case 1: // ir_version
			m.IRVersion = int64(f.varint)
		case 2: // producer_name
			m.ProducerName = string(f.bytes)
		case 7: // graph
			g, err := parseGraph(f.bytes)
			if err != nil {
				return err
			}
			m.Graph = g
		case 8: // opset_import
			v, err := parseOpset(f.bytes)
			if err != nil {
				return err
			}
			m.OpsetVersions = append(m.OpsetVersions, v)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if m.Graph == nil {
		return nil, fmt.Errorf("onnx: model has no graph")
	}
	return m, nil
}

func parseOpset(buf []byte) (int64, error) {
	var version int64
	err := walk(buf, func(f field) error {
		if f.num == 2 { // version
			version = int64(f.varint)
		}
		return nil
	})
	return version, err
}

func parseGraph(buf []byte) (*GraphProto, error) {
	g := &GraphProto{}
	err := walk(buf, func(f field) error {
		switch f.num {
		case 1: // node
			n, err := parseNode(f.bytes)
			if err != nil {
				return err
			}
			g.Nodes = append(g.Nodes, n)
		case 2: // name
			g.Name = string(f.bytes)
		case 5: // initializer
			t, err := parseTensor(f.bytes)
			if err != nil {
				return err
			}
			g.Initializer = append(g.Initializer, t)
		case 11, 12, 13: // input, output, value_info
			vi, err := parseValueInfo(f.bytes)
			if err != nil {
				return err
			}
			switch f.num {
			case 11:
				g.Input = append(g.Input, vi)
			case 12:
				g.Output = append(g.Output, vi)
			default:
				g.ValueInfo = append(g.ValueInfo, vi)
			}
		}
		return nil
	})
	return g, err
}

func parseNode(buf []byte) (*NodeProto, error) {
	n := &NodeProto{}
	err := walk(buf, func(f field) error {
		switch f.num {
		case 1:
			n.Input = append(n.Input, string(f.bytes))
		case 2:
			n.Output = append(n.Output, string(f.bytes))
		case 3:
			n.Name = string(f.bytes)
		case 4:
			n.OpType = string(f.bytes)
		case 5:
			a, err := parseAttribute(f.bytes)
			if err != nil {
				return err
			}
			n.Attribute = append(n.Attribute, a)
		case 7:
			n.Domain = string(f.bytes)
		}
		return nil
	})
	return n, err
}

func parseAttribute(buf []byte) (*AttributeProto, error) {
	a := &AttributeProto{}
	err := walk(buf, func(f field) error {
		switch f.num {
		case 1:
			a.Name = string(f.bytes)
		case 2: // f (float, fixed32)
			a.F = f32FromBits(uint32(f.varint))
		case 3: // i
			a.I = int64(f.varint)
		case 4: // s
			a.S = append([]byte(nil), f.bytes...)
		case 5: // t
			t, err := parseTensor(f.bytes)
			if err != nil {
				return err
			}
			a.T = t
		case 7: // floats (packed or repeated fixed32)
			if f.wire == wireI32 {
				a.Floats = append(a.Floats, f32FromBits(uint32(f.varint)))
			} else {
				for i := 0; i+4 <= len(f.bytes); i += 4 {
					a.Floats = append(a.Floats, f32FromBytes(f.bytes[i:]))
				}
			}
		case 8: // ints
			vals, err := packedInt64(f)
			if err != nil {
				return err
			}
			a.Ints = append(a.Ints, vals...)
		case 20: // type
			a.Type = int(f.varint)
		}
		return nil
	})
	return a, err
}

func parseTensor(buf []byte) (*TensorProto, error) {
	t := &TensorProto{}
	err := walk(buf, func(f field) error {
		switch f.num {
		case 1: // dims
			vals, err := packedInt64(f)
			if err != nil {
				return err
			}
			t.Dims = append(t.Dims, vals...)
		case 2: // data_type
			t.DataType = int(f.varint)
		case 4: // float_data
			if f.wire == wireI32 {
				t.FloatData = append(t.FloatData, f32FromBits(uint32(f.varint)))
			} else {
				for i := 0; i+4 <= len(f.bytes); i += 4 {
					t.FloatData = append(t.FloatData, f32FromBytes(f.bytes[i:]))
				}
			}
		case 7: // int64_data
			vals, err := packedInt64(f)
			if err != nil {
				return err
			}
			t.Int64Data = append(t.Int64Data, vals...)
		case 8: // name
			t.Name = string(f.bytes)
		case 9: // raw_data
			t.RawData = append([]byte(nil), f.bytes...)
		}
		return nil
	})
	return t, err
}

func parseValueInfo(buf []byte) (*ValueInfoProto, error) {
	vi := &ValueInfoProto{}
	err := walk(buf, func(f field) error {
		switch f.num {
		case 1:
			vi.Name = string(f.bytes)
		case 2: // type -> TypeProto
			return walk(f.bytes, func(tf field) error {
				if tf.num != 1 { // tensor_type
					return nil
				}
				return walk(tf.bytes, func(tt field) error {
					switch tt.num {
					case 1: // elem_type
						vi.ElemType = int(tt.varint)
					case 2: // shape -> TensorShapeProto
						return walk(tt.bytes, func(sf field) error {
							if sf.num != 1 { // dim
								return nil
							}
							dim := int64(-1)
							if err := walk(sf.bytes, func(df field) error {
								if df.num == 1 { // dim_value
									dim = int64(df.varint)
								}
								return nil
							}); err != nil {
								return err
							}
							vi.Dims = append(vi.Dims, dim)
							return nil
						})
					}
					return nil
				})
			})
		}
		return nil
	})
	return vi, err
}
