// Package hardware models the seven evaluation platforms of the paper's
// Table 2: peak compute per data type, memory bandwidth, on-chip memory,
// per-layer launch overhead, tensor-core architecture, and — for the
// Jetson Orin NX — DVFS clock domains and a power model calibrated to
// the operating points published in Tables 6 and 7.
//
// The numbers are derived from the platforms' public specifications;
// latency simulation (internal/sim) derates them with per-op-class
// efficiency factors, which is what makes the roofline *shapes* of the
// paper reproduce.
package hardware

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"math"
	"sort"
	"time"

	"proof/internal/graph"
)

// TensorCoreInfo describes a platform's matrix-math units, including the
// per-architecture FLOP count of one HMMA/IMMA instruction — the datum
// NCU gets wrong (§4.2) and internal/ncusim reproduces.
type TensorCoreInfo struct {
	// Arch is the GPU architecture ("volta", "ampere", "ada").
	Arch string
	// FLOPPerMMA is the number of FLOP one HMMA/IMMA instruction
	// performs on this architecture (fp16 dense).
	FLOPPerMMA int
}

// ClockDomains describes the tunable clock domains of a DVFS platform
// (the Jetson Orin NX in the paper).
type ClockDomains struct {
	// GPUMaxMHz is the maximum GPU core clock.
	GPUMaxMHz int
	// GPUOptionsMHz are the selectable GPU clock steps.
	GPUOptionsMHz []int
	// EMCMaxMHz is the maximum memory (EMC) clock.
	EMCMaxMHz int
	// EMCOptionsMHz are the selectable memory clock steps.
	EMCOptionsMHz []int
	// CPUMaxMHz is the maximum CPU cluster clock.
	CPUMaxMHz int
}

// Clocks is one concrete clock configuration.
type Clocks struct {
	// GPUMHz and EMCMHz are the GPU and memory clocks.
	GPUMHz int
	EMCMHz int
	// CPUMHz is the CPU cluster clock (0 = default).
	CPUMHz int
	// CPUClusters is the number of powered CPU clusters (Table 7's
	// "729/off" = 1, "729/729" = 2).
	CPUClusters int
	// GPUCapacity is the fraction of GPU TPCs enabled (0 = all). The
	// Jetson stock "15W" profile sets the undocumented TPC_PG_MASK to
	// 252, disabling part of the GPU — slower but lower-power than
	// the same clocks with all TPCs (§4.6, Table 7 #2 vs #7).
	GPUCapacity float64
}

// Capacity returns the effective GPU capacity fraction in (0, 1].
func (c Clocks) Capacity() float64 {
	if c.GPUCapacity <= 0 || c.GPUCapacity > 1 {
		return 1
	}
	return c.GPUCapacity
}

// PowerModel estimates platform power draw for a clock configuration
// and utilization, calibrated against Table 6 (peak test) and Table 7
// (EfficientNetV2-T) of the paper.
type PowerModel struct {
	// StaticW is the always-on baseline.
	StaticW float64
	// CPUClusterW is the draw per active CPU cluster.
	CPUClusterW float64
	// GPUMaxW is the GPU draw at maximum clock under full load.
	GPUMaxW float64
	// GPUExp is the exponent of the clock/power curve.
	GPUExp float64
	// EMCWPerMHz is the memory-subsystem draw per MHz under load.
	EMCWPerMHz float64
	// GPUIdleFrac / EMCIdleFrac are the fractions drawn at zero
	// utilization (clock gating is imperfect).
	GPUIdleFrac float64
	EMCIdleFrac float64
}

// Platform describes one evaluation hardware platform.
type Platform struct {
	// Key is the canonical lookup key ("a100", "orin-nx", ...).
	Key string
	// Name and Scenario mirror Table 2.
	Name     string
	Scenario string
	// Arch is the micro-architecture family ("ampere", "x86-avx512",
	// "cortex-a72", ...).
	Arch string
	// Runtime is the default backend key ("trtsim", "ovsim",
	// "ortsim"), mirroring Table 2's runtime column.
	Runtime string
	// PeakFLOPS maps data type to peak FLOP/s (or OP/s for integer
	// types) at maximum clocks.
	PeakFLOPS map[graph.DataType]float64
	// MemBW is the theoretical DRAM bandwidth in B/s at max clocks.
	MemBW float64
	// SRAMBytes is the last-level on-chip memory.
	SRAMBytes int64
	// KernelOverhead is the fixed per-layer launch/dispatch cost.
	KernelOverhead time.Duration
	// MaxComputeEff and MaxMemEff are the achievable fractions of
	// peak compute / bandwidth for ideal kernels (the "achieved
	// roofline" of Table 6 relative to the datasheet numbers).
	MaxComputeEff float64
	MaxMemEff     float64
	// IssueBWPerMHz caps achievable bandwidth by the GPU core clock:
	// copy kernels can only issue so many memory transactions per
	// cycle, so down-clocking the GPU also lowers attained bandwidth
	// (Table 6, #1 vs #3). Zero disables the cap.
	IssueBWPerMHz float64
	// EMCEffCurve optionally corrects MaxMemEff across memory clocks:
	// quadratic coefficients {a, b, c} evaluated at x = emc/EMCMax
	// (see MemEffAt). Zero means flat efficiency.
	EMCEffCurve [3]float64
	// TensorCore is non-nil for platforms with matrix units.
	TensorCore *TensorCoreInfo
	// DefaultDType and DefaultBatch are the paper's per-platform
	// evaluation configuration ("a batch size and data type that is
	// reasonable and fully utilizes the hardware").
	DefaultDType graph.DataType
	DefaultBatch int
	// Clocks is non-nil for DVFS-tunable platforms.
	Clocks *ClockDomains
	// Power is non-nil when a power model is calibrated.
	Power *PowerModel
	// Calibration is non-nil once the characterization protocol has
	// measured the platform (loaded from the embedded
	// calibration.json; regenerate with `proof characterize`). The
	// roofline analysis layer derives its ceilings from it instead of
	// the raw Max*Eff factors.
	Calibration *Calibration
	// SupportedTypes optionally restricts model families (the NPU in
	// §4.3 runs only a small portion of models); nil = all.
	SupportedTypes map[string]bool
}

// PeakAt returns the peak FLOP/s for a data type at the given GPU clock
// (0 = maximum). Unlisted data types fall back to Float32.
func (p *Platform) PeakAt(dt graph.DataType, gpuMHz int) float64 {
	peak, ok := p.PeakFLOPS[dt]
	if !ok {
		peak = p.PeakFLOPS[graph.Float32]
	}
	if p.Clocks == nil || gpuMHz <= 0 || p.Clocks.GPUMaxMHz == 0 {
		return peak
	}
	return peak * float64(gpuMHz) / float64(p.Clocks.GPUMaxMHz)
}

// BWAt returns the DRAM bandwidth at the given memory clock (0 = max).
func (p *Platform) BWAt(emcMHz int) float64 {
	if p.Clocks == nil || emcMHz <= 0 || p.Clocks.EMCMaxMHz == 0 {
		return p.MemBW
	}
	return p.MemBW * float64(emcMHz) / float64(p.Clocks.EMCMaxMHz)
}

// IssueBWLimit returns the GPU-clock-bound achievable bandwidth cap in
// B/s, or +Inf when the platform has no issue-rate model or the clock
// is unspecified.
func (p *Platform) IssueBWLimit(gpuMHz int) float64 {
	if p.IssueBWPerMHz <= 0 || gpuMHz <= 0 {
		return math.Inf(1)
	}
	return p.IssueBWPerMHz * float64(gpuMHz)
}

// DefaultClocks returns the maximum-performance clock configuration.
func (p *Platform) DefaultClocks() Clocks {
	if p.Clocks == nil {
		return Clocks{CPUClusters: 1}
	}
	return Clocks{
		GPUMHz:      p.Clocks.GPUMaxMHz,
		EMCMHz:      p.Clocks.EMCMaxMHz,
		CPUMHz:      p.Clocks.CPUMaxMHz,
		CPUClusters: 1,
	}
}

// EstimatePower returns the estimated power draw in watts for a clock
// configuration at the given GPU and memory utilizations (each in
// [0,1]).
func (p *Platform) EstimatePower(clk Clocks, utilGPU, utilMem float64) (float64, error) {
	if p.Power == nil {
		return 0, fmt.Errorf("hardware: no power model for %s", p.Key)
	}
	pm := p.Power
	clamp := func(v float64) float64 { return math.Max(0, math.Min(1, v)) }
	utilGPU, utilMem = clamp(utilGPU), clamp(utilMem)

	w := pm.StaticW
	clusters := clk.CPUClusters
	if clusters <= 0 {
		clusters = 1
	}
	// CPUClusterW is the per-cluster draw at CPUMaxMHz; a down-clocked
	// cluster draws proportionally less (Table 7 runs at 729 of 1984
	// MHz). 0 means default = maximum clock.
	cpuW := float64(clusters) * pm.CPUClusterW
	if p.Clocks != nil && p.Clocks.CPUMaxMHz > 0 && clk.CPUMHz > 0 {
		cpuW *= float64(clk.CPUMHz) / float64(p.Clocks.CPUMaxMHz)
	}
	w += cpuW

	gpuMax := 1.0
	if p.Clocks != nil && p.Clocks.GPUMaxMHz > 0 && clk.GPUMHz > 0 {
		gpuMax = float64(clk.GPUMHz) / float64(p.Clocks.GPUMaxMHz)
	}
	gpuW := pm.GPUMaxW * math.Pow(gpuMax, pm.GPUExp)
	// Power-gated TPCs draw (almost) nothing.
	gpuW *= 0.45 + 0.55*clk.Capacity()
	w += gpuW * (pm.GPUIdleFrac + (1-pm.GPUIdleFrac)*utilGPU)

	emc := 0.0
	if clk.EMCMHz > 0 {
		emc = float64(clk.EMCMHz)
	} else if p.Clocks != nil {
		emc = float64(p.Clocks.EMCMaxMHz)
	}
	emcW := pm.EMCWPerMHz * emc
	w += emcW * (pm.EMCIdleFrac + (1-pm.EMCIdleFrac)*utilMem)
	return w, nil
}

// Info is the JSON-friendly listing form of a Platform: Platform itself
// does not serialize cleanly (DataType-keyed maps, durations, nested
// model structs), so API surfaces that enumerate platforms expose this
// summary instead.
type Info struct {
	Key      string `json:"key"`
	Name     string `json:"name"`
	Scenario string `json:"scenario"`
	Arch     string `json:"arch"`
	Runtime  string `json:"runtime"`
	// DefaultDType and DefaultBatch are the paper's evaluation config.
	DefaultDType string `json:"default_dtype"`
	DefaultBatch int    `json:"default_batch"`
	// PeakFLOPS is the peak at the default data type; MemBW in B/s.
	PeakFLOPS float64 `json:"peak_flops"`
	MemBW     float64 `json:"mem_bw"`
	// HasDVFS / HasPower report tunable clocks and a power model.
	HasDVFS  bool `json:"has_dvfs"`
	HasPower bool `json:"has_power"`
	// SupportedTypes lists the restricted model families, sorted;
	// empty means all families run.
	SupportedTypes []string `json:"supported_types,omitempty"`
}

// Describe returns the platform's JSON-friendly summary.
func (p *Platform) Describe() Info {
	info := Info{
		Key:          p.Key,
		Name:         p.Name,
		Scenario:     p.Scenario,
		Arch:         p.Arch,
		Runtime:      p.Runtime,
		DefaultDType: p.DefaultDType.String(),
		DefaultBatch: p.DefaultBatch,
		PeakFLOPS:    p.PeakAt(p.DefaultDType, 0),
		MemBW:        p.MemBW,
		HasDVFS:      p.Clocks != nil,
		HasPower:     p.Power != nil,
	}
	for t, ok := range p.SupportedTypes {
		if ok {
			info.SupportedTypes = append(info.SupportedTypes, t)
		}
	}
	sort.Strings(info.SupportedTypes)
	return info
}

// DescriptorHash returns a stable sha256 fingerprint of every field of
// the platform descriptor. Caches keyed on platform identity (the layer
// memo store) embed this hash instead of the Key alone, so editing any
// descriptor number — a peak, an efficiency factor, a clock table —
// changes the hash and can never serve results computed under the old
// descriptor. The hash is recomputed from the live struct on every call
// (descriptors are tiny); nothing is memoized, so in-place edits are
// always observed.
func (p *Platform) DescriptorHash() string {
	h := sha256.New()
	hashStr(h, "proof-platform-v1")
	hashStr(h, p.Key)
	hashStr(h, p.Name)
	hashStr(h, p.Scenario)
	hashStr(h, p.Arch)
	hashStr(h, p.Runtime)

	dts := make([]int, 0, len(p.PeakFLOPS))
	for dt := range p.PeakFLOPS {
		dts = append(dts, int(dt))
	}
	sort.Ints(dts)
	hashInt(h, int64(len(dts)))
	for _, dt := range dts {
		hashInt(h, int64(dt))
		hashFloat(h, p.PeakFLOPS[graph.DataType(dt)])
	}

	hashFloat(h, p.MemBW)
	hashInt(h, p.SRAMBytes)
	hashInt(h, int64(p.KernelOverhead))
	hashFloat(h, p.MaxComputeEff)
	hashFloat(h, p.MaxMemEff)
	hashFloat(h, p.IssueBWPerMHz)
	hashFloat(h, p.EMCEffCurve[0])
	hashFloat(h, p.EMCEffCurve[1])
	hashFloat(h, p.EMCEffCurve[2])

	if p.TensorCore != nil {
		hashStr(h, p.TensorCore.Arch)
		hashInt(h, int64(p.TensorCore.FLOPPerMMA))
	} else {
		hashStr(h, "no-tc")
	}

	hashInt(h, int64(p.DefaultDType))
	hashInt(h, int64(p.DefaultBatch))

	if c := p.Clocks; c != nil {
		hashInt(h, int64(c.GPUMaxMHz))
		hashInts(h, c.GPUOptionsMHz)
		hashInt(h, int64(c.EMCMaxMHz))
		hashInts(h, c.EMCOptionsMHz)
		hashInt(h, int64(c.CPUMaxMHz))
	} else {
		hashStr(h, "no-dvfs")
	}

	if pm := p.Power; pm != nil {
		hashFloat(h, pm.StaticW)
		hashFloat(h, pm.CPUClusterW)
		hashFloat(h, pm.GPUMaxW)
		hashFloat(h, pm.GPUExp)
		hashFloat(h, pm.EMCWPerMHz)
		hashFloat(h, pm.GPUIdleFrac)
		hashFloat(h, pm.EMCIdleFrac)
	} else {
		hashStr(h, "no-power")
	}

	if c := p.Calibration; c != nil {
		c.hashInto(h)
	} else {
		hashStr(h, "no-calibration")
	}

	types := make([]string, 0, len(p.SupportedTypes))
	for t, ok := range p.SupportedTypes {
		if ok {
			types = append(types, t)
		}
	}
	sort.Strings(types)
	hashInt(h, int64(len(types)))
	for _, t := range types {
		hashStr(h, t)
	}
	if p.SupportedTypes == nil {
		hashStr(h, "all-types")
	}
	return hex.EncodeToString(h.Sum(nil))
}

// hashStr writes a length-prefixed string, so concatenations of
// adjacent fields cannot collide ("ab"+"c" vs "a"+"bc").
func hashStr(h hash.Hash, s string) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], uint64(len(s)))
	h.Write(buf[:n])
	h.Write([]byte(s))
}

func hashInt(h hash.Hash, v int64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], v)
	h.Write(buf[:n])
}

func hashInts(h hash.Hash, vs []int) {
	hashInt(h, int64(len(vs)))
	for _, v := range vs {
		hashInt(h, int64(v))
	}
}

func hashFloat(h hash.Hash, v float64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
	h.Write(buf[:])
}

// Supports reports whether the platform runs models of the given family
// type ("CNN", "Trans.", ...).
func (p *Platform) Supports(modelType string) bool {
	if p.SupportedTypes == nil {
		return true
	}
	return p.SupportedTypes[modelType]
}

// RidgeAI returns the arithmetic intensity (FLOP/byte) where the
// roofline's compute and bandwidth ceilings meet at maximum clocks,
// for the given dtype. It uses the same achievable ceilings as
// roofline.NewModel (one definition, cross-checked by test), and a
// degenerate zero-bandwidth descriptor yields +Inf rather than leaking
// NaN into reports.
func (p *Platform) RidgeAI(dt graph.DataType) float64 {
	bw := p.BWCeiling(Clocks{})
	if bw == 0 {
		return math.Inf(1)
	}
	return p.ComputeCeiling(dt, Clocks{}) / bw
}

var platforms = map[string]*Platform{}

func register(p *Platform) {
	if _, dup := platforms[p.Key]; dup {
		panic(fmt.Sprintf("hardware: duplicate platform %q", p.Key))
	}
	platforms[p.Key] = p
}

// Lookup returns the platform for a key.
func Lookup(key string) (*Platform, bool) {
	p, ok := platforms[key]
	return p, ok
}

// Get returns the platform or an error naming the valid keys.
func Get(key string) (*Platform, error) {
	if p, ok := platforms[key]; ok {
		return p, nil
	}
	keys := make([]string, 0, len(platforms))
	for k := range platforms {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return nil, fmt.Errorf("hardware: unknown platform %q (have %v)", key, keys)
}

// List returns all platforms in Table 2 order.
func List() []*Platform {
	order := []string{"a100", "rtx4090", "xeon-6330", "xavier-nx", "orin-nx", "rpi4b", "npu3720"}
	out := make([]*Platform, 0, len(order))
	for _, k := range order {
		if p, ok := platforms[k]; ok {
			out = append(out, p)
		}
	}
	return out
}
