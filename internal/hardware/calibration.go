package hardware

import (
	_ "embed"
	"encoding/json"
	"fmt"
	"hash"
	"math"
	"sort"

	"proof/internal/graph"
)

// Calibration records the outcome of the characterization protocol
// (internal/hardware/characterize): the achievable ceilings of one
// platform as *measured* through its backend, instead of hand-tuned
// efficiency factors. Regenerate with `proof characterize`; the result
// is committed as calibration.json and embedded at build time.
//
// With a calibration attached, the analysis layer (roofline ceilings,
// the Figure 8 bandwidth lines) derives everything from these measured
// numbers plus the two free parameters in Free — the raw factors on
// Platform remain only as the simulated silicon's ground truth, which
// the protocol measures like a real profiler would.
type Calibration struct {
	// ComputeEff is the measured achievable fraction of the datasheet
	// peak per data type (MatMul ladder, asymptotic sizes).
	ComputeEff map[string]float64 `json:"compute_eff"`
	// MemEff is the measured achievable fraction of the theoretical
	// DRAM bandwidth at maximum clocks (strided-copy sweep).
	MemEff float64 `json:"mem_eff"`
	// MemEffPoints holds the per-EMC-step measured fractions for DVFS
	// platforms (the copy sweep repeated at each selectable memory
	// clock — Table 6's non-linear achieved-BW column). Empty for
	// fixed-clock platforms.
	MemEffPoints []EMCPoint `json:"mem_eff_points,omitempty"`
	// IssueBWPerMHz is the measured GPU-clock-bound bandwidth cap
	// (copy sweep at down-clocked GPU, divided by the clock). Zero
	// when the copy rate did not scale with the GPU clock.
	IssueBWPerMHz float64 `json:"issue_bw_per_mhz,omitempty"`
	// KernelOverheadNS is the measured per-layer launch overhead
	// (kernel-launch ladder of near-empty kernels).
	KernelOverheadNS int64 `json:"kernel_overhead_ns"`
	// Free holds the only remaining hand-tunable parameters.
	Free FreeParams `json:"free"`
}

// EMCPoint is one measured bandwidth-efficiency sample of the copy
// sweep: the achievable fraction of BWAt(EMCMHz) at that memory clock.
type EMCPoint struct {
	EMCMHz int     `json:"emc_mhz"`
	Eff    float64 `json:"eff"`
}

// FreeParams are the ≤2 free parameters the characterization leaves
// per platform: global scale corrections on the two derived ceilings,
// 1.0 unless a deployment has reason to shade them.
type FreeParams struct {
	ComputeScale float64 `json:"compute_scale"`
	MemScale     float64 `json:"mem_scale"`
}

// computeEff looks up the measured compute efficiency for a data type,
// falling back to the fp32 entry for unlisted types (mirroring PeakAt's
// fp32 fallback).
func (c *Calibration) computeEff(dt graph.DataType) (float64, bool) {
	if eff, ok := c.ComputeEff[dt.String()]; ok {
		return eff, true
	}
	eff, ok := c.ComputeEff[graph.Float32.String()]
	return eff, ok
}

// memEffAt interpolates the measured bandwidth efficiency at a memory
// clock: piecewise-linear between the swept EMC steps, clamped at the
// extremes. 0 (= default) and platforms without per-step samples use
// the max-clock measurement.
func (c *Calibration) memEffAt(emcMHz int) float64 {
	pts := c.MemEffPoints
	if emcMHz <= 0 || len(pts) == 0 {
		return c.MemEff
	}
	if emcMHz <= pts[0].EMCMHz {
		return pts[0].Eff
	}
	for i := 1; i < len(pts); i++ {
		if emcMHz <= pts[i].EMCMHz {
			lo, hi := pts[i-1], pts[i]
			frac := float64(emcMHz-lo.EMCMHz) / float64(hi.EMCMHz-lo.EMCMHz)
			return lo.Eff + frac*(hi.Eff-lo.Eff)
		}
	}
	return pts[len(pts)-1].Eff
}

// ComputeCeiling returns the achievable FLOP/s ceiling for a data type
// at the given clocks: the measured calibration when one is attached,
// the hand-tuned MaxComputeEff factor otherwise. Power-gated TPCs
// (Clocks.GPUCapacity) scale the ceiling in both paths.
func (p *Platform) ComputeCeiling(dt graph.DataType, clk Clocks) float64 {
	peak := p.PeakAt(dt, clk.GPUMHz) * clk.Capacity()
	if c := p.Calibration; c != nil {
		if eff, ok := c.computeEff(dt); ok {
			return peak * eff * c.Free.ComputeScale
		}
	}
	return peak * p.MaxComputeEff
}

// BWCeiling returns the achievable DRAM bandwidth ceiling at the given
// clocks, capped by the GPU-clock-bound issue limit (Table 6 #1 vs #3:
// a down-clocked GPU cannot issue transactions fast enough to saturate
// DRAM). Uses the measured calibration when attached, the hand-tuned
// factors otherwise.
func (p *Platform) BWCeiling(clk Clocks) float64 {
	dram := p.BWAt(clk.EMCMHz)
	if c := p.Calibration; c != nil {
		bw := dram * c.memEffAt(clk.EMCMHz) * c.Free.MemScale
		if c.IssueBWPerMHz > 0 && clk.GPUMHz > 0 {
			if limit := c.IssueBWPerMHz * float64(clk.GPUMHz) * clk.Capacity(); limit < bw {
				bw = limit
			}
		}
		return bw
	}
	bw := dram * p.MemEffAt(clk.EMCMHz)
	if limit := p.IssueBWLimit(clk.GPUMHz) * clk.Capacity(); limit < bw {
		bw = limit
	}
	return bw
}

// hashInto folds the calibration into the descriptor hash
// (DescriptorHash) so memoized results can never outlive a
// recalibration.
func (c *Calibration) hashInto(h hash.Hash) {
	keys := make([]string, 0, len(c.ComputeEff))
	for k := range c.ComputeEff {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	hashInt(h, int64(len(keys)))
	for _, k := range keys {
		hashStr(h, k)
		hashFloat(h, c.ComputeEff[k])
	}
	hashFloat(h, c.MemEff)
	hashInt(h, int64(len(c.MemEffPoints)))
	for _, pt := range c.MemEffPoints {
		hashInt(h, int64(pt.EMCMHz))
		hashFloat(h, pt.Eff)
	}
	hashFloat(h, c.IssueBWPerMHz)
	hashInt(h, c.KernelOverheadNS)
	hashFloat(h, c.Free.ComputeScale)
	hashFloat(h, c.Free.MemScale)
}

// CalibrationFile is the on-disk format of calibration.json: one
// protocol version plus the per-platform measurement results.
type CalibrationFile struct {
	// Protocol names the characterization protocol revision that
	// produced the file.
	Protocol string `json:"protocol"`
	// Platforms maps platform key to its measured calibration.
	Platforms map[string]*Calibration `json:"platforms"`
}

//go:embed calibration.json
var calibrationJSON []byte

// loadCalibrations attaches the committed characterization results to
// the registered platforms. Called explicitly at the end of platform
// registration (init order within the package is filename-based, so an
// init() here could run before the platforms exist). A calibration for
// an unknown platform is registry drift and panics at startup.
func loadCalibrations() {
	var f CalibrationFile
	if err := json.Unmarshal(calibrationJSON, &f); err != nil {
		panic(fmt.Sprintf("hardware: corrupt embedded calibration.json: %v", err))
	}
	for key, c := range f.Platforms {
		p, ok := platforms[key]
		if !ok {
			panic(fmt.Sprintf("hardware: calibration.json entry %q has no registered platform", key))
		}
		if c.Free.ComputeScale == 0 {
			c.Free.ComputeScale = 1
		}
		if c.Free.MemScale == 0 {
			c.Free.MemScale = 1
		}
		p.Calibration = c
	}
}

// MemEffAt returns the achievable fraction of BWAt(emcMHz) in the
// hand-tuned (ground truth) model: MaxMemEff scaled by the platform's
// EMC efficiency curve. Real DRAM efficiency is not flat across memory
// clocks — on the Orin NX the achieved fraction peaks near EMC 2133
// (0.909 of theoretical) and collapses at 665 (0.713), Table 6 — so
// platforms may carry a quadratic correction in EMCEffCurve.
func (p *Platform) MemEffAt(emcMHz int) float64 {
	return p.MaxMemEff * p.emcEffFactor(emcMHz)
}

// emcEffFactor evaluates the EMC efficiency curve a·x²+b·x+c at
// x = emcMHz/EMCMaxMHz. A zero curve, a fixed-clock platform or the
// default clock (0 = max) evaluate to 1.
func (p *Platform) emcEffFactor(emcMHz int) float64 {
	e := p.EMCEffCurve
	if e == [3]float64{} || p.Clocks == nil || p.Clocks.EMCMaxMHz == 0 || emcMHz <= 0 {
		return 1
	}
	x := float64(emcMHz) / float64(p.Clocks.EMCMaxMHz)
	if x > 1 {
		x = 1
	}
	return math.Max(0, e[0]*x*x+e[1]*x+e[2])
}
