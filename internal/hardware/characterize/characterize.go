// Package characterize implements the characterization protocol that
// derives each platform's achievable roofline ceilings from measured
// micro-benchmarks run through the existing backends, instead of
// hand-tuned efficiency factors:
//
//   - a kernel-launch ladder of near-empty MatMuls measures the fixed
//     per-layer overhead (KernelOverheadNS), which later probes
//     subtract so rates come out overhead-free;
//   - a strided-copy sweep (Cast reformat rungs, as in the §4.6 peak
//     test) measures the achievable fraction of DRAM bandwidth — at
//     every selectable memory clock on DVFS platforms (MemEffPoints),
//     reproducing Table 6's non-linear achieved-BW column — and, run
//     again at the lowest GPU clocks, the per-MHz issue-rate bandwidth
//     cap (IssueBWPerMHz, Table 6 #1 vs #3);
//   - a MatMul ladder of asymptotically large square GEMMs measures
//     the achievable fraction of the datasheet compute peak per data
//     type (ComputeEff).
//
// All rates are taken from the simulated hardware counters
// (ActualHWFLOP, ActualBytes) over the measured latency minus the
// measured launch overhead, averaged over several rung sizes and
// seeds: rung sizes are all distinct so the simulator's deterministic
// content-keyed jitter contributes independent draws that average out.
// The protocol is fully deterministic — rerunning it reproduces
// calibration.json byte for byte until the simulated hardware itself
// changes.
package characterize

import (
	"context"
	"fmt"
	"math"
	"sort"

	"proof/internal/analysis"
	"proof/internal/backend"
	"proof/internal/graph"
	"proof/internal/hardware"
	"proof/internal/models"
	"proof/internal/obs"
	"proof/internal/sim"
)

// Protocol names the current protocol revision; it is written into
// calibration.json so a stale file is recognizable.
const Protocol = "charv1"

// DefaultSeeds are the jitter seeds each probe is averaged over.
var DefaultSeeds = []uint64{1, 2, 3}

// Options tunes a characterization run.
type Options struct {
	// Seeds overrides DefaultSeeds.
	Seeds []uint64
}

func (o Options) seeds() []uint64 {
	if len(o.Seeds) > 0 {
		return o.Seeds
	}
	return DefaultSeeds
}

// Probe records one aggregated micro-benchmark measurement, for
// reporting and validation.
type Probe struct {
	// Kind is "launch", "copy", "issue" or "matmul".
	Kind string `json:"kind"`
	// DType is set for matmul probes.
	DType string `json:"dtype,omitempty"`
	// GPUMHz / EMCMHz are the probed clocks (0 = platform maximum).
	GPUMHz int `json:"gpu_mhz,omitempty"`
	EMCMHz int `json:"emc_mhz,omitempty"`
	// Rate is the mean attained rate: FLOP/s (matmul), B/s (copy,
	// issue) or seconds per launch (launch).
	Rate float64 `json:"rate"`
}

// Result is the outcome of characterizing one platform.
type Result struct {
	Platform    string                `json:"platform"`
	Calibration *hardware.Calibration `json:"calibration"`
	Probes      []Probe               `json:"probes"`
}

// Platform runs the full protocol against one platform and returns its
// derived calibration.
func Platform(ctx context.Context, plat *hardware.Platform, opts Options) (res *Result, err error) {
	ctx, sp := obs.Start(ctx, "characterize")
	sp.SetAttr("platform", plat.Key)
	defer func() { sp.EndErr(err) }()

	seeds := opts.seeds()
	res = &Result{Platform: plat.Key}
	cal := &hardware.Calibration{
		ComputeEff: map[string]float64{},
		Free:       hardware.FreeParams{ComputeScale: 1, MemScale: 1},
	}

	// 1. Kernel-launch ladder: the overhead every later probe
	// subtracts.
	ovhSec, err := measureLaunch(ctx, plat, seeds)
	if err != nil {
		return nil, err
	}
	cal.KernelOverheadNS = int64(math.Round(ovhSec * 1e9))
	res.Probes = append(res.Probes, Probe{Kind: "launch", Rate: ovhSec})

	// 2. Strided-copy sweep: bandwidth efficiency at max clocks and,
	// for DVFS platforms, at every selectable memory clock.
	emcSteps := []int{0}
	if plat.Clocks != nil && len(plat.Clocks.EMCOptionsMHz) > 0 {
		emcSteps = append([]int(nil), plat.Clocks.EMCOptionsMHz...)
		sort.Ints(emcSteps)
	}
	for _, emc := range emcSteps {
		rate, err := measureCopy(ctx, plat, 0, emc, ovhSec, seeds)
		if err != nil {
			return nil, err
		}
		eff := round4(rate / plat.BWAt(emc))
		if emc == 0 || (plat.Clocks != nil && emc == plat.Clocks.EMCMaxMHz) {
			cal.MemEff = eff
		}
		if emc != 0 {
			cal.MemEffPoints = append(cal.MemEffPoints, hardware.EMCPoint{EMCMHz: emc, Eff: eff})
		}
		res.Probes = append(res.Probes, Probe{Kind: "copy", EMCMHz: emc, Rate: rate})
	}

	// 3. Issue-rate probe: the copy sweep again at the lowest GPU
	// clocks. When the attained rate is clearly below the DRAM-side
	// ceiling and scales with the clock, the platform is issue-bound
	// there and the per-MHz cap is recorded.
	if plat.Clocks != nil && len(plat.Clocks.GPUOptionsMHz) > 0 {
		gpuOpts := append([]int(nil), plat.Clocks.GPUOptionsMHz...)
		sort.Ints(gpuOpts)
		if len(gpuOpts) > 2 {
			gpuOpts = gpuOpts[:2]
		}
		dramRef := cal.MemEff * plat.MemBW
		var perMHz []float64
		for _, g := range gpuOpts {
			rate, err := measureCopy(ctx, plat, g, 0, ovhSec, seeds)
			if err != nil {
				return nil, err
			}
			res.Probes = append(res.Probes, Probe{Kind: "issue", GPUMHz: g, Rate: rate})
			if rate < 0.8*dramRef {
				perMHz = append(perMHz, rate/float64(g))
			}
		}
		// Only a consistent cap counts: every probed clock limited.
		if len(perMHz) == len(gpuOpts) {
			cal.IssueBWPerMHz = math.Round(mean(perMHz)/1e5) * 1e5
		}
	}

	// 4. MatMul ladder per data type: asymptotically large square
	// GEMMs measure the achievable fraction of the datasheet peak.
	for _, dt := range sortedDTypes(plat) {
		rate, err := measureMatMul(ctx, plat, dt, ovhSec, seeds)
		if err != nil {
			return nil, err
		}
		cal.ComputeEff[dt.String()] = round4(rate / plat.PeakAt(dt, 0))
		res.Probes = append(res.Probes, Probe{Kind: "matmul", DType: dt.String(), Rate: rate})
	}

	res.Calibration = cal
	return res, nil
}

// All characterizes every registered platform and assembles the
// calibration file `proof characterize` writes.
func All(ctx context.Context, opts Options) (*hardware.CalibrationFile, []*Result, error) {
	file := &hardware.CalibrationFile{Protocol: Protocol, Platforms: map[string]*hardware.Calibration{}}
	var results []*Result
	for _, plat := range hardware.List() {
		r, err := Platform(ctx, plat, opts)
		if err != nil {
			return nil, nil, fmt.Errorf("characterize %s: %w", plat.Key, err)
		}
		file.Platforms[plat.Key] = r.Calibration
		results = append(results, r)
	}
	return file, results, nil
}

// ladderRun is one built ladder graph with per-seed simulated timings.
type ladderRun struct {
	works   []sim.Work
	timings [][]sim.Timing // [seed][work]
}

// runLadder builds g on the platform's backend at the given clocks and
// data type and simulates it once per seed.
func runLadder(ctx context.Context, plat *hardware.Platform, g *graph.Graph, dt graph.DataType, clk hardware.Clocks, seeds []uint64) (*ladderRun, error) {
	g.ConvertFloatTensors(dt)
	rep, err := analysis.NewRep(g)
	if err != nil {
		return nil, err
	}
	be, err := backend.Get(plat.Runtime)
	if err != nil {
		return nil, err
	}
	eng, err := be.Build(ctx, rep, backend.Config{Platform: plat, DType: dt, Batch: 1, Clocks: clk})
	if err != nil {
		return nil, err
	}
	run := &ladderRun{works: eng.Works()}
	for _, seed := range seeds {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		run.timings = append(run.timings, eng.Timings(seed))
	}
	return run, nil
}

// measureLaunch derives the per-layer launch overhead from a ladder of
// near-empty MatMuls (n = 4..15): their compute time is negligible
// against the overhead, so the mean latency *is* the overhead.
func measureLaunch(ctx context.Context, plat *hardware.Platform, seeds []uint64) (float64, error) {
	ns := make([]int, 0, 12)
	for n := 4; n <= 15; n++ {
		ns = append(ns, n)
	}
	g, err := models.BuildMatMulLadder("char-launch", ns)
	if err != nil {
		return 0, err
	}
	run, err := runLadder(ctx, plat, g, graph.Float32, hardware.Clocks{}, seeds)
	if err != nil {
		return 0, err
	}
	var lats []float64
	for si := range run.timings {
		for i, w := range run.works {
			if w.ModelFLOP <= 0 {
				continue
			}
			lats = append(lats, run.timings[si][i].Latency.Seconds())
		}
	}
	if len(lats) == 0 {
		return 0, fmt.Errorf("characterize: launch ladder produced no matmul layers on %s", plat.Key)
	}
	return mean(lats), nil
}

// measureCopy derives the attained copy bandwidth at the given clocks
// from the hardware counters: ActualBytes over the overhead-corrected
// latency, averaged across rungs and seeds. Rungs are sized so the
// transfer dwarfs the launch overhead.
func measureCopy(ctx context.Context, plat *hardware.Platform, gpuMHz, emcMHz int, ovhSec float64, seeds []uint64) (float64, error) {
	// Size the smallest rung to ~150x the launch overhead at the
	// theoretical max bandwidth (a safe upper bound on the achieved
	// rate): 8 bytes per element (fp32 read + write).
	m0 := int(math.Ceil(150 * ovhSec * plat.MemBW / 8 / float64(1<<20)))
	if m0 < 64 {
		m0 = 64
	}
	sizes := []int{m0, m0 * 5 / 4, m0 * 3 / 2, m0 * 7 / 4}
	g, err := models.BuildCopyLadder(fmt.Sprintf("char-copy-%d-%d", gpuMHz, emcMHz), sizes)
	if err != nil {
		return 0, err
	}
	run, err := runLadder(ctx, plat, g, graph.Float32, hardware.Clocks{GPUMHz: gpuMHz, EMCMHz: emcMHz}, seeds)
	if err != nil {
		return 0, err
	}
	// Copy rungs are the zero-FLOP works at full transfer size (a
	// backend may add small bookkeeping layers; exclude them).
	var maxBytes int64
	for _, w := range run.works {
		if w.ModelFLOP <= 0 && w.Bytes > maxBytes {
			maxBytes = w.Bytes
		}
	}
	var rates []float64
	for si := range run.timings {
		for i, w := range run.works {
			if w.ModelFLOP > 0 || w.Bytes < maxBytes/2 {
				continue
			}
			t := run.timings[si][i]
			if sec := t.Latency.Seconds() - ovhSec; sec > 0 {
				rates = append(rates, float64(t.ActualBytes)/sec)
			}
		}
	}
	if len(rates) == 0 {
		return 0, fmt.Errorf("characterize: copy ladder produced no usable layers on %s", plat.Key)
	}
	return mean(rates), nil
}

// measureMatMul derives the attained compute rate for one data type
// from square GEMMs large enough that the dense-kernel saturation
// curve has converged (work >= 300x the half-saturation point of the
// datasheet peak, an upper bound on the achievable one).
func measureMatMul(ctx context.Context, plat *hardware.Platform, dt graph.DataType, ovhSec float64, seeds []uint64) (float64, error) {
	peak := plat.PeakAt(dt, 0)
	n0 := int(math.Cbrt(150 * peak * 150e-6))
	n0 = (n0/64 + 1) * 64
	if n0 < 512 {
		n0 = 512
	}
	sizes := []int{n0, n0 + 64, n0 + 128, n0 + 192}
	g, err := models.BuildMatMulLadder(fmt.Sprintf("char-matmul-%s", dt), sizes)
	if err != nil {
		return 0, err
	}
	run, err := runLadder(ctx, plat, g, dt, hardware.Clocks{}, seeds)
	if err != nil {
		return 0, err
	}
	var rates []float64
	for si := range run.timings {
		for i, w := range run.works {
			if w.ModelFLOP <= 0 {
				continue
			}
			t := run.timings[si][i]
			if sec := t.Latency.Seconds() - ovhSec; sec > 0 {
				rates = append(rates, float64(t.ActualHWFLOP)/sec)
			}
		}
	}
	if len(rates) == 0 {
		return 0, fmt.Errorf("characterize: matmul ladder produced no usable layers on %s", plat.Key)
	}
	return mean(rates), nil
}

func sortedDTypes(plat *hardware.Platform) []graph.DataType {
	dts := make([]graph.DataType, 0, len(plat.PeakFLOPS))
	for dt := range plat.PeakFLOPS {
		dts = append(dts, dt)
	}
	sort.Slice(dts, func(i, j int) bool { return dts[i] < dts[j] })
	return dts
}

func mean(vs []float64) float64 {
	var sum float64
	for _, v := range vs {
		sum += v
	}
	return sum / float64(len(vs))
}

func round4(v float64) float64 {
	return math.Round(v*1e4) / 1e4
}
