package characterize

import (
	"context"
	"encoding/json"
	"math"
	"os"
	"reflect"
	"testing"

	"proof/internal/experiments"
	"proof/internal/graph"
	"proof/internal/hardware"
	"proof/internal/roofline"
)

// TestProtocolReproducesCommittedCalibration replays the full protocol
// and requires the result to be byte-identical to the committed
// calibration.json: the file is derived data, and a drift means the
// simulated hardware changed without `proof characterize` being re-run.
func TestProtocolReproducesCommittedCalibration(t *testing.T) {
	file, results, err := All(context.Background(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(hardware.List()) {
		t.Fatalf("characterized %d platforms, registry has %d", len(results), len(hardware.List()))
	}
	fresh, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	fresh = append(fresh, '\n')
	committed, err := os.ReadFile("../calibration.json")
	if err != nil {
		t.Fatal(err)
	}
	if string(fresh) != string(committed) {
		t.Errorf("committed calibration.json is stale; regenerate with:\n  go run ./cmd/proof characterize")
	}
}

// TestFreeParameterBudget enforces the protocol's core promise: at most
// two free (non-measured) parameters per platform, and the protocol
// itself never needs them (both scales stay at their neutral 1).
func TestFreeParameterBudget(t *testing.T) {
	if n := reflect.TypeOf(hardware.FreeParams{}).NumField(); n > 2 {
		t.Fatalf("FreeParams has %d fields, the protocol allows at most 2 free parameters", n)
	}
	for _, plat := range hardware.List() {
		cal := plat.Calibration
		if cal == nil {
			t.Errorf("%s: no calibration loaded", plat.Key)
			continue
		}
		if cal.Free.ComputeScale != 1 || cal.Free.MemScale != 1 {
			t.Errorf("%s: free parameters in use (compute %.4f, mem %.4f), protocol should measure everything",
				plat.Key, cal.Free.ComputeScale, cal.Free.MemScale)
		}
	}
}

// TestDerivedCeilingsMatchTable6 checks that the calibration-derived
// roofline ceilings reproduce the paper's Table 6 achieved-peak rows
// within 5% at every published clock pair.
func TestDerivedCeilingsMatchTable6(t *testing.T) {
	plat, err := hardware.Get("orin-nx")
	if err != nil {
		t.Fatal(err)
	}
	for i, pair := range experiments.Table6Pairs {
		ref := experiments.Table6Paper[i]
		m := roofline.NewModel(plat, graph.Float16, hardware.Clocks{GPUMHz: pair[0], EMCMHz: pair[1]})
		if rel := m.PeakFLOPS / (ref[0] * 1e12); rel < 0.95 || rel > 1.05 {
			t.Errorf("row %d (%d/%d): ceiling %.3f TFLOP/s vs paper %.3f (off by >5%%)",
				i+1, pair[0], pair[1], m.PeakFLOPS/1e12, ref[0])
		}
		if rel := m.PeakBW / (ref[1] * 1e9); rel < 0.95 || rel > 1.05 {
			t.Errorf("row %d (%d/%d): BW ceiling %.3f GB/s vs paper %.3f (off by >5%%)",
				i+1, pair[0], pair[1], m.PeakBW/1e9, ref[1])
		}
	}
}

// TestCalibratedTable6DeltasHold replays the Table 6 peak sweep through
// internal/experiments — the measured peak test, not just the derived
// ceilings — and checks the achieved peaks against the paper.
func TestCalibratedTable6DeltasHold(t *testing.T) {
	rows, err := experiments.Table6()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(experiments.Table6Paper) {
		t.Fatalf("Table 6 has %d rows, want %d", len(rows), len(experiments.Table6Paper))
	}
	for i, r := range rows {
		ref := experiments.Table6Paper[i]
		if rel := r.FLOPS / (ref[0] * 1e12); rel < 0.95 || rel > 1.05 {
			t.Errorf("row %d: achieved %.3f TFLOP/s vs paper %.3f (off by >5%%)", i+1, r.FLOPS/1e12, ref[0])
		}
		if rel := r.BW / (ref[1] * 1e9); rel < 0.95 || rel > 1.05 {
			t.Errorf("row %d: achieved %.3f GB/s vs paper %.3f (off by >5%%)", i+1, r.BW/1e9, ref[1])
		}
		if rel := r.PowerW / ref[2]; rel < 0.90 || rel > 1.10 {
			t.Errorf("row %d: power %.1f W vs paper %.1f (off by >10%%)", i+1, r.PowerW, ref[2])
		}
	}
}

// TestCalibratedTable4DeltasHold replays the Table 4 prediction-accuracy
// experiment and checks each model's FLOP/memory diff stays close to
// the paper's published diff — the calibration must not skew the
// analytical-vs-counters comparison.
func TestCalibratedTable4DeltasHold(t *testing.T) {
	rows, err := experiments.Table4WithBatch(16)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if d := math.Abs(r.FLOPDiff - r.PaperFLOPDiff); d > 0.15 {
			t.Errorf("%s: FLOP diff %+.1f%% vs paper %+.1f%% (gap %.1f%% > 15%%)",
				r.Model, r.FLOPDiff*100, r.PaperFLOPDiff*100, d*100)
		}
		if d := math.Abs(r.MemoryDiff - r.PaperMemoryDiff); d > 0.15 {
			t.Errorf("%s: memory diff %+.1f%% vs paper %+.1f%% (gap %.1f%% > 15%%)",
				r.Model, r.MemoryDiff*100, r.PaperMemoryDiff*100, d*100)
		}
	}
}
