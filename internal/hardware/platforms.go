package hardware

import (
	"time"

	"proof/internal/graph"
)

// T / G / M are unit helpers for readable peak declarations.
const (
	kib = 1024
	mib = 1024 * kib
)

func tera(v float64) float64 { return v * 1e12 }
func giga(v float64) float64 { return v * 1e9 }

func init() {
	register(&Platform{
		Key:      "a100",
		Name:     "NVIDIA A100 PCIE-40GB",
		Scenario: "Data center GPU",
		Arch:     "ampere",
		Runtime:  "trtsim",
		PeakFLOPS: map[graph.DataType]float64{
			graph.Float32:  tera(19.5),
			graph.Float16:  tera(312), // Tensor Core dense
			graph.BFloat16: tera(312),
			graph.Int8:     tera(624),
		},
		MemBW:          giga(1555),
		SRAMBytes:      40 * mib, // L2
		KernelOverhead: 5 * time.Microsecond,
		MaxComputeEff:  0.85,
		MaxMemEff:      0.87,
		TensorCore:     &TensorCoreInfo{Arch: "ampere", FLOPPerMMA: 4096},
		DefaultDType:   graph.Float16,
		DefaultBatch:   128,
	})

	register(&Platform{
		Key:      "rtx4090",
		Name:     "NVIDIA RTX 4090",
		Scenario: "Desktop GPU",
		Arch:     "ada",
		Runtime:  "trtsim",
		PeakFLOPS: map[graph.DataType]float64{
			graph.Float32: tera(82.6),
			graph.Float16: tera(330),
			graph.Int8:    tera(660),
		},
		MemBW:          giga(1008),
		SRAMBytes:      72 * mib,
		KernelOverhead: 4 * time.Microsecond,
		MaxComputeEff:  0.83,
		MaxMemEff:      0.88,
		TensorCore:     &TensorCoreInfo{Arch: "ada", FLOPPerMMA: 4096},
		DefaultDType:   graph.Int8,
		DefaultBatch:   128,
	})

	register(&Platform{
		Key:      "xeon-6330",
		Name:     "Intel Xeon Gold 6330",
		Scenario: "Datacenter CPU",
		Arch:     "x86-avx512",
		Runtime:  "ortsim",
		// 28 cores x 2.0 GHz x 2 AVX-512 FMA units x 16 lanes x 2.
		PeakFLOPS: map[graph.DataType]float64{
			graph.Float32: tera(3.58),
			graph.Float16: tera(3.58), // no native fp16 math
			graph.Int8:    tera(14.3), // VNNI
		},
		MemBW:          giga(187.8), // 8ch DDR4-2933
		SRAMBytes:      42 * mib,    // L3
		KernelOverhead: 15 * time.Microsecond,
		MaxComputeEff:  0.80,
		MaxMemEff:      0.75,
		DefaultDType:   graph.Float32,
		DefaultBatch:   16,
	})

	register(&Platform{
		Key:      "xavier-nx",
		Name:     "NVIDIA Jetson Xavier NX",
		Scenario: "Edge GPU",
		Arch:     "volta",
		Runtime:  "trtsim",
		// 48 Volta Tensor Cores @ 1100 MHz.
		PeakFLOPS: map[graph.DataType]float64{
			graph.Float32: tera(0.844),
			graph.Float16: tera(6.8),
			graph.Int8:    tera(13.5),
		},
		MemBW:          giga(59.7),
		SRAMBytes:      512 * kib,
		KernelOverhead: 12 * time.Microsecond,
		MaxComputeEff:  0.82,
		MaxMemEff:      0.80,
		TensorCore:     &TensorCoreInfo{Arch: "volta", FLOPPerMMA: 512},
		DefaultDType:   graph.Float16,
		DefaultBatch:   32,
	})

	register(&Platform{
		Key:      "orin-nx",
		Name:     "NVIDIA Jetson Orin NX 16GB",
		Scenario: "Edge GPU",
		Arch:     "ampere",
		Runtime:  "trtsim",
		// 32 Ampere Tensor Cores x 512 FLOP/clk @ 918 MHz.
		PeakFLOPS: map[graph.DataType]float64{
			graph.Float32: tera(1.88),
			graph.Float16: tera(15.04),
			graph.Int8:    tera(30.1),
		},
		MemBW:          giga(102.4),
		SRAMBytes:      4 * mib,
		KernelOverhead: 8 * time.Microsecond,
		MaxComputeEff:  0.905, // Table 6 #1: 13.62 of 15.04 TFLOP/s
		MaxMemEff:      0.858, // Table 6 #1: 87.9 of 102.4 GB/s
		// Table 6 #3: at GPU 510 MHz the achieved BW drops to 54 GB/s
		// even with EMC at max — the SMs cannot issue transactions
		// fast enough (105.7 MB/s per GPU MHz).
		IssueBWPerMHz: 105.7e6,
		// DRAM efficiency is not flat across EMC clocks: the achieved
		// fraction peaks near EMC 2133 (62.031 of 68.28 GB/s = 0.909
		// of theoretical, vs 0.858 at max) and collapses at 665
		// (15.177 of 21.29 = 0.713) — Table 6 #2/#5. Quadratic fit
		// through those rows at x = emc/3199, normalized to 1 at max.
		EMCEffCurve:  [3]float64{-0.8534, 1.2442, 0.6092},
		TensorCore:   &TensorCoreInfo{Arch: "ampere", FLOPPerMMA: 4096},
		DefaultDType: graph.Float16,
		DefaultBatch: 128,
		Clocks: &ClockDomains{
			GPUMaxMHz:     918,
			GPUOptionsMHz: []int{114, 204, 306, 408, 510, 612, 714, 816, 918},
			EMCMaxMHz:     3199,
			EMCOptionsMHz: []int{204, 665, 2133, 3199},
			CPUMaxMHz:     1984,
		},
		// Calibrated against Table 6: 23.6 W at 918/3199 full load,
		// 11.5 W at 510/665.
		Power: &PowerModel{
			StaticW: 2.0,
			// Per-cluster draw at CPUMaxMHz (1984); Table 7's
			// operating points run the cluster at 729 MHz, where the
			// clock scaling in EstimatePower prices it at 0.700 W.
			CPUClusterW: 1.905,
			GPUMaxW:     16.1,
			GPUExp:      1.15,
			EMCWPerMHz:  0.0015,
			GPUIdleFrac: 0.30,
			EMCIdleFrac: 0.35,
		},
	})

	register(&Platform{
		Key:      "rpi4b",
		Name:     "Raspberry Pi 4B",
		Scenario: "Edge CPU",
		Arch:     "cortex-a72",
		Runtime:  "ortsim",
		// 4x Cortex-A72 @ 1.5 GHz, 128-bit NEON FMA.
		PeakFLOPS: map[graph.DataType]float64{
			graph.Float32: giga(48),
			graph.Float16: giga(48),
			graph.Int8:    giga(96),
		},
		MemBW:          giga(12.8),
		SRAMBytes:      1 * mib,
		KernelOverhead: 60 * time.Microsecond,
		MaxComputeEff:  0.70,
		// §4.3: the BCM2711's internal AXI bus limits real bandwidth
		// to about 5.5 GB/s of the nominal 12.8.
		MaxMemEff:    0.43,
		DefaultDType: graph.Float32,
		DefaultBatch: 4,
	})

	register(&Platform{
		Key:      "npu3720",
		Name:     "NPU 3720 (Intel Core Ultra 185H)",
		Scenario: "Mobile NPU",
		Arch:     "npu3720",
		Runtime:  "ovsim",
		// 2048 fp16 MACs / 4096 int8 MACs per cycle @ 1.4 GHz.
		PeakFLOPS: map[graph.DataType]float64{
			graph.Float32: tera(1.4),
			graph.Float16: tera(5.7),
			graph.Int8:    tera(11.5),
		},
		MemBW:          giga(68), // shared LPDDR5x, NPU slice
		SRAMBytes:      4 * mib,
		KernelOverhead: 30 * time.Microsecond,
		// §4.3: performance significantly deviates from the
		// theoretical peak on this first-generation part.
		MaxComputeEff: 0.35,
		MaxMemEff:     0.50,
		DefaultDType:  graph.Float16,
		DefaultBatch:  8,
		// Only a small portion of models ran successfully (§4.3):
		// the OpenVINO NPU plugin handles CNN/MLP graphs only.
		SupportedTypes: map[string]bool{"CNN": true, "MLP": true},
	})

	// Attach the committed characterization results last: loading
	// validates every calibration.json entry against the registry
	// above, so all platforms must already be registered.
	loadCalibrations()
}
