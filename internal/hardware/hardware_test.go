package hardware

import (
	"math"
	"testing"

	"proof/internal/graph"
)

func TestAllPlatformsRegistered(t *testing.T) {
	want := []string{"a100", "rtx4090", "xeon-6330", "xavier-nx", "orin-nx", "rpi4b", "npu3720"}
	list := List()
	if len(list) != len(want) {
		t.Fatalf("List() = %d platforms, want %d", len(list), len(want))
	}
	for i, k := range want {
		if list[i].Key != k {
			t.Errorf("List()[%d] = %s, want %s", i, list[i].Key, k)
		}
	}
	for _, p := range list {
		if p.PeakFLOPS[graph.Float32] <= 0 {
			t.Errorf("%s: missing fp32 peak", p.Key)
		}
		if p.MemBW <= 0 || p.KernelOverhead <= 0 {
			t.Errorf("%s: missing bandwidth or overhead", p.Key)
		}
		if p.MaxComputeEff <= 0 || p.MaxComputeEff > 1 || p.MaxMemEff <= 0 || p.MaxMemEff > 1 {
			t.Errorf("%s: efficiency out of (0,1]", p.Key)
		}
		if p.DefaultBatch < 1 || !p.DefaultDType.Valid() {
			t.Errorf("%s: bad default config", p.Key)
		}
		if p.Runtime == "" {
			t.Errorf("%s: no runtime", p.Key)
		}
	}
}

func TestLookupAndGet(t *testing.T) {
	if _, ok := Lookup("a100"); !ok {
		t.Error("a100 missing")
	}
	if _, ok := Lookup("h100"); ok {
		t.Error("h100 should not exist")
	}
	if _, err := Get("h100"); err == nil {
		t.Error("Get should error on unknown platform")
	}
	p, err := Get("orin-nx")
	if err != nil || p.Key != "orin-nx" {
		t.Fatalf("Get(orin-nx) = %v, %v", p, err)
	}
}

func TestPeakAtClockScaling(t *testing.T) {
	p, _ := Get("orin-nx")
	full := p.PeakAt(graph.Float16, 0)
	if full != p.PeakFLOPS[graph.Float16] {
		t.Error("PeakAt(0) must be max peak")
	}
	half := p.PeakAt(graph.Float16, 459)
	if ratio := half / full; ratio < 0.49 || ratio > 0.51 {
		t.Errorf("half-clock peak ratio = %v", ratio)
	}
	// Fixed-clock platform ignores the clock argument.
	a, _ := Get("a100")
	if a.PeakAt(graph.Float16, 500) != a.PeakFLOPS[graph.Float16] {
		t.Error("fixed platform must ignore GPU clock")
	}
	// Unknown dtype falls back to fp32.
	if a.PeakAt(graph.Int64, 0) != a.PeakFLOPS[graph.Float32] {
		t.Error("unknown dtype should fall back to fp32 peak")
	}
}

func TestBWAtClockScaling(t *testing.T) {
	p, _ := Get("orin-nx")
	if p.BWAt(0) != p.MemBW {
		t.Error("BWAt(0) must be max")
	}
	bw := p.BWAt(2133)
	want := p.MemBW * 2133 / 3199
	if rel := bw / want; rel < 0.999 || rel > 1.001 {
		t.Errorf("BWAt(2133) = %v, want %v", bw, want)
	}
}

func TestDefaultClocks(t *testing.T) {
	p, _ := Get("orin-nx")
	clk := p.DefaultClocks()
	if clk.GPUMHz != 918 || clk.EMCMHz != 3199 {
		t.Errorf("DefaultClocks = %+v", clk)
	}
	a, _ := Get("a100")
	if a.DefaultClocks().GPUMHz != 0 {
		t.Error("fixed platform default clocks should be zero")
	}
}

func TestPowerModelMatchesTable6(t *testing.T) {
	p, _ := Get("orin-nx")
	// Table 6 operating points (peak test, full utilization, one CPU
	// cluster at the paper's 729 MHz): clock pairs -> published watts.
	cases := []struct {
		gpu, emc int
		want     float64
	}{
		{918, 3199, 23.6},
		{918, 2133, 21.3},
		{510, 3199, 15.7},
		{510, 2133, 13.6},
		{510, 665, 11.5},
	}
	for _, c := range cases {
		got, err := p.EstimatePower(Clocks{GPUMHz: c.gpu, EMCMHz: c.emc, CPUMHz: 729, CPUClusters: 1}, 1, 1)
		if err != nil {
			t.Fatal(err)
		}
		if rel := got / c.want; rel < 0.90 || rel > 1.10 {
			t.Errorf("power(%d,%d) = %.1f W, paper %.1f W (off by >10%%)", c.gpu, c.emc, got, c.want)
		}
	}
}

func TestPowerMonotonicity(t *testing.T) {
	p, _ := Get("orin-nx")
	base, _ := p.EstimatePower(Clocks{GPUMHz: 510, EMCMHz: 2133, CPUClusters: 1}, 1, 1)
	hi, _ := p.EstimatePower(Clocks{GPUMHz: 918, EMCMHz: 2133, CPUClusters: 1}, 1, 1)
	if hi <= base {
		t.Error("higher GPU clock must draw more power")
	}
	idle, _ := p.EstimatePower(Clocks{GPUMHz: 918, EMCMHz: 2133, CPUClusters: 1}, 0, 0)
	if idle >= hi {
		t.Error("idle must draw less than loaded")
	}
	two, _ := p.EstimatePower(Clocks{GPUMHz: 918, EMCMHz: 2133, CPUClusters: 2}, 1, 1)
	if two <= hi {
		t.Error("second CPU cluster must add power")
	}
	if _, err := List()[0].EstimatePower(Clocks{}, 1, 1); err == nil {
		t.Error("platform without power model should error")
	}
}

// Regression: EstimatePower used to ignore clk.CPUMHz entirely, so
// Table 7's 729 MHz cluster was priced the same as a max-clock one.
func TestPowerScalesWithCPUClock(t *testing.T) {
	p, _ := Get("orin-nx")
	clk := Clocks{GPUMHz: 918, EMCMHz: 3199, CPUClusters: 1}
	clk.CPUMHz = 729
	low, _ := p.EstimatePower(clk, 1, 1)
	clk.CPUMHz = p.Clocks.CPUMaxMHz
	high, _ := p.EstimatePower(clk, 1, 1)
	if !(low < high) {
		t.Fatalf("CPU at 729 MHz must draw less than at %d MHz: %.3f vs %.3f W",
			p.Clocks.CPUMaxMHz, low, high)
	}
	// The delta must be exactly the clock-ratio scaling of the
	// per-cluster draw.
	want := p.Power.CPUClusterW * (1 - 729.0/float64(p.Clocks.CPUMaxMHz))
	if got := high - low; math.Abs(got-want) > 1e-9 {
		t.Errorf("CPU power delta = %.4f W, want %.4f W", got, want)
	}
	// CPUMHz 0 means default (maximum) clock.
	clk.CPUMHz = 0
	def, _ := p.EstimatePower(clk, 1, 1)
	if def != high {
		t.Errorf("CPUMHz 0 should price the default clock: %.4f vs %.4f W", def, high)
	}
}

func TestRidgeAI(t *testing.T) {
	a, _ := Get("a100")
	ridge := a.RidgeAI(graph.Float16)
	// 312e12 / 1555e9 ~ 200 FLOP/byte.
	if ridge < 150 || ridge > 250 {
		t.Errorf("A100 fp16 ridge = %.1f", ridge)
	}
}

func TestSupports(t *testing.T) {
	npu, _ := Get("npu3720")
	if !npu.Supports("CNN") || npu.Supports("Trans.") {
		t.Error("NPU should support CNN but not transformers")
	}
	a, _ := Get("a100")
	if !a.Supports("Trans.") || !a.Supports("Diffu.") {
		t.Error("A100 supports everything")
	}
}

// TestDescribe checks the JSON-friendly platform summary against the
// underlying Platform for every registered platform.
func TestDescribe(t *testing.T) {
	for _, p := range List() {
		info := p.Describe()
		if info.Key != p.Key || info.Name != p.Name || info.Runtime != p.Runtime {
			t.Errorf("%s: identity fields mismatch: %+v", p.Key, info)
		}
		if info.PeakFLOPS != p.PeakAt(p.DefaultDType, 0) {
			t.Errorf("%s: PeakFLOPS = %g, want peak at default dtype", p.Key, info.PeakFLOPS)
		}
		if info.DefaultDType != p.DefaultDType.String() || info.DefaultBatch != p.DefaultBatch {
			t.Errorf("%s: default config mismatch: %+v", p.Key, info)
		}
		if info.HasDVFS != (p.Clocks != nil) || info.HasPower != (p.Power != nil) {
			t.Errorf("%s: capability flags mismatch: %+v", p.Key, info)
		}
		if (len(info.SupportedTypes) == 0) != (p.SupportedTypes == nil) {
			t.Errorf("%s: SupportedTypes = %v vs %v", p.Key, info.SupportedTypes, p.SupportedTypes)
		}
		for _, typ := range info.SupportedTypes {
			if !p.Supports(typ) {
				t.Errorf("%s: Describe lists unsupported family %q", p.Key, typ)
			}
		}
	}
}
