package histstore

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzDecodeRecord throws arbitrary bytes at the record decoder: it
// must never panic or mis-slice, every error must be one of the three
// documented outcomes, and a clean decode must re-encode to the very
// bytes it was parsed from (the store's read path depends on that).
func FuzzDecodeRecord(f *testing.F) {
	f.Add(encodeRecord([]byte(`{"model":"m","platform":"p"}`), []byte(`{"ok":true}`)))
	f.Add(encodeRecord(nil, nil))
	f.Add(encodeRecord([]byte(`{}`), bytes.Repeat([]byte("x"), 1000)))
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0})
	f.Add(bytes.Repeat([]byte{0}, 64))
	// A CRC-corrupt but well-framed record.
	bad := encodeRecord([]byte(`{"model":"m"}`), []byte(`{"x":1}`))
	bad[len(bad)-1] ^= 0xFF
	f.Add(bad)

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := decodeRecord(data)
		switch {
		case err == nil:
			if rec.size < recordHeaderSize+metaFrameSize || rec.size > int64(len(data)) {
				t.Fatalf("clean decode with impossible size %d (input %d)", rec.size, len(data))
			}
			// Round-trip: re-encoding the parsed parts must reproduce
			// the record bytes exactly.
			if got := encodeRecord(rec.metaRaw, rec.report); !bytes.Equal(got, data[:rec.size]) {
				t.Fatalf("re-encode mismatch:\n got %x\nwant %x", got, data[:rec.size])
			}
		case errors.Is(err, errCorrupt):
			if rec.size < recordHeaderSize || rec.size > int64(len(data)) {
				t.Fatalf("corrupt record with unskippable size %d (input %d)", rec.size, len(data))
			}
		case errors.Is(err, errTorn):
			if rec.size != 0 {
				t.Fatalf("torn record reported size %d, want 0", rec.size)
			}
		default:
			// The meta-framing error: CRC-clean payload with a bad
			// inner length. Must still carry a skippable size.
			if rec.size < recordHeaderSize || rec.size > int64(len(data)) {
				t.Fatalf("framing error with unskippable size %d: %v", rec.size, err)
			}
		}
	})
}
