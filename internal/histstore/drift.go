package histstore

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"proof/internal/obs"
)

// Drift detection compares, per (model, platform) key, the newest
// revision's stored reports against a baseline revision's. A revision
// is a (git-rev, descriptor-hash) pair: either the code or the
// hardware descriptor changing starts a new one. Three signals flag
// drift:
//
//   - the end-to-end roofline verdict flipped (compute <-> memory <->
//     ridge) — the headline regression a roofline profiler exists to
//     catch;
//   - the attainable-FLOPS ceiling at the model's operating point moved
//     by more than a relative threshold (the hardware model changed
//     under the model);
//   - the latency distribution shifted: p50 or p99 of the revision's
//     latency digest moved beyond the threshold.

// DriftOptions tunes detection; the zero value applies the defaults.
type DriftOptions struct {
	// RelThreshold is the relative change in attainable FLOPS or a
	// latency percentile that counts as drift (0 = 0.05, i.e. 5%).
	RelThreshold float64
	// BaselineGitRev / BaselineDescHash pin the baseline revision.
	// Either may be a prefix; empty means "the earliest revision with
	// records for the key".
	BaselineGitRev   string
	BaselineDescHash string
}

func (o DriftOptions) withDefaults() DriftOptions {
	if o.RelThreshold <= 0 {
		o.RelThreshold = 0.05
	}
	return o
}

// RevisionStats summarizes one revision's records for one key.
type RevisionStats struct {
	GitRev         string    `json:"git_rev,omitempty"`
	DescriptorHash string    `json:"descriptor_hash,omitempty"`
	Records        int       `json:"records"`
	First          time.Time `json:"first"`
	Last           time.Time `json:"last"`
	// Bound is the dominant end-to-end verdict across the revision's
	// records (ties break toward the most recent record's verdict).
	Bound string `json:"bound,omitempty"`
	// AttainableFLOPS / AttainedFLOPS are means across records.
	AttainableFLOPS float64 `json:"attainable_flops,omitempty"`
	AttainedFLOPS   float64 `json:"attained_flops,omitempty"`
	// LatencyP50 / LatencyP99 come from the revision's latency digest.
	LatencyP50 time.Duration `json:"latency_p50_ns,omitempty"`
	LatencyP99 time.Duration `json:"latency_p99_ns,omitempty"`

	digest *obs.Digest
}

func (r RevisionStats) rev() string {
	m := Meta{GitRev: r.GitRev, DescriptorHash: r.DescriptorHash}
	return m.Revision()
}

// KeyDrift is the verdict for one (model, platform) key.
type KeyDrift struct {
	Model    string `json:"model"`
	Platform string `json:"platform"`
	// Baseline and Latest are the two revisions compared. Latest is
	// the revision holding the key's newest record.
	Baseline RevisionStats `json:"baseline"`
	Latest   RevisionStats `json:"latest"`
	// Drifted is the headline bit; Reasons says why, one line per
	// tripped signal.
	Drifted bool     `json:"drifted"`
	Reasons []string `json:"reasons,omitempty"`
	// VerdictFlipped singles out the compute<->memory signal.
	VerdictFlipped bool `json:"verdict_flipped,omitempty"`
	// AttainableDelta and latency deltas are signed relative changes
	// (latest vs baseline), reported even below threshold.
	AttainableDelta float64 `json:"attainable_delta,omitempty"`
	LatencyP50Delta float64 `json:"latency_p50_delta,omitempty"`
	LatencyP99Delta float64 `json:"latency_p99_delta,omitempty"`
	// SingleRevision marks keys with no second revision to compare —
	// never drifted, listed so the caller can tell "stable" from
	// "uncomparable".
	SingleRevision bool `json:"single_revision,omitempty"`
}

// DriftReport is the store-wide drift summary.
type DriftReport struct {
	Keys        []KeyDrift `json:"keys"`
	DriftedKeys int        `json:"drifted_keys"`
	// Threshold echoes the relative threshold applied.
	Threshold float64 `json:"threshold"`
	// LatencyP50 / LatencyP99 are store-wide percentiles across every
	// record examined (all keys' digests merged) — the fleet context a
	// single key's shift is judged against.
	LatencyP50 time.Duration `json:"latency_p50_ns,omitempty"`
	LatencyP99 time.Duration `json:"latency_p99_ns,omitempty"`
}

// revKey groups metas into revisions.
type revKey struct{ gitRev, descHash string }

// ComputeDrift runs drift detection over a set of history metas
// (typically Store.Metas of a query). Metas lacking a model or
// platform are ignored.
func ComputeDrift(metas []Meta, opts DriftOptions) DriftReport {
	opts = opts.withDefaults()
	type mpKey struct{ model, platform string }
	byKey := map[mpKey][]Meta{}
	var order []mpKey
	for _, m := range metas {
		if m.Model == "" || m.Platform == "" {
			continue
		}
		k := mpKey{m.Model, m.Platform}
		if _, ok := byKey[k]; !ok {
			order = append(order, k)
		}
		byKey[k] = append(byKey[k], m)
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].model != order[j].model {
			return order[i].model < order[j].model
		}
		return order[i].platform < order[j].platform
	})

	rep := DriftReport{Threshold: opts.RelThreshold}
	all := obs.NewDigest()
	for _, k := range order {
		kd := compareKeyRevisions(k.model, k.platform, byKey[k], opts)
		if kd.Baseline.digest != nil {
			all.Merge(kd.Baseline.digest)
		}
		if kd.Latest.digest != nil {
			all.Merge(kd.Latest.digest)
		}
		if kd.Drifted {
			rep.DriftedKeys++
		}
		rep.Keys = append(rep.Keys, kd)
	}
	if all.Count() > 0 {
		rep.LatencyP50 = all.Quantile(0.5)
		rep.LatencyP99 = all.Quantile(0.99)
	}
	return rep
}

// compareKeyRevisions groups one key's metas by revision and compares
// baseline vs latest.
func compareKeyRevisions(model, platform string, metas []Meta, opts DriftOptions) KeyDrift {
	kd := KeyDrift{Model: model, Platform: platform}
	groups := map[revKey][]Meta{}
	for _, m := range metas {
		rk := revKey{m.GitRev, m.DescriptorHash}
		groups[rk] = append(groups[rk], m)
	}
	type grp struct {
		key         revKey
		first, last int64
		metas       []Meta
	}
	var gs []grp
	for rk, ms := range groups {
		g := grp{key: rk, metas: ms, first: ms[0].TimestampNS, last: ms[0].TimestampNS}
		for _, m := range ms[1:] {
			if m.TimestampNS < g.first {
				g.first = m.TimestampNS
			}
			if m.TimestampNS > g.last {
				g.last = m.TimestampNS
			}
		}
		gs = append(gs, g)
	}
	// Oldest revision first (by first record, key as tiebreaker for
	// determinism).
	sort.Slice(gs, func(i, j int) bool {
		if gs[i].first != gs[j].first {
			return gs[i].first < gs[j].first
		}
		if gs[i].key.gitRev != gs[j].key.gitRev {
			return gs[i].key.gitRev < gs[j].key.gitRev
		}
		return gs[i].key.descHash < gs[j].key.descHash
	})

	// Latest = the revision holding the key's globally newest record.
	latest := 0
	for i := range gs {
		if gs[i].last >= gs[latest].last {
			latest = i
		}
	}
	// Baseline = the pinned revision if one matches, else the oldest
	// revision other than latest (or latest itself when it is alone).
	baseline := -1
	if opts.BaselineGitRev != "" || opts.BaselineDescHash != "" {
		for i := range gs {
			if opts.BaselineGitRev != "" && !strings.HasPrefix(gs[i].key.gitRev, opts.BaselineGitRev) {
				continue
			}
			if opts.BaselineDescHash != "" && !strings.HasPrefix(gs[i].key.descHash, opts.BaselineDescHash) {
				continue
			}
			baseline = i
			break
		}
	}
	if baseline == -1 {
		for i := range gs {
			if i != latest {
				baseline = i
				break
			}
		}
	}
	if baseline == -1 {
		baseline = latest
	}

	kd.Latest = summarizeRevision(gs[latest].key, gs[latest].metas)
	kd.Baseline = summarizeRevision(gs[baseline].key, gs[baseline].metas)
	if baseline == latest {
		kd.SingleRevision = true
		return kd
	}

	reason := func(format string, args ...any) {
		kd.Drifted = true
		kd.Reasons = append(kd.Reasons, fmt.Sprintf(format, args...))
	}
	if kd.Baseline.Bound != "" && kd.Latest.Bound != "" && kd.Baseline.Bound != kd.Latest.Bound {
		kd.VerdictFlipped = true
		reason("roofline verdict flipped %s -> %s (baseline %s, latest %s)",
			kd.Baseline.Bound, kd.Latest.Bound, kd.Baseline.rev(), kd.Latest.rev())
	}
	kd.AttainableDelta = relDelta(kd.Baseline.AttainableFLOPS, kd.Latest.AttainableFLOPS)
	if math.Abs(kd.AttainableDelta) > opts.RelThreshold {
		reason("attainable FLOPS moved %+.1f%% (%.3g -> %.3g)",
			100*kd.AttainableDelta, kd.Baseline.AttainableFLOPS, kd.Latest.AttainableFLOPS)
	}
	kd.LatencyP50Delta = relDelta(float64(kd.Baseline.LatencyP50), float64(kd.Latest.LatencyP50))
	kd.LatencyP99Delta = relDelta(float64(kd.Baseline.LatencyP99), float64(kd.Latest.LatencyP99))
	if math.Abs(kd.LatencyP50Delta) > opts.RelThreshold {
		reason("latency p50 shifted %+.1f%% (%s -> %s)",
			100*kd.LatencyP50Delta, kd.Baseline.LatencyP50, kd.Latest.LatencyP50)
	}
	if math.Abs(kd.LatencyP99Delta) > opts.RelThreshold {
		reason("latency p99 shifted %+.1f%% (%s -> %s)",
			100*kd.LatencyP99Delta, kd.Baseline.LatencyP99, kd.Latest.LatencyP99)
	}
	return kd
}

// summarizeRevision folds one revision's metas into stats, feeding
// latencies through a digest so percentile shifts are judged on the
// same machinery the serving stack reports with.
func summarizeRevision(rk revKey, metas []Meta) RevisionStats {
	rs := RevisionStats{
		GitRev:         rk.gitRev,
		DescriptorHash: rk.descHash,
		Records:        len(metas),
		digest:         obs.NewDigest(),
	}
	var attainable, attained float64
	boundVotes := map[string]int{}
	var newest Meta
	for i, m := range metas {
		if i == 0 || m.TimestampNS < rs.First.UnixNano() {
			rs.First = m.Time()
		}
		if i == 0 || m.TimestampNS > rs.Last.UnixNano() {
			rs.Last = m.Time()
			newest = m
		}
		attainable += m.AttainableFLOPS
		attained += m.AttainedFLOPS
		if m.Bound != "" {
			boundVotes[m.Bound]++
		}
		if m.LatencyNS > 0 {
			rs.digest.Observe(time.Duration(m.LatencyNS))
		}
	}
	n := float64(len(metas))
	rs.AttainableFLOPS = attainable / n
	rs.AttainedFLOPS = attained / n
	best := 0
	for b, v := range boundVotes {
		if v > best || (v == best && b == newest.Bound) {
			best, rs.Bound = v, b
		}
	}
	if rs.digest.Count() > 0 {
		rs.LatencyP50 = rs.digest.Quantile(0.5)
		rs.LatencyP99 = rs.digest.Quantile(0.99)
	}
	return rs
}

// relDelta is (latest-base)/base, 0 when the baseline is zero (no
// meaningful relative change exists).
func relDelta(base, latest float64) float64 {
	if base == 0 {
		return 0
	}
	return (latest - base) / base
}
