package histstore

import (
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"sort"
	"testing"
)

// TestBtreeLowerBoundMatchesLinear drives the B-tree descent against
// sort.Search over the flat entry slice — the ground truth it must
// reproduce — across sizes straddling every level-count transition.
func TestBtreeLowerBoundMatchesLinear(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 22))
	for _, n := range []int{0, 1, 2, 31, 32, 33, 1023, 1024, 1025, 5000} {
		entries := make([]*ixEntry, 0, n)
		for i := 0; i < n; i++ {
			entries = append(entries, &ixEntry{
				meta: Meta{
					Model:       fmt.Sprintf("model-%02d", rng.IntN(20)),
					Platform:    fmt.Sprintf("plat-%d", rng.IntN(5)),
					TimestampNS: int64(rng.IntN(1000)),
				},
				seq: uint64(i),
			})
		}
		sort.Slice(entries, func(i, j int) bool { return compareKey(entries[i], entries[j]) < 0 })
		tree := buildTree(entries)

		probe := func(key *ixEntry) {
			t.Helper()
			want := sort.Search(len(entries), func(i int) bool {
				return compareKey(entries[i], key) >= 0
			})
			if got := tree.lowerBound(key); got != want {
				t.Fatalf("n=%d lowerBound(%+v) = %d, want %d", n, key.meta, got, want)
			}
		}
		// Every existing key, plus synthetic probes around the space.
		for _, e := range entries {
			probe(e)
		}
		for i := 0; i < 200; i++ {
			probe(&ixEntry{meta: Meta{
				Model:       fmt.Sprintf("model-%02d", rng.IntN(22)-1),
				Platform:    fmt.Sprintf("plat-%d", rng.IntN(7)-1),
				TimestampNS: int64(rng.IntN(1200) - 100),
			}})
		}
		probe(&ixEntry{})                            // before everything
		probe(&ixEntry{meta: Meta{Model: "zzzzzz"}}) // after everything
	}
}

func TestBtreeDepthGrows(t *testing.T) {
	if d := buildTree(nil).depth(); d != 0 {
		t.Errorf("empty tree depth = %d, want 0", d)
	}
	mk := func(n int) []*ixEntry {
		es := make([]*ixEntry, n)
		for i := range es {
			es[i] = &ixEntry{meta: Meta{Model: fmt.Sprintf("m%06d", i)}, seq: uint64(i)}
		}
		return es
	}
	small := buildTree(mk(10)).depth()
	big := buildTree(mk(5000)).depth()
	if small < 2 || big <= small {
		t.Errorf("depth(10) = %d, depth(5000) = %d; want depth to grow with size", small, big)
	}
}

func TestPrefixRange(t *testing.T) {
	var entries []*ixEntry
	for _, m := range []string{"alex", "alexa", "bert"} {
		for _, p := range []string{"a100", "h100"} {
			for ts := 0; ts < 3; ts++ {
				entries = append(entries, &ixEntry{
					meta: Meta{Model: m, Platform: p, TimestampNS: int64(ts)},
					seq:  uint64(len(entries)),
				})
			}
		}
	}
	sort.Slice(entries, func(i, j int) bool { return compareKey(entries[i], entries[j]) < 0 })
	tree := buildTree(entries)

	check := func(model, platform string, want int) {
		t.Helper()
		start, end := tree.prefixRange(model, platform)
		got := 0
		for i := start; i < end; i++ {
			e := tree.entries[i]
			if e.meta.Model != model || (platform != "" && e.meta.Platform != platform) {
				t.Fatalf("prefixRange(%q, %q) included %+v", model, platform, e.meta)
			}
			got++
		}
		if got != want {
			t.Fatalf("prefixRange(%q, %q) = %d entries, want %d", model, platform, got, want)
		}
	}
	// "alex" must not absorb "alexa" — exact-key semantics.
	check("alex", "", 6)
	check("alexa", "", 6)
	check("bert", "a100", 3)
	check("nope", "", 0)
	if start, end := tree.prefixRange("", ""); start != 0 || end != len(entries) {
		t.Errorf("empty-model range = [%d, %d), want the whole index", start, end)
	}
}

func TestIndexFileRoundtrip(t *testing.T) {
	dir := t.TempDir()
	var entries []*ixEntry
	for i := 0; i < 100; i++ {
		m := testMeta(fmt.Sprintf("m%d", i%7), "p", "r", i)
		raw, _ := json.Marshal(m)
		entries = append(entries, &ixEntry{meta: m, metaRaw: raw, seq: uint64(i + 1), seg: uint32(i % 3), off: int64(i * 100), plen: uint32(50 + i)})
	}
	sort.Slice(entries, func(i, j int) bool { return compareKey(entries[i], entries[j]) < 0 })
	covered := map[uint32]int64{0: 111, 1: 222, 2: 333}
	if err := writeIndexFile(dir, 101, covered, entries); err != nil {
		t.Fatal(err)
	}
	ix, err := readIndexFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ix.nextSeq != 101 || len(ix.entries) != len(entries) || len(ix.covered) != 3 {
		t.Fatalf("roundtrip: nextSeq=%d entries=%d covered=%d", ix.nextSeq, len(ix.entries), len(ix.covered))
	}
	for i, e := range ix.entries {
		o := entries[i]
		if e.meta != o.meta || e.seq != o.seq || e.seg != o.seg || e.off != o.off || e.plen != o.plen {
			t.Fatalf("entry %d mismatch: %+v vs %+v", i, e, o)
		}
	}
}
