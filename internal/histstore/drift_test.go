package histstore

import (
	"strings"
	"testing"
	"time"
)

// driftMeta builds one history meta for drift tests.
func driftMeta(model, platform, rev, desc, bound string, attainable float64, latency time.Duration, i int) Meta {
	return Meta{
		Model:           model,
		Platform:        platform,
		GitRev:          rev,
		DescriptorHash:  desc,
		Bound:           bound,
		AttainableFLOPS: attainable,
		AttainedFLOPS:   attainable * 0.7,
		LatencyNS:       int64(latency),
		TimestampNS:     tsBase + int64(i)*int64(time.Minute),
	}
}

// TestDriftVerdictFlip is the issue's drift scenario: two descriptor
// revisions of one platform where the verdict flips compute -> memory
// must be flagged, while an unchanged (model, platform) pair reports
// no drift.
func TestDriftVerdictFlip(t *testing.T) {
	var metas []Meta
	// resnet/a100: rev1 compute-bound, rev2 (new descriptor) memory-bound.
	for i := 0; i < 5; i++ {
		metas = append(metas, driftMeta("resnet-50", "a100", "rev1", "descA", "compute", 1e14, 3*time.Millisecond, i))
	}
	for i := 10; i < 15; i++ {
		metas = append(metas, driftMeta("resnet-50", "a100", "rev2", "descB", "memory", 1e14, 3*time.Millisecond, i))
	}
	// bert/h100: two revisions, nothing changed.
	for i := 0; i < 5; i++ {
		metas = append(metas, driftMeta("bert-base", "h100", "rev1", "descC", "compute", 2e14, 5*time.Millisecond, i))
	}
	for i := 10; i < 15; i++ {
		metas = append(metas, driftMeta("bert-base", "h100", "rev2", "descC", "compute", 2e14, 5*time.Millisecond, i))
	}

	rep := ComputeDrift(metas, DriftOptions{})
	if len(rep.Keys) != 2 {
		t.Fatalf("Keys = %d, want 2", len(rep.Keys))
	}
	if rep.DriftedKeys != 1 {
		t.Fatalf("DriftedKeys = %d, want 1", rep.DriftedKeys)
	}
	byKey := map[string]KeyDrift{}
	for _, k := range rep.Keys {
		byKey[k.Model+"/"+k.Platform] = k
	}
	flip := byKey["resnet-50/a100"]
	if !flip.Drifted || !flip.VerdictFlipped {
		t.Fatalf("resnet-50/a100 = %+v, want verdict-flip drift", flip)
	}
	if flip.Baseline.Bound != "compute" || flip.Latest.Bound != "memory" {
		t.Errorf("flip bounds = %s -> %s, want compute -> memory", flip.Baseline.Bound, flip.Latest.Bound)
	}
	if len(flip.Reasons) == 0 || !strings.Contains(flip.Reasons[0], "flipped") {
		t.Errorf("Reasons = %v, want a verdict-flip reason", flip.Reasons)
	}
	stable := byKey["bert-base/h100"]
	if stable.Drifted || stable.VerdictFlipped || stable.SingleRevision {
		t.Fatalf("bert-base/h100 = %+v, want comparable and undrifted", stable)
	}
}

func TestDriftAttainableAndLatencyThresholds(t *testing.T) {
	var metas []Meta
	for i := 0; i < 5; i++ {
		metas = append(metas, driftMeta("m", "p", "rev1", "d1", "compute", 1e14, 10*time.Millisecond, i))
	}
	// rev2: ceiling down 20%, latency p50 up ~50% — both beyond 5%.
	for i := 10; i < 15; i++ {
		metas = append(metas, driftMeta("m", "p", "rev2", "d1", "compute", 0.8e14, 15*time.Millisecond, i))
	}
	rep := ComputeDrift(metas, DriftOptions{})
	if rep.DriftedKeys != 1 {
		t.Fatalf("DriftedKeys = %d, want 1: %+v", rep.DriftedKeys, rep.Keys)
	}
	k := rep.Keys[0]
	if k.VerdictFlipped {
		t.Error("verdict flip flagged without a bound change")
	}
	if k.AttainableDelta > -0.15 || k.AttainableDelta < -0.25 {
		t.Errorf("AttainableDelta = %v, want ~ -0.2", k.AttainableDelta)
	}
	if k.LatencyP50Delta < 0.3 {
		t.Errorf("LatencyP50Delta = %v, want a large positive shift", k.LatencyP50Delta)
	}
	// A generous threshold silences both signals.
	loose := ComputeDrift(metas, DriftOptions{RelThreshold: 0.9})
	if loose.DriftedKeys != 0 {
		t.Errorf("threshold 0.9 still drifted: %+v", loose.Keys)
	}
}

func TestDriftSingleRevision(t *testing.T) {
	var metas []Meta
	for i := 0; i < 4; i++ {
		metas = append(metas, driftMeta("m", "p", "rev1", "d1", "compute", 1e14, time.Millisecond, i))
	}
	rep := ComputeDrift(metas, DriftOptions{})
	if len(rep.Keys) != 1 || !rep.Keys[0].SingleRevision || rep.Keys[0].Drifted {
		t.Fatalf("single-revision key = %+v, want SingleRevision and no drift", rep.Keys)
	}
}

func TestDriftPinnedBaseline(t *testing.T) {
	var metas []Meta
	for i := 0; i < 3; i++ {
		metas = append(metas, driftMeta("m", "p", "rev1", "d1", "compute", 1e14, time.Millisecond, i))
	}
	for i := 10; i < 13; i++ {
		metas = append(metas, driftMeta("m", "p", "rev2", "d1", "memory", 1e14, time.Millisecond, i))
	}
	for i := 20; i < 23; i++ {
		metas = append(metas, driftMeta("m", "p", "rev3", "d1", "memory", 1e14, time.Millisecond, i))
	}
	// Default baseline is rev1 (oldest): flip.
	if rep := ComputeDrift(metas, DriftOptions{}); !rep.Keys[0].VerdictFlipped {
		t.Fatal("default baseline rev1 should flip vs rev3")
	}
	// Pinned to rev2: no flip (both memory-bound).
	rep := ComputeDrift(metas, DriftOptions{BaselineGitRev: "rev2"})
	k := rep.Keys[0]
	if k.Baseline.GitRev != "rev2" {
		t.Fatalf("pinned baseline = %q, want rev2", k.Baseline.GitRev)
	}
	if k.VerdictFlipped {
		t.Error("rev2 vs rev3 flagged a verdict flip, both are memory-bound")
	}
	// Pinning to an unknown rev falls back to the default choice.
	if rep := ComputeDrift(metas, DriftOptions{BaselineGitRev: "nope"}); rep.Keys[0].Baseline.GitRev != "rev1" {
		t.Errorf("unknown pin baseline = %q, want fallback rev1", rep.Keys[0].Baseline.GitRev)
	}
}

func TestDriftStoreWideDigest(t *testing.T) {
	var metas []Meta
	for i := 0; i < 10; i++ {
		metas = append(metas, driftMeta("m", "p", "rev1", "d1", "compute", 1e14, 10*time.Millisecond, i))
		metas = append(metas, driftMeta("m2", "p", "rev1", "d1", "compute", 1e14, 20*time.Millisecond, i))
	}
	rep := ComputeDrift(metas, DriftOptions{})
	// The store-wide p50 sits between the two keys' latencies — proof
	// the per-key digests were merged, not replaced.
	if rep.LatencyP50 < 9*time.Millisecond || rep.LatencyP50 > 22*time.Millisecond {
		t.Errorf("store-wide p50 = %s, want within the merged 10-20ms span", rep.LatencyP50)
	}
	if rep.LatencyP99 < rep.LatencyP50 {
		t.Errorf("p99 %s < p50 %s", rep.LatencyP99, rep.LatencyP50)
	}
}
