package histstore

import (
	"context"
	"sync"
	"sync/atomic"
)

// Writer decouples the serving path from store appends: Enqueue never
// blocks — a full queue drops the record and counts it — so a slow or
// wedged disk degrades history completeness, not profile latency. One
// goroutine drains the queue in order.
type Writer struct {
	store *Store
	ch    chan writeReq
	wg    sync.WaitGroup

	// sendMu guards sends against Close closing the channel: senders
	// hold it shared, Close holds it exclusively while marking closed.
	sendMu sync.RWMutex
	closed bool

	dropped atomic.Int64
	errs    atomic.Int64

	// OnError, if set before the first Enqueue, observes append
	// failures (for logging); it runs on the writer goroutine.
	OnError func(error)
}

type writeReq struct {
	meta   Meta
	report []byte
	done   chan struct{} // non-nil only for flush barriers
}

// NewWriter starts a writer over store with the given queue capacity
// (0 = 256). The drain goroutine's lifetime is explicit — Close stops
// it — rather than bound to a construction-time context, so a writer
// can outlive the request that created it.
//
//lint:ignore ctxfirst lifecycle is managed by Close, not a construction context
func NewWriter(store *Store, queue int) *Writer {
	if queue <= 0 {
		queue = 256
	}
	w := &Writer{store: store, ch: make(chan writeReq, queue)}
	w.wg.Add(1)
	go w.run()
	return w
}

func (w *Writer) run() {
	defer w.wg.Done()
	for req := range w.ch {
		if req.done != nil {
			close(req.done)
			continue
		}
		if err := w.store.Append(req.meta, req.report); err != nil {
			w.errs.Add(1)
			if w.OnError != nil {
				w.OnError(err)
			}
		}
	}
}

// Enqueue hands one record to the writer. It returns false — and
// counts a drop — when the queue is full or the writer is closed; it
// never blocks.
func (w *Writer) Enqueue(meta Meta, report []byte) bool {
	w.sendMu.RLock()
	defer w.sendMu.RUnlock()
	if w.closed {
		w.dropped.Add(1)
		return false
	}
	// The shared lock only fences Close's close(w.ch); the drain
	// goroutine never takes sendMu, and the send has a default arm, so
	// this cannot block the lock.
	//lint:ignore lockedcall non-blocking send; RLock fences channel close, not the drain
	select {
	case w.ch <- writeReq{meta: meta, report: report}:
		return true
	default:
		w.dropped.Add(1)
		return false
	}
}

// Flush blocks until every record enqueued before the call has been
// appended (or failed), or until ctx expires — a wedged disk degrades
// history completeness, it must not hang shutdown. Used by tests and
// shutdown.
func (w *Writer) Flush(ctx context.Context) error {
	w.sendMu.RLock()
	if w.closed {
		w.sendMu.RUnlock()
		return nil
	}
	done := make(chan struct{})
	// Blocking send: a flush barrier must get in even behind a full
	// queue of real work (but never past ctx). Safe under the shared
	// lock — the drain goroutine consumes without taking sendMu, so
	// the queue always empties out from under us.
	//lint:ignore lockedcall RLock fences channel close; the drain side never locks
	select {
	case w.ch <- writeReq{done: done}:
	case <-ctx.Done():
		w.sendMu.RUnlock()
		return ctx.Err()
	}
	w.sendMu.RUnlock()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Dropped returns how many records were rejected by a full queue or a
// closed writer.
func (w *Writer) Dropped() int64 { return w.dropped.Load() }

// Errors returns how many appends failed on the writer goroutine.
func (w *Writer) Errors() int64 { return w.errs.Load() }

// Close drains the queue, stops the goroutine, and flushes the store
// index; ctx bounds the drain (on expiry the goroutine keeps emptying
// the queue in the background, but the index flush is skipped and
// ctx's error returned). The underlying store stays open (it may be
// shared).
func (w *Writer) Close(ctx context.Context) error {
	w.sendMu.Lock()
	if w.closed {
		w.sendMu.Unlock()
		return nil
	}
	w.closed = true
	close(w.ch)
	w.sendMu.Unlock()
	drained := make(chan struct{})
	go func() {
		w.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return w.store.FlushIndex()
	case <-ctx.Done():
		return ctx.Err()
	}
}
