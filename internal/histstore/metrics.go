package histstore

import (
	"errors"
	"time"

	"proof/internal/obs"
)

// RegisterMetrics wires a store (and optionally its async writer; nil
// is fine) into an obs.Registry under the proofd_store_* family names.
// Registration conflicts surface as an error for the caller to treat
// as the startup bug they are, matching the serving stack's pattern.
func RegisterMetrics(reg *obs.Registry, s *Store, w *Writer) error {
	errs := []error{
		reg.CounterFunc("proofd_store_appends_total",
			"Reports appended to the history store.",
			func() float64 { return float64(s.appends.Load()) }),
		reg.CounterFunc("proofd_store_append_bytes_total",
			"Bytes appended to history segments.",
			func() float64 { return float64(s.appendBytes.Load()) }),
		reg.CounterFunc("proofd_store_read_bytes_total",
			"Bytes read from history segments (record reads, recovery and verification scans).",
			func() float64 { return float64(s.readBytes.Load()) }),
		reg.GaugeFunc("proofd_store_segments",
			"Segment files in the history store.",
			func() float64 { return float64(s.Stats().Segments) }),
		reg.GaugeFunc("proofd_store_records",
			"Records indexed in the history store.",
			func() float64 { return float64(s.Stats().Records) }),
		reg.GaugeFunc("proofd_store_bytes",
			"Total on-disk size of history segments.",
			func() float64 { return float64(s.segBytes.Load()) }),
		reg.GaugeFunc("proofd_store_index_depth",
			"Levels a history index lookup descends (B-tree height).",
			func() float64 { return float64(s.Stats().IndexDepth) }),
		reg.CounterFunc("proofd_store_skipped_records_total",
			"CRC-corrupt records skipped by recovery scans.",
			func() float64 { return float64(s.skipped.Load()) }),
		reg.CounterFunc("proofd_store_truncated_bytes_total",
			"Torn-tail bytes discarded by crash recovery.",
			func() float64 { return float64(s.truncated.Load()) }),
		reg.GaugeFunc("proofd_store_last_append_age_seconds",
			"Seconds since the newest stored record (-1 when the store is empty).",
			func() float64 {
				ns := s.lastAppendNS.Load()
				if ns == 0 {
					return -1
				}
				return time.Since(time.Unix(0, ns)).Seconds()
			}),
	}
	if w != nil {
		errs = append(errs,
			reg.CounterFunc("proofd_store_dropped_writes_total",
				"History records dropped by a full or closed write queue.",
				func() float64 { return float64(w.Dropped()) }),
			reg.CounterFunc("proofd_store_write_errors_total",
				"History store append failures on the async writer.",
				func() float64 { return float64(w.Errors()) }),
		)
	}
	return errors.Join(errs...)
}
