package histstore

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"time"
)

// tsBase keeps test timestamps deterministic and ordered.
const tsBase = int64(1_700_000_000_000_000_000)

func testMeta(model, platform, rev string, i int) Meta {
	return Meta{
		Model:           model,
		Platform:        platform,
		DescriptorHash:  "dh-" + platform,
		GitRev:          rev,
		TimestampNS:     tsBase + int64(i)*int64(time.Second),
		Backend:         "trtsim",
		Batch:           8,
		DType:           "fp16",
		Mode:            "predicted",
		Bound:           "compute",
		AttainableFLOPS: 1e14,
		AttainedFLOPS:   7e13,
		LatencyNS:       int64(3 * time.Millisecond),
	}
}

func testReport(model, platform string, i int) []byte {
	return []byte(fmt.Sprintf(`{"model":%q,"platform":%q,"n":%d,"payload":"xxxxxxxxxxxxxxxx"}`,
		model, platform, i))
}

func mustOpen(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestStoreRoundtrip(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	want := map[string][]byte{}
	for i := 0; i < 25; i++ {
		model := fmt.Sprintf("model-%d", i%5)
		m := testMeta(model, "a100", "rev1", i)
		body := testReport(model, "a100", i)
		if err := s.Append(m, body); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		want[fmt.Sprint(i)] = body
	}
	entries, total, err := s.Query(Query{Model: "model-2"})
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if total != 5 || len(entries) != 5 {
		t.Fatalf("Query(model-2) = %d entries (total %d), want 5", len(entries), total)
	}
	for _, e := range entries {
		body, err := s.Get(e)
		if err != nil {
			t.Fatalf("Get(%s): %v", e.ID, err)
		}
		if e.Meta.Model != "model-2" || !bytes.Contains(body, []byte(`"model-2"`)) {
			t.Errorf("Get(%s) meta/body mismatch: %s", e.ID, body)
		}
	}
	// Newest first.
	for i := 1; i < len(entries); i++ {
		if entries[i].Meta.TimestampNS > entries[i-1].Meta.TimestampNS {
			t.Fatalf("entries not newest-first at %d", i)
		}
	}
	if st := s.Stats(); st.Records != 25 || st.Appends != 25 || st.Segments != 1 {
		t.Errorf("Stats = %+v, want 25 records, 25 appends, 1 segment", st)
	}
}

func TestStoreAppendValidation(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	if err := s.Append(Meta{Platform: "a100"}, []byte("{}")); err == nil {
		t.Error("Append without model succeeded, want error")
	}
	if err := s.Append(Meta{Model: "m"}, []byte("{}")); err == nil {
		t.Error("Append without platform succeeded, want error")
	}
}

func TestStoreGetID(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	body := testReport("m", "p", 0)
	if err := s.Append(testMeta("m", "p", "r", 0), body); err != nil {
		t.Fatal(err)
	}
	entries, _, _ := s.Query(Query{})
	meta, got, err := s.GetID(entries[0].ID)
	if err != nil {
		t.Fatalf("GetID(%s): %v", entries[0].ID, err)
	}
	if meta.Model != "m" || !bytes.Equal(got, body) {
		t.Errorf("GetID returned meta %+v body %s", meta, got)
	}
	for _, bad := range []string{"", "zz", "1:2:3", "01:2", "9:9"} {
		if _, _, err := s.GetID(bad); err == nil {
			t.Errorf("GetID(%q) succeeded, want error", bad)
		}
	}
}

func TestStorePaging(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	for i := 0; i < 30; i++ {
		if err := s.Append(testMeta("m", "p", "r", i), testReport("m", "p", i)); err != nil {
			t.Fatal(err)
		}
	}
	var seen []string
	for off := 0; ; off += 7 {
		entries, total, err := s.Query(Query{Model: "m", Platform: "p", Offset: off, Limit: 7})
		if err != nil {
			t.Fatal(err)
		}
		if total != 30 {
			t.Fatalf("total = %d, want 30", total)
		}
		if len(entries) == 0 {
			break
		}
		for _, e := range entries {
			seen = append(seen, e.ID)
		}
	}
	if len(seen) != 30 {
		t.Fatalf("paged %d entries, want 30", len(seen))
	}
	uniq := map[string]bool{}
	for _, id := range seen {
		if uniq[id] {
			t.Fatalf("entry %s returned twice across pages", id)
		}
		uniq[id] = true
	}
}

func TestStoreQueryFilters(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	for i := 0; i < 10; i++ {
		rev := "rev-a"
		if i >= 5 {
			rev = "rev-b"
		}
		if err := s.Append(testMeta("m", "p", rev, i), testReport("m", "p", i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, total, _ := s.Query(Query{Model: "m", GitRev: "rev-b"}); total != 5 {
		t.Errorf("GitRev filter total = %d, want 5", total)
	}
	since := time.Unix(0, tsBase+7*int64(time.Second))
	if _, total, _ := s.Query(Query{Model: "m", Since: since}); total != 3 {
		t.Errorf("Since filter total = %d, want 3", total)
	}
	until := time.Unix(0, tsBase+2*int64(time.Second))
	if _, total, _ := s.Query(Query{Model: "m", Until: until}); total != 3 {
		t.Errorf("Until filter total = %d, want 3", total)
	}
	// Platform-only query: full-index range with a filter.
	if _, total, _ := s.Query(Query{Platform: "p"}); total != 10 {
		t.Errorf("platform-only total = %d, want 10", total)
	}
	if _, total, _ := s.Query(Query{Platform: "other"}); total != 0 {
		t.Errorf("wrong-platform total = %d, want 0", total)
	}
}

func TestStoreRotationAndReopen(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force rotation every few records.
	s := mustOpen(t, dir, Options{SegmentBytes: 512})
	const n = 50
	for i := 0; i < n; i++ {
		if err := s.Append(testMeta("m", "p", "r", i), testReport("m", "p", i)); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Segments < 5 {
		t.Fatalf("Segments = %d, want rotation to have produced several", st.Segments)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2 := mustOpen(t, dir, Options{SegmentBytes: 512})
	if got := s2.Stats(); got.Records != n || got.Segments != st.Segments {
		t.Fatalf("reopened Stats = %+v, want %d records in %d segments", got, n, st.Segments)
	}
	entries, total, err := s2.Query(Query{Model: "m"})
	if err != nil || total != n {
		t.Fatalf("reopened Query total = %d (err %v), want %d", total, err, n)
	}
	for _, e := range entries {
		if _, err := s2.Get(e); err != nil {
			t.Fatalf("reopened Get(%s): %v", e.ID, err)
		}
	}
}

// TestStorePartialReads is the issue's read-byte accounting criterion:
// against a 1k-report history spread over many models and segments, a
// clean reopen must read nothing (the persisted watermarks cover every
// byte), and paging one (model, platform) key must read exactly the
// matching records' bytes — not the other ~90% of the store.
func TestStorePartialReads(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{SegmentBytes: 4096})
	const n = 1000
	var wantBytes int64
	for i := 0; i < n; i++ {
		model := fmt.Sprintf("model-%d", i%10)
		if err := s.Append(testMeta(model, "a100", "r", i), testReport(model, "a100", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir, Options{SegmentBytes: 4096})
	st := s2.Stats()
	if st.Records != n {
		t.Fatalf("reopened with %d records, want %d", st.Records, n)
	}
	if st.ReadBytes != 0 {
		t.Fatalf("clean reopen read %d segment bytes, want 0 (watermarks cover everything)", st.ReadBytes)
	}
	if st.Segments < 20 {
		t.Fatalf("Segments = %d, want the history spread over many segments", st.Segments)
	}

	entries, total, err := s2.Query(Query{Model: "model-3", Platform: "a100"})
	if err != nil || total != n/10 {
		t.Fatalf("Query total = %d (err %v), want %d", total, err, n/10)
	}
	if got := s2.Stats().ReadBytes; got != 0 {
		t.Fatalf("index-only Query read %d bytes, want 0", got)
	}
	for _, e := range entries {
		wantBytes += recordHeaderSize + int64(e.plen)
		if _, err := s2.Get(e); err != nil {
			t.Fatalf("Get(%s): %v", e.ID, err)
		}
	}
	if got := s2.Stats().ReadBytes; got != wantBytes {
		t.Fatalf("reading one key touched %d bytes, want exactly the %d bytes of its %d records",
			got, wantBytes, len(entries))
	}
	// Sanity: the key's bytes are a small fraction of the store.
	if wantBytes*5 > st.Bytes {
		t.Fatalf("partial read %d bytes vs store %d — not partial", wantBytes, st.Bytes)
	}
}

func TestStoreCompact(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{SegmentBytes: 512})
	for i := 0; i < 40; i++ {
		if err := s.Append(testMeta("m", "p", "r", i), testReport("m", "p", i)); err != nil {
			t.Fatal(err)
		}
	}
	before, _, _ := s.Query(Query{Model: "m"})
	if err := s.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	after, total, err := s.Query(Query{Model: "m"})
	if err != nil || total != 40 {
		t.Fatalf("post-compact Query total = %d (err %v), want 40", total, err)
	}
	if len(after) != len(before) {
		t.Fatalf("compact changed entry count %d -> %d", len(before), len(after))
	}
	for i, e := range after {
		body, err := s.Get(e)
		if err != nil {
			t.Fatalf("post-compact Get(%s): %v", e.ID, err)
		}
		if e.Meta != before[i].Meta {
			t.Errorf("compact reordered entry %d", i)
		}
		_ = body
	}
	if rep, err := s.Verify(); err != nil || !rep.Ok() {
		t.Fatalf("post-compact Verify = %+v (err %v), want clean", rep, err)
	}
	// Appends keep working after compaction.
	if err := s.Append(testMeta("m", "p", "r", 99), testReport("m", "p", 99)); err != nil {
		t.Fatalf("post-compact Append: %v", err)
	}
	// And the compacted store survives a reopen.
	s.Close()
	s2 := mustOpen(t, dir, Options{SegmentBytes: 512})
	if st := s2.Stats(); st.Records != 41 {
		t.Fatalf("post-compact reopen Records = %d, want 41", st.Records)
	}
}

func TestWriterAsync(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	w := NewWriter(s, 8)
	for i := 0; i < 5; i++ {
		if !w.Enqueue(testMeta("m", "p", "r", i), testReport("m", "p", i)) {
			t.Fatalf("Enqueue %d rejected", i)
		}
	}
	if err := w.Flush(context.Background()); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if st := s.Stats(); st.Records != 5 {
		t.Fatalf("after Flush, Records = %d, want 5", st.Records)
	}
	if err := w.Close(context.Background()); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if w.Enqueue(testMeta("m", "p", "r", 9), testReport("m", "p", 9)) {
		t.Error("Enqueue after Close succeeded")
	}
	if w.Dropped() != 1 {
		t.Errorf("Dropped = %d, want 1", w.Dropped())
	}
	if err := w.Flush(context.Background()); err != nil { // must not hang or panic on a closed writer
		t.Fatalf("Flush after Close: %v", err)
	}
}

func TestWriterInvalidRecordCountsError(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	w := NewWriter(s, 4)
	defer w.Close(context.Background())
	w.Enqueue(Meta{}, []byte("{}")) // no model/platform: append fails
	w.Flush(context.Background())
	if w.Errors() != 1 {
		t.Errorf("Errors = %d, want 1", w.Errors())
	}
}
