package histstore

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// fillStore writes n records and closes the store, returning the
// segment file paths in id order.
func fillStore(t *testing.T, dir string, n int, opts Options) []string {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := s.Append(testMeta("m", "p", "r", i), testReport("m", "p", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	ids, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	paths := make([]string, len(ids))
	for i, id := range ids {
		paths[i] = filepath.Join(dir, segmentName(id))
	}
	return paths
}

func removeIndex(t *testing.T, dir string) {
	t.Helper()
	if err := os.Remove(filepath.Join(dir, idxName)); err != nil {
		t.Fatal(err)
	}
}

// TestRecoveryTornTail simulates a crash mid-append: the final segment
// ends in half a record. Reopen must truncate the torn bytes and keep
// every complete record.
func TestRecoveryTornTail(t *testing.T) {
	dir := t.TempDir()
	paths := fillStore(t, dir, 10, Options{})
	last := paths[len(paths)-1]

	// Append a torn record: a header promising more payload than exists.
	full := encodeRecord([]byte(`{"model":"m","platform":"p"}`), []byte(`{"torn":true}`))
	torn := full[:len(full)-5]
	f, err := os.OpenFile(last, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()
	sizeBefore, _ := os.Stat(last)

	s := mustOpen(t, dir, Options{})
	st := s.Stats()
	if st.Records != 10 {
		t.Fatalf("Records after torn-tail recovery = %d, want 10", st.Records)
	}
	if st.TruncatedBytes != int64(len(torn)) {
		t.Fatalf("TruncatedBytes = %d, want %d", st.TruncatedBytes, len(torn))
	}
	sizeAfter, _ := os.Stat(last)
	if sizeAfter.Size() != sizeBefore.Size()-int64(len(torn)) {
		t.Fatalf("segment not truncated: %d -> %d", sizeBefore.Size(), sizeAfter.Size())
	}
	// All ten records still read back clean.
	entries, _, _ := s.Query(Query{Model: "m"})
	for _, e := range entries {
		if _, err := s.Get(e); err != nil {
			t.Fatalf("Get(%s) after recovery: %v", e.ID, err)
		}
	}
	// The store is appendable again and a later reopen sees the append.
	if err := s.Append(testMeta("m", "p", "r", 50), testReport("m", "p", 50)); err != nil {
		t.Fatalf("Append after recovery: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, dir, Options{})
	if got := s2.Stats().Records; got != 11 {
		t.Fatalf("post-recovery reopen Records = %d, want 11", got)
	}
}

// TestRecoveryCorruptRecord flips payload bytes inside a middle record
// and forces a full rescan (index removed): recovery must skip exactly
// that record — detected by CRC — and keep both its neighbors.
func TestRecoveryCorruptRecord(t *testing.T) {
	dir := t.TempDir()
	paths := fillStore(t, dir, 3, Options{})
	if len(paths) != 1 {
		t.Fatalf("expected one segment, got %d", len(paths))
	}
	data, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	// Locate the second record: magic, then record 0's frame.
	pos := int64(len(segMagic))
	rec0, err := decodeRecord(data[pos:])
	if err != nil {
		t.Fatal(err)
	}
	second := pos + rec0.size
	// Corrupt payload bytes of record 1 (past its 8-byte header).
	for i := second + recordHeaderSize + 4; i < second+recordHeaderSize+8; i++ {
		data[i] ^= 0xFF
	}
	if err := os.WriteFile(paths[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	removeIndex(t, dir)

	s := mustOpen(t, dir, Options{})
	st := s.Stats()
	if st.Records != 2 {
		t.Fatalf("Records = %d, want 2 (corrupt one skipped)", st.Records)
	}
	if st.SkippedRecords != 1 {
		t.Fatalf("SkippedRecords = %d, want 1", st.SkippedRecords)
	}
	entries, _, _ := s.Query(Query{Model: "m"})
	bodies := map[string]bool{}
	for _, e := range entries {
		body, err := s.Get(e)
		if err != nil {
			t.Fatalf("Get(%s): %v", e.ID, err)
		}
		bodies[string(body)] = true
	}
	if !bodies[string(testReport("m", "p", 0))] || !bodies[string(testReport("m", "p", 2))] {
		t.Fatalf("recovery lost a neighbor of the corrupt record: %v", bodies)
	}
	// Verify refuses the store: the corruption is still on disk.
	rep, err := s.Verify()
	if err == nil || rep.Ok() {
		t.Fatalf("Verify of corrupt store = %+v (err %v), want failure", rep, err)
	}
	if rep.CorruptRecords != 1 {
		t.Errorf("Verify CorruptRecords = %d, want 1", rep.CorruptRecords)
	}
	// Compact drops the corruption; Verify then passes.
	if err := s.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if rep, err := s.Verify(); err != nil || !rep.Ok() {
		t.Fatalf("post-compact Verify = %+v (err %v), want clean", rep, err)
	}
}

// TestRecoveryCorruptIndex: a flipped byte in index.bin must not lose
// data — Open falls back to a full segment scan.
func TestRecoveryCorruptIndex(t *testing.T) {
	dir := t.TempDir()
	fillStore(t, dir, 8, Options{})
	idx := filepath.Join(dir, idxName)
	data, err := os.ReadFile(idx)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(idx, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s := mustOpen(t, dir, Options{})
	if st := s.Stats(); st.Records != 8 {
		t.Fatalf("Records after corrupt-index fallback = %d, want 8", st.Records)
	}
	if st := s.Stats(); st.ReadBytes == 0 {
		t.Fatalf("corrupt-index fallback should have scanned segments, ReadBytes = 0")
	}
}

// TestRecoveryMidFileGarbage: an unparsable region in a NON-final
// segment must not be truncated (only the final segment can hold a
// torn append) — it is reported as dead bytes and later records in
// other segments survive.
func TestRecoveryMidSegmentDeadBytes(t *testing.T) {
	dir := t.TempDir()
	paths := fillStore(t, dir, 30, Options{SegmentBytes: 512})
	if len(paths) < 3 {
		t.Fatalf("need >=3 segments, got %d", len(paths))
	}
	mid := paths[len(paths)/2]
	// Overwrite a record header mid-segment with an implausible length.
	data, err := os.ReadFile(mid)
	if err != nil {
		t.Fatal(err)
	}
	pos := int64(len(segMagic))
	rec, err := decodeRecord(data[pos:])
	if err != nil {
		t.Fatal(err)
	}
	tail := pos + rec.size
	copy(data[tail:], bytes.Repeat([]byte{0xFF}, 8))
	if err := os.WriteFile(mid, data, 0o644); err != nil {
		t.Fatal(err)
	}
	removeIndex(t, dir)
	sizeBefore, _ := os.Stat(mid)

	s := mustOpen(t, dir, Options{SegmentBytes: 512})
	sizeAfter, _ := os.Stat(mid)
	if sizeAfter.Size() != sizeBefore.Size() {
		t.Fatalf("non-final segment was truncated: %d -> %d", sizeBefore.Size(), sizeAfter.Size())
	}
	st := s.Stats()
	if st.TruncatedBytes == 0 {
		t.Fatal("dead bytes not accounted")
	}
	// Records from segments after the damaged one survived.
	if st.Records <= 1 {
		t.Fatalf("Records = %d; damage to one segment lost the rest of the store", st.Records)
	}
}
