package histstore

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
)

// ixEntry is one indexed record: its meta (the exact bytes stored in
// the record, so the index can round-trip without re-marshaling) plus
// the record's location.
type ixEntry struct {
	meta    Meta
	metaRaw []byte
	seq     uint64
	seg     uint32
	off     int64 // offset of the record header within the segment
	plen    uint32
}

// compareKey orders entries by the composite index key
// (model, platform, descriptor-hash, git-rev, timestamp, seq) — the
// tuple the issue's queries and drift grouping walk.
func compareKey(a, b *ixEntry) int {
	if c := cmpStr(a.meta.Model, b.meta.Model); c != 0 {
		return c
	}
	if c := cmpStr(a.meta.Platform, b.meta.Platform); c != 0 {
		return c
	}
	if c := cmpStr(a.meta.DescriptorHash, b.meta.DescriptorHash); c != 0 {
		return c
	}
	if c := cmpStr(a.meta.GitRev, b.meta.GitRev); c != 0 {
		return c
	}
	if a.meta.TimestampNS != b.meta.TimestampNS {
		if a.meta.TimestampNS < b.meta.TimestampNS {
			return -1
		}
		return 1
	}
	if a.seq != b.seq {
		if a.seq < b.seq {
			return -1
		}
		return 1
	}
	return 0
}

func cmpStr(a, b string) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// btreeFanout is the node width of the static B-tree. 32 keeps the
// tree three levels deep at 32k records while the per-level binary
// search stays cache-friendly.
const btreeFanout = 32

// btree is a compacted, static B-tree over the sorted entry slice:
// level 0 groups the entries into leaf blocks of btreeFanout; each
// higher level indexes the first key of every block below, again in
// blocks of btreeFanout, until one root block remains. It is rebuilt
// whole on every index mutation batch (append, compact, load) —
// read-optimized, like an on-disk B-tree after compaction, without
// rebalancing machinery.
type btree struct {
	entries []*ixEntry
	// levels[l][i] is the entry index of the first entry of block i at
	// level l; level 0 is the leaf-block level, the last level is the
	// root. Empty when there are no entries.
	levels [][]int32
}

func buildTree(entries []*ixEntry) *btree {
	t := &btree{entries: entries}
	if len(entries) == 0 {
		return t
	}
	// Leaf-block level.
	level := make([]int32, 0, (len(entries)+btreeFanout-1)/btreeFanout)
	for i := 0; i < len(entries); i += btreeFanout {
		level = append(level, int32(i))
	}
	t.levels = append(t.levels, level)
	// Interior levels, until one block of block-firsts remains.
	for len(level) > btreeFanout {
		up := make([]int32, 0, (len(level)+btreeFanout-1)/btreeFanout)
		for i := 0; i < len(level); i += btreeFanout {
			up = append(up, level[i])
		}
		level = up
		t.levels = append(t.levels, level)
	}
	return t
}

// depth is the number of levels a lookup descends, counting the entry
// array itself; 0 for an empty tree.
func (t *btree) depth() int {
	if len(t.entries) == 0 {
		return 0
	}
	return len(t.levels) + 1
}

// lowerBound returns the index of the first entry >= key (by
// compareKey), descending the tree: at each level it binary-searches
// one node's children, narrowing the window for the level below.
func (t *btree) lowerBound(key *ixEntry) int {
	if len(t.entries) == 0 {
		return 0
	}
	// Window of block positions under consideration at the current
	// level, starting with the whole root block.
	lo, hi := 0, len(t.levels[len(t.levels)-1])
	for l := len(t.levels) - 1; l >= 0; l-- {
		level := t.levels[l]
		// Last block in [lo, hi) whose first entry is < key; the lower
		// bound cannot precede that block.
		i := sort.Search(hi-lo, func(i int) bool {
			return compareKey(t.entries[level[lo+i]], key) >= 0
		})
		blk := lo + i - 1
		if blk < lo {
			blk = lo
		}
		if l == 0 {
			// Scan the leaf block (and run into the next one if the
			// bound sits exactly on a block boundary).
			start := int(level[blk])
			end := len(t.entries)
			if blk+1 < len(level) {
				end = int(level[blk+1])
			}
			j := sort.Search(end-start, func(i int) bool {
				return compareKey(t.entries[start+i], key) >= 0
			})
			return start + j
		}
		// Children of block blk at the level below.
		lo = blk * btreeFanout
		hi = lo + btreeFanout
		if hi > len(t.levels[l-1]) {
			hi = len(t.levels[l-1])
		}
	}
	return len(t.entries) // unreachable
}

// prefixRange returns the half-open entry range matching a
// (model[, platform]) prefix. Platform may only narrow the range when
// model is set (it follows model in the key order).
func (t *btree) prefixRange(model, platform string) (int, int) {
	if model == "" {
		return 0, len(t.entries)
	}
	low := &ixEntry{meta: Meta{Model: model, Platform: platform}}
	start := t.lowerBound(low)
	highMeta := Meta{Model: model + "\x00"}
	if platform != "" {
		highMeta = Meta{Model: model, Platform: platform + "\x00"}
	}
	end := t.lowerBound(&ixEntry{meta: highMeta})
	return start, end
}

// ---- index file ----
//
// index.bin persists the sorted entry list plus per-segment coverage
// watermarks, so Open only has to scan bytes appended after the last
// index write (the crash-recovery region) instead of the whole store:
//
//	[8]  idxMagic
//	[4]  version
//	[8]  next sequence number
//	[4]  segment count
//	       per segment: [4] id  [8] covered bytes (file size at write)
//	[4]  entry count
//	       per entry: [4] meta length, meta JSON,
//	                  [8] seq  [4] seg  [8] off  [4] payload length
//	[4]  CRC-32 of everything above
//
// A missing or corrupt index file is never fatal: Open falls back to a
// full segment scan and rewrites it.

const (
	idxMagic   = "PRFIDX01"
	idxVersion = 1
	idxName    = "index.bin"
)

// indexFile is the decoded persistent index.
type indexFile struct {
	nextSeq uint64
	covered map[uint32]int64
	entries []*ixEntry
}

func writeIndexFile(dir string, nextSeq uint64, covered map[uint32]int64, entries []*ixEntry) error {
	var buf bytes.Buffer
	buf.WriteString(idxMagic)
	writeU32(&buf, idxVersion)
	writeU64(&buf, nextSeq)
	segIDs := make([]uint32, 0, len(covered))
	for id := range covered {
		segIDs = append(segIDs, id)
	}
	sort.Slice(segIDs, func(i, j int) bool { return segIDs[i] < segIDs[j] })
	writeU32(&buf, uint32(len(segIDs)))
	for _, id := range segIDs {
		writeU32(&buf, id)
		writeU64(&buf, uint64(covered[id]))
	}
	writeU32(&buf, uint32(len(entries)))
	for _, e := range entries {
		writeU32(&buf, uint32(len(e.metaRaw)))
		buf.Write(e.metaRaw)
		writeU64(&buf, e.seq)
		writeU32(&buf, e.seg)
		writeU64(&buf, uint64(e.off))
		writeU32(&buf, e.plen)
	}
	writeU32(&buf, crc32.ChecksumIEEE(buf.Bytes()))

	// Write-then-rename so a crash mid-write leaves the previous index
	// (or none) rather than a torn one.
	tmp := filepath.Join(dir, idxName+".tmp")
	if err := os.WriteFile(tmp, buf.Bytes(), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, idxName))
}

func readIndexFile(dir string) (*indexFile, error) {
	data, err := os.ReadFile(filepath.Join(dir, idxName))
	if err != nil {
		return nil, err
	}
	if len(data) < len(idxMagic)+8 || string(data[:len(idxMagic)]) != idxMagic {
		return nil, fmt.Errorf("histstore: bad index magic")
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return nil, fmt.Errorf("histstore: index CRC mismatch")
	}
	r := &byteReader{buf: body, pos: len(idxMagic)}
	if v := r.u32(); v != idxVersion {
		return nil, fmt.Errorf("histstore: unsupported index version %d", v)
	}
	ix := &indexFile{nextSeq: r.u64(), covered: map[uint32]int64{}}
	nseg := int(r.u32())
	for i := 0; i < nseg && r.err == nil; i++ {
		id := r.u32()
		ix.covered[id] = int64(r.u64())
	}
	n := int(r.u32())
	for i := 0; i < n && r.err == nil; i++ {
		metaRaw := r.bytes(int(r.u32()))
		e := &ixEntry{
			metaRaw: metaRaw,
			seq:     r.u64(),
			seg:     r.u32(),
		}
		e.off = int64(r.u64())
		e.plen = r.u32()
		if r.err != nil {
			break
		}
		if err := json.Unmarshal(e.metaRaw, &e.meta); err != nil {
			return nil, fmt.Errorf("histstore: index entry %d meta: %w", i, err)
		}
		ix.entries = append(ix.entries, e)
	}
	if r.err != nil {
		return nil, fmt.Errorf("histstore: index truncated: %w", r.err)
	}
	return ix, nil
}

func writeU32(buf *bytes.Buffer, v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	buf.Write(b[:])
}

func writeU64(buf *bytes.Buffer, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	buf.Write(b[:])
}

// byteReader is a bounds-checked little-endian cursor.
type byteReader struct {
	buf []byte
	pos int
	err error
}

func (r *byteReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.pos+n > len(r.buf) {
		r.err = fmt.Errorf("need %d bytes at %d, have %d", n, r.pos, len(r.buf)-r.pos)
		return nil
	}
	b := r.buf[r.pos : r.pos+n]
	r.pos += n
	return b
}

func (r *byteReader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *byteReader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *byteReader) bytes(n int) []byte { return r.take(n) }
