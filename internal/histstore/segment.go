package histstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// On-disk formats. Everything is little-endian and length-framed; the
// CRC lets a scan distinguish a torn tail from a corrupted record.
//
// Segment file (seg-XXXXXXXX.seg):
//
//	[8]  segMagic
//	then records back to back:
//	  [4] payload length N
//	  [4] CRC-32 (IEEE) of the payload
//	  [N] payload:
//	        [4] meta length M
//	        [M] meta JSON (histstore.Meta)
//	        [*] report JSON (exactly the bytes Append was given)
//
// The CRC covers the whole payload (meta framing included) but not the
// length word: a record whose payload is corrupted is skippable — the
// scan trusts a plausible length and resynchronizes at the next record
// — while a corrupted length word ends the parsable region (a torn
// tail when it is the last segment).
const (
	segMagic = "PRFSEG01"

	recordHeaderSize = 8
	metaFrameSize    = 4

	// maxRecordBytes bounds one record's payload — a plausibility gate
	// for length words read from a possibly corrupt file, far above any
	// real report (the largest zoo report is well under 1 MiB).
	maxRecordBytes = 64 << 20
)

// errTorn reports an incomplete record at the end of a scan region —
// the signature of a crash mid-append.
var errTorn = errors.New("histstore: torn record")

// errCorrupt reports a CRC mismatch on a structurally complete record.
var errCorrupt = errors.New("histstore: corrupt record")

// encodeRecord frames one (meta, report) pair into a complete record
// (header + payload).
func encodeRecord(metaRaw, report []byte) []byte {
	payloadLen := metaFrameSize + len(metaRaw) + len(report)
	buf := make([]byte, recordHeaderSize+payloadLen)
	binary.LittleEndian.PutUint32(buf[0:4], uint32(payloadLen))
	payload := buf[recordHeaderSize:]
	binary.LittleEndian.PutUint32(payload[0:metaFrameSize], uint32(len(metaRaw)))
	copy(payload[metaFrameSize:], metaRaw)
	copy(payload[metaFrameSize+len(metaRaw):], report)
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	return buf
}

// decodedRecord is one parsed record: the exact meta and report byte
// ranges of the payload.
type decodedRecord struct {
	metaRaw []byte
	report  []byte
	// size is the full on-disk record size (header + payload).
	size int64
}

// decodeRecord parses the record starting at the beginning of buf.
// It returns:
//
//   - (rec, nil): a complete, CRC-clean record
//   - (rec, errCorrupt): the payload failed its CRC but the length was
//     plausible — rec.size tells the caller how far to skip
//   - (zero, errTorn): buf ends before the record does, or the length
//     word itself is implausible; nothing after it can be parsed
func decodeRecord(buf []byte) (decodedRecord, error) {
	if len(buf) < recordHeaderSize {
		return decodedRecord{}, errTorn
	}
	payloadLen := int64(binary.LittleEndian.Uint32(buf[0:4]))
	if payloadLen < metaFrameSize || payloadLen > maxRecordBytes {
		return decodedRecord{}, errTorn
	}
	if int64(len(buf)) < recordHeaderSize+payloadLen {
		return decodedRecord{}, errTorn
	}
	wantCRC := binary.LittleEndian.Uint32(buf[4:8])
	payload := buf[recordHeaderSize : recordHeaderSize+payloadLen]
	rec := decodedRecord{size: recordHeaderSize + payloadLen}
	if crc32.ChecksumIEEE(payload) != wantCRC {
		return rec, errCorrupt
	}
	metaLen := int64(binary.LittleEndian.Uint32(payload[0:metaFrameSize]))
	if metaLen < 0 || metaFrameSize+metaLen > payloadLen {
		// The CRC matched, so this is not random corruption but a
		// framing bug; refuse the record rather than mis-slice it.
		return rec, fmt.Errorf("histstore: record meta length %d exceeds payload %d", metaLen, payloadLen)
	}
	rec.metaRaw = payload[metaFrameSize : metaFrameSize+metaLen]
	rec.report = payload[metaFrameSize+metaLen:]
	return rec, nil
}

// segmentName renders the file name of segment id.
func segmentName(id uint32) string {
	return fmt.Sprintf("seg-%08d.seg", id)
}
