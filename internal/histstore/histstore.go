// Package histstore is the persistent profile-history store: an
// on-disk, append-only chunked log of profiling reports with a
// compacted B-tree-style index over (model, platform, descriptor-hash,
// git-rev, timestamp). It is what turns the serving stack's ephemeral
// JSON into longitudinal observability — "has this model's roofline
// verdict drifted since last week?" becomes an indexed query instead
// of archaeology.
//
// Design, in one paragraph: reports append to fixed-size segment files
// as length-framed binary records with a per-record CRC; an index file
// persists the sorted key → (segment, offset, length) entries plus a
// per-segment coverage watermark, so reopening a cleanly closed store
// reads only the index, and crash recovery scans only the bytes past
// the watermark — truncating a torn tail and skipping (but counting)
// CRC-corrupt records without losing earlier ones. Reads are partial:
// a query walks the in-memory B-tree and Get reads exactly one
// record's byte range, so paging a single (model, platform) key out of
// a 10k-report history touches only the matching segments.
package histstore

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"proof/internal/core"
	"proof/internal/hardware"
)

// Meta is the indexed summary of one stored report — everything
// queries and drift detection need without reading the report body.
type Meta struct {
	Model          string `json:"model"`
	Platform       string `json:"platform"`
	DescriptorHash string `json:"descriptor_hash,omitempty"`
	GitRev         string `json:"git_rev,omitempty"`
	TimestampNS    int64  `json:"timestamp_ns"`
	Backend        string `json:"backend,omitempty"`
	Batch          int    `json:"batch,omitempty"`
	DType          string `json:"dtype,omitempty"`
	Mode           string `json:"mode,omitempty"`
	// Bound is the end-to-end roofline verdict ("compute", "memory",
	// "ridge") — the drift detector's primary signal.
	Bound string `json:"bound,omitempty"`
	// AttainableFLOPS is the roofline ceiling at the report's
	// end-to-end arithmetic intensity; AttainedFLOPS the achieved rate.
	AttainableFLOPS float64 `json:"attainable_flops,omitempty"`
	AttainedFLOPS   float64 `json:"attained_flops,omitempty"`
	// LatencyNS is the end-to-end latency, feeding the per-revision
	// latency digests of drift detection.
	LatencyNS int64 `json:"latency_ns,omitempty"`
}

// Time returns the record timestamp.
func (m Meta) Time() time.Time { return time.Unix(0, m.TimestampNS) }

// Revision identifies the code+hardware configuration a report was
// produced under: drift compares revisions, and either component
// changing is a new revision.
func (m Meta) Revision() string {
	h := m.DescriptorHash
	if len(h) > 12 {
		h = h[:12]
	}
	switch {
	case m.GitRev != "" && h != "":
		return m.GitRev + "@" + h
	case m.GitRev != "":
		return m.GitRev
	}
	return h
}

// MetaFromReport derives the indexed summary of a report, stamping the
// producing git revision and append time. The platform's current
// descriptor hash is recorded so a descriptor edit starts a new
// revision even under one git rev.
func MetaFromReport(r *core.Report, gitRev string, now time.Time) Meta {
	m := Meta{
		Model:         r.Model,
		Platform:      r.Platform,
		GitRev:        gitRev,
		TimestampNS:   now.UnixNano(),
		Backend:       r.Backend,
		Batch:         r.Batch,
		DType:         r.DType,
		Mode:          string(r.Mode),
		Bound:         r.EndToEnd.Bound,
		AttainedFLOPS: r.EndToEnd.FLOPS,
		LatencyNS:     int64(r.TotalLatency),
	}
	m.AttainableFLOPS = r.Roofline.AttainableFLOPS(r.EndToEnd.AI)
	if p, ok := hardware.Lookup(r.Platform); ok {
		m.DescriptorHash = p.DescriptorHash()
	}
	return m
}

// Options tunes a store; the zero value is production-usable.
type Options struct {
	// SegmentBytes rotates the active segment once it exceeds this
	// size (0 = 4 MiB). Smaller segments mean finer-grained partial
	// reads and cheaper compaction at the cost of more files.
	SegmentBytes int64
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	return o
}

// Stats is a point-in-time snapshot of a store.
type Stats struct {
	// Segments and Records describe the indexed state; Bytes is the
	// total on-disk segment size.
	Segments int   `json:"segments"`
	Records  int   `json:"records"`
	Bytes    int64 `json:"bytes"`
	// IndexDepth is the B-tree height a lookup descends.
	IndexDepth int `json:"index_depth"`
	// Appends/AppendBytes count successful appends this process.
	Appends     int64 `json:"appends"`
	AppendBytes int64 `json:"append_bytes"`
	// ReadBytes counts every byte read from segment files (record
	// reads, recovery scans, verification) — the accounting behind the
	// partial-read guarantees.
	ReadBytes int64 `json:"read_bytes"`
	// SkippedRecords and TruncatedBytes report what crash recovery
	// found: CRC-corrupt records excluded from the index, and torn
	// tail bytes cut from the final segment.
	SkippedRecords int64 `json:"skipped_records"`
	TruncatedBytes int64 `json:"truncated_bytes"`
	// LastAppend is the wall time of the newest record (zero = empty).
	LastAppend time.Time `json:"last_append,omitempty"`
}

// Store is an open history store. All methods are safe for concurrent
// use; construct with Open.
type Store struct {
	dir  string
	opts Options

	mu      sync.RWMutex
	tree    *btree
	covered map[uint32]int64 // segment id -> bytes covered by the index
	nextSeq uint64
	active  uint32   // id of the segment Append writes to
	handles sync.Map // segment id (uint32) -> *os.File, read handles
	w       *os.File // append handle for the active segment
	closed  bool

	appends, appendBytes atomic.Int64
	readBytes            atomic.Int64
	skipped, truncated   atomic.Int64
	lastAppendNS         atomic.Int64
	indexDirty           atomic.Bool
	segBytes             atomic.Int64
}

// Open opens (creating if absent) the store in dir. Recovery runs
// inline: segments not fully covered by the persisted index are
// scanned from their watermark, a torn tail on the final segment is
// truncated, and CRC-corrupt records are skipped and counted
// (Stats.SkippedRecords / Stats.TruncatedBytes).
func Open(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{
		dir:     dir,
		opts:    opts.withDefaults(),
		covered: map[uint32]int64{},
		nextSeq: 1,
	}

	var entries []*ixEntry
	if ix, err := readIndexFile(dir); err == nil {
		entries = ix.entries
		s.covered = ix.covered
		s.nextSeq = ix.nextSeq
	}
	// A missing or corrupt index is recoverable state, not an error:
	// the watermark map stays empty and the scan below covers
	// everything.

	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	// Drop index entries for segments that vanished or shrank
	// (external tampering); their segments are rescanned from zero.
	rescan := map[uint32]bool{}
	var total int64
	for _, id := range segs {
		size, err := segmentSize(dir, id)
		if err != nil {
			return nil, err
		}
		total += size
		if s.covered[id] > size {
			rescan[id] = true
			s.covered[id] = 0
		}
	}
	present := map[uint32]bool{}
	for _, id := range segs {
		present[id] = true
	}
	kept := entries[:0]
	for _, e := range entries {
		if present[e.seg] && !rescan[e.seg] {
			kept = append(kept, e)
		}
	}
	entries = kept
	// The watermark map mirrors the segments actually on disk.
	for id := range s.covered {
		if !present[id] {
			delete(s.covered, id)
		}
	}

	// Recovery scan: every byte past each segment's watermark. The
	// byte total is set first because a torn-tail truncation inside the
	// scan adjusts it downward.
	s.segBytes.Store(total)
	for _, id := range segs {
		more, err := s.scanSegment(id, s.covered[id], id == segs[len(segs)-1])
		if err != nil {
			return nil, err
		}
		entries = append(entries, more...)
		size, err := segmentSize(dir, id)
		if err != nil {
			return nil, err
		}
		s.covered[id] = size
	}

	sort.Slice(entries, func(i, j int) bool { return compareKey(entries[i], entries[j]) < 0 })
	s.tree = buildTree(entries)
	for _, e := range entries {
		if e.meta.TimestampNS > s.lastAppendNS.Load() {
			s.lastAppendNS.Store(e.meta.TimestampNS)
		}
	}

	// Active segment: the highest id, or a fresh one.
	if len(segs) > 0 {
		s.active = segs[len(segs)-1]
	}
	if err := s.openActive(); err != nil {
		return nil, err
	}
	return s, nil
}

func listSegments(dir string) ([]uint32, error) {
	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var ids []uint32
	for _, de := range names {
		var id uint32
		if _, err := fmt.Sscanf(de.Name(), "seg-%08d.seg", &id); err == nil &&
			de.Name() == segmentName(id) {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, nil
}

func segmentSize(dir string, id uint32) (int64, error) {
	fi, err := os.Stat(filepath.Join(dir, segmentName(id)))
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

// openActive ensures the active segment exists (writing its header if
// new) and holds the append handle.
func (s *Store) openActive() error {
	path := filepath.Join(s.dir, segmentName(s.active))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return err
	}
	if fi.Size() == 0 {
		if _, err := f.Write([]byte(segMagic)); err != nil {
			f.Close()
			return err
		}
		s.covered[s.active] = int64(len(segMagic))
		s.segBytes.Add(int64(len(segMagic)))
	}
	s.w = f
	return nil
}

// scanSegment parses records from offset from to the end of segment
// id, returning their index entries. CRC-corrupt records are skipped
// and counted; an unparsable region at the end is truncated when the
// segment is the last one (a torn append), otherwise left in place as
// dead bytes for Compact to reclaim.
func (s *Store) scanSegment(id uint32, from int64, last bool) ([]*ixEntry, error) {
	path := filepath.Join(s.dir, segmentName(id))
	size, err := segmentSize(s.dir, id)
	if err != nil {
		return nil, err
	}
	if from < int64(len(segMagic)) {
		from = 0
	}
	if from >= size {
		return nil, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, size-from)
	if _, err := f.ReadAt(buf, from); err != nil {
		return nil, err
	}
	s.readBytes.Add(int64(len(buf)))

	pos := int64(0)
	if from == 0 {
		if len(buf) < len(segMagic) || string(buf[:len(segMagic)]) != segMagic {
			// Not a segment we wrote; treat the whole file as dead.
			s.skipped.Add(1)
			return nil, nil
		}
		pos = int64(len(segMagic))
	}
	var entries []*ixEntry
	for pos < int64(len(buf)) {
		rec, err := decodeRecord(buf[pos:])
		switch {
		case err == nil:
			var m Meta
			if jerr := json.Unmarshal(rec.metaRaw, &m); jerr != nil {
				// CRC-clean but undecodable meta: a format skew, not
				// random corruption. Skip it like a corrupt record.
				s.skipped.Add(1)
				pos += rec.size
				continue
			}
			metaRaw := make([]byte, len(rec.metaRaw))
			copy(metaRaw, rec.metaRaw)
			entries = append(entries, &ixEntry{
				meta:    m,
				metaRaw: metaRaw,
				seq:     s.nextSeq,
				seg:     id,
				off:     from + pos,
				plen:    uint32(rec.size - recordHeaderSize),
			})
			s.nextSeq++
			pos += rec.size
		case errors.Is(err, errCorrupt):
			// Payload rot under an intact frame: skip exactly one
			// record and resynchronize.
			s.skipped.Add(1)
			pos += rec.size
		default:
			// Torn or unframeable region: nothing past here parses.
			dead := int64(len(buf)) - pos
			if last {
				if terr := os.Truncate(path, from+pos); terr != nil {
					return nil, terr
				}
				s.segBytes.Add(-dead)
			}
			s.truncated.Add(dead)
			return entries, nil
		}
	}
	return entries, nil
}

// Append stores one report under its meta. The report bytes are stored
// verbatim — Get returns exactly what Append was given.
func (s *Store) Append(meta Meta, report []byte) error {
	if meta.Model == "" || meta.Platform == "" {
		return fmt.Errorf("histstore: append requires model and platform (got %q, %q)", meta.Model, meta.Platform)
	}
	if meta.TimestampNS == 0 {
		meta.TimestampNS = time.Now().UnixNano()
	}
	metaRaw, err := json.Marshal(meta)
	if err != nil {
		return err
	}
	rec := encodeRecord(metaRaw, report)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("histstore: store is closed")
	}
	if s.covered[s.active] >= s.opts.SegmentBytes {
		if err := s.rotateLocked(); err != nil {
			return err
		}
	}
	off := s.covered[s.active]
	if _, err := s.w.Write(rec); err != nil {
		return fmt.Errorf("histstore: append to %s: %w", segmentName(s.active), err)
	}
	e := &ixEntry{
		meta:    meta,
		metaRaw: metaRaw,
		seq:     s.nextSeq,
		seg:     s.active,
		off:     off,
		plen:    uint32(len(rec) - recordHeaderSize),
	}
	s.nextSeq++
	s.covered[s.active] = off + int64(len(rec))
	s.segBytes.Add(int64(len(rec)))
	s.insertLocked(e)
	s.appends.Add(1)
	s.appendBytes.Add(int64(len(rec)))
	if meta.TimestampNS > s.lastAppendNS.Load() {
		s.lastAppendNS.Store(meta.TimestampNS)
	}
	s.indexDirty.Store(true)
	return nil
}

// insertLocked places e into the sorted entry slice and rebuilds the
// tree levels (cheap: the levels are O(n/fanout) ints).
func (s *Store) insertLocked(e *ixEntry) {
	entries := s.tree.entries
	i := sort.Search(len(entries), func(i int) bool { return compareKey(entries[i], e) >= 0 })
	entries = append(entries, nil)
	copy(entries[i+1:], entries[i:])
	entries[i] = e
	s.tree = buildTree(entries)
}

// rotateLocked closes the active segment and starts the next one.
func (s *Store) rotateLocked() error {
	if err := s.w.Close(); err != nil {
		return err
	}
	s.active++
	return s.openActive()
}

// Query selects history entries. Entries come back newest-first;
// Limit <= 0 means no limit. The returned total counts every match
// before paging.
type Query struct {
	Model    string
	Platform string
	GitRev   string
	Since    time.Time
	Until    time.Time
	Offset   int
	Limit    int
}

// Entry is one query result: the record's meta plus the handle Get
// needs to read its report body.
type Entry struct {
	// ID is the stable record address ("segment:offset").
	ID   string
	Meta Meta

	seg  uint32
	off  int64
	plen uint32
}

func entryID(seg uint32, off int64) string { return fmt.Sprintf("%d:%d", seg, off) }

// Query runs q against the index — no segment bytes are read.
func (s *Store) Query(q Query) ([]Entry, int, error) {
	// Platform follows model in the key order: with a model set it
	// narrows the index range; without one the range is the whole index
	// and the platform (like git-rev and the time bounds) is a filter.
	s.mu.RLock()
	defer s.mu.RUnlock()
	start, end := s.tree.prefixRange(q.Model, q.Platform)
	var matches []*ixEntry
	for i := start; i < end; i++ {
		e := s.tree.entries[i]
		if q.Platform != "" && e.meta.Platform != q.Platform {
			continue
		}
		if q.GitRev != "" && e.meta.GitRev != q.GitRev {
			continue
		}
		if !q.Since.IsZero() && e.meta.TimestampNS < q.Since.UnixNano() {
			continue
		}
		if !q.Until.IsZero() && e.meta.TimestampNS > q.Until.UnixNano() {
			continue
		}
		matches = append(matches, e)
	}
	// Newest first, sequence as the tiebreaker.
	sort.Slice(matches, func(i, j int) bool {
		if matches[i].meta.TimestampNS != matches[j].meta.TimestampNS {
			return matches[i].meta.TimestampNS > matches[j].meta.TimestampNS
		}
		return matches[i].seq > matches[j].seq
	})
	total := len(matches)
	if q.Offset > 0 {
		if q.Offset >= len(matches) {
			matches = nil
		} else {
			matches = matches[q.Offset:]
		}
	}
	if q.Limit > 0 && len(matches) > q.Limit {
		matches = matches[:q.Limit]
	}
	out := make([]Entry, len(matches))
	for i, e := range matches {
		out[i] = Entry{ID: entryID(e.seg, e.off), Meta: e.meta, seg: e.seg, off: e.off, plen: e.plen}
	}
	return out, total, nil
}

// Metas returns the meta of every record matching q (unpaged) — the
// drift detector's feed. Index-only; no segment bytes are read.
func (s *Store) Metas(q Query) ([]Meta, error) {
	q.Offset, q.Limit = 0, 0
	entries, _, err := s.Query(q)
	if err != nil {
		return nil, err
	}
	metas := make([]Meta, len(entries))
	for i, e := range entries {
		metas[i] = e.Meta
	}
	return metas, nil
}

// Get reads one entry's report body — exactly the bytes Append stored.
// Only that record's byte range is read (plus its 8-byte header), and
// the payload CRC is verified on the way out.
func (s *Store) Get(e Entry) ([]byte, error) {
	f, err := s.readHandle(e.seg)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, recordHeaderSize+int(e.plen))
	if _, err := f.ReadAt(buf, e.off); err != nil {
		return nil, fmt.Errorf("histstore: read %s: %w", e.ID, err)
	}
	s.readBytes.Add(int64(len(buf)))
	rec, err := decodeRecord(buf)
	if err != nil {
		return nil, fmt.Errorf("histstore: record %s: %w", e.ID, err)
	}
	return rec.report, nil
}

// GetID resolves a record address from Entry.ID and reads its report.
func (s *Store) GetID(id string) (Meta, []byte, error) {
	var seg uint32
	var off int64
	if _, err := fmt.Sscanf(id, "%d:%d", &seg, &off); err != nil ||
		id != entryID(seg, off) {
		return Meta{}, nil, fmt.Errorf("histstore: malformed record id %q (want \"segment:offset\")", id)
	}
	s.mu.RLock()
	var found *ixEntry
	for _, e := range s.tree.entries {
		if e.seg == seg && e.off == off {
			found = e
			break
		}
	}
	s.mu.RUnlock()
	if found == nil {
		return Meta{}, nil, fmt.Errorf("histstore: no record %q", id)
	}
	body, err := s.Get(Entry{ID: id, Meta: found.meta, seg: found.seg, off: found.off, plen: found.plen})
	return found.meta, body, err
}

// readHandle returns (opening lazily) the read handle for a segment.
func (s *Store) readHandle(id uint32) (*os.File, error) {
	if v, ok := s.handles.Load(id); ok {
		return v.(*os.File), nil
	}
	f, err := os.Open(filepath.Join(s.dir, segmentName(id)))
	if err != nil {
		return nil, err
	}
	if prev, loaded := s.handles.LoadOrStore(id, f); loaded {
		f.Close()
		return prev.(*os.File), nil
	}
	return f, nil
}

// Stats snapshots the store.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	segs := len(s.covered)
	records := len(s.tree.entries)
	depth := s.tree.depth()
	s.mu.RUnlock()
	st := Stats{
		Segments:       segs,
		Records:        records,
		Bytes:          s.segBytes.Load(),
		IndexDepth:     depth,
		Appends:        s.appends.Load(),
		AppendBytes:    s.appendBytes.Load(),
		ReadBytes:      s.readBytes.Load(),
		SkippedRecords: s.skipped.Load(),
		TruncatedBytes: s.truncated.Load(),
	}
	if ns := s.lastAppendNS.Load(); ns != 0 {
		st.LastAppend = time.Unix(0, ns)
	}
	return st
}

// FlushIndex persists the index file if the in-memory index has
// changed since the last write.
func (s *Store) FlushIndex() error {
	if !s.indexDirty.Swap(false) {
		return nil
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return writeIndexFile(s.dir, s.nextSeq, s.covered, s.tree.entries)
}

// Close flushes the index and releases every file handle. The store is
// unusable afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	err := writeIndexFile(s.dir, s.nextSeq, s.covered, s.tree.entries)
	s.indexDirty.Store(false)
	werr := s.w.Close()
	s.mu.Unlock()
	s.handles.Range(func(k, v any) bool {
		v.(*os.File).Close()
		s.handles.Delete(k)
		return true
	})
	if err != nil {
		return err
	}
	return werr
}

// VerifyReport summarizes a full-store verification pass.
type VerifyReport struct {
	Segments       int   `json:"segments"`
	Records        int   `json:"records"`
	IndexedRecords int   `json:"indexed_records"`
	CorruptRecords int   `json:"corrupt_records"`
	DeadBytes      int64 `json:"dead_bytes"`
	// Problems lists one line per defect found, bounded at 100.
	Problems []string `json:"problems,omitempty"`
}

// Ok reports whether the store verified clean.
func (r VerifyReport) Ok() bool {
	return r.CorruptRecords == 0 && r.DeadBytes == 0 && len(r.Problems) == 0
}

// Verify re-reads every segment end to end, checking each record's
// frame and CRC, and cross-checks the count against the index. Unlike
// Open it does not repair anything: it reports the store as the bytes
// on disk are. A non-Ok report means Compact (or restoring from a
// replica) is needed.
func (s *Store) Verify() (VerifyReport, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	rep := VerifyReport{IndexedRecords: len(s.tree.entries)}
	segs, err := listSegments(s.dir)
	if err != nil {
		return rep, err
	}
	problem := func(format string, args ...any) {
		if len(rep.Problems) < 100 {
			rep.Problems = append(rep.Problems, fmt.Sprintf(format, args...))
		}
	}
	for _, id := range segs {
		rep.Segments++
		path := filepath.Join(s.dir, segmentName(id))
		buf, err := os.ReadFile(path)
		if err != nil {
			return rep, err
		}
		s.readBytes.Add(int64(len(buf)))
		if len(buf) < len(segMagic) || string(buf[:len(segMagic)]) != segMagic {
			problem("%s: missing segment magic", segmentName(id))
			rep.DeadBytes += int64(len(buf))
			continue
		}
		pos := int64(len(segMagic))
		for pos < int64(len(buf)) {
			rec, err := decodeRecord(buf[pos:])
			switch {
			case err == nil:
				rep.Records++
				pos += rec.size
			case errors.Is(err, errCorrupt):
				rep.CorruptRecords++
				problem("%s: corrupt record at offset %d (CRC mismatch)", segmentName(id), pos)
				pos += rec.size
			default:
				dead := int64(len(buf)) - pos
				rep.DeadBytes += dead
				problem("%s: unparsable region at offset %d (%d bytes)", segmentName(id), pos, dead)
				pos = int64(len(buf))
			}
		}
	}
	if rep.Records != rep.IndexedRecords {
		problem("index holds %d records, segments hold %d", rep.IndexedRecords, rep.Records)
	}
	if !rep.Ok() {
		return rep, fmt.Errorf("histstore: verification failed: %s", strings.Join(rep.Problems, "; "))
	}
	return rep, nil
}

// Compact rewrites every indexed record into fresh segments, dropping
// corrupt records and dead bytes, and rewrites the index. Segment ids
// continue past the old ones, so a crash mid-compact leaves the old
// segments readable (at worst with duplicate records, which the next
// successful Compact removes by rewriting from the index).
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("histstore: store is closed")
	}
	oldSegs, err := listSegments(s.dir)
	if err != nil {
		return err
	}
	// Read every live record before touching anything.
	type liveRec struct {
		e   *ixEntry
		rec []byte
	}
	live := make([]liveRec, 0, len(s.tree.entries))
	for _, e := range s.tree.entries {
		f, err := s.readHandle(e.seg)
		if err != nil {
			return err
		}
		buf := make([]byte, recordHeaderSize+int(e.plen))
		if _, err := f.ReadAt(buf, e.off); err != nil {
			return fmt.Errorf("histstore: compact read %s: %w", entryID(e.seg, e.off), err)
		}
		s.readBytes.Add(int64(len(buf)))
		if _, err := decodeRecord(buf); err != nil {
			return fmt.Errorf("histstore: compact: record %s: %w", entryID(e.seg, e.off), err)
		}
		live = append(live, liveRec{e: e, rec: buf})
	}

	// Write the survivors into fresh segments with new ids.
	if err := s.w.Close(); err != nil {
		return err
	}
	newFirst := s.active + 1
	s.active = newFirst
	s.covered = map[uint32]int64{}
	s.segBytes.Store(0)
	if err := s.openActive(); err != nil {
		return err
	}
	for _, lr := range live {
		if s.covered[s.active] >= s.opts.SegmentBytes {
			if err := s.rotateLocked(); err != nil {
				return err
			}
		}
		off := s.covered[s.active]
		if _, err := s.w.Write(lr.rec); err != nil {
			return err
		}
		lr.e.seg = s.active
		lr.e.off = off
		s.covered[s.active] = off + int64(len(lr.rec))
		s.segBytes.Add(int64(len(lr.rec)))
	}
	if err := writeIndexFile(s.dir, s.nextSeq, s.covered, s.tree.entries); err != nil {
		return err
	}
	s.indexDirty.Store(false)

	// Only now is it safe to drop the old segments and their handles.
	for _, id := range oldSegs {
		if id >= newFirst {
			continue
		}
		if v, ok := s.handles.LoadAndDelete(id); ok {
			v.(*os.File).Close()
		}
		if err := os.Remove(filepath.Join(s.dir, segmentName(id))); err != nil {
			return err
		}
	}
	return nil
}
