package sim

import (
	"fmt"
	"math"
	"time"

	"proof/internal/graph"
	"proof/internal/hardware"
)

// Config selects the simulated execution environment.
type Config struct {
	// Platform is the hardware model to execute on.
	Platform *hardware.Platform
	// Clocks is the clock configuration (zero values = defaults).
	Clocks hardware.Clocks
	// DType is the inference data type.
	DType graph.DataType
	// Seed perturbs the deterministic run-to-run jitter, emulating
	// repeated profiling runs.
	Seed uint64
}

// Work describes one backend layer to simulate.
type Work struct {
	// Name identifies the layer.
	Name string
	// Key is the layer's canonical content fingerprint (set by the
	// backend build from the fused nodes' ops/attrs/shapes). The
	// deterministic jitter is derived from it, so structurally
	// identical layers — the same unit appearing in two models, or
	// under different runtime-assigned names — behave identically, as
	// they would on real hardware. Empty falls back to Name.
	Key string
	// Class selects the efficiency envelope.
	Class Class
	// HWFLOP is the instruction-counted FLOP (see HardwareFLOP).
	HWFLOP int64
	// ModelFLOP is the analytical model FLOP.
	ModelFLOP int64
	// Bytes is the predicted DRAM traffic (reads + writes).
	Bytes int64
}

// Timing is the simulated execution result of one layer.
type Timing struct {
	// Name echoes the layer name.
	Name string
	// Latency is the simulated wall time of the layer.
	Latency time.Duration
	// ComputeTime and MemoryTime are the roofline components.
	ComputeTime time.Duration
	MemoryTime  time.Duration
	// Bound reports which term dominated: "compute", "memory" or
	// "overhead".
	Bound string
	// ActualBytes is the cache-affected DRAM traffic a hardware
	// counter would observe.
	ActualBytes int64
	// ActualHWFLOP is the instruction-counted FLOP the counters see.
	ActualHWFLOP int64
}

// relComputeEff is the per-class efficiency relative to the platform's
// best achievable compute rate.
var relComputeEff = map[Class]float64{
	ClassGEMM:         1.00,
	ClassConv:         0.90,
	ClassDWConv:       0.60, // relative to the *vector* peak, see below
	ClassSoftmax:      0.25,
	ClassNorm:         0.25,
	ClassElementwise:  0.40,
	ClassReduction:    0.30,
	ClassEmbedding:    0.20,
	ClassMemCopy:      0.20,
	ClassDataMovement: 0.20,
}

// relMemEff is the per-class achieved fraction of the platform's best
// achievable bandwidth. Compute kernels stream DRAM through blocked
// layouts and never saturate the copy-engine rate — which is why in
// Figure 8 only the near-saturating pointwise layers sit above the
// lowered-EMC bandwidth line.
var relMemEff = map[Class]float64{
	ClassGEMM:         0.65,
	ClassConv:         0.60,
	ClassDWConv:       0.55,
	ClassSoftmax:      0.65,
	ClassNorm:         0.70,
	ClassElementwise:  0.75,
	ClassReduction:    0.55,
	ClassEmbedding:    0.35,
	ClassMemCopy:      1.00, // contiguous copies/reformats run at full BW
	ClassDataMovement: 0.50, // strided transposes/slices do not
}

// SimulateLayer produces the timing of one layer under cfg.
func SimulateLayer(w Work, cfg Config) Timing {
	plat := cfg.Platform
	capacity := cfg.Clocks.Capacity()
	peak := plat.PeakAt(cfg.DType, cfg.Clocks.GPUMHz) * plat.MaxComputeEff * capacity
	// MemEffAt applies the platform's EMC efficiency curve: DRAM
	// efficiency is not flat across memory clocks (Table 6 #2/#5).
	bw := plat.BWAt(cfg.Clocks.EMCMHz) * plat.MemEffAt(cfg.Clocks.EMCMHz)
	// Down-clocked GPUs cannot issue memory transactions fast enough
	// to saturate DRAM (Table 6's achieved-BW drop at low GPU clocks);
	// power-gated TPCs reduce the issue rate too.
	if limit := plat.IssueBWLimit(cfg.Clocks.GPUMHz) * capacity; limit < bw {
		bw = limit
	}

	// Depth-wise convolutions cannot use matrix units: their compute
	// ceiling is the vector pipeline (~2x the fp32 peak at fp16/int8),
	// the root cause of the low-FLOP/s depth-wise points in Figures
	// 5(c) and 8.
	if w.Class == ClassDWConv && plat.TensorCore != nil &&
		(cfg.DType == graph.Float16 || cfg.DType == graph.BFloat16 || cfg.DType == graph.Int8) {
		peak = plat.PeakAt(graph.Float32, cfg.Clocks.GPUMHz) * 2 * plat.MaxComputeEff * capacity
	}

	effC := relComputeEff[w.Class]
	effM := relMemEff[w.Class]

	switch w.Class {
	case ClassGEMM, ClassConv:
		// Dense kernels approach their ceiling only with enormous
		// uniform work (the peak-test GEMMs); real model layers lose
		// efficiency to tile tails, prologues/epilogues and cache
		// pressure — the reason Figure 4's models mostly sit well
		// below the roof even when compute-bound.
		w50 := peak * 150e-6 // FLOP needed to reach ~half of the gap
		frac := float64(w.HWFLOP) / (float64(w.HWFLOP) + w50)
		effC *= 0.55 + 0.45*frac
	default:
		// Small layers cannot fill the machine: ramp-up derating
		// against a fraction of the launch overhead.
		if w.HWFLOP > 0 {
			saturation := peak * plat.KernelOverhead.Seconds() * 0.2
			effC *= float64(w.HWFLOP) / (float64(w.HWFLOP) + saturation)
		}
	}

	var tc, tm float64
	if w.HWFLOP > 0 && peak > 0 && effC > 0 {
		tc = float64(w.HWFLOP) / (peak * effC)
	}
	actualBytes := measuredBytes(w, cfg)
	if actualBytes > 0 && bw > 0 && effM > 0 {
		tm = float64(actualBytes) / (bw * effM)
	}

	overhead := plat.KernelOverhead.Seconds()
	lat := overhead + math.Max(tc, tm)
	lat *= 1 + jitter(jitterKey(w), cfg.Seed, 0.015)

	bound := "overhead"
	switch {
	case tc >= tm && tc > overhead:
		bound = "compute"
	case tm > tc && tm > overhead:
		bound = "memory"
	}
	return Timing{
		Name:         w.Name,
		Latency:      secToDur(lat),
		ComputeTime:  secToDur(tc),
		MemoryTime:   secToDur(tm),
		Bound:        bound,
		ActualBytes:  actualBytes,
		ActualHWFLOP: w.HWFLOP,
	}
}

// Simulate runs all layers sequentially (DNN inference runtimes execute
// the graph serially per stream) and returns per-layer timings plus the
// end-to-end latency.
func Simulate(ws []Work, cfg Config) ([]Timing, time.Duration) {
	timings := make([]Timing, len(ws))
	var total time.Duration
	for i, w := range ws {
		timings[i] = SimulateLayer(w, cfg)
		total += timings[i].Latency
	}
	return timings, total
}

// Utilization aggregates the GPU-compute and memory utilization of a
// simulated run — the inputs to the platform power model (§4.6).
func Utilization(ts []Timing) (utilCompute, utilMem float64) {
	var lat, tc, tm float64
	for _, t := range ts {
		lat += t.Latency.Seconds()
		tc += t.ComputeTime.Seconds()
		tm += t.MemoryTime.Seconds()
	}
	if lat == 0 {
		return 0, 0
	}
	return math.Min(1, tc/lat), math.Min(1, tm/lat)
}

// measuredBytes applies a deterministic per-layer cache deviation to the
// predicted traffic: real counters see a few percent of extra evictions
// or savings from cache reuse (the small Memory diffs of Table 4).
func measuredBytes(w Work, cfg Config) int64 {
	if w.Bytes == 0 {
		return 0
	}
	d := jitter2(jitterKey(w), "/bytes", 0, 1) // stable across runs
	// Map [-1,1] to [-5%, +8%].
	frac := 0.015 + d*0.065
	return int64(float64(w.Bytes) * (1 + frac))
}

// jitterKey selects the identity the deterministic jitter hashes:
// content key when the build provided one, layer name otherwise.
func jitterKey(w Work) string {
	if w.Key != "" {
		return w.Key
	}
	return w.Name
}

// jitter returns a deterministic pseudo-random value in [-scale, scale]
// derived from the layer identity and seed.
//
//lint:hotpath
func jitter(name string, seed uint64, scale float64) float64 {
	return jitter2(name, "", seed, scale)
}

// FNV-1a 64-bit parameters (hash/fnv), inlined: the stdlib hasher
// escapes to the heap and its Write takes []byte, which costs one
// allocation per string conversion — on the per-request hot path that
// is two allocations per simulated layer. The inline fold below is
// byte-identical to fnv.New64a().Write(name+suffix+seedBytes).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// jitter2 is jitter over the concatenation name+suffix without
// materializing the concatenated string.
//
//lint:hotpath
func jitter2(name, suffix string, seed uint64, scale float64) float64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(name); i++ {
		h = (h ^ uint64(name[i])) * fnvPrime64
	}
	for i := 0; i < len(suffix); i++ {
		h = (h ^ uint64(suffix[i])) * fnvPrime64
	}
	h = (h ^ uint64(byte(seed))) * fnvPrime64
	h = (h ^ uint64(byte(seed>>8))) * fnvPrime64
	h = (h ^ uint64(byte(seed>>16))) * fnvPrime64
	h = (h ^ uint64(byte(seed>>24))) * fnvPrime64
	u := float64(h%1_000_000)/500_000 - 1 // [-1, 1)
	return u * scale
}

func secToDur(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}

// FormatRate renders FLOP/s or B/s values human-readably for reports.
func FormatRate(v float64, unit string) string {
	switch {
	case v >= 1e12:
		return fmt.Sprintf("%.3f T%s", v/1e12, unit)
	case v >= 1e9:
		return fmt.Sprintf("%.3f G%s", v/1e9, unit)
	case v >= 1e6:
		return fmt.Sprintf("%.3f M%s", v/1e6, unit)
	}
	return fmt.Sprintf("%.3f %s", v, unit)
}
