// Package sim simulates DNN inference execution on the modeled hardware
// platforms. It substitutes for the real runtimes + silicon the paper
// measures: per backend layer it produces a latency from a roofline-based
// model (compute time vs memory time, whichever dominates, plus launch
// overhead), with per-op-class efficiency factors that reproduce the
// paper's qualitative findings — depth-wise convolutions that cannot use
// tensor cores, data-movement layers that are pure bandwidth, attention
// GEMMs that run near peak.
//
// It also models "hardware FLOP": the instruction-counted FLOP a
// profiler like Nsight Compute reports, which differs from the
// analytical model's "model FLOP" through tile/channel padding and
// through transcendental ops executing on SFUs that the counters do not
// see (§4.2's Model FLOP vs Hardware FLOP distinction).
package sim

import (
	"strings"

	"proof/internal/graph"
)

// Class is the execution class of a backend layer, which selects its
// efficiency envelope.
type Class int

const (
	// ClassElementwise covers pointwise arithmetic and activations.
	ClassElementwise Class = iota
	// ClassGEMM covers MatMul/Gemm layers (and attention batches).
	ClassGEMM
	// ClassConv covers standard and point-wise convolutions.
	ClassConv
	// ClassDWConv covers depth-wise (grouped, cin/group==1)
	// convolutions, which cannot use matrix units.
	ClassDWConv
	// ClassNorm covers normalization layers.
	ClassNorm
	// ClassSoftmax covers softmax.
	ClassSoftmax
	// ClassReduction covers pooling/reduction layers.
	ClassReduction
	// ClassDataMovement covers transpose/concat/slice layers — the
	// strided, zero-FLOP layers of the §4.5 ShuffleNet study.
	ClassDataMovement
	// ClassEmbedding covers gather/scatter layers.
	ClassEmbedding
	// ClassMemCopy covers contiguous copies and format conversions
	// (Cast, runtime reformat layers), which run near full bandwidth.
	ClassMemCopy
	// ClassMeta covers zero-cost metadata nodes (Constants, Shape,
	// Reshape, integer shape arithmetic): they never define a fused
	// layer's execution class.
	ClassMeta
)

var classNames = map[Class]string{
	ClassElementwise:  "elementwise",
	ClassGEMM:         "gemm",
	ClassConv:         "conv",
	ClassDWConv:       "dwconv",
	ClassNorm:         "norm",
	ClassSoftmax:      "softmax",
	ClassReduction:    "reduction",
	ClassDataMovement: "datamove",
	ClassEmbedding:    "embedding",
	ClassMemCopy:      "memcopy",
	ClassMeta:         "meta",
}

// String returns the class name used in reports and kernel names.
func (c Class) String() string {
	if s, ok := classNames[c]; ok {
		return s
	}
	return "unknown"
}

// IsDepthwise reports whether a Conv node is depth-wise (one input
// channel per group).
func IsDepthwise(n *graph.Node, g *graph.Graph) bool {
	if n.OpType != "Conv" {
		return false
	}
	w := g.Tensor(n.Inputs[1])
	if w == nil || w.Shape.Rank() != 4 {
		return false
	}
	return w.Shape[1] == 1 && n.Attrs.Int("group", 1) > 1
}

// classPriority orders classes so that a fused layer takes the class of
// its most performance-defining member (a Conv+BN+Relu fusion is a conv;
// a MatMul+Softmax Myelin region is a gemm).
var classPriority = []Class{
	ClassGEMM, ClassConv, ClassDWConv, ClassSoftmax, ClassNorm,
	ClassReduction, ClassEmbedding, ClassDataMovement, ClassMemCopy,
	ClassElementwise, ClassMeta,
}

// isShapeMath reports whether a node only computes small integer shape
// values (Shape-chain Gather/Concat/arithmetic) rather than moving
// tensor data.
func isShapeMath(n *graph.Node, g *graph.Graph) bool {
	if len(n.Outputs) != 1 {
		return false
	}
	t := g.Tensor(n.Outputs[0])
	return t != nil && t.DType == graph.Int64 && t.Shape != nil && t.Shape.NumElements() <= 64
}

// ClassifyNode returns the execution class of a single node.
func ClassifyNode(n *graph.Node, g *graph.Graph) Class {
	switch n.OpType {
	case "Constant", "Shape", "Reshape", "Squeeze", "Unsqueeze",
		"Flatten", "Dropout":
		return ClassMeta
	}
	if isShapeMath(n, g) {
		return ClassMeta
	}
	switch n.OpType {
	case "MatMul", "Gemm", "Einsum":
		return ClassGEMM
	case "Conv", "ConvTranspose":
		if IsDepthwise(n, g) {
			return ClassDWConv
		}
		return ClassConv
	case "Softmax", "LogSoftmax":
		return ClassSoftmax
	case "BatchNormalization", "LayerNormalization",
		"GroupNormalization", "InstanceNormalization", "LpNormalization":
		return ClassNorm
	case "MaxPool", "AveragePool", "GlobalAveragePool", "GlobalMaxPool",
		"ReduceMean", "ReduceSum", "ReduceMax", "ReduceMin", "ReduceL2",
		"ReduceProd", "ArgMax", "ArgMin", "TopK":
		return ClassReduction
	case "Gather":
		return ClassEmbedding
	case "Transpose", "Concat", "Split", "Slice", "Pad", "Expand",
		"Tile", "Resize", "Upsample", "ConstantOfShape", "Where":
		return ClassDataMovement
	case "Cast", "Identity", "QuantizeLinear", "DequantizeLinear":
		return ClassMemCopy
	}
	return ClassElementwise
}

// ClassifyNodes returns the dominant class of a set of (fused) nodes.
func ClassifyNodes(nodes []*graph.Node, g *graph.Graph) Class {
	present := map[Class]bool{}
	for _, n := range nodes {
		present[ClassifyNode(n, g)] = true
	}
	for _, c := range classPriority {
		if present[c] {
			return c
		}
	}
	return ClassElementwise
}

// KernelNameFor fabricates a realistic low-level kernel name for a
// backend layer of the given class on the given architecture, in the
// style of cuDNN/cuBLAS kernels ("sm80_xmma_fprop_implicit_gemm_...").
// Used by the trtsim kernel lowering and the simulated Nsight trace.
func KernelNameFor(arch string, class Class, dt graph.DataType, name string) string {
	sm := map[string]string{"ampere": "sm80", "ada": "sm89", "volta": "sm72"}[arch]
	if sm == "" {
		sm = "generic"
	}
	var stem string
	switch class {
	case ClassGEMM:
		stem = "xmma_gemm"
	case ClassConv:
		stem = "xmma_fprop_implicit_gemm"
	case ClassDWConv:
		stem = "dgrad2d_grouped_direct"
	case ClassSoftmax:
		stem = "softmax_warp_forward"
	case ClassNorm:
		stem = "norm_fused_kernel"
	case ClassReduction:
		stem = "reduce_kernel"
	case ClassDataMovement:
		stem = "copy_permute_kernel"
	case ClassMemCopy:
		stem = "cuda_memcpy_reformat"
	case ClassEmbedding:
		stem = "gather_kernel"
	default:
		stem = "elementwise_kernel"
	}
	return sm + "_" + stem + "_" + dt.String() + "_" + sanitizeKernelName(name)
}

func sanitizeKernelName(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			return r
		}
		return '_'
	}, s)
}
