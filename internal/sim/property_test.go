package sim

import (
	"testing"
	"testing/quick"

	"proof/internal/graph"
	"proof/internal/hardware"
)

// TestLatencyMonotoneInWork: more FLOP (same class/bytes) never runs
// faster; more bytes (same FLOP) never runs faster.
func TestLatencyMonotoneInWork(t *testing.T) {
	plat, _ := hardware.Get("a100")
	cfg := Config{Platform: plat, DType: graph.Float16}
	f := func(flopK, bytesK uint32) bool {
		flop := int64(flopK)*1e6 + 1e6
		bytes := int64(bytesK)*1e3 + 1e3
		base := SimulateLayer(Work{Name: "w", Class: ClassConv, HWFLOP: flop, Bytes: bytes}, cfg)
		moreFlop := SimulateLayer(Work{Name: "w", Class: ClassConv, HWFLOP: flop * 2, Bytes: bytes}, cfg)
		moreBytes := SimulateLayer(Work{Name: "w", Class: ClassConv, HWFLOP: flop, Bytes: bytes * 2}, cfg)
		return moreFlop.Latency >= base.Latency-base.Latency/50 &&
			moreBytes.Latency >= base.Latency-base.Latency/50
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestLatencyMonotoneInClocks: on a DVFS platform, raising either clock
// never slows a layer.
func TestLatencyMonotoneInClocks(t *testing.T) {
	plat, _ := hardware.Get("orin-nx")
	w := Work{Name: "x", Class: ClassConv, HWFLOP: 1e9, Bytes: 1e7}
	clocks := []int{204, 408, 612, 918}
	var prev Timing
	for i, gpu := range clocks {
		tm := SimulateLayer(w, Config{Platform: plat, DType: graph.Float16,
			Clocks: hardware.Clocks{GPUMHz: gpu, EMCMHz: 3199}})
		if i > 0 && tm.Latency > prev.Latency {
			t.Errorf("GPU %d MHz slower than %d MHz", gpu, clocks[i-1])
		}
		prev = tm
	}
	for i, emc := range []int{665, 2133, 3199} {
		tm := SimulateLayer(w, Config{Platform: plat, DType: graph.Float16,
			Clocks: hardware.Clocks{GPUMHz: 918, EMCMHz: emc}})
		if i > 0 && tm.Latency > prev.Latency {
			t.Errorf("EMC %d MHz slower than previous step", emc)
		}
		prev = tm
	}
}

// TestGPUCapacityDerating: power-gating TPCs (the stock-15W TPC_PG_MASK
// quirk) slows compute-bound layers proportionally.
func TestGPUCapacityDerating(t *testing.T) {
	plat, _ := hardware.Get("orin-nx")
	w := Work{Name: "g", Class: ClassGEMM, HWFLOP: 5e10, Bytes: 1e6}
	full := SimulateLayer(w, Config{Platform: plat, DType: graph.Float16,
		Clocks: hardware.Clocks{GPUMHz: 612, EMCMHz: 3199}})
	gated := SimulateLayer(w, Config{Platform: plat, DType: graph.Float16,
		Clocks: hardware.Clocks{GPUMHz: 612, EMCMHz: 3199, GPUCapacity: 0.62}})
	ratio := gated.ComputeTime.Seconds() / full.ComputeTime.Seconds()
	if ratio < 1.4 || ratio > 1.8 {
		t.Errorf("capacity 0.62 compute slowdown = %.2fx, want ~1.6x", ratio)
	}
}

// TestEfficiencyNeverExceedsCeiling: attained rates stay at or below
// the platform's achievable ceilings for any class and size.
func TestEfficiencyNeverExceedsCeiling(t *testing.T) {
	plat, _ := hardware.Get("a100")
	cfg := Config{Platform: plat, DType: graph.Float16}
	classes := []Class{ClassGEMM, ClassConv, ClassDWConv, ClassElementwise,
		ClassSoftmax, ClassNorm, ClassReduction, ClassDataMovement, ClassMemCopy}
	ceilingF := plat.PeakAt(graph.Float16, 0)
	ceilingB := plat.MemBW
	for _, class := range classes {
		for _, scale := range []int64{1e6, 1e9, 1e12} {
			w := Work{Name: "w", Class: class, HWFLOP: scale, ModelFLOP: scale, Bytes: scale / 10}
			tm := SimulateLayer(w, cfg)
			if sec := tm.Latency.Seconds(); sec > 0 {
				if rate := float64(w.HWFLOP) / sec; rate > ceilingF {
					t.Errorf("%v at %d FLOP attains %.2e > ceiling %.2e", class, scale, rate, ceilingF)
				}
				if bwRate := float64(tm.ActualBytes) / sec; bwRate > ceilingB {
					t.Errorf("%v at %d bytes attains %.2e B/s > ceiling %.2e", class, scale, bwRate, ceilingB)
				}
			}
		}
	}
}

// TestFormatRate covers the report helper.
func TestFormatRate(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{2.5e12, "2.500 TFLOP/s"},
		{3e9, "3.000 GFLOP/s"},
		{4e6, "4.000 MFLOP/s"},
		{12, "12.000 FLOP/s"},
	}
	for _, c := range cases {
		if got := FormatRate(c.v, "FLOP/s"); got != c.want {
			t.Errorf("FormatRate(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}
