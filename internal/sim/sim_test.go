package sim

import (
	"strings"
	"testing"
	"time"

	"proof/internal/graph"
	"proof/internal/hardware"
)

func a100Cfg(t *testing.T) Config {
	t.Helper()
	plat, err := hardware.Get("a100")
	if err != nil {
		t.Fatal(err)
	}
	return Config{Platform: plat, DType: graph.Float16}
}

func TestSimulateComputeBoundLayer(t *testing.T) {
	cfg := a100Cfg(t)
	// 1 TFLOP of GEMM with tiny traffic: compute-bound, finishes in
	// roughly 1e12 / (312e12 * 0.85) seconds.
	w := Work{Name: "big_gemm", Class: ClassGEMM, HWFLOP: 1e12, ModelFLOP: 1e12, Bytes: 1e6}
	tm := SimulateLayer(w, cfg)
	if tm.Bound != "compute" {
		t.Errorf("bound = %s", tm.Bound)
	}
	want := 1e12 / (312e12 * 0.85)
	got := tm.ComputeTime.Seconds()
	if got < want*0.95 || got > want*1.3 {
		t.Errorf("compute time = %v, want ~%v s", got, want)
	}
	if tm.Latency <= tm.ComputeTime {
		t.Error("latency must include overhead")
	}
}

func TestSimulateMemoryBoundLayer(t *testing.T) {
	cfg := a100Cfg(t)
	// 1 GB of copy with no FLOP: memory-bound.
	w := Work{Name: "copy", Class: ClassMemCopy, Bytes: 1e9}
	tm := SimulateLayer(w, cfg)
	if tm.Bound != "memory" {
		t.Errorf("bound = %s", tm.Bound)
	}
	want := 1e9 / (1555e9 * 0.87)
	got := tm.MemoryTime.Seconds()
	if got < want*0.90 || got > want*1.15 {
		t.Errorf("memory time = %v s, want ~%v s", got, want)
	}
}

func TestTinyLayerIsOverheadBound(t *testing.T) {
	cfg := a100Cfg(t)
	w := Work{Name: "tiny", Class: ClassElementwise, HWFLOP: 100, Bytes: 100}
	tm := SimulateLayer(w, cfg)
	if tm.Bound != "overhead" {
		t.Errorf("bound = %s", tm.Bound)
	}
	if tm.Latency < cfg.Platform.KernelOverhead {
		t.Error("latency must be at least the launch overhead")
	}
}

func TestDWConvCannotUseTensorCores(t *testing.T) {
	cfg := a100Cfg(t)
	flop := int64(5e10)
	gemm := SimulateLayer(Work{Name: "g", Class: ClassGEMM, HWFLOP: flop, Bytes: 1e6}, cfg)
	dw := SimulateLayer(Work{Name: "d", Class: ClassDWConv, HWFLOP: flop, Bytes: 1e6}, cfg)
	// Depth-wise runs on the vector pipeline: at least ~5x slower for
	// the same FLOP on a tensor-core platform.
	if dw.ComputeTime < 4*gemm.ComputeTime {
		t.Errorf("dwconv %v should be much slower than gemm %v", dw.ComputeTime, gemm.ComputeTime)
	}
}

func TestClockScalingAffectsLatency(t *testing.T) {
	plat, _ := hardware.Get("orin-nx")
	w := Work{Name: "g", Class: ClassGEMM, HWFLOP: 1e11, Bytes: 1e6}
	full := SimulateLayer(w, Config{Platform: plat, DType: graph.Float16, Clocks: hardware.Clocks{GPUMHz: 918, EMCMHz: 3199}})
	half := SimulateLayer(w, Config{Platform: plat, DType: graph.Float16, Clocks: hardware.Clocks{GPUMHz: 510, EMCMHz: 3199}})
	if half.ComputeTime <= full.ComputeTime {
		t.Error("lower GPU clock must increase compute time")
	}
	memw := Work{Name: "m", Class: ClassMemCopy, Bytes: 1e9}
	fullM := SimulateLayer(memw, Config{Platform: plat, DType: graph.Float16, Clocks: hardware.Clocks{GPUMHz: 918, EMCMHz: 3199}})
	lowEMC := SimulateLayer(memw, Config{Platform: plat, DType: graph.Float16, Clocks: hardware.Clocks{GPUMHz: 918, EMCMHz: 665}})
	if lowEMC.MemoryTime <= fullM.MemoryTime {
		t.Error("lower EMC clock must increase memory time")
	}
	// GPU issue limit: lowering GPU clock with EMC at max also slows
	// copies (Table 6 #3).
	lowGPU := SimulateLayer(memw, Config{Platform: plat, DType: graph.Float16, Clocks: hardware.Clocks{GPUMHz: 510, EMCMHz: 3199}})
	if lowGPU.MemoryTime <= fullM.MemoryTime {
		t.Error("GPU issue limit must slow copies at low GPU clock")
	}
}

func TestJitterDeterministicAndBounded(t *testing.T) {
	for _, name := range []string{"a", "b", "layer_42"} {
		v1 := jitter(name, 3, 0.015)
		v2 := jitter(name, 3, 0.015)
		if v1 != v2 {
			t.Error("jitter must be deterministic for same inputs")
		}
		if v1 < -0.015 || v1 > 0.015 {
			t.Errorf("jitter out of bounds: %v", v1)
		}
		if jitter(name, 4, 0.015) == v1 && name == "a" {
			// Not guaranteed different per seed for every name, but
			// identical across all names would indicate a bug; check
			// via accumulation below.
			continue
		}
	}
	diff := 0
	for _, name := range []string{"a", "b", "c", "d", "e"} {
		if jitter(name, 1, 0.01) != jitter(name, 2, 0.01) {
			diff++
		}
	}
	if diff == 0 {
		t.Error("seed must influence jitter")
	}
}

func TestUtilization(t *testing.T) {
	ts := []Timing{
		{Latency: 10 * time.Millisecond, ComputeTime: 8 * time.Millisecond, MemoryTime: 2 * time.Millisecond},
		{Latency: 10 * time.Millisecond, ComputeTime: 2 * time.Millisecond, MemoryTime: 9 * time.Millisecond},
	}
	uc, um := Utilization(ts)
	if uc < 0.49 || uc > 0.51 {
		t.Errorf("compute util = %v", uc)
	}
	if um < 0.54 || um > 0.56 {
		t.Errorf("memory util = %v", um)
	}
	uc, um = Utilization(nil)
	if uc != 0 || um != 0 {
		t.Error("empty utilization should be zero")
	}
}

func TestSimulateTotals(t *testing.T) {
	cfg := a100Cfg(t)
	ws := []Work{
		{Name: "a", Class: ClassConv, HWFLOP: 1e9, Bytes: 1e7},
		{Name: "b", Class: ClassElementwise, HWFLOP: 1e6, Bytes: 1e7},
	}
	ts, total := Simulate(ws, cfg)
	if len(ts) != 2 {
		t.Fatal("timing count")
	}
	if total != ts[0].Latency+ts[1].Latency {
		t.Error("total must be the sum of layer latencies")
	}
}

func TestMeasuredBytesDeviation(t *testing.T) {
	cfg := a100Cfg(t)
	w := Work{Name: "x", Class: ClassConv, HWFLOP: 1e9, Bytes: 1e8}
	tm := SimulateLayer(w, cfg)
	ratio := float64(tm.ActualBytes) / float64(w.Bytes)
	if ratio < 0.94 || ratio > 1.09 {
		t.Errorf("measured/predicted bytes = %v, want within [-5%%, +8%%]", ratio)
	}
	// Stable across seeds (cache behavior, not run-to-run noise).
	tm2 := SimulateLayer(w, Config{Platform: cfg.Platform, DType: cfg.DType, Seed: 99})
	if tm2.ActualBytes != tm.ActualBytes {
		t.Error("measured bytes must be seed-independent")
	}
}

func TestClassifyNodeAndKernelNames(t *testing.T) {
	g := graph.New("t")
	g.AddTensor(&graph.Tensor{Name: "x", DType: graph.Float16, Shape: graph.Shape{1, 8, 4, 4}})
	g.AddTensor(&graph.Tensor{Name: "w", DType: graph.Float16, Shape: graph.Shape{8, 1, 3, 3}, Param: true})
	g.AddTensor(&graph.Tensor{Name: "y", DType: graph.Float16})
	dw := &graph.Node{Name: "dw", OpType: "Conv", Inputs: []string{"x", "w"}, Outputs: []string{"y"},
		Attrs: graph.Attrs{"group": graph.IntAttr(8), "kernel_shape": graph.IntsAttr(3, 3)}}
	g.AddNode(dw)
	if !IsDepthwise(dw, g) {
		t.Error("dw conv not detected")
	}
	if ClassifyNode(dw, g) != ClassDWConv {
		t.Error("dw conv class")
	}
	mm := &graph.Node{Name: "mm", OpType: "MatMul"}
	if ClassifyNode(mm, g) != ClassGEMM {
		t.Error("matmul class")
	}
	if ClassifyNodes([]*graph.Node{mm, dw}, g) != ClassGEMM {
		t.Error("gemm should dominate")
	}
	name := KernelNameFor("ampere", ClassGEMM, graph.Float16, "layer one")
	if !strings.HasPrefix(name, "sm80_xmma_gemm_fp16_") || strings.Contains(name, " ") {
		t.Errorf("kernel name = %q", name)
	}
}

func TestClassStringAndKernelNames(t *testing.T) {
	for _, c := range []Class{ClassElementwise, ClassGEMM, ClassConv, ClassDWConv,
		ClassNorm, ClassSoftmax, ClassReduction, ClassDataMovement,
		ClassEmbedding, ClassMemCopy, ClassMeta} {
		if c.String() == "unknown" || c.String() == "" {
			t.Errorf("class %d has no name", c)
		}
		name := KernelNameFor("volta", c, graph.Float16, "x")
		if !strings.HasPrefix(name, "sm72_") {
			t.Errorf("kernel name = %q", name)
		}
	}
	if Class(99).String() != "unknown" {
		t.Error("unknown class name")
	}
	if !strings.HasPrefix(KernelNameFor("x86-avx512", ClassConv, graph.Float32, "c"), "generic_") {
		t.Error("non-GPU arch should use generic prefix")
	}
}

func TestClassifyNodeAllBranches(t *testing.T) {
	g := graph.New("cls")
	g.AddTensor(&graph.Tensor{Name: "x", DType: graph.Float32, Shape: graph.Shape{2, 4}})
	g.AddTensor(&graph.Tensor{Name: "y", DType: graph.Float32, Shape: graph.Shape{2, 4}})
	cases := map[string]Class{
		"Gemm":               ClassGEMM,
		"Einsum":             ClassGEMM,
		"Softmax":            ClassSoftmax,
		"LayerNormalization": ClassNorm,
		"MaxPool":            ClassReduction,
		"ArgMax":             ClassReduction,
		"Gather":             ClassEmbedding,
		"Transpose":          ClassDataMovement,
		"Cast":               ClassMemCopy,
		"QuantizeLinear":     ClassMemCopy,
		"Relu":               ClassElementwise,
		"Constant":           ClassMeta,
		"Reshape":            ClassMeta,
	}
	for op, want := range cases {
		n := &graph.Node{Name: "n", OpType: op, Inputs: []string{"x"}, Outputs: []string{"y"}}
		if got := ClassifyNode(n, g); got != want {
			t.Errorf("ClassifyNode(%s) = %v, want %v", op, got, want)
		}
	}
	// Shape-math Gather (small Int64 output) is meta, not embedding.
	g.AddTensor(&graph.Tensor{Name: "i64", DType: graph.Int64, Shape: graph.Shape{2}})
	n := &graph.Node{Name: "sg", OpType: "Gather", Inputs: []string{"x"}, Outputs: []string{"i64"}}
	if ClassifyNode(n, g) != ClassMeta {
		t.Error("shape-math gather should be meta")
	}
}

func TestHardwareFLOPForNodesSums(t *testing.T) {
	plat, _ := hardware.Get("a100")
	g := graph.New("sum")
	g.AddTensor(&graph.Tensor{Name: "a", DType: graph.Float16, Shape: graph.Shape{64, 64}})
	g.AddTensor(&graph.Tensor{Name: "b", DType: graph.Float16, Shape: graph.Shape{64, 64}, Param: true})
	g.AddTensor(&graph.Tensor{Name: "c", DType: graph.Float16})
	g.AddTensor(&graph.Tensor{Name: "d", DType: graph.Float16})
	n1 := &graph.Node{Name: "mm", OpType: "MatMul", Inputs: []string{"a", "b"}, Outputs: []string{"c"}}
	n2 := &graph.Node{Name: "r", OpType: "Relu", Inputs: []string{"c"}, Outputs: []string{"d"}}
	g.AddNode(n1)
	g.AddNode(n2)
	g.Inputs = []string{"a"}
	g.Outputs = []string{"d"}
	if err := g.InferShapes(); err != nil {
		t.Fatal(err)
	}
	sum := HardwareFLOPForNodes([]*graph.Node{n1, n2}, g, plat)
	if sum != HardwareFLOP(n1, g, plat)+HardwareFLOP(n2, g, plat) {
		t.Error("HardwareFLOPForNodes must sum per-node values")
	}
	if sum <= 0 {
		t.Error("positive FLOP expected")
	}
}

func TestHardwareFLOPPadding(t *testing.T) {
	plat, _ := hardware.Get("a100")
	g := graph.New("p")
	// Conv with 3 input channels: K pads 3*49=147 -> 152 on the MMA
	// granule, inflating hardware FLOP.
	g.AddTensor(&graph.Tensor{Name: "x", DType: graph.Float16, Shape: graph.Shape{1, 3, 224, 224}})
	g.AddTensor(&graph.Tensor{Name: "w", DType: graph.Float16, Shape: graph.Shape{64, 3, 7, 7}, Param: true})
	g.AddTensor(&graph.Tensor{Name: "y", DType: graph.Float16})
	n := &graph.Node{Name: "c", OpType: "Conv", Inputs: []string{"x", "w"}, Outputs: []string{"y"},
		Attrs: graph.Attrs{"strides": graph.IntsAttr(2, 2), "pads": graph.IntsAttr(3, 3, 3, 3), "kernel_shape": graph.IntsAttr(7, 7)}}
	g.AddNode(n)
	g.Inputs = []string{"x"}
	g.Outputs = []string{"y"}
	if err := g.InferShapes(); err != nil {
		t.Fatal(err)
	}
	hw := HardwareFLOP(n, g, plat)
	model := int64(2) * 112 * 112 * 64 * 3 * 7 * 7
	if hw <= model {
		t.Errorf("padded hardware FLOP %d should exceed model FLOP %d", hw, model)
	}
	if float64(hw)/float64(model) > 1.25 {
		t.Errorf("padding factor %.2f too large", float64(hw)/float64(model))
	}
}

func TestHardwareFLOPTranscendentalDeflation(t *testing.T) {
	plat, _ := hardware.Get("a100")
	g := graph.New("e")
	g.AddTensor(&graph.Tensor{Name: "x", DType: graph.Float16, Shape: graph.Shape{1, 1024}})
	g.AddTensor(&graph.Tensor{Name: "y", DType: graph.Float16})
	n := &graph.Node{Name: "erf", OpType: "Erf", Inputs: []string{"x"}, Outputs: []string{"y"}}
	g.AddNode(n)
	g.Inputs = []string{"x"}
	g.Outputs = []string{"y"}
	if err := g.InferShapes(); err != nil {
		t.Fatal(err)
	}
	hw := HardwareFLOP(n, g, plat)
	// Analytical weight is 10 FLOP/element; counters see at most ~2.
	if hw > 2*1024 {
		t.Errorf("erf hardware FLOP = %d, counters should see <= 2/element", hw)
	}
}
