package sim

import (
	"proof/internal/analysis"
	"proof/internal/graph"
	"proof/internal/hardware"
)

// HardwareFLOP estimates the instruction-counted FLOP of one node on a
// platform — what a hardware counter profiler reports, as opposed to
// the analytical model's semantic "model FLOP" (§4.2):
//
//   - Dense math (conv/matmul) is padded to the platform's tile and
//     channel granules, inflating the count (MobileNet-style models
//     with tiny channel counts and depth-wise convolutions suffer
//     most — the negative "Diff. from NCU" rows of Table 4).
//   - Transcendental elementwise ops execute on SFU/LUT units whose
//     instructions performance counters do not count as FLOP, deflating
//     the count relative to the analytical weights (why ViT's predicted
//     FLOP lands *above* NCU in Table 4).
func HardwareFLOP(n *graph.Node, g *graph.Graph, plat *hardware.Platform) int64 {
	c, err := analysis.NodeCost(n, g)
	if err != nil {
		return 0
	}
	granule := padGranule(plat)
	switch n.OpType {
	case "Conv", "ConvTranspose":
		return convHardwareFLOP(n, g, granule)
	case "MatMul", "Gemm", "Einsum":
		// GEMM kernels predicate their tile tails, so the retired
		// MMA count tracks the logical extent closely; the counted
		// FLOP matches the model FLOP.
		return c.FLOP
	}
	// Non-dense ops: counters only see FMA/FADD/FMUL instructions;
	// transcendentals (exp, erf, tanh, div) retire on SFU/LUT units
	// that the FLOP counters ignore, and fused epilogues fold most of
	// the rest — roughly one counted FLOP per element survives.
	if c.FLOP == 0 {
		return 0
	}
	out := g.Tensor(n.Outputs[0])
	if out == nil || out.Shape == nil {
		return c.FLOP
	}
	n1 := out.Shape.NumElements()
	if c.FLOP < n1 {
		return c.FLOP
	}
	return n1
}

// padGranule returns the channel/tile granule of the platform's dense
// math units.
func padGranule(plat *hardware.Platform) int64 {
	if plat.TensorCore != nil {
		return 8 // fp16 MMA K/N granularity
	}
	return 4 // SIMD vector width granule
}

func roundUp(v, granule int64) int64 {
	if granule <= 1 || v <= 0 {
		return v
	}
	return (v + granule - 1) / granule * granule
}

func convHardwareFLOP(n *graph.Node, g *graph.Graph, granule int64) int64 {
	x := g.Tensor(n.Inputs[0])
	w := g.Tensor(n.Inputs[1])
	out := g.Tensor(n.Outputs[0])
	if x == nil || w == nil || out == nil || !out.Shape.Valid() {
		return 0
	}
	cinPG := int64(w.Shape[1])
	cout := int64(w.Shape[0])
	kh, kw := int64(w.Shape[2]), int64(w.Shape[3])
	spatial := int64(out.Shape[0]) * int64(out.Shape[2]) * int64(out.Shape[3])

	if IsDepthwise(n, g) {
		// Depth-wise kernels perform significant redundant work:
		// halo loads, register padding and per-channel tails. The
		// 3.2x factor reproduces the NCU-vs-analytical gap for
		// depth-wise-heavy models (Table 4's MobileNetV2 row).
		macs := spatial * cout * kh * kw
		return int64(float64(2*macs) * 3.2)
	}
	// Implicit-GEMM tiling: the N dimension (output channels) pads to
	// the CTA tile (32 for tensor-core kernels), K = cinPG*kh*kw pads
	// to the MMA K granule, and the spatial M dimension pads to the
	// CTA row tile. Models with narrow, non-power-of-two channel
	// counts (MobileNet, EfficientNet) execute substantially more
	// hardware FLOP than the model requires — Table 4's large
	// negative diffs.
	k := roundUp(cinPG*kh*kw, 2*granule)
	nDim := roundUp(cout, 4*granule)
	m := roundUp(spatial, 128)
	macs := m * nDim * k
	return 2 * macs
}

// HardwareFLOPForNodes sums the hardware FLOP over the nodes of a
// (fused) backend layer.
func HardwareFLOPForNodes(nodes []*graph.Node, g *graph.Graph, plat *hardware.Platform) int64 {
	var total int64
	for _, n := range nodes {
		total += HardwareFLOP(n, g, plat)
	}
	return total
}
