package ncusim

import (
	"context"
	"testing"

	"proof/internal/analysis"
	"proof/internal/backend"
	_ "proof/internal/backend/ortsim"
	_ "proof/internal/backend/trtsim"
	"proof/internal/graph"
	"proof/internal/hardware"
	"proof/internal/models"
)

func measureModel(t *testing.T, model, platform string, batch int) (*Result, *analysis.Rep) {
	t.Helper()
	g, err := models.Build(model)
	if err != nil {
		t.Fatal(err)
	}
	plat, err := hardware.Get(platform)
	if err != nil {
		t.Fatal(err)
	}
	g.ConvertFloatTensors(plat.DefaultDType)
	rep, err := analysis.NewRepWithBatch(g, batch)
	if err != nil {
		t.Fatal(err)
	}
	be, err := backend.Get(plat.Runtime)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := be.Build(context.Background(), rep, backend.Config{Platform: plat, DType: plat.DefaultDType, Batch: batch})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Measure(eng, 7)
	if err != nil {
		t.Fatal(err)
	}
	return res, rep
}

func TestCorrectReportedFLOP(t *testing.T) {
	// 10 HMMA instructions reported as 5120 FLOP.
	if got := CorrectReportedFLOP(5120, "ampere"); got != 10*4096 {
		t.Errorf("ampere correction = %d", got)
	}
	// Volta is the one architecture NCU gets right.
	if got := CorrectReportedFLOP(5120, "volta"); got != 5120 {
		t.Errorf("volta correction = %d", got)
	}
	// Unknown arch: no tensor cores, pass through.
	if got := CorrectReportedFLOP(5120, "x86-avx512"); got != 5120 {
		t.Errorf("cpu correction = %d", got)
	}
	if FLOPPerMMA("ampere") != 4096 || FLOPPerMMA("volta") != 512 {
		t.Error("FLOPPerMMA table wrong")
	}
}

func TestNCUBugReproducesOnAmpere(t *testing.T) {
	res, _ := measureModel(t, "resnet-50", "a100", 8)
	// On Ampere the raw NCU FLOP must be an integer fraction (1/8) of
	// the corrected value for tensor-core kernels, so total reported
	// is far below corrected.
	if res.ReportedFLOP >= res.CorrectedFLOP {
		t.Errorf("reported %d should undercount corrected %d on ampere", res.ReportedFLOP, res.CorrectedFLOP)
	}
	ratio := float64(res.CorrectedFLOP) / float64(res.ReportedFLOP)
	if ratio < 4 || ratio > 9 {
		t.Errorf("correction ratio = %.2f, want ~8 (conv-dominated model)", ratio)
	}
}

func TestCorrectedFLOPNearAnalytical(t *testing.T) {
	// Table 4: corrected hardware FLOP differs from the analytical
	// model FLOP by roughly -25%..+10% depending on the model mix.
	cases := []struct {
		model    string
		min, max float64 // corrected/analytical bounds
	}{
		{"resnet-50", 0.95, 1.25},
		{"mobilenetv2-1.0", 1.05, 1.60}, // dw-conv overhead inflates hw FLOP
		{"vit-t", 0.80, 1.10},           // SFU ops deflate hw FLOP
	}
	for _, c := range cases {
		res, rep := measureModel(t, c.model, "a100", 8)
		ratio := float64(res.CorrectedFLOP) / float64(rep.TotalCost().FLOP)
		if ratio < c.min || ratio > c.max {
			t.Errorf("%s: corrected/analytical = %.3f, want in [%.2f, %.2f]", c.model, ratio, c.min, c.max)
		}
	}
}

func TestMeasuredBytesNearPredicted(t *testing.T) {
	res, rep := measureModel(t, "resnet-50", "a100", 8)
	// Aggregate measured traffic should be within ~10% of the
	// analytical prediction (Table 4 memory diffs are a few percent).
	// Compare against the fused prediction implied by the run: use
	// total measured vs total predicted-by-rep as a loose envelope
	// (per-op prediction is higher than fused reality).
	predicted := rep.TotalCost().MemoryBytes()
	ratio := float64(res.Bytes) / float64(predicted)
	if ratio < 0.5 || ratio > 1.15 {
		t.Errorf("measured/predicted bytes = %.3f out of range", ratio)
	}
	if res.Bytes <= 0 {
		t.Error("no traffic measured")
	}
}

func TestProfilingOverheadIsLarge(t *testing.T) {
	res, _ := measureModel(t, "resnet-50", "a100", 8)
	// The whole point of prediction mode: counter profiling costs
	// minutes (Table 4 reports 395 s for ResNet-50), inference runs in
	// milliseconds.
	if res.ProfilingTime < 60*1e9 {
		t.Errorf("profiling time = %v, expected minutes of replay overhead", res.ProfilingTime)
	}
	if res.ProfilingTime < 1000*res.InferenceTime {
		t.Errorf("profiling (%v) should dwarf inference (%v)", res.ProfilingTime, res.InferenceTime)
	}
}

func TestVoltaNeedsNoCorrection(t *testing.T) {
	res, _ := measureModel(t, "resnet-50", "xavier-nx", 8)
	if res.ReportedFLOP != res.CorrectedFLOP {
		t.Errorf("volta: reported %d != corrected %d", res.ReportedFLOP, res.CorrectedFLOP)
	}
}

func TestNoTensorCoresNoMMA(t *testing.T) {
	g, _ := models.Build("resnet-50")
	plat, _ := hardware.Get("xeon-6330")
	g.ConvertFloatTensors(graph.Float32)
	rep, err := analysis.NewRepWithBatch(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	be, _ := backend.Get("ortsim")
	eng, err := be.Build(context.Background(), rep, backend.Config{Platform: plat, DType: graph.Float32, Batch: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Measure(eng, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, lm := range res.Layers {
		for _, km := range lm.Kernels {
			if km.MMAInstructions != 0 {
				t.Fatalf("CPU kernel %q has MMA instructions", km.Name)
			}
		}
	}
}

func TestKernelLayerCorrelation(t *testing.T) {
	res, _ := measureModel(t, "vit-t", "a100", 8)
	for _, lm := range res.Layers {
		if len(lm.Kernels) == 0 {
			t.Errorf("layer %q has no kernel measurements", lm.LayerName)
		}
		var flop int64
		for _, km := range lm.Kernels {
			flop += km.ReportedFLOP
		}
		if flop != lm.ReportedFLOP {
			t.Errorf("layer %q kernel FLOP sum mismatch", lm.LayerName)
		}
	}
}
