// Package ncusim simulates a hardware-counter profiler in the mold of
// NVIDIA Nsight Compute (NCU): per-kernel instruction-counted FLOP, DRAM
// traffic, and — critically — the measurement pathologies the paper
// documents in §4.2:
//
//   - Kernel replay overhead: hardware exposes few counters, so the
//     profiler replays every kernel several times to collect all metric
//     groups, which costs minutes of wall time per model (Table 4's
//     "Prof. time" column) — the overhead PRoof's analytical prediction
//     mode avoids.
//   - The tensor-core FLOP bug: NCU derives FLOP from HMMA/IMMA
//     instruction counts using a fixed 512 FLOP/instruction, which is
//     only correct for Volta's HMMA.884.F32.F32; on Ampere/Ada one
//     instruction performs 4096 FLOP, so raw NCU numbers are an integer
//     multiple off. CorrectReportedFLOP applies the per-architecture
//     table (after Raihan et al.'s tensor-core reverse engineering).
package ncusim

import (
	"fmt"
	"time"

	"proof/internal/backend"
	"proof/internal/graph"
	"proof/internal/sim"
)

// ncuFixedFLOPPerMMA is the constant NCU multiplies HMMA instruction
// counts by, regardless of architecture — the bug.
const ncuFixedFLOPPerMMA = 512

// flopPerMMA is the true per-architecture FLOP count of one dense fp16
// HMMA instruction.
var flopPerMMA = map[string]int{
	"volta":  512,  // HMMA.884.F32.F32
	"ampere": 4096, // HMMA.16816.F32
	"ada":    4096,
}

// FLOPPerMMA returns the true FLOP per matrix instruction for a GPU
// architecture (0 when the architecture has no matrix units).
func FLOPPerMMA(arch string) int { return flopPerMMA[arch] }

// CorrectReportedFLOP converts an NCU-reported tensor-core FLOP count to
// the true count for the given architecture.
func CorrectReportedFLOP(reported int64, arch string) int64 {
	per, ok := flopPerMMA[arch]
	if !ok || per == ncuFixedFLOPPerMMA {
		return reported
	}
	instructions := reported / ncuFixedFLOPPerMMA
	return instructions * int64(per)
}

// KernelMeasurement is the counter data for one replayed kernel.
type KernelMeasurement struct {
	// Name is the kernel name from the launch trace.
	Name string
	// MMAInstructions is the HMMA/IMMA count (0 for non-tensor-core
	// kernels).
	MMAInstructions int64
	// ReportedFLOP is the FLOP NCU displays (fixed 512/MMA for
	// tensor-core kernels; direct FADD/FMUL/FFMA counts otherwise).
	ReportedFLOP int64
	// Bytes is the measured DRAM traffic attributed to the kernel.
	Bytes int64
	// Latency is the kernel execution time.
	Latency time.Duration
}

// LayerMeasurement aggregates kernel measurements per backend layer
// (correlated through the system-trace layer names, Figure 3).
type LayerMeasurement struct {
	// LayerName is the backend layer.
	LayerName string
	// Kernels are the layer's kernels.
	Kernels []KernelMeasurement
	// ReportedFLOP is the raw (buggy) per-layer FLOP.
	ReportedFLOP int64
	// CorrectedFLOP applies the architecture FLOP/MMA correction.
	CorrectedFLOP int64
	// Bytes is the measured DRAM traffic.
	Bytes int64
	// Latency is the layer latency.
	Latency time.Duration
}

// Result is a full measurement run over an engine.
type Result struct {
	// Layers are the per-layer measurements in execution order.
	Layers []LayerMeasurement
	// ReportedFLOP / CorrectedFLOP / Bytes are whole-model totals.
	ReportedFLOP  int64
	CorrectedFLOP int64
	Bytes         int64
	// InferenceTime is the model latency during the measured run.
	InferenceTime time.Duration
	// ProfilingTime is the additional wall time the counter profiler
	// spent on kernel replays (Table 4's "Prof. time").
	ProfilingTime time.Duration
}

// Replay cost model: per-kernel fixed overhead (connection, cache
// flushing, metric configuration) plus replay passes over the kernel.
const (
	perKernelOverhead = 3 * time.Second
	replayPasses      = 12
)

// usesTensorCores reports whether a kernel class/dtype runs on the
// matrix units.
func usesTensorCores(class sim.Class, dt graph.DataType, arch string) bool {
	if flopPerMMA[arch] == 0 {
		return false
	}
	if class != sim.ClassGEMM && class != sim.ClassConv {
		return false
	}
	return dt == graph.Float16 || dt == graph.BFloat16 || dt == graph.Int8
}

// Measure profiles an engine with simulated hardware counters. The
// engine must be built for a platform whose measurement is supported
// (tensor-core GPUs in the paper: A100, RTX 4090).
func Measure(e *backend.Engine, seed uint64) (*Result, error) {
	cfg := e.Config()
	if cfg.Platform == nil {
		return nil, fmt.Errorf("ncusim: engine has no platform")
	}
	arch := cfg.Platform.Arch
	works := e.Works()
	timings := e.Timings(seed)
	layers := e.Layers()
	if len(works) != len(layers) || len(timings) != len(layers) {
		return nil, fmt.Errorf("ncusim: engine layer bookkeeping mismatch")
	}

	res := &Result{}
	for i, l := range layers {
		w := works[i]
		tm := timings[i]
		lm := LayerMeasurement{
			LayerName: l.Name,
			Bytes:     tm.ActualBytes,
			Latency:   tm.Latency,
		}
		kernels := l.Kernels
		if len(kernels) == 0 {
			kernels = []backend.Kernel{{Name: l.Name, LayerName: l.Name, ShareOfLayer: 1}}
		}
		for _, k := range kernels {
			km := KernelMeasurement{
				Name:    k.Name,
				Bytes:   int64(float64(tm.ActualBytes) * k.ShareOfLayer),
				Latency: time.Duration(float64(tm.Latency) * k.ShareOfLayer),
			}
			kernelFLOP := int64(float64(w.HWFLOP) * k.ShareOfLayer)
			if usesTensorCores(w.Class, cfg.DType, arch) {
				per := int64(flopPerMMA[arch])
				km.MMAInstructions = kernelFLOP / per
				km.ReportedFLOP = km.MMAInstructions * ncuFixedFLOPPerMMA
			} else {
				km.ReportedFLOP = kernelFLOP
			}
			lm.Kernels = append(lm.Kernels, km)
			lm.ReportedFLOP += km.ReportedFLOP
			if km.MMAInstructions > 0 {
				lm.CorrectedFLOP += CorrectReportedFLOP(km.ReportedFLOP, arch)
			} else {
				lm.CorrectedFLOP += km.ReportedFLOP
			}
			res.ProfilingTime += perKernelOverhead + time.Duration(replayPasses)*km.Latency
		}
		res.Layers = append(res.Layers, lm)
		res.ReportedFLOP += lm.ReportedFLOP
		res.CorrectedFLOP += lm.CorrectedFLOP
		res.Bytes += lm.Bytes
		res.InferenceTime += lm.Latency
	}
	return res, nil
}
