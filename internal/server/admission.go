package server

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

// Admission errors. Handlers map ErrQueueFull and ErrQueueTimeout to
// 429 with a Retry-After hint; a context error means the client is gone
// and nothing useful can be written.
var (
	// ErrQueueFull: the wait queue is at capacity; admitting another
	// waiter would only grow latency without growing throughput.
	ErrQueueFull = errors.New("server: admission queue full")
	// ErrQueueTimeout: the request waited its full queue budget without
	// an execution slot freeing up.
	ErrQueueTimeout = errors.New("server: admission queue wait timed out")
)

// admission bounds the number of concurrently executing profile
// requests (slots) plus the number of requests allowed to wait for a
// slot (queue). Work beyond both bounds is rejected immediately —
// load-shedding at the door keeps tail latency bounded under overload
// instead of letting every client time out.
type admission struct {
	slots     chan struct{}
	maxQueue  int64
	queueWait time.Duration

	inflight  atomic.Int64
	queued    atomic.Int64
	highWater atomic.Int64 // max observed inflight; test + metrics hook
	rejected  atomic.Int64 // lifetime 429 count

	// acquired, when non-nil, is invoked with the post-acquire inflight
	// count — a test hook for asserting the concurrency bound from
	// inside the critical region.
	acquired func(inflight int64)
}

func newAdmission(maxInflight, maxQueue int, queueWait time.Duration) *admission {
	return &admission{
		slots:     make(chan struct{}, maxInflight),
		maxQueue:  int64(maxQueue),
		queueWait: queueWait,
	}
}

// acquire blocks until an execution slot is free, the queue budget
// expires, or ctx is done. On success the caller must release().
func (a *admission) acquire(ctx context.Context) error {
	// Fast path: free slot, no queueing.
	select {
	case a.slots <- struct{}{}:
		a.admitted()
		return nil
	default:
	}

	if a.queued.Add(1) > a.maxQueue {
		a.queued.Add(-1)
		a.rejected.Add(1)
		return ErrQueueFull
	}
	defer a.queued.Add(-1)

	timer := time.NewTimer(a.queueWait)
	defer timer.Stop()
	select {
	case a.slots <- struct{}{}:
		a.admitted()
		return nil
	case <-timer.C:
		a.rejected.Add(1)
		return ErrQueueTimeout
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (a *admission) admitted() {
	n := a.inflight.Add(1)
	for {
		hw := a.highWater.Load()
		if n <= hw || a.highWater.CompareAndSwap(hw, n) {
			break
		}
	}
	if a.acquired != nil {
		a.acquired(n)
	}
}

func (a *admission) release() {
	a.inflight.Add(-1)
	<-a.slots
}

// retryAfter estimates how long a rejected client should back off:
// one full queue drain at the configured wait budget, floored at 1s —
// coarse, but monotone in configured pressure and cheap to compute.
func (a *admission) retryAfter() time.Duration {
	d := a.queueWait
	if d < time.Second {
		d = time.Second
	}
	return d
}
