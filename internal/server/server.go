// Package server implements proofd, the long-running HTTP profiling
// service: the PRoof pipeline exposed as a JSON API. All profiling is
// served through one shared cached session (internal/profsession), so
// the hot path of a busy service — many clients asking about the same
// model/platform points — is a deep-copied cache hit rather than a
// pipeline execution.
//
// Serving robustness, in the order a request meets it:
//
//   - request ID + structured JSON log line per request
//   - body size cap (413 beyond MaxBodyBytes)
//   - admission control for profiling endpoints: at most MaxInflight
//     executing plus MaxQueue waiting; excess gets 429 + Retry-After
//   - per-request timeout threaded into core.ProfileCtx, sharing the
//     request context so a client disconnect cancels pipeline work
//   - graceful drain: Serve stops accepting, fails fast on new work
//     (503), finishes in-flight requests, bounded by ShutdownTimeout
package server

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"proof/internal/backend"
	"proof/internal/core"
	"proof/internal/faults"
	"proof/internal/graph"
	"proof/internal/hardware"
	"proof/internal/histstore"
	"proof/internal/models"
	"proof/internal/obs"
	"proof/internal/profsession"
)

// Config tunes the service. The zero value is usable: every field has a
// serving-sane default.
type Config struct {
	// Session is the shared profiling session (nil = new session with
	// the default cache capacity).
	Session *profsession.Session
	// MaxInflight bounds concurrently executing profile/sweep requests
	// (0 = GOMAXPROCS).
	MaxInflight int
	// MaxQueue bounds requests waiting for an execution slot
	// (0 = 4x MaxInflight).
	MaxQueue int
	// QueueWait is the longest a request waits in the queue before
	// 429 (0 = 2s).
	QueueWait time.Duration
	// RequestTimeout caps one profiling request end to end (0 = 60s).
	RequestTimeout time.Duration
	// MaxBodyBytes caps request bodies (0 = 1 MiB).
	MaxBodyBytes int64
	// ShutdownTimeout bounds the graceful drain (0 = 15s).
	ShutdownTimeout time.Duration
	// Logger receives one structured line per request (nil = JSON to
	// stderr). The server wraps the handler so request ID and root
	// span ID ride along on context-aware log calls.
	Logger *slog.Logger
	// Registry is the shared metrics registry (nil = a fresh one).
	// Passing a process-wide registry lets proofd's HTTP edge, the
	// profiling session and the pipeline stage timings land on one
	// /metrics page.
	Registry *obs.Registry
	// TraceRingSize bounds the recent request traces retained for
	// GET /debug/traces (0 = 16).
	TraceRingSize int
	// History, when set, persists every cache-miss profile report to
	// the store and enables GET /v1/history and GET /v1/drift. The
	// store belongs to the caller (proofd opens and closes it); the
	// server owns only its async writer.
	History *histstore.Store
	// HistoryQueue bounds reports waiting for the async store writer;
	// a full queue drops (and counts) rather than blocking the
	// serving path (0 = 256).
	HistoryQueue int
	// GitRev identifies the code revision stamped onto stored reports
	// and the build-info metric ("" = the binary's vcs.revision, else
	// "unknown").
	GitRev string
}

func (c Config) withDefaults() Config {
	if c.Session == nil {
		c.Session = profsession.New(0)
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 4 * c.MaxInflight
	}
	if c.QueueWait <= 0 {
		c.QueueWait = 2 * time.Second
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 60 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.ShutdownTimeout <= 0 {
		c.ShutdownTimeout = 15 * time.Second
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}
	if _, ok := c.Logger.Handler().(ctxHandler); !ok {
		c.Logger = slog.New(ctxHandler{c.Logger.Handler()})
	}
	if c.Registry == nil {
		c.Registry = obs.NewRegistry()
	}
	return c
}

// Server is the proofd HTTP service. Construct with New; safe for
// concurrent use.
type Server struct {
	cfg        Config
	sess       *profsession.Session
	adm        *admission
	metrics    *metrics
	traces     *obs.Ring
	log        *slog.Logger
	mux        *http.ServeMux
	draining   atomic.Bool
	idPrefix   string
	idNext     atomic.Uint64
	gitRev     string
	hist       *histstore.Store
	histW      *histstore.Writer
	driftGauge *obs.GaugeVec
}

// New constructs a server from cfg (zero value = defaults).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	var b [4]byte
	_, _ = rand.Read(b[:])
	s := &Server{
		cfg:      cfg,
		sess:     cfg.Session,
		adm:      newAdmission(cfg.MaxInflight, cfg.MaxQueue, cfg.QueueWait),
		traces:   obs.NewRing(cfg.TraceRingSize),
		log:      cfg.Logger,
		idPrefix: hex.EncodeToString(b[:]),
	}
	s.metrics = wireMetrics(cfg.Registry, s.adm, s.sess)
	s.gitRev = resolveGitRev(cfg.GitRev)
	wireBuildInfo(cfg.Registry, s.gitRev)
	if cfg.History != nil {
		s.wireHistory(cfg)
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/profile", s.handleProfile)
	s.mux.HandleFunc("/v1/sweep", s.handleSweep)
	s.mux.HandleFunc("/v1/models", s.handleModels)
	s.mux.HandleFunc("/v1/platforms", s.handlePlatforms)
	s.mux.HandleFunc("/v1/history", s.handleHistory)
	s.mux.HandleFunc("/v1/drift", s.handleDrift)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/debug/traces", s.handleDebugTraces)
	s.mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		s.writeError(w, r, http.StatusNotFound, "not_found", fmt.Sprintf("no such endpoint %q", r.URL.Path))
	})
	return s
}

// Session returns the shared profiling session (for stats inspection).
func (s *Server) Session() *profsession.Session { return s.sess }

// Handler returns the full middleware-wrapped handler. Profiling
// endpoints run under a per-request obs.Tracer whose finished trace
// lands in the /debug/traces ring and feeds the per-stage latency
// histograms; other endpoints pay nothing.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := r.Header.Get("X-Request-ID")
		if id == "" {
			id = fmt.Sprintf("%s-%06d", s.idPrefix, s.idNext.Add(1))
		}
		w.Header().Set("X-Request-ID", id)
		rw := &statusWriter{ResponseWriter: w}
		ctx := withRequestID(r.Context(), id)
		var tr *obs.Tracer
		var root *obs.Span
		if traced(r.URL.Path) {
			tr = obs.NewTracer(id)
			ctx = obs.WithTracer(ctx, tr)
			ctx, root = obs.Start(ctx, "request")
			root.SetAttr("method", r.Method)
			root.SetAttr("path", r.URL.Path)
		}
		r = r.WithContext(ctx)
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)

		s.mux.ServeHTTP(rw, r)

		code := rw.status
		if code == 0 {
			code = http.StatusOK
		}
		d := time.Since(start)
		s.metrics.observe(metricPath(r.URL.Path), code, d)
		if tr != nil {
			root.SetAttrInt("status", int64(code))
			root.End()
			trace := tr.Snapshot()
			s.traces.Add(trace)
			obs.ObserveStages(s.metrics.reg, "proofd", trace)
		}
		attrs := []any{
			"id", id,
			"method", r.Method,
			"path", r.URL.Path,
			"status", code,
			"duration_ms", float64(d.Microseconds()) / 1000,
			"remote", r.RemoteAddr,
		}
		if cache := rw.Header().Get("X-Cache"); cache != "" {
			attrs = append(attrs, "cache", cache)
		}
		s.log.InfoContext(ctx, "request", attrs...)
	})
}

// traced selects the endpoints that run under a per-request tracer:
// the ones that execute the pipeline.
func traced(path string) bool {
	return path == "/v1/profile" || path == "/v1/sweep"
}

// metricPath collapses unknown paths into one label value so a URL
// scanner cannot explode the metrics cardinality.
func metricPath(p string) string {
	switch p {
	case "/v1/profile", "/v1/sweep", "/v1/models", "/v1/platforms",
		"/v1/history", "/v1/drift", "/healthz", "/metrics", "/debug/traces":
		return p
	}
	return "other"
}

// statusWriter captures the response status for logging and metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

type ctxKey int

const requestIDKey ctxKey = 0

func withRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey, id)
}

func requestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

// ---- error envelope ----

// APIError is the error payload of every non-2xx response.
type APIError struct {
	// Code is a stable machine-readable identifier.
	Code string `json:"code"`
	// Message is the human-readable explanation.
	Message string `json:"message"`
	// Details carries structured, code-specific context — for
	// invalid_model it is the list of graph.ValidationError defects.
	Details any `json:"details,omitempty"`
}

// ErrorEnvelope is the JSON body of every non-2xx response.
type ErrorEnvelope struct {
	Error     APIError `json:"error"`
	RequestID string   `json:"request_id,omitempty"`
}

func (s *Server) writeError(w http.ResponseWriter, r *http.Request, status int, code, msg string) {
	s.writeErrorDetails(w, r, status, code, msg, nil)
}

func (s *Server) writeErrorDetails(w http.ResponseWriter, r *http.Request, status int, code, msg string, details any) {
	s.writeJSON(w, status, ErrorEnvelope{
		Error:     APIError{Code: code, Message: msg, Details: details},
		RequestID: requestID(r.Context()),
	})
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":{"code":"internal","message":"encoding failed"}}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(data, '\n'))
}

// requireMethod writes the 405 envelope (with Allow) on mismatch.
func (s *Server) requireMethod(w http.ResponseWriter, r *http.Request, method string) bool {
	if r.Method == method {
		return true
	}
	w.Header().Set("Allow", method)
	s.writeError(w, r, http.StatusMethodNotAllowed, "method_not_allowed",
		fmt.Sprintf("%s requires %s, got %s", r.URL.Path, method, r.Method))
	return false
}

// decodeBody strictly decodes a JSON request body into v, translating
// the failure modes into envelope responses (true = decoded).
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			s.writeError(w, r, http.StatusRequestEntityTooLarge, "payload_too_large",
				fmt.Sprintf("request body exceeds %d bytes", tooLarge.Limit))
			return false
		}
		s.writeError(w, r, http.StatusBadRequest, "bad_request", "malformed JSON body: "+err.Error())
		return false
	}
	// Trailing garbage after the JSON value is also malformed.
	if dec.More() {
		s.writeError(w, r, http.StatusBadRequest, "bad_request", "unexpected data after JSON body")
		return false
	}
	return true
}

// admit runs the admission controller for a profiling endpoint,
// answering 429/503 itself when the request cannot proceed.
func (s *Server) admit(w http.ResponseWriter, r *http.Request) bool {
	if s.draining.Load() {
		s.writeError(w, r, http.StatusServiceUnavailable, "draining", "server is shutting down")
		return false
	}
	if err := s.adm.acquire(r.Context()); err != nil {
		switch {
		case errors.Is(err, ErrQueueFull), errors.Is(err, ErrQueueTimeout):
			w.Header().Set("Retry-After", strconv.Itoa(int(s.adm.retryAfter().Seconds())))
			s.writeError(w, r, http.StatusTooManyRequests, "too_many_requests", err.Error())
		default:
			// Client went away while queued; nothing useful to write.
			s.writeError(w, r, statusClientClosedRequest, "canceled", "client closed request while queued")
		}
		return false
	}
	return true
}

// statusClientClosedRequest is nginx's convention for "client
// disconnected before the response"; it only ever reaches logs and
// metrics, never a live client.
const statusClientClosedRequest = 499

// ---- endpoints ----

// ProfileRequest is the POST /v1/profile body. Fields mirror
// core.Options with wire-friendly types. Exactly one of Model (a zoo
// key) or Graph (an inline modelfmt JSON graph) selects the model;
// inline graphs pass the static verifier before admission, so a
// corrupt one is rejected with 400 invalid_model and never consumes
// an execution slot.
type ProfileRequest struct {
	Model            string          `json:"model,omitempty"`
	Graph            json.RawMessage `json:"graph,omitempty"`
	Platform         string          `json:"platform"`
	Backend          string          `json:"backend,omitempty"`
	Batch            int             `json:"batch,omitempty"`
	DType            string          `json:"dtype,omitempty"`
	Mode             string          `json:"mode,omitempty"`
	Seed             uint64          `json:"seed,omitempty"`
	GPUClockMHz      int             `json:"gpu_clock_mhz,omitempty"`
	EMCClockMHz      int             `json:"emc_clock_mhz,omitempty"`
	GPUCapacity      float64         `json:"gpu_capacity,omitempty"`
	CPUClusters      int             `json:"cpu_clusters,omitempty"`
	MeasuredRoofline bool            `json:"measured_roofline,omitempty"`
	IgnoreSupport    bool            `json:"ignore_support,omitempty"`
}

// validate resolves the request into core.Options, answering the
// envelope itself on failure (the *Server receiver is for error
// writing only).
func (s *Server) validateProfile(w http.ResponseWriter, r *http.Request, req ProfileRequest) (core.Options, bool) {
	var zero core.Options
	if req.Model == "" && len(req.Graph) == 0 {
		s.writeError(w, r, http.StatusBadRequest, "bad_request", "model or graph is required")
		return zero, false
	}
	if req.Model != "" && len(req.Graph) > 0 {
		s.writeError(w, r, http.StatusBadRequest, "bad_request", "model and graph are mutually exclusive")
		return zero, false
	}
	var info models.Info
	var inline *graph.Graph
	if len(req.Graph) > 0 {
		g, ok := s.decodeGraph(w, r, req.Graph)
		if !ok {
			return zero, false
		}
		inline = g
	} else {
		var ok bool
		info, ok = models.Lookup(req.Model)
		if !ok {
			s.writeError(w, r, http.StatusNotFound, "unknown_model",
				fmt.Sprintf("unknown model %q (GET /v1/models lists the zoo)", req.Model))
			return zero, false
		}
	}
	if req.Platform == "" {
		s.writeError(w, r, http.StatusBadRequest, "bad_request", "platform is required")
		return zero, false
	}
	plat, ok := hardware.Lookup(req.Platform)
	if !ok {
		s.writeError(w, r, http.StatusNotFound, "unknown_platform",
			fmt.Sprintf("unknown platform %q (GET /v1/platforms lists them)", req.Platform))
		return zero, false
	}
	if req.Backend != "" {
		if _, err := backend.Get(req.Backend); err != nil {
			s.writeError(w, r, http.StatusNotFound, "unknown_backend", err.Error())
			return zero, false
		}
	}
	if req.Batch < 0 {
		s.writeError(w, r, http.StatusBadRequest, "bad_request", "batch must be >= 0")
		return zero, false
	}
	mode, err := core.ParseMode(req.Mode)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, "bad_request", err.Error())
		return zero, false
	}
	var dt graph.DataType
	if req.DType != "" {
		dt, err = graph.ParseDataType(req.DType)
		if err != nil {
			s.writeError(w, r, http.StatusBadRequest, "bad_request", err.Error())
			return zero, false
		}
	}
	if !req.IgnoreSupport && inline == nil && !plat.Supports(info.Type) {
		s.writeError(w, r, http.StatusUnprocessableEntity, "unsupported",
			fmt.Sprintf("platform %s does not support %s models (set ignore_support to try anyway)", plat.Key, info.Type))
		return zero, false
	}
	clusters := req.CPUClusters
	if clusters == 0 {
		clusters = 1
	}
	return core.Options{
		Model:    req.Model,
		Graph:    inline,
		Platform: req.Platform,
		Backend:  req.Backend,
		Batch:    req.Batch,
		DType:    dt,
		Mode:     mode,
		Seed:     req.Seed,
		Clocks: hardware.Clocks{
			GPUMHz:      req.GPUClockMHz,
			EMCMHz:      req.EMCClockMHz,
			GPUCapacity: req.GPUCapacity,
			CPUClusters: clusters,
		},
		MeasuredRoofline: req.MeasuredRoofline,
		IgnoreSupport:    req.IgnoreSupport,
	}, true
}

// decodeGraph strictly decodes an inline model graph and runs the
// static verifier over it, answering 400 itself on failure. The
// whole defect list (not just the first) rides in the envelope's
// details so a client can fix a corrupt export in one round trip.
func (s *Server) decodeGraph(w http.ResponseWriter, r *http.Request, raw json.RawMessage) (*graph.Graph, bool) {
	g := &graph.Graph{}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(g); err != nil {
		s.writeError(w, r, http.StatusBadRequest, "bad_request", "malformed graph: "+err.Error())
		return nil, false
	}
	if g.Tensors == nil {
		g.Tensors = map[string]*graph.Tensor{}
	}
	if g.Name == "" {
		g.Name = "inline"
	}
	if errs := g.ValidateAll(); len(errs) > 0 {
		s.writeErrorDetails(w, r, http.StatusBadRequest, "invalid_model",
			fmt.Sprintf("model graph failed static verification with %d defect(s)", len(errs)), errs)
		return nil, false
	}
	// Structural soundness doesn't guarantee the shapes compose; run
	// inference on a scratch clone so semantic defects also answer 400
	// before the request takes an execution slot.
	if err := g.Clone().InferShapes(); err != nil {
		s.writeError(w, r, http.StatusBadRequest, "invalid_model", "shape inference failed: "+err.Error())
		return nil, false
	}
	return g, true
}

func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request) {
	if !s.requireMethod(w, r, http.MethodPost) {
		return
	}
	var req ProfileRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	opts, ok := s.validateProfile(w, r, req)
	if !ok {
		return
	}
	if !s.admit(w, r) {
		return
	}
	defer s.adm.release()

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	report, outcome, err := s.sess.ProfileOutcome(ctx, opts)
	if err != nil {
		if stale, ok := s.staleFallback(r, opts, err); ok {
			s.metrics.degraded.Inc()
			w.Header().Set("X-Cache", "stale")
			w.Header().Set("X-Degraded", "stale-report")
			// Degraded responses are replays of old runs; persisting
			// them would pollute history with duplicates.
			s.writeProfileReport(w, r, ctx, stale, false)
			return
		}
		s.writeProfilingError(w, r, err)
		return
	}
	w.Header().Set("X-Cache", string(outcome))
	// Only cache misses executed the pipeline and produced a new
	// result; hits and dedups would store the same report again.
	s.writeProfileReport(w, r, ctx, report, outcome == profsession.OutcomeMiss)
}

// writeProfileReport renders a profile response, honoring ?trace=1.
// The report is marshaled exactly once: the bytes on the wire are the
// bytes handed to the history store (the differential suite asserts a
// stored report reads back byte-identical to the response).
func (s *Server) writeProfileReport(w http.ResponseWriter, r *http.Request, ctx context.Context, report *core.Report, persist bool) {
	data, err := json.Marshal(report)
	if err != nil {
		s.writeError(w, r, http.StatusInternalServerError, "internal", "encoding report failed: "+err.Error())
		return
	}
	if persist {
		s.persistReport(report, data)
	}
	if r.URL.Query().Get("trace") == "1" {
		s.writeJSON(w, http.StatusOK, TracedProfileResponse{
			Report: data,
			Trace:  chromeTrace(ctx),
		})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(append(data, '\n'))
}

// staleFallback decides whether a failed live profile may degrade to
// the session's last-known-good report. The policy (no degrading of
// caller bugs or cancelled requests) lives in
// profsession.FallbackFor, shared with the in-process workload
// target; the HTTP edge only adds its own gone-client check.
func (s *Server) staleFallback(r *http.Request, opts core.Options, err error) (*core.Report, bool) {
	if r.Context().Err() != nil {
		return nil, false
	}
	return s.sess.FallbackFor(opts, err)
}

// TracedProfileResponse is the POST /v1/profile?trace=1 body: the
// report plus the request's pipeline trace in the Chrome trace-event
// format (load the trace value in Perfetto / chrome://tracing).
type TracedProfileResponse struct {
	// Report carries the already-marshaled core.Report (raw so the
	// report bytes match the untraced response exactly).
	Report json.RawMessage `json:"report"`
	Trace  json.RawMessage `json:"trace,omitempty"`
}

// chromeTrace snapshots the request's tracer as Chrome trace JSON
// (nil when the request is untraced — only spans finished so far are
// included, which at response time is the whole pipeline).
func chromeTrace(ctx context.Context) json.RawMessage {
	tr := obs.TracerFrom(ctx)
	if tr == nil {
		return nil
	}
	raw, err := tr.Snapshot().ChromeJSON()
	if err != nil {
		return nil
	}
	return raw
}

// SweepRequest is the POST /v1/sweep body.
type SweepRequest struct {
	Model string `json:"model"`
	Mode  string `json:"mode,omitempty"`
}

// SweepResponse is the POST /v1/sweep result.
type SweepResponse struct {
	Model   string                `json:"model"`
	Mode    core.Mode             `json:"mode"`
	Results []core.PlatformResult `json:"results"`
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if !s.requireMethod(w, r, http.MethodPost) {
		return
	}
	var req SweepRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if req.Model == "" {
		s.writeError(w, r, http.StatusBadRequest, "bad_request", "model is required")
		return
	}
	if _, ok := models.Lookup(req.Model); !ok {
		s.writeError(w, r, http.StatusNotFound, "unknown_model",
			fmt.Sprintf("unknown model %q (GET /v1/models lists the zoo)", req.Model))
		return
	}
	mode, err := core.ParseMode(req.Mode)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	if !s.admit(w, r) {
		return
	}
	defer s.adm.release()

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	results, err := core.PlatformSweepWith(ctx, req.Model, mode, s.sess.ProfileCtx)
	if err != nil {
		s.writeProfilingError(w, r, err)
		return
	}
	s.writeJSON(w, http.StatusOK, SweepResponse{Model: req.Model, Mode: mode, Results: results})
}

// writeProfilingError maps a pipeline failure to a response: deadline →
// 504, client gone → 499 (log-only), a model-graph verification error
// anywhere in the chain → 400 invalid_model, an open circuit → 503
// circuit_open with Retry-After, a transient failure that survived the
// retry budget → 503 upstream_transient with Retry-After, anything
// else → 500.
func (s *Server) writeProfilingError(w http.ResponseWriter, r *http.Request, err error) {
	if verr, ok := graph.AsValidationError(err); ok {
		s.writeErrorDetails(w, r, http.StatusBadRequest, "invalid_model", err.Error(),
			[]*graph.ValidationError{verr})
		return
	}
	var coe *profsession.CircuitOpenError
	switch {
	case errors.As(err, &coe):
		setRetryAfter(w, coe.RetryAfter)
		s.writeError(w, r, http.StatusServiceUnavailable, "circuit_open", err.Error())
	case errors.Is(err, context.DeadlineExceeded):
		s.writeError(w, r, http.StatusGatewayTimeout, "timeout",
			fmt.Sprintf("profiling exceeded the %s request budget", s.cfg.RequestTimeout))
	case errors.Is(err, context.Canceled):
		s.writeError(w, r, statusClientClosedRequest, "canceled", "client closed request")
	case faults.IsTransient(err):
		setRetryAfter(w, time.Second)
		s.writeError(w, r, http.StatusServiceUnavailable, "upstream_transient",
			"profiling failed transiently; retrying may succeed: "+err.Error())
	default:
		s.writeError(w, r, http.StatusInternalServerError, "internal", err.Error())
	}
}

// setRetryAfter sets the Retry-After header to d rounded up to whole
// seconds (the header has one-second resolution; the floor is 1).
func setRetryAfter(w http.ResponseWriter, d time.Duration) {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
}

// ModelsResponse is the GET /v1/models body.
type ModelsResponse struct {
	Models []models.Info `json:"models"`
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	if !s.requireMethod(w, r, http.MethodGet) {
		return
	}
	s.writeJSON(w, http.StatusOK, ModelsResponse{Models: models.List()})
}

// PlatformsResponse is the GET /v1/platforms body.
type PlatformsResponse struct {
	Platforms []hardware.Info `json:"platforms"`
}

func (s *Server) handlePlatforms(w http.ResponseWriter, r *http.Request) {
	if !s.requireMethod(w, r, http.MethodGet) {
		return
	}
	resp := PlatformsResponse{}
	for _, p := range hardware.List() {
		resp.Platforms = append(resp.Platforms, p.Describe())
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// HealthzResponse is the GET /healthz body: liveness plus the history
// store's status, so a probe can tell "healthy but not recording" from
// "recording and current".
type HealthzResponse struct {
	Status string      `json:"status"`
	Store  StoreHealth `json:"store"`
}

// StoreHealth summarizes the history store for /healthz.
type StoreHealth struct {
	Enabled  bool `json:"enabled"`
	Segments int  `json:"segments,omitempty"`
	Records  int  `json:"records,omitempty"`
	// LastAppendAgeSeconds is the age of the newest stored record
	// (-1 when the store is enabled but empty).
	LastAppendAgeSeconds float64 `json:"last_append_age_seconds,omitempty"`
	// DroppedWrites counts history records lost to a full write queue.
	DroppedWrites int64 `json:"dropped_writes,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if !s.requireMethod(w, r, http.MethodGet) {
		return
	}
	resp := HealthzResponse{Status: "ok"}
	if s.hist != nil {
		st := s.hist.Stats()
		resp.Store = StoreHealth{
			Enabled:              true,
			Segments:             st.Segments,
			Records:              st.Records,
			LastAppendAgeSeconds: -1,
			DroppedWrites:        s.histW.Dropped(),
		}
		if !st.LastAppend.IsZero() {
			resp.Store.LastAppendAgeSeconds = time.Since(st.LastAppend).Seconds()
		}
	}
	if s.draining.Load() {
		resp.Status = "draining"
		s.writeJSON(w, http.StatusServiceUnavailable, resp)
		return
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if !s.requireMethod(w, r, http.MethodGet) {
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	s.metrics.reg.WritePrometheus(w)
}

// TracesResponse is the GET /debug/traces body: the most recent
// profiling-request traces, newest first.
type TracesResponse struct {
	// Capacity is the ring's retention bound; Total counts every trace
	// ever recorded (including evicted ones).
	Capacity int        `json:"capacity"`
	Total    uint64     `json:"total"`
	Traces   []obsTrace `json:"traces"`
}

// obsTrace is one ring entry with its span data and a summary line.
type obsTrace struct {
	Name       string         `json:"name"`
	Began      time.Time      `json:"began"`
	DurationNS time.Duration  `json:"duration_ns"`
	SpanCount  int            `json:"span_count"`
	Dropped    int            `json:"dropped,omitempty"`
	Spans      []obs.SpanData `json:"spans"`
}

func (s *Server) handleDebugTraces(w http.ResponseWriter, r *http.Request) {
	if !s.requireMethod(w, r, http.MethodGet) {
		return
	}
	resp := TracesResponse{
		Capacity: s.traces.Capacity(),
		Total:    s.traces.Total(),
		Traces:   []obsTrace{},
	}
	for _, t := range s.traces.Snapshot() {
		resp.Traces = append(resp.Traces, obsTrace{
			Name:       t.Name,
			Began:      t.Began,
			DurationNS: t.Duration(),
			SpanCount:  len(t.Spans),
			Dropped:    t.Dropped,
			Spans:      t.Spans,
		})
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// DebugHandler returns the opt-in debug mux: net/http/pprof plus the
// trace ring. It is never mounted on the public mux — proofd serves it
// only when started with -debug-addr, on a separate (private) listener.
func (s *Server) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/traces", s.handleDebugTraces)
	return mux
}

// Registry returns the shared metrics registry.
func (s *Server) Registry() *obs.Registry { return s.metrics.reg }

// ---- lifecycle ----

// ListenAndServe binds addr and serves until ctx is cancelled, then
// drains gracefully (see Serve).
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.log.Info("proofd listening", "addr", ln.Addr().String())
	return s.Serve(ctx, ln)
}

// Serve serves on ln until ctx is cancelled, then shuts down
// gracefully: the listener closes, endpoints start failing fast with
// 503, and in-flight requests get up to ShutdownTimeout to finish.
// Returns nil on a clean drain, the shutdown context's error when the
// deadline forces connections to abort.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	// The history writer drains with the server: pending appends land
	// on disk and the index flushes before Serve returns.
	defer s.closeHistory()
	hs := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	s.draining.Store(true)
	s.log.Info("draining", "timeout", s.cfg.ShutdownTimeout.String())
	// The drain deadline must be detached: the serve ctx is already
	// canceled — it is the reason we are shutting down.
	//lint:ignore ctxflow drain deadline outlives the canceled serve ctx
	sctx, cancel := context.WithTimeout(context.Background(), s.cfg.ShutdownTimeout)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		s.log.Error("drain deadline exceeded, aborting connections", "err", err.Error())
		hs.Close()
		return err
	}
	s.log.Info("drained")
	return nil
}
