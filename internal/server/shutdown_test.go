package server

import (
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"proof/internal/core"
	"proof/internal/profsession"
)

// serveOnLoopback starts s.Serve on an ephemeral loopback listener and
// returns the base URL, the cancel that triggers the drain, and the
// channel carrying Serve's return value.
func serveOnLoopback(t *testing.T, s *Server) (url string, shutdown context.CancelFunc, done chan error) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done = make(chan error, 1)
	exited := make(chan struct{})
	go func() {
		done <- s.Serve(ctx, ln) // buffered: never blocks
		close(exited)
	}()
	t.Cleanup(func() {
		cancel()
		select {
		case <-exited:
		case <-time.After(20 * time.Second):
			t.Error("server did not exit during cleanup")
		}
	})
	return "http://" + ln.Addr().String(), cancel, done
}

// TestGracefulShutdownDrains puts a slow profile in flight, triggers
// shutdown, and asserts the serving contract: new work is refused, the
// in-flight request still completes, and Serve returns a clean drain.
func TestGracefulShutdownDrains(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	sess := profsession.NewWithProfiler(0, func(ctx context.Context, opts core.Options) (*core.Report, error) {
		close(started)
		select {
		case <-release:
			return stubReport(opts), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	})
	s := New(Config{Session: sess, Logger: quietLogger(), ShutdownTimeout: 15 * time.Second})
	url, shutdown, done := serveOnLoopback(t, s)

	// Slow request in flight.
	type reply struct {
		status int
		body   string
		err    error
	}
	replies := make(chan reply, 1)
	go func() {
		resp, err := http.Post(url+"/v1/profile", "application/json",
			strings.NewReader(`{"model":"resnet-50","platform":"a100"}`))
		if err != nil {
			replies <- reply{err: err}
			return
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		replies <- reply{status: resp.StatusCode, body: string(body)}
	}()
	<-started

	shutdown()
	waitFor(t, "drain flag", func() bool { return s.draining.Load() })

	// New work must be refused while draining: either the listener is
	// already closed (dial error) or the fail-fast path answers 503.
	resp, err := http.Post(url+"/v1/profile", "application/json",
		strings.NewReader(`{"model":"resnet-50","platform":"a100","seed":9}`))
	if err == nil {
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("request during drain got %d, want refusal (503 or connection error)", resp.StatusCode)
		}
		resp.Body.Close()
	}

	// Serve must still be waiting on the in-flight request.
	select {
	case err := <-done:
		t.Fatalf("Serve returned %v before the in-flight request finished", err)
	case <-time.After(50 * time.Millisecond):
	}

	close(release)
	r := <-replies
	if r.err != nil {
		t.Fatalf("in-flight request failed during drain: %v", r.err)
	}
	if r.status != 200 {
		t.Fatalf("in-flight request got %d during drain (body %s)", r.status, r.body)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve = %v, want clean drain", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after the drain completed")
	}
}

// TestShutdownHonorsDeadline pins the other half of the contract: a
// request that never finishes cannot hold shutdown hostage past
// ShutdownTimeout.
func TestShutdownHonorsDeadline(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	defer close(release) // let the stuck handler goroutine exit after the test
	sess := profsession.NewWithProfiler(0, func(ctx context.Context, opts core.Options) (*core.Report, error) {
		close(started)
		<-release
		return stubReport(opts), nil
	})
	s := New(Config{Session: sess, Logger: quietLogger(), ShutdownTimeout: 100 * time.Millisecond})
	url, shutdown, done := serveOnLoopback(t, s)

	go func() {
		resp, err := http.Post(url+"/v1/profile", "application/json",
			strings.NewReader(`{"model":"resnet-50","platform":"a100"}`))
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-started

	begin := time.Now()
	shutdown()
	select {
	case err := <-done:
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("Serve = %v, want context.DeadlineExceeded", err)
		}
		if took := time.Since(begin); took > 5*time.Second {
			t.Errorf("deadline-bounded shutdown took %v", took)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("shutdown did not honor its deadline")
	}
}
