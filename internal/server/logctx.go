package server

import (
	"context"
	"log/slog"

	"proof/internal/obs"
)

// ctxHandler is a slog.Handler wrapper that injects per-request
// correlation attributes from the context: the request ID assigned by
// the middleware and the current obs span ID. Any context-aware log
// call (InfoContext and friends) anywhere under a request handler then
// carries both, so log lines join up with traces without every call
// site threading IDs by hand.
type ctxHandler struct {
	slog.Handler
}

func (h ctxHandler) Handle(ctx context.Context, rec slog.Record) error {
	if id := requestID(ctx); id != "" {
		rec.AddAttrs(slog.String("request_id", id))
	}
	if sp := obs.SpanFrom(ctx); sp != nil {
		rec.AddAttrs(slog.Uint64("span_id", sp.ID()))
	}
	return h.Handler.Handle(ctx, rec)
}

func (h ctxHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return ctxHandler{h.Handler.WithAttrs(attrs)}
}

func (h ctxHandler) WithGroup(name string) slog.Handler {
	return ctxHandler{h.Handler.WithGroup(name)}
}
