package server

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// BenchmarkServerProfileCacheHit measures the end-to-end HTTP latency
// of the service hot path: POST /v1/profile answered from the session
// report cache (admission, routing, cache-hit deep copy, JSON
// encoding) — the number a capacity plan for repeated-configuration
// traffic starts from.
func BenchmarkServerProfileCacheHit(b *testing.B) {
	s := New(Config{Logger: quietLogger()})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const body = `{"model":"mobilenetv2-0.5","platform":"a100","batch":8,"seed":1}`
	// Prime the cache so every measured iteration is a hit.
	resp, err := http.Post(ts.URL+"/v1/profile", "application/json", strings.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		b.Fatalf("prime request: status %d", resp.StatusCode)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(ts.URL+"/v1/profile", "application/json", strings.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			b.Fatalf("status %d", resp.StatusCode)
		}
		if c := resp.Header.Get("X-Cache"); c != "hit" {
			b.Fatalf("X-Cache = %q, want hit", c)
		}
	}
}
