package server

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"proof/internal/core"
	"proof/internal/profsession"
)

// waitFor polls cond until true or the deadline, failing the test on
// timeout — the tests' only synchronization with server internals.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestAdmissionBoundsConcurrency floods the server with distinct slow
// requests and asserts, from inside the admission hook, that the
// in-flight bound is never exceeded; that exactly the queue capacity
// waits; and that the overflow is shed with 429 + Retry-After.
func TestAdmissionBoundsConcurrency(t *testing.T) {
	const (
		maxInflight = 2
		maxQueue    = 2
		clients     = 10
	)
	release := make(chan struct{})
	var executed atomic.Int64
	sess := profsession.NewWithProfiler(0, func(ctx context.Context, opts core.Options) (*core.Report, error) {
		executed.Add(1)
		select {
		case <-release:
			return stubReport(opts), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	})
	s, ts := newTestServer(t, Config{
		Session:     sess,
		MaxInflight: maxInflight,
		MaxQueue:    maxQueue,
		QueueWait:   30 * time.Second, // queued requests must survive until release
	})
	var boundViolations atomic.Int64
	s.adm.acquired = func(inflight int64) {
		if inflight > maxInflight {
			boundViolations.Add(1)
		}
	}

	type result struct {
		status     int
		retryAfter string
	}
	results := make(chan result, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Distinct seeds defeat singleflight so every admitted
			// request occupies a slot with its own execution.
			body := fmt.Sprintf(`{"model":"resnet-50","platform":"a100","seed":%d}`, i)
			resp, err := http.Post(ts.URL+"/v1/profile", "application/json", strings.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			results <- result{resp.StatusCode, resp.Header.Get("Retry-After")}
		}(i)
	}

	// Steady state under overload: slots full, queue full, the rest
	// already shed.
	waitFor(t, "slots full", func() bool { return s.adm.inflight.Load() == maxInflight })
	waitFor(t, "queue full", func() bool { return s.adm.queued.Load() == maxQueue })
	waitFor(t, "overflow shed", func() bool {
		return s.adm.rejected.Load() == clients-maxInflight-maxQueue
	})
	close(release)
	wg.Wait()
	close(results)

	var ok200, tooMany int
	for r := range results {
		switch r.status {
		case 200:
			ok200++
		case 429:
			tooMany++
			if r.retryAfter == "" {
				t.Error("429 response missing Retry-After")
			}
		default:
			t.Errorf("unexpected status %d", r.status)
		}
	}
	if ok200 != maxInflight+maxQueue || tooMany != clients-maxInflight-maxQueue {
		t.Errorf("200s = %d, 429s = %d; want %d and %d", ok200, tooMany, maxInflight+maxQueue, clients-maxInflight-maxQueue)
	}
	if violations := boundViolations.Load(); violations != 0 {
		t.Errorf("admission hook observed %d in-flight bound violations", violations)
	}
	if hw := s.adm.highWater.Load(); hw != maxInflight {
		t.Errorf("in-flight high water = %d, want %d", hw, maxInflight)
	}
	if got := executed.Load(); got != maxInflight+maxQueue {
		t.Errorf("pipeline executions = %d, want %d", got, maxInflight+maxQueue)
	}
	waitFor(t, "slots drained", func() bool { return s.adm.inflight.Load() == 0 })
}

// TestConcurrentIdenticalRequestsDedup hammers one configuration from
// many clients at once and asserts the session collapses them into a
// single pipeline execution.
func TestConcurrentIdenticalRequestsDedup(t *testing.T) {
	const clients = 8
	var sess *profsession.Session
	var executed atomic.Int64
	sess = profsession.NewWithProfiler(0, func(ctx context.Context, opts core.Options) (*core.Report, error) {
		executed.Add(1)
		// Hold the leader open until every follower has attached to
		// this execution, so the test cannot pass by lucky timing.
		deadline := time.Now().Add(10 * time.Second)
		for sess.Stats().Dedups < clients-1 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		return stubReport(opts), nil
	})
	_, ts := newTestServer(t, Config{Session: sess, MaxInflight: clients})

	var wg sync.WaitGroup
	statuses := make(chan int, clients)
	caches := make(chan string, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/profile", "application/json",
				strings.NewReader(`{"model":"resnet-50","platform":"a100","batch":8}`))
			if err != nil {
				t.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			statuses <- resp.StatusCode
			caches <- resp.Header.Get("X-Cache")
		}()
	}
	wg.Wait()
	close(statuses)
	close(caches)

	for st := range statuses {
		if st != 200 {
			t.Errorf("status %d, want 200", st)
		}
	}
	if got := executed.Load(); got != 1 {
		t.Errorf("pipeline executions = %d, want 1 (singleflight)", got)
	}
	if d := sess.Stats().Dedups; d != clients-1 {
		t.Errorf("dedups = %d, want %d", d, clients-1)
	}
	var miss, dedup int
	for c := range caches {
		switch c {
		case "miss":
			miss++
		case "dedup":
			dedup++
		default:
			t.Errorf("unexpected X-Cache %q", c)
		}
	}
	if miss != 1 || dedup != clients-1 {
		t.Errorf("X-Cache outcomes: %d miss / %d dedup, want 1 / %d", miss, dedup, clients-1)
	}
}

// TestClientCancelPropagatesToProfiler verifies the serving promise
// that an abandoned request stops costing pipeline work: a client
// disconnect must cancel the context the profiler runs under.
func TestClientCancelPropagatesToProfiler(t *testing.T) {
	started := make(chan struct{})
	cancelled := make(chan struct{})
	sess := profsession.NewWithProfiler(0, func(ctx context.Context, opts core.Options) (*core.Report, error) {
		close(started)
		select {
		case <-ctx.Done():
			close(cancelled)
			return nil, ctx.Err()
		case <-time.After(30 * time.Second):
			return stubReport(opts), nil
		}
	})
	s, ts := newTestServer(t, Config{Session: sess})

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/profile",
		strings.NewReader(`{"model":"resnet-50","platform":"a100"}`))
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		errc <- err
	}()

	<-started
	cancel() // client walks away mid-profile

	select {
	case <-cancelled:
	case <-time.After(10 * time.Second):
		t.Fatal("profiler context was not cancelled after client disconnect")
	}
	if err := <-errc; err == nil {
		t.Error("client should observe its own cancellation")
	}
	// The aborted request must release its admission slot.
	waitFor(t, "slot release after cancel", func() bool { return s.adm.inflight.Load() == 0 })
}

// TestLoadMixedTraffic is the -race workout: a mixed population of
// identical (dedup/cache path) and distinct (admission path) requests
// against a small limiter, with the bound asserted via the hook. All
// outcomes must be 200 or a well-formed 429.
func TestLoadMixedTraffic(t *testing.T) {
	const maxInflight = 3
	var slow atomic.Int64
	sess := profsession.NewWithProfiler(0, func(ctx context.Context, opts core.Options) (*core.Report, error) {
		slow.Add(1)
		select {
		case <-time.After(5 * time.Millisecond):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return stubReport(opts), nil
	})
	s, ts := newTestServer(t, Config{
		Session:     sess,
		MaxInflight: maxInflight,
		MaxQueue:    4,
		QueueWait:   50 * time.Millisecond,
	})
	var maxSeen atomic.Int64
	s.adm.acquired = func(inflight int64) {
		for {
			m := maxSeen.Load()
			if inflight <= m || maxSeen.CompareAndSwap(m, inflight) {
				return
			}
		}
	}

	var wg sync.WaitGroup
	var ok200, tooMany, other atomic.Int64
	for i := 0; i < 40; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Every third request is identical; the rest are distinct.
			seed := i
			if i%3 == 0 {
				seed = 0
			}
			body := fmt.Sprintf(`{"model":"resnet-50","platform":"a100","seed":%d}`, seed)
			resp, err := http.Post(ts.URL+"/v1/profile", "application/json", strings.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			switch resp.StatusCode {
			case 200:
				ok200.Add(1)
			case 429:
				tooMany.Add(1)
			default:
				other.Add(1)
			}
		}(i)
	}
	wg.Wait()

	if other.Load() != 0 {
		t.Errorf("%d requests ended in unexpected statuses", other.Load())
	}
	if ok200.Load() == 0 {
		t.Error("no request succeeded under load")
	}
	if got := maxSeen.Load(); got > maxInflight {
		t.Errorf("observed %d concurrent executions, bound is %d", got, maxInflight)
	}
	if hw := s.adm.highWater.Load(); hw > maxInflight {
		t.Errorf("high water %d exceeds bound %d", hw, maxInflight)
	}
	// Under heavy shedding every identical request can get a 429, so
	// assert the cache path deterministically: two identical requests
	// after the storm — the first caches (if the storm didn't), the
	// second must hit.
	for i := 0; i < 2; i++ {
		resp := postJSON(t, ts.URL+"/v1/profile", `{"model":"resnet-50","platform":"a100","seed":0}`)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Errorf("post-storm identical request status = %d, want 200", resp.StatusCode)
		}
	}
	st := sess.Stats()
	if st.Hits+st.Dedups == 0 {
		t.Error("identical requests produced no cache hits or dedups")
	}
	t.Logf("mixed load: %d ok, %d shed; %d pipeline executions, stats %+v",
		ok200.Load(), tooMany.Load(), slow.Load(), st)
}
