package server

import (
	"context"
	"fmt"
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"
	"time"

	"proof/internal/core"
	"proof/internal/histstore"
	"proof/internal/obs"
)

// History wiring: when Config.History is set, every cache-miss profile
// (the requests that actually executed the pipeline — hits and dedups
// would only duplicate records) is appended asynchronously to the
// persistent store, and the server grows two read endpoints:
//
//	GET /v1/history  — indexed, paged queries over stored reports
//	GET /v1/drift    — roofline drift detection vs a baseline revision
//
// plus the proofd_roofline_drift{model,platform} gauge, refreshed on
// every drift evaluation.

// wireHistory attaches the store, its async writer and the history
// metric families. Called from New only when cfg.History is set.
func (s *Server) wireHistory(cfg Config) {
	s.hist = cfg.History
	s.histW = histstore.NewWriter(s.hist, cfg.HistoryQueue)
	s.histW.OnError = func(err error) {
		s.log.Error("history append failed", "err", err.Error())
	}
	if err := histstore.RegisterMetrics(cfg.Registry, s.hist, s.histW); err != nil {
		panic(err)
	}
	s.driftGauge = cfg.Registry.GaugeVec("proofd_roofline_drift",
		"1 when the (model, platform) key's latest revision drifted from baseline at the last /v1/drift evaluation, else 0.",
		"model", "platform")
}

// resolveGitRev picks the revision stamped onto stored reports: the
// configured one, else the build's vcs.revision, else "unknown" (a
// stable non-empty value so drift grouping still works).
func resolveGitRev(configured string) string {
	if configured != "" {
		return configured
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, kv := range bi.Settings {
			if kv.Key == "vcs.revision" && kv.Value != "" {
				if len(kv.Value) > 12 {
					return kv.Value[:12]
				}
				return kv.Value
			}
		}
	}
	return "unknown"
}

// wireBuildInfo registers the constant proofd_build_info gauge; its
// value is always 1 and the interesting data rides in the labels.
func wireBuildInfo(reg *obs.Registry, gitRev string) {
	reg.GaugeVec("proofd_build_info",
		"Constant 1; build identity rides in the labels.",
		"go_version", "git_rev").With(runtime.Version(), gitRev).Set(1)
}

// persistReport enqueues one freshly profiled report for history.
// data is the exact JSON the response serves — the store's read path
// returns it byte-identical.
func (s *Server) persistReport(report *core.Report, data []byte) {
	if s.histW == nil {
		return
	}
	s.histW.Enqueue(histstore.MetaFromReport(report, s.gitRev, time.Now()), data)
}

// FlushHistory blocks until every history record enqueued so far is
// on disk or ctx expires (no-op without a store). Tests call it
// before asserting store contents.
func (s *Server) FlushHistory(ctx context.Context) error {
	if s.histW != nil {
		return s.histW.Flush(ctx)
	}
	return nil
}

// closeHistory drains and stops the async writer (the store itself
// belongs to the caller who opened it), bounded by the shutdown
// timeout so a wedged disk cannot hang Serve's return.
func (s *Server) closeHistory() {
	if s.histW == nil {
		return
	}
	// Detached deadline: closeHistory runs after the serve ctx is
	// already canceled.
	//lint:ignore ctxflow the serve ctx is already canceled at this point
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.ShutdownTimeout)
	defer cancel()
	if err := s.histW.Close(ctx); err != nil {
		s.log.Error("history writer close failed", "err", err.Error())
	}
}

// HistoryResponse is the GET /v1/history body.
type HistoryResponse struct {
	Entries []HistoryEntry `json:"entries"`
	// Total counts every match before paging; Offset/Limit echo the
	// page served.
	Total  int `json:"total"`
	Offset int `json:"offset"`
	Limit  int `json:"limit"`
}

// HistoryEntry is one stored report in a history page: its record ID
// (pass back as ?id= to fetch the full report) plus the indexed meta.
type HistoryEntry struct {
	ID string `json:"id"`
	histstore.Meta
}

const (
	historyDefaultLimit = 50
	historyMaxLimit     = 500
)

func (s *Server) handleHistory(w http.ResponseWriter, r *http.Request) {
	if !s.requireMethod(w, r, http.MethodGet) {
		return
	}
	if s.hist == nil {
		s.writeError(w, r, http.StatusServiceUnavailable, "history_disabled",
			"no history store configured (start proofd with -store-dir)")
		return
	}
	q := r.URL.Query()

	// ?id= fetches one stored report verbatim — the bytes proofd
	// originally served, straight off the segment.
	if id := q.Get("id"); id != "" {
		_, body, err := s.hist.GetID(id)
		if err != nil {
			s.writeError(w, r, http.StatusNotFound, "unknown_record", err.Error())
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write(append(body, '\n'))
		return
	}

	query := histstore.Query{
		Model:    q.Get("model"),
		Platform: q.Get("platform"),
		GitRev:   q.Get("git_rev"),
		Limit:    historyDefaultLimit,
	}
	var ok bool
	if query.Since, ok = s.parseTimeParam(w, r, q.Get("since"), "since"); !ok {
		return
	}
	if query.Until, ok = s.parseTimeParam(w, r, q.Get("until"), "until"); !ok {
		return
	}
	if query.Offset, ok = s.parseIntParam(w, r, q.Get("offset"), "offset", 0); !ok {
		return
	}
	if query.Limit, ok = s.parseIntParam(w, r, q.Get("limit"), "limit", historyDefaultLimit); !ok {
		return
	}
	if query.Limit > historyMaxLimit {
		query.Limit = historyMaxLimit
	}
	entries, total, err := s.hist.Query(query)
	if err != nil {
		s.writeError(w, r, http.StatusInternalServerError, "internal", err.Error())
		return
	}
	resp := HistoryResponse{Entries: make([]HistoryEntry, len(entries)), Total: total, Offset: query.Offset, Limit: query.Limit}
	for i, e := range entries {
		resp.Entries[i] = HistoryEntry{ID: e.ID, Meta: e.Meta}
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleDrift(w http.ResponseWriter, r *http.Request) {
	if !s.requireMethod(w, r, http.MethodGet) {
		return
	}
	if s.hist == nil {
		s.writeError(w, r, http.StatusServiceUnavailable, "history_disabled",
			"no history store configured (start proofd with -store-dir)")
		return
	}
	q := r.URL.Query()
	opts := histstore.DriftOptions{
		BaselineGitRev:   q.Get("baseline_git_rev"),
		BaselineDescHash: q.Get("baseline_descriptor_hash"),
	}
	if raw := q.Get("threshold"); raw != "" {
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil || v <= 0 || v >= 1 {
			s.writeError(w, r, http.StatusBadRequest, "bad_request",
				fmt.Sprintf("threshold must be a relative change in (0, 1), got %q", raw))
			return
		}
		opts.RelThreshold = v
	}
	metas, err := s.hist.Metas(histstore.Query{Model: q.Get("model"), Platform: q.Get("platform")})
	if err != nil {
		s.writeError(w, r, http.StatusInternalServerError, "internal", err.Error())
		return
	}
	rep := histstore.ComputeDrift(metas, opts)
	for _, k := range rep.Keys {
		v := 0.0
		if k.Drifted {
			v = 1
		}
		s.driftGauge.With(k.Model, k.Platform).Set(v)
	}
	s.writeJSON(w, http.StatusOK, rep)
}

// parseTimeParam parses an optional RFC 3339 query parameter,
// answering 400 itself on a malformed value.
func (s *Server) parseTimeParam(w http.ResponseWriter, r *http.Request, raw, name string) (time.Time, bool) {
	if raw == "" {
		return time.Time{}, true
	}
	t, err := time.Parse(time.RFC3339, raw)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, "bad_request",
			fmt.Sprintf("%s must be RFC 3339 (like 2026-08-08T00:00:00Z): %v", name, err))
		return time.Time{}, false
	}
	return t, true
}

// parseIntParam parses an optional non-negative integer parameter.
func (s *Server) parseIntParam(w http.ResponseWriter, r *http.Request, raw, name string, def int) (int, bool) {
	if raw == "" {
		return def, true
	}
	v, err := strconv.Atoi(raw)
	if err != nil || v < 0 {
		s.writeError(w, r, http.StatusBadRequest, "bad_request",
			fmt.Sprintf("%s must be a non-negative integer, got %q", name, raw))
		return 0, false
	}
	return v, true
}
