package server

import (
	"context"
	"testing"

	"proof/internal/core"
	"proof/internal/profsession"
	"proof/internal/workload"
)

// TestWorkloadSmokeAgainstProofd runs the builtin closed-loop smoke
// scenario against a healthy in-process proofd over HTTP and grades
// the SLO verdict: every request must succeed (the smoke SLO declares
// zero error and degraded budgets), the contract must hold, and the
// same seed must always pin the same schedule. This is the CI gate
// that keeps the workload engine and the serving stack compatible.
func TestWorkloadSmokeAgainstProofd(t *testing.T) {
	sess := profsession.NewWithConfig(profsession.Config{
		Capacity: 64,
		Profile: func(ctx context.Context, opts core.Options) (*core.Report, error) {
			return stubReport(opts), nil
		},
	})
	s, ts := newTestServer(t, Config{
		Session:     sess,
		MaxInflight: 8,
		MaxQueue:    64,
	})

	sc, ok := workload.Builtin("smoke")
	if !ok {
		t.Fatal("smoke builtin scenario missing")
	}
	plan, err := workload.BuildPlan(sc, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := workload.Run(context.Background(), plan,
		workload.NewHTTPTarget(ts.URL), workload.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}

	verdict := workload.Grade(res, sc.SLO)
	if !verdict.Pass {
		t.Errorf("smoke verdict failed against a healthy server:\n%s", verdict.Table())
	}
	if res.Requests != int64(plan.Requests()) {
		t.Errorf("issued %d of %d planned requests", res.Requests, plan.Requests())
	}
	if res.OK != res.Requests {
		t.Errorf("healthy server produced non-ok outcomes: %+v", res)
	}

	// Same seed, same schedule — over the real HTTP path too.
	again, err := workload.BuildPlan(sc, 1)
	if err != nil {
		t.Fatal(err)
	}
	if again.Digest() != res.ScheduleDigest {
		t.Error("rebuilt plan digest differs from the executed run's")
	}

	assertNoLeakedSlots(t, s)
}
