package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"proof/internal/core"
	"proof/internal/hardware"
	"proof/internal/profsession"
)

// quietLogger drops the per-request log lines during tests.
func quietLogger() *slog.Logger {
	return slog.New(slog.NewJSONHandler(io.Discard, nil))
}

// newTestServer starts an httptest server around a Server with the
// given config (logger forced quiet) and returns both.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	cfg.Logger = quietLogger()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// stubReport is the minimal report a stub profiler returns.
func stubReport(opts core.Options) *core.Report {
	return &core.Report{
		Model:        opts.Model,
		Platform:     opts.Platform,
		Batch:        opts.Batch,
		TotalLatency: time.Millisecond,
		Throughput:   1000,
	}
}

func postJSON(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeEnvelope(t *testing.T, resp *http.Response) ErrorEnvelope {
	t.Helper()
	defer resp.Body.Close()
	var env ErrorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("error response is not an envelope: %v", err)
	}
	return env
}

// TestHandlers is the table-driven endpoint contract: status codes and
// error-envelope codes for success, bad input, unknown entities, wrong
// methods and unknown paths.
func TestHandlers(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	tests := []struct {
		name       string
		method     string
		path       string
		body       string
		wantStatus int
		wantCode   string // error envelope code ("" = success expected)
	}{
		{"profile success", "POST", "/v1/profile",
			`{"model":"mobilenetv2-0.5","platform":"a100","batch":8,"seed":1}`, 200, ""},
		{"profile measured mode", "POST", "/v1/profile",
			`{"model":"resnet-18","platform":"a100","batch":4,"mode":"measured"}`, 200, ""},
		{"profile unknown model", "POST", "/v1/profile",
			`{"model":"nope","platform":"a100"}`, 404, "unknown_model"},
		{"profile unknown platform", "POST", "/v1/profile",
			`{"model":"resnet-50","platform":"nope"}`, 404, "unknown_platform"},
		{"profile unknown backend", "POST", "/v1/profile",
			`{"model":"resnet-50","platform":"a100","backend":"nope"}`, 404, "unknown_backend"},
		{"profile missing model", "POST", "/v1/profile",
			`{"platform":"a100"}`, 400, "bad_request"},
		{"profile missing platform", "POST", "/v1/profile",
			`{"model":"resnet-50"}`, 400, "bad_request"},
		{"profile malformed JSON", "POST", "/v1/profile",
			`{"model":`, 400, "bad_request"},
		{"profile unknown field", "POST", "/v1/profile",
			`{"model":"resnet-50","platform":"a100","bogus":1}`, 400, "bad_request"},
		{"profile trailing garbage", "POST", "/v1/profile",
			`{"model":"resnet-50","platform":"a100"} trailing`, 400, "bad_request"},
		{"profile bad mode", "POST", "/v1/profile",
			`{"model":"resnet-50","platform":"a100","mode":"psychic"}`, 400, "bad_request"},
		{"profile bad dtype", "POST", "/v1/profile",
			`{"model":"resnet-50","platform":"a100","dtype":"fp7"}`, 400, "bad_request"},
		{"profile negative batch", "POST", "/v1/profile",
			`{"model":"resnet-50","platform":"a100","batch":-1}`, 400, "bad_request"},
		{"profile unsupported family", "POST", "/v1/profile",
			`{"model":"distilbert","platform":"npu3720"}`, 422, "unsupported"},
		{"profile wrong method", "GET", "/v1/profile", "", 405, "method_not_allowed"},
		{"sweep success", "POST", "/v1/sweep",
			`{"model":"mobilenetv2-0.5"}`, 200, ""},
		{"sweep unknown model", "POST", "/v1/sweep",
			`{"model":"nope"}`, 404, "unknown_model"},
		{"sweep missing model", "POST", "/v1/sweep", `{}`, 400, "bad_request"},
		{"sweep bad mode", "POST", "/v1/sweep",
			`{"model":"resnet-50","mode":"psychic"}`, 400, "bad_request"},
		{"sweep wrong method", "GET", "/v1/sweep", "", 405, "method_not_allowed"},
		{"models success", "GET", "/v1/models", "", 200, ""},
		{"models wrong method", "POST", "/v1/models", `{}`, 405, "method_not_allowed"},
		{"platforms success", "GET", "/v1/platforms", "", 200, ""},
		{"platforms wrong method", "DELETE", "/v1/platforms", "", 405, "method_not_allowed"},
		{"history without store", "GET", "/v1/history", "", 503, "history_disabled"},
		{"history wrong method", "POST", "/v1/history", `{}`, 405, "method_not_allowed"},
		{"drift without store", "GET", "/v1/drift", "", 503, "history_disabled"},
		{"drift wrong method", "PUT", "/v1/drift", `{}`, 405, "method_not_allowed"},
		{"healthz success", "GET", "/healthz", "", 200, ""},
		{"metrics success", "GET", "/metrics", "", 200, ""},
		{"metrics wrong method", "POST", "/metrics", `{}`, 405, "method_not_allowed"},
		{"unknown path", "GET", "/v1/nope", "", 404, "not_found"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			req, err := http.NewRequest(tt.method, ts.URL+tt.path, strings.NewReader(tt.body))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != tt.wantStatus {
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				t.Fatalf("status = %d, want %d (body %s)", resp.StatusCode, tt.wantStatus, body)
			}
			if resp.Header.Get("X-Request-ID") == "" {
				t.Error("missing X-Request-ID header")
			}
			if tt.wantCode == "" {
				resp.Body.Close()
				return
			}
			env := decodeEnvelope(t, resp)
			if env.Error.Code != tt.wantCode {
				t.Errorf("envelope code = %q, want %q (message %q)", env.Error.Code, tt.wantCode, env.Error.Message)
			}
			if env.Error.Message == "" {
				t.Error("envelope message is empty")
			}
			if tt.wantStatus == 405 && resp.Header.Get("Allow") == "" {
				t.Error("405 response missing Allow header")
			}
		})
	}
}

// TestProfileMatchesCore locks the service to the library: the
// /v1/profile body must be byte-identical to the JSON of core.Profile
// with the same options.
func TestProfileMatchesCore(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := postJSON(t, ts.URL+"/v1/profile",
		`{"model":"resnet-18","platform":"a100","batch":4,"seed":7}`)
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	got, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}

	want, err := core.Profile(core.Options{
		Model: "resnet-18", Platform: "a100", Batch: 4, Seed: 7,
		Clocks: hardware.Clocks{CPUClusters: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON = append(wantJSON, '\n')
	if !bytes.Equal(got, wantJSON) {
		t.Fatalf("service response differs from core.Profile output\nservice: %.200s\nlibrary: %.200s", got, wantJSON)
	}
}

// TestProfileCacheHeader asserts the per-request cache outcome header:
// first request a miss, repeat a hit.
func TestProfileCacheHeader(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := `{"model":"mobilenetv2-0.5","platform":"a100","batch":4}`
	r1 := postJSON(t, ts.URL+"/v1/profile", body)
	io.Copy(io.Discard, r1.Body)
	r1.Body.Close()
	if c := r1.Header.Get("X-Cache"); c != "miss" {
		t.Errorf("first request X-Cache = %q, want miss", c)
	}
	r2 := postJSON(t, ts.URL+"/v1/profile", body)
	io.Copy(io.Discard, r2.Body)
	r2.Body.Close()
	if c := r2.Header.Get("X-Cache"); c != "hit" {
		t.Errorf("second request X-Cache = %q, want hit", c)
	}
}

// TestSweepBody sanity-checks the sweep payload: one row per platform,
// supported rows ranked by descending throughput.
func TestSweepBody(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := postJSON(t, ts.URL+"/v1/sweep", `{"model":"mobilenetv2-0.5"}`)
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var sr SweepResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Results) != len(hardware.List()) {
		t.Fatalf("results = %d, want %d", len(sr.Results), len(hardware.List()))
	}
	last := -1.0
	for _, r := range sr.Results {
		if !r.Supported {
			continue
		}
		if last >= 0 && r.Throughput > last {
			t.Errorf("sweep results not sorted by throughput: %v after %v", r.Throughput, last)
		}
		last = r.Throughput
	}
}

// TestOversizedBody asserts the body cap answers 413 with the envelope.
func TestOversizedBody(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 256})
	big := `{"model":"resnet-50","platform":"a100","backend":"` + strings.Repeat("x", 1024) + `"}`
	resp := postJSON(t, ts.URL+"/v1/profile", big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", resp.StatusCode)
	}
	env := decodeEnvelope(t, resp)
	if env.Error.Code != "payload_too_large" {
		t.Errorf("envelope code = %q", env.Error.Code)
	}
}

// TestRequestTimeout asserts the per-request budget is threaded into
// the pipeline context: a profiler that never finishes turns into 504.
func TestRequestTimeout(t *testing.T) {
	sess := profsession.NewWithProfiler(0, func(ctx context.Context, opts core.Options) (*core.Report, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	})
	_, ts := newTestServer(t, Config{Session: sess, RequestTimeout: 50 * time.Millisecond})
	resp := postJSON(t, ts.URL+"/v1/profile", `{"model":"resnet-50","platform":"a100"}`)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", resp.StatusCode)
	}
	env := decodeEnvelope(t, resp)
	if env.Error.Code != "timeout" {
		t.Errorf("envelope code = %q, want timeout", env.Error.Code)
	}
}

// TestMetricsExposition asserts the metrics page carries request
// counters, histograms and the session gauges after some traffic.
func TestMetricsExposition(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	r := postJSON(t, ts.URL+"/v1/profile", `{"model":"mobilenetv2-0.5","platform":"a100","batch":4}`)
	io.Copy(io.Discard, r.Body)
	r.Body.Close()
	r = postJSON(t, ts.URL+"/v1/profile", `{"model":"nope","platform":"a100"}`)
	io.Copy(io.Discard, r.Body)
	r.Body.Close()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	for _, want := range []string{
		`proofd_requests_total{path="/v1/profile",code="200"} 1`,
		`proofd_requests_total{path="/v1/profile",code="404"} 1`,
		`proofd_request_duration_seconds_count{path="/v1/profile"} 2`,
		"proofd_session_misses_total 1",
		"proofd_session_cache_size 1",
		"proofd_inflight_profiles 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics exposition missing %q\n%s", want, text)
		}
	}
}
