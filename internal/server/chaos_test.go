package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"proof/internal/core"
	"proof/internal/faults"
	"proof/internal/profsession"
	"proof/internal/workload"
)

// scrapeMetrics fetches the /metrics page as text.
func scrapeMetrics(t *testing.T, baseURL string) string {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// metricValue extracts one series' value from an exposition page. The
// series name must match exactly, label set included; -1 means absent.
func metricValue(t *testing.T, page, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(page, "\n") {
		rest, ok := strings.CutPrefix(line, series+" ")
		if !ok {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
		if err != nil {
			t.Fatalf("series %s has unparsable value %q", series, rest)
		}
		return v
	}
	return -1
}

// assertNoLeakedSlots waits for every admission slot and pipeline
// execution to drain — a stuck counter here means a leaked slot.
func assertNoLeakedSlots(t *testing.T, s *Server) {
	t.Helper()
	waitFor(t, "admission slots to drain", func() bool {
		return s.adm.inflight.Load() == 0 && s.adm.queued.Load() == 0 &&
			s.sess.Stats().Inflight == 0
	})
}

// TestChaosStormResolvesEveryRequest drives a seeded fault storm — 30%
// transient errors plus latency spikes — through the full HTTP stack
// and asserts the resilience contract: every surviving request
// resolves as a success, a degraded-stale 200, or a structured 5xx/429
// carrying Retry-After; no admission slot or inflight execution leaks;
// and, once injection stops, every configuration profiles correctly —
// the cache never memorized a failure.
//
// The traffic itself comes from the shared workload library (the
// "chaos-storm" builtin scenario: 8 closed-loop clients x 25 requests,
// every 7th hanging up, over 3 models x 16 seeds) so the chaos suite
// and `proofload -name chaos-storm` drive byte-identical schedules.
// The HTTP target owns the contract checks the workers used to make
// inline: 200 bodies must parse and name the requested model, 429/503
// must carry Retry-After, 503 a structured envelope — any breach
// surfaces as a Result violation.
func TestChaosStormResolvesEveryRequest(t *testing.T) {
	inj := faults.New(faults.Config{
		Seed:           42,
		ErrorRate:      0.3,
		TransientShare: 1.0,
		LatencyRate:    0.1,
		Latency:        2 * time.Millisecond,
	})
	profile := faults.Wrap(inj, func(ctx context.Context, opts core.Options) (*core.Report, error) {
		return stubReport(opts), nil
	})
	sess := profsession.NewWithConfig(profsession.Config{
		Capacity: 64,
		Profile:  profile,
		Retry: profsession.RetryPolicy{
			Attempts: 4,
			Base:     time.Millisecond,
			MaxDelay: 4 * time.Millisecond,
			Jitter:   0.2,
		},
		Breaker: profsession.BreakerConfig{Threshold: 8, Cooldown: 50 * time.Millisecond},
	})
	s, ts := newTestServer(t, Config{
		Session:        sess,
		MaxInflight:    4,
		MaxQueue:       64,
		QueueWait:      10 * time.Second,
		RequestTimeout: 10 * time.Second,
	})

	sc, ok := workload.Builtin("chaos-storm")
	if !ok {
		t.Fatal("chaos-storm builtin scenario missing")
	}
	plan, err := workload.BuildPlan(sc, 42)
	if err != nil {
		t.Fatal(err)
	}
	res, err := workload.Run(context.Background(), plan,
		workload.NewHTTPTarget(ts.URL), workload.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Error(v)
	}
	if extra := res.ViolationCount - int64(len(res.Violations)); extra > 0 {
		t.Errorf("... and %d more contract violation(s)", extra)
	}
	if res.OK == 0 {
		t.Error("storm produced no successful responses")
	}
	t.Logf("storm: %d ok, %d degraded, %d shed, %d failed, %d canceled; injector %+v",
		res.OK, res.Degraded, res.Shed, res.Failed, res.Canceled, inj.Stats())

	// Cancelled clients and failures must not leak admission slots or
	// inflight executions.
	assertNoLeakedSlots(t, s)

	// With injection off, every configuration in the storm's mix must
	// profile cleanly: whatever the storm cached, it never cached a
	// failure.
	inj.Disable()
	for _, shape := range plan.Distinct() {
		body := fmt.Sprintf(`{"model":%q,"platform":%q,"batch":%d,"seed":%d}`,
			shape.Model, shape.Platform, shape.Batch, shape.Seed)
		resp := postJSON(t, ts.URL+"/v1/profile", body)
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("post-storm profile failed (%d): %.120s", resp.StatusCode, raw)
		}
		var rep struct {
			Model string `json:"model"`
		}
		if err := json.Unmarshal(raw, &rep); err != nil {
			t.Fatalf("post-storm report does not parse: %v", err)
		}
		if rep.Model != shape.Model {
			t.Errorf("cache served the wrong report: asked %q, got model %q", shape.Model, rep.Model)
		}
	}

	// The retry machinery must be visible on /metrics.
	page := scrapeMetrics(t, ts.URL)
	if v := metricValue(t, page, "proofd_session_retries_total"); v <= 0 {
		t.Errorf("proofd_session_retries_total = %v after a 30%% fault storm", v)
	}
}

// TestChaosBreakerLifecycle walks one (model, platform) circuit
// through its whole life over HTTP: consecutive failures open it,
// open fast-fails with a structured 503 circuit_open + Retry-After,
// the cooldown admits a half-open probe, and a probe success closes
// it again — each state visible in /metrics.
func TestChaosBreakerLifecycle(t *testing.T) {
	const cooldown = 60 * time.Millisecond
	var failing atomic.Bool
	failing.Store(true)
	sess := profsession.NewWithConfig(profsession.Config{
		Capacity: 8,
		Profile: func(ctx context.Context, opts core.Options) (*core.Report, error) {
			if failing.Load() {
				return nil, faults.Transient(errors.New("backend down"))
			}
			return stubReport(opts), nil
		},
		Breaker: profsession.BreakerConfig{Threshold: 3, Cooldown: cooldown},
	})
	_, ts := newTestServer(t, Config{Session: sess})
	body := `{"model":"resnet-50","platform":"a100","batch":8,"seed":1}`

	// Three consecutive failures: transparent 503s, then the circuit
	// opens.
	for i := 0; i < 3; i++ {
		resp := postJSON(t, ts.URL+"/v1/profile", body)
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("failure %d: status %d, want 503", i, resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Errorf("failure %d: transient 503 without Retry-After", i)
		}
		if env := decodeEnvelope(t, resp); env.Error.Code != "upstream_transient" {
			t.Errorf("failure %d: code %q, want upstream_transient", i, env.Error.Code)
		}
	}

	// Open circuit: fast structured rejection without touching the
	// profiler.
	resp := postJSON(t, ts.URL+"/v1/profile", body)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("open circuit: status %d, want 503", resp.StatusCode)
	}
	retryAfter := resp.Header.Get("Retry-After")
	if retryAfter == "" {
		t.Error("open circuit 503 without Retry-After")
	}
	if secs, err := strconv.Atoi(retryAfter); err != nil || secs < 1 {
		t.Errorf("Retry-After = %q, want a positive integer of seconds", retryAfter)
	}
	if env := decodeEnvelope(t, resp); env.Error.Code != "circuit_open" {
		t.Errorf("open circuit code %q, want circuit_open", env.Error.Code)
	}
	page := scrapeMetrics(t, ts.URL)
	if v := metricValue(t, page, `proofd_session_breaker_state{key="resnet-50|a100"}`); v != 2 {
		t.Errorf("open breaker_state = %v, want 2", v)
	}
	if v := metricValue(t, page, "proofd_session_breaker_opens_total"); v < 1 {
		t.Errorf("breaker_opens_total = %v, want >= 1", v)
	}
	if v := metricValue(t, page, "proofd_session_breaker_fast_fails_total"); v < 1 {
		t.Errorf("breaker_fast_fails_total = %v, want >= 1", v)
	}

	// After the cooldown the half-open probe runs for real; with the
	// backend recovered it succeeds and closes the circuit.
	failing.Store(false)
	time.Sleep(cooldown + 20*time.Millisecond)
	resp = postJSON(t, ts.URL+"/v1/profile", body)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("half-open probe: status %d, want 200", resp.StatusCode)
	}
	page = scrapeMetrics(t, ts.URL)
	if v := metricValue(t, page, `proofd_session_breaker_state{key="resnet-50|a100"}`); v != 0 {
		t.Errorf("closed breaker_state = %v, want 0", v)
	}
	if v := metricValue(t, page, "proofd_session_breaker_closes_total"); v < 1 {
		t.Errorf("breaker_closes_total = %v, want >= 1", v)
	}
}

// TestChaosDegradedStaleResponse covers graceful degradation: after a
// configuration has succeeded once, a live failure serves the
// last-known-good report with X-Degraded/X-Cache headers instead of a
// 5xx — even across a cache Reset — while never-profiled
// configurations still fail loudly.
func TestChaosDegradedStaleResponse(t *testing.T) {
	var failing atomic.Bool
	sess := profsession.NewWithConfig(profsession.Config{
		Capacity: 8,
		Profile: func(ctx context.Context, opts core.Options) (*core.Report, error) {
			if failing.Load() {
				return nil, faults.Transient(errors.New("backend down"))
			}
			return stubReport(opts), nil
		},
	})
	_, ts := newTestServer(t, Config{Session: sess})
	body := `{"model":"resnet-50","platform":"a100","batch":8,"seed":1}`

	resp := postJSON(t, ts.URL+"/v1/profile", body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy profile: status %d", resp.StatusCode)
	}

	// Reset evicts the live cache; the last-known-good store survives.
	sess.Reset()
	failing.Store(true)

	resp = postJSON(t, ts.URL+"/v1/profile", body)
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded response: status %d, want 200 from stale store: %.120s",
			resp.StatusCode, raw)
	}
	if got := resp.Header.Get("X-Degraded"); got != "stale-report" {
		t.Errorf("X-Degraded = %q, want stale-report", got)
	}
	if got := resp.Header.Get("X-Cache"); got != "stale" {
		t.Errorf("X-Cache = %q, want stale", got)
	}
	var rep struct {
		Model string `json:"model"`
	}
	if err := json.Unmarshal(raw, &rep); err != nil || rep.Model != "resnet-50" {
		t.Errorf("stale report body wrong (err %v): %.120s", err, raw)
	}

	// A configuration that never succeeded has nothing to fall back to.
	resp = postJSON(t, ts.URL+"/v1/profile",
		`{"model":"resnet-18","platform":"a100","batch":8,"seed":9}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("no-stale failure: status %d, want 503", resp.StatusCode)
	}
	if env := decodeEnvelope(t, resp); env.Error.Code != "upstream_transient" {
		t.Errorf("no-stale failure code %q, want upstream_transient", env.Error.Code)
	}

	page := scrapeMetrics(t, ts.URL)
	if v := metricValue(t, page, "proofd_degraded_responses_total"); v != 1 {
		t.Errorf("proofd_degraded_responses_total = %v, want 1", v)
	}
	if v := metricValue(t, page, "proofd_session_stale_hits_total"); v < 1 {
		t.Errorf("proofd_session_stale_hits_total = %v, want >= 1", v)
	}
}

// TestChaosCancelledClientsReleaseSlots pins the slot-reclamation
// contract under the worst case: every inflight execution is stuck
// until its context dies, every client hangs up, and the server must
// return to a fully idle admission state and then serve a healthy
// request.
func TestChaosCancelledClientsReleaseSlots(t *testing.T) {
	var healthy atomic.Bool
	sess := profsession.NewWithConfig(profsession.Config{
		Capacity: 8,
		Profile: func(ctx context.Context, opts core.Options) (*core.Report, error) {
			if healthy.Load() {
				return stubReport(opts), nil
			}
			<-ctx.Done() // a hung backend: only cancellation ends it
			return nil, ctx.Err()
		},
	})
	s, ts := newTestServer(t, Config{
		Session:     sess,
		MaxInflight: 1,
		MaxQueue:    4,
		QueueWait:   10 * time.Second,
	})

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"model":"resnet-50","platform":"a100","seed":%d}`, i)
			req, _ := http.NewRequestWithContext(ctx, "POST",
				ts.URL+"/v1/profile", strings.NewReader(body))
			req.Header.Set("Content-Type", "application/json")
			if resp, err := http.DefaultClient.Do(req); err == nil {
				resp.Body.Close()
			}
		}(i)
	}
	// Let the requests hit the stuck backend / queue, then hang up.
	waitFor(t, "requests to occupy the server", func() bool {
		return s.adm.inflight.Load() >= 1
	})
	cancel()
	wg.Wait()

	assertNoLeakedSlots(t, s)

	// The freed slot serves a healthy request normally.
	healthy.Store(true)
	resp := postJSON(t, ts.URL+"/v1/profile",
		`{"model":"resnet-50","platform":"a100","seed":99}`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-cancel request: status %d, want 200", resp.StatusCode)
	}
}
