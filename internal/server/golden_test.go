package server

import (
	"bytes"
	"flag"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// update regenerates the wire-format fixtures:
//
//	go test ./internal/server -run TestGoldenAPI -update
var update = flag.Bool("update", false, "rewrite golden API body fixtures")

// goldenEndpoints pins the exact response bytes of the read-only
// listings and one deterministic profile (the same configuration
// internal/core's golden fixtures use), so the wire format cannot
// drift without showing up as a fixture diff in review.
var goldenEndpoints = []struct {
	name   string
	method string
	path   string
	body   string
}{
	{"models", "GET", "/v1/models", ""},
	{"platforms", "GET", "/v1/platforms", ""},
	{"profile_mobilenetv2-0.5_a100_s1", "POST", "/v1/profile",
		`{"model":"mobilenetv2-0.5","platform":"a100","batch":8,"seed":1}`},
}

func TestGoldenAPI(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, cfg := range goldenEndpoints {
		t.Run(cfg.name, func(t *testing.T) {
			req, err := http.NewRequest(cfg.method, ts.URL+cfg.path, strings.NewReader(cfg.body))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != 200 {
				t.Fatalf("status = %d", resp.StatusCode)
			}
			got, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", "golden", cfg.name+".json")
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to regenerate)", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("API body drifted from %s\nIf the change is intentional, regenerate with:\n  go test ./internal/server -run TestGoldenAPI -update", path)
			}
		})
	}
}
