package server

import (
	"encoding/json"
	"io"
	"testing"

	"proof/internal/graph"
)

// tinyServerGraph builds a minimal valid model for inline-graph
// requests: x -> Relu -> h -> Relu -> y.
func tinyServerGraph() *graph.Graph {
	g := graph.New("tiny-inline")
	g.AddTensor(&graph.Tensor{Name: "x", DType: graph.Float32, Shape: graph.Shape{1, 8, 16, 16}})
	g.AddTensor(&graph.Tensor{Name: "h", DType: graph.Float32})
	g.AddTensor(&graph.Tensor{Name: "y", DType: graph.Float32})
	g.AddNode(&graph.Node{Name: "relu0", OpType: "Relu", Inputs: []string{"x"}, Outputs: []string{"h"}})
	g.AddNode(&graph.Node{Name: "relu1", OpType: "Relu", Inputs: []string{"h"}, Outputs: []string{"y"}})
	g.Inputs = []string{"x"}
	g.Outputs = []string{"y"}
	return g
}

// graphBody wraps a graph into a /v1/profile request body.
func graphBody(t *testing.T, g *graph.Graph, extra string) string {
	t.Helper()
	raw, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	return `{"platform":"a100","batch":2` + extra + `,"graph":` + string(raw) + `}`
}

// TestProfileInlineGraph profiles a model supplied in the request body
// instead of by zoo key, and asserts the content-addressed cache still
// works for it.
func TestProfileInlineGraph(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := graphBody(t, tinyServerGraph(), "")

	r1 := postJSON(t, ts.URL+"/v1/profile", body)
	defer r1.Body.Close()
	if r1.StatusCode != 200 {
		b, _ := io.ReadAll(r1.Body)
		t.Fatalf("status = %d, body %s", r1.StatusCode, b)
	}
	if c := r1.Header.Get("X-Cache"); c != "miss" {
		t.Errorf("first inline request X-Cache = %q, want miss", c)
	}
	var rep struct {
		Model string `json:"model"`
		Batch int    `json:"batch"`
	}
	if err := json.NewDecoder(r1.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if rep.Model != "tiny-inline" {
		t.Errorf("report model = %q, want graph name", rep.Model)
	}
	if rep.Batch != 2 {
		t.Errorf("report batch = %d, want 2", rep.Batch)
	}

	r2 := postJSON(t, ts.URL+"/v1/profile", body)
	io.Copy(io.Discard, r2.Body)
	r2.Body.Close()
	if c := r2.Header.Get("X-Cache"); c != "hit" {
		t.Errorf("repeated inline request X-Cache = %q, want hit", c)
	}
}

// TestProfileInlineGraphRejected locks the admission contract for
// corrupt inline graphs: 400 with code invalid_model and the typed
// defect list in details, produced before any pipeline work runs.
func TestProfileInlineGraphRejected(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	dangling := tinyServerGraph()
	dangling.Nodes[0].Inputs[0] = "ghost"

	cyclic := tinyServerGraph()
	cyclic.Nodes[0].Inputs[0] = "y" // y -> relu0 -> h -> relu1 -> y

	unusedParam := tinyServerGraph()
	unusedParam.AddTensor(&graph.Tensor{Name: "w", DType: graph.Float32, Shape: graph.Shape{8}, Param: true})

	badShapes := graph.New("badmm")
	badShapes.AddTensor(&graph.Tensor{Name: "x", DType: graph.Float32, Shape: graph.Shape{1, 4}})
	badShapes.AddTensor(&graph.Tensor{Name: "w", DType: graph.Float32, Shape: graph.Shape{5, 6}, Param: true})
	badShapes.AddTensor(&graph.Tensor{Name: "y", DType: graph.Float32})
	badShapes.AddNode(&graph.Node{Name: "mm", OpType: "MatMul", Inputs: []string{"x", "w"}, Outputs: []string{"y"}})
	badShapes.Inputs = []string{"x"}
	badShapes.Outputs = []string{"y"}

	cases := []struct {
		name     string
		graph    *graph.Graph
		wantCode graph.ValidationCode // "" = no structured details expected
	}{
		{"dangling tensor", dangling, graph.ErrDanglingTensor},
		{"cycle", cyclic, graph.ErrCycle},
		{"unused param", unusedParam, graph.ErrUnusedParam},
		{"shape inference failure", badShapes, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := postJSON(t, ts.URL+"/v1/profile", graphBody(t, tc.graph, ""))
			if resp.StatusCode != 400 {
				b, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				t.Fatalf("status = %d, want 400 (body %s)", resp.StatusCode, b)
			}
			env := decodeEnvelope(t, resp)
			if env.Error.Code != "invalid_model" {
				t.Fatalf("envelope code = %q, want invalid_model", env.Error.Code)
			}
			if tc.wantCode == "" {
				return
			}
			raw, err := json.Marshal(env.Error.Details)
			if err != nil {
				t.Fatal(err)
			}
			var defects []*graph.ValidationError
			if err := json.Unmarshal(raw, &defects); err != nil {
				t.Fatalf("details are not a defect list: %v (%s)", err, raw)
			}
			found := false
			for _, d := range defects {
				if d.Code == tc.wantCode {
					found = true
				}
			}
			if !found {
				t.Errorf("details %s missing defect code %q", raw, tc.wantCode)
			}
		})
	}
}

// TestProfileGraphRequestShape covers the request-shape rules around
// the graph field itself.
func TestProfileGraphRequestShape(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	valid, err := json.Marshal(tinyServerGraph())
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name     string
		body     string
		wantCode string
	}{
		{"model and graph together", `{"model":"resnet-18","platform":"a100","graph":` + string(valid) + `}`, "bad_request"},
		{"neither model nor graph", `{"platform":"a100"}`, "bad_request"},
		{"graph with unknown field", `{"platform":"a100","graph":{"name":"x","bogus":1}}`, "bad_request"},
		{"graph of wrong JSON type", `{"platform":"a100","graph":[1,2]}`, "bad_request"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := postJSON(t, ts.URL+"/v1/profile", tc.body)
			if resp.StatusCode != 400 {
				b, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				t.Fatalf("status = %d, want 400 (body %s)", resp.StatusCode, b)
			}
			env := decodeEnvelope(t, resp)
			if env.Error.Code != tc.wantCode {
				t.Errorf("envelope code = %q, want %q (message %q)", env.Error.Code, tc.wantCode, env.Error.Message)
			}
		})
	}

	// An inline graph skips the model-family support gate (there is no
	// zoo entry to consult) but still validates the platform.
	t.Run("unknown platform still checked", func(t *testing.T) {
		resp := postJSON(t, ts.URL+"/v1/profile",
			`{"platform":"nope","graph":`+string(valid)+`}`)
		if resp.StatusCode != 404 {
			t.Fatalf("status = %d, want 404", resp.StatusCode)
		}
		env := decodeEnvelope(t, resp)
		if env.Error.Code != "unknown_platform" {
			t.Errorf("envelope code = %q", env.Error.Code)
		}
	})
}
