package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// latencyBuckets are the histogram upper bounds in seconds, spanning
// cache-hit microseconds to multi-second measured-mode profiles.
var latencyBuckets = []float64{.0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// metrics collects the server's observability counters and renders them
// in the Prometheus text exposition format. A mutex-guarded map is
// plenty at profiling-service request rates; nothing here is on the
// per-layer hot path.
type metrics struct {
	mu sync.Mutex
	// requests counts finished requests by (path, status code).
	requests map[[2]string]int64
	// histogram per path: bucket counts (cumulative at render time),
	// sum and count.
	hist map[string]*latencyHist
}

type latencyHist struct {
	buckets []int64 // len(latencyBuckets)+1; last slot is the +Inf overflow
	sum     float64
	count   int64
}

func newMetrics() *metrics {
	return &metrics{
		requests: make(map[[2]string]int64),
		hist:     make(map[string]*latencyHist),
	}
}

// observe records one finished request.
func (m *metrics) observe(path string, code int, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests[[2]string{path, fmt.Sprintf("%d", code)}]++
	h := m.hist[path]
	if h == nil {
		h = &latencyHist{buckets: make([]int64, len(latencyBuckets)+1)}
		m.hist[path] = h
	}
	secs := d.Seconds()
	i := sort.SearchFloat64s(latencyBuckets, secs)
	h.buckets[i]++
	h.sum += secs
	h.count++
}

// gauge is one point-in-time value appended by the server at render
// time (admission inflight/queue depth, session counters).
type gauge struct {
	name  string
	help  string
	typ   string // "gauge" or "counter"
	value float64
}

// write renders everything in the text exposition format, with stable
// ordering so the output is diffable.
func (m *metrics) write(w io.Writer, gauges []gauge) {
	m.mu.Lock()
	defer m.mu.Unlock()

	fmt.Fprintf(w, "# HELP proofd_requests_total Finished HTTP requests by path and status code.\n")
	fmt.Fprintf(w, "# TYPE proofd_requests_total counter\n")
	keys := make([][2]string, 0, len(m.requests))
	for k := range m.requests {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		fmt.Fprintf(w, "proofd_requests_total{path=%q,code=%q} %d\n", k[0], k[1], m.requests[k])
	}

	fmt.Fprintf(w, "# HELP proofd_request_duration_seconds Request latency by path.\n")
	fmt.Fprintf(w, "# TYPE proofd_request_duration_seconds histogram\n")
	paths := make([]string, 0, len(m.hist))
	for p := range m.hist {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		h := m.hist[p]
		var cum int64
		for i, le := range latencyBuckets {
			cum += h.buckets[i]
			fmt.Fprintf(w, "proofd_request_duration_seconds_bucket{path=%q,le=%q} %d\n", p, trimFloat(le), cum)
		}
		cum += h.buckets[len(latencyBuckets)]
		fmt.Fprintf(w, "proofd_request_duration_seconds_bucket{path=%q,le=\"+Inf\"} %d\n", p, cum)
		fmt.Fprintf(w, "proofd_request_duration_seconds_sum{path=%q} %g\n", p, h.sum)
		fmt.Fprintf(w, "proofd_request_duration_seconds_count{path=%q} %d\n", p, h.count)
	}

	for _, g := range gauges {
		fmt.Fprintf(w, "# HELP %s %s\n", g.name, g.help)
		fmt.Fprintf(w, "# TYPE %s %s\n", g.name, g.typ)
		fmt.Fprintf(w, "%s %g\n", g.name, g.value)
	}
}

// trimFloat formats a bucket bound without trailing zeros ("0.005").
func trimFloat(f float64) string {
	return fmt.Sprintf("%g", f)
}
