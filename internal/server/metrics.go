package server

import (
	"errors"
	"strconv"
	"time"

	"proof/internal/obs"
	"proof/internal/profsession"
)

// latencyBuckets are the request-latency histogram upper bounds in
// seconds, spanning cache-hit microseconds to multi-second
// measured-mode profiles.
var latencyBuckets = []float64{.0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// metrics is the server's view into the shared obs.Registry: the HTTP
// edge counters it updates per request, plus the registration of every
// gauge/counter owned elsewhere (admission control, the profiling
// session) so the whole process lands on one /metrics page.
type metrics struct {
	reg      *obs.Registry
	requests *obs.CounterVec
	duration *obs.HistogramVec
	degraded *obs.Counter
}

// wireMetrics registers the server's metric families into reg. The
// registry may be shared with (or pre-populated by) other subsystems;
// identical re-registration is idempotent by family name, but a
// conflicting one — including wiring two servers' func metrics into
// one registry — is a startup programming error and panics with the
// obs.ErrMetricConflict-wrapping error.
func wireMetrics(reg *obs.Registry, adm *admission, sess *profsession.Session) *metrics {
	m := &metrics{
		reg: reg,
		requests: reg.CounterVec("proofd_requests_total",
			"Finished HTTP requests by path and status code.", "path", "code"),
		duration: reg.HistogramVec("proofd_request_duration_seconds",
			"Request latency by path.", latencyBuckets, "path"),
		degraded: reg.Counter("proofd_degraded_responses_total",
			"Responses served from the last-known-good store after a live profiling failure."),
	}
	err := errors.Join(
		reg.GaugeFunc("proofd_inflight_profiles",
			"Profiling requests currently executing.",
			func() float64 { return float64(adm.inflight.Load()) }),
		reg.GaugeFunc("proofd_inflight_high_water",
			"Maximum concurrently executing profiling requests observed.",
			func() float64 { return float64(adm.highWater.Load()) }),
		reg.GaugeFunc("proofd_queue_depth",
			"Profiling requests waiting for an execution slot.",
			func() float64 { return float64(adm.queued.Load()) }),
		reg.CounterFunc("proofd_admission_rejected_total",
			"Profiling requests shed with 429.",
			func() float64 { return float64(adm.rejected.Load()) }),
		profsession.RegisterMetrics(reg, "proofd", sess),
	)
	if err != nil {
		panic(err)
	}
	return m
}

// observe records one finished request.
func (m *metrics) observe(path string, code int, d time.Duration) {
	m.requests.With(path, strconv.Itoa(code)).Inc()
	m.duration.With(path).ObserveDuration(d)
}
