package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"proof/internal/core"
	"proof/internal/histstore"
	"proof/internal/profsession"
)

// openTestStore opens a history store in a temp dir, closed with the
// test.
func openTestStore(t *testing.T) *histstore.Store {
	t.Helper()
	st, err := histstore.Open(t.TempDir(), histstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

// seedHistory appends one crafted record directly to the store.
func seedHistory(t *testing.T, st *histstore.Store, m histstore.Meta, body string) {
	t.Helper()
	if err := st.Append(m, []byte(body)); err != nil {
		t.Fatal(err)
	}
}

// driftSeedMeta builds a history meta for endpoint drift tests.
func driftSeedMeta(model, platform, rev, desc, bound string, i int) histstore.Meta {
	return histstore.Meta{
		Model:           model,
		Platform:        platform,
		GitRev:          rev,
		DescriptorHash:  desc,
		Bound:           bound,
		AttainableFLOPS: 1e14,
		AttainedFLOPS:   7e13,
		LatencyNS:       int64(3 * time.Millisecond),
		TimestampNS:     time.Now().Add(time.Duration(i-100) * time.Minute).UnixNano(),
	}
}

// TestHistoryDifferentialByteIdentity is the issue's differential
// criterion: a report read back from the store must be byte-identical
// to the JSON proofd served for the original request — both straight
// off the store API and through GET /v1/history?id=.
func TestHistoryDifferentialByteIdentity(t *testing.T) {
	st := openTestStore(t)
	srv, ts := newTestServer(t, Config{History: st, GitRev: "abc123"})

	resp := postJSON(t, ts.URL+"/v1/profile",
		`{"model":"mobilenetv2-0.5","platform":"a100","batch":8,"seed":3}`)
	served, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("profile status = %d (body %s)", resp.StatusCode, served)
	}
	srv.FlushHistory(context.Background())

	entries, total, err := st.Query(histstore.Query{Model: "mobilenetv2-0.5"})
	if err != nil || total != 1 {
		t.Fatalf("store Query total = %d (err %v), want 1", total, err)
	}
	e := entries[0]
	if e.Meta.GitRev != "abc123" || e.Meta.Platform != "a100" || e.Meta.Batch != 8 {
		t.Errorf("stored meta = %+v, want git_rev/platform/batch stamped", e.Meta)
	}
	if e.Meta.Bound == "" || e.Meta.DescriptorHash == "" || e.Meta.LatencyNS <= 0 {
		t.Errorf("stored meta missing roofline fields: %+v", e.Meta)
	}

	stored, err := st.Get(e)
	if err != nil {
		t.Fatal(err)
	}
	// The response is the stored bytes plus the trailing newline every
	// proofd JSON response carries.
	if want := string(stored) + "\n"; string(served) != want {
		t.Fatalf("stored report differs from served response\nserved: %.200s\nstored: %.200s", served, stored)
	}

	// The same bytes round-trip over the API.
	rr, err := http.Get(ts.URL + "/v1/history?id=" + e.ID)
	if err != nil {
		t.Fatal(err)
	}
	viaAPI, _ := io.ReadAll(rr.Body)
	rr.Body.Close()
	if rr.StatusCode != 200 || string(viaAPI) != string(served) {
		t.Fatalf("GET /v1/history?id= status %d, body differs from original response", rr.StatusCode)
	}

	// And the stored report still parses as the report proofd computed.
	var rep core.Report
	if err := json.Unmarshal(stored, &rep); err != nil {
		t.Fatalf("stored report does not parse: %v", err)
	}
	if rep.Model != "mobilenetv2-0.5" || rep.Platform != "a100" {
		t.Errorf("stored report identity = %s/%s", rep.Model, rep.Platform)
	}
}

// TestHistoryOnlyMissesPersisted: cache hits replay stored work and
// must not duplicate history records.
func TestHistoryOnlyMissesPersisted(t *testing.T) {
	st := openTestStore(t)
	srv, ts := newTestServer(t, Config{History: st})
	body := `{"model":"mobilenetv2-0.5","platform":"a100","batch":4}`
	for i := 0; i < 3; i++ {
		resp := postJSON(t, ts.URL+"/v1/profile", body)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("request %d status = %d", i, resp.StatusCode)
		}
	}
	srv.FlushHistory(context.Background())
	if _, total, _ := st.Query(histstore.Query{}); total != 1 {
		t.Fatalf("3 requests (1 miss + 2 hits) stored %d records, want 1", total)
	}
}

func TestHistoryQueryEndpoint(t *testing.T) {
	st := openTestStore(t)
	for i := 0; i < 12; i++ {
		model := "resnet-50"
		if i%3 == 0 {
			model = "bert-base"
		}
		seedHistory(t, st, driftSeedMeta(model, "a100", "rev1", "d1", "compute", i),
			fmt.Sprintf(`{"model":%q,"n":%d}`, model, i))
	}
	_, ts := newTestServer(t, Config{History: st})

	get := func(path string) (int, HistoryResponse) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var hr HistoryResponse
		if resp.StatusCode == 200 {
			if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
				t.Fatal(err)
			}
		}
		return resp.StatusCode, hr
	}

	if code, hr := get("/v1/history"); code != 200 || hr.Total != 12 || len(hr.Entries) != 12 {
		t.Fatalf("unfiltered = %d entries / total %d (status %d), want 12/12", len(hr.Entries), hr.Total, code)
	}
	if _, hr := get("/v1/history?model=resnet-50"); hr.Total != 8 {
		t.Fatalf("model filter total = %d, want 8", hr.Total)
	}
	if _, hr := get("/v1/history?model=resnet-50&limit=3&offset=6"); len(hr.Entries) != 2 || hr.Total != 8 {
		t.Fatalf("page = %d entries / total %d, want 2/8", len(hr.Entries), hr.Total)
	}
	// Newest first within a page.
	_, hr := get("/v1/history?model=resnet-50&limit=5")
	for i := 1; i < len(hr.Entries); i++ {
		if hr.Entries[i].TimestampNS > hr.Entries[i-1].TimestampNS {
			t.Fatal("history page not newest-first")
		}
	}
	since := time.Now().Add(-95 * time.Minute).Format(time.RFC3339)
	if _, hr := get("/v1/history?since=" + since); hr.Total >= 12 || hr.Total == 0 {
		t.Fatalf("since filter total = %d, want a proper subset", hr.Total)
	}

	for _, bad := range []string{
		"/v1/history?since=yesterday",
		"/v1/history?limit=-1",
		"/v1/history?offset=x",
	} {
		resp, err := http.Get(ts.URL + bad)
		if err != nil {
			t.Fatal(err)
		}
		if env := decodeEnvelope(t, resp); resp.StatusCode != 400 || env.Error.Code != "bad_request" {
			t.Errorf("%s = %d %s, want 400 bad_request", bad, resp.StatusCode, env.Error.Code)
		}
	}
	if resp, _ := http.Get(ts.URL + "/v1/history?id=99:99"); resp.StatusCode != 404 {
		t.Errorf("unknown id status = %d, want 404", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
}

// TestDriftEndpointVerdictFlip is the issue's drift scenario end to
// end: two descriptor revisions of one platform whose verdict flips
// must be flagged by GET /v1/drift and surface as
// proofd_roofline_drift 1, while an unchanged pair reports no drift
// and gauges 0.
func TestDriftEndpointVerdictFlip(t *testing.T) {
	st := openTestStore(t)
	// resnet-50/a100: descriptor revision A compute-bound, B memory-bound.
	for i := 0; i < 4; i++ {
		seedHistory(t, st, driftSeedMeta("resnet-50", "a100", "rev1", "descA", "compute", i), `{"r":1}`)
	}
	for i := 10; i < 14; i++ {
		seedHistory(t, st, driftSeedMeta("resnet-50", "a100", "rev1", "descB", "memory", i), `{"r":2}`)
	}
	// bert-base/h100: two git revisions, verdict unchanged.
	for i := 0; i < 4; i++ {
		seedHistory(t, st, driftSeedMeta("bert-base", "h100", "rev1", "descC", "compute", i), `{"r":3}`)
	}
	for i := 10; i < 14; i++ {
		seedHistory(t, st, driftSeedMeta("bert-base", "h100", "rev2", "descC", "compute", i), `{"r":4}`)
	}
	_, ts := newTestServer(t, Config{History: st})

	resp, err := http.Get(ts.URL + "/v1/drift")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("drift status = %d", resp.StatusCode)
	}
	var rep histstore.DriftReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if rep.DriftedKeys != 1 || len(rep.Keys) != 2 {
		t.Fatalf("drift report = %d drifted of %d keys, want 1 of 2", rep.DriftedKeys, len(rep.Keys))
	}
	for _, k := range rep.Keys {
		switch k.Model {
		case "resnet-50":
			if !k.Drifted || !k.VerdictFlipped {
				t.Errorf("resnet-50 = %+v, want verdict-flip drift", k)
			}
		case "bert-base":
			if k.Drifted || k.SingleRevision {
				t.Errorf("bert-base = %+v, want comparable and stable", k)
			}
		}
	}

	// The gauge mirrors the evaluation on /metrics.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	page := string(metrics)
	wantDrifted := `proofd_roofline_drift{model="resnet-50",platform="a100"} 1`
	wantStable := `proofd_roofline_drift{model="bert-base",platform="h100"} 0`
	if !strings.Contains(page, wantDrifted) || !strings.Contains(page, wantStable) {
		t.Errorf("metrics page missing drift gauges:\nwant %s\nand  %s", wantDrifted, wantStable)
	}

	// Threshold validation.
	for _, bad := range []string{"0", "1.5", "x", "-0.1"} {
		r, err := http.Get(ts.URL + "/v1/drift?threshold=" + bad)
		if err != nil {
			t.Fatal(err)
		}
		if env := decodeEnvelope(t, r); r.StatusCode != 400 || env.Error.Code != "bad_request" {
			t.Errorf("threshold=%s = %d %s, want 400 bad_request", bad, r.StatusCode, env.Error.Code)
		}
	}
}

// TestHistoryDisabled: without a store the endpoints answer a clear
// 503 (and still echo the request ID).
func TestHistoryDisabled(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, path := range []string{"/v1/history", "/v1/drift"} {
		req, _ := http.NewRequest("GET", ts.URL+path, nil)
		req.Header.Set("X-Request-ID", "client-id-7")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if got := resp.Header.Get("X-Request-ID"); got != "client-id-7" {
			t.Errorf("%s X-Request-ID = %q, want the client's echoed", path, got)
		}
		if env := decodeEnvelope(t, resp); resp.StatusCode != 503 || env.Error.Code != "history_disabled" {
			t.Errorf("%s = %d %s, want 503 history_disabled", path, resp.StatusCode, env.Error.Code)
		}
	}
}

// TestHealthzStoreStatus: the health body reports the store's state.
func TestHealthzStoreStatus(t *testing.T) {
	t.Run("disabled", func(t *testing.T) {
		_, ts := newTestServer(t, Config{})
		var hr HealthzResponse
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
			t.Fatal(err)
		}
		if hr.Status != "ok" || hr.Store.Enabled {
			t.Errorf("healthz = %+v, want ok with store disabled", hr)
		}
	})
	t.Run("enabled", func(t *testing.T) {
		st := openTestStore(t)
		srv, ts := newTestServer(t, Config{History: st})
		resp := postJSON(t, ts.URL+"/v1/profile",
			`{"model":"mobilenetv2-0.5","platform":"a100","batch":2}`)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		srv.FlushHistory(context.Background())

		var hr HealthzResponse
		hresp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer hresp.Body.Close()
		if err := json.NewDecoder(hresp.Body).Decode(&hr); err != nil {
			t.Fatal(err)
		}
		if !hr.Store.Enabled || hr.Store.Records != 1 || hr.Store.Segments < 1 {
			t.Errorf("healthz store = %+v, want enabled with 1 record", hr.Store)
		}
		if hr.Store.LastAppendAgeSeconds < 0 || hr.Store.LastAppendAgeSeconds > 60 {
			t.Errorf("last_append_age_seconds = %v, want a small recent age", hr.Store.LastAppendAgeSeconds)
		}
	})
}

// TestBuildInfoMetric: the constant build-identity gauge is always on
// the metrics page, labeled with the Go version and the configured rev.
func TestBuildInfoMetric(t *testing.T) {
	_, ts := newTestServer(t, Config{GitRev: "deadbeef"})
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	page, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(page), `proofd_build_info{`) ||
		!strings.Contains(string(page), `git_rev="deadbeef"`) ||
		!strings.Contains(string(page), `go_version="go`) {
		t.Errorf("metrics page missing proofd_build_info with go_version/git_rev labels")
	}
}

// TestRequestIDEchoedEverywhere locks the header contract on the error
// paths the middleware table cannot reach: a client-supplied ID must
// come back on 200, 400, 404, 413, 429 and 503 alike.
func TestRequestIDEchoedEverywhere(t *testing.T) {
	release := make(chan struct{})
	sess := profsession.NewWithProfiler(0, func(ctx context.Context, opts core.Options) (*core.Report, error) {
		select {
		case <-release:
			return stubReport(opts), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	})
	srv, ts := newTestServer(t, Config{
		Session:      sess,
		MaxInflight:  1,
		MaxQueue:     1,
		QueueWait:    30 * time.Second,
		MaxBodyBytes: 512,
	})
	do := func(method, path, body, id string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(method, ts.URL+path, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("X-Request-ID", id)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp
	}

	// Saturate the single slot and the one queue seat with distinct
	// slow profiles so the next one is shed with 429.
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			do("POST", "/v1/profile", fmt.Sprintf(`{"model":"resnet-50","platform":"a100","seed":%d}`, i), "occupy")
		}(i)
	}
	// Probe only once the slot and queue seat are provably taken —
	// probing earlier would put the probe itself in the queue for the
	// full QueueWait.
	waitFor(t, "admission saturated", func() bool {
		return srv.adm.inflight.Load() == 1 && srv.adm.queued.Load() == 1
	})
	r := do("POST", "/v1/profile", `{"model":"resnet-50","platform":"a100","seed":99}`, "rid-429")
	if r.StatusCode != 429 {
		t.Fatalf("saturated profile status = %d, want 429", r.StatusCode)
	}
	if got := r.Header.Get("X-Request-ID"); got != "rid-429" {
		t.Errorf("429 X-Request-ID = %q, want %q echoed", got, "rid-429")
	}
	close(release)
	wg.Wait()

	cases := []struct {
		name, method, path, body string
		wantStatus               int
	}{
		{"healthz 200", "GET", "/healthz", "", 200},
		{"bad json 400", "POST", "/v1/profile", `{`, 400},
		{"unknown model 404", "POST", "/v1/profile", `{"model":"nope","platform":"a100"}`, 404},
		{"unknown path 404", "GET", "/v1/zzz", "", 404},
		{"oversized body 413", "POST", "/v1/profile", `{"model":"` + strings.Repeat("x", 600) + `"}`, 413},
		{"history disabled 503", "GET", "/v1/history", "", 503},
		{"wrong method 405", "GET", "/v1/profile", "", 405},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			id := "rid-" + tc.name
			resp := do(tc.method, tc.path, tc.body, id)
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status = %d, want %d", resp.StatusCode, tc.wantStatus)
			}
			if got := resp.Header.Get("X-Request-ID"); got != id {
				t.Errorf("X-Request-ID = %q, want %q echoed", got, id)
			}
		})
	}
}
