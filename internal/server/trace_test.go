package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestProfileTraceEnvelope asserts POST /v1/profile?trace=1 returns the
// {report, trace} envelope with a Chrome trace-event document, while
// the untraced response shape stays a bare report.
func TestProfileTraceEnvelope(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := postJSON(t, ts.URL+"/v1/profile?trace=1", `{"model":"mobilenetv2-0.5","platform":"a100","batch":2}`)
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var env struct {
		Report struct {
			Model string `json:"model"`
		} `json:"report"`
		Trace struct {
			TraceEvents []struct {
				Name  string `json:"name"`
				Phase string `json:"ph"`
			} `json:"traceEvents"`
			DisplayTimeUnit string `json:"displayTimeUnit"`
		} `json:"trace"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if env.Report.Model != "mobilenetv2-0.5" {
		t.Errorf("report.model = %q", env.Report.Model)
	}
	if env.Trace.DisplayTimeUnit != "ms" {
		t.Errorf("trace.displayTimeUnit = %q", env.Trace.DisplayTimeUnit)
	}
	stages := map[string]bool{}
	for _, ev := range env.Trace.TraceEvents {
		if ev.Phase == "X" {
			stages[ev.Name] = true
		}
	}
	for _, want := range []string{"session", "pipeline", "model_build", "profile", "roofline"} {
		if !stages[want] {
			t.Errorf("trace missing stage %q (have %v)", want, stages)
		}
	}

	// Untraced request: bare report at the top level, no trace key.
	resp = postJSON(t, ts.URL+"/v1/profile", `{"model":"mobilenetv2-0.5","platform":"a100","batch":2}`)
	defer resp.Body.Close()
	var raw map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	if _, has := raw["trace"]; has {
		t.Error("untraced response carries a trace key")
	}
	if _, has := raw["model"]; !has {
		t.Error("untraced response is not a bare report")
	}
}

// TestDebugTracesRing asserts the trace ring serves the most recent
// traces newest-first and evicts beyond its capacity — bounded memory
// no matter how much traffic the service sees.
func TestDebugTracesRing(t *testing.T) {
	_, ts := newTestServer(t, Config{TraceRingSize: 2})
	for i := 0; i < 3; i++ {
		resp := postJSON(t, ts.URL+"/v1/profile", `{"model":"mobilenetv2-0.5","platform":"a100","batch":2}`)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	resp, err := http.Get(ts.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var tr TracesResponse
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	if tr.Capacity != 2 {
		t.Errorf("capacity = %d, want 2", tr.Capacity)
	}
	if tr.Total != 3 {
		t.Errorf("total = %d, want 3", tr.Total)
	}
	if len(tr.Traces) != 2 {
		t.Fatalf("retained %d traces, want 2", len(tr.Traces))
	}
	for i, tc := range tr.Traces {
		if tc.SpanCount == 0 || len(tc.Spans) != tc.SpanCount {
			t.Errorf("trace %d: span_count=%d len(spans)=%d", i, tc.SpanCount, len(tc.Spans))
		}
		found := false
		for _, s := range tc.Spans {
			if s.Name == "session" {
				found = true
			}
		}
		if !found {
			t.Errorf("trace %d has no session span", i)
		}
	}
}

// TestPprofDisabledByDefault: the public mux must 404 the pprof paths;
// only the opt-in DebugHandler (proofd -debug-addr) serves them.
func TestPprofDisabledByDefault(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("public /debug/pprof/ status = %d, want 404", resp.StatusCode)
	}

	dbg := httptest.NewServer(s.DebugHandler())
	defer dbg.Close()
	resp, err = http.Get(dbg.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("debug mux /debug/pprof/ status = %d, want 200", resp.StatusCode)
	}
	if !strings.Contains(string(body), "profile") {
		t.Errorf("pprof index looks wrong: %s", body)
	}
}

// TestStageMetricsExposition: after traffic, /metrics carries the
// per-stage latency histograms and the session hit-ratio gauge fed by
// the shared registry.
func TestStageMetricsExposition(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for i := 0; i < 2; i++ { // second request is a cache hit
		resp := postJSON(t, ts.URL+"/v1/profile", `{"model":"mobilenetv2-0.5","platform":"a100","batch":2}`)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	for _, want := range []string{
		`proofd_stage_duration_seconds_count{stage="pipeline"} 1`,
		`proofd_stage_duration_seconds_count{stage="session"} 2`,
		`proofd_stage_duration_seconds_count{stage="request"} 2`,
		"proofd_session_hits_total 1",
		"proofd_session_misses_total 1",
		"proofd_session_cache_hit_ratio 0.5",
		"proofd_session_cache_capacity 256",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics exposition missing %q\n%s", want, text)
		}
	}
}
