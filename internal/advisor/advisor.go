// Package advisor turns a profiling report into optimization guidance —
// automating the kinds of insight the paper derives manually in
// §4.3-§4.6: memory-bound models that need bandwidth rather than FLOP/s,
// depth-wise convolutions stuck on the vector pipeline, data-movement
// layers (shuffles/transposes) dominating latency, under-utilized batch
// sizes, and headroom under the roofline.
package advisor

import (
	"fmt"
	"sort"

	"proof/internal/core"
)

// Severity grades a finding.
type Severity string

// Severities.
const (
	SeverityInfo    Severity = "info"
	SeverityAdvice  Severity = "advice"
	SeverityWarning Severity = "warning"
)

// Finding is one piece of guidance.
type Finding struct {
	// Severity grades the finding.
	Severity Severity `json:"severity"`
	// Rule identifies the check that fired.
	Rule string `json:"rule"`
	// Summary is the one-line statement.
	Summary string `json:"summary"`
	// Detail explains the evidence and the suggested action.
	Detail string `json:"detail"`
	// Layers names the implicated backend layers (when applicable).
	Layers []string `json:"layers,omitempty"`
}

// Analyze inspects a report and returns findings ordered by severity.
func Analyze(r *core.Report) []Finding {
	var out []Finding
	out = append(out, checkModelBound(r)...)
	out = append(out, checkDataMovement(r)...)
	out = append(out, checkDepthwise(r)...)
	out = append(out, checkOverheadBound(r)...)
	out = append(out, checkEfficiencyHeadroom(r)...)
	sort.SliceStable(out, func(i, j int) bool {
		return severityRank(out[i].Severity) > severityRank(out[j].Severity)
	})
	return out
}

func severityRank(s Severity) int {
	switch s {
	case SeverityWarning:
		return 2
	case SeverityAdvice:
		return 1
	}
	return 0
}

// checkModelBound reproduces the §4.3 end-to-end reading: which side of
// the ridge the model sits on and what that implies for hardware
// selection.
func checkModelBound(r *core.Report) []Finding {
	p := r.EndToEnd
	ridge := r.Roofline.RidgeAI()
	switch p.Bound {
	case "memory":
		return []Finding{{
			Severity: SeverityAdvice,
			Rule:     "model-memory-bound",
			Summary: fmt.Sprintf("model is memory-bound (AI %.1f < ridge %.1f): bandwidth, not FLOP/s, limits it",
				p.AI, ridge),
			Detail: "Higher peak-FLOP/s hardware will not help; prefer platforms with more " +
				"bandwidth, larger batches, lower-precision activations, or model changes " +
				"that raise arithmetic intensity (e.g. trading extra FLOP for less data " +
				"movement, as in the paper's ShuffleNetV2 modification).",
		}}
	case "compute":
		return []Finding{{
			Severity: SeverityInfo,
			Rule:     "model-compute-bound",
			Summary:  fmt.Sprintf("model is compute-bound (AI %.1f > ridge %.1f)", p.AI, ridge),
			Detail: "The math units limit throughput: lower-precision data types or platforms " +
				"with more matrix-unit FLOP/s raise performance; extra bandwidth will not.",
		}}
	}
	return nil
}

// checkDataMovement flags the §4.5 pattern: zero-FLOP data-movement
// layers holding a large share of the latency.
func checkDataMovement(r *core.Report) []Finding {
	var share float64
	var names []string
	for _, l := range r.Layers {
		switch l.Category {
		case "transpose", "copy", "datamove":
			share += l.Point.Share
			if l.Point.Share > 0.01 && len(names) < 8 {
				names = append(names, l.Name)
			}
		}
	}
	if share < 0.25 {
		return nil
	}
	return []Finding{{
		Severity: SeverityWarning,
		Rule:     "data-movement-dominates",
		Summary:  fmt.Sprintf("transpose/copy layers take %.0f%% of latency while computing nothing", share*100),
		Detail: "These layers come from layout shuffles (e.g. channel shuffle, window " +
			"partitioning) in the model design. Consider redesigning the blocks to avoid " +
			"them — the paper removes ShuffleNetV2's shuffle and doubles the point-wise " +
			"convolution channels for a 1.6x speedup despite more FLOP.",
		Layers: names,
	}}
}

// checkDepthwise flags the §4.4 pattern: depth-wise convolutions that
// cannot use the matrix units.
func checkDepthwise(r *core.Report) []Finding {
	var share float64
	var names []string
	for _, l := range r.Layers {
		if l.Category == "dwconv" {
			share += l.Point.Share
			if l.Point.Share > 0.01 && len(names) < 8 {
				names = append(names, l.Name)
			}
		}
	}
	if share < 0.20 {
		return nil
	}
	return []Finding{{
		Severity: SeverityAdvice,
		Rule:     "depthwise-conv-heavy",
		Summary:  fmt.Sprintf("depth-wise convolutions take %.0f%% of latency at vector-pipeline rates", share*100),
		Detail: "Depth-wise convolutions cannot use tensor cores, so their attainable " +
			"FLOP/s is an order of magnitude below the platform peak. EfficientNetV2's " +
			"Fused-MBConv replaces depth-wise+point-wise pairs with ordinary convolutions " +
			"and reaches much higher hardware efficiency (§4.4).",
		Layers: names,
	}}
}

// checkOverheadBound flags models whose layers are too small for the
// platform (launch overhead dominates) — raise the batch size.
func checkOverheadBound(r *core.Report) []Finding {
	overheadish := 0
	for _, l := range r.Layers {
		if l.ExecutionBound == "overhead" {
			overheadish++
		}
	}
	if len(r.Layers) == 0 || float64(overheadish)/float64(len(r.Layers)) < 0.5 {
		return nil
	}
	return []Finding{{
		Severity: SeverityAdvice,
		Rule:     "launch-overhead-bound",
		Summary:  fmt.Sprintf("%d of %d layers are dominated by launch overhead", overheadish, len(r.Layers)),
		Detail: "Per-layer work is too small for this platform at the profiled batch size. " +
			"Raise the batch size (see the OptimalBatch sweep) or deploy on a smaller device.",
	}}
}

// checkEfficiencyHeadroom reports the distance between attained FLOP/s
// and the roofline ceiling at the model's arithmetic intensity.
func checkEfficiencyHeadroom(r *core.Report) []Finding {
	eff := r.Roofline.Efficiency(r.EndToEnd)
	if eff <= 0 {
		return nil
	}
	switch {
	case eff < 0.35:
		return []Finding{{
			Severity: SeverityWarning,
			Rule:     "large-roofline-headroom",
			Summary:  fmt.Sprintf("model attains only %.0f%% of its roofline ceiling", eff*100),
			Detail: "Large gap between attained FLOP/s and the ceiling at this arithmetic " +
				"intensity: look at the layer-wise chart for low-efficiency layer classes " +
				"(data movement, depth-wise convolution, small launches).",
		}}
	case eff > 0.75:
		return []Finding{{
			Severity: SeverityInfo,
			Rule:     "near-roofline",
			Summary:  fmt.Sprintf("model attains %.0f%% of its roofline ceiling", eff*100),
			Detail:   "Little headroom remains on this platform; further gains need model or precision changes.",
		}}
	}
	return nil
}

// WriteFindings renders findings as text.
func WriteFindings(w interface{ Write([]byte) (int, error) }, findings []Finding) {
	if len(findings) == 0 {
		fmt.Fprintln(w, "advisor: no findings")
		return
	}
	for _, f := range findings {
		fmt.Fprintf(w, "[%s] %s: %s\n", f.Severity, f.Rule, f.Summary)
		fmt.Fprintf(w, "        %s\n", f.Detail)
		if len(f.Layers) > 0 {
			fmt.Fprintf(w, "        layers: %v\n", f.Layers)
		}
	}
}
