package advisor

import (
	"strings"
	"testing"

	"proof/internal/core"
)

func profile(t *testing.T, model string, batch int) *core.Report {
	t.Helper()
	r, err := core.Profile(core.Options{Model: model, Platform: "a100", Batch: batch})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func hasRule(fs []Finding, rule string) bool {
	for _, f := range fs {
		if f.Rule == rule {
			return true
		}
	}
	return false
}

func TestShuffleNetTriggersDataMovement(t *testing.T) {
	fs := Analyze(profile(t, "shufflenetv2-1.0", 512))
	if !hasRule(fs, "data-movement-dominates") {
		t.Errorf("ShuffleNetV2 should trigger the §4.5 data-movement finding, got %+v", fs)
	}
	if !hasRule(fs, "model-memory-bound") {
		t.Error("ShuffleNetV2 on A100 is memory-bound")
	}
	// The modified model must NOT trigger data movement.
	fs2 := Analyze(profile(t, "shufflenetv2-1.0-mod", 512))
	if hasRule(fs2, "data-movement-dominates") {
		t.Error("modified ShuffleNetV2 should not trigger the data-movement finding")
	}
}

func TestEfficientNetTriggersDepthwise(t *testing.T) {
	fs := Analyze(profile(t, "efficientnet-b4", 128))
	if !hasRule(fs, "depthwise-conv-heavy") {
		t.Errorf("EfficientNet B4 should trigger the §4.4 depth-wise finding, got %+v", fs)
	}
}

func TestSmallBatchTriggersOverhead(t *testing.T) {
	fs := Analyze(profile(t, "shufflenetv2-0.5", 1))
	if !hasRule(fs, "launch-overhead-bound") {
		t.Errorf("tiny model at batch 1 should be overhead-bound, got %+v", fs)
	}
}

func TestComputeBoundModel(t *testing.T) {
	fs := Analyze(profile(t, "vit-b", 128))
	if !hasRule(fs, "model-compute-bound") {
		t.Errorf("ViT-B at batch 128 should be compute-bound, got %+v", fs)
	}
}

func TestFindingsOrderedBySeverity(t *testing.T) {
	fs := Analyze(profile(t, "shufflenetv2-1.0", 512))
	for i := 1; i < len(fs); i++ {
		if severityRank(fs[i].Severity) > severityRank(fs[i-1].Severity) {
			t.Errorf("findings not sorted by severity: %+v", fs)
		}
	}
}

func TestWriteFindings(t *testing.T) {
	fs := Analyze(profile(t, "shufflenetv2-1.0", 512))
	var sb strings.Builder
	WriteFindings(&sb, fs)
	if !strings.Contains(sb.String(), "data-movement-dominates") {
		t.Error("rendering missing rule names")
	}
	var empty strings.Builder
	WriteFindings(&empty, nil)
	if !strings.Contains(empty.String(), "no findings") {
		t.Error("empty case")
	}
}
