// Package experiments regenerates every table and figure of the paper's
// evaluation (§4) on the simulated substrate: Tables 2-7 and Figures
// 4-6/8. Each experiment returns structured rows plus a formatted text
// rendering, so the CLI, the benchmarks and the examples share one
// implementation. EXPERIMENTS.md records paper-vs-measured values.
package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"proof/internal/analysis"
	"proof/internal/backend"
	"proof/internal/core"
	"proof/internal/graph"
	"proof/internal/hardware"
	"proof/internal/models"
	"proof/internal/ncusim"
	"proof/internal/profsession"
)

// Table2Row describes one evaluation platform (Table 2).
type Table2Row struct {
	Hardware string
	Scenario string
	Runtime  string
	PeakFP16 float64
	MemBW    float64
}

// Table2 lists the evaluation platforms.
func Table2() []Table2Row {
	var rows []Table2Row
	for _, p := range hardware.List() {
		rows = append(rows, Table2Row{
			Hardware: p.Name,
			Scenario: p.Scenario,
			Runtime:  p.Runtime,
			PeakFP16: p.PeakAt(graph.Float16, 0),
			MemBW:    p.MemBW,
		})
	}
	return rows
}

// FormatTable2 renders Table 2.
func FormatTable2(rows []Table2Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table 2: Hardware for evaluation.\n")
	fmt.Fprintf(&sb, "%-36s %-16s %-8s %12s %12s\n", "Hardware", "Scenario", "Runtime", "fp16 TFLOP/s", "BW GB/s")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-36s %-16s %-8s %12.2f %12.1f\n",
			r.Hardware, r.Scenario, r.Runtime, r.PeakFP16/1e12, r.MemBW/1e9)
	}
	return sb.String()
}

// Table3Row describes one evaluation model (Table 3), with the paper's
// published values alongside ours.
type Table3Row struct {
	ID           int
	Name         string
	Type         string
	Nodes        int
	ParamsM      float64
	GFLOP        float64
	PaperNodes   int
	PaperParamsM float64
	PaperGFLOP   float64
}

// Table3 builds every Table 3 model at batch 1 and reports node count,
// parameters and theoretical GFLOP from the analytical model.
func Table3() ([]Table3Row, error) {
	var rows []Table3Row
	for _, info := range models.List() {
		if info.ID == 0 {
			continue
		}
		g, err := info.Build()
		if err != nil {
			return nil, fmt.Errorf("table3: %s: %w", info.Key, err)
		}
		rep, err := analysis.NewRep(g)
		if err != nil {
			return nil, fmt.Errorf("table3: %s: %w", info.Key, err)
		}
		rows = append(rows, Table3Row{
			ID:           info.ID,
			Name:         info.Name,
			Type:         info.Type,
			Nodes:        rep.NodeCount(),
			ParamsM:      float64(g.ParamCount()) / 1e6,
			GFLOP:        float64(rep.TotalCost().FLOP) / 1e9,
			PaperNodes:   info.PaperNodes,
			PaperParamsM: info.PaperParamsM,
			PaperGFLOP:   info.PaperGFLOP,
		})
	}
	return rows, nil
}

// FormatTable3 renders Table 3 with paper reference columns.
func FormatTable3(rows []Table3Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table 3: Models for evaluation (ours vs paper).\n")
	fmt.Fprintf(&sb, "%3s %-22s %-6s %7s %9s %10s | %7s %9s %10s\n",
		"#", "Model", "Type", "Nodes", "Params(M)", "GFLOP", "paperN", "paperP", "paperG")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%3d %-22s %-6s %7d %9.1f %10.3f | %7d %9.1f %10.3f\n",
			r.ID, r.Name, r.Type, r.Nodes, r.ParamsM, r.GFLOP,
			r.PaperNodes, r.PaperParamsM, r.PaperGFLOP)
	}
	return sb.String()
}

// Table4Row compares the analytical prediction against the simulated
// hardware-counter measurement for one model (Table 4).
type Table4Row struct {
	Model string
	// LatencyMS is the inference latency.
	LatencyMS float64
	Nodes     int
	// Analytical model predictions.
	PredGFLOP    float64
	PredMemoryMB float64
	// NCU-style measurements (tensor-core corrected).
	MeasGFLOP    float64
	MeasMemoryMB float64
	ProfTimeSec  float64
	// Diffs: (pred-meas)/meas, as the paper reports.
	FLOPDiff   float64
	MemoryDiff float64
	// Paper reference diffs.
	PaperFLOPDiff   float64
	PaperMemoryDiff float64
}

// table4Models are the five most representative models of Table 4 with
// the paper's published diffs.
var table4Models = []struct {
	key                 string
	paperFLOP, paperMem float64
}{
	{"efficientnetv2-s", -0.1982, -0.0128},
	{"mobilenetv2-1.0", -0.2396, +0.0135},
	{"resnet-50", -0.0203, -0.0137},
	{"swin-s", -0.0603, -0.0806},
	{"vit-t", +0.0979, +0.0608},
}

// Table4 reproduces the prediction-accuracy experiment: A100, fp16,
// batch 128, analytical model vs simulated NCU.
func Table4() ([]Table4Row, error) {
	return Table4WithBatch(128)
}

// Table4WithBatch is the context-free convenience form of
// Table4WithBatchCtx.
func Table4WithBatch(batch int) ([]Table4Row, error) {
	return Table4WithBatchCtx(context.Background(), batch)
}

// Table4WithBatchCtx runs Table 4 at a custom batch size (smaller
// batches keep the test suite fast; the ratios are batch-independent).
// ctx cancels the per-model backend builds between models.
func Table4WithBatchCtx(ctx context.Context, batch int) ([]Table4Row, error) {
	plat, err := hardware.Get("a100")
	if err != nil {
		return nil, err
	}
	be, err := backend.Get(plat.Runtime)
	if err != nil {
		return nil, err
	}
	var rows []Table4Row
	for _, m := range table4Models {
		g, err := models.Build(m.key)
		if err != nil {
			return nil, err
		}
		g.ConvertFloatTensors(graph.Float16)
		rep, err := analysis.NewRepWithBatch(g, batch)
		if err != nil {
			return nil, err
		}
		eng, err := be.Build(ctx, rep, backend.Config{Platform: plat, DType: graph.Float16, Batch: batch})
		if err != nil {
			return nil, err
		}
		// Analytical prediction at backend-layer granularity: sum of
		// fused-layer costs via the mapping.
		opt := analysis.NewOptimizedRep(rep)
		mapping, err := be.MapLayers(ctx, eng, opt)
		if err != nil {
			return nil, err
		}
		var pred analysis.Cost
		for _, layer := range mapping {
			if layer == nil {
				continue
			}
			c, err := opt.LayerCost(layer)
			if err != nil {
				return nil, err
			}
			pred = pred.Add(c)
		}
		meas, err := ncusim.Measure(eng, 1)
		if err != nil {
			return nil, err
		}
		row := Table4Row{
			Model:           m.key,
			LatencyMS:       float64(meas.InferenceTime) / float64(time.Millisecond),
			Nodes:           rep.NodeCount(),
			PredGFLOP:       float64(pred.FLOP) / 1e9,
			PredMemoryMB:    float64(pred.MemoryBytes()) / 1e6,
			MeasGFLOP:       float64(meas.CorrectedFLOP) / 1e9,
			MeasMemoryMB:    float64(meas.Bytes) / 1e6,
			ProfTimeSec:     meas.ProfilingTime.Seconds(),
			PaperFLOPDiff:   m.paperFLOP,
			PaperMemoryDiff: m.paperMem,
		}
		row.FLOPDiff = row.PredGFLOP/row.MeasGFLOP - 1
		row.MemoryDiff = row.PredMemoryMB/row.MeasMemoryMB - 1
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatTable4 renders Table 4.
func FormatTable4(rows []Table4Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table 4: Accuracy of FLOP and Memory access prediction (A100, fp16).\n")
	fmt.Fprintf(&sb, "%-18s %9s %6s | %10s %11s | %10s %11s %9s | %8s %8s | %8s %8s\n",
		"Model", "lat(ms)", "nodes", "predGFLOP", "predMem(MB)",
		"ncuGFLOP", "ncuMem(MB)", "prof(s)", "dFLOP", "dMem", "paper dF", "paper dM")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-18s %9.3f %6d | %10.3f %11.1f | %10.3f %11.1f %9.0f | %+7.2f%% %+7.2f%% | %+7.2f%% %+7.2f%%\n",
			r.Model, r.LatencyMS, r.Nodes, r.PredGFLOP, r.PredMemoryMB,
			r.MeasGFLOP, r.MeasMemoryMB, r.ProfTimeSec,
			r.FLOPDiff*100, r.MemoryDiff*100, r.PaperFLOPDiff*100, r.PaperMemoryDiff*100)
	}
	return sb.String()
}

// session is the shared profiling session of the experiments package:
// tables and figures overlap heavily in the (model, platform, batch)
// points they profile (Figure 5 revisits Figure 4's A100 points, the
// shufflenet experiments revisit Figure 6's, a full `-run all` touches
// many points twice), so routing them through one cache makes a full
// regeneration pay for each unique configuration once.
var session = profsession.New(512)

// SessionStats snapshots the shared session's cache counters, for the
// CLI's observability output.
func SessionStats() profsession.Stats { return session.Stats() }

// ResetSession empties the shared report cache (tests use this to make
// experiments hermetic).
func ResetSession() { session.Reset() }

// profileFor wraps the shared session with experiment conventions.
func profileFor(model, platform string, batch int, opts core.Options) (*core.Report, error) {
	opts.Model = model
	opts.Platform = platform
	opts.Batch = batch
	return session.Profile(opts)
}
