package experiments

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"

	"proof/internal/analysis"
	"proof/internal/backend"
	"proof/internal/graph"
	"proof/internal/hardware"
	"proof/internal/models"
	"proof/internal/ncusim"
)

// PerLayerAccuracy extends Table 4 below the model level: the
// distribution of per-backend-layer relative errors between the
// analytical prediction and the simulated counters. The paper reports
// only aggregate diffs; the distribution shows where the analytical
// model is trustworthy layer-by-layer (the granularity Figures 5-8
// actually use).
type PerLayerAccuracy struct {
	Model string
	// Layers counted (reformat layers are excluded: they have no
	// analytical counterpart).
	Layers int
	// MemoryErr are the per-layer |pred/meas - 1| quantiles for DRAM
	// traffic.
	MemoryErrP50, MemoryErrP90, MemoryErrMax float64
	// FLOPErr quantiles (only layers with nonzero FLOP).
	FLOPErrP50, FLOPErrP90 float64
}

// PerLayerTable4 is the context-free convenience form of
// PerLayerTable4Ctx.
func PerLayerTable4(batch int) ([]PerLayerAccuracy, error) {
	return PerLayerTable4Ctx(context.Background(), batch)
}

// PerLayerTable4Ctx measures per-layer accuracy for the Table 4
// models; ctx cancels the per-model backend builds between models.
func PerLayerTable4Ctx(ctx context.Context, batch int) ([]PerLayerAccuracy, error) {
	plat, err := hardware.Get("a100")
	if err != nil {
		return nil, err
	}
	be, err := backend.Get(plat.Runtime)
	if err != nil {
		return nil, err
	}
	var out []PerLayerAccuracy
	for _, m := range table4Models {
		g, err := buildModel(m.key)
		if err != nil {
			return nil, err
		}
		g.ConvertFloatTensors(graph.Float16)
		rep, err := analysis.NewRepWithBatch(g, batch)
		if err != nil {
			return nil, err
		}
		eng, err := be.Build(ctx, rep, backend.Config{Platform: plat, DType: graph.Float16, Batch: batch})
		if err != nil {
			return nil, err
		}
		opt := analysis.NewOptimizedRep(rep)
		mapping, err := be.MapLayers(ctx, eng, opt)
		if err != nil {
			return nil, err
		}
		meas, err := ncusim.Measure(eng, 1)
		if err != nil {
			return nil, err
		}
		measByName := map[string]ncusim.LayerMeasurement{}
		for _, lm := range meas.Layers {
			measByName[lm.LayerName] = lm
		}

		var memErrs, flopErrs []float64
		for name, layer := range mapping {
			if layer == nil {
				continue
			}
			lm, ok := measByName[name]
			if !ok || lm.Bytes == 0 {
				continue
			}
			c, err := opt.LayerCost(layer)
			if err != nil {
				return nil, err
			}
			memErrs = append(memErrs, math.Abs(float64(c.MemoryBytes())/float64(lm.Bytes)-1))
			if c.FLOP > 0 && lm.CorrectedFLOP > 0 {
				flopErrs = append(flopErrs, math.Abs(float64(c.FLOP)/float64(lm.CorrectedFLOP)-1))
			}
		}
		acc := PerLayerAccuracy{Model: m.key, Layers: len(memErrs)}
		acc.MemoryErrP50 = quantile(memErrs, 0.5)
		acc.MemoryErrP90 = quantile(memErrs, 0.9)
		acc.MemoryErrMax = quantile(memErrs, 1.0)
		acc.FLOPErrP50 = quantile(flopErrs, 0.5)
		acc.FLOPErrP90 = quantile(flopErrs, 0.9)
		out = append(out, acc)
	}
	return out, nil
}

// buildModel builds a zoo model (indirection kept for tests).
func buildModel(key string) (*graph.Graph, error) {
	return models.Build(key)
}

func quantile(vals []float64, q float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

// FormatPerLayerTable4 renders the per-layer accuracy extension.
func FormatPerLayerTable4(rows []PerLayerAccuracy) string {
	var sb strings.Builder
	sb.WriteString("Table 4 extension: per-backend-layer prediction error distribution (A100, fp16).\n")
	fmt.Fprintf(&sb, "%-18s %7s | %9s %9s %9s | %9s %9s\n",
		"Model", "layers", "mem p50", "mem p90", "mem max", "flop p50", "flop p90")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-18s %7d | %8.1f%% %8.1f%% %8.1f%% | %8.1f%% %8.1f%%\n",
			r.Model, r.Layers, r.MemoryErrP50*100, r.MemoryErrP90*100, r.MemoryErrMax*100,
			r.FLOPErrP50*100, r.FLOPErrP90*100)
	}
	return sb.String()
}
