package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"proof/internal/core"
	"proof/internal/graph"
	"proof/internal/hardware"
	"proof/internal/models"
	"proof/internal/parallel"
	"proof/internal/roofline"
)

// Figure4Series is the end-to-end roofline of all models on one
// platform (one sub-chart of Figure 4).
type Figure4Series struct {
	Platform string
	DType    string
	Batch    int
	Model    roofline.Model
	// Points carry one end-to-end point per model, named by Table 3
	// serial number and model key.
	Points []roofline.Point
	// Skipped lists models not run on this platform, with reasons
	// (mirroring the paper's footnotes).
	Skipped map[string]string
}

// figure4Batch returns the paper's per-model batch override (Stable
// Diffusion runs at batch 4).
func figure4Batch(plat *hardware.Platform, key string) int {
	if key == "sd-unet" {
		return 4
	}
	return plat.DefaultBatch
}

// figure4Skip reproduces the paper's coverage: transformer/diffusion
// models are skipped on edge platforms; Stable Diffusion additionally
// fails on the int8 desktop GPU and is not tested on CPU (§4.3
// footnote); the NPU only runs a small portion of models.
func figure4Skip(plat *hardware.Platform, info models.Info) string {
	if !plat.Supports(info.Type) {
		return "platform does not support model family"
	}
	isEdge := strings.HasPrefix(plat.Scenario, "Edge")
	if isEdge && (info.Type == "Trans." || info.Type == "Diffu.") {
		return "transformer/diffusion models not evaluated on edge platforms"
	}
	if info.Key == "sd-unet" {
		switch plat.Key {
		case "rtx4090":
			return "TensorRT int8 conversion fails for Stable Diffusion"
		case "xeon-6330", "rpi4b":
			return "Stable Diffusion not tested on CPU"
		}
	}
	return ""
}

// Figure4 profiles every applicable model on one platform and returns
// the end-to-end roofline series.
func Figure4(platform string) (*Figure4Series, error) {
	plat, err := hardware.Get(platform)
	if err != nil {
		return nil, err
	}
	series := &Figure4Series{
		Platform: plat.Key,
		DType:    plat.DefaultDType.String(),
		Batch:    plat.DefaultBatch,
		Model:    roofline.NewModel(plat, plat.DefaultDType, hardware.Clocks{}),
		Skipped:  map[string]string{},
	}
	for _, info := range models.List() {
		if info.ID == 0 {
			continue
		}
		if reason := figure4Skip(plat, info); reason != "" {
			series.Skipped[info.Key] = reason
			continue
		}
		r, err := profileFor(info.Key, platform, figure4Batch(plat, info.Key), core.Options{})
		if err != nil {
			return nil, fmt.Errorf("figure4: %s on %s: %w", info.Key, platform, err)
		}
		p := r.EndToEnd
		p.Name = fmt.Sprintf("#%d %s", info.ID, info.Key)
		series.Points = append(series.Points, p)
	}
	return series, nil
}

// Figure4All runs Figure 4 for every platform, fanning the independent
// platform sweeps across workers.
func Figure4All() ([]*Figure4Series, error) {
	return Figure4AllCtx(context.Background())
}

// Figure4AllCtx is Figure4All with cancellation: cancelling ctx stops
// dispatching platforms and unwinds the fan-out with ctx.Err(). Every
// per-model profiling point goes through the shared session, so a
// regeneration that already profiled an overlapping point (say Figure 5
// after Figure 4 on the A100) is served from cache.
func Figure4AllCtx(ctx context.Context) ([]*Figure4Series, error) {
	return parallel.MapCtx(ctx, hardware.List(), 0, func(ctx context.Context, p *hardware.Platform) (*Figure4Series, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return Figure4(p.Key)
	})
}

// FormatFigure4 renders one Figure 4 series as a text table.
func FormatFigure4(s *Figure4Series) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 4 (%s, %s, batch %d): end-to-end roofline — ridge AI %.1f, peak %.2f TFLOP/s, BW %.1f GB/s\n",
		s.Platform, s.DType, s.Batch, s.Model.RidgeAI(), s.Model.PeakFLOPS/1e12, s.Model.PeakBW/1e9)
	fmt.Fprintf(&sb, "  %-28s %8s %12s %10s %8s\n", "model", "AI", "TFLOP/s", "GB/s", "bound")
	for _, p := range s.Points {
		fmt.Fprintf(&sb, "  %-28s %8.2f %12.3f %10.1f %8s\n",
			p.Name, p.AI, p.FLOPS/1e12, p.Bandwidth/1e9, p.Bound)
	}
	keys := make([]string, 0, len(s.Skipped))
	for key := range s.Skipped {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		fmt.Fprintf(&sb, "  (skipped %s: %s)\n", key, s.Skipped[key])
	}
	return sb.String()
}

// Figure5Models are the four models of the layer-wise analysis, with
// the paper's metric mode (measured, except ViT where DLProf crashed
// and the paper fell back to the analytical model).
var Figure5Models = []struct {
	Key  string
	Mode core.Mode
}{
	{"resnet-50", core.ModeMeasured},
	{"vit-t", core.ModePredicted},
	{"efficientnet-b4", core.ModeMeasured},
	{"efficientnetv2-t", core.ModeMeasured},
}

// Figure5 runs the layer-wise roofline analysis of §4.4 on the A100
// (fp16, batch 128 in the paper; batch is a parameter for test speed).
func Figure5(batch int) (map[string]*core.Report, error) {
	out := map[string]*core.Report{}
	for _, m := range Figure5Models {
		r, err := profileFor(m.Key, "a100", batch, core.Options{Mode: m.Mode, DType: graph.Float16})
		if err != nil {
			return nil, fmt.Errorf("figure5: %s: %w", m.Key, err)
		}
		out[m.Key] = r
	}
	return out, nil
}

// FormatFigure5 summarizes the layer-wise distributions.
func FormatFigure5(reports map[string]*core.Report) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 5: layer-wise roofline on A100 (fp16).\n")
	for _, m := range Figure5Models {
		r := reports[m.Key]
		if r == nil {
			continue
		}
		fmt.Fprintf(&sb, "(%s, %s mode): %d backend layers, end-to-end %.3f TFLOP/s\n",
			m.Key, r.Mode, len(r.Layers), r.EndToEnd.FLOPS/1e12)
		shares := map[string]float64{}
		for _, l := range r.Layers {
			shares[l.Category] += l.Point.Share
		}
		for _, cat := range []string{"conv", "pwconv", "dwconv", "matmul", "transpose", "copy", "elementwise"} {
			if shares[cat] > 0.005 {
				fmt.Fprintf(&sb, "    %-10s %5.1f%% of latency\n", cat, shares[cat]*100)
			}
		}
	}
	return sb.String()
}
