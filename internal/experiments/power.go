package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"proof/internal/core"
	"proof/internal/graph"
	"proof/internal/hardware"
	"proof/internal/power"
	"proof/internal/roofline"
)

// Table6Pairs are the paper's five clock configurations.
var Table6Pairs = [][2]int{
	{918, 3199}, {918, 2133}, {510, 3199}, {510, 2133}, {510, 665},
}

// Table6Paper holds the published achieved peaks and power for
// comparison (TFLOP/s, GB/s, W).
var Table6Paper = [][3]float64{
	{13.620, 87.879, 23.6},
	{13.601, 62.031, 21.3},
	{7.433, 54.002, 15.7},
	{7.426, 53.017, 13.6},
	{7.359, 15.177, 11.5},
}

// Table6 is the context-free convenience form of Table6Ctx.
func Table6() ([]power.PeakRow, error) {
	return power.PeakSweep("orin-nx", graph.Float16, Table6Pairs)
}

// Table6Ctx measures the achieved roofline peak and power on the Orin
// NX at the paper's clock configurations.
func Table6Ctx(ctx context.Context) ([]power.PeakRow, error) {
	return power.PeakSweepCtx(ctx, "orin-nx", graph.Float16, Table6Pairs)
}

// FormatTable6 renders Table 6 alongside the paper's values.
func FormatTable6(rows []power.PeakRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table 6: Achieved roofline peak and power at different clock speeds (Orin NX, peak-test pseudo model).\n")
	fmt.Fprintf(&sb, "%2s %9s %10s | %10s %10s %7s | %10s %10s %7s\n",
		"#", "GPU(MHz)", "EMC(MHz)", "TFLOP/s", "BW GB/s", "Power", "paper TF", "paper BW", "paper W")
	for i, r := range rows {
		var ref [3]float64
		if i < len(Table6Paper) {
			ref = Table6Paper[i]
		}
		fmt.Fprintf(&sb, "%2d %9d %10d | %10.3f %10.3f %6.1fW | %10.3f %10.3f %6.1fW\n",
			i+1, r.GPUMHz, r.EMCMHz, r.FLOPS/1e12, r.BW/1e9, r.PowerW, ref[0], ref[1], ref[2])
	}
	return sb.String()
}

// Table7Row is one power-profile row of Table 7, extended with energy
// efficiency (the quantity the §4.6 trade-off ultimately optimizes).
type Table7Row struct {
	Profile string
	CPU     string
	GPUMHz  int
	EMCMHz  int
	Latency time.Duration
	PowerW  float64
	// SamplesPerJoule is the energy efficiency at the profiled batch.
	SamplesPerJoule float64
}

// Table7 evaluates EfficientNetV2-T under the stock, comparison and
// tuned power profiles on the Orin NX.
func Table7(batch int) ([]Table7Row, *power.TuneResult, error) {
	const (
		platform = "orin-nx"
		workload = "efficientnetv2-t"
	)
	var rows []Table7Row
	add := func(p power.Profile) error {
		w, err := power.EvaluateProfile(platform, workload, batch, graph.Float16, p)
		if err != nil {
			return err
		}
		rows = append(rows, Table7Row{
			Profile:         p.Name,
			CPU:             p.CPU,
			GPUMHz:          p.Clocks.GPUMHz,
			EMCMHz:          p.Clocks.EMCMHz,
			Latency:         w.Latency,
			PowerW:          w.PowerW,
			SamplesPerJoule: w.SamplesPerJoule,
		})
		return nil
	}
	for _, p := range power.StockProfiles() {
		if err := add(p); err != nil {
			return nil, nil, err
		}
	}
	for _, p := range power.ComparisonProfiles() {
		if err := add(p); err != nil {
			return nil, nil, err
		}
	}
	tune, err := power.Tune(platform, workload, batch, graph.Float16, 15.0, 0.45)
	if err != nil {
		return nil, nil, err
	}
	rows = append(rows, Table7Row{
		Profile:         "optimal (ours)",
		CPU:             tune.Optimal.Profile.CPU,
		GPUMHz:          tune.Optimal.Profile.Clocks.GPUMHz,
		EMCMHz:          tune.Optimal.Profile.Clocks.EMCMHz,
		Latency:         tune.Optimal.Latency,
		PowerW:          tune.Optimal.PowerW,
		SamplesPerJoule: tune.Optimal.SamplesPerJoule,
	})
	return rows, tune, nil
}

// FormatTable7 renders Table 7.
func FormatTable7(rows []Table7Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table 7: EfficientNetV2-T performance and power under different power profiles (Orin NX).\n")
	fmt.Fprintf(&sb, "%-22s %2s %10s %6s %6s %12s %8s %10s\n",
		"Profile", "#", "CPU", "GPU", "EMC", "Latency", "Power", "img/J")
	for i, r := range rows {
		fmt.Fprintf(&sb, "%-22s %2d %10s %6d %6d %12s %7.1fW %10.1f\n",
			r.Profile, i+1, r.CPU, r.GPUMHz, r.EMCMHz, fmtDur(r.Latency), r.PowerW, r.SamplesPerJoule)
	}
	return sb.String()
}

// Figure8Result is the layer-wise roofline of EfficientNetV2-T on the
// Orin NX at maximum clocks, with the lower-EMC bandwidth lines.
type Figure8Result struct {
	Report  *core.Report
	BWLines []roofline.BWLine
	// EMCAnalyses quantifies the latency share above each line.
	EMCAnalyses []power.EMCAnalysis
}

// Figure8 reproduces §4.6's layer-wise analysis (fp16; the paper uses
// batch 128).
func Figure8(batch int) (*Figure8Result, error) {
	plat, err := hardware.Get("orin-nx")
	if err != nil {
		return nil, err
	}
	analyses, report, err := power.AnalyzeEMC("orin-nx", "efficientnetv2-t", batch, graph.Float16, []int{3199, 2133, 665})
	if err != nil {
		return nil, err
	}
	var lines []roofline.BWLine
	for _, a := range analyses {
		if a.EMCMHz == plat.Clocks.EMCMaxMHz {
			continue
		}
		lines = append(lines, roofline.BWLine{
			Label: fmt.Sprintf("EMC %d MHz (%.1f GB/s)", a.EMCMHz, a.BWLine/1e9),
			BW:    a.BWLine,
		})
	}
	return &Figure8Result{Report: report, BWLines: lines, EMCAnalyses: analyses}, nil
}

// FormatFigure8 summarizes the bandwidth-line analysis.
func FormatFigure8(f *Figure8Result) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 8: layer-wise roofline for EfficientNetV2-T (Orin NX, fp16, batch %d).\n", f.Report.Batch)
	fmt.Fprintf(&sb, "  conv layers take %.1f%% of latency (paper: ~70%%)\n", ConvShare(f.Report)*100)
	for _, a := range f.EMCAnalyses {
		fmt.Fprintf(&sb, "  EMC %4d MHz line (%.1f GB/s): %.1f%% of latency above it\n",
			a.EMCMHz, a.BWLine/1e9, a.AffectedShare*100)
	}
	return sb.String()
}
