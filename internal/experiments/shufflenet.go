package experiments

import (
	"fmt"
	"strings"
	"time"

	"proof/internal/core"
	"proof/internal/graph"
	"proof/internal/roofline"
)

// Table5Row is one batch-size row of the ShuffleNetV2 modification
// study (Table 5).
type Table5Row struct {
	Model   string
	ParamsM float64
	// Accuracy carries the paper's re-training result (68.9% original,
	// 70.1% modified); performance simulation cannot produce it.
	AccuracyPct float64
	Batch       int
	GFLOP       float64
	Latency     time.Duration
	Throughput  float64
	GFLOPS      float64
	BandwidthGB float64
	// Speedup vs the original model at the same batch (1.0 for the
	// original rows).
	Speedup float64
}

// Table5Batches are the paper's batch sizes.
var Table5Batches = []int{1, 128, 2048}

// paperAccuracy carries the published ImageNet Top-1 results of §4.5.
var paperAccuracy = map[string]float64{
	"shufflenetv2-1.0":     68.9,
	"shufflenetv2-1.0-mod": 70.1,
}

// Table5 reproduces the §4.5 effectiveness study: original vs modified
// ShuffleNetV2 x1.0 on the A100 at fp16 across batch sizes.
func Table5(batches []int) ([]Table5Row, error) {
	if batches == nil {
		batches = Table5Batches
	}
	var rows []Table5Row
	originalLatency := map[int]time.Duration{}
	for _, key := range []string{"shufflenetv2-1.0", "shufflenetv2-1.0-mod"} {
		for _, batch := range batches {
			r, err := profileFor(key, "a100", batch, core.Options{DType: graph.Float16})
			if err != nil {
				return nil, fmt.Errorf("table5: %s bs%d: %w", key, batch, err)
			}
			row := Table5Row{
				Model:       key,
				ParamsM:     r.ParamsM,
				AccuracyPct: paperAccuracy[key],
				Batch:       batch,
				GFLOP:       float64(r.EndToEnd.FLOP) / 1e9,
				Latency:     r.TotalLatency,
				Throughput:  r.Throughput,
				GFLOPS:      r.EndToEnd.FLOPS / 1e9,
				BandwidthGB: r.EndToEnd.Bandwidth / 1e9,
				Speedup:     1,
			}
			if key == "shufflenetv2-1.0" {
				originalLatency[batch] = r.TotalLatency
			} else if base := originalLatency[batch]; base > 0 {
				row.Speedup = float64(base) / float64(r.TotalLatency)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// FormatTable5 renders Table 5.
func FormatTable5(rows []Table5Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table 5: Effectiveness of the modified ShuffleNetV2 x1.0 (A100, fp16).\n")
	fmt.Fprintf(&sb, "%-22s %8s %7s %6s %10s %11s %13s %10s %9s %8s\n",
		"Model", "Params", "Top-1", "Batch", "GFLOP", "Latency", "images/s", "GFLOP/s", "GB/s", "Speedup")
	for _, r := range rows {
		speed := "-"
		if r.Speedup != 1 {
			speed = fmt.Sprintf("%.2fx", r.Speedup)
		}
		fmt.Fprintf(&sb, "%-22s %7.2fM %6.1f%% %6d %10.3f %11s %13.0f %10.1f %9.1f %8s\n",
			r.Model, r.ParamsM, r.AccuracyPct, r.Batch, r.GFLOP,
			fmtDur(r.Latency), r.Throughput, r.GFLOPS, r.BandwidthGB, speed)
	}
	sb.WriteString("(Top-1 accuracies are the paper's re-training results, carried as constants.)\n")
	return sb.String()
}

// Figure6Result is the layer-wise analysis of original vs modified
// ShuffleNetV2 (Figure 6), in PRoof's prediction mode as in the paper.
type Figure6Result struct {
	Original *core.Report
	Modified *core.Report
}

// Figure6 runs the layer-wise roofline analysis of §4.5 (prediction
// mode, fp16; the paper uses batch 2048).
func Figure6(batch int) (*Figure6Result, error) {
	orig, err := profileFor("shufflenetv2-1.0", "a100", batch, core.Options{DType: graph.Float16})
	if err != nil {
		return nil, err
	}
	mod, err := profileFor("shufflenetv2-1.0-mod", "a100", batch, core.Options{DType: graph.Float16})
	if err != nil {
		return nil, err
	}
	return &Figure6Result{Original: orig, Modified: mod}, nil
}

// DataMovementShare sums the latency share of transpose and copy layers
// — the quantity Figure 6 shows collapsing after the modification.
func DataMovementShare(r *core.Report) float64 {
	var share float64
	for _, l := range r.Layers {
		switch l.Category {
		case "transpose", "copy", "datamove":
			share += l.Point.Share
		}
	}
	return share
}

// ConvShare sums the latency share of convolution layers.
func ConvShare(r *core.Report) float64 {
	var share float64
	for _, l := range r.Layers {
		switch l.Category {
		case "conv", "pwconv", "dwconv":
			share += l.Point.Share
		}
	}
	return share
}

// FormatFigure6 summarizes the before/after distributions.
func FormatFigure6(f *Figure6Result) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 6: ShuffleNetV2 layer-wise roofline, original vs modified (A100, fp16, batch %d, prediction mode).\n",
		f.Original.Batch)
	describe := func(label string, r *core.Report) {
		fmt.Fprintf(&sb, "(%s) latency %s, %.2f TFLOP/s end-to-end\n",
			label, fmtDur(r.TotalLatency), r.EndToEnd.FLOPS/1e12)
		fmt.Fprintf(&sb, "    conv layers:          %5.1f%% of latency\n", ConvShare(r)*100)
		fmt.Fprintf(&sb, "    transpose+copy layers:%5.1f%% of latency\n", DataMovementShare(r)*100)
	}
	describe("original", f.Original)
	describe("modified", f.Modified)
	fmt.Fprintf(&sb, "speedup: %.2fx\n", float64(f.Original.TotalLatency)/float64(f.Modified.TotalLatency))
	return sb.String()
}

// Figure6Points extracts the roofline points of a report (for the
// dataviewer charts).
func Figure6Points(r *core.Report) []roofline.Point {
	pts := make([]roofline.Point, 0, len(r.Layers))
	for _, l := range r.Layers {
		pts = append(pts, l.Point)
	}
	return pts
}

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.3fms", float64(d)/1e6)
	}
	return fmt.Sprintf("%.1fµs", float64(d)/1e3)
}
