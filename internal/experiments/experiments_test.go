package experiments

import (
	"strings"
	"testing"
)

func TestTable2(t *testing.T) {
	rows := Table2()
	if len(rows) != 7 {
		t.Fatalf("Table 2 has %d rows, want 7", len(rows))
	}
	out := FormatTable2(rows)
	for _, want := range []string{"A100", "RTX 4090", "Xeon", "Xavier", "Orin", "Raspberry", "NPU"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 2 missing %q", want)
		}
	}
}

func TestTable3ShapeHolds(t *testing.T) {
	rows, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 20 {
		t.Fatalf("Table 3 has %d rows, want 20", len(rows))
	}
	for _, r := range rows {
		relP := r.ParamsM / r.PaperParamsM
		if relP < 0.85 || relP > 1.15 {
			t.Errorf("%s: params %.1fM vs paper %.1fM", r.Name, r.ParamsM, r.PaperParamsM)
		}
		relG := r.GFLOP / r.PaperGFLOP
		if relG < 0.90 || relG > 1.10 {
			t.Errorf("%s: GFLOP %.3f vs paper %.3f", r.Name, r.GFLOP, r.PaperGFLOP)
		}
	}
	if !strings.Contains(FormatTable3(rows), "ResNet-50") {
		t.Error("formatting broken")
	}
}

func TestTable4ShapeHolds(t *testing.T) {
	rows, err := Table4WithBatch(16)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("Table 4 has %d rows", len(rows))
	}
	byModel := map[string]Table4Row{}
	for _, r := range rows {
		byModel[r.Model] = r
		// Memory prediction within +/-12% (paper: a few percent).
		if r.MemoryDiff < -0.12 || r.MemoryDiff > 0.12 {
			t.Errorf("%s: memory diff %.1f%% too large", r.Model, r.MemoryDiff*100)
		}
		// Counter profiling must dwarf the analytical model's
		// negligible cost: minutes of replay per model.
		if r.ProfTimeSec < 30 {
			t.Errorf("%s: profiling time %.0fs, expected minutes", r.Model, r.ProfTimeSec)
		}
	}
	// The sign structure of the paper's FLOP diffs must reproduce:
	// depth-wise-heavy CNNs predict *below* the padded hardware count,
	// ViT predicts *above* it (SFU instructions unseen by counters).
	if byModel["mobilenetv2-1.0"].FLOPDiff > -0.05 {
		t.Errorf("MobileNetV2 FLOP diff = %+.1f%%, paper has -24%%", byModel["mobilenetv2-1.0"].FLOPDiff*100)
	}
	if byModel["efficientnetv2-s"].FLOPDiff > -0.03 {
		t.Errorf("EfficientNetV2-S FLOP diff = %+.1f%%, paper has -20%%", byModel["efficientnetv2-s"].FLOPDiff*100)
	}
	if d := byModel["resnet-50"].FLOPDiff; d < -0.15 || d > 0.05 {
		t.Errorf("ResNet-50 FLOP diff = %+.1f%%, paper has -2%%", d*100)
	}
	if byModel["vit-t"].FLOPDiff < 0 {
		t.Errorf("ViT-t FLOP diff = %+.1f%%, paper has +9.8%%", byModel["vit-t"].FLOPDiff*100)
	}
	if !strings.Contains(FormatTable4(rows), "resnet-50") {
		t.Error("formatting broken")
	}
}

func TestFigure4A100ShapeHolds(t *testing.T) {
	s, err := Figure4("a100")
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 20 {
		t.Fatalf("A100 should run all 20 models, got %d", len(s.Points))
	}
	byName := map[string]float64{} // key -> attained FLOP/s
	memBound := 0
	for _, p := range s.Points {
		name := p.Name[strings.Index(p.Name, " ")+1:]
		byName[name] = p.FLOPS
		if p.Bound == "memory" {
			memBound++
		}
		if p.FLOPS > s.Model.PeakFLOPS*1.05 {
			t.Errorf("%s attains %.2e above ceiling", p.Name, p.FLOPS)
		}
	}
	// §4.3: many models sit in the memory-bound lower-left; only a
	// few exceed half the peak.
	if memBound < 10 {
		t.Errorf("only %d models memory-bound on A100, expected most", memBound)
	}
	// "Only a small number of models have achieved FLOP/s rates
	// exceeding half of the peak FLOP/s" (§4.3) — peak meaning the
	// theoretical 312 TFLOP/s.
	overHalfPeak := 0
	for _, f := range byName {
		if f > s.Model.TheoreticalFLOPS/2 {
			overHalfPeak++
		}
	}
	if overHalfPeak > 8 || overHalfPeak == 0 {
		t.Errorf("%d models exceed half the theoretical peak, paper says a small number", overHalfPeak)
	}
	// ResNet-50's efficiency beats the depth-wise-heavy models.
	if byName["resnet-50"] <= byName["mobilenetv2-1.0"] {
		t.Error("ResNet-50 should attain higher FLOP/s than MobileNetV2")
	}
	if byName["efficientnetv2-t"] <= byName["efficientnet-b4"] {
		t.Error("EfficientNetV2-T should attain higher FLOP/s than EfficientNet B4 (§4.4)")
	}
}

func TestFigure4EdgeAndNPUSkips(t *testing.T) {
	s, err := Figure4("rpi4b")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range s.Points {
		if strings.Contains(p.Name, "vit") || strings.Contains(p.Name, "swin") || strings.Contains(p.Name, "sd-unet") {
			t.Errorf("edge platform should skip %s", p.Name)
		}
	}
	if len(s.Skipped) == 0 {
		t.Error("edge platform should record skips")
	}
	npu, err := Figure4("npu3720")
	if err != nil {
		t.Fatal(err)
	}
	if len(npu.Points) >= 20 || len(npu.Points) == 0 {
		t.Errorf("NPU should run only a small portion of models, got %d", len(npu.Points))
	}
}

func TestFigure4PlatformOrdering(t *testing.T) {
	a100, err := Figure4("a100")
	if err != nil {
		t.Fatal(err)
	}
	rpi, err := Figure4("rpi4b")
	if err != nil {
		t.Fatal(err)
	}
	find := func(s *Figure4Series, key string) float64 {
		for _, p := range s.Points {
			if strings.HasSuffix(p.Name, key) {
				return p.FLOPS
			}
		}
		return 0
	}
	// Four orders of magnitude between a data-center GPU and a
	// Raspberry Pi.
	ra, rr := find(a100, "resnet-50"), find(rpi, "resnet-50")
	if ra < 100*rr {
		t.Errorf("A100 (%.2e) should dwarf RPi (%.2e) on ResNet-50", ra, rr)
	}
}

func TestFigure5ShapeHolds(t *testing.T) {
	reports, err := Figure5(16)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 4 {
		t.Fatalf("Figure 5 has %d reports", len(reports))
	}
	// ViT uses prediction mode (the paper's DLProf-crash fallback).
	if reports["vit-t"].Mode != "predicted" {
		t.Error("ViT should use the analytical model")
	}
	if reports["resnet-50"].Mode != "measured" {
		t.Error("ResNet-50 should use measured mode")
	}
	// §4.4: EfficientNet B4's low efficiency stems from depth-wise
	// convolution; V2-T (fused MBConv stages) attains higher FLOP/s.
	b4 := reports["efficientnet-b4"].EndToEnd.FLOPS
	v2t := reports["efficientnetv2-t"].EndToEnd.FLOPS
	if v2t <= b4 {
		t.Errorf("V2-T (%.2e) should beat B4 (%.2e)", v2t, b4)
	}
	// ViT's MatMul layers carry most of the FLOP.
	var matmulShare float64
	for _, l := range reports["vit-t"].Layers {
		if l.Category == "matmul" {
			matmulShare += l.Point.Share
		}
	}
	if matmulShare < 0.4 {
		t.Errorf("ViT matmul latency share = %.2f, should dominate", matmulShare)
	}
	if !strings.Contains(FormatFigure5(reports), "vit-t") {
		t.Error("formatting broken")
	}
}

func TestTable5ShapeHolds(t *testing.T) {
	rows, err := Table5([]int{1, 128, 2048})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("Table 5 has %d rows", len(rows))
	}
	speedups := map[int]float64{}
	for _, r := range rows {
		if r.Model == "shufflenetv2-1.0-mod" {
			speedups[r.Batch] = r.Speedup
		}
	}
	// Paper: 1.39x / 1.49x / 1.64x — the modification must win at
	// every batch, by a factor in the 1.2-2.2 band.
	for batch, s := range speedups {
		if s < 1.2 || s > 2.2 {
			t.Errorf("batch %d speedup = %.2fx, paper band is ~1.4-1.6x", batch, s)
		}
	}
	// Speedup grows with batch (as data movement dominates more).
	if !(speedups[2048] > speedups[1]) {
		t.Errorf("speedup should grow with batch: %v", speedups)
	}
	if !strings.Contains(FormatTable5(rows), "Speedup") {
		t.Error("formatting broken")
	}
}

func TestFigure6ShapeHolds(t *testing.T) {
	f, err := Figure6(256)
	if err != nil {
		t.Fatal(err)
	}
	origDM := DataMovementShare(f.Original)
	modDM := DataMovementShare(f.Modified)
	// §4.5: transpose and data-copy layers take the most time in the
	// original; significantly less in the modified model.
	if origDM < 0.35 {
		t.Errorf("original data-movement share = %.2f, should dominate", origDM)
	}
	if modDM >= origDM/1.5 {
		t.Errorf("modified data-movement share = %.2f, should collapse from %.2f", modDM, origDM)
	}
	// Conv layers contribute the majority of FLOP but only ~40% of
	// latency in the original.
	if cs := ConvShare(f.Original); cs > 0.6 {
		t.Errorf("original conv share = %.2f, paper says ~40%%", cs)
	}
	if !strings.Contains(FormatFigure6(f), "speedup") {
		t.Error("formatting broken")
	}
}

func TestTable6ShapeHolds(t *testing.T) {
	rows, err := Table6()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("Table 6 has %d rows", len(rows))
	}
	for i, r := range rows {
		ref := Table6Paper[i]
		if rel := r.FLOPS / 1e12 / ref[0]; rel < 0.85 || rel > 1.15 {
			t.Errorf("row %d: TFLOP/s %.2f vs paper %.2f", i+1, r.FLOPS/1e12, ref[0])
		}
		if rel := r.PowerW / ref[2]; rel < 0.85 || rel > 1.15 {
			t.Errorf("row %d: power %.1f vs paper %.1f", i+1, r.PowerW, ref[2])
		}
	}
	if !strings.Contains(FormatTable6(rows), "Table 6") {
		t.Error("formatting broken")
	}
}

func TestTable7ShapeHolds(t *testing.T) {
	rows, tune, err := Table7(16)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("Table 7 has %d rows, want 10", len(rows))
	}
	var ours, maxn Table7Row
	for _, r := range rows {
		switch r.Profile {
		case "optimal (ours)":
			ours = r
		case `stock "MAXN"`:
			maxn = r
		}
	}
	if ours.PowerW > 15.0 {
		t.Errorf("tuned profile draws %.1f W, budget is 15", ours.PowerW)
	}
	if maxn.PowerW <= 15.0 {
		t.Error("MAXN should exceed the 15 W budget")
	}
	if maxn.Latency >= ours.Latency {
		t.Error("MAXN (unlimited power) must be faster than the budget-tuned profile")
	}
	// Ours must beat every other profile that fits the budget.
	for _, r := range rows {
		if r.Profile == "optimal (ours)" {
			continue
		}
		if r.PowerW <= 15.0 && r.Latency < ours.Latency {
			t.Errorf("profile %q (%.1fW, %v) beats ours (%.1fW, %v)",
				r.Profile, r.PowerW, r.Latency, ours.PowerW, ours.Latency)
		}
	}
	if tune.ChosenEMCMHz != 2133 {
		t.Errorf("chosen EMC = %d, paper picks 2133", tune.ChosenEMCMHz)
	}
	if !strings.Contains(FormatTable7(rows), "optimal (ours)") {
		t.Error("formatting broken")
	}
}

func TestFigure8ShapeHolds(t *testing.T) {
	f, err := Figure8(16)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.BWLines) != 2 {
		t.Fatalf("Figure 8 needs the 2133 and 665 MHz lines, got %d", len(f.BWLines))
	}
	// §4.6: conv layers take about 70% of the latency.
	cs := ConvShare(f.Report)
	if cs < 0.45 || cs > 0.9 {
		t.Errorf("conv latency share = %.2f, paper says ~0.7", cs)
	}
	// The 2133 line clips little; the 665 line clips most.
	var a2133, a665 float64
	for _, a := range f.EMCAnalyses {
		switch a.EMCMHz {
		case 2133:
			a2133 = a.AffectedShare
		case 665:
			a665 = a.AffectedShare
		}
	}
	if a2133 > 0.45 {
		t.Errorf("EMC 2133 affected share = %.2f, should be small", a2133)
	}
	if a665 < 0.5 {
		t.Errorf("EMC 665 affected share = %.2f, should be large", a665)
	}
	if !strings.Contains(FormatFigure8(f), "Figure 8") {
		t.Error("formatting broken")
	}
}

func TestPerLayerTable4(t *testing.T) {
	rows, err := PerLayerTable4(8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Layers == 0 {
			t.Errorf("%s: no layers measured", r.Model)
		}
		// Per-layer memory predictions stay within the cache-noise
		// envelope at the median (counters deviate by -5%..+8%).
		if r.MemoryErrP50 > 0.10 {
			t.Errorf("%s: median per-layer memory error %.1f%%", r.Model, r.MemoryErrP50*100)
		}
		if r.MemoryErrP90 > 0.25 {
			t.Errorf("%s: p90 per-layer memory error %.1f%%", r.Model, r.MemoryErrP90*100)
		}
	}
	if !strings.Contains(FormatPerLayerTable4(rows), "per-backend-layer") {
		t.Error("formatting broken")
	}
}
