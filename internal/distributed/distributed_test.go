package distributed

import (
	"testing"
)

func TestProfileDataParallel(t *testing.T) {
	r, err := Profile(Options{
		Model: "resnet-50", Platform: "a100", Devices: 4, GlobalBatch: 128,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.PerDeviceBatch != 32 {
		t.Errorf("per-device batch = %d", r.PerDeviceBatch)
	}
	if r.TransferTime <= 0 {
		t.Error("host transfer time must be positive")
	}
	if r.TotalLatency <= r.DeviceReport.TotalLatency {
		t.Error("total latency must include transfers")
	}
	if r.Throughput <= 0 {
		t.Error("throughput must be positive")
	}
}

func TestDistributedThroughputScales(t *testing.T) {
	one, err := Profile(Options{Model: "resnet-50", Platform: "a100", Devices: 1, GlobalBatch: 256})
	if err != nil {
		t.Fatal(err)
	}
	four, err := Profile(Options{Model: "resnet-50", Platform: "a100", Devices: 4, GlobalBatch: 256})
	if err != nil {
		t.Fatal(err)
	}
	if four.Throughput <= one.Throughput {
		t.Errorf("4 devices (%.0f/s) should out-run 1 (%.0f/s)", four.Throughput, one.Throughput)
	}
	// But not perfectly: host link + small-batch inefficiency.
	if four.Throughput >= 4*one.Throughput {
		t.Error("scaling cannot be super-linear")
	}
}

func TestScalingCurve(t *testing.T) {
	points, err := ScalingCurve(Options{Model: "resnet-50", Platform: "a100", GlobalBatch: 256},
		[]int{1, 2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("points = %d", len(points))
	}
	if points[0].Efficiency < 0.99 || points[0].Efficiency > 1.01 {
		t.Errorf("single-device efficiency = %.2f, want 1.0", points[0].Efficiency)
	}
	for i := 1; i < len(points); i++ {
		if points[i].Efficiency > points[i-1].Efficiency+1e-9 {
			t.Errorf("efficiency must not increase with device count: %+v", points)
		}
		if points[i].Throughput < points[i-1].Throughput {
			t.Errorf("throughput should still grow with devices at this batch: %+v", points)
		}
	}
}

func TestDistributedErrors(t *testing.T) {
	if _, err := Profile(Options{Model: "resnet-50", Platform: "a100", Devices: 0, GlobalBatch: 8}); err == nil {
		t.Error("zero devices must error")
	}
	if _, err := Profile(Options{Model: "resnet-50", Platform: "a100", Devices: 3, GlobalBatch: 8}); err == nil {
		t.Error("indivisible batch must error")
	}
	if _, err := Profile(Options{Model: "resnet-50", Platform: "a100", Devices: 16, GlobalBatch: 8}); err == nil {
		t.Error("batch smaller than devices must error")
	}
	if _, err := Profile(Options{Model: "nope", Platform: "a100", Devices: 1, GlobalBatch: 8}); err == nil {
		t.Error("unknown model must error")
	}
}
