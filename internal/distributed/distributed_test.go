package distributed

import (
	"strings"
	"testing"
)

func TestProfileDataParallel(t *testing.T) {
	r, err := Profile(Options{
		Model: "resnet-50", Platform: "a100", Devices: 4, GlobalBatch: 128,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.PerDeviceBatch != 32 {
		t.Errorf("per-device batch = %d", r.PerDeviceBatch)
	}
	if r.TransferTime <= 0 {
		t.Error("host transfer time must be positive")
	}
	if r.TotalLatency <= r.DeviceReport.TotalLatency {
		t.Error("total latency must include transfers")
	}
	if r.Throughput <= 0 {
		t.Error("throughput must be positive")
	}
}

func TestDistributedThroughputScales(t *testing.T) {
	one, err := Profile(Options{Model: "resnet-50", Platform: "a100", Devices: 1, GlobalBatch: 256})
	if err != nil {
		t.Fatal(err)
	}
	four, err := Profile(Options{Model: "resnet-50", Platform: "a100", Devices: 4, GlobalBatch: 256})
	if err != nil {
		t.Fatal(err)
	}
	if four.Throughput <= one.Throughput {
		t.Errorf("4 devices (%.0f/s) should out-run 1 (%.0f/s)", four.Throughput, one.Throughput)
	}
	// But not perfectly: host link + small-batch inefficiency.
	if four.Throughput >= 4*one.Throughput {
		t.Error("scaling cannot be super-linear")
	}
}

func TestScalingCurve(t *testing.T) {
	points, err := ScalingCurve(Options{Model: "resnet-50", Platform: "a100", GlobalBatch: 256},
		[]int{1, 2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("points = %d", len(points))
	}
	if points[0].Efficiency < 0.99 || points[0].Efficiency > 1.01 {
		t.Errorf("single-device efficiency = %.2f, want 1.0", points[0].Efficiency)
	}
	for i := 1; i < len(points); i++ {
		if points[i].Efficiency > points[i-1].Efficiency+1e-9 {
			t.Errorf("efficiency must not increase with device count: %+v", points)
		}
		if points[i].Throughput < points[i-1].Throughput {
			t.Errorf("throughput should still grow with devices at this batch: %+v", points)
		}
	}
}

// TestScalingCurveBaselineIsPerDeviceBatch is the regression test for
// the efficiency baseline: each point must be judged against one
// device running that point's per-device batch ("the same per-device
// conditions"), not the full global batch. The old full-batch baseline
// conflated batch-size throughput effects with scaling loss, producing
// efficiencies that were not comparable across device counts.
func TestScalingCurveBaselineIsPerDeviceBatch(t *testing.T) {
	opts := Options{Model: "resnet-50", Platform: "a100", GlobalBatch: 256}
	points, err := ScalingCurve(opts, []int{2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		if p.BaselineBatch*p.Devices != opts.GlobalBatch {
			t.Errorf("devices %d: BaselineBatch = %d, want %d",
				p.Devices, p.BaselineBatch, opts.GlobalBatch/p.Devices)
		}
		// Recompute the efficiency from an independent one-device run
		// at the per-device batch; the stored value must match it
		// exactly (the simulator is deterministic). The old code's
		// full-batch baseline yields a different value for every
		// point here.
		base, err := Profile(Options{
			Model: opts.Model, Platform: opts.Platform, Devices: 1,
			GlobalBatch: p.BaselineBatch,
		})
		if err != nil {
			t.Fatal(err)
		}
		want := p.Throughput / (float64(p.Devices) * base.Throughput)
		if diff := p.Efficiency - want; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("devices %d: Efficiency = %v, want %v (per-device-batch baseline)",
				p.Devices, p.Efficiency, want)
		}
		// Against the matching baseline, scaling loss is the only
		// difference, so efficiency is provably <= 1 (and real: the
		// host link always costs something).
		if p.Efficiency > 1+1e-9 {
			t.Errorf("devices %d: efficiency %v > 1 — baseline conditions mismatch",
				p.Devices, p.Efficiency)
		}
		if p.Efficiency <= 0 || p.Efficiency >= 1 {
			t.Errorf("devices %d: efficiency %v, want in (0, 1)", p.Devices, p.Efficiency)
		}
	}
}

// TestDistributedEdgeCases locks the Options validation surface: every
// rejected shape names what is wrong, every accepted shape profiles.
func TestDistributedEdgeCases(t *testing.T) {
	tests := []struct {
		name    string
		opts    Options
		wantErr string // substring of the error ("" = success)
	}{
		{"zero devices",
			Options{Model: "resnet-50", Platform: "a100", Devices: 0, GlobalBatch: 8},
			"at least 1 device"},
		{"negative devices",
			Options{Model: "resnet-50", Platform: "a100", Devices: -2, GlobalBatch: 8},
			"at least 1 device"},
		{"batch smaller than devices",
			Options{Model: "resnet-50", Platform: "a100", Devices: 16, GlobalBatch: 8},
			"smaller than device count"},
		{"uneven split 8/3",
			Options{Model: "resnet-50", Platform: "a100", Devices: 3, GlobalBatch: 8},
			"not divisible"},
		{"uneven split 100/7",
			Options{Model: "resnet-50", Platform: "a100", Devices: 7, GlobalBatch: 100},
			"not divisible"},
		{"unknown model",
			Options{Model: "nope", Platform: "a100", Devices: 1, GlobalBatch: 8},
			"unknown model"},
		{"unknown platform",
			Options{Model: "resnet-50", Platform: "nope", Devices: 1, GlobalBatch: 8},
			"unknown platform"},
		{"single device, batch == devices",
			Options{Model: "resnet-50", Platform: "a100", Devices: 4, GlobalBatch: 4},
			""},
		{"explicit host link",
			Options{Model: "resnet-50", Platform: "a100", Devices: 2, GlobalBatch: 8, HostLinkBW: 64e9},
			""},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			r, err := Profile(tt.opts)
			if tt.wantErr == "" {
				if err != nil {
					t.Fatalf("Profile: %v", err)
				}
				if r.PerDeviceBatch*r.Devices != tt.opts.GlobalBatch {
					t.Errorf("per-device %d x %d devices != global %d",
						r.PerDeviceBatch, r.Devices, tt.opts.GlobalBatch)
				}
				return
			}
			if err == nil {
				t.Fatalf("Profile succeeded, want error containing %q", tt.wantErr)
			}
			if !strings.Contains(err.Error(), tt.wantErr) {
				t.Errorf("error %q does not mention %q", err, tt.wantErr)
			}
		})
	}
}

// TestHostLinkBWOverride pins the transfer model: the same workload
// over a k-times-faster host link spends exactly k times less time in
// transfers, and the default (0) means PCIe 4.0 x16.
func TestHostLinkBWOverride(t *testing.T) {
	base := Options{Model: "resnet-50", Platform: "a100", Devices: 4, GlobalBatch: 128}
	slow, err := Profile(base)
	if err != nil {
		t.Fatal(err)
	}
	fast4x := base
	fast4x.HostLinkBW = 4 * defaultHostLinkBW
	fast, err := Profile(fast4x)
	if err != nil {
		t.Fatal(err)
	}
	if fast.TransferTime <= 0 || slow.TransferTime <= 0 {
		t.Fatal("transfer times must be positive")
	}
	ratio := float64(slow.TransferTime) / float64(fast.TransferTime)
	if ratio < 3.9 || ratio > 4.1 {
		t.Errorf("4x link speedup gave %.2fx transfer-time ratio", ratio)
	}
	if fast.Throughput <= slow.Throughput {
		t.Error("faster host link must not lower throughput")
	}
	// Device-side compute is untouched by the link override.
	if fast.DeviceReport.TotalLatency != slow.DeviceReport.TotalLatency {
		t.Error("host link override leaked into device compute latency")
	}

	explicitDefault := base
	explicitDefault.HostLinkBW = defaultHostLinkBW
	dflt, err := Profile(explicitDefault)
	if err != nil {
		t.Fatal(err)
	}
	if dflt.TransferTime != slow.TransferTime {
		t.Errorf("HostLinkBW 0 (%v) and explicit default (%v) disagree",
			slow.TransferTime, dflt.TransferTime)
	}
}
