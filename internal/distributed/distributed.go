// Package distributed explores the paper's stated future work (§5):
// adapting PRoof to distributed environments. It simulates data-parallel
// inference serving — a global batch split across N identical devices,
// with host-link transfers for input scatter and output gather — and
// reports per-device rooflines plus scaling efficiency. The analysis
// reuses the single-device pipeline unchanged: data parallelism at the
// serving layer composes with per-device profiling.
package distributed

import (
	"fmt"
	"time"

	"proof/internal/core"
	"proof/internal/graph"
)

// Options configures a data-parallel profiling run.
type Options struct {
	// Model and Platform select the workload and device type.
	Model    string
	Platform string
	// Devices is the number of identical devices.
	Devices int
	// GlobalBatch is the total batch split evenly across devices.
	GlobalBatch int
	// DType is the inference data type (invalid = platform default).
	DType graph.DataType
	// HostLinkBW overrides the host interconnect bandwidth in B/s
	// (0 = PCIe 4.0 x16 effective, 25 GB/s).
	HostLinkBW float64
}

// Result is the outcome of a data-parallel run.
type Result struct {
	// Devices echoes the device count.
	Devices int `json:"devices"`
	// PerDeviceBatch is the per-device slice of the global batch.
	PerDeviceBatch int `json:"per_device_batch"`
	// DeviceReport is the single-device profiling report.
	DeviceReport *core.Report `json:"device_report"`
	// TransferTime is the input-scatter + output-gather time over the
	// host link (devices transfer concurrently; the host link is the
	// shared bottleneck).
	TransferTime time.Duration `json:"transfer_time_ns"`
	// TotalLatency is transfer + device compute for one global batch.
	TotalLatency time.Duration `json:"total_latency_ns"`
	// Throughput is global samples per second.
	Throughput float64 `json:"throughput"`
}

const defaultHostLinkBW = 25e9 // PCIe 4.0 x16 effective

// Profile simulates data-parallel inference of one global batch.
func Profile(opts Options) (*Result, error) {
	if opts.Devices < 1 {
		return nil, fmt.Errorf("distributed: need at least 1 device")
	}
	if opts.GlobalBatch < opts.Devices {
		return nil, fmt.Errorf("distributed: global batch %d smaller than device count %d",
			opts.GlobalBatch, opts.Devices)
	}
	if opts.GlobalBatch%opts.Devices != 0 {
		return nil, fmt.Errorf("distributed: global batch %d not divisible by %d devices",
			opts.GlobalBatch, opts.Devices)
	}
	perDevice := opts.GlobalBatch / opts.Devices
	report, err := core.Profile(core.Options{
		Model:    opts.Model,
		Platform: opts.Platform,
		Batch:    perDevice,
		DType:    opts.DType,
	})
	if err != nil {
		return nil, err
	}

	// Host transfers: the full global batch's inputs and outputs
	// cross the shared host link once.
	link := opts.HostLinkBW
	if link <= 0 {
		link = defaultHostLinkBW
	}
	ioBytes := boundaryBytes(report) * int64(opts.Devices)
	transfer := time.Duration(float64(ioBytes) / link * float64(time.Second))

	total := report.TotalLatency + transfer
	res := &Result{
		Devices:        opts.Devices,
		PerDeviceBatch: perDevice,
		DeviceReport:   report,
		TransferTime:   transfer,
		TotalLatency:   total,
	}
	if total > 0 {
		res.Throughput = float64(opts.GlobalBatch) / total.Seconds()
	}
	return res, nil
}

// boundaryBytes estimates the per-device input+output transfer volume
// from the report's reformat layers (which wrap the graph IO); falls
// back to a nominal share of traffic.
func boundaryBytes(r *core.Report) int64 {
	var bytes int64
	for _, l := range r.Layers {
		if l.IsReformat {
			bytes += l.Point.Bytes / 2 // one crossing, not read+write
		}
	}
	if bytes == 0 {
		bytes = r.EndToEnd.Bytes / 100
	}
	return bytes
}

// ScalingCurve profiles the same global batch across several device
// counts and reports throughput and scaling efficiency relative to one
// device.
type ScalingPoint struct {
	// Devices is the device count.
	Devices int `json:"devices"`
	// Throughput is global samples/s.
	Throughput float64 `json:"throughput"`
	// Efficiency is Throughput / (Devices x single-device throughput
	// at the same per-device conditions), i.e. against a one-device
	// baseline running BaselineBatch — the batch each device actually
	// sees at this point. Comparing against the full global batch on
	// one device would conflate batch-size throughput effects with
	// scaling loss.
	Efficiency float64 `json:"efficiency"`
	// BaselineBatch is the per-device batch the baseline ran at
	// (GlobalBatch / Devices).
	BaselineBatch int `json:"baseline_batch"`
}

// ScalingCurve sweeps device counts (each must divide globalBatch).
// Each point's baseline is a single device running that point's
// per-device batch, so efficiency isolates pure scaling loss (the
// host-link transfer) and is provably <= 1.
func ScalingCurve(opts Options, deviceCounts []int) ([]ScalingPoint, error) {
	// One-device baselines keyed by per-device batch: device counts
	// sharing a per-device batch share a baseline run.
	baselines := map[int]*Result{}
	var out []ScalingPoint
	for _, n := range deviceCounts {
		o := opts
		o.Devices = n
		r, err := Profile(o)
		if err != nil {
			return nil, err
		}
		base, ok := baselines[r.PerDeviceBatch]
		if !ok {
			base, err = Profile(Options{
				Model: opts.Model, Platform: opts.Platform, Devices: 1,
				GlobalBatch: r.PerDeviceBatch, DType: opts.DType, HostLinkBW: opts.HostLinkBW,
			})
			if err != nil {
				return nil, err
			}
			baselines[r.PerDeviceBatch] = base
		}
		eff := 0.0
		if base.Throughput > 0 {
			eff = r.Throughput / (float64(n) * base.Throughput)
		}
		out = append(out, ScalingPoint{
			Devices:       n,
			Throughput:    r.Throughput,
			Efficiency:    eff,
			BaselineBatch: r.PerDeviceBatch,
		})
	}
	return out, nil
}
