// Package parallel provides the small bounded-concurrency primitives the
// experiment sweeps use: independent profiling runs (different models,
// platforms, clock points) fan out across workers while preserving
// result order and failing fast on the first error.
package parallel

import (
	"runtime"
	"sync"
)

// Map applies f to every item using at most workers goroutines,
// returning results in input order. The first error cancels the
// remaining work (in-flight calls still finish) and is returned.
// workers <= 0 selects GOMAXPROCS.
func Map[T, R any](items []T, workers int, f func(T) (R, error)) ([]R, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(items) {
		workers = len(items)
	}
	results := make([]R, len(items))
	if len(items) == 0 {
		return results, nil
	}
	if workers <= 1 {
		for i, it := range items {
			r, err := f(it)
			if err != nil {
				return nil, err
			}
			results[i] = r
		}
		return results, nil
	}

	type job struct{ idx int }
	jobs := make(chan job)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	setErr := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	failed := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return firstErr != nil
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				if failed() {
					continue // drain remaining jobs after an error
				}
				r, err := f(items[j.idx])
				if err != nil {
					setErr(err)
					continue
				}
				results[j.idx] = r
			}
		}()
	}
	for i := range items {
		jobs <- job{idx: i}
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}

// ForEach is Map without results.
func ForEach[T any](items []T, workers int, f func(T) error) error {
	_, err := Map(items, workers, func(t T) (struct{}, error) {
		return struct{}{}, f(t)
	})
	return err
}
