// Package parallel provides the small bounded-concurrency primitives the
// experiment sweeps use: independent profiling runs (different models,
// platforms, clock points) fan out across workers while preserving
// result order and failing fast on the first error. The *Ctx variants
// additionally honor context cancellation and deadlines, so a sweep can
// be abandoned mid-flight (Ctrl-C on the CLI, a timed-out service
// request) without leaking goroutines.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"

	"proof/internal/obs"
)

// PanicError wraps a panic recovered from a worker function. Instead of
// crashing the whole process (a panic on a bare goroutine is fatal), the
// fan-out converts it into an error carrying the panic value and the
// worker's stack trace, and fails the sweep fast like any other error.
type PanicError struct {
	// Value is the value passed to panic().
	Value any
	// Stack is the worker goroutine's stack at the panic site.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("parallel: worker panic: %v\n%s", e.Value, e.Stack)
}

// call invokes f(ctx, item) converting a panic into a *PanicError.
func call[T, R any](ctx context.Context, f func(context.Context, T) (R, error), item T) (r R, err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Value: v, Stack: debug.Stack()}
		}
	}()
	return f(ctx, item)
}

// traceCall is call wrapped in a per-item "worker" span (no-op when no
// tracer is installed): each fan-out item becomes one span carrying
// the worker and item indices, so a pipeline trace shows exactly how a
// sweep spread across workers. A worker panic is recorded as the
// span's error before being converted to a *PanicError.
func traceCall[T, R any](ctx context.Context, f func(context.Context, T) (R, error), item T, worker, idx int) (R, error) {
	wctx, sp := obs.Start(ctx, "worker")
	sp.SetAttrInt("worker", int64(worker))
	sp.SetAttrInt("item", int64(idx))
	r, err := call(wctx, f, item)
	sp.EndErr(err)
	return r, err
}

// MapCtx applies f to every item using at most workers goroutines,
// returning results in input order. The first error cancels the
// remaining work: in-flight calls finish (they can also observe the
// cancellation through the context passed to f), queued items are never
// started, and the first error is returned. Cancelling ctx aborts the
// fan-out the same way, returning ctx.Err() if no worker failed first.
// A panicking worker is captured as a *PanicError instead of crashing
// the process. workers <= 0 selects GOMAXPROCS.
func MapCtx[T, R any](ctx context.Context, items []T, workers int, f func(context.Context, T) (R, error)) ([]R, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(items) {
		workers = len(items)
	}
	results := make([]R, len(items))
	if len(items) == 0 {
		return results, ctx.Err()
	}
	if workers <= 1 {
		for i, it := range items {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			r, err := traceCall(ctx, f, it, 0, i)
			if err != nil {
				return nil, err
			}
			results[i] = r
		}
		return results, nil
	}

	// inner is cancelled on the first failure so workers processing
	// long items can bail out early through the context they receive.
	inner, cancel := context.WithCancel(ctx)
	defer cancel()

	jobs := make(chan int)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	setErr := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for idx := range jobs {
				if inner.Err() != nil {
					continue // drain remaining jobs after an error or cancellation
				}
				r, err := traceCall(inner, f, items[idx], w, idx)
				if err != nil {
					setErr(err)
					continue
				}
				results[idx] = r
			}
		}(w)
	}
dispatch:
	for i := range items {
		select {
		case jobs <- i:
		case <-inner.Done():
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()
	mu.Lock()
	err := firstErr
	mu.Unlock()
	if err != nil {
		return nil, err
	}
	// No worker failed: if the fan-out still ended early, the caller's
	// context was cancelled.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// ForEachCtx is MapCtx without results.
func ForEachCtx[T any](ctx context.Context, items []T, workers int, f func(context.Context, T) error) error {
	_, err := MapCtx(ctx, items, workers, func(ctx context.Context, t T) (struct{}, error) {
		return struct{}{}, f(ctx, t)
	})
	return err
}

// Map applies f to every item using at most workers goroutines,
// returning results in input order. The first error (or captured worker
// panic) cancels the remaining work (in-flight calls still finish) and
// is returned. workers <= 0 selects GOMAXPROCS.
func Map[T, R any](items []T, workers int, f func(T) (R, error)) ([]R, error) {
	return MapCtx(context.Background(), items, workers, func(_ context.Context, t T) (R, error) {
		return f(t)
	})
}

// ForEach is Map without results.
func ForEach[T any](items []T, workers int, f func(T) error) error {
	_, err := Map(items, workers, func(t T) (struct{}, error) {
		return struct{}{}, f(t)
	})
	return err
}
