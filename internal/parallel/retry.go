package parallel

import (
	"context"
	"math/rand/v2"
	"time"
)

// Backoff shapes the delay schedule of Retry: capped exponential
// growth with optional jitter. The zero value means "one attempt, no
// delays" — callers opt in to every retry.
type Backoff struct {
	// Attempts is the total number of tries, including the first
	// (values < 1 behave as 1).
	Attempts int
	// Base is the delay before the first retry; each subsequent
	// retry doubles it.
	Base time.Duration
	// Max caps the grown delay (0 = uncapped).
	Max time.Duration
	// Jitter randomizes each delay by ±Jitter fraction (e.g. 0.2 =
	// ±20%), de-synchronizing retry herds. 0 disables jitter, which
	// also makes schedules deterministic for tests.
	Jitter float64
}

// delay returns the pause after the attempt-th try (1-based).
func (b Backoff) delay(attempt int) time.Duration {
	d := b.Base
	for i := 1; i < attempt; i++ {
		d *= 2
		if b.Max > 0 && d >= b.Max {
			d = b.Max
			break
		}
	}
	if b.Max > 0 && d > b.Max {
		d = b.Max
	}
	if b.Jitter > 0 && d > 0 {
		f := 1 + b.Jitter*(2*rand.Float64()-1)
		d = time.Duration(float64(d) * f)
	}
	return d
}

// Retry runs f up to b.Attempts times, sleeping the backoff schedule
// between failures, until f succeeds, the error is not retryable, or
// the context ends. f receives the 1-based attempt number; retryable
// decides whether a given failure is worth another try (nil means
// never retry). The context is consulted before every attempt and
// during every backoff sleep, so a cancelled caller stops the loop
// immediately; cancellation during a sleep surfaces the last
// attempt's error (the real failure), not the context error.
func Retry[R any](ctx context.Context, b Backoff, retryable func(error) bool, f func(ctx context.Context, attempt int) (R, error)) (R, error) {
	var zero R
	attempts := b.Attempts
	if attempts < 1 {
		attempts = 1
	}
	for attempt := 1; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return zero, err
		}
		r, err := f(ctx, attempt)
		if err == nil {
			return r, nil
		}
		if attempt >= attempts || retryable == nil || !retryable(err) {
			return zero, err
		}
		if !sleepCtx(ctx, b.delay(attempt)) {
			return zero, err
		}
	}
}

// sleepCtx pauses for d, returning false if ctx ended first.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
