package parallel

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestMapCtxOrderPreservation checks that results come back in input
// order even when completion order is scrambled by contention.
func TestMapCtxOrderPreservation(t *testing.T) {
	items := make([]int, 500)
	for i := range items {
		items[i] = i
	}
	got, err := MapCtx(context.Background(), items, 16, func(_ context.Context, v int) (int, error) {
		// Earlier items finish later: reverse the natural completion
		// order so a result-placement bug cannot hide.
		time.Sleep(time.Duration((500-v)%7) * 100 * time.Microsecond)
		return v * v, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range got {
		if r != i*i {
			t.Fatalf("result[%d] = %d, want %d", i, r, i*i)
		}
	}
}

// TestMapCtxFailFast checks that queued items are never started once a
// worker has failed: only the jobs already grabbed by a worker may run.
func TestMapCtxFailFast(t *testing.T) {
	const items, workers = 200, 4
	var calls atomic.Int64
	sentinel := errors.New("boom")
	_, err := MapCtx(context.Background(), make([]int, items), workers, func(_ context.Context, _ int) (int, error) {
		n := calls.Add(1)
		if n == 1 {
			return 0, sentinel
		}
		time.Sleep(5 * time.Millisecond)
		return 0, nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want %v", err, sentinel)
	}
	if c := calls.Load(); c > items/2 {
		t.Fatalf("fail-fast leak: %d of %d items ran after the first error", c, items)
	}
}

// TestMapCtxFirstErrorWins checks that a failed fan-out returns an
// error, not partial results.
func TestMapCtxFirstErrorWins(t *testing.T) {
	res, err := MapCtx(context.Background(), []int{1, 2, 3, 4}, 2, func(_ context.Context, v int) (int, error) {
		if v == 3 {
			return 0, fmt.Errorf("item %d failed", v)
		}
		return v, nil
	})
	if err == nil {
		t.Fatal("want error")
	}
	if res != nil {
		t.Fatalf("want nil results on error, got %v", res)
	}
}

// TestMapCtxPanicPropagation checks that a panicking worker surfaces as
// a *PanicError instead of crashing the process, in both the serial and
// the parallel paths.
func TestMapCtxPanicPropagation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		_, err := MapCtx(context.Background(), []int{0, 1, 2, 3}, workers, func(_ context.Context, v int) (int, error) {
			if v == 2 {
				panic("kaboom")
			}
			return v, nil
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %v, want *PanicError", workers, err)
		}
		if pe.Value != "kaboom" {
			t.Fatalf("workers=%d: panic value = %v", workers, pe.Value)
		}
		if len(pe.Stack) == 0 {
			t.Fatalf("workers=%d: missing stack trace", workers)
		}
	}
}

// TestMapCtxCancellationMidSweep cancels the context while workers are
// blocked mid-item and checks the fan-out unwinds promptly with
// ctx.Err(), without running the queued remainder.
func TestMapCtxCancellationMidSweep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	const items, workers = 100, 4
	var started atomic.Int64
	release := make(chan struct{})
	var once sync.Once
	done := make(chan struct{})
	var err error
	go func() {
		defer close(done)
		_, err = MapCtx(ctx, make([]int, items), workers, func(ctx context.Context, _ int) (int, error) {
			started.Add(1)
			once.Do(func() { close(release) }) // first item is in flight
			select {
			case <-ctx.Done():
				return 0, ctx.Err()
			case <-time.After(10 * time.Second):
				return 0, errors.New("worker was not cancelled")
			}
		})
	}()
	<-release
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("MapCtx did not unwind after cancellation")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if s := started.Load(); s > workers {
		t.Fatalf("%d items started after cancellation (max in-flight %d)", s, workers)
	}
}

// TestMapCtxDeadline checks deadline expiry behaves like cancellation.
func TestMapCtxDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := MapCtx(ctx, make([]int, 50), 4, func(ctx context.Context, _ int) (int, error) {
		select {
		case <-ctx.Done():
			return 0, ctx.Err()
		case <-time.After(10 * time.Second):
			return 0, nil
		}
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestMapCtxPreCancelled checks that an already-cancelled context never
// runs any item.
func TestMapCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var calls atomic.Int64
	for _, workers := range []int{1, 4} {
		_, err := MapCtx(ctx, make([]int, 20), workers, func(_ context.Context, _ int) (int, error) {
			calls.Add(1)
			return 0, nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
	}
	// The parallel path may hand at most one batch of jobs to workers
	// racing with the Done check; in practice nothing should run.
	if c := calls.Load(); c > 8 {
		t.Fatalf("%d items ran under a pre-cancelled context", c)
	}
}

// TestForEachCtx exercises the ForEach wrapper's cancellation path.
func TestForEachCtx(t *testing.T) {
	var sum atomic.Int64
	if err := ForEachCtx(context.Background(), []int{1, 2, 3, 4, 5}, 3, func(_ context.Context, v int) error {
		sum.Add(int64(v))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 15 {
		t.Fatalf("sum = %d, want 15", sum.Load())
	}
	sentinel := errors.New("nope")
	if err := ForEachCtx(context.Background(), []int{1, 2, 3}, 2, func(_ context.Context, v int) error {
		return sentinel
	}); !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want %v", err, sentinel)
	}
}

// TestMapCtxEmptyAndSerial covers the degenerate paths.
func TestMapCtxEmptyAndSerial(t *testing.T) {
	res, err := MapCtx(context.Background(), []int{}, 4, func(_ context.Context, v int) (int, error) {
		return v, nil
	})
	if err != nil || len(res) != 0 {
		t.Fatalf("empty: res=%v err=%v", res, err)
	}
	res, err = MapCtx(context.Background(), []int{7}, 1, func(_ context.Context, v int) (int, error) {
		return v + 1, nil
	})
	if err != nil || len(res) != 1 || res[0] != 8 {
		t.Fatalf("serial: res=%v err=%v", res, err)
	}
}
