package parallel

import (
	"context"
	"errors"
	"testing"
	"time"
)

var errTransient = errors.New("transient")

func alwaysRetry(error) bool { return true }

func TestRetrySucceedsAfterTransientFailures(t *testing.T) {
	calls := 0
	v, err := Retry(context.Background(), Backoff{Attempts: 5},
		alwaysRetry,
		func(ctx context.Context, attempt int) (string, error) {
			calls++
			if attempt != calls {
				t.Errorf("attempt = %d on call %d", attempt, calls)
			}
			if calls < 3 {
				return "", errTransient
			}
			return "ok", nil
		})
	if err != nil || v != "ok" {
		t.Fatalf("Retry = %q, %v", v, err)
	}
	if calls != 3 {
		t.Errorf("calls = %d, want 3", calls)
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	calls := 0
	_, err := Retry(context.Background(), Backoff{Attempts: 3}, alwaysRetry,
		func(ctx context.Context, _ int) (int, error) { calls++; return 0, errTransient })
	if !errors.Is(err, errTransient) {
		t.Fatalf("err = %v, want the attempt error", err)
	}
	if calls != 3 {
		t.Errorf("calls = %d, want 3", calls)
	}
}

func TestRetryStopsOnNonRetryable(t *testing.T) {
	permanent := errors.New("permanent")
	calls := 0
	_, err := Retry(context.Background(), Backoff{Attempts: 5},
		func(err error) bool { return errors.Is(err, errTransient) },
		func(ctx context.Context, _ int) (int, error) { calls++; return 0, permanent })
	if !errors.Is(err, permanent) || calls != 1 {
		t.Fatalf("non-retryable: calls = %d err = %v, want 1 call", calls, err)
	}
	// nil retryable means a single attempt even with Attempts > 1.
	calls = 0
	if _, err := Retry(context.Background(), Backoff{Attempts: 5}, nil,
		func(ctx context.Context, _ int) (int, error) { calls++; return 0, errTransient }); err == nil || calls != 1 {
		t.Fatalf("nil retryable: calls = %d err = %v", calls, err)
	}
}

func TestRetryConsultsContext(t *testing.T) {
	// Pre-cancelled: f never runs.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	_, err := Retry(ctx, Backoff{Attempts: 3}, alwaysRetry,
		func(ctx context.Context, _ int) (int, error) { calls++; return 0, errTransient })
	if !errors.Is(err, context.Canceled) || calls != 0 {
		t.Fatalf("pre-cancelled: calls = %d err = %v", calls, err)
	}
	// Cancelled during backoff: the attempt error surfaces, and the
	// loop stops instead of sleeping out the schedule.
	ctx2, cancel2 := context.WithCancel(context.Background())
	calls = 0
	start := time.Now()
	_, err = Retry(ctx2, Backoff{Attempts: 10, Base: time.Hour}, alwaysRetry,
		func(ctx context.Context, _ int) (int, error) {
			calls++
			cancel2()
			return 0, errTransient
		})
	if !errors.Is(err, errTransient) {
		t.Errorf("cancel during backoff: err = %v, want attempt error", err)
	}
	if calls != 1 {
		t.Errorf("cancel during backoff: calls = %d, want 1", calls)
	}
	if time.Since(start) > time.Second {
		t.Error("cancel during backoff did not interrupt the sleep")
	}
}

func TestBackoffSchedule(t *testing.T) {
	b := Backoff{Attempts: 10, Base: 10 * time.Millisecond, Max: 45 * time.Millisecond}
	want := []time.Duration{
		10 * time.Millisecond, // after attempt 1
		20 * time.Millisecond,
		40 * time.Millisecond,
		45 * time.Millisecond, // capped
		45 * time.Millisecond,
	}
	for i, w := range want {
		if got := b.delay(i + 1); got != w {
			t.Errorf("delay(%d) = %v, want %v", i+1, got, w)
		}
	}
	// Jitter stays within ±fraction.
	j := Backoff{Base: 100 * time.Millisecond, Jitter: 0.5}
	for i := 0; i < 100; i++ {
		d := j.delay(1)
		if d < 50*time.Millisecond || d > 150*time.Millisecond {
			t.Fatalf("jittered delay %v outside ±50%% of 100ms", d)
		}
	}
	// Zero value: one attempt, zero delay.
	if d := (Backoff{}).delay(1); d != 0 {
		t.Errorf("zero backoff delay = %v", d)
	}
}
