package parallel

import (
	"errors"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestMapPreservesOrder(t *testing.T) {
	f := func(n uint8) bool {
		items := make([]int, int(n))
		for i := range items {
			items[i] = i
		}
		out, err := Map(items, 4, func(x int) (int, error) { return x * x, nil })
		if err != nil {
			return false
		}
		for i, v := range out {
			if v != i*i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMapPropagatesFirstError(t *testing.T) {
	boom := errors.New("boom")
	items := []int{0, 1, 2, 3, 4, 5, 6, 7}
	_, err := Map(items, 3, func(x int) (int, error) {
		if x == 4 {
			return 0, boom
		}
		return x, nil
	})
	if !errors.Is(err, boom) {
		t.Errorf("err = %v", err)
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	const workers = 3
	var inFlight, peak atomic.Int64
	items := make([]int, 64)
	_, err := Map(items, workers, func(int) (int, error) {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		// Busy-yield a little to let others run.
		for i := 0; i < 1000; i++ {
			_ = i
		}
		inFlight.Add(-1)
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := peak.Load(); got > workers {
		t.Errorf("peak concurrency %d exceeds %d workers", got, workers)
	}
}

func TestMapEdgeCases(t *testing.T) {
	out, err := Map(nil, 4, func(int) (int, error) { return 1, nil })
	if err != nil || len(out) != 0 {
		t.Error("empty input")
	}
	// Single worker path.
	out, err = Map([]int{1, 2, 3}, 1, func(x int) (int, error) { return x + 1, nil })
	if err != nil || out[2] != 4 {
		t.Error("serial path")
	}
	// workers <= 0 defaults.
	out, err = Map([]int{5}, 0, func(x int) (int, error) { return x, nil })
	if err != nil || out[0] != 5 {
		t.Error("default workers")
	}
}

func TestForEach(t *testing.T) {
	var count atomic.Int64
	if err := ForEach([]int{1, 2, 3, 4}, 2, func(int) error {
		count.Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if count.Load() != 4 {
		t.Errorf("count = %d", count.Load())
	}
	if err := ForEach([]int{1}, 2, func(int) error { return errors.New("x") }); err == nil {
		t.Error("error not propagated")
	}
}
