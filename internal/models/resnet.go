package models

import (
	"fmt"

	"proof/internal/graph"
)

// BuildResNet constructs ResNet-18/34/50 [He et al. 2016] at
// 224x224, batch 1. BatchNorm layers are folded into the convolutions
// (bias-carrying convs), matching how PyTorch exports eval-mode ResNets
// to ONNX.
func BuildResNet(depth int) (*graph.Graph, error) {
	var repeats [4]int
	bottleneck := false
	switch depth {
	case 18:
		repeats = [4]int{2, 2, 2, 2}
	case 34:
		repeats = [4]int{3, 4, 6, 3}
	case 50:
		repeats = [4]int{3, 4, 6, 3}
		bottleneck = true
	default:
		return nil, fmt.Errorf("models: unsupported ResNet depth %d (18, 34 or 50)", depth)
	}
	b := NewBuilder(fmt.Sprintf("resnet-%d", depth))
	x := b.Input("input", graph.Float32, 1, 3, 224, 224)

	x = b.Conv(x, 64, 7, 2, 3, 1, true, "stem_conv")
	x = b.Relu(x, "stem_relu")
	x = b.MaxPool(x, 3, 2, 1, "stem_pool")

	channels := [4]int{64, 128, 256, 512}
	for stage := 0; stage < 4; stage++ {
		for block := 0; block < repeats[stage]; block++ {
			stride := 1
			if stage > 0 && block == 0 {
				stride = 2
			}
			prefix := fmt.Sprintf("layer%d_block%d", stage+1, block)
			if bottleneck {
				x = bottleneckBlock(b, x, channels[stage], stride, prefix)
			} else {
				x = basicBlock(b, x, channels[stage], stride, prefix)
			}
		}
	}

	x = b.GAP(x, "gap")
	x = b.Flatten(x, 1, "flatten")
	x = b.FC(x, 1000, true, "fc")
	b.MarkOutput(x)
	return b.Finish()
}

// basicBlock is the two-conv residual block used by ResNet-18/34.
func basicBlock(b *Builder, x string, cout, stride int, prefix string) string {
	identity := x
	y := b.Conv(x, cout, 3, stride, 1, 1, true, prefix+"_conv1")
	y = b.Relu(y, prefix+"_relu1")
	y = b.Conv(y, cout, 3, 1, 1, 1, true, prefix+"_conv2")
	if stride != 1 || b.Channels(identity) != cout {
		identity = b.Conv(identity, cout, 1, stride, 0, 1, true, prefix+"_downsample")
	}
	y = b.Add(y, identity, prefix+"_add")
	return b.Relu(y, prefix+"_relu2")
}

// bottleneckBlock is the 1x1-3x3-1x1 block used by ResNet-50, with
// expansion 4.
func bottleneckBlock(b *Builder, x string, width, stride int, prefix string) string {
	const expansion = 4
	identity := x
	y := b.Conv(x, width, 1, 1, 0, 1, true, prefix+"_conv1")
	y = b.Relu(y, prefix+"_relu1")
	y = b.Conv(y, width, 3, stride, 1, 1, true, prefix+"_conv2")
	y = b.Relu(y, prefix+"_relu2")
	y = b.Conv(y, width*expansion, 1, 1, 0, 1, true, prefix+"_conv3")
	if stride != 1 || b.Channels(identity) != width*expansion {
		identity = b.Conv(identity, width*expansion, 1, stride, 0, 1, true, prefix+"_downsample")
	}
	y = b.Add(y, identity, prefix+"_add")
	return b.Relu(y, prefix+"_relu3")
}
