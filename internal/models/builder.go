// Package models is the model zoo: from-scratch builders for the 20 DNN
// models evaluated in the paper (Table 3), plus the roofline peak-test
// pseudo model of §4.6. Models are built as graph.Graph values with the
// same layer topology as the original architectures' ONNX exports —
// including the shape-computation chains, erf-based GELU expansions and
// channel-shuffle patterns that real PyTorch→ONNX exports produce, so
// that node counts, parameter counts and theoretical FLOP line up with
// the paper's Table 3.
package models

import (
	"fmt"

	"proof/internal/graph"
)

// Builder incrementally constructs a model graph, tracking shapes via
// incremental inference so layer helpers can derive parameter shapes
// from their input tensors.
type Builder struct {
	// G is the graph under construction.
	G   *graph.Graph
	inf *graph.Inference
	seq map[string]int
	err error
}

// NewBuilder creates a builder for a new graph with the given name.
func NewBuilder(name string) *Builder {
	g := graph.New(name)
	return &Builder{G: g, inf: graph.NewIncrementalInference(g), seq: map[string]int{}}
}

// Err returns the first error encountered while building, if any. Layer
// helpers are chainable and record the first failure here.
func (b *Builder) Err() error { return b.err }

// fail records the first build error.
func (b *Builder) fail(format string, args ...any) string {
	if b.err == nil {
		b.err = fmt.Errorf(format, args...)
	}
	return ""
}

// fresh generates a unique name with the given prefix.
func (b *Builder) fresh(prefix string) string {
	b.seq[prefix]++
	return fmt.Sprintf("%s_%d", prefix, b.seq[prefix])
}

// Input declares a graph input tensor and returns its name.
func (b *Builder) Input(name string, dt graph.DataType, shape ...int) string {
	b.G.AddTensor(&graph.Tensor{Name: name, DType: dt, Shape: graph.Shape(shape)})
	b.G.Inputs = append(b.G.Inputs, name)
	return name
}

// Param declares a parameter (weight) tensor and returns its name.
func (b *Builder) Param(name string, shape ...int) string {
	b.G.AddTensor(&graph.Tensor{Name: name, DType: graph.Float32, Shape: graph.Shape(shape), Param: true})
	return name
}

// IntConst declares a constant int64 *initializer* tensor with a known
// value and returns its name (used where exports store constants as
// initializers, e.g. position-id tables).
func (b *Builder) IntConst(name string, values ...int64) string {
	b.G.AddTensor(&graph.Tensor{
		Name: name, DType: graph.Int64,
		Shape: graph.Shape{len(values)}, Param: true, IntData: values,
	})
	return name
}

// Const emits a Constant *node* producing an int64 vector, the way
// PyTorch exports shape targets, slice bounds and gather indices. These
// nodes count toward the model's node total (Table 3) but are folded by
// every runtime.
func (b *Builder) Const(name string, values ...int64) string {
	ints := make([]int, len(values))
	for i, v := range values {
		ints[i] = int(v)
	}
	return b.op1("Constant", name, nil, graph.Attrs{"value_ints": graph.IntsAttr(ints...)})
}

// FloatConst emits a Constant node producing a 1-element fp32 scalar.
func (b *Builder) FloatConst(name string, v float64) string {
	return b.op1("Constant", name, nil, graph.Attrs{"value_float": graph.FloatAttr(v)})
}

// MarkOutput declares graph outputs.
func (b *Builder) MarkOutput(names ...string) {
	b.G.Outputs = append(b.G.Outputs, names...)
}

// Shape returns the current inferred shape of a tensor.
func (b *Builder) Shape(name string) graph.Shape {
	t := b.G.Tensor(name)
	if t == nil {
		return nil
	}
	return t.Shape
}

// Channels returns dim 1 of the tensor (NCHW channel count).
func (b *Builder) Channels(name string) int {
	s := b.Shape(name)
	if len(s) < 2 {
		b.fail("models: Channels(%s): shape %v", name, s)
		return 0
	}
	return s[1]
}

// Dim returns dimension i of the tensor, recording a build error (and
// returning 1) when the shape is unknown or too short.
func (b *Builder) Dim(name string, i int) int {
	s := b.Shape(name)
	if i >= len(s) {
		b.fail("models: Dim(%s, %d): shape %v", name, i, s)
		return 1
	}
	return s[i]
}

// LastDim returns the trailing dimension of the tensor.
func (b *Builder) LastDim(name string) int {
	s := b.Shape(name)
	if len(s) == 0 {
		b.fail("models: LastDim(%s): shape %v", name, s)
		return 0
	}
	return s[len(s)-1]
}

// Node appends a node with nOut fresh output tensors and returns their
// names. All layer helpers funnel through here.
func (b *Builder) Node(opType, name string, inputs []string, nOut int, attrs graph.Attrs) []string {
	if b.err != nil {
		return make([]string, nOut)
	}
	if name == "" {
		name = b.fresh(opType)
	}
	outs := make([]string, nOut)
	for i := range outs {
		outs[i] = name + "_out"
		if nOut > 1 {
			outs[i] = fmt.Sprintf("%s_out%d", name, i)
		}
		b.G.AddTensor(&graph.Tensor{Name: outs[i]})
	}
	n := &graph.Node{Name: name, OpType: opType, Inputs: inputs, Outputs: outs, Attrs: attrs}
	b.G.AddNode(n)
	if err := b.inf.InferNode(n); err != nil {
		b.fail("models: node %s (%s): %v", name, opType, err)
	}
	return outs
}

// op1 is Node with a single output.
func (b *Builder) op1(opType, name string, inputs []string, attrs graph.Attrs) string {
	return b.Node(opType, name, inputs, 1, attrs)[0]
}

// Conv adds a 2-D convolution. pad is symmetric; bias controls the bias
// input. Returns the output tensor name.
func (b *Builder) Conv(x string, cout, k, stride, pad, groups int, bias bool, name string) string {
	if b.err != nil {
		return ""
	}
	cin := b.Channels(x)
	if cin == 0 || cin%max(groups, 1) != 0 {
		return b.fail("models: Conv(%s): cin=%d groups=%d", name, cin, groups)
	}
	if name == "" {
		name = b.fresh("conv")
	}
	w := b.Param(name+"_w", cout, cin/groups, k, k)
	inputs := []string{x, w}
	if bias {
		inputs = append(inputs, b.Param(name+"_b", cout))
	}
	return b.op1("Conv", name, inputs, graph.Attrs{
		"kernel_shape": graph.IntsAttr(k, k),
		"strides":      graph.IntsAttr(stride, stride),
		"pads":         graph.IntsAttr(pad, pad, pad, pad),
		"group":        graph.IntAttr(groups),
	})
}

// DWConv adds a depth-wise convolution (groups == channels).
func (b *Builder) DWConv(x string, k, stride, pad int, name string) string {
	c := b.Channels(x)
	return b.Conv(x, c, k, stride, pad, c, false, name)
}

// PWConv adds a point-wise (1x1) convolution.
func (b *Builder) PWConv(x string, cout int, name string) string {
	return b.Conv(x, cout, 1, 1, 0, 1, false, name)
}

// BN adds inference-mode batch normalization with per-channel params.
func (b *Builder) BN(x, name string) string {
	if b.err != nil {
		return ""
	}
	c := b.Channels(x)
	if name == "" {
		name = b.fresh("bn")
	}
	return b.op1("BatchNormalization", name, []string{
		x,
		b.Param(name+"_scale", c),
		b.Param(name+"_bias", c),
		b.Param(name+"_mean", c),
		b.Param(name+"_var", c),
	}, nil)
}

// ConvBN is Conv (bias-free) followed by BN.
func (b *Builder) ConvBN(x string, cout, k, stride, pad, groups int, name string) string {
	if name == "" {
		name = b.fresh("conv")
	}
	return b.BN(b.Conv(x, cout, k, stride, pad, groups, false, name), name+"_bn")
}

// Relu adds a ReLU.
func (b *Builder) Relu(x, name string) string {
	return b.op1("Relu", name, []string{x}, nil)
}

// Relu6 adds a clipped ReLU (Clip to [0, 6]).
func (b *Builder) Relu6(x, name string) string {
	return b.op1("Clip", name, []string{x}, graph.Attrs{"min": graph.FloatAttr(0), "max": graph.FloatAttr(6)})
}

// Sigmoid adds a sigmoid.
func (b *Builder) Sigmoid(x, name string) string {
	return b.op1("Sigmoid", name, []string{x}, nil)
}

// SiLU adds x * sigmoid(x) as the Sigmoid+Mul pair that PyTorch exports.
func (b *Builder) SiLU(x, name string) string {
	if name == "" {
		name = b.fresh("silu")
	}
	s := b.op1("Sigmoid", name+"_sig", []string{x}, nil)
	return b.op1("Mul", name+"_mul", []string{x, s}, nil)
}

// HSwish adds a HardSwish.
func (b *Builder) HSwish(x, name string) string {
	return b.op1("HardSwish", name, []string{x}, nil)
}

// Gelu adds the erf-based GELU expansion PyTorch exports:
// y = x * 0.5 * (1 + erf(x / sqrt(2))) as Div, Erf, Add, Mul, Mul nodes.
func (b *Builder) Gelu(x, name string) string {
	if b.err != nil {
		return ""
	}
	if name == "" {
		name = b.fresh("gelu")
	}
	sqrt2 := b.scalarConst(name+"_sqrt2", 1)
	one := b.scalarConst(name+"_one", 1)
	half := b.scalarConst(name+"_half", 1)
	d := b.op1("Div", name+"_div", []string{x, sqrt2}, nil)
	e := b.op1("Erf", name+"_erf", []string{d}, nil)
	a := b.op1("Add", name+"_add", []string{e, one}, nil)
	m := b.op1("Mul", name+"_mul1", []string{x, a}, nil)
	return b.op1("Mul", name+"_mul2", []string{m, half}, nil)
}

// scalarConst emits a 1-element fp32 Constant node.
func (b *Builder) scalarConst(name string, v float64) string {
	return b.FloatConst(name, v)
}

// Add / Mul / Sub / Div add broadcasted binary ops.
func (b *Builder) Add(x, y, name string) string { return b.op1("Add", name, []string{x, y}, nil) }

// Mul adds an element-wise multiply.
func (b *Builder) Mul(x, y, name string) string { return b.op1("Mul", name, []string{x, y}, nil) }

// Sub adds an element-wise subtract.
func (b *Builder) Sub(x, y, name string) string { return b.op1("Sub", name, []string{x, y}, nil) }

// Div adds an element-wise divide.
func (b *Builder) Div(x, y, name string) string { return b.op1("Div", name, []string{x, y}, nil) }

// MaxPool adds a max pooling layer.
func (b *Builder) MaxPool(x string, k, stride, pad int, name string) string {
	return b.op1("MaxPool", name, []string{x}, graph.Attrs{
		"kernel_shape": graph.IntsAttr(k, k),
		"strides":      graph.IntsAttr(stride, stride),
		"pads":         graph.IntsAttr(pad, pad, pad, pad),
	})
}

// AvgPool adds an average pooling layer.
func (b *Builder) AvgPool(x string, k, stride, pad int, name string) string {
	return b.op1("AveragePool", name, []string{x}, graph.Attrs{
		"kernel_shape": graph.IntsAttr(k, k),
		"strides":      graph.IntsAttr(stride, stride),
		"pads":         graph.IntsAttr(pad, pad, pad, pad),
	})
}

// GAP adds global average pooling.
func (b *Builder) GAP(x, name string) string {
	return b.op1("GlobalAveragePool", name, []string{x}, nil)
}

// ReduceMean adds a mean reduction over the given axes.
func (b *Builder) ReduceMean(x string, axes []int, keep bool, name string) string {
	kd := 0
	if keep {
		kd = 1
	}
	return b.op1("ReduceMean", name, []string{x}, graph.Attrs{
		"axes": graph.IntsAttr(axes...), "keepdims": graph.IntAttr(kd),
	})
}

// FC adds a fully-connected (Gemm) layer on a 2-D input.
func (b *Builder) FC(x string, out int, bias bool, name string) string {
	if b.err != nil {
		return ""
	}
	in := b.LastDim(x)
	if name == "" {
		name = b.fresh("fc")
	}
	w := b.Param(name+"_w", out, in)
	inputs := []string{x, w}
	if bias {
		inputs = append(inputs, b.Param(name+"_b", out))
	}
	return b.op1("Gemm", name, inputs, graph.Attrs{"transB": graph.IntAttr(1)})
}

// Linear adds a linear projection on the last dim of an N-D input via
// MatMul with a [in, out] weight plus a bias Add — the way PyTorch
// nn.Linear exports inside transformer blocks.
func (b *Builder) Linear(x string, out int, bias bool, name string) string {
	if b.err != nil {
		return ""
	}
	in := b.LastDim(x)
	if name == "" {
		name = b.fresh("linear")
	}
	w := b.Param(name+"_w", in, out)
	y := b.op1("MatMul", name, []string{x, w}, nil)
	if bias {
		y = b.op1("Add", name+"_bias", []string{y, b.Param(name+"_bvec", out)}, nil)
	}
	return y
}

// MatMul adds a matrix multiply between two activation tensors.
func (b *Builder) MatMul(x, y, name string) string {
	return b.op1("MatMul", name, []string{x, y}, nil)
}

// Softmax adds a softmax over the given axis.
func (b *Builder) Softmax(x string, axis int, name string) string {
	return b.op1("Softmax", name, []string{x}, graph.Attrs{"axis": graph.IntAttr(axis)})
}

// LayerNorm adds layer normalization over the last dimension.
func (b *Builder) LayerNorm(x, name string) string {
	if b.err != nil {
		return ""
	}
	d := b.LastDim(x)
	if name == "" {
		name = b.fresh("ln")
	}
	return b.op1("LayerNormalization", name, []string{
		x, b.Param(name+"_scale", d), b.Param(name+"_bias", d),
	}, graph.Attrs{"axis": graph.IntAttr(-1)})
}

// GroupNorm adds group normalization (NCHW).
func (b *Builder) GroupNorm(x string, groups int, name string) string {
	if b.err != nil {
		return ""
	}
	c := b.Channels(x)
	if name == "" {
		name = b.fresh("gn")
	}
	return b.op1("GroupNormalization", name, []string{
		x, b.Param(name+"_scale", c), b.Param(name+"_bias", c),
	}, graph.Attrs{"num_groups": graph.IntAttr(groups)})
}

// Transpose adds a transpose with the given permutation.
func (b *Builder) Transpose(x string, perm ...int) string {
	return b.op1("Transpose", "", []string{x}, graph.Attrs{"perm": graph.IntsAttr(perm...)})
}

// Reshape adds a reshape to a static target (0 = copy, -1 = infer). The
// target is carried by a Constant node feeding the Reshape's second
// input, as real exports do.
func (b *Builder) Reshape(x string, shape ...int) string {
	if b.err != nil {
		return ""
	}
	name := b.fresh("reshape")
	vals := make([]int64, len(shape))
	for i, d := range shape {
		vals[i] = int64(d)
	}
	tgt := b.Const(name+"_target", vals...)
	return b.op1("Reshape", name, []string{x, tgt}, nil)
}

// Flatten adds a flatten at the given axis.
func (b *Builder) Flatten(x string, axis int, name string) string {
	return b.op1("Flatten", name, []string{x}, graph.Attrs{"axis": graph.IntAttr(axis)})
}

// Concat adds a concatenation along axis.
func (b *Builder) Concat(axis int, name string, xs ...string) string {
	return b.op1("Concat", name, xs, graph.Attrs{"axis": graph.IntAttr(axis)})
}

// Split adds an even split into parts along axis.
func (b *Builder) Split(x string, axis, parts int, name string) []string {
	return b.Node("Split", name, []string{x}, parts, graph.Attrs{"axis": graph.IntAttr(axis)})
}

// Slice adds a slice [start:end] along axis. The bounds travel as
// Constant-node inputs (ONNX opset >= 10 form).
func (b *Builder) Slice(x string, axis, start, end int, name string) string {
	return b.SliceStep(x, axis, start, end, 1, name)
}

// Pad adds zero padding (NCHW spatial pad).
func (b *Builder) Pad(x string, top, left, bottom, right int, name string) string {
	return b.op1("Pad", name, []string{x}, graph.Attrs{
		"pads": graph.IntsAttr(0, 0, top, left, 0, 0, bottom, right),
	})
}

// Resize2x adds a 2x nearest-neighbour spatial upsample.
func (b *Builder) Resize2x(x, name string) string {
	return b.op1("Resize", name, []string{x}, graph.Attrs{"scales": graph.IntsAttr(1, 1, 2, 2)})
}

// Embedding adds a Gather-based embedding lookup of ids into a
// [vocab, dim] table.
func (b *Builder) Embedding(ids string, vocab, dim int, name string) string {
	if name == "" {
		name = b.fresh("embed")
	}
	table := b.Param(name+"_table", vocab, dim)
	return b.op1("Gather", name, []string{table, ids}, nil)
}

// ChannelShuffle emits the ONNX export pattern of ShuffleNet's channel
// shuffle: Shape -> Gather -> Concat(with constants) -> Reshape ->
// Transpose -> Reshape. The dynamic shape chain is value-propagated by
// shape inference, exactly as PRoof handles real exports.
func (b *Builder) ChannelShuffle(x string, groups int, name string) string {
	if b.err != nil {
		return ""
	}
	if name == "" {
		name = b.fresh("shuffle")
	}
	s := b.Shape(x)
	if len(s) != 4 || s[1]%groups != 0 {
		return b.fail("models: ChannelShuffle(%s): shape %v groups %d", name, s, groups)
	}
	shp := b.op1("Shape", name+"_shape", []string{x}, nil)
	idx := b.Const(name+"_idx0", 0)
	n := b.op1("Gather", name+"_gather", []string{shp, idx}, nil)
	rest := b.Const(name+"_dims", int64(groups), int64(s[1]/groups), int64(s[2]), int64(s[3]))
	tgt := b.op1("Concat", name+"_concat", []string{n, rest}, graph.Attrs{"axis": graph.IntAttr(0)})
	r1 := b.op1("Reshape", name+"_reshape1", []string{x, tgt}, nil)
	tp := b.Transpose(r1, 0, 2, 1, 3, 4)
	return b.Reshape(tp, 0, -1, s[2], s[3])
}

// ExpandToBatch expands a parameter with leading dimension 1 (e.g. a
// class token or positional embedding) to the batch size of ref, via the
// Shape -> Gather -> Concat -> Expand chain real ONNX exports emit. The
// chain re-evaluates under shape inference when the batch changes.
func (b *Builder) ExpandToBatch(param, ref, name string) string {
	if b.err != nil {
		return ""
	}
	if name == "" {
		name = b.fresh("expand")
	}
	ps := b.Shape(param)
	if len(ps) < 1 || ps[0] != 1 {
		return b.fail("models: ExpandToBatch(%s): param shape %v must lead with 1", name, ps)
	}
	shp := b.op1("Shape", name+"_shape", []string{ref}, nil)
	idx := b.Const(name+"_idx0", 0)
	n := b.op1("Gather", name+"_gather", []string{shp, idx}, nil)
	rest := make([]int64, 0, len(ps)-1)
	for _, d := range ps[1:] {
		rest = append(rest, int64(d))
	}
	tail := b.Const(name+"_tail", rest...)
	tgt := b.op1("Concat", name+"_concat", []string{n, tail}, graph.Attrs{"axis": graph.IntAttr(0)})
	return b.op1("Expand", name, []string{param, tgt}, nil)
}

// SliceStep adds a strided slice [start:end:step] along axis, with
// bounds carried by Constant-node inputs.
func (b *Builder) SliceStep(x string, axis, start, end, step int, name string) string {
	if b.err != nil {
		return ""
	}
	if name == "" {
		name = b.fresh("slice")
	}
	starts := b.Const(name+"_starts", int64(start))
	ends := b.Const(name+"_ends", int64(end))
	axes := b.Const(name+"_axes", int64(axis))
	steps := b.Const(name+"_steps", int64(step))
	return b.op1("Slice", name, []string{x, starts, ends, axes, steps}, nil)
}

// Finish validates the built graph and returns it.
func (b *Builder) Finish() (*graph.Graph, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.G.Outputs) == 0 {
		return nil, fmt.Errorf("models: graph %s has no outputs", b.G.Name)
	}
	if err := b.G.Validate(); err != nil {
		return nil, err
	}
	return b.G, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
