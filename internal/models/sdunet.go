package models

import (
	"fmt"
	"math"

	"proof/internal/graph"
)

// BuildSDUNet constructs the UNet of Stable Diffusion 1.x [Rombach et
// al. 2022] at the given latent resolution (the paper runs one UNet
// iteration at a 128x128 latent), batch 1. Inputs are the 4-channel
// latent, the 320-wide timestep embedding, and the 77x768 text-encoder
// context for cross-attention.
//
// Architecture: model channels 320, channel multipliers [1,2,4,4], two
// residual blocks per level, spatial transformers (self-attention +
// cross-attention + GEGLU feed-forward) at the three highest-resolution
// levels and in the middle block.
func BuildSDUNet(latent int) (*graph.Graph, error) {
	if latent < 8 || latent%8 != 0 {
		return nil, fmt.Errorf("models: invalid latent size %d", latent)
	}
	const (
		modelCh  = 320
		embedDim = 1280 // modelCh * 4
		ctxLen   = 77
		ctxDim   = 768
		heads    = 8
	)
	mults := []int{1, 2, 4, 4}

	b := NewBuilder("sd-unet")
	x := b.Input("latent", graph.Float32, 1, 4, latent, latent)
	temb := b.Input("timestep_embedding", graph.Float32, 1, modelCh)
	context := b.Input("context", graph.Float32, 1, ctxLen, ctxDim)

	// Time embedding MLP: 320 -> 1280 -> 1280.
	emb := b.FC(temb, embedDim, true, "time_fc1")
	emb = b.SiLU(emb, "time_silu")
	emb = b.FC(emb, embedDim, true, "time_fc2")

	u := &unetBuilder{b: b, emb: emb, context: context, heads: heads}

	// Input blocks.
	h := b.Conv(x, modelCh, 3, 1, 1, 1, true, "conv_in")
	skips := []string{h}
	ch := modelCh
	for level, mult := range mults {
		cout := modelCh * mult
		for i := 0; i < 2; i++ {
			prefix := fmt.Sprintf("down%d_res%d", level, i)
			h = u.resBlock(h, ch, cout, prefix)
			ch = cout
			if level < 3 {
				h = u.spatialTransformer(h, ch, fmt.Sprintf("down%d_attn%d", level, i))
			}
			skips = append(skips, h)
		}
		if level < len(mults)-1 {
			h = b.Conv(h, ch, 3, 2, 1, 1, true, fmt.Sprintf("down%d_downsample", level))
			skips = append(skips, h)
		}
	}

	// Middle block.
	h = u.resBlock(h, ch, ch, "mid_res1")
	h = u.spatialTransformer(h, ch, "mid_attn")
	h = u.resBlock(h, ch, ch, "mid_res2")

	// Output blocks.
	for level := len(mults) - 1; level >= 0; level-- {
		cout := modelCh * mults[level]
		for i := 0; i < 3; i++ {
			prefix := fmt.Sprintf("up%d_res%d", level, i)
			skip := skips[len(skips)-1]
			skips = skips[:len(skips)-1]
			h = b.Concat(1, prefix+"_skip_concat", h, skip)
			h = u.resBlock(h, b.Channels(h), cout, prefix)
			ch = cout
			if level < 3 {
				h = u.spatialTransformer(h, ch, fmt.Sprintf("up%d_attn%d", level, i))
			}
		}
		if level > 0 {
			h = b.Resize2x(h, fmt.Sprintf("up%d_upsample", level))
			h = b.Conv(h, ch, 3, 1, 1, 1, true, fmt.Sprintf("up%d_upconv", level))
		}
	}

	// Output head.
	h = b.GroupNorm(h, 32, "out_gn")
	h = b.SiLU(h, "out_silu")
	out := b.Conv(h, 4, 3, 1, 1, 1, true, "conv_out")
	b.MarkOutput(out)
	return b.Finish()
}

// unetBuilder carries the shared conditioning tensors through the UNet
// block builders.
type unetBuilder struct {
	b       *Builder
	emb     string
	context string
	heads   int
}

// resBlock is the SD residual block: GN/SiLU/Conv, timestep-embedding
// injection, GN/SiLU/Conv, and a 1x1 skip projection on channel change.
func (u *unetBuilder) resBlock(x string, cin, cout int, prefix string) string {
	b := u.b
	h := b.GroupNorm(x, 32, prefix+"_gn1")
	h = b.SiLU(h, prefix+"_silu1")
	h = b.Conv(h, cout, 3, 1, 1, 1, true, prefix+"_conv1")

	e := b.SiLU(u.emb, prefix+"_emb_silu")
	e = b.FC(e, cout, true, prefix+"_emb_proj")
	e = b.Reshape(e, 0, cout, 1, 1)
	h = b.Add(h, e, prefix+"_emb_add")

	h = b.GroupNorm(h, 32, prefix+"_gn2")
	h = b.SiLU(h, prefix+"_silu2")
	h = b.Conv(h, cout, 3, 1, 1, 1, true, prefix+"_conv2")

	if cin != cout {
		x = b.Conv(x, cout, 1, 1, 0, 1, true, prefix+"_skip")
	}
	return b.Add(x, h, prefix+"_residual")
}

// spatialTransformer wraps one basic transformer block (self-attention,
// cross-attention on the text context, GEGLU feed-forward) between 1x1
// projections, operating on flattened spatial tokens.
func (u *unetBuilder) spatialTransformer(x string, ch int, prefix string) string {
	b := u.b
	hh, ww := b.Dim(x, 2), b.Dim(x, 3)
	residual := x

	h := b.GroupNorm(x, 32, prefix+"_gn")
	h = b.Conv(h, ch, 1, 1, 0, 1, true, prefix+"_proj_in")
	h = b.Reshape(h, 0, ch, hh*ww)
	h = b.Transpose(h, 0, 2, 1) // [N, tokens, ch]

	// Self-attention.
	a := b.LayerNorm(h, prefix+"_ln1")
	a = u.attention(a, a, ch, prefix+"_self")
	h = b.Add(h, a, prefix+"_self_residual")

	// Cross-attention on the text context.
	c := b.LayerNorm(h, prefix+"_ln2")
	c = u.attention(c, u.context, ch, prefix+"_cross")
	h = b.Add(h, c, prefix+"_cross_residual")

	// GEGLU feed-forward: project to 8*ch, split, gate with GELU.
	f := b.LayerNorm(h, prefix+"_ln3")
	f = b.Linear(f, ch*8, true, prefix+"_ff_proj")
	parts := b.Split(f, -1, 2, prefix+"_ff_split")
	gate := b.Gelu(parts[1], prefix+"_ff_gelu")
	f = b.Mul(parts[0], gate, prefix+"_ff_gate")
	f = b.Linear(f, ch, true, prefix+"_ff_out")
	h = b.Add(h, f, prefix+"_ff_residual")

	h = b.Transpose(h, 0, 2, 1)
	h = b.Reshape(h, 0, ch, hh, ww)
	h = b.Conv(h, ch, 1, 1, 0, 1, true, prefix+"_proj_out")
	return b.Add(h, residual, prefix+"_residual")
}

// attention computes multi-head attention of q over kv (kv == q for
// self-attention, the text context for cross-attention).
func (u *unetBuilder) attention(q, kv string, ch int, prefix string) string {
	b := u.b
	heads := u.heads
	headDim := ch / heads
	qTokens := b.Dim(q, 1)
	kvTokens := b.Dim(kv, 1)

	qp := b.Linear(q, ch, false, prefix+"_q")
	kp := b.Linear(kv, ch, false, prefix+"_k")
	vp := b.Linear(kv, ch, false, prefix+"_v")
	shape := func(t string, tokens int) string {
		t = b.Reshape(t, 0, tokens, heads, headDim)
		return b.Transpose(t, 0, 2, 1, 3)
	}
	qh := shape(qp, qTokens)
	kh := shape(kp, kvTokens)
	vh := shape(vp, kvTokens)

	kT := b.Transpose(kh, 0, 1, 3, 2)
	scores := b.MatMul(qh, kT, prefix+"_qk")
	scale := b.scalarConst(prefix+"_scale", 1/math.Sqrt(float64(headDim)))
	scores = b.Mul(scores, scale, prefix+"_scale_mul")
	attn := b.Softmax(scores, -1, prefix+"_softmax")
	ctx := b.MatMul(attn, vh, prefix+"_av")
	ctx = b.Transpose(ctx, 0, 2, 1, 3)
	ctx = b.Reshape(ctx, 0, qTokens, ch)
	return b.Linear(ctx, ch, true, prefix+"_out")
}
