package models

import (
	"fmt"
	"math"

	"proof/internal/graph"
)

// vitConfig holds the ViT-Ti/S/B hyper-parameters (patch 16, 224x224).
type vitConfig struct {
	dim, depth, heads int
}

var vitConfigs = map[string]vitConfig{
	"t": {192, 12, 3},
	"s": {384, 12, 6},
	"b": {768, 12, 12},
}

// BuildViT constructs a Vision Transformer [Dosovitskiy et al. 2021]
// (tiny/small/base, patch 16) at 224x224, batch 1, with the class token
// and erf-expanded GELUs of a real PyTorch export.
func BuildViT(variant string) (*graph.Graph, error) {
	cfg, ok := vitConfigs[variant]
	if !ok {
		return nil, fmt.Errorf("models: unsupported ViT variant %q (t/s/b)", variant)
	}
	const (
		img   = 224
		patch = 16
	)
	tokens := (img / patch) * (img / patch) // 196

	b := NewBuilder("vit-" + variant)
	x := b.Input("input", graph.Float32, 1, 3, img, img)

	// Patch embedding: conv patch x patch stride patch, then flatten
	// to a token sequence.
	x = b.Conv(x, cfg.dim, patch, patch, 0, 1, true, "patch_embed")
	x = b.Reshape(x, 0, cfg.dim, tokens)
	x = b.Transpose(x, 0, 2, 1) // [N, tokens, dim]

	// Class token prepended, positional embedding added.
	cls := b.Param("cls_token", 1, 1, cfg.dim)
	clsB := b.ExpandToBatch(cls, x, "cls_expand")
	x = b.Concat(1, "cls_concat", clsB, x)
	pos := b.Param("pos_embed", 1, tokens+1, cfg.dim)
	x = b.Add(x, pos, "pos_add")

	for i := 0; i < cfg.depth; i++ {
		x = vitBlock(b, x, cfg.dim, cfg.heads, fmt.Sprintf("block%d", i))
	}

	x = b.LayerNorm(x, "final_ln")
	clsOut := b.Slice(x, 1, 0, 1, "cls_select")
	clsOut = b.Reshape(clsOut, 0, cfg.dim)
	out := b.FC(clsOut, 1000, true, "head")
	b.MarkOutput(out)
	return b.Finish()
}

// vitBlock is one pre-norm transformer encoder block with a fused-qkv
// attention, as timm exports it.
func vitBlock(b *Builder, x string, dim, heads int, prefix string) string {
	attnOut := vitAttention(b, b.LayerNorm(x, prefix+"_ln1"), dim, heads, prefix+"_attn")
	x = b.Add(x, attnOut, prefix+"_attn_residual")
	m := b.LayerNorm(x, prefix+"_ln2")
	m = b.Linear(m, dim*4, true, prefix+"_mlp_fc1")
	m = b.Gelu(m, prefix+"_mlp_gelu")
	m = b.Linear(m, dim, true, prefix+"_mlp_fc2")
	return b.Add(x, m, prefix+"_mlp_residual")
}

// vitAttention is multi-head self-attention with a fused qkv projection:
// qkv -> reshape/transpose/split -> scaled QK^T -> softmax -> V ->
// merge heads -> output projection.
func vitAttention(b *Builder, x string, dim, heads int, prefix string) string {
	headDim := dim / heads
	tokens := b.Dim(x, 1)

	qkv := b.Linear(x, dim*3, true, prefix+"_qkv")
	qkv = b.Reshape(qkv, 0, tokens, 3, heads, headDim)
	qkv = b.Transpose(qkv, 2, 0, 3, 1, 4) // [3, N, heads, tokens, headDim]
	parts := b.Split(qkv, 0, 3, prefix+"_qkv_split")
	q := b.Reshape(parts[0], -1, heads, tokens, headDim)
	k := b.Reshape(parts[1], -1, heads, tokens, headDim)
	v := b.Reshape(parts[2], -1, heads, tokens, headDim)

	kT := b.Transpose(k, 0, 1, 3, 2)
	scores := b.MatMul(q, kT, prefix+"_qk")
	scale := b.scalarConst(prefix+"_scale", 1/math.Sqrt(float64(headDim)))
	scores = b.Mul(scores, scale, prefix+"_scale_mul")
	attn := b.Softmax(scores, -1, prefix+"_softmax")
	ctx := b.MatMul(attn, v, prefix+"_av")
	ctx = b.Transpose(ctx, 0, 2, 1, 3)
	ctx = b.Reshape(ctx, 0, tokens, dim)
	return b.Linear(ctx, dim, true, prefix+"_proj")
}
