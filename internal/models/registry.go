package models

import (
	"fmt"
	"sort"

	"proof/internal/graph"
)

// Info describes one zoo model, including the paper's published Table 3
// reference values for comparison in EXPERIMENTS.md. Info serializes as
// JSON for API listings (the Build closure is excluded).
type Info struct {
	// ID is the model's serial number in Table 3 (0 for extra models).
	ID int `json:"id,omitempty"`
	// Key is the canonical lookup key (e.g. "resnet-50").
	Key string `json:"key"`
	// Name is the display name used in the paper.
	Name string `json:"name"`
	// Type is the model family: CNN, Trans., MLP or Diffu.
	Type string `json:"type"`
	// Build constructs the model graph at batch size 1.
	Build func() (*graph.Graph, error) `json:"-"`
	// PaperNodes, PaperParamsM and PaperGFLOP are the reference values
	// from Table 3 (ONNX node count, params in millions, GFLOP at
	// batch 1).
	PaperNodes   int     `json:"paper_nodes,omitempty"`
	PaperParamsM float64 `json:"paper_params_m,omitempty"`
	PaperGFLOP   float64 `json:"paper_gflop,omitempty"`
}

var registry = map[string]Info{}

func register(info Info) {
	if _, dup := registry[info.Key]; dup {
		panic(fmt.Sprintf("models: duplicate model key %q", info.Key))
	}
	registry[info.Key] = info
}

// List returns all registered models ordered by Table 3 serial number,
// with extra (non-Table 3) models at the end.
func List() []Info {
	out := make([]Info, 0, len(registry))
	for _, info := range registry {
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if (a.ID == 0) != (b.ID == 0) {
			return b.ID == 0
		}
		if a.ID != b.ID {
			return a.ID < b.ID
		}
		return a.Key < b.Key
	})
	return out
}

// Lookup returns the Info for a model key.
func Lookup(key string) (Info, bool) {
	info, ok := registry[key]
	return info, ok
}

// Build constructs the named model at batch size 1.
func Build(key string) (*graph.Graph, error) {
	info, ok := registry[key]
	if !ok {
		return nil, fmt.Errorf("models: unknown model %q (use models.List())", key)
	}
	return info.Build()
}

func init() {
	register(Info{ID: 1, Key: "distilbert", Name: "DistilBERT base", Type: "Trans.",
		Build:      func() (*graph.Graph, error) { return BuildDistilBERT(512) },
		PaperNodes: 435, PaperParamsM: 67.0, PaperGFLOP: 48.718})
	register(Info{ID: 2, Key: "sd-unet", Name: "Stable Diffusion", Type: "Diffu.",
		Build:      func() (*graph.Graph, error) { return BuildSDUNet(128) },
		PaperNodes: 5343, PaperParamsM: 859.5, PaperGFLOP: 4747.726})
	register(Info{ID: 3, Key: "efficientnet-b0", Name: "EfficientNet B0", Type: "CNN",
		Build:      func() (*graph.Graph, error) { return BuildEfficientNet("b0") },
		PaperNodes: 239, PaperParamsM: 5.3, PaperGFLOP: 0.851})
	register(Info{ID: 4, Key: "efficientnet-b4", Name: "EfficientNet B4", Type: "CNN",
		Build:      func() (*graph.Graph, error) { return BuildEfficientNet("b4") },
		PaperNodes: 476, PaperParamsM: 19.3, PaperGFLOP: 3.209})
	register(Info{ID: 5, Key: "efficientnetv2-t", Name: "EfficientNetV2-T", Type: "CNN",
		Build:      func() (*graph.Graph, error) { return BuildEfficientNetV2("t") },
		PaperNodes: 487, PaperParamsM: 13.6, PaperGFLOP: 3.939})
	register(Info{ID: 6, Key: "efficientnetv2-s", Name: "EfficientNetV2-S", Type: "CNN",
		Build:      func() (*graph.Graph, error) { return BuildEfficientNetV2("s") },
		PaperNodes: 504, PaperParamsM: 23.9, PaperGFLOP: 6.030})
	register(Info{ID: 7, Key: "mlp-mixer", Name: "MLP-Mixer (B/16)", Type: "MLP",
		Build:      BuildMLPMixerB16,
		PaperNodes: 497, PaperParamsM: 59.9, PaperGFLOP: 25.403})
	register(Info{ID: 8, Key: "mobilenetv2-0.5", Name: "MobileNetV2 0.5", Type: "CNN",
		Build:      func() (*graph.Graph, error) { return BuildMobileNetV2(0.5) },
		PaperNodes: 100, PaperParamsM: 2.0, PaperGFLOP: 0.205})
	register(Info{ID: 9, Key: "mobilenetv2-1.0", Name: "MobileNetV2 1.0", Type: "CNN",
		Build:      func() (*graph.Graph, error) { return BuildMobileNetV2(1.0) },
		PaperNodes: 100, PaperParamsM: 3.5, PaperGFLOP: 0.621})
	register(Info{ID: 10, Key: "resnet-34", Name: "ResNet-34", Type: "CNN",
		Build:      func() (*graph.Graph, error) { return BuildResNet(34) },
		PaperNodes: 89, PaperParamsM: 21.8, PaperGFLOP: 7.338})
	register(Info{ID: 11, Key: "resnet-50", Name: "ResNet-50", Type: "CNN",
		Build:      func() (*graph.Graph, error) { return BuildResNet(50) },
		PaperNodes: 122, PaperParamsM: 25.5, PaperGFLOP: 8.207})
	register(Info{ID: 12, Key: "shufflenetv2-0.5", Name: "ShuffleNetV2 x0.5", Type: "CNN",
		Build:      func() (*graph.Graph, error) { return BuildShuffleNetV2(0.5, false) },
		PaperNodes: 584, PaperParamsM: 1.4, PaperGFLOP: 0.084})
	register(Info{ID: 13, Key: "shufflenetv2-1.0", Name: "ShuffleNetV2 x1.0", Type: "CNN",
		Build:      func() (*graph.Graph, error) { return BuildShuffleNetV2(1.0, false) },
		PaperNodes: 584, PaperParamsM: 2.3, PaperGFLOP: 0.294})
	register(Info{ID: 14, Key: "shufflenetv2-1.0-mod", Name: "Shuf. v2 x1.0 mod", Type: "CNN",
		Build:      func() (*graph.Graph, error) { return BuildShuffleNetV2(1.0, true) },
		PaperNodes: 156, PaperParamsM: 2.8, PaperGFLOP: 0.434})
	register(Info{ID: 15, Key: "swin-t", Name: "Swin tiny", Type: "Trans.",
		Build:      func() (*graph.Graph, error) { return BuildSwin("t") },
		PaperNodes: 1465, PaperParamsM: 28.8, PaperGFLOP: 9.133})
	register(Info{ID: 16, Key: "swin-s", Name: "Swin small", Type: "Trans.",
		Build:      func() (*graph.Graph, error) { return BuildSwin("s") },
		PaperNodes: 2839, PaperParamsM: 50.5, PaperGFLOP: 17.723})
	register(Info{ID: 17, Key: "swin-b", Name: "Swin base", Type: "Trans.",
		Build:      func() (*graph.Graph, error) { return BuildSwin("b") },
		PaperNodes: 2839, PaperParamsM: 88.9, PaperGFLOP: 31.183})
	register(Info{ID: 18, Key: "vit-t", Name: "ViT tiny", Type: "Trans.",
		Build:      func() (*graph.Graph, error) { return BuildViT("t") },
		PaperNodes: 786, PaperParamsM: 5.7, PaperGFLOP: 2.558})
	register(Info{ID: 19, Key: "vit-s", Name: "ViT small", Type: "Trans.",
		Build:      func() (*graph.Graph, error) { return BuildViT("s") },
		PaperNodes: 786, PaperParamsM: 22.1, PaperGFLOP: 9.298})
	register(Info{ID: 20, Key: "vit-b", Name: "ViT base", Type: "Trans.",
		Build:      func() (*graph.Graph, error) { return BuildViT("b") },
		PaperNodes: 786, PaperParamsM: 86.6, PaperGFLOP: 35.329})
	register(Info{Key: "peak-test", Name: "Roofline peak test", Type: "Synthetic",
		Build: BuildPeakTest})
	// Extras beyond the paper's Table 3 (ID 0).
	register(Info{Key: "resnet-18", Name: "ResNet-18", Type: "CNN",
		Build: func() (*graph.Graph, error) { return BuildResNet(18) }})
	register(Info{Key: "bert-base", Name: "BERT base", Type: "Trans.",
		Build: func() (*graph.Graph, error) { return BuildBERTBase(512) }})
}
