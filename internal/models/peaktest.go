package models

import (
	"fmt"

	"proof/internal/graph"
)

// BuildPeakTest constructs the assembled pseudo ONNX model of §4.6
// (Table 6): a series of MatMul operators of different sizes to reach
// the compute roofline, and memory-copy operators (transposes) of
// different sizes to reach the bandwidth roofline. Running it through a
// backend and taking the best achieved FLOP/s and bandwidth measures
// the platform's *achievable* roofline, as opposed to the theoretical
// datasheet peak.
func BuildPeakTest() (*graph.Graph, error) {
	b := NewBuilder("peak-test")
	var outs []string

	// Compute-bound MatMuls: square GEMMs from 512 to 8192.
	for _, n := range []int{512, 1024, 2048, 4096, 8192} {
		name := fmt.Sprintf("matmul_%d", n)
		x := b.Input(name+"_in", graph.Float32, 1, n, n)
		w := b.Param(name+"_w", n, n)
		y := b.MatMul(x, w, name)
		outs = append(outs, y)
	}

	// Memory-bound contiguous copies (Cast reformat ops) of 16 MElem
	// to 256 MElem.
	for _, m := range []int{16, 64, 256} {
		name := fmt.Sprintf("memcopy_%dM", m)
		rows := m * 1024
		x := b.Input(name+"_in", graph.Float32, 1, rows, 1024)
		y := b.op1("Cast", name, []string{x}, graph.Attrs{"to": graph.StringAttr("fp32")})
		outs = append(outs, y)
	}

	b.MarkOutput(outs...)
	return b.Finish()
}
