package models

import (
	"fmt"

	"proof/internal/graph"
)

// makeDivisible rounds channel counts to a multiple of divisor without
// dropping more than 10%, following the MobileNet reference code.
func makeDivisible(v float64, divisor int) int {
	nv := int(v+float64(divisor)/2) / divisor * divisor
	if nv < divisor {
		nv = divisor
	}
	if float64(nv) < 0.9*v {
		nv += divisor
	}
	return nv
}

// BuildMobileNetV2 constructs MobileNetV2 [Sandler et al. 2018] at the
// given width multiplier (0.5 or 1.0 in Table 3), 224x224, batch 1.
func BuildMobileNetV2(width float64) (*graph.Graph, error) {
	if width <= 0 {
		return nil, fmt.Errorf("models: invalid MobileNetV2 width %v", width)
	}
	// (expansion t, output channels c, repeats n, first stride s)
	cfg := []struct{ t, c, n, s int }{
		{1, 16, 1, 1},
		{6, 24, 2, 2},
		{6, 32, 3, 2},
		{6, 64, 4, 2},
		{6, 96, 3, 1},
		{6, 160, 3, 2},
		{6, 320, 1, 1},
	}
	b := NewBuilder(fmt.Sprintf("mobilenetv2-%g", width))
	x := b.Input("input", graph.Float32, 1, 3, 224, 224)

	stem := makeDivisible(32*width, 8)
	x = b.Conv(x, stem, 3, 2, 1, 1, true, "stem_conv")
	x = b.Relu6(x, "stem_relu6")

	blockIdx := 0
	for _, stage := range cfg {
		cout := makeDivisible(float64(stage.c)*width, 8)
		for i := 0; i < stage.n; i++ {
			stride := 1
			if i == 0 {
				stride = stage.s
			}
			x = invertedResidual(b, x, cout, stage.t, stride, fmt.Sprintf("block%d", blockIdx))
			blockIdx++
		}
	}

	head := makeDivisible(1280*width, 8)
	if head < 1280 {
		head = 1280 // v2 keeps the head at 1280 for width < 1
	}
	x = b.Conv(x, head, 1, 1, 0, 1, true, "head_conv")
	x = b.Relu6(x, "head_relu6")
	x = b.GAP(x, "gap")
	x = b.Flatten(x, 1, "flatten")
	x = b.FC(x, 1000, true, "classifier")
	b.MarkOutput(x)
	return b.Finish()
}

// invertedResidual is MobileNetV2's expand -> depthwise -> project block
// with a residual connection when stride is 1 and channels match.
func invertedResidual(b *Builder, x string, cout, expand, stride int, prefix string) string {
	cin := b.Channels(x)
	identity := x
	y := x
	if expand != 1 {
		y = b.Conv(y, cin*expand, 1, 1, 0, 1, true, prefix+"_expand")
		y = b.Relu6(y, prefix+"_expand_relu6")
	}
	y = b.Conv(y, b.Channels(y), 3, stride, 1, b.Channels(y), true, prefix+"_dw")
	y = b.Relu6(y, prefix+"_dw_relu6")
	y = b.Conv(y, cout, 1, 1, 0, 1, true, prefix+"_project")
	if stride == 1 && cin == cout {
		y = b.Add(y, identity, prefix+"_add")
	}
	return y
}
