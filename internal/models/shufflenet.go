package models

import (
	"fmt"

	"proof/internal/graph"
)

// BuildShuffleNetV2 constructs ShuffleNetV2 [Ma et al. 2018] at the given
// width (0.5 or 1.0), 224x224, batch 1. When modified is true it builds
// the paper's §4.5 optimized variant (Figure 7): in non-downsampling
// blocks the channel split and shuffle are removed, the first and last
// point-wise convolutions run on all channels (doubled channel count),
// and an explicit residual Add replaces the implicit identity path.
func BuildShuffleNetV2(width float64, modified bool) (*graph.Graph, error) {
	var stageOut [3]int
	switch width {
	case 0.5:
		stageOut = [3]int{48, 96, 192}
	case 1.0:
		stageOut = [3]int{116, 232, 464}
	case 1.5:
		stageOut = [3]int{176, 352, 704}
	default:
		return nil, fmt.Errorf("models: unsupported ShuffleNetV2 width %v", width)
	}
	repeats := [3]int{4, 8, 4}

	name := fmt.Sprintf("shufflenetv2-%g", width)
	if modified {
		name += "-mod"
	}
	b := NewBuilder(name)
	x := b.Input("input", graph.Float32, 1, 3, 224, 224)

	x = b.Conv(x, 24, 3, 2, 1, 1, true, "stem_conv")
	x = b.Relu(x, "stem_relu")
	x = b.MaxPool(x, 3, 2, 1, "stem_pool")

	for stage := 0; stage < 3; stage++ {
		cout := stageOut[stage]
		for block := 0; block < repeats[stage]; block++ {
			prefix := fmt.Sprintf("stage%d_block%d", stage+2, block)
			if block == 0 {
				x = shuffleDownBlock(b, x, cout, prefix)
			} else if modified {
				x = shuffleModifiedBlock(b, x, prefix)
			} else {
				x = shuffleBasicBlock(b, x, prefix)
			}
		}
	}

	x = b.Conv(x, 1024, 1, 1, 0, 1, true, "conv5")
	x = b.Relu(x, "conv5_relu")
	x = b.GAP(x, "gap")
	x = b.Flatten(x, 1, "flatten")
	x = b.FC(x, 1000, true, "fc")
	b.MarkOutput(x)
	return b.Finish()
}

// shuffleBasicBlock is the stride-1 ShuffleNetV2 unit: split channels in
// half, run pw-dw-pw on one half, concat, channel-shuffle. The split and
// shuffle export as Slice and Shape/Reshape/Transpose chains — the
// data-movement layers the §4.5 case study identifies as the bottleneck.
func shuffleBasicBlock(b *Builder, x, prefix string) string {
	c := b.Channels(x)
	half := c / 2
	left := b.Slice(x, 1, 0, half, prefix+"_split_l")
	right := b.Slice(x, 1, half, c, prefix+"_split_r")

	y := b.Conv(right, half, 1, 1, 0, 1, true, prefix+"_pw1")
	y = b.Relu(y, prefix+"_pw1_relu")
	y = b.Conv(y, half, 3, 1, 1, half, true, prefix+"_dw")
	y = b.Conv(y, half, 1, 1, 0, 1, true, prefix+"_pw2")
	y = b.Relu(y, prefix+"_pw2_relu")

	out := b.Concat(1, prefix+"_concat", left, y)
	return b.ChannelShuffle(out, 2, prefix+"_shuffle")
}

// shuffleDownBlock is the stride-2 ShuffleNetV2 unit: both branches
// process the full input, halving spatial size; outputs are concatenated
// and shuffled.
func shuffleDownBlock(b *Builder, x string, cout int, prefix string) string {
	c := b.Channels(x)
	branch := cout / 2

	l := b.Conv(x, c, 3, 2, 1, c, true, prefix+"_l_dw")
	l = b.Conv(l, branch, 1, 1, 0, 1, true, prefix+"_l_pw")
	l = b.Relu(l, prefix+"_l_relu")

	r := b.Conv(x, branch, 1, 1, 0, 1, true, prefix+"_r_pw1")
	r = b.Relu(r, prefix+"_r_pw1_relu")
	r = b.Conv(r, branch, 3, 2, 1, branch, true, prefix+"_r_dw")
	r = b.Conv(r, branch, 1, 1, 0, 1, true, prefix+"_r_pw2")
	r = b.Relu(r, prefix+"_r_pw2_relu")

	out := b.Concat(1, prefix+"_concat", l, r)
	return b.ChannelShuffle(out, 2, prefix+"_shuffle")
}

// shuffleModifiedBlock is the §4.5 optimized non-downsampling block
// (Figure 7): the channel split and shuffle are removed; to still cover
// all channels, the first point-wise conv doubles its *input* channels
// (C -> C/2) and the last doubles its *output* channels (C/2 -> C); an
// explicit residual Add replaces the identity half-path.
func shuffleModifiedBlock(b *Builder, x, prefix string) string {
	c := b.Channels(x)
	half := c / 2
	y := b.Conv(x, half, 1, 1, 0, 1, true, prefix+"_pw1")
	y = b.Relu(y, prefix+"_pw1_relu")
	y = b.Conv(y, half, 3, 1, 1, half, true, prefix+"_dw")
	y = b.Conv(y, c, 1, 1, 0, 1, true, prefix+"_pw2")
	y = b.Relu(y, prefix+"_pw2_relu")
	return b.Add(y, x, prefix+"_add")
}
