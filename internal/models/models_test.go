package models

import (
	"math"
	"strings"
	"testing"

	"proof/internal/analysis"
	"proof/internal/graph"
)

// relErr returns |got-want|/want.
func relErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / want
}

func TestAllModelsBuildAndValidate(t *testing.T) {
	for _, info := range List() {
		info := info
		t.Run(info.Key, func(t *testing.T) {
			g, err := info.Build()
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			if errs := g.ValidateAll(); len(errs) > 0 {
				t.Fatalf("validate: %v", errs)
			}
			rep, err := analysis.NewRep(g)
			if err != nil {
				t.Fatalf("analyze: %v", err)
			}
			// The verifier must stay clean on fully inferred graphs
			// too (shape-contradiction checks see every shape here).
			if errs := g.ValidateAll(); len(errs) > 0 {
				t.Fatalf("validate after inference: %v", errs)
			}
			if rep.TotalCost().FLOP <= 0 {
				t.Error("model has no FLOP")
			}
		})
	}
}

func TestTable3ParamsAndGFLOP(t *testing.T) {
	// Params within 12% and GFLOP within 10% of the paper's Table 3.
	// (Divergence comes from BN folding details and the paper's
	// unspecified input resolutions for a few models.)
	for _, info := range List() {
		if info.ID == 0 {
			continue
		}
		info := info
		t.Run(info.Key, func(t *testing.T) {
			g, err := info.Build()
			if err != nil {
				t.Fatal(err)
			}
			rep, err := analysis.NewRep(g)
			if err != nil {
				t.Fatal(err)
			}
			paramsM := float64(g.ParamCount()) / 1e6
			if e := relErr(paramsM, info.PaperParamsM); e > 0.12 {
				t.Errorf("params = %.2fM, paper %.1fM (err %.1f%%)", paramsM, info.PaperParamsM, e*100)
			}
			gflop := float64(rep.TotalCost().FLOP) / 1e9
			if e := relErr(gflop, info.PaperGFLOP); e > 0.10 {
				t.Errorf("GFLOP = %.3f, paper %.3f (err %.1f%%)", gflop, info.PaperGFLOP, e*100)
			}
		})
	}
}

func TestRegistryLookup(t *testing.T) {
	if _, ok := Lookup("resnet-50"); !ok {
		t.Error("resnet-50 missing")
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("bogus key found")
	}
	if _, err := Build("nope"); err == nil {
		t.Error("Build of unknown model should error")
	}
	list := List()
	if len(list) < 21 {
		t.Errorf("registry has %d models, want >= 21", len(list))
	}
	// Table 3 models come first, in ID order.
	for i := 0; i < 20; i++ {
		if list[i].ID != i+1 {
			t.Errorf("list[%d].ID = %d, want %d", i, list[i].ID, i+1)
		}
	}
}

func TestModelsRebatch(t *testing.T) {
	for _, key := range []string{"resnet-50", "vit-t", "shufflenetv2-1.0", "distilbert"} {
		g, err := Build(key)
		if err != nil {
			t.Fatalf("%s: %v", key, err)
		}
		rep1, err := analysis.NewRep(g)
		if err != nil {
			t.Fatalf("%s: %v", key, err)
		}
		f1 := rep1.TotalCost().FLOP
		rep8, err := analysis.NewRepWithBatch(g, 8)
		if err != nil {
			t.Fatalf("%s rebatch: %v", key, err)
		}
		f8 := rep8.TotalCost().FLOP
		ratio := float64(f8) / float64(f1)
		if ratio < 7.9 || ratio > 8.1 {
			t.Errorf("%s: batch-8 FLOP ratio = %.3f, want ~8", key, ratio)
		}
		out := g.Tensor(g.Outputs[0])
		if out.Shape[0] != 8 {
			t.Errorf("%s: output batch = %d, want 8", key, out.Shape[0])
		}
	}
}

func TestModifiedShuffleNetStructure(t *testing.T) {
	orig, err := BuildShuffleNetV2(1.0, false)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := BuildShuffleNetV2(1.0, true)
	if err != nil {
		t.Fatal(err)
	}
	count := func(g *graph.Graph, op string) int {
		n := 0
		for _, nd := range g.Nodes {
			if nd.OpType == op {
				n++
			}
		}
		return n
	}
	// The modified model removes the shuffle Transposes of the 13
	// non-downsampling blocks; only the 3 downsample-block shuffles
	// remain.
	if got := count(orig, "Transpose"); got != 16 {
		t.Errorf("original Transpose count = %d, want 16", got)
	}
	if got := count(mod, "Transpose"); got != 3 {
		t.Errorf("modified Transpose count = %d, want 3", got)
	}
	// Residual Adds appear only in the modified model.
	if got := count(mod, "Add"); got != 13 {
		t.Errorf("modified Add count = %d, want 13", got)
	}
	if got := count(orig, "Add"); got != 0 {
		t.Errorf("original Add count = %d, want 0", got)
	}

	// FLOP grows by roughly the paper's 1.47x (0.434/0.294).
	ro, _ := analysis.NewRep(orig)
	rm, _ := analysis.NewRep(mod)
	ratio := float64(rm.TotalCost().FLOP) / float64(ro.TotalCost().FLOP)
	if ratio < 1.3 || ratio > 1.65 {
		t.Errorf("modified/original FLOP ratio = %.2f, want ~1.47", ratio)
	}
	// But memory traffic shrinks per FLOP: the modified model's
	// arithmetic intensity must be higher.
	if rm.TotalCost().ArithmeticIntensity() <= ro.TotalCost().ArithmeticIntensity() {
		t.Error("modified model should have higher arithmetic intensity")
	}
}

func TestShuffleNetShuffleChainShapes(t *testing.T) {
	g, err := BuildShuffleNetV2(1.0, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.InferShapes(); err != nil {
		t.Fatal(err)
	}
	// Every shuffle Reshape/Transpose chain must preserve element count.
	for _, n := range g.Nodes {
		if n.OpType != "Transpose" {
			continue
		}
		in := g.Tensor(n.Inputs[0])
		out := g.Tensor(n.Outputs[0])
		if in.Shape.NumElements() != out.Shape.NumElements() {
			t.Errorf("transpose %s changes element count", n.Name)
		}
		if in.Shape.Rank() != 5 {
			t.Errorf("shuffle transpose %s rank = %d, want 5", n.Name, in.Shape.Rank())
		}
	}
}

func TestViTStructure(t *testing.T) {
	g, err := BuildViT("b")
	if err != nil {
		t.Fatal(err)
	}
	out := g.Tensor(g.Outputs[0])
	if !out.Shape.Equal(graph.Shape{1, 1000}) {
		t.Errorf("ViT output shape = %v", out.Shape)
	}
	softmax := 0
	for _, n := range g.Nodes {
		if n.OpType == "Softmax" {
			softmax++
		}
	}
	if softmax != 12 {
		t.Errorf("ViT-B softmax count = %d, want 12 (one per block)", softmax)
	}
}

func TestSwinStructure(t *testing.T) {
	g, err := BuildSwin("t")
	if err != nil {
		t.Fatal(err)
	}
	out := g.Tensor(g.Outputs[0])
	if !out.Shape.Equal(graph.Shape{1, 1000}) {
		t.Errorf("Swin output shape = %v", out.Shape)
	}
	// 2+2+6+2 = 12 attention blocks.
	softmax := 0
	for _, n := range g.Nodes {
		if n.OpType == "Softmax" {
			softmax++
		}
	}
	if softmax != 12 {
		t.Errorf("Swin-T softmax count = %d, want 12", softmax)
	}
	// Window tokens: attention operates on 49-token windows.
	for _, n := range g.Nodes {
		if n.OpType == "Softmax" {
			s := g.Tensor(n.Outputs[0]).Shape
			if s[len(s)-1] != 49 {
				t.Errorf("window attention token count = %d, want 49", s[len(s)-1])
			}
		}
	}
}

func TestDistilBERTStructure(t *testing.T) {
	g, err := BuildDistilBERT(128)
	if err != nil {
		t.Fatal(err)
	}
	out := g.Tensor(g.Outputs[0])
	if !out.Shape.Equal(graph.Shape{1, 128, 768}) {
		t.Errorf("DistilBERT output = %v", out.Shape)
	}
	if _, err := BuildDistilBERT(0); err == nil {
		t.Error("seq 0 should be rejected")
	}
}

func TestSDUNetStructure(t *testing.T) {
	g, err := BuildSDUNet(32) // small latent for test speed
	if err != nil {
		t.Fatal(err)
	}
	out := g.Tensor(g.Outputs[0])
	if !out.Shape.Equal(graph.Shape{1, 4, 32, 32}) {
		t.Errorf("UNet output = %v (must match latent input)", out.Shape)
	}
	if _, err := BuildSDUNet(33); err == nil {
		t.Error("non-multiple-of-8 latent should be rejected")
	}
}

func TestPeakTestModel(t *testing.T) {
	g, err := BuildPeakTest()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := analysis.NewRep(g)
	if err != nil {
		t.Fatal(err)
	}
	var haveMatMul, haveCopy bool
	for _, n := range rep.Nodes() {
		c, _ := rep.NodeCost(n.Name)
		switch n.OpType {
		case "MatMul":
			haveMatMul = true
			if c.ArithmeticIntensity() < 50 {
				t.Errorf("peak MatMul %s AI = %.1f, should be compute-bound", n.Name, c.ArithmeticIntensity())
			}
		case "Cast":
			haveCopy = true
			if c.FLOP != 0 {
				t.Errorf("memcopy %s has FLOP", n.Name)
			}
		}
	}
	if !haveMatMul || !haveCopy {
		t.Error("peak test must contain both MatMul and copy operators")
	}
}

func TestBuilderErrorPaths(t *testing.T) {
	b := NewBuilder("bad")
	x := b.Input("x", graph.Float32, 1, 3, 8, 8)
	// Conv with groups not dividing channels fails at Finish.
	b.Conv(x, 8, 3, 1, 1, 2, true, "c")
	if _, err := b.Finish(); err == nil {
		t.Error("invalid group conv should fail")
	}

	b2 := NewBuilder("noout")
	b2.Input("x", graph.Float32, 1, 3, 8, 8)
	if _, err := b2.Finish(); err == nil {
		t.Error("graph without outputs should fail")
	}
}

func TestBuilderFreshNamesUnique(t *testing.T) {
	b := NewBuilder("names")
	x := b.Input("x", graph.Float32, 1, 4, 8, 8)
	y := b.Relu(x, "")
	z := b.Relu(y, "")
	b.MarkOutput(z)
	g, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if g.Nodes[0].Name == g.Nodes[1].Name {
		t.Error("fresh names must be unique")
	}
	if !strings.HasPrefix(g.Nodes[0].Name, "Relu_") {
		t.Errorf("fresh name = %q", g.Nodes[0].Name)
	}
}

func TestMakeDivisible(t *testing.T) {
	cases := []struct {
		v    float64
		want int
	}{
		{32, 32}, {16, 16}, {8.4, 8}, {12, 16}, {58, 56}, {3, 8},
	}
	for _, c := range cases {
		if got := makeDivisible(c.v, 8); got != c.want {
			t.Errorf("makeDivisible(%v, 8) = %d, want %d", c.v, got, c.want)
		}
	}
}
