package models

import (
	"fmt"

	"proof/internal/graph"
)

// Ladder builders for the characterization protocol
// (internal/hardware/characterize). Like BuildPeakTest, each ladder is
// a set of *parallel* operators — independent inputs and outputs, so
// no backend fuses rungs together and works map 1:1 to rungs. Rung
// sizes are parameterized (the protocol sizes them per platform) and
// deliberately all distinct: the simulator keys its deterministic
// jitter on layer content, so distinct shapes give independent jitter
// draws that the protocol averages out.

// BuildMatMulLadder constructs parallel square MatMuls of the given
// sizes: rung n computes (1,n,n) x (n,n), i.e. 2n^3 FLOP.
func BuildMatMulLadder(name string, ns []int) (*graph.Graph, error) {
	if len(ns) == 0 {
		return nil, fmt.Errorf("models: matmul ladder needs at least one size")
	}
	b := NewBuilder(name)
	var outs []string
	for _, n := range ns {
		if n <= 0 {
			return nil, fmt.Errorf("models: invalid matmul ladder size %d", n)
		}
		rung := fmt.Sprintf("mm_%d", n)
		x := b.Input(rung+"_in", graph.Float32, 1, n, n)
		w := b.Param(rung+"_w", n, n)
		outs = append(outs, b.MatMul(x, w, rung))
	}
	b.MarkOutput(outs...)
	return b.Finish()
}

// BuildCopyLadder constructs parallel contiguous copies (Cast reformat
// ops, as in the peak test): rung m moves m MiElem through DRAM (one
// read + one write).
func BuildCopyLadder(name string, elemsMi []int) (*graph.Graph, error) {
	if len(elemsMi) == 0 {
		return nil, fmt.Errorf("models: copy ladder needs at least one size")
	}
	b := NewBuilder(name)
	var outs []string
	for _, m := range elemsMi {
		if m <= 0 {
			return nil, fmt.Errorf("models: invalid copy ladder size %d", m)
		}
		rung := fmt.Sprintf("copy_%dM", m)
		x := b.Input(rung+"_in", graph.Float32, 1, m*1024, 1024)
		outs = append(outs, b.op1("Cast", rung, []string{x}, graph.Attrs{"to": graph.StringAttr("fp32")}))
	}
	b.MarkOutput(outs...)
	return b.Finish()
}
