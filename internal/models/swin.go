package models

import (
	"fmt"
	"math"

	"proof/internal/graph"
)

// swinConfig holds Swin-T/S/B hyper-parameters (patch 4, window 7,
// 224x224).
type swinConfig struct {
	embed  int
	depths [4]int
	heads  [4]int
}

var swinConfigs = map[string]swinConfig{
	"t": {96, [4]int{2, 2, 6, 2}, [4]int{3, 6, 12, 24}},
	"s": {96, [4]int{2, 2, 18, 2}, [4]int{3, 6, 12, 24}},
	"b": {128, [4]int{2, 2, 18, 2}, [4]int{4, 8, 16, 32}},
}

// BuildSwin constructs a Swin Transformer [Liu et al. 2021]
// (tiny/small/base, patch 4, window 7) at 224x224, batch 1. Window
// partitioning, cyclic shifts (as Slice+Concat rolls) and patch merging
// (strided slices) are emitted exactly as ONNX exports lower them — the
// data-movement-heavy structure behind Swin's high node counts in
// Table 3.
func BuildSwin(variant string) (*graph.Graph, error) {
	cfg, ok := swinConfigs[variant]
	if !ok {
		return nil, fmt.Errorf("models: unsupported Swin variant %q (t/s/b)", variant)
	}
	const (
		img    = 224
		patch  = 4
		window = 7
	)
	b := NewBuilder("swin-" + variant)
	x := b.Input("input", graph.Float32, 1, 3, img, img)

	// Patch embedding.
	h, w := img/patch, img/patch
	x = b.Conv(x, cfg.embed, patch, patch, 0, 1, true, "patch_embed")
	x = b.Reshape(x, 0, cfg.embed, h*w)
	x = b.Transpose(x, 0, 2, 1) // [N, H*W, C]
	x = b.LayerNorm(x, "patch_ln")

	dim := cfg.embed
	for stage := 0; stage < 4; stage++ {
		for block := 0; block < cfg.depths[stage]; block++ {
			shifted := block%2 == 1
			prefix := fmt.Sprintf("stage%d_block%d", stage, block)
			x = swinBlock(b, x, dim, h, w, window, cfg.heads[stage], shifted, prefix)
		}
		if stage < 3 {
			x = patchMerging(b, x, dim, h, w, fmt.Sprintf("merge%d", stage))
			h, w, dim = h/2, w/2, dim*2
		}
	}

	x = b.LayerNorm(x, "final_ln")
	x = b.ReduceMean(x, []int{1}, false, "pool")
	out := b.FC(x, 1000, true, "head")
	b.MarkOutput(out)
	return b.Finish()
}

// swinBlock is one (shifted-)window attention block.
func swinBlock(b *Builder, x string, dim, h, w, window, heads int, shifted bool, prefix string) string {
	shortcut := x
	y := b.LayerNorm(x, prefix+"_ln1")
	y = b.Reshape(y, 0, h, w, dim) // [N, H, W, C]

	shift := 0
	if shifted {
		shift = window / 2
		y = roll2D(b, y, -shift, prefix+"_shift")
	}

	// Window partition: [N, H/ws, ws, W/ws, ws, C] -> [N*nw, ws*ws, C].
	nh, nw := h/window, w/window
	y = b.Reshape(y, 0, nh, window, nw, window, dim)
	y = b.Transpose(y, 0, 1, 3, 2, 4, 5)
	y = b.Reshape(y, -1, window*window, dim)

	y = windowAttention(b, y, dim, heads, window*window, prefix+"_attn")

	// Window reverse.
	y = b.Reshape(y, -1, nh, nw, window, window, dim)
	y = b.Transpose(y, 0, 1, 3, 2, 4, 5)
	y = b.Reshape(y, -1, h, w, dim)

	if shifted {
		y = roll2D(b, y, shift, prefix+"_unshift")
	}
	y = b.Reshape(y, 0, h*w, dim)
	x = b.Add(shortcut, y, prefix+"_attn_residual")

	m := b.LayerNorm(x, prefix+"_ln2")
	m = b.Linear(m, dim*4, true, prefix+"_mlp_fc1")
	m = b.Gelu(m, prefix+"_mlp_gelu")
	m = b.Linear(m, dim, true, prefix+"_mlp_fc2")
	return b.Add(x, m, prefix+"_mlp_residual")
}

// roll2D performs torch.roll over the two spatial axes of an
// [N, H, W, C] tensor, lowered to Slice+Concat pairs per axis as in ONNX
// exports.
func roll2D(b *Builder, x string, shift int, prefix string) string {
	for axis := 1; axis <= 2; axis++ {
		size := b.Dim(x, axis)
		cut := ((-shift)%size + size) % size
		if cut == 0 {
			continue
		}
		head := b.Slice(x, axis, 0, cut, fmt.Sprintf("%s_ax%d_head", prefix, axis))
		tail := b.Slice(x, axis, cut, size, fmt.Sprintf("%s_ax%d_tail", prefix, axis))
		x = b.Concat(axis, fmt.Sprintf("%s_ax%d_cat", prefix, axis), tail, head)
	}
	return x
}

// windowAttention is multi-head self-attention over window tokens with a
// learned relative position bias added to the attention scores.
func windowAttention(b *Builder, x string, dim, heads, tokens int, prefix string) string {
	headDim := dim / heads

	qkv := b.Linear(x, dim*3, true, prefix+"_qkv")
	qkv = b.Reshape(qkv, 0, tokens, 3, heads, headDim)
	qkv = b.Transpose(qkv, 2, 0, 3, 1, 4)
	parts := b.Split(qkv, 0, 3, prefix+"_qkv_split")
	q := b.Reshape(parts[0], -1, heads, tokens, headDim)
	k := b.Reshape(parts[1], -1, heads, tokens, headDim)
	v := b.Reshape(parts[2], -1, heads, tokens, headDim)

	kT := b.Transpose(k, 0, 1, 3, 2)
	scores := b.MatMul(q, kT, prefix+"_qk")
	scale := b.scalarConst(prefix+"_scale", 1/math.Sqrt(float64(headDim)))
	scores = b.Mul(scores, scale, prefix+"_scale_mul")
	bias := b.Param(prefix+"_rel_pos_bias", heads, tokens, tokens)
	scores = b.Add(scores, bias, prefix+"_bias_add")
	attn := b.Softmax(scores, -1, prefix+"_softmax")
	ctx := b.MatMul(attn, v, prefix+"_av")
	ctx = b.Transpose(ctx, 0, 2, 1, 3)
	ctx = b.Reshape(ctx, 0, tokens, dim)
	return b.Linear(ctx, dim, true, prefix+"_proj")
}

// patchMerging downsamples 2x spatially and doubles channels: four
// strided slices, concat, LayerNorm, linear reduction — the Swin
// equivalent of a strided convolution.
func patchMerging(b *Builder, x string, dim, h, w int, prefix string) string {
	y := b.Reshape(x, 0, h, w, dim)
	x00 := b.SliceStep(y, 1, 0, h, 2, prefix+"_r0")
	x00 = b.SliceStep(x00, 2, 0, w, 2, prefix+"_r0c0")
	x10 := b.SliceStep(y, 1, 1, h, 2, prefix+"_r1")
	x10 = b.SliceStep(x10, 2, 0, w, 2, prefix+"_r1c0")
	x01 := b.SliceStep(y, 1, 0, h, 2, prefix+"_r0b")
	x01 = b.SliceStep(x01, 2, 1, w, 2, prefix+"_r0c1")
	x11 := b.SliceStep(y, 1, 1, h, 2, prefix+"_r1b")
	x11 = b.SliceStep(x11, 2, 1, w, 2, prefix+"_r1c1")
	cat := b.Concat(3, prefix+"_concat", x00, x10, x01, x11)
	cat = b.Reshape(cat, 0, (h/2)*(w/2), 4*dim)
	cat = b.LayerNorm(cat, prefix+"_ln")
	return b.Linear(cat, 2*dim, false, prefix+"_reduce")
}
