package models

import (
	"fmt"
	"math"

	"proof/internal/graph"
)

// BuildDistilBERT constructs DistilBERT-base [Sanh et al. 2019] for the
// given sequence length (the paper's Table 3 GFLOP corresponds to
// seq=512), batch 1: 6 transformer encoder layers, hidden 768, 12 heads,
// FFN 3072, with separate Q/K/V projections as the HuggingFace export
// emits. The output is the final hidden state (DistilBertModel, no task
// head), matching Table 3's 67M parameters.
func BuildDistilBERT(seq int) (*graph.Graph, error) {
	return buildBERTEncoder("distilbert", seq, 6)
}

// BuildBERTBase constructs a 12-layer BERT-base-sized encoder (a zoo
// extra beyond the paper's Table 3, for scale comparisons).
func BuildBERTBase(seq int) (*graph.Graph, error) {
	return buildBERTEncoder("bert-base", seq, 12)
}

func buildBERTEncoder(name string, seq, layers int) (*graph.Graph, error) {
	if seq < 1 {
		return nil, fmt.Errorf("models: invalid sequence length %d", seq)
	}
	if layers < 1 {
		return nil, fmt.Errorf("models: invalid layer count %d", layers)
	}
	const (
		vocab  = 30522
		dim    = 768
		heads  = 12
		ffn    = 3072
		maxPos = 512
	)
	b := NewBuilder(name)
	ids := b.Input("input_ids", graph.Int64, 1, seq)

	// Embeddings: word + position, then LayerNorm.
	wordEmb := b.Embedding(ids, vocab, dim, "word_embeddings")
	posIdx := make([]int64, seq)
	for i := range posIdx {
		posIdx[i] = int64(i % maxPos)
	}
	posIds := b.IntConst("position_ids", posIdx...)
	posEmb := b.Embedding(posIds, maxPos, dim, "position_embeddings")
	x := b.Add(wordEmb, posEmb, "embeddings_add")
	x = b.LayerNorm(x, "embeddings_ln")

	for i := 0; i < layers; i++ {
		x = bertLayer(b, x, dim, heads, ffn, seq, fmt.Sprintf("layer%d", i))
	}

	b.MarkOutput(x)
	return b.Finish()
}

// bertLayer is one post-norm transformer encoder layer with separate
// Q/K/V projections.
func bertLayer(b *Builder, x string, dim, heads, ffn, seq int, prefix string) string {
	headDim := dim / heads

	q := b.Linear(x, dim, true, prefix+"_q")
	k := b.Linear(x, dim, true, prefix+"_k")
	v := b.Linear(x, dim, true, prefix+"_v")
	reshape := func(t string) string {
		t = b.Reshape(t, 0, seq, heads, headDim)
		return b.Transpose(t, 0, 2, 1, 3)
	}
	qh, kh, vh := reshape(q), reshape(k), reshape(v)
	kT := b.Transpose(kh, 0, 1, 3, 2)
	scores := b.MatMul(qh, kT, prefix+"_qk")
	scale := b.scalarConst(prefix+"_scale", 1/math.Sqrt(float64(headDim)))
	scores = b.Div(scores, scale, prefix+"_scale_div")
	attn := b.Softmax(scores, -1, prefix+"_softmax")
	ctx := b.MatMul(attn, vh, prefix+"_av")
	ctx = b.Transpose(ctx, 0, 2, 1, 3)
	ctx = b.Reshape(ctx, 0, seq, dim)
	ctx = b.Linear(ctx, dim, true, prefix+"_out")
	x = b.Add(x, ctx, prefix+"_attn_residual")
	x = b.LayerNorm(x, prefix+"_attn_ln")

	f := b.Linear(x, ffn, true, prefix+"_ffn_fc1")
	f = b.Gelu(f, prefix+"_ffn_gelu")
	f = b.Linear(f, dim, true, prefix+"_ffn_fc2")
	x = b.Add(x, f, prefix+"_ffn_residual")
	return b.LayerNorm(x, prefix+"_ffn_ln")
}
