package models

import (
	"fmt"

	"proof/internal/graph"
)

// BuildMLPMixerB16 constructs MLP-Mixer B/16 [Tolstikhin et al. 2021] at
// 224x224, batch 1: 12 mixer blocks of token-mixing and channel-mixing
// MLPs over 196 patch tokens of width 768.
func BuildMLPMixerB16() (*graph.Graph, error) {
	const (
		img        = 224
		patch      = 16
		dim        = 768
		depth      = 12
		tokenMLP   = 384
		channelMLP = 3072
	)
	tokens := (img / patch) * (img / patch)

	b := NewBuilder("mlp-mixer-b16")
	x := b.Input("input", graph.Float32, 1, 3, img, img)
	x = b.Conv(x, dim, patch, patch, 0, 1, true, "patch_embed")
	x = b.Reshape(x, 0, dim, tokens)
	x = b.Transpose(x, 0, 2, 1) // [N, tokens, dim]

	for i := 0; i < depth; i++ {
		prefix := fmt.Sprintf("block%d", i)
		// Token mixing: transpose to [N, dim, tokens], MLP over
		// tokens, transpose back.
		t := b.LayerNorm(x, prefix+"_ln1")
		t = b.Transpose(t, 0, 2, 1)
		t = b.Linear(t, tokenMLP, true, prefix+"_token_fc1")
		t = b.Gelu(t, prefix+"_token_gelu")
		t = b.Linear(t, tokens, true, prefix+"_token_fc2")
		t = b.Transpose(t, 0, 2, 1)
		x = b.Add(x, t, prefix+"_token_residual")

		// Channel mixing: standard MLP over the channel dim.
		c := b.LayerNorm(x, prefix+"_ln2")
		c = b.Linear(c, channelMLP, true, prefix+"_channel_fc1")
		c = b.Gelu(c, prefix+"_channel_gelu")
		c = b.Linear(c, dim, true, prefix+"_channel_fc2")
		x = b.Add(x, c, prefix+"_channel_residual")
	}

	x = b.LayerNorm(x, "final_ln")
	x = b.ReduceMean(x, []int{1}, false, "pool")
	out := b.FC(x, 1000, true, "head")
	b.MarkOutput(out)
	return b.Finish()
}
