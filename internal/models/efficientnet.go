package models

import (
	"fmt"
	"math"

	"proof/internal/graph"
)

// mbStage describes one EfficientNet stage.
type mbStage struct {
	expand  int
	out     int
	repeats int
	stride  int
	kernel  int
	fused   bool // Fused-MBConv (EfficientNetV2) instead of MBConv
	se      bool // squeeze-and-excitation
}

// BuildEfficientNet constructs EfficientNet-B0 or B4 [Tan & Le 2019] at
// 224x224, batch 1 (the paper evaluates B4 at 224 — its Table 3 GFLOP
// matches 224, not the native 380 resolution).
func BuildEfficientNet(variant string) (*graph.Graph, error) {
	var widthMult, depthMult float64
	switch variant {
	case "b0":
		widthMult, depthMult = 1.0, 1.0
	case "b4":
		widthMult, depthMult = 1.4, 1.8
	default:
		return nil, fmt.Errorf("models: unsupported EfficientNet variant %q", variant)
	}
	base := []mbStage{
		{1, 16, 1, 1, 3, false, true},
		{6, 24, 2, 2, 3, false, true},
		{6, 40, 2, 2, 5, false, true},
		{6, 80, 3, 2, 3, false, true},
		{6, 112, 3, 1, 5, false, true},
		{6, 192, 4, 2, 5, false, true},
		{6, 320, 1, 1, 3, false, true},
	}
	stages := make([]mbStage, len(base))
	for i, s := range base {
		s.out = makeDivisible(float64(s.out)*widthMult, 8)
		s.repeats = int(math.Ceil(float64(s.repeats) * depthMult))
		stages[i] = s
	}
	stem := makeDivisible(32*widthMult, 8)
	head := makeDivisible(1280*widthMult, 8)
	return buildEfficientNetFamily("efficientnet-"+variant, stem, head, stages)
}

// BuildEfficientNetV2 constructs EfficientNetV2-T or S [Tan & Le 2021] at
// 224x224, batch 1. The early stages use Fused-MBConv: the depth-wise +
// point-wise pair is replaced with a single traditional convolution —
// the §4.4 insight about depth-wise convolutions' low arithmetic
// intensity made concrete.
func BuildEfficientNetV2(variant string) (*graph.Graph, error) {
	var stages []mbStage
	var stem, head int
	switch variant {
	case "t": // timm efficientnetv2_rw_t
		stem, head = 24, 1024
		stages = []mbStage{
			{1, 24, 2, 1, 3, true, false},
			{4, 40, 4, 2, 3, true, false},
			{4, 48, 4, 2, 3, true, false},
			{4, 104, 6, 2, 3, false, true},
			{6, 128, 9, 1, 3, false, true},
			{6, 208, 14, 2, 3, false, true},
		}
	case "s":
		stem, head = 24, 1280
		stages = []mbStage{
			{1, 24, 2, 1, 3, true, false},
			{4, 48, 4, 2, 3, true, false},
			{4, 64, 4, 2, 3, true, false},
			{4, 128, 6, 2, 3, false, true},
			{6, 160, 9, 1, 3, false, true},
			{6, 256, 15, 2, 3, false, true},
		}
	default:
		return nil, fmt.Errorf("models: unsupported EfficientNetV2 variant %q", variant)
	}
	return buildEfficientNetFamily("efficientnetv2-"+variant, stem, head, stages)
}

func buildEfficientNetFamily(name string, stem, head int, stages []mbStage) (*graph.Graph, error) {
	b := NewBuilder(name)
	x := b.Input("input", graph.Float32, 1, 3, 224, 224)
	x = b.Conv(x, stem, 3, 2, 1, 1, true, "stem_conv")
	x = b.SiLU(x, "stem_silu")

	blockIdx := 0
	for _, stage := range stages {
		for i := 0; i < stage.repeats; i++ {
			stride := 1
			if i == 0 {
				stride = stage.stride
			}
			prefix := fmt.Sprintf("block%d", blockIdx)
			if stage.fused {
				x = fusedMBConv(b, x, stage.out, stage.expand, stride, stage.kernel, prefix)
			} else {
				x = mbConv(b, x, stage.out, stage.expand, stride, stage.kernel, stage.se, prefix)
			}
			blockIdx++
		}
	}

	x = b.Conv(x, head, 1, 1, 0, 1, true, "head_conv")
	x = b.SiLU(x, "head_silu")
	x = b.GAP(x, "gap")
	x = b.Flatten(x, 1, "flatten")
	x = b.FC(x, 1000, true, "classifier")
	b.MarkOutput(x)
	return b.Finish()
}

// mbConv is the inverted-bottleneck MBConv block with optional SE.
func mbConv(b *Builder, x string, cout, expand, stride, kernel int, se bool, prefix string) string {
	cin := b.Channels(x)
	identity := x
	y := x
	if expand != 1 {
		y = b.Conv(y, cin*expand, 1, 1, 0, 1, true, prefix+"_expand")
		y = b.SiLU(y, prefix+"_expand_silu")
	}
	mid := b.Channels(y)
	y = b.Conv(y, mid, kernel, stride, kernel/2, mid, true, prefix+"_dw")
	y = b.SiLU(y, prefix+"_dw_silu")
	if se {
		y = seBlock(b, y, cin/4, prefix+"_se")
	}
	y = b.Conv(y, cout, 1, 1, 0, 1, true, prefix+"_project")
	if stride == 1 && cin == cout {
		y = b.Add(y, identity, prefix+"_add")
	}
	return y
}

// fusedMBConv replaces the depth-wise + expand pair with one traditional
// convolution (EfficientNetV2's change back toward higher arithmetic
// intensity).
func fusedMBConv(b *Builder, x string, cout, expand, stride, kernel int, prefix string) string {
	cin := b.Channels(x)
	identity := x
	var y string
	if expand != 1 {
		y = b.Conv(x, cin*expand, kernel, stride, kernel/2, 1, true, prefix+"_fused")
		y = b.SiLU(y, prefix+"_fused_silu")
		y = b.Conv(y, cout, 1, 1, 0, 1, true, prefix+"_project")
	} else {
		y = b.Conv(x, cout, kernel, stride, kernel/2, 1, true, prefix+"_fused")
		y = b.SiLU(y, prefix+"_fused_silu")
	}
	if stride == 1 && cin == cout {
		y = b.Add(y, identity, prefix+"_add")
	}
	return y
}

// seBlock is squeeze-and-excitation: GAP -> 1x1 reduce -> SiLU -> 1x1
// expand -> Sigmoid -> channel-wise Mul.
func seBlock(b *Builder, x string, reduced int, prefix string) string {
	if reduced < 1 {
		reduced = 1
	}
	c := b.Channels(x)
	s := b.GAP(x, prefix+"_squeeze")
	s = b.Conv(s, reduced, 1, 1, 0, 1, true, prefix+"_reduce")
	s = b.SiLU(s, prefix+"_silu")
	s = b.Conv(s, c, 1, 1, 0, 1, true, prefix+"_expand")
	s = b.Sigmoid(s, prefix+"_gate")
	return b.Mul(x, s, prefix+"_scale")
}
