package graphops

import (
	"fmt"

	"proof/internal/graph"
)

// QuantizeInt8 converts a float model to the int8 deployment form
// (post-training quantization as deployed): weights and activations
// become int8, graph inputs and outputs stay fp32, and explicit
// QuantizeLinear / DequantizeLinear boundary nodes are inserted — the
// conversion layers a quantized engine actually executes. Returns the
// number of Q/DQ nodes inserted.
func QuantizeInt8(g *graph.Graph) (int, error) {
	if err := g.Validate(); err != nil {
		return 0, fmt.Errorf("graphops: quantize: %w", err)
	}
	for _, n := range g.Nodes {
		if n.OpType == "QuantizeLinear" || n.OpType == "DequantizeLinear" {
			return 0, fmt.Errorf("graphops: model is already quantized")
		}
	}

	// Remember the float boundary tensors before conversion.
	isFloat := func(t *graph.Tensor) bool {
		switch t.DType {
		case graph.Float32, graph.Float16, graph.BFloat16:
			return true
		}
		return false
	}
	var floatInputs, floatOutputs []string
	for _, in := range g.Inputs {
		if t := g.Tensor(in); t != nil && isFloat(t) {
			floatInputs = append(floatInputs, in)
		}
	}
	for _, out := range g.Outputs {
		if t := g.Tensor(out); t != nil && isFloat(t) {
			floatOutputs = append(floatOutputs, out)
		}
	}

	// Quantize the interior.
	g.ConvertFloatTensors(graph.Int8)

	scaleFor := func(name string) string {
		s := name + "_qscale"
		g.AddTensor(&graph.Tensor{Name: s, DType: graph.Float32, Shape: graph.Shape{1}, Param: true})
		return s
	}

	inserted := 0
	// Inputs: restore fp32 and quantize into the graph.
	for _, in := range floatInputs {
		t := g.Tensor(in)
		t.DType = graph.Float32
		q := in + "_quantized"
		g.AddTensor(&graph.Tensor{Name: q, DType: graph.Int8, Shape: t.Shape.Clone()})
		for _, c := range g.Nodes {
			for j, inp := range c.Inputs {
				if inp == in {
					c.Inputs[j] = q
				}
			}
		}
		g.AddNode(&graph.Node{
			Name:    "quantize_" + in,
			OpType:  "QuantizeLinear",
			Inputs:  []string{in, scaleFor(in)},
			Outputs: []string{q},
		})
		inserted++
	}
	// Outputs: dequantize back to fp32.
	for _, out := range floatOutputs {
		t := g.Tensor(out)
		dq := out + "_dequantized"
		g.AddTensor(&graph.Tensor{Name: dq, DType: graph.Float32, Shape: t.Shape.Clone()})
		g.AddNode(&graph.Node{
			Name:    "dequantize_" + out,
			OpType:  "DequantizeLinear",
			Inputs:  []string{out, scaleFor(out)},
			Outputs: []string{dq},
		})
		for j, o := range g.Outputs {
			if o == out {
				g.Outputs[j] = dq
			}
		}
		inserted++
	}
	if err := g.InferShapes(); err != nil {
		return inserted, fmt.Errorf("graphops: quantized graph inference: %w", err)
	}
	return inserted, nil
}

// IsQuantized reports whether the graph contains quantization boundary
// nodes.
func IsQuantized(g *graph.Graph) bool {
	for _, n := range g.Nodes {
		if n.OpType == "QuantizeLinear" || n.OpType == "DequantizeLinear" {
			return true
		}
	}
	return false
}
