package graphops

import (
	"testing"

	"proof/internal/graph"
	"proof/internal/models"
)

func TestQuantizeInt8(t *testing.T) {
	g, err := models.Build("resnet-50")
	if err != nil {
		t.Fatal(err)
	}
	inserted, err := QuantizeInt8(g)
	if err != nil {
		t.Fatal(err)
	}
	if inserted != 2 { // one input, one output
		t.Errorf("inserted %d Q/DQ nodes, want 2", inserted)
	}
	if !IsQuantized(g) {
		t.Error("IsQuantized should report true")
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("invalid after quantization: %v", err)
	}
	// Boundary stays fp32; interior weights are int8.
	if g.Tensor("input").DType != graph.Float32 {
		t.Error("graph input must stay fp32")
	}
	if g.Tensor(g.Outputs[0]).DType != graph.Float32 {
		t.Error("graph output must be fp32 after dequantize")
	}
	if g.Tensor("stem_conv_w").DType != graph.Int8 {
		t.Error("weights must be int8")
	}
	// Double quantization is rejected.
	if _, err := QuantizeInt8(g); err == nil {
		t.Error("re-quantization must error")
	}
}

func TestQuantizedModelProfilesEndToEnd(t *testing.T) {
	// The quantized graph must flow through shape inference and
	// analysis (core integration is covered in internal/core tests).
	g, err := models.Build("mobilenetv2-1.0")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := QuantizeInt8(g); err != nil {
		t.Fatal(err)
	}
	if err := g.InferShapes(); err != nil {
		t.Fatal(err)
	}
	// Activation bytes shrink ~4x vs fp32 (int8 interior).
	var int8Bytes, fp32Bytes int64
	for _, tens := range g.Tensors {
		if tens.Param {
			continue
		}
		switch tens.DType {
		case graph.Int8:
			int8Bytes += tens.Bytes()
		case graph.Float32:
			fp32Bytes += tens.Bytes()
		}
	}
	if int8Bytes <= fp32Bytes {
		t.Errorf("interior should dominate: int8 %d vs fp32 %d", int8Bytes, fp32Bytes)
	}
}
