package graphops

import (
	"testing"

	"proof/internal/analysis"
	"proof/internal/graph"
	"proof/internal/models"
)

func reluChain(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New("chain")
	g.AddTensor(&graph.Tensor{Name: "x", DType: graph.Float32, Shape: graph.Shape{1, 4}})
	for _, n := range []string{"a", "b", "y"} {
		g.AddTensor(&graph.Tensor{Name: n, DType: graph.Float32})
	}
	g.AddNode(&graph.Node{Name: "r1", OpType: "Relu", Inputs: []string{"x"}, Outputs: []string{"a"}})
	g.AddNode(&graph.Node{Name: "id", OpType: "Identity", Inputs: []string{"a"}, Outputs: []string{"b"}})
	g.AddNode(&graph.Node{Name: "r2", OpType: "Relu", Inputs: []string{"b"}, Outputs: []string{"y"}})
	g.Inputs = []string{"x"}
	g.Outputs = []string{"y"}
	return g
}

func TestEliminateIdentity(t *testing.T) {
	g := reluChain(t)
	if removed := EliminateIdentity(g); removed != 1 {
		t.Fatalf("removed %d, want 1", removed)
	}
	if g.Node("id") != nil {
		t.Error("identity node still present")
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("invalid after pass: %v", err)
	}
	// r2 now consumes a directly.
	if g.Node("r2").Inputs[0] != "a" {
		t.Errorf("r2 input = %s", g.Node("r2").Inputs[0])
	}
}

func TestEliminateIdentityAtGraphOutput(t *testing.T) {
	g := reluChain(t)
	// Make the identity the final node.
	g.Nodes = g.Nodes[:2]
	delete(g.Tensors, "y")
	g.Outputs = []string{"b"}
	if removed := EliminateIdentity(g); removed != 1 {
		t.Fatalf("removed %d", removed)
	}
	if g.Outputs[0] != "a" {
		t.Errorf("graph output rewired to %s", g.Outputs[0])
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEliminateDeadNodes(t *testing.T) {
	g := reluChain(t)
	// Add a dead branch.
	g.AddTensor(&graph.Tensor{Name: "dead", DType: graph.Float32})
	g.AddNode(&graph.Node{Name: "deadrelu", OpType: "Relu", Inputs: []string{"a"}, Outputs: []string{"dead"}})
	if removed := EliminateDeadNodes(g); removed != 1 {
		t.Fatalf("removed %d, want 1", removed)
	}
	if g.Node("deadrelu") != nil || g.Tensor("dead") != nil {
		t.Error("dead branch still present")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Second run is a no-op.
	if removed := EliminateDeadNodes(g); removed != 0 {
		t.Error("second pass should remove nothing")
	}
}

func TestFoldConstantsShuffleChain(t *testing.T) {
	g, err := models.Build("shufflenetv2-1.0")
	if err != nil {
		t.Fatal(err)
	}
	before := len(g.Nodes)
	folded, err := FoldConstants(g)
	if err != nil {
		t.Fatal(err)
	}
	if folded == 0 {
		t.Fatal("shuffle chains should fold")
	}
	if len(g.Nodes) != before-folded {
		t.Errorf("node count %d, want %d", len(g.Nodes), before-folded)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("invalid after folding: %v", err)
	}
	// Shape inference must still succeed (Reshape now reads folded
	// initializers).
	if err := g.InferShapes(); err != nil {
		t.Fatalf("inference after folding: %v", err)
	}
	// Static Constant nodes fold away; batch-dependent Shape chains
	// must survive so re-batching still works.
	constants := 0
	shapes := 0
	for _, n := range g.Nodes {
		switch n.OpType {
		case "Constant":
			constants++
		case "Shape":
			shapes++
		}
	}
	if constants != 0 {
		t.Errorf("%d static Constant nodes survived folding", constants)
	}
	if shapes == 0 {
		t.Error("batch-dependent Shape chains must not be folded")
	}
}

func TestFoldThenRebatch(t *testing.T) {
	g, err := models.Build("shufflenetv2-1.0")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Optimize(g); err != nil {
		t.Fatal(err)
	}
	rep, err := analysis.NewRepWithBatch(g, 8)
	if err != nil {
		t.Fatalf("rebatch after folding must work: %v", err)
	}
	if got := g.Tensor(g.Outputs[0]).Shape[0]; got != 8 {
		t.Errorf("output batch = %d", got)
	}
	_ = rep
}

func TestFoldPreservesAnalysis(t *testing.T) {
	// Folding must not change the model's FLOP or (data) memory
	// totals: only metadata nodes disappear.
	for _, key := range []string{"shufflenetv2-1.0", "vit-t"} {
		g1, err := models.Build(key)
		if err != nil {
			t.Fatal(err)
		}
		r1, err := analysis.NewRep(g1)
		if err != nil {
			t.Fatal(err)
		}
		g2, err := models.Build(key)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Optimize(g2); err != nil {
			t.Fatalf("%s: %v", key, err)
		}
		r2, err := analysis.NewRep(g2)
		if err != nil {
			t.Fatal(err)
		}
		if r1.TotalCost().FLOP != r2.TotalCost().FLOP {
			t.Errorf("%s: FLOP changed %d -> %d", key, r1.TotalCost().FLOP, r2.TotalCost().FLOP)
		}
		if r2.NodeCount() >= r1.NodeCount() {
			t.Errorf("%s: optimization should shrink the graph (%d -> %d)",
				key, r1.NodeCount(), r2.NodeCount())
		}
	}
}

func TestOptimizeAllModels(t *testing.T) {
	for _, info := range models.List() {
		info := info
		t.Run(info.Key, func(t *testing.T) {
			g, err := info.Build()
			if err != nil {
				t.Fatal(err)
			}
			stats, err := Optimize(g)
			if err != nil {
				t.Fatal(err)
			}
			if err := g.Validate(); err != nil {
				t.Fatalf("invalid after optimize: %v", err)
			}
			if err := g.InferShapes(); err != nil {
				t.Fatalf("inference after optimize: %v", err)
			}
			_ = stats
		})
	}
}

func TestFoldDoesNotTouchGraphOutputs(t *testing.T) {
	// A shape chain whose result IS a graph output must stay a node.
	g := graph.New("out")
	g.AddTensor(&graph.Tensor{Name: "x", DType: graph.Float32, Shape: graph.Shape{2, 3}})
	g.AddTensor(&graph.Tensor{Name: "s", DType: graph.Int64})
	g.AddNode(&graph.Node{Name: "shape", OpType: "Shape", Inputs: []string{"x"}, Outputs: []string{"s"}})
	g.Inputs = []string{"x"}
	g.Outputs = []string{"s"}
	folded, err := FoldConstants(g)
	if err != nil {
		t.Fatal(err)
	}
	if folded != 0 || g.Node("shape") == nil {
		t.Error("graph-output producer must not be folded away")
	}
}
