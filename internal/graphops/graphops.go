// Package graphops provides model-graph transformation passes of the
// kind DNN inference runtimes apply before backend-specific fusion:
// identity elimination, dead-node elimination, and constant folding of
// shape-computation chains. PRoof applies them to imported models (the
// CLI's -optimize flag) so that hand-written or exported graphs enter
// analysis in the same canonical form the zoo builders produce.
package graphops

import (
	"fmt"

	"proof/internal/graph"
)

// EliminateIdentity removes Identity and (inference-mode) Dropout nodes,
// rewiring their consumers to the producer tensor. Graph outputs
// produced by eliminated nodes keep their name via an alias rewrite of
// the producer's output.
func EliminateIdentity(g *graph.Graph) int {
	removed := 0
	for {
		idx := -1
		for i, n := range g.Nodes {
			if (n.OpType == "Identity" || n.OpType == "Dropout") &&
				len(n.Inputs) >= 1 && len(n.Outputs) == 1 {
				idx = i
				break
			}
		}
		if idx < 0 {
			return removed
		}
		n := g.Nodes[idx]
		src, dst := n.Inputs[0], n.Outputs[0]
		// Rewire consumers of dst to src.
		for _, c := range g.Nodes {
			for j, in := range c.Inputs {
				if in == dst {
					c.Inputs[j] = src
				}
			}
		}
		// Keep graph-output names stable: if dst is a graph output,
		// rename src's role instead.
		for j, out := range g.Outputs {
			if out == dst {
				g.Outputs[j] = src
			}
		}
		delete(g.Tensors, dst)
		g.Nodes = append(g.Nodes[:idx], g.Nodes[idx+1:]...)
		removed++
	}
}

// EliminateDeadNodes removes nodes whose outputs cannot reach any graph
// output, together with their now-unreferenced intermediate tensors.
// Returns the number of nodes removed.
func EliminateDeadNodes(g *graph.Graph) int {
	live := map[string]bool{}
	var stack []string
	for _, out := range g.Outputs {
		stack = append(stack, out)
	}
	seen := map[string]bool{}
	for len(stack) > 0 {
		t := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[t] {
			continue
		}
		seen[t] = true
		prod := g.Producer(t)
		if prod == nil {
			continue
		}
		live[prod.Name] = true
		for _, in := range prod.Inputs {
			stack = append(stack, in)
		}
	}
	var kept []*graph.Node
	removed := 0
	referenced := map[string]bool{}
	for _, n := range g.Nodes {
		if live[n.Name] {
			kept = append(kept, n)
			for _, t := range append(append([]string{}, n.Inputs...), n.Outputs...) {
				referenced[t] = true
			}
			continue
		}
		removed++
	}
	if removed == 0 {
		return 0
	}
	for _, in := range g.Inputs {
		referenced[in] = true
	}
	for _, out := range g.Outputs {
		referenced[out] = true
	}
	for name, t := range g.Tensors {
		if t.Param || referenced[name] {
			continue
		}
		delete(g.Tensors, name)
	}
	g.Nodes = kept
	return removed
}

// FoldConstants replaces shape-computation chains whose values are fully
// known (Constant, Shape-of-static-input, Gather/Concat/arithmetic on
// known values) with initializer tensors carrying the computed value.
// Shapes must be inferred first. Returns the number of nodes folded.
//
// Folding is what real runtimes do at build time; after this pass, the
// only remaining nodes are ones that move or compute tensor data.
func FoldConstants(g *graph.Graph) (int, error) {
	if err := g.InferShapes(); err != nil {
		return 0, fmt.Errorf("graphops: shape inference before folding: %w", err)
	}
	order, err := g.TopoSort()
	if err != nil {
		return 0, err
	}
	return foldConstantsImpl(g, order)
}

// foldConstantsImpl performs the actual fold: it walks in topological
// order, evaluates the shape-chain ops whose inputs are known, attaches
// the computed value to the output tensor as an initializer, and removes
// the producing node.
//
// Shape nodes whose input depends on a graph input are NOT folded: their
// value contains the batch size, and baking it in would break
// re-batching (runtimes fold those only at engine build time, when the
// batch is fixed).
func foldConstantsImpl(g *graph.Graph, order []*graph.Node) (int, error) {
	// Forward closure of graph inputs: tensors with dynamic shapes.
	dynamic := map[string]bool{}
	for _, in := range g.Inputs {
		dynamic[in] = true
	}
	for _, n := range order {
		depends := false
		for _, in := range n.Inputs {
			if dynamic[in] {
				depends = true
				break
			}
		}
		if depends {
			for _, out := range n.Outputs {
				dynamic[out] = true
			}
		}
	}

	values := map[string][]int64{}
	for name, t := range g.Tensors {
		if t.IntData != nil {
			values[name] = t.IntData
		}
	}
	evaluate := func(n *graph.Node) ([]int64, bool) {
		in := func(i int) ([]int64, bool) {
			if i >= len(n.Inputs) {
				return nil, false
			}
			v, ok := values[n.Inputs[i]]
			return v, ok
		}
		switch n.OpType {
		case "Constant":
			if v, ok := n.Attrs["value_ints"]; ok {
				out := make([]int64, len(v.Ints))
				for i, x := range v.Ints {
					out[i] = int64(x)
				}
				return out, true
			}
			return nil, false
		case "Shape":
			if dynamic[n.Inputs[0]] {
				return nil, false // batch-dependent: fold only at engine build
			}
			t := g.Tensor(n.Inputs[0])
			if t == nil || !t.Shape.Valid() {
				return nil, false
			}
			out := make([]int64, t.Shape.Rank())
			for i, d := range t.Shape {
				out[i] = int64(d)
			}
			return out, true
		case "Gather":
			data, ok1 := in(0)
			idx, ok2 := in(1)
			if !ok1 || !ok2 || n.Attrs.Int("axis", 0) != 0 {
				return nil, false
			}
			out := make([]int64, 0, len(idx))
			for _, i := range idx {
				if i < 0 {
					i += int64(len(data))
				}
				if i < 0 || int(i) >= len(data) {
					return nil, false
				}
				out = append(out, data[i])
			}
			return out, true
		case "Concat":
			var out []int64
			for i := range n.Inputs {
				v, ok := in(i)
				if !ok {
					return nil, false
				}
				out = append(out, v...)
			}
			return out, true
		case "Squeeze", "Unsqueeze", "Cast":
			return in(0)
		case "Add", "Sub", "Mul", "Div":
			a, ok1 := in(0)
			b, ok2 := in(1)
			if !ok1 || !ok2 || len(a) != len(b) {
				return nil, false
			}
			out := make([]int64, len(a))
			for i := range a {
				switch n.OpType {
				case "Add":
					out[i] = a[i] + b[i]
				case "Sub":
					out[i] = a[i] - b[i]
				case "Mul":
					out[i] = a[i] * b[i]
				case "Div":
					if b[i] == 0 {
						return nil, false
					}
					out[i] = a[i] / b[i]
				}
			}
			return out, true
		}
		return nil, false
	}

	foldedNodes := map[string]bool{}
	for _, n := range order {
		if len(n.Outputs) != 1 {
			continue
		}
		out := g.Tensor(n.Outputs[0])
		if out == nil {
			continue
		}
		// Only fold integer shape chains (small tensors).
		if n.OpType != "Shape" && n.OpType != "Constant" {
			if out.DType != graph.Int64 || out.Shape == nil || out.Shape.NumElements() > 64 {
				continue
			}
		}
		if v, ok := evaluate(n); ok {
			values[n.Outputs[0]] = v
			foldedNodes[n.Name] = true
		}
	}
	if len(foldedNodes) == 0 {
		return 0, nil
	}
	// A folded node can only be removed if ALL its consumers accept an
	// initializer in place of its output — always true in ONNX — and
	// its output is not a graph output.
	isGraphOutput := map[string]bool{}
	for _, o := range g.Outputs {
		isGraphOutput[o] = true
	}
	var kept []*graph.Node
	removedCount := 0
	for _, n := range g.Nodes {
		if !foldedNodes[n.Name] || isGraphOutput[n.Outputs[0]] {
			kept = append(kept, n)
			continue
		}
		// Turn the output tensor into an initializer with the value.
		t := g.Tensors[n.Outputs[0]]
		t.Param = true
		t.IntData = values[n.Outputs[0]]
		removedCount++
	}
	g.Nodes = kept
	return removedCount, nil
}

// Optimize applies the standard pass pipeline: identity elimination,
// constant folding, then dead-node elimination. Returns a summary of
// what was removed.
type OptimizeStats struct {
	// IdentityRemoved counts eliminated Identity/Dropout nodes.
	IdentityRemoved int
	// ConstantsFolded counts folded shape-chain nodes.
	ConstantsFolded int
	// DeadRemoved counts dead nodes eliminated.
	DeadRemoved int
}

// Optimize runs the full pipeline in place.
func Optimize(g *graph.Graph) (OptimizeStats, error) {
	var stats OptimizeStats
	stats.IdentityRemoved = EliminateIdentity(g)
	folded, err := FoldConstants(g)
	if err != nil {
		return stats, err
	}
	stats.ConstantsFolded = folded
	stats.DeadRemoved = EliminateDeadNodes(g)
	if err := g.Validate(); err != nil {
		return stats, fmt.Errorf("graphops: graph invalid after optimization: %w", err)
	}
	return stats, nil
}
