package power

import (
	"testing"

	"proof/internal/graph"
)

const (
	platform = "orin-nx"
	workload = "efficientnetv2-t"
	batch    = 16 // smaller than the paper's 128 for test speed
)

func TestPeakSweepMonotone(t *testing.T) {
	rows, err := PeakSweep(platform, graph.Float16, [][2]int{
		{918, 3199}, {918, 2133}, {510, 3199}, {510, 2133}, {510, 665},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Table 6 orderings: #1 beats #3 on FLOPS; #1 beats #2 on BW;
	// power strictly decreases down the table.
	if rows[0].FLOPS <= rows[2].FLOPS {
		t.Error("GPU clock must govern peak FLOPS")
	}
	if rows[0].BW <= rows[1].BW {
		t.Error("EMC clock must govern peak BW")
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].PowerW >= rows[i-1].PowerW {
			t.Errorf("power should decrease down Table 6: row %d", i)
		}
	}
	// Lowering GPU clock with EMC fixed also lowers achieved BW
	// (Table 6 #1 vs #3).
	if rows[2].BW >= rows[0].BW {
		t.Error("issue-rate limit: low GPU clock must reduce achieved BW")
	}
}

func TestAnalyzeEMC(t *testing.T) {
	analyses, report, err := AnalyzeEMC(platform, workload, batch, graph.Float16, []int{3199, 2133, 665})
	if err != nil {
		t.Fatal(err)
	}
	if report == nil || len(report.Layers) == 0 {
		t.Fatal("no layer-wise report")
	}
	if len(analyses) != 3 || analyses[0].EMCMHz != 3199 {
		t.Fatalf("analyses = %+v", analyses)
	}
	// Lower clocks clip more latency: affected share must be
	// monotonically non-decreasing as EMC drops.
	for i := 1; i < len(analyses); i++ {
		if analyses[i].AffectedShare < analyses[i-1].AffectedShare {
			t.Error("affected share must grow as EMC drops")
		}
	}
	// The paper's finding: 2133 clips only a little, 665 clips most.
	a2133, a665 := analyses[1], analyses[2]
	if a2133.AffectedShare > 0.45 {
		t.Errorf("EMC 2133 affected share = %.2f, should be small", a2133.AffectedShare)
	}
	if a665.AffectedShare < 0.5 {
		t.Errorf("EMC 665 affected share = %.2f, should be large", a665.AffectedShare)
	}
}

func TestTuneMatchesPaperChoice(t *testing.T) {
	res, err := Tune(platform, workload, batch, graph.Float16, 15.0, 0.45)
	if err != nil {
		t.Fatal(err)
	}
	if res.ChosenEMCMHz != 2133 {
		t.Errorf("chosen EMC = %d, paper picks 2133", res.ChosenEMCMHz)
	}
	if res.ChosenGPUMHz < 510 || res.ChosenGPUMHz > 714 {
		t.Errorf("chosen GPU = %d, paper lands at 612", res.ChosenGPUMHz)
	}
	if res.Optimal.PowerW > 15.0 {
		t.Errorf("optimal power %.1f exceeds budget", res.Optimal.PowerW)
	}
	if len(res.Evaluations) == 0 || len(res.Evaluations) > 6 {
		t.Errorf("binary search used %d probes, expected a few", len(res.Evaluations))
	}
}

// TestChooseEMCStopsAtFirstUnacceptable is the regression test for the
// §4.6 selection walk. The old loop kept scanning past an unacceptable
// candidate and adopted ANY later clock whose share happened to dip
// back under the threshold — with a non-monotonic AffectedShare
// sequence it picked a memory clock whose bandwidth line provably
// clips the workload at every clock above it.
func TestChooseEMCStopsAtFirstUnacceptable(t *testing.T) {
	tests := []struct {
		name      string
		shares    []float64
		threshold float64
		want      int // index into clocks, -1 = fallback
	}{
		// Non-monotonic dip after an unacceptable candidate: the walk
		// must stop at 2133, not resurrect 665. (Old code returned 665.)
		{"dip after rejection", []float64{0.01, 0.05, 0.25, 0.05}, 0.10, 1},
		{"monotonic lowering", []float64{0.01, 0.05, 0.08}, 0.10, 2},
		{"first candidate unacceptable", []float64{0.50, 0.60}, 0.10, -1},
		{"all acceptable", []float64{0.0, 0.0, 0.0}, 0.10, 2},
	}
	clocks := []int{3199, 2133, 1600, 665}
	const fallback = 9999
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var analyses []EMCAnalysis
			for i, s := range tt.shares {
				analyses = append(analyses, EMCAnalysis{EMCMHz: clocks[i], AffectedShare: s})
			}
			want := fallback
			if tt.want >= 0 {
				want = clocks[tt.want]
			}
			if got := ChooseEMC(analyses, fallback, tt.threshold); got != want {
				t.Errorf("ChooseEMC(%v, thr %.2f) = %d, want %d",
					tt.shares, tt.threshold, got, want)
			}
		})
	}
}

func TestTuneBeatsStockProfiles(t *testing.T) {
	res, err := Tune(platform, workload, batch, graph.Float16, 15.0, 0.45)
	if err != nil {
		t.Fatal(err)
	}
	// Table 7: the tuned profile is faster than every stock profile
	// that fits the budget.
	for _, p := range StockProfiles() {
		w, err := EvaluateProfile(platform, workload, batch, graph.Float16, p)
		if err != nil {
			t.Fatal(err)
		}
		if w.PowerW <= 15.0 && w.Latency < res.Optimal.Latency {
			t.Errorf("stock profile %s (%.1f W, %v) beats tuned (%.1f W, %v)",
				p.Name, w.PowerW, w.Latency, res.Optimal.PowerW, res.Optimal.Latency)
		}
	}
}

func TestEvaluateProfileErrors(t *testing.T) {
	if _, err := EvaluateProfile("nope", workload, batch, graph.Float16, StockProfiles()[0]); err == nil {
		t.Error("unknown platform must error")
	}
	if _, err := Tune("a100", workload, batch, graph.Float16, 100, 0.3); err == nil {
		t.Error("fixed-clock platform must refuse tuning")
	}
	if _, err := Tune(platform, workload, batch, graph.Float16, 1.0, 0.3); err == nil {
		t.Error("impossible budget must error")
	}
}

func TestStockAndComparisonProfiles(t *testing.T) {
	if len(StockProfiles()) != 3 || len(ComparisonProfiles()) != 6 {
		t.Error("Table 7 profile sets wrong size")
	}
	maxn := StockProfiles()[0]
	if maxn.Clocks.GPUMHz != 918 || maxn.Clocks.CPUClusters != 2 {
		t.Errorf("MAXN = %+v", maxn)
	}
}
