// Package power implements the §4.6 case study: maximizing a DNN
// workload's performance on the Jetson Orin NX under a power budget by
// tuning the GPU and memory (EMC) clocks with PRoof's roofline guidance.
//
// The workflow is the paper's: (1) measure the achieved roofline peak at
// candidate clock configurations (Table 6); (2) run a layer-wise
// roofline analysis of the workload at maximum clocks and overlay the
// bandwidth lines of the lower memory clocks (Figure 8) — pick the
// lowest memory clock whose line only clips a small share of the
// latency; (3) binary-search the GPU clock for the highest setting whose
// power stays under the budget (Table 7).
package power

import (
	"context"
	"fmt"
	"sort"
	"time"

	"proof/internal/core"
	"proof/internal/graph"
	"proof/internal/hardware"
	"proof/internal/roofline"
)

// Profile is an nvpmodel-style power profile: a named clock
// configuration (Table 7 rows).
type Profile struct {
	// Name labels the profile ("stock MAXN", "optimal (ours)", ...).
	Name string
	// CPU describes the cluster configuration ("729/729", "729/off").
	CPU string
	// Clocks is the full clock configuration.
	Clocks hardware.Clocks
}

// StockProfiles are the Jetson's built-in nvpmodel profiles as listed in
// Table 7 (#1-#3).
func StockProfiles() []Profile {
	return []Profile{
		{Name: `stock "MAXN"`, CPU: "729/729", Clocks: hardware.Clocks{GPUMHz: 918, EMCMHz: 3199, CPUMHz: 729, CPUClusters: 2}},
		// The stock "15W" profile sets TPC_PG_MASK=252, power-gating
		// part of the GPU — the inefficiency §4.6 discovers (Table 7
		// #2 runs the same clocks as #7 but far slower).
		{Name: `stock "15W"`, CPU: "729/off", Clocks: hardware.Clocks{GPUMHz: 612, EMCMHz: 3199, CPUMHz: 729, CPUClusters: 1, GPUCapacity: 0.62}},
		{Name: `stock "25W"`, CPU: "729/729", Clocks: hardware.Clocks{GPUMHz: 408, EMCMHz: 3199, CPUMHz: 729, CPUClusters: 2}},
	}
}

// ComparisonProfiles are Table 7's manual comparison rows (#4-#9).
func ComparisonProfiles() []Profile {
	mk := func(gpu, emc int) Profile {
		return Profile{
			Name:   fmt.Sprintf("comparison %d/%d", gpu, emc),
			CPU:    "729/off",
			Clocks: hardware.Clocks{GPUMHz: gpu, EMCMHz: emc, CPUMHz: 729, CPUClusters: 1},
		}
	}
	return []Profile{
		mk(918, 3199), mk(918, 2133), mk(918, 665),
		mk(612, 3199), mk(612, 665), mk(510, 3199),
	}
}

// WorkloadResult is the outcome of running a workload under a profile.
type WorkloadResult struct {
	Profile Profile
	// Latency is the per-inference latency.
	Latency time.Duration
	// PowerW is the estimated power draw during the run.
	PowerW float64
	// EnergyJ is the energy per inference (power x latency).
	EnergyJ float64
	// SamplesPerJoule is the energy efficiency at the profiled batch.
	SamplesPerJoule float64
}

// EvaluateProfile profiles the workload on the platform under the given
// clock profile.
func EvaluateProfile(platform, model string, batch int, dt graph.DataType, p Profile) (WorkloadResult, error) {
	r, err := core.Profile(core.Options{
		Model:    model,
		Platform: platform,
		Batch:    batch,
		DType:    dt,
		Clocks:   p.Clocks,
	})
	if err != nil {
		return WorkloadResult{}, err
	}
	res := WorkloadResult{Profile: p, Latency: r.TotalLatency, PowerW: r.PowerW}
	res.EnergyJ = res.PowerW * res.Latency.Seconds()
	if res.EnergyJ > 0 {
		res.SamplesPerJoule = float64(r.Batch) / res.EnergyJ
	}
	return res, nil
}

// PeakRow is one row of the Table 6 clock/peak/power sweep.
type PeakRow struct {
	GPUMHz, EMCMHz int
	// FLOPS and BW are the achieved roofline peaks.
	FLOPS, BW float64
	// PowerW is the draw during the peak test (full utilization).
	PowerW float64
}

// PeakSweep is the context-free convenience form of PeakSweepCtx.
func PeakSweep(platform string, dt graph.DataType, pairs [][2]int) ([]PeakRow, error) {
	return PeakSweepCtx(context.Background(), platform, dt, pairs)
}

// PeakSweepCtx measures the achieved roofline peak and power at each
// clock pair — the Table 6 baseline. The sweep checks ctx between
// clock pairs via the peak test's own cancellation points.
func PeakSweepCtx(ctx context.Context, platform string, dt graph.DataType, pairs [][2]int) ([]PeakRow, error) {
	plat, err := hardware.Get(platform)
	if err != nil {
		return nil, err
	}
	var rows []PeakRow
	for _, pair := range pairs {
		clk := hardware.Clocks{GPUMHz: pair[0], EMCMHz: pair[1], CPUMHz: 729, CPUClusters: 1}
		peak, err := roofline.MeasurePeak(ctx, plat, dt, clk, 1)
		if err != nil {
			return nil, err
		}
		w, err := plat.EstimatePower(clk, 1, 1)
		if err != nil {
			return nil, err
		}
		rows = append(rows, PeakRow{GPUMHz: pair[0], EMCMHz: pair[1], FLOPS: peak.FLOPS, BW: peak.BW, PowerW: w})
	}
	return rows, nil
}

// EMCAnalysis quantifies, per candidate memory clock, the share of the
// workload's latency spent in layers whose attained bandwidth exceeds
// that clock's achievable bandwidth — the layers "above the line" in
// Figure 8 that a lower memory clock would slow down.
type EMCAnalysis struct {
	// EMCMHz is the candidate memory clock.
	EMCMHz int
	// BWLine is the achievable bandwidth at that clock.
	BWLine float64
	// AffectedShare is the latency share of layers above the line.
	AffectedShare float64
}

// AnalyzeEMC runs the layer-wise analysis at maximum clocks and
// evaluates each candidate memory clock.
func AnalyzeEMC(platform, model string, batch int, dt graph.DataType, candidates []int) ([]EMCAnalysis, *core.Report, error) {
	plat, err := hardware.Get(platform)
	if err != nil {
		return nil, nil, err
	}
	r, err := core.Profile(core.Options{Model: model, Platform: platform, Batch: batch, DType: dt})
	if err != nil {
		return nil, nil, err
	}
	var out []EMCAnalysis
	for _, emc := range candidates {
		// Achievable bandwidth at the candidate clock (GPU at max):
		// the same derivation as the roofline ceilings, so the Figure
		// 8 lines and the chart's roof come from one model.
		line := plat.BWCeiling(hardware.Clocks{EMCMHz: emc})
		var affected float64
		for _, l := range r.Layers {
			if l.Point.Bandwidth > line {
				affected += l.Point.Share
			}
		}
		out = append(out, EMCAnalysis{EMCMHz: emc, BWLine: line, AffectedShare: affected})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].EMCMHz > out[j].EMCMHz })
	return out, r, nil
}

// TuneResult is the outcome of the full tuning workflow.
type TuneResult struct {
	// EMCAnalyses are the per-candidate memory clock evaluations.
	EMCAnalyses []EMCAnalysis
	// ChosenEMCMHz is the selected memory clock.
	ChosenEMCMHz int
	// ChosenGPUMHz is the selected GPU clock.
	ChosenGPUMHz int
	// Evaluations lists the binary-search probes.
	Evaluations []WorkloadResult
	// Optimal is the final operating point.
	Optimal WorkloadResult
}

// ChooseEMC walks the candidate memory clocks in the given order
// (descending, as AnalyzeEMC sorts them) and returns the last clock
// before the first one whose AffectedShare exceeds threshold. §4.6
// lowers the memory clock only while the bandwidth line stays above
// (nearly) all of the workload; once a candidate clips too much, every
// lower clock clips at least that region too, so the walk stops there
// — it must not keep scanning and adopt a later candidate that merely
// looks acceptable because AffectedShare is not guaranteed monotonic
// (layers cluster in bandwidth bands). fallbackMHz is returned when
// even the first candidate is unacceptable.
func ChooseEMC(analyses []EMCAnalysis, fallbackMHz int, threshold float64) int {
	chosen := fallbackMHz
	for _, a := range analyses {
		if a.AffectedShare > threshold {
			break
		}
		chosen = a.EMCMHz
	}
	return chosen
}

// Tune runs the §4.6 workflow for a workload on a DVFS platform under a
// power budget. affectedThreshold is the maximum tolerable latency
// share above a candidate memory clock's bandwidth line (the paper
// accepts the small clip of EMC 2133 and rejects EMC 665).
func Tune(platform, model string, batch int, dt graph.DataType, budgetW, affectedThreshold float64) (*TuneResult, error) {
	plat, err := hardware.Get(platform)
	if err != nil {
		return nil, err
	}
	if plat.Clocks == nil {
		return nil, fmt.Errorf("power: platform %s has no tunable clocks", platform)
	}

	// Step 1+2: pick the memory clock via bandwidth-line analysis.
	candidates := append([]int(nil), plat.Clocks.EMCOptionsMHz...)
	sort.Sort(sort.Reverse(sort.IntSlice(candidates)))
	analyses, _, err := AnalyzeEMC(platform, model, batch, dt, candidates)
	if err != nil {
		return nil, err
	}
	res := &TuneResult{
		EMCAnalyses:  analyses,
		ChosenEMCMHz: ChooseEMC(analyses, plat.Clocks.EMCMaxMHz, affectedThreshold),
	}

	// Step 3: binary-search the GPU clock options for the highest
	// setting within the power budget.
	opts := append([]int(nil), plat.Clocks.GPUOptionsMHz...)
	sort.Ints(opts)
	lo, hi := 0, len(opts)-1
	best := -1
	for lo <= hi {
		mid := (lo + hi) / 2
		p := Profile{
			Name:   fmt.Sprintf("probe %d/%d", opts[mid], res.ChosenEMCMHz),
			CPU:    "729/off",
			Clocks: hardware.Clocks{GPUMHz: opts[mid], EMCMHz: res.ChosenEMCMHz, CPUMHz: 729, CPUClusters: 1},
		}
		w, err := EvaluateProfile(platform, model, batch, dt, p)
		if err != nil {
			return nil, err
		}
		res.Evaluations = append(res.Evaluations, w)
		if w.PowerW <= budgetW {
			best = mid
			lo = mid + 1
		} else {
			hi = mid - 1
		}
	}
	if best < 0 {
		return nil, fmt.Errorf("power: no GPU clock fits the %.1f W budget", budgetW)
	}
	res.ChosenGPUMHz = opts[best]

	optimal := Profile{
		Name:   "optimal (ours)",
		CPU:    "729/off",
		Clocks: hardware.Clocks{GPUMHz: res.ChosenGPUMHz, EMCMHz: res.ChosenEMCMHz, CPUMHz: 729, CPUClusters: 1},
	}
	res.Optimal, err = EvaluateProfile(platform, model, batch, dt, optimal)
	if err != nil {
		return nil, err
	}
	return res, nil
}
