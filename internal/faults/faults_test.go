package faults

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestClassification(t *testing.T) {
	base := errors.New("boom")
	if !IsTransient(Transient(base)) {
		t.Error("Transient(err) not classified transient")
	}
	if IsTransient(Permanent(base)) {
		t.Error("Permanent(err) classified transient")
	}
	if IsTransient(base) {
		t.Error("unclassified error classified transient")
	}
	if IsTransient(nil) {
		t.Error("nil classified transient")
	}
	// Wrapping chains unwrap.
	wrapped := fmt.Errorf("attempt 3: %w", Transient(base))
	if !IsTransient(wrapped) {
		t.Error("wrapped transient not detected through the chain")
	}
	if !errors.Is(Transient(base), base) {
		t.Error("Error does not unwrap to its cause")
	}
	if Transient(nil) != nil || Permanent(nil) != nil {
		t.Error("wrapping nil must return nil")
	}
}

func TestInjectorDeterminism(t *testing.T) {
	schedule := func(seed uint64) []bool {
		inj := New(Config{Seed: seed, ErrorRate: 0.5})
		f := Wrap(inj, func(ctx context.Context, _ int) (int, error) { return 1, nil })
		var out []bool
		for i := 0; i < 64; i++ {
			_, err := f(context.Background(), 0)
			out = append(out, err != nil)
		}
		return out
	}
	a, b := schedule(7), schedule(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at call %d", i)
		}
	}
	c := schedule(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced an identical 64-call schedule")
	}
}

func TestInjectorRatesAndClasses(t *testing.T) {
	inj := New(Config{Seed: 1, ErrorRate: 0.5, TransientShare: 0.5})
	f := Wrap(inj, func(ctx context.Context, _ int) (int, error) { return 1, nil })
	const n = 2000
	var failed int
	for i := 0; i < n; i++ {
		if _, err := f(context.Background(), 0); err != nil {
			failed++
			if !IsTransient(err) {
				var fe *Error
				if !errors.As(err, &fe) || fe.Class != ClassPermanent {
					t.Fatalf("injected error has no class: %v", err)
				}
			}
		}
	}
	if failed < n/3 || failed > 2*n/3 {
		t.Errorf("error rate 0.5: %d/%d calls failed", failed, n)
	}
	st := inj.Stats()
	if st.Calls != n {
		t.Errorf("Calls = %d, want %d", st.Calls, n)
	}
	if int(st.Transient+st.Permanent) != failed {
		t.Errorf("class counters %d+%d != failures %d", st.Transient, st.Permanent, failed)
	}
	if st.Transient == 0 || st.Permanent == 0 {
		t.Errorf("TransientShare 0.5 produced one-sided classes: %+v", st)
	}
}

func TestInjectorDisable(t *testing.T) {
	inj := New(Config{Seed: 1, ErrorRate: 1})
	f := Wrap(inj, func(ctx context.Context, _ int) (int, error) { return 42, nil })
	if _, err := f(context.Background(), 0); err == nil {
		t.Fatal("rate-1 injector let a call through")
	}
	inj.Disable()
	v, err := f(context.Background(), 0)
	if err != nil || v != 42 {
		t.Fatalf("disabled injector interfered: v=%d err=%v", v, err)
	}
	inj.Enable()
	if _, err := f(context.Background(), 0); err == nil {
		t.Fatal("re-enabled injector let a call through")
	}
}

func TestInjectorLatencySpike(t *testing.T) {
	inj := New(Config{Seed: 1, LatencyRate: 1, Latency: 20 * time.Millisecond})
	f := Wrap(inj, func(ctx context.Context, _ int) (int, error) { return 1, nil })
	start := time.Now()
	if _, err := f(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Errorf("latency spike not applied: call took %v", d)
	}
	// A cancelled context cuts the spike short.
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	if _, err := f(ctx, 0); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("spiked call under expired ctx: err = %v", err)
	}
}

func TestInjectorBlowthrough(t *testing.T) {
	inj := New(Config{Seed: 1, BlowthroughRate: 1})
	called := false
	f := Wrap(inj, func(ctx context.Context, _ int) (int, error) { called = true; return 1, nil })
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := f(ctx, 0)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("blowthrough err = %v, want deadline exceeded", err)
	}
	if called {
		t.Error("blowthrough still invoked the wrapped function")
	}
	if time.Since(start) < 4*time.Millisecond {
		t.Error("blowthrough returned before the deadline")
	}
}

// TestInjectorConcurrent exercises the injector from many goroutines
// under -race.
func TestInjectorConcurrent(t *testing.T) {
	inj := New(Config{Seed: 3, ErrorRate: 0.3, TransientShare: 0.8})
	f := Wrap(inj, func(ctx context.Context, _ int) (int, error) { return 1, nil })
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_, _ = f(context.Background(), i)
			}
		}()
	}
	wg.Wait()
	if got := inj.Stats().Calls; got != 1600 {
		t.Errorf("Calls = %d, want 1600", got)
	}
}
