// Package faults provides the failure taxonomy and the deterministic
// fault-injection harness for the profiling stack.
//
// The taxonomy half is production code: backends and profilers wrap
// errors with Transient or Permanent so the resilience layer
// (profsession retries, the circuit breaker, proofd's degraded
// responses) can tell "try again" failures from "this will never
// work" ones. IsTransient is the single classification point.
//
// The injector half is a chaos harness: a seedable, concurrency-safe
// Injector wraps any profile-func-shaped seam (see Wrap) and injects
// error returns, latency spikes and context-deadline blowthroughs at
// configured rates. Given the same seed and call sequence it replays
// the same fault schedule, which keeps chaos tests debuggable.
package faults

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"
)

// Class partitions failures by whether retrying can help.
type Class int

const (
	// ClassTransient marks failures expected to clear on retry:
	// measurement jitter, a busy device, a dropped connection.
	ClassTransient Class = iota
	// ClassPermanent marks failures retrying cannot fix: an
	// unsupported op, an invalid configuration, a missing platform.
	ClassPermanent
)

// String returns "transient" or "permanent".
func (c Class) String() string {
	if c == ClassTransient {
		return "transient"
	}
	return "permanent"
}

// Error attaches a failure Class to an underlying error. It unwraps,
// so errors.Is/As see through it.
type Error struct {
	Class Class
	Err   error
}

func (e *Error) Error() string { return e.Class.String() + ": " + e.Err.Error() }
func (e *Error) Unwrap() error { return e.Err }

// Transient wraps err as a retryable failure. Returns nil for nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &Error{Class: ClassTransient, Err: err}
}

// Permanent wraps err as a non-retryable failure. Returns nil for nil.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &Error{Class: ClassPermanent, Err: err}
}

// IsTransient reports whether err carries ClassTransient anywhere in
// its chain. Unclassified errors are not transient: retrying is an
// opt-in contract, and retrying an unknown failure against a pipeline
// that is deterministic by default would only add latency.
func IsTransient(err error) bool {
	var fe *Error
	return errors.As(err, &fe) && fe.Class == ClassTransient
}

// Config sets the fault schedule of an Injector. All rates are
// probabilities in [0, 1] evaluated independently per call.
type Config struct {
	// Seed makes the schedule reproducible; two injectors with the
	// same seed and call sequence inject identical faults.
	Seed uint64
	// ErrorRate is the probability a call fails with an injected
	// error instead of reaching the wrapped function.
	ErrorRate float64
	// TransientShare is the fraction of injected errors classified
	// ClassTransient (the rest are ClassPermanent). Injectors built
	// by New default a zero value to 1: transient storms are the
	// common chaos scenario.
	TransientShare float64
	// LatencyRate is the probability a call is delayed by Latency
	// before proceeding (the delay respects ctx cancellation).
	LatencyRate float64
	// Latency is the injected spike magnitude.
	Latency time.Duration
	// BlowthroughRate is the probability a call blocks until the
	// caller's context expires — modelling a hung lower layer that
	// ignores its deadline budget and forces the caller's
	// per-attempt timeout to fire.
	BlowthroughRate float64
}

// Stats counts what an Injector has done so far.
type Stats struct {
	// Calls is the number of times the wrapped seam was invoked
	// (including calls that then had a fault injected).
	Calls int64 `json:"calls"`
	// Transient and Permanent count injected error returns by class.
	Transient int64 `json:"transient"`
	Permanent int64 `json:"permanent"`
	// Spikes counts injected latency delays.
	Spikes int64 `json:"spikes"`
	// Blowthroughs counts calls forced to block until ctx expiry.
	Blowthroughs int64 `json:"blowthroughs"`
}

// Injector injects faults per its Config. Safe for concurrent use;
// construct with New.
type Injector struct {
	cfg Config

	mu  sync.Mutex
	rng *rand.Rand

	enabled atomic.Bool

	calls, transient, permanent, spikes, blowthroughs atomic.Int64
}

// New builds an enabled injector. A zero TransientShare defaults to 1
// (all injected errors transient); set ErrorRate 0 if no errors are
// wanted.
func New(cfg Config) *Injector {
	if cfg.TransientShare == 0 {
		cfg.TransientShare = 1
	}
	inj := &Injector{
		cfg: cfg,
		rng: rand.New(rand.NewPCG(cfg.Seed, 0)),
	}
	inj.enabled.Store(true)
	return inj
}

// Disable stops all injection; subsequent calls pass straight through.
// Chaos tests use this to drain a storm and verify steady state.
func (inj *Injector) Disable() { inj.enabled.Store(false) }

// Enable re-arms injection.
func (inj *Injector) Enable() { inj.enabled.Store(true) }

// Stats snapshots the injection counters.
func (inj *Injector) Stats() Stats {
	return Stats{
		Calls:        inj.calls.Load(),
		Transient:    inj.transient.Load(),
		Permanent:    inj.permanent.Load(),
		Spikes:       inj.spikes.Load(),
		Blowthroughs: inj.blowthroughs.Load(),
	}
}

// decision is one call's drawn fault schedule, sampled under the rng
// lock so the random sequence is consistent regardless of how long
// individual calls run.
type decision struct {
	spike   bool
	blow    bool
	errType Class
	injErr  bool
}

func (inj *Injector) draw() decision {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	var d decision
	d.spike = inj.rng.Float64() < inj.cfg.LatencyRate
	d.blow = inj.rng.Float64() < inj.cfg.BlowthroughRate
	d.injErr = inj.rng.Float64() < inj.cfg.ErrorRate
	if inj.rng.Float64() < inj.cfg.TransientShare {
		d.errType = ClassTransient
	} else {
		d.errType = ClassPermanent
	}
	return d
}

// before runs the injected pre-call faults. It returns a non-nil
// error when the call must fail without reaching the wrapped seam.
func (inj *Injector) before(ctx context.Context) error {
	inj.calls.Add(1)
	if !inj.enabled.Load() {
		return nil
	}
	d := inj.draw()
	if d.spike && inj.cfg.Latency > 0 {
		inj.spikes.Add(1)
		t := time.NewTimer(inj.cfg.Latency)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	if d.blow {
		// A hung layer: ignore the work, hold the call until the
		// caller's deadline or cancellation fires.
		inj.blowthroughs.Add(1)
		<-ctx.Done()
		return ctx.Err()
	}
	if d.injErr {
		if d.errType == ClassTransient {
			n := inj.transient.Add(1)
			return Transient(fmt.Errorf("injected fault #%d", n))
		}
		n := inj.permanent.Add(1)
		return Permanent(fmt.Errorf("injected fault #%d", n))
	}
	return nil
}

// Wrap interposes inj on any single-argument, single-result function
// seam — in this repo, the profile func signature
// func(ctx, core.Options) (*core.Report, error). Faults fire before
// the wrapped call; a fault-free call passes through untouched.
func Wrap[T, R any](inj *Injector, f func(context.Context, T) (R, error)) func(context.Context, T) (R, error) {
	return func(ctx context.Context, arg T) (R, error) {
		if err := inj.before(ctx); err != nil {
			var zero R
			return zero, err
		}
		return f(ctx, arg)
	}
}
