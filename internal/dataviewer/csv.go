package dataviewer

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"proof/internal/core"
)

// WriteCSV exports the per-layer profiling results as CSV for
// spreadsheet or pandas post-processing.
func WriteCSV(w io.Writer, r *core.Report) error {
	cw := csv.NewWriter(w)
	header := []string{
		"layer", "category", "is_reformat", "latency_us", "share",
		"flop", "bytes", "flops", "bandwidth", "ai", "bound", "original_nodes",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, l := range r.Layers {
		row := []string{
			l.Name,
			l.Category,
			strconv.FormatBool(l.IsReformat),
			fmt.Sprintf("%.3f", float64(l.Point.Latency)/1e3),
			fmt.Sprintf("%.6f", l.Point.Share),
			strconv.FormatInt(l.Point.FLOP, 10),
			strconv.FormatInt(l.Point.Bytes, 10),
			fmt.Sprintf("%.3e", l.Point.FLOPS),
			fmt.Sprintf("%.3e", l.Point.Bandwidth),
			fmt.Sprintf("%.4f", l.Point.AI),
			l.Point.Bound,
			joinNodes(l.OriginalNodes),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func joinNodes(nodes []string) string {
	out := ""
	for i, n := range nodes {
		if i > 0 {
			out += ";"
		}
		out += n
	}
	return out
}

// CompareReports renders a side-by-side summary of two reports (e.g.
// original vs modified model, or two clock configurations) — the
// textual counterpart of Figure 6's paired charts.
func CompareReports(w io.Writer, label1 string, r1 *core.Report, label2 string, r2 *core.Report) {
	fmt.Fprintf(w, "Comparison: %s vs %s\n", label1, label2)
	row := func(name, v1, v2 string) {
		fmt.Fprintf(w, "  %-26s %18s %18s\n", name, v1, v2)
	}
	row("", label1, label2)
	row("latency", formatDuration(r1.TotalLatency), formatDuration(r2.TotalLatency))
	row("throughput (samples/s)", fmt.Sprintf("%.0f", r1.Throughput), fmt.Sprintf("%.0f", r2.Throughput))
	row("GFLOP", fmt.Sprintf("%.3f", float64(r1.EndToEnd.FLOP)/1e9), fmt.Sprintf("%.3f", float64(r2.EndToEnd.FLOP)/1e9))
	row("memory (MB)", fmt.Sprintf("%.1f", float64(r1.EndToEnd.Bytes)/1e6), fmt.Sprintf("%.1f", float64(r2.EndToEnd.Bytes)/1e6))
	row("attained FLOP/s", siFormat(r1.EndToEnd.FLOPS), siFormat(r2.EndToEnd.FLOPS))
	row("attained BW (B/s)", siFormat(r1.EndToEnd.Bandwidth), siFormat(r2.EndToEnd.Bandwidth))
	row("arithmetic intensity", fmt.Sprintf("%.1f", r1.EndToEnd.AI), fmt.Sprintf("%.1f", r2.EndToEnd.AI))
	row("bound", r1.EndToEnd.Bound, r2.EndToEnd.Bound)
	if r1.TotalLatency > 0 && r2.TotalLatency > 0 {
		fmt.Fprintf(w, "  speedup (%s -> %s): %.2fx\n", label1, label2,
			float64(r1.TotalLatency)/float64(r2.TotalLatency))
	}

	// Category share deltas.
	share := func(r *core.Report) map[string]float64 {
		out := map[string]float64{}
		for _, l := range r.Layers {
			out[l.Category] += l.Point.Share
		}
		return out
	}
	s1, s2 := share(r1), share(r2)
	seen := map[string]bool{}
	fmt.Fprintf(w, "  latency share by category:\n")
	for _, m := range []map[string]float64{s1, s2} {
		for c := range m {
			seen[c] = true
		}
	}
	for _, c := range sortedKeys(seen) {
		fmt.Fprintf(w, "    %-14s %6.1f%% -> %5.1f%%\n", c, s1[c]*100, s2[c]*100)
	}
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
