package dataviewer

import (
	"strings"
	"testing"
	"time"

	"proof/internal/core"
	"proof/internal/hardware"
	"proof/internal/roofline"
)

func sampleReport(t *testing.T) *core.Report {
	t.Helper()
	r, err := core.Profile(core.Options{Model: "shufflenetv2-1.0", Platform: "a100", Batch: 32})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestWriteText(t *testing.T) {
	r := sampleReport(t)
	var sb strings.Builder
	WriteText(&sb, r, 10)
	out := sb.String()
	for _, want := range []string{"PRoof report", "shufflenetv2-1.0", "a100",
		"roofline", "end-to-end", "Latency share by category", "Top 10 layers"} {
		if !strings.Contains(out, want) {
			t.Errorf("text report missing %q", want)
		}
	}
	if strings.Contains(out, "NaN") || strings.Contains(out, "Inf") {
		t.Error("text report contains NaN/Inf")
	}
}

func TestRooflineSVGWellFormed(t *testing.T) {
	r := sampleReport(t)
	points := make([]roofline.Point, 0, len(r.Layers))
	for _, l := range r.Layers {
		points = append(points, l.Point)
	}
	svg := RooflineSVG(r.Roofline, points, ChartOptions{Title: "test chart"})
	if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(strings.TrimSpace(svg), "</svg>") {
		t.Error("SVG not well formed")
	}
	if strings.Count(svg, "<circle") < len(points)/2 {
		t.Errorf("expected at least %d circles", len(points)/2)
	}
	if !strings.Contains(svg, "Arithmetic intensity") {
		t.Error("missing axis label")
	}
	if !strings.Contains(svg, "test chart") {
		t.Error("missing title")
	}
	if strings.Contains(svg, "NaN") {
		t.Error("SVG contains NaN coordinates")
	}
}

func TestRooflineSVGExtraBWLines(t *testing.T) {
	plat, _ := hardware.Get("orin-nx")
	m := roofline.NewModel(plat, 2 /* Float16 */, hardware.Clocks{})
	svg := RooflineSVG(m, nil, ChartOptions{
		ExtraBWLines: []roofline.BWLine{
			{Label: "EMC 2133 MHz", BW: 62e9},
			{Label: "EMC 665 MHz", BW: 15.2e9},
		},
	})
	if !strings.Contains(svg, "EMC 2133 MHz") || !strings.Contains(svg, "EMC 665 MHz") {
		t.Error("extra bandwidth lines missing")
	}
}

func TestLatencyHistogramSVG(t *testing.T) {
	r := sampleReport(t)
	points := make([]roofline.Point, 0, len(r.Layers))
	for _, l := range r.Layers {
		points = append(points, l.Point)
	}
	for _, axis := range []string{"ai", "flops"} {
		svg := LatencyHistogramSVG(points, axis, "hist "+axis, 0, 0)
		if !strings.Contains(svg, "<rect") {
			t.Errorf("%s histogram has no bars", axis)
		}
		if strings.Contains(svg, "NaN") {
			t.Errorf("%s histogram contains NaN", axis)
		}
	}
	// Empty input must not panic.
	if svg := LatencyHistogramSVG(nil, "ai", "empty", 0, 0); !strings.Contains(svg, "<svg") {
		t.Error("empty histogram must still render")
	}
}

func TestReportHTML(t *testing.T) {
	r := sampleReport(t)
	html := ReportHTML(r)
	for _, want := range []string{"<!DOCTYPE html>", "PRoof report", "<svg", "Backend layers", "</html>"} {
		if !strings.Contains(html, want) {
			t.Errorf("HTML missing %q", want)
		}
	}
	// Layer names with special characters must be escaped.
	if strings.Contains(html, "{ForeignNode[") && !strings.Contains(html, "&quot;") {
		// ForeignNode names contain no quotes; just assert no raw
		// unescaped angle-bracket layer injection markers.
		_ = html
	}
}

func TestSIFormat(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{312e12, "312T"},
		{1.5e9, "1.5G"},
		{2e6, "2M"},
		{1555e9, "1.6T"},
		{500, "500"},
		{0.25, "0.25"},
	}
	for _, c := range cases {
		if got := siFormat(c.v); got != c.want {
			t.Errorf("siFormat(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestFormatDuration(t *testing.T) {
	if got := formatDuration(1500 * time.Microsecond); got != "1.500ms" {
		t.Errorf("formatDuration = %q", got)
	}
	if got := formatDuration(2 * time.Second); got != "2.000s" {
		t.Errorf("formatDuration = %q", got)
	}
	if got := formatDuration(42 * time.Microsecond); got != "42.0µs" {
		t.Errorf("formatDuration = %q", got)
	}
}

func TestEscape(t *testing.T) {
	if got := escape(`a<b>&"c"`); got != "a&lt;b&gt;&amp;&quot;c&quot;" {
		t.Errorf("escape = %q", got)
	}
}
