package dataviewer

import (
	"fmt"
	"math"
	"sort"

	"proof/internal/roofline"
)

// categoryColors maps layer categories to chart colors, mirroring the
// paper's figures: depth-wise conv orange/blue, point-wise conv and
// MatMul green, transposes blue, copies green, other convs red.
var categoryColors = map[string]string{
	"conv":        "#d62728",
	"pwconv":      "#d62728",
	"dwconv":      "#ff7f0e",
	"matmul":      "#2ca02c",
	"transpose":   "#1f77b4",
	"copy":        "#2ca02c",
	"datamove":    "#1f77b4",
	"elementwise": "#9467bd",
	"norm":        "#9467bd",
	"softmax":     "#8c564b",
	"reduction":   "#9467bd",
	"embedding":   "#e377c2",
	"meta":        "#7f7f7f",
}

func colorFor(category string) string {
	if c, ok := categoryColors[category]; ok {
		return c
	}
	return "#555555"
}

// ChartOptions configures a roofline chart rendering.
type ChartOptions struct {
	// Title is drawn at the top.
	Title string
	// Width/Height are the SVG dimensions (0 = defaults).
	Width, Height int
	// ShowLabels draws point names next to points (end-to-end charts
	// with few points).
	ShowLabels bool
	// ExtraBWLines adds additional bandwidth ceilings (Figure 8).
	ExtraBWLines []roofline.BWLine
}

// RooflineSVG renders a log-log roofline chart with the ceiling, the
// given points, and optional extra bandwidth lines.
func RooflineSVG(m roofline.Model, points []roofline.Point, opts ChartOptions) string {
	w, h := opts.Width, opts.Height
	if w == 0 {
		w = 720
	}
	if h == 0 {
		h = 480
	}
	const margin = 60
	s := newSVG(w, h)

	// Data ranges padded around points and ridge.
	minAI, maxAI := 0.1, m.RidgeAI()*10
	minF, maxF := m.PeakFLOPS/1e5, m.PeakFLOPS*2
	for _, p := range points {
		if p.AI > 0 {
			minAI = math.Min(minAI, p.AI/2)
			maxAI = math.Max(maxAI, p.AI*2)
		}
		if p.FLOPS > 0 {
			minF = math.Min(minF, p.FLOPS/2)
			maxF = math.Max(maxF, p.FLOPS*2)
		}
	}
	xs := logScale{min: minAI, max: maxAI, lo: margin, hi: float64(w - 20)}
	ys := logScale{min: minF, max: maxF, lo: float64(h - margin), hi: 30}

	// Grid and axes.
	for _, d := range xs.decades() {
		x := xs.pos(d)
		s.line(x, ys.lo, x, ys.hi, "#eeeeee", 1, "")
		s.text(x, ys.lo+16, 10, "middle", "#333", siFormat(d))
	}
	for _, d := range ys.decades() {
		y := ys.pos(d)
		s.line(xs.lo, y, xs.hi, y, "#eeeeee", 1, "")
		s.text(xs.lo-4, y+3, 10, "end", "#333", siFormat(d))
	}
	s.line(xs.lo, ys.lo, xs.hi, ys.lo, "#333", 1.5, "")
	s.line(xs.lo, ys.lo, xs.lo, ys.hi, "#333", 1.5, "")
	s.text(float64(w)/2, float64(h)-10, 12, "middle", "#000", "Arithmetic intensity (FLOP/byte)")
	s.text(14, 16, 12, "start", "#000", "Attained FLOP/s")

	// Roofline ceiling: bandwidth slope up to the ridge, then flat.
	drawCeiling := func(bw float64, color string, dash string, label string) {
		ridge := m.PeakFLOPS / bw
		x0, x1 := minAI, ridge
		// Slope segment: piecewise in pixel space (log-log straight).
		s.line(xs.pos(x0), ys.pos(x0*bw), xs.pos(x1), ys.pos(x1*bw), color, 2, dash)
		if label != "" {
			s.text(xs.pos(x0)+4, ys.pos(x0*bw)-6, 10, "start", color, label)
		}
	}
	drawCeiling(m.PeakBW, "#000000", "", fmt.Sprintf("%s/s", siFormat(m.PeakBW)+"B"))
	s.line(xs.pos(m.RidgeAI()), ys.pos(m.PeakFLOPS), xs.pos(maxAI), ys.pos(m.PeakFLOPS), "#000000", 2, "")
	s.text(xs.pos(maxAI)-4, ys.pos(m.PeakFLOPS)-6, 10, "end",
		"#000", fmt.Sprintf("peak %sFLOP/s", siFormat(m.PeakFLOPS)))

	lines := append(append([]roofline.BWLine(nil), m.ExtraBWLines...), opts.ExtraBWLines...)
	extraColors := []string{"#e6b800", "#cc0000", "#8800cc"}
	for i, l := range lines {
		drawCeiling(l.BW, extraColors[i%len(extraColors)], "6,4", l.Label)
	}

	// Points: radius fixed, opacity from latency share.
	for _, p := range points {
		if p.AI <= 0 || p.FLOPS <= 0 {
			continue
		}
		op := 0.25 + 0.75*math.Min(1, p.Share*8)
		if p.Share == 0 {
			op = 0.9
		}
		title := fmt.Sprintf("%s\nAI=%.2f FLOP/s=%s share=%.1f%%", p.Name, p.AI, siFormat(p.FLOPS), p.Share*100)
		s.circle(xs.pos(p.AI), ys.pos(p.FLOPS), 5, colorFor(p.Category), op, title)
		if opts.ShowLabels {
			s.text(xs.pos(p.AI)+7, ys.pos(p.FLOPS)+3, 9, "start", "#333", p.Name)
		}
	}

	if opts.Title != "" {
		s.text(float64(w)/2, 18, 14, "middle", "#000", opts.Title)
	}
	drawLegend(s, points, float64(w-150), 40)
	return s.String()
}

func drawLegend(s *svgBuilder, points []roofline.Point, x, y float64) {
	seen := map[string]bool{}
	var cats []string
	for _, p := range points {
		if p.Category != "" && !seen[p.Category] {
			seen[p.Category] = true
			cats = append(cats, p.Category)
		}
	}
	sort.Strings(cats)
	for i, c := range cats {
		cy := y + float64(i)*16
		s.circle(x, cy, 5, colorFor(c), 0.9, "")
		s.text(x+10, cy+4, 10, "start", "#333", c)
	}
}

// LatencyHistogramSVG renders the latency distribution of layers along
// one roofline axis (the side bar charts of Figure 6). axis is "ai" or
// "flops".
func LatencyHistogramSVG(points []roofline.Point, axis, title string, width, height int) string {
	if width == 0 {
		width = 720
	}
	if height == 0 {
		height = 180
	}
	const margin = 60
	const bins = 24

	value := func(p roofline.Point) float64 {
		if axis == "flops" {
			return p.FLOPS
		}
		return p.AI
	}
	minV, maxV := math.Inf(1), math.Inf(-1)
	for _, p := range points {
		v := value(p)
		if v > 0 {
			minV = math.Min(minV, v)
			maxV = math.Max(maxV, v)
		}
	}
	if math.IsInf(minV, 1) {
		minV, maxV = 0.1, 10
	}
	if minV == maxV {
		maxV = minV * 10
	}

	// Accumulate latency per log bin, stacked by category.
	type stack map[string]float64
	hist := make([]stack, bins)
	for i := range hist {
		hist[i] = stack{}
	}
	logMin, logMax := math.Log10(minV), math.Log10(maxV)
	var maxBin float64
	for _, p := range points {
		v := value(p)
		if v <= 0 {
			continue
		}
		b := int((math.Log10(v) - logMin) / (logMax - logMin) * float64(bins-1))
		if b < 0 {
			b = 0
		}
		if b >= bins {
			b = bins - 1
		}
		hist[b][p.Category] += p.Latency.Seconds()
	}
	for _, st := range hist {
		var sum float64
		for _, v := range st {
			sum += v
		}
		maxBin = math.Max(maxBin, sum)
	}

	s := newSVG(width, height)
	xs := logScale{min: minV, max: maxV, lo: margin, hi: float64(width - 20)}
	baseY := float64(height - 30)
	plotH := baseY - 24
	binW := (xs.hi - xs.lo) / bins
	for i, st := range hist {
		x := xs.lo + float64(i)*binW
		y := baseY
		cats := make([]string, 0, len(st))
		for c := range st {
			cats = append(cats, c)
		}
		sort.Strings(cats)
		for _, c := range cats {
			h := 0.0
			if maxBin > 0 {
				h = st[c] / maxBin * plotH
			}
			y -= h
			s.rect(x+1, y, binW-2, h, colorFor(c), 0.85)
		}
	}
	for _, d := range xs.decades() {
		x := xs.pos(d)
		s.line(x, baseY, x, baseY+4, "#333", 1, "")
		s.text(x, baseY+16, 10, "middle", "#333", siFormat(d))
	}
	s.line(xs.lo, baseY, xs.hi, baseY, "#333", 1.5, "")
	s.text(float64(width)/2, 14, 12, "middle", "#000", title)
	return s.String()
}
