package dataviewer

import (
	"fmt"
	"io"
	"strings"

	"proof/internal/core"
)

// WriteFullStackTrace renders the Figure 3 hierarchy for every backend
// layer: the conceptual model-design layers on top, the runtime's
// backend layer in the middle (with its latency and roofline numbers),
// and the lowered kernels at the bottom. The mapping is bidirectional:
// reading upward attributes a kernel's time to a model layer; reading
// downward shows how a model layer was compiled.
func WriteFullStackTrace(w io.Writer, r *core.Report, maxLayers int) {
	fmt.Fprintf(w, "Full-stack trace: %s on %s (%s)\n", r.Model, r.Platform, r.Backend)
	fmt.Fprintf(w, "model design layer(s)  ->  backend layer  ->  kernels\n")
	fmt.Fprintln(w, strings.Repeat("-", 72))
	count := 0
	for _, l := range r.Layers {
		if maxLayers > 0 && count >= maxLayers {
			fmt.Fprintf(w, "... (%d more backend layers)\n", len(r.Layers)-count)
			return
		}
		count++
		if l.IsReformat {
			fmt.Fprintf(w, "(runtime-inserted)\n")
		} else {
			fmt.Fprintf(w, "%s\n", strings.Join(l.OriginalNodes, ", "))
		}
		fmt.Fprintf(w, "  └─ %s   [%s, %s, share %.1f%%]\n",
			l.Name, formatDuration(l.Point.Latency), l.Category, l.Point.Share*100)
		for _, k := range l.Kernels {
			fmt.Fprintf(w, "      └─ %s   [%s]\n", k.Name, formatDuration(k.Latency))
		}
	}
}

// AttributeKernel resolves a kernel name back to the model-design
// layers responsible for it — the upward direction of the Figure 3
// mapping (what NCU alone cannot do, §4.5).
func AttributeKernel(r *core.Report, kernelName string) (modelLayers []string, backendLayer string, ok bool) {
	for _, l := range r.Layers {
		for _, k := range l.Kernels {
			if k.Name == kernelName {
				return l.OriginalNodes, l.Name, true
			}
		}
	}
	return nil, "", false
}
