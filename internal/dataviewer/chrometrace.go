package dataviewer

import (
	"encoding/json"
	"io"

	"proof/internal/core"
)

// chromeEvent is one entry of the Chrome trace-event format
// (chrome://tracing, Perfetto). Durations are microseconds.
type chromeEvent struct {
	Name  string            `json:"name"`
	Cat   string            `json:"cat"`
	Phase string            `json:"ph"`
	TS    float64           `json:"ts"`
	Dur   float64           `json:"dur"`
	PID   int               `json:"pid"`
	TID   int               `json:"tid"`
	Args  map[string]string `json:"args,omitempty"`
}

// WriteChromeTrace exports the profiled timeline in the Chrome
// trace-event format: backend layers on one track and their kernels on
// a second, so the full-stack hierarchy can be explored in
// chrome://tracing or Perfetto.
func WriteChromeTrace(w io.Writer, r *core.Report) error {
	var events []chromeEvent
	events = append(events, chromeEvent{
		Name: "process_name", Phase: "M", PID: 1,
		Args: map[string]string{"name": r.Model + " on " + r.Platform},
	})
	cursor := 0.0
	for _, l := range r.Layers {
		dur := float64(l.Point.Latency) / 1e3 // ns -> us
		args := map[string]string{
			"category": l.Category,
			"bound":    l.Point.Bound,
		}
		if len(l.OriginalNodes) > 0 && len(l.OriginalNodes) <= 12 {
			args["model_layers"] = joinNodes(l.OriginalNodes)
		}
		events = append(events, chromeEvent{
			Name: l.Name, Cat: "backend_layer", Phase: "X",
			TS: cursor, Dur: dur, PID: 1, TID: 1, Args: args,
		})
		kcursor := cursor
		for _, k := range l.Kernels {
			kdur := float64(k.Latency) / 1e3
			events = append(events, chromeEvent{
				Name: k.Name, Cat: "kernel", Phase: "X",
				TS: kcursor, Dur: kdur, PID: 1, TID: 2,
			})
			kcursor += kdur
		}
		cursor += dur
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{
		"traceEvents":     events,
		"displayTimeUnit": "ms",
	})
}
