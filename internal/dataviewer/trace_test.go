package dataviewer

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"proof/internal/core"
)

func TestWriteFullStackTrace(t *testing.T) {
	r, err := core.Profile(core.Options{Model: "resnet-50", Platform: "a100", Batch: 8})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	WriteFullStackTrace(&sb, r, 5)
	out := sb.String()
	if !strings.Contains(out, "Full-stack trace") {
		t.Error("missing header")
	}
	if !strings.Contains(out, "└─") {
		t.Error("missing hierarchy markers")
	}
	if !strings.Contains(out, "sm80_") {
		t.Error("missing kernel names")
	}
	if !strings.Contains(out, "more backend layers") {
		t.Error("missing truncation note")
	}
	// Unlimited depth covers all layers.
	var full strings.Builder
	WriteFullStackTrace(&full, r, 0)
	if strings.Contains(full.String(), "more backend layers") {
		t.Error("maxLayers=0 should print everything")
	}
}

func TestAttributeKernel(t *testing.T) {
	r, err := core.Profile(core.Options{Model: "resnet-50", Platform: "a100", Batch: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Pick a real kernel and attribute it back.
	var kernel string
	var wantLayer string
	for _, l := range r.Layers {
		if !l.IsReformat && len(l.Kernels) > 0 {
			kernel = l.Kernels[0].Name
			wantLayer = l.Name
			break
		}
	}
	modelLayers, backendLayer, ok := AttributeKernel(r, kernel)
	if !ok {
		t.Fatalf("kernel %q not attributed", kernel)
	}
	if backendLayer != wantLayer || len(modelLayers) == 0 {
		t.Errorf("attributed to %q / %v", backendLayer, modelLayers)
	}
	if _, _, ok := AttributeKernel(r, "no_such_kernel"); ok {
		t.Error("unknown kernel must not attribute")
	}
}

func TestWriteCSV(t *testing.T) {
	r, err := core.Profile(core.Options{Model: "mobilenetv2-1.0", Platform: "a100", Batch: 4})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, r); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(r.Layers)+1 {
		t.Errorf("CSV has %d lines, want %d", len(lines), len(r.Layers)+1)
	}
	if !strings.HasPrefix(lines[0], "layer,category") {
		t.Errorf("header = %q", lines[0])
	}
}

func TestWriteChromeTrace(t *testing.T) {
	r, err := core.Profile(core.Options{Model: "mobilenetv2-1.0", Platform: "a100", Batch: 4})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, r); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name  string  `json:"name"`
			Cat   string  `json:"cat"`
			Phase string  `json:"ph"`
			Dur   float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := jsonUnmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatal(err)
	}
	layers, kernels := 0, 0
	for _, e := range parsed.TraceEvents {
		switch e.Cat {
		case "backend_layer":
			layers++
			if e.Dur <= 0 {
				t.Errorf("layer event %q has no duration", e.Name)
			}
		case "kernel":
			kernels++
		}
	}
	if layers != len(r.Layers) {
		t.Errorf("trace has %d layer events, want %d", layers, len(r.Layers))
	}
	if kernels < layers {
		t.Error("every layer should contribute at least one kernel event")
	}
}

func TestCompareReports(t *testing.T) {
	orig, err := core.Profile(core.Options{Model: "shufflenetv2-1.0", Platform: "a100", Batch: 64})
	if err != nil {
		t.Fatal(err)
	}
	mod, err := core.Profile(core.Options{Model: "shufflenetv2-1.0-mod", Platform: "a100", Batch: 64})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	CompareReports(&sb, "original", orig, "modified", mod)
	out := sb.String()
	for _, want := range []string{"Comparison", "speedup", "latency share by category", "transpose"} {
		if !strings.Contains(out, want) {
			t.Errorf("comparison missing %q", want)
		}
	}
}

// jsonUnmarshal avoids importing encoding/json at the top for one use.
func jsonUnmarshal(data []byte, v any) error { return json.Unmarshal(data, v) }
