package dataviewer

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"proof/internal/core"
	"proof/internal/roofline"
)

// WriteText renders a report as an ASCII summary plus a per-layer table
// (top layers by latency share) — the CLI's default output.
func WriteText(w io.Writer, r *core.Report, topN int) {
	fmt.Fprintf(w, "PRoof report: %s on %s (%s, %s, batch %d, %s mode)\n",
		r.Model, r.Platform, r.Backend, r.DType, r.Batch, r.Mode)
	fmt.Fprintf(w, "  model: %d nodes, %.1fM params\n", r.NodeCount, r.ParamsM)
	fmt.Fprintf(w, "  roofline: peak %sFLOP/s, BW %sB/s, ridge AI %.1f\n",
		siFormat(r.Roofline.PeakFLOPS), siFormat(r.Roofline.PeakBW), r.Roofline.RidgeAI())
	fmt.Fprintf(w, "  latency: %s   throughput: %.0f samples/s\n",
		formatDuration(r.TotalLatency), r.Throughput)
	fmt.Fprintf(w, "  end-to-end: %.3f GFLOP, %.1f MB traffic, AI %.1f, attained %sFLOP/s (%s-bound), BW %sB/s\n",
		float64(r.EndToEnd.FLOP)/1e9, float64(r.EndToEnd.Bytes)/1e6, r.EndToEnd.AI,
		siFormat(r.EndToEnd.FLOPS), r.EndToEnd.Bound, siFormat(r.EndToEnd.Bandwidth))
	if r.ProfilingOverhead > 0 {
		fmt.Fprintf(w, "  counter-profiling overhead: %s\n", formatDuration(r.ProfilingOverhead))
	}
	if r.PowerW > 0 {
		fmt.Fprintf(w, "  estimated power: %.1f W\n", r.PowerW)
	}

	fmt.Fprintf(w, "\nLatency share by category:\n")
	type catShare struct {
		cat   string
		share float64
	}
	byCat := map[string]float64{}
	for _, l := range r.Layers {
		byCat[l.Category] += l.Point.Share
	}
	var cats []catShare
	for c, s := range byCat {
		cats = append(cats, catShare{c, s})
	}
	sort.Slice(cats, func(i, j int) bool { return cats[i].share > cats[j].share })
	for _, c := range cats {
		fmt.Fprintf(w, "  %-12s %5.1f%%  %s\n", c.cat, c.share*100, bar(c.share, 40))
	}

	if topN <= 0 {
		topN = 15
	}
	layers := append([]core.LayerReport(nil), r.Layers...)
	sort.Slice(layers, func(i, j int) bool { return layers[i].Point.Share > layers[j].Point.Share })
	if len(layers) > topN {
		layers = layers[:topN]
	}
	fmt.Fprintf(w, "\nTop %d layers by latency:\n", len(layers))
	fmt.Fprintf(w, "  %-44s %-10s %9s %7s %10s %10s %6s\n",
		"layer", "category", "latency", "share", "FLOP/s", "BW", "AI")
	for _, l := range layers {
		fmt.Fprintf(w, "  %-44.44s %-10s %9s %6.1f%% %10s %9sB %6.1f\n",
			l.Name, l.Category, formatDuration(l.Point.Latency), l.Point.Share*100,
			siFormat(l.Point.FLOPS), siFormat(l.Point.Bandwidth), l.Point.AI)
	}
}

func bar(frac float64, width int) string {
	n := int(frac * float64(width))
	if n > width {
		n = width
	}
	return strings.Repeat("#", n)
}

func formatDuration(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.3fms", float64(d)/1e6)
	}
	return fmt.Sprintf("%.1fµs", float64(d)/1e3)
}

// ReportHTML renders a self-contained HTML page with the layer-wise
// roofline chart, latency histograms and the layer table.
func ReportHTML(r *core.Report) string {
	points := make([]roofline.Point, 0, len(r.Layers))
	for _, l := range r.Layers {
		points = append(points, l.Point)
	}
	chart := RooflineSVG(r.Roofline, points, ChartOptions{
		Title: fmt.Sprintf("%s on %s — layer-wise roofline", r.Model, r.Platform),
	})
	histAI := LatencyHistogramSVG(points, "ai", "Latency distribution vs arithmetic intensity", 720, 170)
	histF := LatencyHistogramSVG(points, "flops", "Latency distribution vs attained FLOP/s", 720, 170)
	e2e := RooflineSVG(r.Roofline, []roofline.Point{r.EndToEnd}, ChartOptions{
		Title: "End-to-end roofline", ShowLabels: true, Height: 320,
	})

	var rows strings.Builder
	for _, l := range r.Layers {
		fmt.Fprintf(&rows, "<tr><td>%s</td><td>%s</td><td>%s</td><td>%.1f%%</td><td>%s</td><td>%sB/s</td><td>%.1f</td><td>%s</td></tr>\n",
			escape(l.Name), escape(l.Category), formatDuration(l.Point.Latency), l.Point.Share*100,
			siFormat(l.Point.FLOPS), siFormat(l.Point.Bandwidth), l.Point.AI, l.Point.Bound)
	}

	return fmt.Sprintf(`<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>PRoof — %s on %s</title>
<style>
body { font-family: sans-serif; margin: 24px; color: #222; }
table { border-collapse: collapse; font-size: 13px; }
td, th { border: 1px solid #ccc; padding: 3px 8px; text-align: left; }
th { background: #f5f5f5; }
.meta { color: #555; }
</style></head>
<body>
<h1>PRoof report: %s on %s</h1>
<p class="meta">backend %s · dtype %s · batch %d · %s mode · latency %s · throughput %.0f samples/s</p>
%s
%s
%s
%s
<h2>Backend layers</h2>
<table><tr><th>layer</th><th>category</th><th>latency</th><th>share</th><th>FLOP/s</th><th>bandwidth</th><th>AI</th><th>bound</th></tr>
%s</table>
</body></html>`,
		escape(r.Model), escape(r.Platform), escape(r.Model), escape(r.Platform),
		escape(r.Backend), escape(r.DType), r.Batch, r.Mode,
		formatDuration(r.TotalLatency), r.Throughput,
		e2e, chart, histAI, histF, rows.String())
}

// MultiModelRooflineSVG renders a Figure-4-style end-to-end roofline
// with one labeled point per model.
func MultiModelRooflineSVG(m roofline.Model, points []roofline.Point, title string) string {
	return RooflineSVG(m, points, ChartOptions{Title: title, ShowLabels: true})
}
