// Package dataviewer renders PRoof profiling results for humans: ASCII
// tables, standalone SVG roofline charts (log-log, with ceilings,
// category-colored points whose opacity encodes latency share, and
// optional extra bandwidth lines as in Figure 8), latency-distribution
// bar charts (Figure 6), and a self-contained HTML report.
package dataviewer

import (
	"fmt"
	"math"
	"strings"
)

// svgBuilder accumulates SVG elements.
type svgBuilder struct {
	w, h int
	body strings.Builder
}

func newSVG(w, h int) *svgBuilder {
	return &svgBuilder{w: w, h: h}
}

func (s *svgBuilder) line(x1, y1, x2, y2 float64, stroke string, width float64, dash string) {
	dashAttr := ""
	if dash != "" {
		dashAttr = fmt.Sprintf(` stroke-dasharray="%s"`, dash)
	}
	fmt.Fprintf(&s.body, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="%.1f"%s/>`+"\n",
		x1, y1, x2, y2, stroke, width, dashAttr)
}

func (s *svgBuilder) circle(cx, cy, r float64, fill string, opacity float64, title string) {
	fmt.Fprintf(&s.body, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="%s" fill-opacity="%.2f">`,
		cx, cy, r, fill, opacity)
	if title != "" {
		fmt.Fprintf(&s.body, "<title>%s</title>", escape(title))
	}
	s.body.WriteString("</circle>\n")
}

func (s *svgBuilder) rect(x, y, w, h float64, fill string, opacity float64) {
	fmt.Fprintf(&s.body, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s" fill-opacity="%.2f"/>`+"\n",
		x, y, w, h, fill, opacity)
}

func (s *svgBuilder) text(x, y float64, size int, anchor, fill, content string) {
	fmt.Fprintf(&s.body, `<text x="%.1f" y="%.1f" font-size="%d" text-anchor="%s" fill="%s" font-family="sans-serif">%s</text>`+"\n",
		x, y, size, anchor, fill, escape(content))
}

func (s *svgBuilder) String() string {
	return fmt.Sprintf(`<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">
<rect width="%d" height="%d" fill="white"/>
%s</svg>`, s.w, s.h, s.w, s.h, s.w, s.h, s.body.String())
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// logScale maps a value into pixel space on a log10 axis.
type logScale struct {
	min, max float64 // data range
	lo, hi   float64 // pixel range
}

func (sc logScale) pos(v float64) float64 {
	if v <= 0 {
		v = sc.min
	}
	f := (math.Log10(v) - math.Log10(sc.min)) / (math.Log10(sc.max) - math.Log10(sc.min))
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	return sc.lo + f*(sc.hi-sc.lo)
}

// decades returns the powers of ten covering [min, max].
func (sc logScale) decades() []float64 {
	var out []float64
	for e := math.Floor(math.Log10(sc.min)); e <= math.Ceil(math.Log10(sc.max)); e++ {
		out = append(out, math.Pow(10, e))
	}
	return out
}

// siFormat renders a value with an SI suffix (1.5e12 -> "1.5T").
func siFormat(v float64) string {
	abs := math.Abs(v)
	switch {
	case abs >= 1e12:
		return trimZero(fmt.Sprintf("%.1fT", v/1e12))
	case abs >= 1e9:
		return trimZero(fmt.Sprintf("%.1fG", v/1e9))
	case abs >= 1e6:
		return trimZero(fmt.Sprintf("%.1fM", v/1e6))
	case abs >= 1e3:
		return trimZero(fmt.Sprintf("%.1fk", v/1e3))
	case abs >= 1:
		return trimZero(fmt.Sprintf("%.1f", v))
	}
	return fmt.Sprintf("%.2g", v)
}

func trimZero(s string) string {
	return strings.Replace(s, ".0", "", 1)
}
