package roofline

import (
	"context"
	"fmt"

	"proof/internal/analysis"
	"proof/internal/backend"
	"proof/internal/graph"
	"proof/internal/hardware"
	"proof/internal/models"
	"proof/internal/obs"
)

// PeakResult is the achieved roofline peak measured by running the
// assembled pseudo model (§4.6, Table 6) on a backend.
type PeakResult struct {
	// FLOPS is the best attained FLOP/s over the MatMul operators.
	FLOPS float64
	// BW is the best attained bandwidth over the copy operators.
	BW float64
}

// MeasurePeak runs the peak-test pseudo model (a series of MatMul and
// memory-copy operators of different sizes) through the platform's
// runtime at the given clocks and data type, and returns the best
// attained compute rate and bandwidth — the *achieved* roofline, as
// opposed to the datasheet peak.
func MeasurePeak(ctx context.Context, plat *hardware.Platform, dt graph.DataType, clk hardware.Clocks, seed uint64) (res PeakResult, err error) {
	ctx, sp := obs.Start(ctx, "peak_test")
	sp.SetAttr("platform", plat.Key)
	sp.SetAttr("dtype", dt.String())
	defer func() { sp.EndErr(err) }()
	g, err := models.Build("peak-test")
	if err != nil {
		return PeakResult{}, err
	}
	g.ConvertFloatTensors(dt)
	rep, err := analysis.NewRep(g)
	if err != nil {
		return PeakResult{}, err
	}
	be, err := backend.Get(plat.Runtime)
	if err != nil {
		return PeakResult{}, err
	}
	eng, err := be.Build(ctx, rep, backend.Config{Platform: plat, DType: dt, Batch: 1, Clocks: clk})
	if err != nil {
		return PeakResult{}, err
	}

	// Rates come from the hardware counters (ActualHWFLOP,
	// ActualBytes), as an NCU-style measurement would report them —
	// not from the analytical per-layer totals. The counters are what
	// the hardware actually executed and measured, so counter/latency
	// is bias-free; model-total/latency would inherit the counters'
	// content-dependent deviation as a systematic rate error.
	works := eng.Works()
	timings := eng.Timings(seed)
	for i, w := range works {
		t := timings[i]
		sec := t.Latency.Seconds()
		if sec <= 0 {
			continue
		}
		if w.ModelFLOP > 0 {
			if f := float64(t.ActualHWFLOP) / sec; f > res.FLOPS {
				res.FLOPS = f
			}
		} else if w.Bytes > 0 {
			if b := float64(t.ActualBytes) / sec; b > res.BW {
				res.BW = b
			}
		}
	}
	if res.FLOPS == 0 || res.BW == 0 {
		return res, fmt.Errorf("roofline: peak test produced no usable operators")
	}
	return res, nil
}

// MeasuredModel builds a roofline Model whose ceilings come from the
// achieved peak test rather than the platform constants.
func MeasuredModel(ctx context.Context, plat *hardware.Platform, dt graph.DataType, clk hardware.Clocks, seed uint64) (Model, error) {
	peak, err := MeasurePeak(ctx, plat, dt, clk, seed)
	if err != nil {
		return Model{}, err
	}
	return Model{
		Platform:         plat.Key,
		DType:            dt.String(),
		PeakFLOPS:        peak.FLOPS,
		PeakBW:           peak.BW,
		TheoreticalFLOPS: plat.PeakAt(dt, clk.GPUMHz),
		TheoreticalBW:    plat.BWAt(clk.EMCMHz),
	}, nil
}
