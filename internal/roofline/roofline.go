// Package roofline implements the roofline model [Williams et al. 2009]
// as PRoof applies it to DNN inference: ceiling construction per
// platform/data-type/clock, end-to-end and layer-wise analysis points
// (arithmetic intensity vs attained FLOP/s), bound classification, and
// the achieved-peak measurement of §4.6 that runs the assembled pseudo
// model of MatMul and memory-copy operators through a backend.
package roofline

import (
	"encoding/json"
	"fmt"
	"math"
	"time"

	"proof/internal/graph"
	"proof/internal/hardware"
)

// Model is the set of roofline ceilings for one platform configuration.
type Model struct {
	// Platform and DType identify the configuration.
	Platform string `json:"platform"`
	DType    string `json:"dtype"`
	// PeakFLOPS is the achievable compute ceiling (FLOP/s).
	PeakFLOPS float64 `json:"peak_flops"`
	// PeakBW is the achievable memory bandwidth ceiling (B/s).
	PeakBW float64 `json:"peak_bw"`
	// TheoreticalFLOPS / TheoreticalBW are the datasheet values.
	TheoreticalFLOPS float64 `json:"theoretical_flops"`
	TheoreticalBW    float64 `json:"theoretical_bw"`
	// ExtraBWLines optionally adds bandwidth ceilings for alternative
	// memory clocks (the yellow/red lines of Figure 8).
	ExtraBWLines []BWLine `json:"extra_bw_lines,omitempty"`
}

// BWLine is an additional bandwidth ceiling annotation.
type BWLine struct {
	// Label describes the line (e.g. "EMC 2133 MHz").
	Label string `json:"label"`
	// BW is the bandwidth in B/s.
	BW float64 `json:"bw"`
}

// NewModel builds the roofline ceilings for a platform, data type and
// clock configuration (zero clocks = platform maximum). The ceilings
// come from the platform's achievable-ceiling derivation — measured
// calibration when `proof characterize` has produced one, hand-tuned
// factors otherwise — and the bandwidth roof is capped by the
// GPU-clock-bound issue limit, matching what the simulated hardware
// can actually attain at down-clocked configurations (Table 6 #1 vs
// #3).
func NewModel(plat *hardware.Platform, dt graph.DataType, clk hardware.Clocks) Model {
	return Model{
		Platform:         plat.Key,
		DType:            dt.String(),
		PeakFLOPS:        plat.ComputeCeiling(dt, clk),
		PeakBW:           plat.BWCeiling(clk),
		TheoreticalFLOPS: plat.PeakAt(dt, clk.GPUMHz),
		TheoreticalBW:    plat.BWAt(clk.EMCMHz),
	}
}

// RidgeAI is the arithmetic intensity where the two ceilings meet.
//
//lint:hotpath
func (m Model) RidgeAI() float64 {
	if m.PeakBW == 0 {
		return math.Inf(1)
	}
	return m.PeakFLOPS / m.PeakBW
}

// AttainableFLOPS returns the roofline ceiling at a given arithmetic
// intensity: min(peak, AI x BW). An infinite intensity sits under the
// flat compute roof (guarding the Inf x 0 = NaN case when PeakBW is
// also degenerate).
//
//lint:hotpath
func (m Model) AttainableFLOPS(ai float64) float64 {
	if math.IsInf(ai, 1) {
		return m.PeakFLOPS
	}
	return math.Min(m.PeakFLOPS, ai*m.PeakBW)
}

// Point is one entity on a roofline chart: a whole model (end-to-end
// analysis, Figure 4) or one backend layer (layer-wise analysis,
// Figures 5, 6, 8).
type Point struct {
	// Name identifies the model or backend layer.
	Name string `json:"name"`
	// AI is the arithmetic intensity in FLOP/byte.
	AI float64 `json:"ai"`
	// FLOPS is the attained FLOP/s.
	FLOPS float64 `json:"flops"`
	// Bandwidth is the attained DRAM bandwidth in B/s.
	Bandwidth float64 `json:"bandwidth"`
	// Latency is the measured latency.
	Latency time.Duration `json:"latency_ns"`
	// Share is the latency share within the model (the opacity of
	// Figure 5's points).
	Share float64 `json:"share"`
	// FLOP and Bytes are the totals behind the rates.
	FLOP  int64 `json:"flop"`
	Bytes int64 `json:"bytes"`
	// Category tags the point for chart coloring ("dwconv", "pwconv",
	// "matmul", "transpose", "copy", ...).
	Category string `json:"category,omitempty"`
	// Bound is the classification against the ceilings: "memory",
	// "compute" or "ridge".
	Bound string `json:"bound"`
}

// MarshalJSON renders the point with a nullable AI: a zero-byte point
// carries AI = +Inf, which encoding/json cannot represent — without
// this, one such layer would turn a whole valid report into an
// encoding error at the service edge. Finite AIs encode as plain
// numbers, byte-identical to the default encoding.
func (p Point) MarshalJSON() ([]byte, error) {
	// Mirrors Point field-for-field (same order, same tags) so finite
	// points keep their exact wire form; keep in sync with the struct.
	wire := struct {
		Name      string        `json:"name"`
		AI        *float64      `json:"ai"`
		FLOPS     float64       `json:"flops"`
		Bandwidth float64       `json:"bandwidth"`
		Latency   time.Duration `json:"latency_ns"`
		Share     float64       `json:"share"`
		FLOP      int64         `json:"flop"`
		Bytes     int64         `json:"bytes"`
		Category  string        `json:"category,omitempty"`
		Bound     string        `json:"bound"`
	}{p.Name, nil, p.FLOPS, p.Bandwidth, p.Latency, p.Share, p.FLOP, p.Bytes, p.Category, p.Bound}
	if !math.IsInf(p.AI, 0) && !math.IsNaN(p.AI) {
		wire.AI = &p.AI
	}
	return json.Marshal(wire)
}

// NewPoint derives a roofline point from raw measurements. A point
// with memory traffic but no arithmetic (flop == 0, bytes > 0) has
// AI 0 and classifies memory-bound; a point with arithmetic but zero
// traffic (flop > 0, bytes == 0) has infinite intensity and classifies
// compute-bound — the bandwidth ceiling can never bind it. A point
// with neither stays at the neutral "ridge" label: there is no work to
// position against either ceiling.
//
//lint:hotpath
func NewPoint(name string, flop, bytes int64, latency time.Duration, m Model) Point {
	p := Point{Name: name, FLOP: flop, Bytes: bytes, Latency: latency}
	sec := latency.Seconds()
	if sec > 0 {
		p.FLOPS = float64(flop) / sec
		p.Bandwidth = float64(bytes) / sec
	}
	switch {
	case bytes > 0:
		p.AI = float64(flop) / float64(bytes)
	case flop > 0:
		p.AI = math.Inf(1)
	default:
		p.Bound = "ridge"
		return p
	}
	p.Bound = m.ClassifyBound(p.AI)
	return p
}

// ClassifyBound reports whether an arithmetic intensity is left of the
// ridge (memory-bound), right of it (compute-bound) or at it (within
// ±5%). Degenerate ceilings classify against the one ceiling that
// exists: with no compute roof every finite-intensity point is
// positioned against the bandwidth line ("memory"), with no bandwidth
// line everything is under the compute roof ("compute"), and with
// neither there is nothing to classify against ("ridge"). An infinite
// intensity (zero memory traffic) is always compute-bound.
//
//lint:hotpath
func (m Model) ClassifyBound(ai float64) string {
	switch {
	case m.PeakFLOPS == 0 && m.PeakBW == 0:
		return "ridge"
	case m.PeakFLOPS == 0:
		return "memory"
	case m.PeakBW == 0:
		return "compute"
	case math.IsInf(ai, 1):
		return "compute"
	}
	ridge := m.RidgeAI()
	switch {
	case ai < ridge*0.95:
		return "memory"
	case ai > ridge*1.05:
		return "compute"
	}
	return "ridge"
}

// Efficiency returns the point's attained fraction of the roofline
// ceiling at its arithmetic intensity.
//
//lint:hotpath
func (m Model) Efficiency(p Point) float64 {
	ceiling := m.AttainableFLOPS(p.AI)
	if ceiling == 0 {
		return 0
	}
	return p.FLOPS / ceiling
}

// LayerWise is a layer-granularity roofline analysis.
type LayerWise struct {
	// Model is the ceiling set.
	Model Model `json:"model"`
	// Points are the per-layer points in execution order.
	Points []Point `json:"points"`
}

// TotalLatency sums the layer latencies.
//
//lint:hotpath
func (lw *LayerWise) TotalLatency() time.Duration {
	var total time.Duration
	for _, p := range lw.Points {
		total += p.Latency
	}
	return total
}

// FillShares computes each point's latency share of the total.
//
//lint:hotpath
func (lw *LayerWise) FillShares() {
	total := lw.TotalLatency().Seconds()
	if total == 0 {
		return
	}
	for i := range lw.Points {
		lw.Points[i].Share = lw.Points[i].Latency.Seconds() / total
	}
}

// ShareByCategory aggregates latency share per category — the basis of
// statements like "transpose and data-copy layers take the most time"
// (§4.5) or "depth-wise and point-wise convolution take about 70% of
// the latency" (§4.6).
func (lw *LayerWise) ShareByCategory() map[string]float64 {
	total := lw.TotalLatency().Seconds()
	out := map[string]float64{}
	if total == 0 {
		return out
	}
	for _, p := range lw.Points {
		out[p.Category] += p.Latency.Seconds() / total
	}
	return out
}

// EndToEnd aggregates layers into a single whole-model point (Figure 4).
//
//lint:hotpath
func (lw *LayerWise) EndToEnd(name string) Point {
	var flop, bytes int64
	for _, p := range lw.Points {
		flop += p.FLOP
		bytes += p.Bytes
	}
	return NewPoint(name, flop, bytes, lw.TotalLatency(), lw.Model)
}

func (m Model) String() string {
	return fmt.Sprintf("roofline{%s/%s: %.2f TFLOP/s, %.1f GB/s, ridge %.1f}",
		m.Platform, m.DType, m.PeakFLOPS/1e12, m.PeakBW/1e9, m.RidgeAI())
}
