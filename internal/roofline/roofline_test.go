package roofline

import (
	"context"
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"

	_ "proof/internal/backend/ortsim"
	_ "proof/internal/backend/ovsim"
	_ "proof/internal/backend/trtsim"
	"proof/internal/graph"
	"proof/internal/hardware"
)

func a100Model(t *testing.T) Model {
	t.Helper()
	plat, err := hardware.Get("a100")
	if err != nil {
		t.Fatal(err)
	}
	return NewModel(plat, graph.Float16, hardware.Clocks{})
}

func TestModelCeilings(t *testing.T) {
	m := a100Model(t)
	if m.PeakFLOPS >= m.TheoreticalFLOPS {
		t.Error("achievable peak must be below theoretical")
	}
	if m.PeakBW >= m.TheoreticalBW {
		t.Error("achievable BW must be below theoretical")
	}
	ridge := m.RidgeAI()
	if ridge < 100 || ridge > 300 {
		t.Errorf("A100 fp16 ridge = %.1f, expected ~200", ridge)
	}
	// Below the ridge the ceiling is BW-limited, above it flat.
	if got := m.AttainableFLOPS(ridge / 10); math.Abs(got-(ridge/10)*m.PeakBW) > 1 {
		t.Error("below-ridge ceiling should be AI*BW")
	}
	if got := m.AttainableFLOPS(ridge * 10); got != m.PeakFLOPS {
		t.Error("above-ridge ceiling should be peak FLOP/s")
	}
}

func TestClassifyBound(t *testing.T) {
	m := a100Model(t)
	ridge := m.RidgeAI()
	if m.ClassifyBound(ridge/2) != "memory" {
		t.Error("half-ridge should be memory-bound")
	}
	if m.ClassifyBound(ridge*2) != "compute" {
		t.Error("double-ridge should be compute-bound")
	}
	if m.ClassifyBound(ridge) != "ridge" {
		t.Error("ridge should classify as ridge")
	}
}

func TestNewPoint(t *testing.T) {
	m := a100Model(t)
	p := NewPoint("layer", 2e9, 1e8, 10*time.Millisecond, m)
	if math.Abs(p.AI-20) > 1e-9 {
		t.Errorf("AI = %v", p.AI)
	}
	if math.Abs(p.FLOPS-2e11) > 1e6 {
		t.Errorf("FLOPS = %v", p.FLOPS)
	}
	if math.Abs(p.Bandwidth-1e10) > 1e5 {
		t.Errorf("BW = %v", p.Bandwidth)
	}
	if p.Bound != "memory" {
		t.Errorf("bound = %s (AI 20 is far below A100 ridge)", p.Bound)
	}
	if eff := m.Efficiency(p); eff <= 0 || eff > 1.5 {
		t.Errorf("efficiency = %v", eff)
	}
	// Zero latency must not divide by zero.
	z := NewPoint("z", 1, 1, 0, m)
	if z.FLOPS != 0 {
		t.Error("zero-latency point should have zero rate")
	}
}

// TestPointEdgeQuadrants covers the four (flop, bytes) zero/non-zero
// quadrants of NewPoint. Pre-fix, a zero-byte point got AI = 0 and
// was classified "memory"-bound despite having zero memory traffic.
func TestPointEdgeQuadrants(t *testing.T) {
	m := a100Model(t)
	ridge := m.RidgeAI()
	tests := []struct {
		name      string
		flop      int64
		bytes     int64
		wantAI    float64
		wantBound string
	}{
		{"both positive", int64(ridge) * 1e8, 1e8, ridge, "ridge"},
		{"zero bytes", 2e9, 0, math.Inf(1), "compute"},
		{"zero flop", 0, 1e8, 0, "memory"},
		{"zero work", 0, 0, 0, "ridge"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := NewPoint(tt.name, tt.flop, tt.bytes, time.Millisecond, m)
			if math.IsInf(tt.wantAI, 1) {
				if !math.IsInf(p.AI, 1) {
					t.Errorf("AI = %v, want +Inf", p.AI)
				}
			} else if math.Abs(p.AI-tt.wantAI) > tt.wantAI*0.01+1e-12 {
				t.Errorf("AI = %v, want ~%v", p.AI, tt.wantAI)
			}
			if p.Bound != tt.wantBound {
				t.Errorf("Bound = %q, want %q", p.Bound, tt.wantBound)
			}
		})
	}
}

// TestClassifyBoundDegenerateCeilings covers ceilings of zero.
// Pre-fix, PeakFLOPS == 0 made RidgeAI() == 0 so any positive
// intensity reported "compute" against a nonexistent compute roof,
// and PeakBW == 0 sent every finite point to "memory".
func TestClassifyBoundDegenerateCeilings(t *testing.T) {
	tests := []struct {
		name  string
		model Model
		ai    float64
		want  string
	}{
		{"no compute roof", Model{PeakBW: 1e9}, 50, "memory"},
		{"no compute roof, infinite ai", Model{PeakBW: 1e9}, math.Inf(1), "memory"},
		{"no bandwidth line", Model{PeakFLOPS: 1e12}, 50, "compute"},
		{"no ceilings at all", Model{}, 50, "ridge"},
		{"real ceilings, infinite ai", Model{PeakFLOPS: 1e12, PeakBW: 1e9}, math.Inf(1), "compute"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.model.ClassifyBound(tt.ai); got != tt.want {
				t.Errorf("ClassifyBound(%v) = %q, want %q", tt.ai, got, tt.want)
			}
		})
	}
	// The attainable ceiling under an infinite intensity is the flat
	// compute roof, never NaN.
	m := Model{PeakFLOPS: 1e12}
	if got := m.AttainableFLOPS(math.Inf(1)); got != 1e12 || math.IsNaN(got) {
		t.Errorf("AttainableFLOPS(+Inf) = %v, want PeakFLOPS", got)
	}
}

// TestPointJSONInfiniteAI asserts a zero-byte point survives JSON
// encoding (encoding/json rejects +Inf; the marshaller nulls it) and
// finite points keep the default wire form.
func TestPointJSONInfiniteAI(t *testing.T) {
	m := a100Model(t)
	inf := NewPoint("zero-bytes", 2e9, 0, time.Millisecond, m)
	raw, err := json.Marshal(inf)
	if err != nil {
		t.Fatalf("marshal of infinite-AI point failed: %v", err)
	}
	if !strings.Contains(string(raw), `"ai":null`) {
		t.Errorf("infinite AI not nulled: %s", raw)
	}
	if !strings.Contains(string(raw), `"bound":"compute"`) {
		t.Errorf("bound lost in encoding: %s", raw)
	}
	// A finite point must keep the exact default encoding, field
	// order included (golden report fixtures depend on it).
	fin := NewPoint("finite", 2e9, 1e8, time.Millisecond, m)
	got, err := json.Marshal(fin)
	if err != nil {
		t.Fatal(err)
	}
	type plain Point // method-free view = default encoding
	want, err := json.Marshal(plain(fin))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Errorf("finite point wire form drifted:\n got %s\nwant %s", got, want)
	}
}

func TestLayerWiseAggregation(t *testing.T) {
	m := a100Model(t)
	lw := &LayerWise{Model: m}
	lw.Points = append(lw.Points,
		NewPoint("a", 1e9, 1e7, 2*time.Millisecond, m),
		NewPoint("b", 3e9, 3e7, 6*time.Millisecond, m),
	)
	lw.Points[0].Category = "conv"
	lw.Points[1].Category = "matmul"
	lw.FillShares()
	if math.Abs(lw.Points[0].Share-0.25) > 1e-9 || math.Abs(lw.Points[1].Share-0.75) > 1e-9 {
		t.Errorf("shares = %v, %v", lw.Points[0].Share, lw.Points[1].Share)
	}
	if lw.TotalLatency() != 8*time.Millisecond {
		t.Errorf("total = %v", lw.TotalLatency())
	}
	byCat := lw.ShareByCategory()
	if math.Abs(byCat["matmul"]-0.75) > 1e-9 {
		t.Errorf("ShareByCategory = %v", byCat)
	}
	e2e := lw.EndToEnd("model")
	if e2e.FLOP != 4e9 || e2e.Bytes != 4e7 {
		t.Errorf("end-to-end totals = %d FLOP, %d bytes", e2e.FLOP, e2e.Bytes)
	}
	if e2e.Latency != 8*time.Millisecond {
		t.Errorf("end-to-end latency = %v", e2e.Latency)
	}
}

func TestMeasurePeakA100(t *testing.T) {
	plat, _ := hardware.Get("a100")
	res, err := MeasurePeak(context.Background(), plat, graph.Float16, hardware.Clocks{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Achieved peak must approach but not exceed the achievable
	// ceiling (±jitter).
	maxF := plat.PeakAt(graph.Float16, 0) * plat.MaxComputeEff
	if res.FLOPS < 0.5*maxF || res.FLOPS > 1.05*maxF {
		t.Errorf("peak FLOPS = %.2f T (ceiling %.2f T)", res.FLOPS/1e12, maxF/1e12)
	}
	maxB := plat.MemBW * plat.MaxMemEff
	if res.BW < 0.7*maxB || res.BW > 1.05*maxB {
		t.Errorf("peak BW = %.1f GB/s (ceiling %.1f)", res.BW/1e9, maxB/1e9)
	}
}

// TestMeasurePeakOrinMatchesTable6 checks the Table 6 reproduction: the
// achieved roofline peaks at the paper's five clock configurations
// should land near the published values.
func TestMeasurePeakOrinMatchesTable6(t *testing.T) {
	plat, _ := hardware.Get("orin-nx")
	cases := []struct {
		gpu, emc int
		wantTF   float64 // paper TFLOP/s
		wantGBps float64 // paper GB/s
		tolFLOPS float64
		tolBW    float64
	}{
		{918, 3199, 13.620, 87.879, 0.05, 0.05},
		{918, 2133, 13.601, 62.031, 0.05, 0.05},
		{510, 3199, 7.433, 54.002, 0.05, 0.05},
		{510, 2133, 7.426, 53.017, 0.05, 0.05},
		{510, 665, 7.359, 15.177, 0.05, 0.05},
	}
	for _, c := range cases {
		clk := hardware.Clocks{GPUMHz: c.gpu, EMCMHz: c.emc, CPUClusters: 1}
		res, err := MeasurePeak(context.Background(), plat, graph.Float16, clk, 1)
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(res.FLOPS/1e12-c.wantTF) / c.wantTF; rel > c.tolFLOPS {
			t.Errorf("clocks %d/%d: FLOPS %.2f T vs paper %.2f T (err %.0f%%)",
				c.gpu, c.emc, res.FLOPS/1e12, c.wantTF, rel*100)
		}
		if rel := math.Abs(res.BW/1e9-c.wantGBps) / c.wantGBps; rel > c.tolBW {
			t.Errorf("clocks %d/%d: BW %.1f GB/s vs paper %.1f (err %.0f%%)",
				c.gpu, c.emc, res.BW/1e9, c.wantGBps, rel*100)
		}
	}
}

func TestMeasuredModel(t *testing.T) {
	plat, _ := hardware.Get("a100")
	m, err := MeasuredModel(context.Background(), plat, graph.Float16, hardware.Clocks{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.PeakFLOPS <= 0 || m.PeakBW <= 0 {
		t.Error("measured model must have positive ceilings")
	}
	if m.PeakFLOPS > m.TheoreticalFLOPS {
		t.Error("measured peak cannot exceed theoretical")
	}
}

// TestRooflineMathZeroAlloc is the ground truth behind the
// //lint:hotpath annotations: the per-layer roofline math — point
// construction, classification, efficiency and the layer-wise
// aggregates — must not allocate, since a sweep evaluates it for
// every backend layer of every profiled configuration.
func TestRooflineMathZeroAlloc(t *testing.T) {
	m := a100Model(t)
	lw := &LayerWise{Model: m, Points: make([]Point, 0, 8)}
	for i := 0; i < 8; i++ {
		lw.Points = append(lw.Points,
			NewPoint("layer", int64(1e9+i), 1e6, time.Millisecond, m))
	}
	var sink float64
	n := testing.AllocsPerRun(200, func() {
		p := NewPoint("layer", 2e9, 3e6, 2*time.Millisecond, m)
		sink = m.Efficiency(p) + m.AttainableFLOPS(p.AI) + m.RidgeAI()
		if m.ClassifyBound(p.AI) == "" {
			t.Fatal("ClassifyBound returned empty")
		}
		lw.FillShares()
		e2e := lw.EndToEnd("model")
		sink += e2e.FLOPS + lw.TotalLatency().Seconds()
	})
	if n != 0 {
		t.Fatalf("roofline math allocates %v per op, want 0 (sink %v)", n, sink)
	}
}

// Regression: NewModel used to ignore Platform.IssueBWLimit entirely,
// while the simulated hardware caps its attainable bandwidth with it —
// so at reduced GPU clocks the chart's bandwidth roof sat far above
// anything the simulator could reach (Table 6 #1 vs #3: same EMC,
// ~40% less achieved bandwidth at 510 MHz).
func TestNewModelAppliesIssueBWLimit(t *testing.T) {
	plat, _ := hardware.Get("orin-nx")
	full := NewModel(plat, graph.Float16, hardware.Clocks{GPUMHz: 918, EMCMHz: 3199})
	down := NewModel(plat, graph.Float16, hardware.Clocks{GPUMHz: 510, EMCMHz: 3199})
	limit := plat.IssueBWLimit(510)
	if down.PeakBW > limit*1.001 {
		t.Errorf("PeakBW at 510 MHz = %.1f GB/s, must be issue-capped at %.1f GB/s",
			down.PeakBW/1e9, limit/1e9)
	}
	// The cap must actually bind: well below the DRAM-side ceiling.
	if down.PeakBW > full.PeakBW*0.75 {
		t.Errorf("down-clocked PeakBW %.1f GB/s not clearly below full %.1f GB/s",
			down.PeakBW/1e9, full.PeakBW/1e9)
	}
	// GPUCapacity scales the cap too (the power-gated "15W" profile).
	gated := NewModel(plat, graph.Float16, hardware.Clocks{GPUMHz: 510, EMCMHz: 3199, GPUCapacity: 0.5})
	if rel := gated.PeakBW / (down.PeakBW * 0.5); rel < 0.999 || rel > 1.001 {
		t.Errorf("half-capacity PeakBW = %.1f GB/s, want half of %.1f",
			gated.PeakBW/1e9, down.PeakBW/1e9)
	}
}

// Regression: hardware.Platform.RidgeAI used to divide theoretical
// peaks (no efficiency factors, no zero guard) while Model.RidgeAI
// divides the achievable ceilings — two ridge definitions that
// disagreed on every platform. There is one definition now.
func TestPlatformRidgeAIMatchesModel(t *testing.T) {
	for _, plat := range hardware.List() {
		for _, dt := range []graph.DataType{graph.Float32, graph.Float16, graph.Int8} {
			want := NewModel(plat, dt, hardware.Clocks{}).RidgeAI()
			if got := plat.RidgeAI(dt); got != want {
				t.Errorf("%s/%s: Platform.RidgeAI = %.3f, Model.RidgeAI = %.3f",
					plat.Key, dt, got, want)
			}
		}
	}
	// A degenerate platform with no memory system must not leak
	// NaN/Inf arithmetic: the ridge is defined as +Inf.
	degenerate := &hardware.Platform{}
	if r := degenerate.RidgeAI(graph.Float32); !math.IsInf(r, 1) {
		t.Errorf("zero-bandwidth ridge = %v, want +Inf", r)
	}
}
