package roofline

import (
	"context"
	"testing"

	"proof/internal/graph"
	"proof/internal/hardware"
)

// propertyClockGrid returns the clock points to sweep for a platform:
// the zero (maximum) configuration for fixed-clock platforms, plus the
// full EMC option grid crossed with the lowest and highest GPU clock
// options on DVFS platforms — the corners where the issue cap and the
// memory-clock efficiency curve bind.
func propertyClockGrid(plat *hardware.Platform) []hardware.Clocks {
	grid := []hardware.Clocks{{}}
	if plat.Clocks == nil {
		return grid
	}
	gpus := []int{plat.Clocks.GPUMaxMHz}
	if n := len(plat.Clocks.GPUOptionsMHz); n > 0 {
		gpus = []int{plat.Clocks.GPUOptionsMHz[0], plat.Clocks.GPUOptionsMHz[n-1]}
	}
	for _, emc := range plat.Clocks.EMCOptionsMHz {
		for _, gpu := range gpus {
			grid = append(grid, hardware.Clocks{GPUMHz: gpu, EMCMHz: emc})
		}
	}
	return grid
}

// TestSimWithinModelCeilings is the ceiling-consistency property: for
// every platform x data type x clock point, the simulated hardware's
// attained compute and bandwidth (the peak-test pseudo model, measured
// from the hardware counters) must stay under the corresponding
// roofline.NewModel ceilings. The 3% headroom covers the simulator's
// deterministic +/-1.5% run-to-run jitter plus the calibration's
// sub-percent averaging residual.
//
// The tightness direction is asserted too: the peak test is built to
// saturate, so it must attain at least 90% of each ceiling. Before
// NewModel applied the issue-rate bandwidth cap, this direction failed
// at every down-clocked GPU point (attained 53.9 GB/s under an 87.9
// GB/s "ceiling" on the Orin NX at 510/3199).
func TestSimWithinModelCeilings(t *testing.T) {
	dtypes := []graph.DataType{graph.Float32, graph.Float16, graph.Int8}
	seeds := []uint64{1, 2}
	for _, plat := range hardware.List() {
		for _, dt := range dtypes {
			if _, ok := plat.PeakFLOPS[dt]; !ok {
				continue
			}
			for _, clk := range propertyClockGrid(plat) {
				m := NewModel(plat, dt, clk)
				for _, seed := range seeds {
					res, err := MeasurePeak(context.Background(), plat, dt, clk, seed)
					if err != nil {
						t.Fatalf("%s/%s %+v: %v", plat.Key, dt, clk, err)
					}
					if res.FLOPS > m.PeakFLOPS*1.03 {
						t.Errorf("%s/%s gpu=%d emc=%d seed=%d: attained %.3e FLOP/s above ceiling %.3e",
							plat.Key, dt, clk.GPUMHz, clk.EMCMHz, seed, res.FLOPS, m.PeakFLOPS)
					}
					if res.BW > m.PeakBW*1.03 {
						t.Errorf("%s/%s gpu=%d emc=%d seed=%d: attained %.3e B/s above BW ceiling %.3e",
							plat.Key, dt, clk.GPUMHz, clk.EMCMHz, seed, res.BW, m.PeakBW)
					}
					// The FLOPS tightness direction only holds where
					// the roofline itself says the peak test's
					// largest GEMM can reach the compute roof: at
					// memory-starved points (EMC 204 MHz) even a
					// n=8192 GEMM is bandwidth-bound and attains a
					// fraction of the ceiling — exactly what the
					// chart would show. The halved intensity leaves
					// margin for the simulator's tiling traffic.
					gemmAI := 2.0 * 8192 / (3 * float64(dt.Size()))
					saturable := m.AttainableFLOPS(gemmAI/2) >= m.PeakFLOPS
					if saturable && res.FLOPS < m.PeakFLOPS*0.90 {
						t.Errorf("%s/%s gpu=%d emc=%d seed=%d: saturating GEMMs attain %.3e FLOP/s, ceiling %.3e too loose",
							plat.Key, dt, clk.GPUMHz, clk.EMCMHz, seed, res.FLOPS, m.PeakFLOPS)
					}
					if res.BW < m.PeakBW*0.90 {
						t.Errorf("%s/%s gpu=%d emc=%d seed=%d: saturating copies attain %.3e B/s, BW ceiling %.3e too loose",
							plat.Key, dt, clk.GPUMHz, clk.EMCMHz, seed, res.BW, m.PeakBW)
					}
				}
			}
		}
	}
}
