// Package graph provides the tensor-graph intermediate representation used
// throughout PRoof. It mirrors the information content of an ONNX graph:
// typed nodes with attributes, named tensors with shapes and data types,
// graph inputs/outputs, and parameter (initializer) tensors. It also
// provides ONNX-style shape inference so that model builders only need to
// declare graph inputs and parameter shapes.
package graph

import "fmt"

// DataType enumerates the tensor element types PRoof models. The set
// matches the types that appear in DNN inference deployments (Table 2 of
// the paper uses fp32/fp16/int8 depending on platform).
type DataType int

const (
	// DTypeInvalid is the zero value and marks an unset data type.
	DTypeInvalid DataType = iota
	// Float32 is IEEE-754 single precision.
	Float32
	// Float16 is IEEE-754 half precision.
	Float16
	// BFloat16 is bfloat16.
	BFloat16
	// Int8 is a signed 8-bit integer (quantized inference).
	Int8
	// Int32 is a signed 32-bit integer.
	Int32
	// Int64 is a signed 64-bit integer (shape/index tensors in ONNX).
	Int64
	// Bool is a boolean element.
	Bool
)

var dtypeNames = map[DataType]string{
	DTypeInvalid: "invalid",
	Float32:      "fp32",
	Float16:      "fp16",
	BFloat16:     "bf16",
	Int8:         "int8",
	Int32:        "int32",
	Int64:        "int64",
	Bool:         "bool",
}

var dtypeSizes = map[DataType]int{
	Float32:  4,
	Float16:  2,
	BFloat16: 2,
	Int8:     1,
	Int32:    4,
	Int64:    8,
	Bool:     1,
}

// String returns the short lower-case name of the data type (e.g. "fp16").
func (d DataType) String() string {
	if s, ok := dtypeNames[d]; ok {
		return s
	}
	return fmt.Sprintf("DataType(%d)", int(d))
}

// Size returns the size of one element in bytes. It panics for
// DTypeInvalid, which indicates a bug in shape/type inference.
func (d DataType) Size() int {
	s, ok := dtypeSizes[d]
	if !ok {
		panic(fmt.Sprintf("graph: Size of %v", d))
	}
	return s
}

// Valid reports whether d is a concrete data type.
func (d DataType) Valid() bool {
	_, ok := dtypeSizes[d]
	return ok
}

// ParseDataType converts a name as produced by DataType.String back into a
// DataType. It accepts a few common aliases ("float32", "half").
func ParseDataType(s string) (DataType, error) {
	switch s {
	case "fp32", "float32", "float":
		return Float32, nil
	case "fp16", "float16", "half":
		return Float16, nil
	case "bf16", "bfloat16":
		return BFloat16, nil
	case "int8":
		return Int8, nil
	case "int32":
		return Int32, nil
	case "int64":
		return Int64, nil
	case "bool":
		return Bool, nil
	}
	return DTypeInvalid, fmt.Errorf("graph: unknown data type %q", s)
}

// Shape is a tensor shape. A nil Shape means "unknown"; an empty non-nil
// shape is a scalar. Dimensions are always concrete (no symbolic dims);
// batch-size changes are handled by re-running shape inference with a
// different graph input shape.
type Shape []int

// NumElements returns the total element count, or 0 for an unknown shape.
// A scalar has one element.
func (s Shape) NumElements() int64 {
	if s == nil {
		return 0
	}
	n := int64(1)
	for _, d := range s {
		n *= int64(d)
	}
	return n
}

// Rank returns the number of dimensions.
func (s Shape) Rank() int { return len(s) }

// Equal reports whether two shapes have identical rank and dimensions.
func (s Shape) Equal(o Shape) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// Clone returns a copy of the shape.
func (s Shape) Clone() Shape {
	if s == nil {
		return nil
	}
	c := make(Shape, len(s))
	copy(c, s)
	return c
}

// String formats the shape like "[1 3 224 224]".
func (s Shape) String() string {
	if s == nil {
		return "[?]"
	}
	return fmt.Sprintf("%v", []int(s))
}

// Valid reports whether the shape is known and all dimensions are
// positive.
func (s Shape) Valid() bool {
	if s == nil {
		return false
	}
	for _, d := range s {
		if d <= 0 {
			return false
		}
	}
	return true
}
