package graph

// Inference performs incremental shape inference: model builders append
// nodes one at a time and immediately learn output shapes, avoiding a
// full-graph re-inference per node. Constant integer values (IntData)
// are seeded lazily from input tensors.
type Inference struct {
	ctx *inferCtx
}

// NewIncrementalInference creates an incremental inference context for g.
func NewIncrementalInference(g *Graph) *Inference {
	return &Inference{ctx: &inferCtx{g: g, values: map[string][]int64{}}}
}

// InferNode infers the output shapes of a single node whose inputs must
// already have known shapes.
func (inf *Inference) InferNode(n *Node) error {
	for _, in := range n.Inputs {
		if _, ok := inf.ctx.values[in]; ok {
			continue
		}
		if t := inf.ctx.g.Tensors[in]; t != nil && t.IntData != nil {
			inf.ctx.values[in] = t.IntData
		}
	}
	return inf.ctx.inferNode(n)
}
