package graph

import (
	"fmt"
	"strings"
)

// einsumSpec is a parsed einsum equation (two-operand, no ellipsis).
type einsumSpec struct {
	lhs [2]string
	out string
}

// parseEinsum parses equations like "bhid,bhjd->bhij". Only the
// explicit two-operand form without ellipsis is supported — the form
// PyTorch attention exports use.
func parseEinsum(eq string) (einsumSpec, error) {
	eq = strings.ReplaceAll(eq, " ", "")
	parts := strings.Split(eq, "->")
	if len(parts) != 2 {
		return einsumSpec{}, fmt.Errorf("einsum equation %q needs an explicit output", eq)
	}
	ins := strings.Split(parts[0], ",")
	if len(ins) != 2 {
		return einsumSpec{}, fmt.Errorf("einsum equation %q: only two operands supported", eq)
	}
	if strings.Contains(eq, ".") {
		return einsumSpec{}, fmt.Errorf("einsum equation %q: ellipsis not supported", eq)
	}
	return einsumSpec{lhs: [2]string{ins[0], ins[1]}, out: parts[1]}, nil
}

// EinsumDims resolves each index letter's dimension from the operand
// shapes and checks consistency.
func EinsumDims(eq string, a, b Shape) (map[byte]int, Shape, error) {
	spec, err := parseEinsum(eq)
	if err != nil {
		return nil, nil, err
	}
	dims := map[byte]int{}
	bind := func(sub string, s Shape) error {
		if len(sub) != s.Rank() {
			return fmt.Errorf("einsum %q: subscript %q rank %d != shape %v", eq, sub, len(sub), s)
		}
		for i := 0; i < len(sub); i++ {
			l := sub[i]
			if d, ok := dims[l]; ok {
				if d != s[i] {
					return fmt.Errorf("einsum %q: index %c bound to both %d and %d", eq, l, d, s[i])
				}
				continue
			}
			dims[l] = s[i]
		}
		return nil
	}
	if err := bind(spec.lhs[0], a); err != nil {
		return nil, nil, err
	}
	if err := bind(spec.lhs[1], b); err != nil {
		return nil, nil, err
	}
	out := make(Shape, len(spec.out))
	for i := 0; i < len(spec.out); i++ {
		d, ok := dims[spec.out[i]]
		if !ok {
			return nil, nil, fmt.Errorf("einsum %q: output index %c unbound", eq, spec.out[i])
		}
		out[i] = d
	}
	return dims, out, nil
}

// EinsumMACs returns the multiply-accumulate count of the contraction:
// the product of every distinct index dimension (batch x output x
// contracted), the standard einsum cost.
func EinsumMACs(eq string, a, b Shape) (int64, error) {
	dims, _, err := EinsumDims(eq, a, b)
	if err != nil {
		return 0, err
	}
	macs := int64(1)
	for _, d := range dims {
		macs *= int64(d)
	}
	return macs, nil
}

func (c *inferCtx) inferEinsum(n *Node) error {
	a, err := c.in(n, 0)
	if err != nil {
		return err
	}
	b, err := c.in(n, 1)
	if err != nil {
		return err
	}
	eq := n.Attrs.String("equation", "")
	_, out, err := EinsumDims(eq, a.Shape, b.Shape)
	if err != nil {
		return err
	}
	return c.setOut(n, 0, out, a.DType)
}
