package graph

import (
	"fmt"
	"sort"
	"strings"
)

// Tensor describes one named tensor in the graph: either a graph input, a
// parameter (ONNX initializer — weights, biases), or an intermediate
// activation. Tensor contents are not stored; PRoof's analysis only needs
// shapes and element types.
type Tensor struct {
	Name  string   `json:"name"`
	DType DataType `json:"dtype"`
	Shape Shape    `json:"shape"`
	// Param marks parameter tensors (weights). Parameter bytes are
	// counted once per inference in the memory-access model (Eq. 1),
	// while activations scale with batch size.
	Param bool `json:"param,omitempty"`
	// IntData optionally carries the value of small constant integer
	// tensors (Gather indices, Reshape shape inputs, ...). Shape
	// inference propagates these values through shape-computation
	// chains (Shape -> Gather -> Concat -> Reshape), exactly like
	// ONNX shape inference with partial data propagation.
	IntData []int64 `json:"int_data,omitempty"`
}

// Bytes returns the total size of the tensor in bytes, or 0 when the shape
// is unknown.
func (t *Tensor) Bytes() int64 {
	if t.Shape == nil || !t.DType.Valid() {
		return 0
	}
	return t.Shape.NumElements() * int64(t.DType.Size())
}

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := *t
	c.Shape = t.Shape.Clone()
	c.IntData = append([]int64(nil), t.IntData...)
	return &c
}

// Node is one operator instance (an ONNX node): an op type, named input
// and output tensors, and attributes.
type Node struct {
	Name    string   `json:"name"`
	OpType  string   `json:"op_type"`
	Inputs  []string `json:"inputs"`
	Outputs []string `json:"outputs"`
	Attrs   Attrs    `json:"attrs,omitempty"`
}

// Clone returns a deep copy of the node.
func (n *Node) Clone() *Node {
	c := &Node{
		Name:    n.Name,
		OpType:  n.OpType,
		Inputs:  append([]string(nil), n.Inputs...),
		Outputs: append([]string(nil), n.Outputs...),
		Attrs:   n.Attrs.Clone(),
	}
	return c
}

func (n *Node) String() string {
	return fmt.Sprintf("%s(%s: %s -> %s)", n.OpType, n.Name,
		strings.Join(n.Inputs, ","), strings.Join(n.Outputs, ","))
}

// Graph is a directed acyclic dataflow graph of Nodes over named Tensors.
// It corresponds to an ONNX GraphProto.
type Graph struct {
	Name    string             `json:"name"`
	Nodes   []*Node            `json:"nodes"`
	Tensors map[string]*Tensor `json:"tensors"`
	// Inputs and Outputs are the names of the graph-level input and
	// output tensors (excluding parameters).
	Inputs  []string `json:"inputs"`
	Outputs []string `json:"outputs"`

	// idx memoizes the producer/consumer index; see index().
	idx *graphIndex
}

// New creates an empty graph with the given name.
func New(name string) *Graph {
	return &Graph{Name: name, Tensors: map[string]*Tensor{}}
}

// AddTensor registers a tensor, replacing any previous tensor of the same
// name.
func (g *Graph) AddTensor(t *Tensor) {
	g.Tensors[t.Name] = t
}

// Tensor returns the named tensor or nil.
func (g *Graph) Tensor(name string) *Tensor {
	return g.Tensors[name]
}

// AddNode appends a node to the graph.
func (g *Graph) AddNode(n *Node) {
	g.Nodes = append(g.Nodes, n)
}

// Node returns the node with the given name, or nil.
func (g *Graph) Node(name string) *Node {
	for _, n := range g.Nodes {
		if n.Name == name {
			return n
		}
	}
	return nil
}

// Producer returns the node producing the named tensor, or nil for graph
// inputs and parameters. O(1) via the index built by BuildIndex; falls
// back to a scan when the index is stale.
func (g *Graph) Producer(name string) *Node {
	idx := g.index()
	return idx.producer[name]
}

// Consumers returns the nodes consuming the named tensor.
func (g *Graph) Consumers(name string) []*Node {
	idx := g.index()
	return idx.consumers[name]
}

// graphIndex memoizes producer/consumer maps; invalidated by node-count
// change (nodes are appended, never mutated in place by builders).
type graphIndex struct {
	nodeCount int
	producer  map[string]*Node
	consumers map[string][]*Node
}

func (g *Graph) index() *graphIndex {
	if g.idx != nil && g.idx.nodeCount == len(g.Nodes) {
		return g.idx
	}
	idx := &graphIndex{
		nodeCount: len(g.Nodes),
		producer:  make(map[string]*Node, len(g.Nodes)),
		consumers: make(map[string][]*Node, len(g.Nodes)),
	}
	for _, n := range g.Nodes {
		for _, o := range n.Outputs {
			idx.producer[o] = n
		}
		for _, i := range n.Inputs {
			idx.consumers[i] = append(idx.consumers[i], n)
		}
	}
	g.idx = idx
	return idx
}

// ParamCount returns the total number of parameter elements (the "Params
// (M)" column of Table 3 divides this by 1e6).
func (g *Graph) ParamCount() int64 {
	var n int64
	for _, t := range g.Tensors {
		if t.Param {
			n += t.Shape.NumElements()
		}
	}
	return n
}

// ParamBytes returns the total parameter size in bytes.
func (g *Graph) ParamBytes() int64 {
	var n int64
	for _, t := range g.Tensors {
		if t.Param {
			n += t.Bytes()
		}
	}
	return n
}

// Clone deep-copies the graph (nodes, tensors, IO lists).
func (g *Graph) Clone() *Graph {
	c := New(g.Name)
	c.Inputs = append([]string(nil), g.Inputs...)
	c.Outputs = append([]string(nil), g.Outputs...)
	for _, n := range g.Nodes {
		c.Nodes = append(c.Nodes, n.Clone())
	}
	for name, t := range g.Tensors {
		c.Tensors[name] = t.Clone()
	}
	return c
}

// TopoSort returns the nodes in a topological order (inputs before
// consumers). Among ready nodes, declaration order wins, so the result
// preserves the builder's program order: a Constant declared next to its
// consumer stays next to it instead of floating to the front. It returns
// an error when the graph has a cycle.
func (g *Graph) TopoSort() ([]*Node, error) {
	indeg := make(map[*Node]int, len(g.Nodes))
	declIdx := make(map[*Node]int, len(g.Nodes))
	idx := g.index()
	for i, n := range g.Nodes {
		declIdx[n] = i
		for _, in := range n.Inputs {
			if idx.producer[in] != nil {
				indeg[n]++
			}
		}
	}
	// Min-heap of ready nodes keyed by declaration index.
	var heap nodeHeap
	heap.less = func(a, b *Node) bool { return declIdx[a] < declIdx[b] }
	for _, n := range g.Nodes {
		if indeg[n] == 0 {
			heap.push(n)
		}
	}
	order := make([]*Node, 0, len(g.Nodes))
	for heap.len() > 0 {
		n := heap.pop()
		order = append(order, n)
		for _, o := range n.Outputs {
			for _, c := range idx.consumers[o] {
				indeg[c]--
				if indeg[c] == 0 {
					heap.push(c)
				}
			}
		}
	}
	if len(order) != len(g.Nodes) {
		return nil, fmt.Errorf("graph %s: cycle detected (%d of %d nodes sorted)", g.Name, len(order), len(g.Nodes))
	}
	return order, nil
}

// nodeHeap is a minimal binary min-heap over nodes with a custom
// comparison.
type nodeHeap struct {
	items []*Node
	less  func(a, b *Node) bool
}

func (h *nodeHeap) len() int { return len(h.items) }

func (h *nodeHeap) push(n *Node) {
	h.items = append(h.items, n)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.items[i], h.items[parent]) {
			break
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *nodeHeap) pop() *Node {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h.items) && h.less(h.items[l], h.items[smallest]) {
			smallest = l
		}
		if r < len(h.items) && h.less(h.items[r], h.items[smallest]) {
			smallest = r
		}
		if smallest == i {
			break
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
	return top
}

// ActivationBytes returns the total bytes of all non-parameter tensors
// (graph inputs, outputs, and intermediates).
func (g *Graph) ActivationBytes() int64 {
	var n int64
	for _, t := range g.Tensors {
		if !t.Param {
			n += t.Bytes()
		}
	}
	return n
}

// ConvertFloatTensors retargets every floating-point tensor (parameters
// and activations) to the given data type — how a deployment converts a
// model to fp16 or int8 for inference. Integer index/shape tensors are
// untouched. Re-run shape inference afterwards if nodes carry
// dtype-sensitive semantics.
func (g *Graph) ConvertFloatTensors(dt DataType) {
	for _, t := range g.Tensors {
		switch t.DType {
		case Float32, Float16, BFloat16:
			t.DType = dt
		}
	}
}

// SortedTensorNames returns all tensor names sorted, for deterministic
// iteration.
func (g *Graph) SortedTensorNames() []string {
	names := make([]string, 0, len(g.Tensors))
	for name := range g.Tensors {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
