package graph

import (
	"encoding/json"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomDAG builds a random layered DAG of Relu/Add nodes (plus
// Constant-free structure) from a seed, returning a valid graph.
func randomDAG(seed int64, maxNodes int) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := New("random")
	g.AddTensor(&Tensor{Name: "in0", DType: Float32, Shape: Shape{1, 4}})
	g.Inputs = []string{"in0"}
	available := []string{"in0"}
	n := 1 + rng.Intn(maxNodes)
	for i := 0; i < n; i++ {
		out := Tensorf(g, i)
		if rng.Intn(2) == 0 || len(available) < 2 {
			src := available[rng.Intn(len(available))]
			g.AddNode(&Node{
				Name: nodef(i), OpType: "Relu",
				Inputs: []string{src}, Outputs: []string{out},
			})
		} else {
			a := available[rng.Intn(len(available))]
			b := available[rng.Intn(len(available))]
			g.AddNode(&Node{
				Name: nodef(i), OpType: "Add",
				Inputs: []string{a, b}, Outputs: []string{out},
			})
		}
		available = append(available, out)
	}
	g.Outputs = []string{available[len(available)-1]}
	return g
}

// Tensorf registers a fresh tensor t<i> and returns its name.
func Tensorf(g *Graph, i int) string {
	name := "t" + string(rune('a'+i%26)) + string(rune('0'+(i/26)%10)) + string(rune('0'+(i/260)%10))
	g.AddTensor(&Tensor{Name: name, DType: Float32})
	return name
}

func nodef(i int) string {
	return "n" + string(rune('a'+i%26)) + string(rune('0'+(i/26)%10)) + string(rune('0'+(i/260)%10))
}

// TestTopoSortRespectsEdges: for random DAGs, every node appears after
// all producers of its inputs.
func TestTopoSortRespectsEdges(t *testing.T) {
	f := func(seed int64) bool {
		g := randomDAG(seed, 40)
		order, err := g.TopoSort()
		if err != nil {
			return false
		}
		pos := map[string]int{}
		for i, n := range order {
			pos[n.Name] = i
		}
		for _, n := range g.Nodes {
			for _, in := range n.Inputs {
				if p := g.Producer(in); p != nil && pos[p.Name] >= pos[n.Name] {
					return false
				}
			}
		}
		return len(order) == len(g.Nodes)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestTopoSortPrefersDeclarationOrder: among independent chains, the
// first-declared node comes first (program-order stability, which the
// fusion passes rely on).
func TestTopoSortPrefersDeclarationOrder(t *testing.T) {
	g := New("stable")
	g.AddTensor(&Tensor{Name: "x", DType: Float32, Shape: Shape{1}})
	g.AddTensor(&Tensor{Name: "a", DType: Float32})
	g.AddTensor(&Tensor{Name: "b", DType: Float32})
	g.Inputs = []string{"x"}
	g.AddNode(&Node{Name: "first", OpType: "Relu", Inputs: []string{"x"}, Outputs: []string{"a"}})
	g.AddNode(&Node{Name: "second", OpType: "Relu", Inputs: []string{"x"}, Outputs: []string{"b"}})
	g.Outputs = []string{"a", "b"}
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	if order[0].Name != "first" || order[1].Name != "second" {
		t.Errorf("order = %v", order)
	}
}

// TestTopoSortConstantsStayLocal: Constant nodes declared next to their
// consumer must not float to the front of the order.
func TestTopoSortConstantsStayLocal(t *testing.T) {
	g := New("const-local")
	g.AddTensor(&Tensor{Name: "x", DType: Float32, Shape: Shape{1, 4}})
	g.AddTensor(&Tensor{Name: "a", DType: Float32})
	g.AddTensor(&Tensor{Name: "c", DType: Int64})
	g.AddTensor(&Tensor{Name: "y", DType: Float32})
	g.Inputs = []string{"x"}
	g.AddNode(&Node{Name: "relu", OpType: "Relu", Inputs: []string{"x"}, Outputs: []string{"a"}})
	g.AddNode(&Node{Name: "konst", OpType: "Constant", Outputs: []string{"c"},
		Attrs: Attrs{"value_ints": IntsAttr(1, 4)}})
	g.AddNode(&Node{Name: "reshape", OpType: "Reshape", Inputs: []string{"a", "c"}, Outputs: []string{"y"}})
	g.Outputs = []string{"y"}
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	if order[0].Name != "relu" {
		t.Errorf("Constant floated to front: %v", order)
	}
}

// TestCloneIsDeepAndEquivalent: a clone marshals to identical JSON and
// shares no mutable state.
func TestCloneIsDeepAndEquivalent(t *testing.T) {
	f := func(seed int64) bool {
		g := randomDAG(seed, 20)
		c := g.Clone()
		j1, err1 := json.Marshal(g)
		j2, err2 := json.Marshal(c)
		if err1 != nil || err2 != nil || string(j1) != string(j2) {
			return false
		}
		// Mutating the clone leaves the original untouched.
		if len(c.Nodes) > 0 {
			c.Nodes[0].OpType = "Mutated"
		}
		return g.Nodes[0].OpType != "Mutated"
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestValidateRandomDAGs: every generated DAG validates, and reversing
// an edge into a cycle is caught.
func TestValidateRandomDAGs(t *testing.T) {
	f := func(seed int64) bool {
		g := randomDAG(seed, 30)
		return g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestInferShapesIdempotent: re-running inference never changes shapes.
func TestInferShapesIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		g := randomDAG(seed, 25)
		if err := g.InferShapes(); err != nil {
			return false
		}
		snapshot := map[string]string{}
		for name, tens := range g.Tensors {
			snapshot[name] = tens.Shape.String()
		}
		if err := g.InferShapes(); err != nil {
			return false
		}
		for name, tens := range g.Tensors {
			if snapshot[name] != tens.Shape.String() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestNodeHeapOrdering: the internal heap pops nodes in comparator
// order for arbitrary insert sequences.
func TestNodeHeapOrdering(t *testing.T) {
	f := func(keys []uint8) bool {
		nodes := make([]*Node, len(keys))
		weight := map[*Node]int{}
		var h nodeHeap
		h.less = func(a, b *Node) bool { return weight[a] < weight[b] }
		for i, k := range keys {
			nodes[i] = &Node{Name: "x"}
			weight[nodes[i]] = int(k)
			h.push(nodes[i])
		}
		prev := -1
		for h.len() > 0 {
			n := h.pop()
			if weight[n] < prev {
				return false
			}
			prev = weight[n]
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
