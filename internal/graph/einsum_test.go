package graph

import "testing"

func TestEinsumDims(t *testing.T) {
	// Attention scores: bhid,bhjd->bhij.
	dims, out, err := EinsumDims("bhid,bhjd->bhij",
		Shape{2, 8, 196, 64}, Shape{2, 8, 196, 64})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(Shape{2, 8, 196, 196}) {
		t.Errorf("out = %v", out)
	}
	if dims['d'] != 64 || dims['b'] != 2 {
		t.Errorf("dims = %v", dims)
	}

	// Plain matmul ij,jk->ik.
	_, out, err = EinsumDims("ij,jk->ik", Shape{3, 4}, Shape{4, 5})
	if err != nil || !out.Equal(Shape{3, 5}) {
		t.Errorf("matmul einsum = %v, %v", out, err)
	}
}

func TestEinsumMACs(t *testing.T) {
	macs, err := EinsumMACs("ij,jk->ik", Shape{3, 4}, Shape{4, 5})
	if err != nil || macs != 3*4*5 {
		t.Errorf("MACs = %d, %v", macs, err)
	}
	macs, err = EinsumMACs("bhid,bhjd->bhij", Shape{2, 8, 196, 64}, Shape{2, 8, 196, 64})
	if err != nil || macs != 2*8*196*196*64 {
		t.Errorf("attention MACs = %d, %v", macs, err)
	}
}

func TestEinsumErrors(t *testing.T) {
	cases := []struct {
		eq   string
		a, b Shape
	}{
		{"ij,jk", Shape{2, 3}, Shape{3, 4}},        // no output
		{"ij,jk,kl->il", Shape{2, 3}, Shape{3, 4}}, // 3 operands
		{"i...,j->ij", Shape{2}, Shape{3}},         // ellipsis
		{"ij,jk->ik", Shape{2, 3, 4}, Shape{3, 4}}, // rank mismatch
		{"ij,jk->ik", Shape{2, 3}, Shape{5, 4}},    // inconsistent j
		{"ij,jk->iq", Shape{2, 3}, Shape{3, 4}},    // unbound output index
	}
	for _, c := range cases {
		if _, _, err := EinsumDims(c.eq, c.a, c.b); err == nil {
			t.Errorf("EinsumDims(%q, %v, %v) should error", c.eq, c.a, c.b)
		}
	}
}

func TestInferEinsumAndFriends(t *testing.T) {
	g := New("ops")
	g.AddTensor(&Tensor{Name: "q", DType: Float16, Shape: Shape{2, 8, 16, 64}})
	g.AddTensor(&Tensor{Name: "k", DType: Float16, Shape: Shape{2, 8, 16, 64}})
	g.AddTensor(&Tensor{Name: "scores", DType: Float16})
	g.AddNode(&Node{Name: "e", OpType: "Einsum", Inputs: []string{"q", "k"}, Outputs: []string{"scores"},
		Attrs: Attrs{"equation": StringAttr("bhid,bhjd->bhij")}})

	g.AddTensor(&Tensor{Name: "am", DType: Int64})
	g.AddNode(&Node{Name: "argmax", OpType: "ArgMax", Inputs: []string{"scores"}, Outputs: []string{"am"},
		Attrs: Attrs{"axis": IntAttr(-1), "keepdims": IntAttr(0)}})

	g.AddTensor(&Tensor{Name: "tv", DType: Float16})
	g.AddTensor(&Tensor{Name: "ti", DType: Int64})
	g.AddNode(&Node{Name: "topk", OpType: "TopK", Inputs: []string{"scores"}, Outputs: []string{"tv", "ti"},
		Attrs: Attrs{"k": IntAttr(4), "axis": IntAttr(-1)}})

	g.AddTensor(&Tensor{Name: "s3", DType: Float16})
	g.AddNode(&Node{Name: "sum3", OpType: "Sum", Inputs: []string{"scores", "scores", "scores"}, Outputs: []string{"s3"}})

	g.Inputs = []string{"q", "k"}
	g.Outputs = []string{"am", "tv", "ti", "s3"}
	if err := g.InferShapes(); err != nil {
		t.Fatal(err)
	}
	if !g.Tensor("scores").Shape.Equal(Shape{2, 8, 16, 16}) {
		t.Errorf("einsum out = %v", g.Tensor("scores").Shape)
	}
	if !g.Tensor("am").Shape.Equal(Shape{2, 8, 16}) || g.Tensor("am").DType != Int64 {
		t.Errorf("argmax out = %v %v", g.Tensor("am").Shape, g.Tensor("am").DType)
	}
	if !g.Tensor("tv").Shape.Equal(Shape{2, 8, 16, 4}) {
		t.Errorf("topk values = %v", g.Tensor("tv").Shape)
	}
	if g.Tensor("ti").DType != Int64 {
		t.Error("topk indices dtype")
	}
	if !g.Tensor("s3").Shape.Equal(Shape{2, 8, 16, 16}) {
		t.Errorf("sum out = %v", g.Tensor("s3").Shape)
	}
}
