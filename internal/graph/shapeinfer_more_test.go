package graph

import (
	"strings"
	"testing"
)

// infer1 builds a single-node graph and returns the inferred output
// tensor.
func infer1(t *testing.T, inputs []*Tensor, node *Node, extraOutputs ...string) *Tensor {
	t.Helper()
	g := New("one")
	var inNames []string
	for _, in := range inputs {
		g.AddTensor(in)
		if !in.Param {
			inNames = append(inNames, in.Name)
		}
	}
	for _, out := range append([]string{node.Outputs[0]}, extraOutputs...) {
		g.AddTensor(&Tensor{Name: out})
	}
	g.AddNode(node)
	g.Inputs = inNames
	g.Outputs = node.Outputs
	if err := g.InferShapes(); err != nil {
		t.Fatalf("infer: %v", err)
	}
	return g.Tensor(node.Outputs[0])
}

func TestInferConvTranspose(t *testing.T) {
	out := infer1(t,
		[]*Tensor{
			{Name: "x", DType: Float32, Shape: Shape{1, 16, 8, 8}},
			{Name: "w", DType: Float32, Shape: Shape{16, 8, 2, 2}, Param: true},
		},
		&Node{Name: "ct", OpType: "ConvTranspose", Inputs: []string{"x", "w"}, Outputs: []string{"y"},
			Attrs: Attrs{"strides": IntsAttr(2, 2), "kernel_shape": IntsAttr(2, 2)}})
	if !out.Shape.Equal(Shape{1, 8, 16, 16}) {
		t.Errorf("convtranspose out = %v", out.Shape)
	}
}

func TestInferFlattenSqueezeUnsqueeze(t *testing.T) {
	out := infer1(t,
		[]*Tensor{{Name: "x", DType: Float32, Shape: Shape{2, 3, 4, 5}}},
		&Node{Name: "f", OpType: "Flatten", Inputs: []string{"x"}, Outputs: []string{"y"},
			Attrs: Attrs{"axis": IntAttr(2)}})
	if !out.Shape.Equal(Shape{6, 20}) {
		t.Errorf("flatten = %v", out.Shape)
	}

	out = infer1(t,
		[]*Tensor{{Name: "x", DType: Float32, Shape: Shape{2, 1, 4, 1}}},
		&Node{Name: "s", OpType: "Squeeze", Inputs: []string{"x"}, Outputs: []string{"y"}})
	if !out.Shape.Equal(Shape{2, 4}) {
		t.Errorf("squeeze all = %v", out.Shape)
	}

	out = infer1(t,
		[]*Tensor{{Name: "x", DType: Float32, Shape: Shape{2, 1, 4}}},
		&Node{Name: "s", OpType: "Squeeze", Inputs: []string{"x"}, Outputs: []string{"y"},
			Attrs: Attrs{"axes": IntsAttr(1)}})
	if !out.Shape.Equal(Shape{2, 4}) {
		t.Errorf("squeeze axis = %v", out.Shape)
	}

	out = infer1(t,
		[]*Tensor{{Name: "x", DType: Float32, Shape: Shape{2, 4}}},
		&Node{Name: "u", OpType: "Unsqueeze", Inputs: []string{"x"}, Outputs: []string{"y"},
			Attrs: Attrs{"axes": IntsAttr(0, 2)}})
	if !out.Shape.Equal(Shape{1, 2, 1, 4}) {
		t.Errorf("unsqueeze = %v", out.Shape)
	}
}

func TestInferExpandPadCast(t *testing.T) {
	out := infer1(t,
		[]*Tensor{{Name: "x", DType: Float32, Shape: Shape{1, 1, 4}}},
		&Node{Name: "e", OpType: "Expand", Inputs: []string{"x"}, Outputs: []string{"y"},
			Attrs: Attrs{"shape": IntsAttr(2, 3, 4)}})
	if !out.Shape.Equal(Shape{2, 3, 4}) {
		t.Errorf("expand = %v", out.Shape)
	}

	out = infer1(t,
		[]*Tensor{{Name: "x", DType: Float32, Shape: Shape{1, 2, 4, 4}}},
		&Node{Name: "p", OpType: "Pad", Inputs: []string{"x"}, Outputs: []string{"y"},
			Attrs: Attrs{"pads": IntsAttr(0, 0, 1, 1, 0, 0, 1, 1)}})
	if !out.Shape.Equal(Shape{1, 2, 6, 6}) {
		t.Errorf("pad = %v", out.Shape)
	}

	out = infer1(t,
		[]*Tensor{{Name: "x", DType: Float32, Shape: Shape{3}}},
		&Node{Name: "c", OpType: "Cast", Inputs: []string{"x"}, Outputs: []string{"y"},
			Attrs: Attrs{"to": StringAttr("fp16")}})
	if out.DType != Float16 {
		t.Errorf("cast dtype = %v", out.DType)
	}
}

func TestInferWhereTileConstantOfShape(t *testing.T) {
	out := infer1(t,
		[]*Tensor{
			{Name: "c", DType: Bool, Shape: Shape{2, 1}},
			{Name: "a", DType: Float32, Shape: Shape{2, 3}},
			{Name: "b", DType: Float32, Shape: Shape{1, 3}},
		},
		&Node{Name: "w", OpType: "Where", Inputs: []string{"c", "a", "b"}, Outputs: []string{"y"}})
	if !out.Shape.Equal(Shape{2, 3}) {
		t.Errorf("where = %v", out.Shape)
	}

	out = infer1(t,
		[]*Tensor{{Name: "x", DType: Float32, Shape: Shape{2, 3}}},
		&Node{Name: "t", OpType: "Tile", Inputs: []string{"x"}, Outputs: []string{"y"},
			Attrs: Attrs{"repeats": IntsAttr(2, 4)}})
	if !out.Shape.Equal(Shape{4, 12}) {
		t.Errorf("tile = %v", out.Shape)
	}

	out = infer1(t,
		[]*Tensor{{Name: "s", DType: Int64, Shape: Shape{2}, Param: true, IntData: []int64{3, 5}}},
		&Node{Name: "cos", OpType: "ConstantOfShape", Inputs: []string{"s"}, Outputs: []string{"y"}})
	if !out.Shape.Equal(Shape{3, 5}) {
		t.Errorf("constantofshape = %v", out.Shape)
	}
}

func TestInferConstantNodeForms(t *testing.T) {
	out := infer1(t, nil,
		&Node{Name: "k", OpType: "Constant", Outputs: []string{"y"},
			Attrs: Attrs{"value_ints": IntsAttr(7, 8, 9)}})
	if !out.Shape.Equal(Shape{3}) || out.DType != Int64 {
		t.Errorf("constant ints = %v %v", out.Shape, out.DType)
	}
	out = infer1(t, nil,
		&Node{Name: "k", OpType: "Constant", Outputs: []string{"y"},
			Attrs: Attrs{"value_float": FloatAttr(0.5)}})
	if !out.Shape.Equal(Shape{1}) || out.DType != Float32 {
		t.Errorf("constant float = %v %v", out.Shape, out.DType)
	}
	// Constant without a value errors.
	g := New("bad")
	g.AddTensor(&Tensor{Name: "y"})
	g.AddNode(&Node{Name: "k", OpType: "Constant", Outputs: []string{"y"}})
	g.Outputs = []string{"y"}
	if err := g.InferShapes(); err == nil {
		t.Error("valueless Constant should error")
	}
}

func TestShapeChainArithmetic(t *testing.T) {
	// Shape -> Gather -> Mul with a constant -> Concat -> Reshape:
	// exercises evalIntBinary value propagation.
	g := New("arith")
	g.AddTensor(&Tensor{Name: "x", DType: Float32, Shape: Shape{2, 6}})
	g.AddTensor(&Tensor{Name: "shp", DType: Int64})
	g.AddTensor(&Tensor{Name: "idx", DType: Int64, Shape: Shape{1}, Param: true, IntData: []int64{1}})
	g.AddTensor(&Tensor{Name: "six", DType: Int64})
	g.AddTensor(&Tensor{Name: "two", DType: Int64, Shape: Shape{1}, Param: true, IntData: []int64{2}})
	g.AddTensor(&Tensor{Name: "twelve", DType: Int64})
	g.AddTensor(&Tensor{Name: "lead", DType: Int64, Shape: Shape{1}, Param: true, IntData: []int64{1}})
	g.AddTensor(&Tensor{Name: "tgt", DType: Int64})
	g.AddTensor(&Tensor{Name: "y", DType: Float32})
	g.AddNode(&Node{Name: "shape", OpType: "Shape", Inputs: []string{"x"}, Outputs: []string{"shp"}})
	g.AddNode(&Node{Name: "gather", OpType: "Gather", Inputs: []string{"shp", "idx"}, Outputs: []string{"six"}})
	g.AddNode(&Node{Name: "mul", OpType: "Mul", Inputs: []string{"six", "two"}, Outputs: []string{"twelve"}})
	g.AddNode(&Node{Name: "cat", OpType: "Concat", Inputs: []string{"lead", "twelve"}, Outputs: []string{"tgt"},
		Attrs: Attrs{"axis": IntAttr(0)}})
	g.AddNode(&Node{Name: "reshape", OpType: "Reshape", Inputs: []string{"x", "tgt"}, Outputs: []string{"y"}})
	g.Inputs = []string{"x"}
	g.Outputs = []string{"y"}
	if err := g.InferShapes(); err != nil {
		t.Fatal(err)
	}
	if !g.Tensor("y").Shape.Equal(Shape{1, 12}) {
		t.Errorf("reshape via arithmetic chain = %v", g.Tensor("y").Shape)
	}
}

func TestIncrementalInference(t *testing.T) {
	g := New("inc")
	g.AddTensor(&Tensor{Name: "x", DType: Float32, Shape: Shape{1, 4}})
	g.Inputs = []string{"x"}
	inf := NewIncrementalInference(g)
	g.AddTensor(&Tensor{Name: "y"})
	n := &Node{Name: "r", OpType: "Relu", Inputs: []string{"x"}, Outputs: []string{"y"}}
	g.AddNode(n)
	if err := inf.InferNode(n); err != nil {
		t.Fatal(err)
	}
	if !g.Tensor("y").Shape.Equal(Shape{1, 4}) {
		t.Errorf("incremental = %v", g.Tensor("y").Shape)
	}
}

func TestGraphHelpers(t *testing.T) {
	g := tinyGraph()
	if g.Node("r1") == nil || g.Node("missing") != nil {
		t.Error("Node lookup")
	}
	if s := g.Nodes[0].String(); !strings.Contains(s, "Relu") || !strings.Contains(s, "r1") {
		t.Errorf("node String = %q", s)
	}
	names := g.SortedTensorNames()
	if len(names) != 3 || names[0] != "in" {
		t.Errorf("SortedTensorNames = %v", names)
	}
	g.ConvertFloatTensors(Float16)
	if g.Tensor("in").DType != Float16 {
		t.Error("ConvertFloatTensors")
	}
	a := IntsAttr(1, 2)
	if a.String() != "[1 2]" {
		t.Errorf("attr String = %q", a.String())
	}
	if StringAttr("x").String() != `"x"` || FloatAttr(1.5).String() != "1.5" ||
		IntAttr(3).String() != "3" || (Attribute{}).String() != "<invalid>" {
		t.Error("attribute String forms")
	}
}
