package graph

import "fmt"

// AttrKind identifies the payload type of an Attribute.
type AttrKind int

const (
	// AttrInvalid is the zero value.
	AttrInvalid AttrKind = iota
	// AttrInt holds a single integer.
	AttrInt
	// AttrInts holds an integer list.
	AttrInts
	// AttrFloat holds a single float64.
	AttrFloat
	// AttrString holds a string.
	AttrString
)

// Attribute is a typed node attribute, mirroring ONNX node attributes
// (kernel_shape, strides, pads, axis, epsilon, ...).
type Attribute struct {
	Kind AttrKind `json:"kind"`
	I    int      `json:"i,omitempty"`
	Ints []int    `json:"ints,omitempty"`
	F    float64  `json:"f,omitempty"`
	S    string   `json:"s,omitempty"`
}

// IntAttr builds an integer attribute.
func IntAttr(v int) Attribute { return Attribute{Kind: AttrInt, I: v} }

// IntsAttr builds an integer-list attribute.
func IntsAttr(v ...int) Attribute {
	c := make([]int, len(v))
	copy(c, v)
	return Attribute{Kind: AttrInts, Ints: c}
}

// FloatAttr builds a float attribute.
func FloatAttr(v float64) Attribute { return Attribute{Kind: AttrFloat, F: v} }

// StringAttr builds a string attribute.
func StringAttr(v string) Attribute { return Attribute{Kind: AttrString, S: v} }

// Attrs is the attribute map of a node.
type Attrs map[string]Attribute

// Int returns the named integer attribute or def when absent.
func (a Attrs) Int(name string, def int) int {
	if v, ok := a[name]; ok && v.Kind == AttrInt {
		return v.I
	}
	return def
}

// Ints returns the named integer-list attribute or def when absent. The
// returned slice must not be modified.
func (a Attrs) Ints(name string, def []int) []int {
	if v, ok := a[name]; ok && v.Kind == AttrInts {
		return v.Ints
	}
	return def
}

// Float returns the named float attribute or def when absent.
func (a Attrs) Float(name string, def float64) float64 {
	if v, ok := a[name]; ok && v.Kind == AttrFloat {
		return v.F
	}
	return def
}

// String returns the named string attribute or def when absent.
func (a Attrs) String(name string, def string) string {
	if v, ok := a[name]; ok && v.Kind == AttrString {
		return v.S
	}
	return def
}

// Clone deep-copies the attribute map.
func (a Attrs) Clone() Attrs {
	if a == nil {
		return nil
	}
	c := make(Attrs, len(a))
	for k, v := range a {
		if v.Kind == AttrInts {
			ints := make([]int, len(v.Ints))
			copy(ints, v.Ints)
			v.Ints = ints
		}
		c[k] = v
	}
	return c
}

func (a Attribute) String() string {
	switch a.Kind {
	case AttrInt:
		return fmt.Sprintf("%d", a.I)
	case AttrInts:
		return fmt.Sprintf("%v", a.Ints)
	case AttrFloat:
		return fmt.Sprintf("%g", a.F)
	case AttrString:
		return fmt.Sprintf("%q", a.S)
	}
	return "<invalid>"
}
