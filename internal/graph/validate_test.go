package graph

import (
	"errors"
	"fmt"
	"testing"
)

// corrupt applies one named corruption to a valid tiny graph and
// returns it. The table below asserts each corruption is rejected with
// its typed code — the contract proofd's invalid_model responses rely
// on.
func TestValidateCorruptionClasses(t *testing.T) {
	base := func() *Graph {
		g := New("victim")
		g.AddTensor(&Tensor{Name: "in", DType: Float32, Shape: Shape{1, 4}})
		g.AddTensor(&Tensor{Name: "w", DType: Float32, Shape: Shape{4}, Param: true})
		g.AddTensor(&Tensor{Name: "mid", DType: Float32, Shape: Shape{1, 4}})
		g.AddTensor(&Tensor{Name: "out", DType: Float32, Shape: Shape{1, 4}})
		g.AddNode(&Node{Name: "add", OpType: "Add", Inputs: []string{"in", "w"}, Outputs: []string{"mid"}})
		g.AddNode(&Node{Name: "act", OpType: "Relu", Inputs: []string{"mid"}, Outputs: []string{"out"}})
		g.Inputs = []string{"in"}
		g.Outputs = []string{"out"}
		return g
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("base graph must be valid: %v", err)
	}

	cases := []struct {
		name    string
		corrupt func(*Graph)
		want    ValidationCode
	}{
		{"empty node name", func(g *Graph) { g.Nodes[0].Name = "" }, ErrEmptyNodeName},
		{"duplicate node name", func(g *Graph) { g.Nodes[1].Name = "add" }, ErrDuplicateNode},
		{"two producers of one tensor", func(g *Graph) {
			g.AddNode(&Node{Name: "dup", OpType: "Relu", Inputs: []string{"in"}, Outputs: []string{"out"}})
		}, ErrMultiProducer},
		{"dangling node input", func(g *Graph) { g.Nodes[0].Inputs[0] = "ghost" }, ErrDanglingTensor},
		{"dangling node output", func(g *Graph) { delete(g.Tensors, "mid") }, ErrDanglingTensor},
		{"dangling graph input", func(g *Graph) { g.Inputs = append(g.Inputs, "ghost") }, ErrDanglingTensor},
		{"dangling graph output", func(g *Graph) { g.Outputs = []string{"ghost"} }, ErrDanglingTensor},
		{"output without producer", func(g *Graph) {
			g.AddTensor(&Tensor{Name: "island", DType: Float32, Shape: Shape{1}})
			g.Outputs = []string{"island"}
		}, ErrMissingProducer},
		{"cycle", func(g *Graph) {
			g.Nodes[0].Inputs[0] = "out" // out feeds add feeds mid feeds act feeds out
		}, ErrCycle},
		{"nil tensor entry", func(g *Graph) { g.Tensors["mid"] = nil }, ErrBadTensor},
		{"tensor name disagrees with key", func(g *Graph) { g.Tensors["mid"].Name = "other" }, ErrBadTensor},
		{"non-positive dimension", func(g *Graph) { g.Tensors["mid"].Shape = Shape{1, -4} }, ErrBadTensor},
		{"param without shape", func(g *Graph) { g.Tensors["w"].Shape = nil }, ErrBadTensor},
		{"param with invalid dtype", func(g *Graph) { g.Tensors["w"].DType = DTypeInvalid }, ErrBadTensor},
		{"int data contradicts shape", func(g *Graph) {
			g.Tensors["w"].IntData = []int64{1, 2}
		}, ErrBadTensor},
		{"unused initializer", func(g *Graph) {
			g.AddTensor(&Tensor{Name: "dead_w", DType: Float32, Shape: Shape{8}, Param: true})
		}, ErrUnusedParam},
		{"elementwise rank contradiction", func(g *Graph) {
			g.Tensors["out"].Shape = Shape{1, 4, 1}
		}, ErrShapeContradiction},
		{"unbroadcastable binary inputs", func(g *Graph) {
			g.Tensors["w"].Shape = Shape{3}
		}, ErrShapeContradiction},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := base()
			tc.corrupt(g)
			errs := g.ValidateAll()
			if len(errs) == 0 {
				t.Fatalf("corruption %q not detected", tc.name)
			}
			found := false
			for _, e := range errs {
				if e.Code == tc.want {
					found = true
				}
				if e.Graph != "victim" {
					t.Errorf("error %v lost graph name: %q", e.Code, e.Graph)
				}
			}
			if !found {
				t.Errorf("want code %q, got %v", tc.want, errs)
			}
			// Validate returns the first of the same defects, typed.
			err := g.Validate()
			if err == nil {
				t.Fatal("Validate returned nil on corrupt graph")
			}
			if _, ok := AsValidationError(err); !ok {
				t.Errorf("Validate error is not a *ValidationError: %T", err)
			}
		})
	}
}

// TestValidationErrorUnwrapsThroughWrapping: the typed error must
// survive fmt.Errorf %w chains — that is how core's pipeline hands it
// to proofd.
func TestValidationErrorUnwrapsThroughWrapping(t *testing.T) {
	g := New("wrapped")
	g.Outputs = []string{"ghost"}
	err := g.Validate()
	wrapped := fmt.Errorf("core: model build: %w", err)
	ve, ok := AsValidationError(wrapped)
	if !ok {
		t.Fatalf("AsValidationError failed on wrapped error %v", wrapped)
	}
	if ve.Code != ErrDanglingTensor || ve.Tensor != "ghost" {
		t.Errorf("unexpected unwrapped error: %+v", ve)
	}
	var target *ValidationError
	if !errors.As(wrapped, &target) {
		t.Error("errors.As must find *ValidationError")
	}
}

// TestValidateOutputMayBeInput: an identity-style graph whose output
// is a graph input is legal (no producer needed).
func TestValidateOutputMayBeInput(t *testing.T) {
	g := New("identity")
	g.AddTensor(&Tensor{Name: "x", DType: Float32, Shape: Shape{1}})
	g.Inputs = []string{"x"}
	g.Outputs = []string{"x"}
	if err := g.Validate(); err != nil {
		t.Errorf("input-as-output should validate: %v", err)
	}
}

// TestValidateAllReportsEverything: multiple independent defects are
// all reported in one pass, not just the first.
func TestValidateAllReportsEverything(t *testing.T) {
	g := New("multi")
	g.AddTensor(&Tensor{Name: "in", DType: Float32, Shape: Shape{1}})
	g.AddTensor(&Tensor{Name: "dead_w", DType: Float32, Shape: Shape{8}, Param: true})
	g.AddNode(&Node{Name: "", OpType: "Relu", Inputs: []string{"in"}, Outputs: []string{"ghost"}})
	g.Inputs = []string{"in"}
	g.Outputs = []string{"missing"}
	codes := map[ValidationCode]bool{}
	for _, e := range g.ValidateAll() {
		codes[e.Code] = true
	}
	for _, want := range []ValidationCode{ErrEmptyNodeName, ErrDanglingTensor, ErrUnusedParam} {
		if !codes[want] {
			t.Errorf("missing code %q in %v", want, codes)
		}
	}
}
