package graph

import (
	"testing"
)

// fuzzOps is the op vocabulary the fuzzer mutates over; arbitrary
// strings from the corpus also reach the default path.
var fuzzOps = []string{
	"Conv", "ConvTranspose", "MaxPool", "AveragePool", "GlobalAveragePool",
	"MatMul", "Gemm", "Transpose", "Reshape", "Flatten", "Concat", "Split",
	"Slice", "Squeeze", "Unsqueeze", "Gather", "Shape", "Expand", "Pad",
	"ReduceMean", "Einsum", "TopK", "Resize", "Where", "ConstantOfShape",
	"Tile", "Add", "Mul", "Softmax", "Relu", "NotAnOp",
}

// FuzzShapeInfer hardens shape inference against adversarial graphs:
// arbitrary (including zero, negative, huge) dimensions, kernel and
// stride attributes, axes and permutations must either infer or return
// an error — never panic, never hang. This is the boundary that
// user-supplied model files (-model-file) reach after decoding.
func FuzzShapeInfer(f *testing.F) {
	f.Add("Conv", 1, 3, 224, 224, 8, 3, 3, 2, 1, 0, int64(64))
	f.Add("MatMul", 4, 16, 32, 64, 0, 0, 0, 1, 1, -1, int64(8))
	f.Add("Reshape", 2, 8, 4, 4, 0, 0, 0, 1, 0, 0, int64(-1))
	f.Add("Transpose", 1, 2, 3, 4, 0, 3, 1, 2, 0, 2, int64(0))
	f.Add("Concat", -1, 0, 7, 1<<30, 9, -3, 5, 0, -2, 63, int64(1)<<40)
	f.Add("Gather", 3, 5, 7, 11, 1, 0, 0, 1, 1, 2, int64(4))

	f.Fuzz(func(t *testing.T, op string, d0, d1, d2, d3, dw, k0, k1, s0, s1, axis int, reshapeDim int64) {
		if pick := axis; pick >= 0 && pick < len(fuzzOps) && op == "" {
			op = fuzzOps[pick]
		}
		g := New("fuzz")
		g.AddTensor(&Tensor{Name: "in", DType: Float32, Shape: Shape{d0, d1, d2, d3}})
		g.AddTensor(&Tensor{Name: "in2", DType: Float32, Shape: Shape{d0, d1, d2, d3}})
		g.Inputs = []string{"in", "in2"}
		// A Conv/Gemm-style weight, with fuzzed output channels and
		// kernel extents.
		g.AddTensor(&Tensor{Name: "w", DType: Float32, Shape: Shape{dw, d1, k0, k1}, Param: true})
		// A small integer tensor driving Reshape/Expand/Tile/Gather
		// value propagation.
		g.AddTensor(&Tensor{
			Name: "shape", DType: Int64, Shape: Shape{2}, Param: true,
			IntData: []int64{reshapeDim, int64(d1)},
		})
		g.AddTensor(&Tensor{Name: "mid"})
		g.AddTensor(&Tensor{Name: "out"})

		attrs := Attrs{
			"kernel_shape": IntsAttr(k0, k1),
			"strides":      IntsAttr(s0, s1),
			"pads":         IntsAttr(axis, k0, s1, d3%5),
			"axis":         IntAttr(axis),
			"perm":         IntsAttr(k0, s0, axis, d0%7),
			"group":        IntAttr(s1),
			"equation":     StringAttr(op),
		}
		g.AddNode(&Node{Name: "n0", OpType: op, Inputs: []string{"in", "w", "shape"}, Outputs: []string{"mid"}, Attrs: attrs})
		// A second node consumes the first's output so inferred values
		// propagate one hop further.
		g.AddNode(&Node{Name: "n1", OpType: "Add", Inputs: []string{"mid", "in2"}, Outputs: []string{"out"}})
		g.Outputs = []string{"out"}

		// Either outcome is fine; panicking (or crashing on a Size()
		// of an uninferred dtype downstream) is not.
		if err := g.InferShapes(); err != nil {
			return
		}
		// When inference succeeds, every claimed-inferred output shape
		// must be internally consistent enough to compute a byte size.
		for _, name := range []string{"mid", "out"} {
			if tns := g.Tensor(name); tns != nil && tns.Shape != nil && tns.DType.Valid() {
				_ = tns.Bytes()
			}
		}
	})
}

// FuzzInferShapesRerun checks the documented re-run property: running
// inference twice (as a batch change does) must be stable and must not
// panic, whatever the first run left behind.
func FuzzInferShapesRerun(f *testing.F) {
	f.Add(1, 3, 8, 8, 4)
	f.Add(2, -1, 0, 16, 1<<20)
	f.Fuzz(func(t *testing.T, d0, d1, d2, d3, batch int) {
		g := New("rerun")
		g.AddTensor(&Tensor{Name: "in", DType: Float32, Shape: Shape{d0, d1, d2, d3}})
		g.Inputs = []string{"in"}
		g.AddTensor(&Tensor{Name: "out"})
		g.AddNode(&Node{Name: "gap", OpType: "GlobalAveragePool", Inputs: []string{"in"}, Outputs: []string{"out"}})
		g.Outputs = []string{"out"}
		if err := g.InferShapes(); err != nil {
			return
		}
		first := g.Tensor("out").Shape.Clone()
		// Rebatch and infer again, then restore: the original shapes
		// must come back exactly.
		g.Tensor("in").Shape = Shape{batch, d1, d2, d3}
		_ = g.InferShapes()
		g.Tensor("in").Shape = Shape{d0, d1, d2, d3}
		if err := g.InferShapes(); err != nil {
			t.Fatalf("re-run of an inferable graph failed: %v", err)
		}
		if !g.Tensor("out").Shape.Equal(first) {
			t.Fatalf("re-run drifted: %v -> %v", first, g.Tensor("out").Shape)
		}
	})
}
