package graph

import (
	"testing"
	"testing/quick"
)

func TestDataTypeSizeAndString(t *testing.T) {
	cases := []struct {
		dt   DataType
		size int
		name string
	}{
		{Float32, 4, "fp32"},
		{Float16, 2, "fp16"},
		{BFloat16, 2, "bf16"},
		{Int8, 1, "int8"},
		{Int32, 4, "int32"},
		{Int64, 8, "int64"},
		{Bool, 1, "bool"},
	}
	for _, c := range cases {
		if got := c.dt.Size(); got != c.size {
			t.Errorf("%v.Size() = %d, want %d", c.dt, got, c.size)
		}
		if got := c.dt.String(); got != c.name {
			t.Errorf("String() = %q, want %q", got, c.name)
		}
		back, err := ParseDataType(c.name)
		if err != nil || back != c.dt {
			t.Errorf("ParseDataType(%q) = %v, %v", c.name, back, err)
		}
	}
	if _, err := ParseDataType("nope"); err == nil {
		t.Error("ParseDataType should reject unknown names")
	}
	if DTypeInvalid.Valid() {
		t.Error("DTypeInvalid must not be Valid")
	}
}

func TestShapeBasics(t *testing.T) {
	s := Shape{2, 3, 4}
	if s.NumElements() != 24 {
		t.Errorf("NumElements = %d", s.NumElements())
	}
	if s.Rank() != 3 {
		t.Errorf("Rank = %d", s.Rank())
	}
	if !s.Equal(Shape{2, 3, 4}) || s.Equal(Shape{2, 3}) || s.Equal(Shape{2, 3, 5}) {
		t.Error("Equal misbehaves")
	}
	c := s.Clone()
	c[0] = 9
	if s[0] != 2 {
		t.Error("Clone must not alias")
	}
	if Shape(nil).NumElements() != 0 {
		t.Error("nil shape should have 0 elements")
	}
	if (Shape{}).NumElements() != 1 {
		t.Error("scalar shape should have 1 element")
	}
	if !(Shape{1, 2}).Valid() || (Shape{1, 0}).Valid() || Shape(nil).Valid() {
		t.Error("Valid misbehaves")
	}
}

func TestAttrs(t *testing.T) {
	a := Attrs{
		"i":  IntAttr(3),
		"is": IntsAttr(1, 2),
		"f":  FloatAttr(0.5),
		"s":  StringAttr("x"),
	}
	if a.Int("i", 0) != 3 || a.Int("missing", 7) != 7 {
		t.Error("Int attr")
	}
	if got := a.Ints("is", nil); len(got) != 2 || got[0] != 1 {
		t.Error("Ints attr")
	}
	if a.Float("f", 0) != 0.5 || a.String("s", "") != "x" {
		t.Error("Float/String attr")
	}
	c := a.Clone()
	c["is"].Ints[0] = 99
	if a["is"].Ints[0] != 1 {
		t.Error("Clone must deep-copy int lists")
	}
}

// tinyGraph builds  in -> Relu -> mid -> Relu -> out.
func tinyGraph() *Graph {
	g := New("tiny")
	g.AddTensor(&Tensor{Name: "in", DType: Float32, Shape: Shape{1, 4}})
	g.AddTensor(&Tensor{Name: "mid", DType: Float32})
	g.AddTensor(&Tensor{Name: "out", DType: Float32})
	g.AddNode(&Node{Name: "r1", OpType: "Relu", Inputs: []string{"in"}, Outputs: []string{"mid"}})
	g.AddNode(&Node{Name: "r2", OpType: "Relu", Inputs: []string{"mid"}, Outputs: []string{"out"}})
	g.Inputs = []string{"in"}
	g.Outputs = []string{"out"}
	return g
}

func TestGraphValidateAndTopo(t *testing.T) {
	g := tinyGraph()
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0].Name != "r1" || order[1].Name != "r2" {
		t.Errorf("topo order wrong: %v", order)
	}
	if g.Producer("mid").Name != "r1" {
		t.Error("Producer(mid)")
	}
	if cs := g.Consumers("mid"); len(cs) != 1 || cs[0].Name != "r2" {
		t.Error("Consumers(mid)")
	}
	if g.Producer("in") != nil {
		t.Error("graph input must have no producer")
	}
}

func TestGraphValidateErrors(t *testing.T) {
	g := tinyGraph()
	g.AddNode(&Node{Name: "r1", OpType: "Relu", Inputs: []string{"in"}, Outputs: []string{"out2"}})
	g.AddTensor(&Tensor{Name: "out2", DType: Float32})
	if err := g.Validate(); err == nil {
		t.Error("duplicate node name should fail validation")
	}

	g = tinyGraph()
	g.Nodes[1].Inputs[0] = "ghost"
	if err := g.Validate(); err == nil {
		t.Error("unregistered input tensor should fail validation")
	}

	// Cycle: r1 consumes out, r2 produces out from mid.
	g = New("cyc")
	for _, name := range []string{"a", "b"} {
		g.AddTensor(&Tensor{Name: name, DType: Float32, Shape: Shape{1}})
	}
	g.AddNode(&Node{Name: "n1", OpType: "Relu", Inputs: []string{"b"}, Outputs: []string{"a"}})
	g.AddNode(&Node{Name: "n2", OpType: "Relu", Inputs: []string{"a"}, Outputs: []string{"b"}})
	if err := g.Validate(); err == nil {
		t.Error("cycle should fail validation")
	}
}

func TestGraphClone(t *testing.T) {
	g := tinyGraph()
	c := g.Clone()
	c.Nodes[0].Name = "zzz"
	c.Tensors["in"].Shape[0] = 99
	if g.Nodes[0].Name != "r1" || g.Tensors["in"].Shape[0] != 1 {
		t.Error("Clone must deep-copy nodes and tensors")
	}
}

func TestParamAccounting(t *testing.T) {
	g := New("p")
	g.AddTensor(&Tensor{Name: "w", DType: Float32, Shape: Shape{10, 10}, Param: true})
	g.AddTensor(&Tensor{Name: "x", DType: Float16, Shape: Shape{2, 10}})
	if g.ParamCount() != 100 {
		t.Errorf("ParamCount = %d", g.ParamCount())
	}
	if g.ParamBytes() != 400 {
		t.Errorf("ParamBytes = %d", g.ParamBytes())
	}
	if g.ActivationBytes() != 40 {
		t.Errorf("ActivationBytes = %d", g.ActivationBytes())
	}
}

func TestBroadcast(t *testing.T) {
	cases := []struct {
		a, b, want Shape
		err        bool
	}{
		{Shape{2, 3}, Shape{2, 3}, Shape{2, 3}, false},
		{Shape{2, 3}, Shape{3}, Shape{2, 3}, false},
		{Shape{2, 1, 4}, Shape{3, 1}, Shape{2, 3, 4}, false},
		{Shape{1}, Shape{5, 5}, Shape{5, 5}, false},
		{Shape{2, 3}, Shape{4}, nil, true},
	}
	for _, c := range cases {
		got, err := broadcast(c.a, c.b)
		if c.err {
			if err == nil {
				t.Errorf("broadcast(%v,%v) should error", c.a, c.b)
			}
			continue
		}
		if err != nil || !got.Equal(c.want) {
			t.Errorf("broadcast(%v,%v) = %v, %v; want %v", c.a, c.b, got, err, c.want)
		}
	}
}

func TestBroadcastProperties(t *testing.T) {
	// Broadcasting is commutative and idempotent when it succeeds.
	f := func(dims []uint8) bool {
		if len(dims) == 0 {
			dims = []uint8{1}
		}
		if len(dims) > 4 {
			dims = dims[:4]
		}
		a := make(Shape, len(dims))
		for i, d := range dims {
			a[i] = int(d%4) + 1
		}
		b := a.Clone()
		// b with some dims set to 1 still broadcasts with a -> a.
		for i := range b {
			if i%2 == 0 {
				b[i] = 1
			}
		}
		ab, err1 := broadcast(a, b)
		ba, err2 := broadcast(b, a)
		if err1 != nil || err2 != nil {
			return false
		}
		return ab.Equal(a) && ba.Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInferShapesConvPoolChain(t *testing.T) {
	g := New("cnn")
	g.AddTensor(&Tensor{Name: "x", DType: Float32, Shape: Shape{1, 3, 224, 224}})
	g.AddTensor(&Tensor{Name: "w", DType: Float32, Shape: Shape{64, 3, 7, 7}, Param: true})
	g.AddTensor(&Tensor{Name: "c1", DType: Float32})
	g.AddTensor(&Tensor{Name: "p1", DType: Float32})
	g.AddTensor(&Tensor{Name: "gap", DType: Float32})
	g.AddNode(&Node{Name: "conv", OpType: "Conv", Inputs: []string{"x", "w"}, Outputs: []string{"c1"},
		Attrs: Attrs{"strides": IntsAttr(2, 2), "pads": IntsAttr(3, 3, 3, 3), "kernel_shape": IntsAttr(7, 7)}})
	g.AddNode(&Node{Name: "pool", OpType: "MaxPool", Inputs: []string{"c1"}, Outputs: []string{"p1"},
		Attrs: Attrs{"kernel_shape": IntsAttr(3, 3), "strides": IntsAttr(2, 2), "pads": IntsAttr(1, 1, 1, 1)}})
	g.AddNode(&Node{Name: "g", OpType: "GlobalAveragePool", Inputs: []string{"p1"}, Outputs: []string{"gap"}})
	g.Inputs = []string{"x"}
	g.Outputs = []string{"gap"}
	if err := g.InferShapes(); err != nil {
		t.Fatal(err)
	}
	if !g.Tensor("c1").Shape.Equal(Shape{1, 64, 112, 112}) {
		t.Errorf("conv out = %v", g.Tensor("c1").Shape)
	}
	if !g.Tensor("p1").Shape.Equal(Shape{1, 64, 56, 56}) {
		t.Errorf("pool out = %v", g.Tensor("p1").Shape)
	}
	if !g.Tensor("gap").Shape.Equal(Shape{1, 64, 1, 1}) {
		t.Errorf("gap out = %v", g.Tensor("gap").Shape)
	}
}

func TestInferShapesMatMulBroadcast(t *testing.T) {
	g := New("mm")
	g.AddTensor(&Tensor{Name: "a", DType: Float32, Shape: Shape{8, 12, 64, 32}})
	g.AddTensor(&Tensor{Name: "b", DType: Float32, Shape: Shape{8, 12, 32, 64}})
	g.AddTensor(&Tensor{Name: "y", DType: Float32})
	g.AddNode(&Node{Name: "mm", OpType: "MatMul", Inputs: []string{"a", "b"}, Outputs: []string{"y"}})
	g.Inputs = []string{"a", "b"}
	g.Outputs = []string{"y"}
	if err := g.InferShapes(); err != nil {
		t.Fatal(err)
	}
	if !g.Tensor("y").Shape.Equal(Shape{8, 12, 64, 64}) {
		t.Errorf("matmul out = %v", g.Tensor("y").Shape)
	}
}

func TestInferShapesGemmTranspose(t *testing.T) {
	g := New("gemm")
	g.AddTensor(&Tensor{Name: "a", DType: Float16, Shape: Shape{4, 128}})
	g.AddTensor(&Tensor{Name: "w", DType: Float16, Shape: Shape{256, 128}, Param: true})
	g.AddTensor(&Tensor{Name: "bias", DType: Float16, Shape: Shape{256}, Param: true})
	g.AddTensor(&Tensor{Name: "y", DType: Float16})
	g.AddNode(&Node{Name: "fc", OpType: "Gemm", Inputs: []string{"a", "w", "bias"}, Outputs: []string{"y"},
		Attrs: Attrs{"transB": IntAttr(1)}})
	g.Inputs = []string{"a"}
	g.Outputs = []string{"y"}
	if err := g.InferShapes(); err != nil {
		t.Fatal(err)
	}
	if !g.Tensor("y").Shape.Equal(Shape{4, 256}) {
		t.Errorf("gemm out = %v", g.Tensor("y").Shape)
	}
	if g.Tensor("y").DType != Float16 {
		t.Errorf("gemm dtype = %v", g.Tensor("y").DType)
	}
}

func TestInferShapesShuffleChain(t *testing.T) {
	// The channel-shuffle pattern as exported to ONNX:
	// Shape -> Gather -> shape math -> Concat -> Reshape -> Transpose -> Reshape.
	g := New("shuffle")
	g.AddTensor(&Tensor{Name: "x", DType: Float32, Shape: Shape{2, 8, 4, 4}})
	g.AddTensor(&Tensor{Name: "shp", DType: Int64})
	g.AddTensor(&Tensor{Name: "idx0", DType: Int64, Shape: Shape{1}, Param: true, IntData: []int64{0}})
	g.AddTensor(&Tensor{Name: "n", DType: Int64})
	g.AddTensor(&Tensor{Name: "rest", DType: Int64, Shape: Shape{4}, Param: true, IntData: []int64{2, 4, 4, 4}})
	g.AddTensor(&Tensor{Name: "tgt", DType: Int64})
	g.AddTensor(&Tensor{Name: "r1", DType: Float32})
	g.AddTensor(&Tensor{Name: "tp", DType: Float32})
	g.AddTensor(&Tensor{Name: "out", DType: Float32})
	g.AddNode(&Node{Name: "shape", OpType: "Shape", Inputs: []string{"x"}, Outputs: []string{"shp"}})
	g.AddNode(&Node{Name: "gather", OpType: "Gather", Inputs: []string{"shp", "idx0"}, Outputs: []string{"n"}})
	g.AddNode(&Node{Name: "concat", OpType: "Concat", Inputs: []string{"n", "rest"}, Outputs: []string{"tgt"},
		Attrs: Attrs{"axis": IntAttr(0)}})
	g.AddNode(&Node{Name: "reshape1", OpType: "Reshape", Inputs: []string{"x", "tgt"}, Outputs: []string{"r1"}})
	g.AddNode(&Node{Name: "transp", OpType: "Transpose", Inputs: []string{"r1"}, Outputs: []string{"tp"},
		Attrs: Attrs{"perm": IntsAttr(0, 2, 1, 3, 4)}})
	g.AddNode(&Node{Name: "reshape2", OpType: "Reshape", Inputs: []string{"tp"}, Outputs: []string{"out"},
		Attrs: Attrs{"shape": IntsAttr(0, -1, 4, 4)}})
	g.Inputs = []string{"x"}
	g.Outputs = []string{"out"}
	if err := g.InferShapes(); err != nil {
		t.Fatal(err)
	}
	if !g.Tensor("r1").Shape.Equal(Shape{2, 2, 4, 4, 4}) {
		t.Errorf("reshape1 out = %v", g.Tensor("r1").Shape)
	}
	if !g.Tensor("tp").Shape.Equal(Shape{2, 4, 2, 4, 4}) {
		t.Errorf("transpose out = %v", g.Tensor("tp").Shape)
	}
	if !g.Tensor("out").Shape.Equal(Shape{2, 8, 4, 4}) {
		t.Errorf("reshape2 out = %v", g.Tensor("out").Shape)
	}
}

func TestInferShapesSliceConcatSplit(t *testing.T) {
	g := New("scs")
	g.AddTensor(&Tensor{Name: "x", DType: Float32, Shape: Shape{1, 16, 8, 8}})
	g.AddTensor(&Tensor{Name: "s1", DType: Float32})
	g.AddTensor(&Tensor{Name: "s2", DType: Float32})
	g.AddTensor(&Tensor{Name: "cat", DType: Float32})
	g.AddTensor(&Tensor{Name: "sp1", DType: Float32})
	g.AddTensor(&Tensor{Name: "sp2", DType: Float32})
	g.AddNode(&Node{Name: "sl1", OpType: "Slice", Inputs: []string{"x"}, Outputs: []string{"s1"},
		Attrs: Attrs{"starts": IntsAttr(0), "ends": IntsAttr(8), "axes": IntsAttr(1)}})
	g.AddNode(&Node{Name: "sl2", OpType: "Slice", Inputs: []string{"x"}, Outputs: []string{"s2"},
		Attrs: Attrs{"starts": IntsAttr(8), "ends": IntsAttr(16), "axes": IntsAttr(1)}})
	g.AddNode(&Node{Name: "cat", OpType: "Concat", Inputs: []string{"s1", "s2"}, Outputs: []string{"cat"},
		Attrs: Attrs{"axis": IntAttr(1)}})
	g.AddNode(&Node{Name: "split", OpType: "Split", Inputs: []string{"cat"}, Outputs: []string{"sp1", "sp2"},
		Attrs: Attrs{"axis": IntAttr(1)}})
	g.Inputs = []string{"x"}
	g.Outputs = []string{"sp1", "sp2"}
	if err := g.InferShapes(); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"s1", "s2", "sp1", "sp2"} {
		if !g.Tensor(name).Shape.Equal(Shape{1, 8, 8, 8}) {
			t.Errorf("%s = %v", name, g.Tensor(name).Shape)
		}
	}
	if !g.Tensor("cat").Shape.Equal(Shape{1, 16, 8, 8}) {
		t.Errorf("cat = %v", g.Tensor("cat").Shape)
	}
}

func TestInferShapesReduceAndResize(t *testing.T) {
	g := New("rr")
	g.AddTensor(&Tensor{Name: "x", DType: Float16, Shape: Shape{2, 32, 16, 16}})
	g.AddTensor(&Tensor{Name: "m", DType: Float16})
	g.AddTensor(&Tensor{Name: "u", DType: Float16})
	g.AddNode(&Node{Name: "rm", OpType: "ReduceMean", Inputs: []string{"x"}, Outputs: []string{"m"},
		Attrs: Attrs{"axes": IntsAttr(2, 3), "keepdims": IntAttr(1)}})
	g.AddNode(&Node{Name: "up", OpType: "Resize", Inputs: []string{"x"}, Outputs: []string{"u"},
		Attrs: Attrs{"scales": IntsAttr(1, 1, 2, 2)}})
	g.Inputs = []string{"x"}
	g.Outputs = []string{"m", "u"}
	if err := g.InferShapes(); err != nil {
		t.Fatal(err)
	}
	if !g.Tensor("m").Shape.Equal(Shape{2, 32, 1, 1}) {
		t.Errorf("reduce = %v", g.Tensor("m").Shape)
	}
	if !g.Tensor("u").Shape.Equal(Shape{2, 32, 32, 32}) {
		t.Errorf("resize = %v", g.Tensor("u").Shape)
	}
}

func TestInferShapesGatherEmbedding(t *testing.T) {
	g := New("emb")
	g.AddTensor(&Tensor{Name: "ids", DType: Int64, Shape: Shape{4, 128}})
	g.AddTensor(&Tensor{Name: "table", DType: Float32, Shape: Shape{30522, 768}, Param: true})
	g.AddTensor(&Tensor{Name: "emb", DType: Float32})
	g.AddNode(&Node{Name: "g", OpType: "Gather", Inputs: []string{"table", "ids"}, Outputs: []string{"emb"}})
	g.Inputs = []string{"ids"}
	g.Outputs = []string{"emb"}
	if err := g.InferShapes(); err != nil {
		t.Fatal(err)
	}
	if !g.Tensor("emb").Shape.Equal(Shape{4, 128, 768}) {
		t.Errorf("embedding out = %v", g.Tensor("emb").Shape)
	}
}

func TestInferShapesErrors(t *testing.T) {
	g := New("bad")
	g.AddTensor(&Tensor{Name: "a", DType: Float32, Shape: Shape{2, 3}})
	g.AddTensor(&Tensor{Name: "b", DType: Float32, Shape: Shape{4, 5}})
	g.AddTensor(&Tensor{Name: "y", DType: Float32})
	g.AddNode(&Node{Name: "mm", OpType: "MatMul", Inputs: []string{"a", "b"}, Outputs: []string{"y"}})
	if err := g.InferShapes(); err == nil {
		t.Error("MatMul dim mismatch should error")
	}

	g2 := New("unknown")
	g2.AddTensor(&Tensor{Name: "a", DType: Float32, Shape: Shape{1}})
	g2.AddTensor(&Tensor{Name: "y", DType: Float32})
	g2.AddNode(&Node{Name: "x", OpType: "FancyOp", Inputs: []string{"a"}, Outputs: []string{"y"}})
	if err := g2.InferShapes(); err == nil {
		t.Error("unknown op should error")
	}
}

func TestInferReshapeInvalid(t *testing.T) {
	g := New("rs")
	g.AddTensor(&Tensor{Name: "x", DType: Float32, Shape: Shape{2, 6}})
	g.AddTensor(&Tensor{Name: "y", DType: Float32})
	g.AddNode(&Node{Name: "r", OpType: "Reshape", Inputs: []string{"x"}, Outputs: []string{"y"},
		Attrs: Attrs{"shape": IntsAttr(5, -1)}})
	if err := g.InferShapes(); err == nil {
		t.Error("Reshape with non-divisible -1 should error")
	}
}

func TestPoolDim(t *testing.T) {
	// 224, k=7, s=2, pad 3+3 -> 112
	if got := poolDim(224, 7, 2, 3, 3, 1, false); got != 112 {
		t.Errorf("poolDim = %d", got)
	}
	// ceil mode rounds up
	if got := poolDim(7, 3, 2, 0, 0, 1, true); got != 3 {
		t.Errorf("poolDim ceil = %d", got)
	}
	if got := poolDim(7, 3, 2, 0, 0, 1, false); got != 3 {
		t.Errorf("poolDim floor = %d", got)
	}
	// dilation widens the window
	if got := poolDim(32, 3, 1, 0, 0, 2, false); got != 28 {
		t.Errorf("poolDim dilated = %d", got)
	}
}

func TestReInferWithNewBatch(t *testing.T) {
	g := New("rebatch")
	g.AddTensor(&Tensor{Name: "x", DType: Float32, Shape: Shape{1, 3, 8, 8}})
	g.AddTensor(&Tensor{Name: "w", DType: Float32, Shape: Shape{4, 3, 3, 3}, Param: true})
	g.AddTensor(&Tensor{Name: "y", DType: Float32})
	g.AddNode(&Node{Name: "c", OpType: "Conv", Inputs: []string{"x", "w"}, Outputs: []string{"y"},
		Attrs: Attrs{"pads": IntsAttr(1, 1, 1, 1), "kernel_shape": IntsAttr(3, 3)}})
	g.Inputs = []string{"x"}
	g.Outputs = []string{"y"}
	if err := g.InferShapes(); err != nil {
		t.Fatal(err)
	}
	if g.Tensor("y").Shape[0] != 1 {
		t.Fatal("batch 1 expected")
	}
	g.Tensor("x").Shape[0] = 32
	if err := g.InferShapes(); err != nil {
		t.Fatal(err)
	}
	if g.Tensor("y").Shape[0] != 32 {
		t.Errorf("re-inference batch = %d, want 32", g.Tensor("y").Shape[0])
	}
}
