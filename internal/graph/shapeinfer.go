package graph

import (
	"fmt"
)

// InferShapes runs ONNX-style shape (and partial value) inference over the
// graph. Graph inputs and parameter tensors must already carry shapes;
// every other tensor's shape and data type is derived in topological
// order. Small constant integer tensors (Shape results, Gather indices,
// shape-concat chains) have their *values* propagated so that
// tensor-driven Reshape/Expand work like real ONNX exports.
//
// InferShapes may be re-run after changing the graph input shapes (e.g.
// a different batch size); it overwrites previously inferred shapes.
func (g *Graph) InferShapes() error {
	order, err := g.TopoSort()
	if err != nil {
		return err
	}
	ctx := &inferCtx{g: g, values: map[string][]int64{}}
	// Seed known values from constant parameter tensors.
	for _, t := range g.Tensors {
		if t.IntData != nil {
			ctx.values[t.Name] = t.IntData
		}
	}
	for _, n := range order {
		if err := ctx.inferNode(n); err != nil {
			return fmt.Errorf("shape inference at node %q (%s): %w", n.Name, n.OpType, err)
		}
	}
	return nil
}

type inferCtx struct {
	g      *Graph
	values map[string][]int64
}

func (c *inferCtx) in(n *Node, i int) (*Tensor, error) {
	if i >= len(n.Inputs) {
		return nil, fmt.Errorf("missing input %d", i)
	}
	t := c.g.Tensors[n.Inputs[i]]
	if t == nil {
		return nil, fmt.Errorf("input tensor %q not registered", n.Inputs[i])
	}
	if t.Shape == nil {
		return nil, fmt.Errorf("input tensor %q has unknown shape", n.Inputs[i])
	}
	return t, nil
}

// setOut assigns shape/dtype to output i of node n.
func (c *inferCtx) setOut(n *Node, i int, shape Shape, dt DataType) error {
	if i >= len(n.Outputs) {
		return fmt.Errorf("missing output %d", i)
	}
	t := c.g.Tensors[n.Outputs[i]]
	if t == nil {
		return fmt.Errorf("output tensor %q not registered", n.Outputs[i])
	}
	t.Shape = shape
	t.DType = dt
	return nil
}

// broadcast implements numpy-style multidirectional broadcasting.
func broadcast(a, b Shape) (Shape, error) {
	ra, rb := len(a), len(b)
	r := ra
	if rb > r {
		r = rb
	}
	out := make(Shape, r)
	for i := 0; i < r; i++ {
		da, db := 1, 1
		if i >= r-ra {
			da = a[i-(r-ra)]
		}
		if i >= r-rb {
			db = b[i-(r-rb)]
		}
		switch {
		case da == db:
			out[i] = da
		case da == 1:
			out[i] = db
		case db == 1:
			out[i] = da
		default:
			return nil, fmt.Errorf("cannot broadcast %v with %v", a, b)
		}
	}
	return out, nil
}

// normAxis resolves a possibly-negative axis attribute against a rank
// and rejects out-of-range values — adversarial model files carry
// arbitrary axes, which must error instead of indexing out of range.
func normAxis(op string, axis, rank int) (int, error) {
	resolved := axis
	if resolved < 0 {
		resolved += rank
	}
	if resolved < 0 || resolved >= rank {
		return 0, fmt.Errorf("%s: axis %d out of range for rank %d", op, axis, rank)
	}
	return resolved, nil
}

// spatial2D validates the strides/pads/dilations attributes of a 2-D
// conv/pool window. Adversarial model files can carry short lists or
// non-positive strides, which would otherwise index out of range or
// divide by zero in poolDim.
func spatial2D(n *Node) (strides, pads, dil []int, err error) {
	strides = n.Attrs.Ints("strides", []int{1, 1})
	pads = n.Attrs.Ints("pads", []int{0, 0, 0, 0})
	dil = n.Attrs.Ints("dilations", []int{1, 1})
	if len(strides) != 2 || strides[0] <= 0 || strides[1] <= 0 {
		return nil, nil, nil, fmt.Errorf("%s: invalid strides %v", n.OpType, strides)
	}
	if len(pads) != 4 {
		return nil, nil, nil, fmt.Errorf("%s: invalid pads %v", n.OpType, pads)
	}
	if len(dil) != 2 || dil[0] <= 0 || dil[1] <= 0 {
		return nil, nil, nil, fmt.Errorf("%s: invalid dilations %v", n.OpType, dil)
	}
	return strides, pads, dil, nil
}

// poolDim computes one spatial output dimension of a conv/pool window.
func poolDim(in, k, stride, padBegin, padEnd, dilation int, ceilMode bool) int {
	eff := (k-1)*dilation + 1
	num := in + padBegin + padEnd - eff
	if num < 0 {
		return 0
	}
	if ceilMode {
		return (num+stride-1)/stride + 1
	}
	return num/stride + 1
}

// elementwiseUnary lists op types whose output shape and dtype equal the
// first input's.
var elementwiseUnary = map[string]bool{
	"Relu": true, "LeakyRelu": true, "Sigmoid": true, "Tanh": true,
	"Erf": true, "Sqrt": true, "Exp": true, "Log": true, "Neg": true,
	"Abs": true, "Clip": true, "HardSigmoid": true, "HardSwish": true,
	"Gelu": true, "Identity": true, "Softmax": true, "LogSoftmax": true,
	"Reciprocal": true, "Floor": true, "Round": true, "Elu": true,
	"Softplus": true, "Mish": true, "Silu": true, "Dropout": true,
	"Sin": true, "Cos": true,
}

// elementwiseBinary lists broadcasted binary op types (dtype follows the
// first input unless noted in inferNode).
var elementwiseBinary = map[string]bool{
	"Add": true, "Sub": true, "Mul": true, "Div": true, "Pow": true,
	"Min": true, "Max": true, "Mod": true, "PRelu": true,
	"Equal": true, "Greater": true, "Less": true, "GreaterOrEqual": true,
	"LessOrEqual": true, "And": true, "Or": true,
}

var comparisonOps = map[string]bool{
	"Equal": true, "Greater": true, "Less": true,
	"GreaterOrEqual": true, "LessOrEqual": true,
}

func (c *inferCtx) inferNode(n *Node) error {
	switch {
	case elementwiseUnary[n.OpType]:
		x, err := c.in(n, 0)
		if err != nil {
			return err
		}
		return c.setOut(n, 0, x.Shape.Clone(), x.DType)

	case elementwiseBinary[n.OpType]:
		a, err := c.in(n, 0)
		if err != nil {
			return err
		}
		b, err := c.in(n, 1)
		if err != nil {
			return err
		}
		out, err := broadcast(a.Shape, b.Shape)
		if err != nil {
			return err
		}
		dt := a.DType
		if comparisonOps[n.OpType] {
			dt = Bool
		}
		// Propagate constant integer values through arithmetic on
		// shape-computation chains.
		if va, ok := c.values[n.Inputs[0]]; ok {
			if vb, ok2 := c.values[n.Inputs[1]]; ok2 && len(va) == len(vb) {
				if v := evalIntBinary(n.OpType, va, vb); v != nil {
					c.values[n.Outputs[0]] = v
				}
			}
		}
		return c.setOut(n, 0, out, dt)
	}

	switch n.OpType {
	case "Constant":
		return c.inferConstant(n)
	case "Conv":
		return c.inferConv(n)
	case "ConvTranspose":
		return c.inferConvTranspose(n)
	case "MaxPool", "AveragePool":
		return c.inferPool(n)
	case "GlobalAveragePool", "GlobalMaxPool":
		x, err := c.in(n, 0)
		if err != nil {
			return err
		}
		out := x.Shape.Clone()
		for i := 2; i < len(out); i++ {
			out[i] = 1
		}
		return c.setOut(n, 0, out, x.DType)
	case "BatchNormalization", "InstanceNormalization",
		"GroupNormalization", "LayerNormalization", "LpNormalization":
		x, err := c.in(n, 0)
		if err != nil {
			return err
		}
		return c.setOut(n, 0, x.Shape.Clone(), x.DType)
	case "MatMul":
		return c.inferMatMul(n)
	case "Gemm":
		return c.inferGemm(n)
	case "Transpose":
		return c.inferTranspose(n)
	case "Reshape":
		return c.inferReshape(n)
	case "Flatten":
		return c.inferFlatten(n)
	case "Concat":
		return c.inferConcat(n)
	case "Split":
		return c.inferSplit(n)
	case "Slice":
		return c.inferSlice(n)
	case "Squeeze":
		return c.inferSqueeze(n)
	case "Unsqueeze":
		return c.inferUnsqueeze(n)
	case "Gather":
		return c.inferGather(n)
	case "Shape":
		return c.inferShapeOp(n)
	case "Expand":
		return c.inferExpand(n)
	case "Pad":
		return c.inferPad(n)
	case "ReduceMean", "ReduceSum", "ReduceMax", "ReduceMin", "ReduceProd":
		return c.inferReduce(n)
	case "Einsum":
		return c.inferEinsum(n)
	case "ArgMax", "ArgMin":
		return c.inferArgReduce(n)
	case "TopK":
		return c.inferTopK(n)
	case "Not":
		x, err := c.in(n, 0)
		if err != nil {
			return err
		}
		return c.setOut(n, 0, x.Shape.Clone(), Bool)
	case "Sum", "Mean":
		return c.inferVariadicElementwise(n)
	case "Resize", "Upsample":
		return c.inferResize(n)
	case "Cast":
		return c.inferCast(n)
	case "Where":
		return c.inferWhere(n)
	case "ConstantOfShape":
		return c.inferConstantOfShape(n)
	case "Tile":
		return c.inferTile(n)
	case "ReduceL2":
		return c.inferReduce(n)
	case "DequantizeLinear", "QuantizeLinear":
		x, err := c.in(n, 0)
		if err != nil {
			return err
		}
		dt := x.DType
		if n.OpType == "QuantizeLinear" {
			dt = Int8
		} else {
			dt = Float32
		}
		return c.setOut(n, 0, x.Shape.Clone(), dt)
	}
	return fmt.Errorf("unsupported op type %q", n.OpType)
}

// inferConstant handles ONNX Constant nodes: "value_ints" yields an
// Int64 vector with a known (propagated) value; "value_float"/"value_floats"
// yield Float32 tensors. Real PyTorch exports emit these for Reshape
// targets, Slice bounds and scalar multipliers.
func (c *inferCtx) inferConstant(n *Node) error {
	if v, ok := n.Attrs["value_ints"]; ok && v.Kind == AttrInts {
		vals := make([]int64, len(v.Ints))
		for i, x := range v.Ints {
			vals[i] = int64(x)
		}
		c.values[n.Outputs[0]] = vals
		return c.setOut(n, 0, Shape{len(vals)}, Int64)
	}
	if _, ok := n.Attrs["value_float"]; ok {
		return c.setOut(n, 0, Shape{1}, Float32)
	}
	if v, ok := n.Attrs["value_floats"]; ok && v.Kind == AttrInts {
		return c.setOut(n, 0, Shape{len(v.Ints)}, Float32)
	}
	return fmt.Errorf("Constant node without value_ints/value_float attribute")
}

func evalIntBinary(op string, a, b []int64) []int64 {
	out := make([]int64, len(a))
	for i := range a {
		switch op {
		case "Add":
			out[i] = a[i] + b[i]
		case "Sub":
			out[i] = a[i] - b[i]
		case "Mul":
			out[i] = a[i] * b[i]
		case "Div":
			if b[i] == 0 {
				return nil
			}
			out[i] = a[i] / b[i]
		default:
			return nil
		}
	}
	return out
}

func (c *inferCtx) inferConv(n *Node) error {
	x, err := c.in(n, 0)
	if err != nil {
		return err
	}
	w, err := c.in(n, 1)
	if err != nil {
		return err
	}
	if x.Shape.Rank() != 4 || w.Shape.Rank() != 4 {
		return fmt.Errorf("Conv expects 4-D input and weight, got %v and %v", x.Shape, w.Shape)
	}
	group := n.Attrs.Int("group", 1)
	if group <= 0 {
		return fmt.Errorf("Conv: invalid group %d", group)
	}
	strides, pads, dil, err := spatial2D(n)
	if err != nil {
		return err
	}
	kh, kw := w.Shape[2], w.Shape[3]
	if cinPerGroup := w.Shape[1]; cinPerGroup*group != x.Shape[1] {
		return fmt.Errorf("Conv channel mismatch: input C=%d, weight Cin/g=%d, group=%d", x.Shape[1], cinPerGroup, group)
	}
	oh := poolDim(x.Shape[2], kh, strides[0], pads[0], pads[2], dil[0], false)
	ow := poolDim(x.Shape[3], kw, strides[1], pads[1], pads[3], dil[1], false)
	out := Shape{x.Shape[0], w.Shape[0], oh, ow}
	return c.setOut(n, 0, out, x.DType)
}

func (c *inferCtx) inferConvTranspose(n *Node) error {
	x, err := c.in(n, 0)
	if err != nil {
		return err
	}
	w, err := c.in(n, 1)
	if err != nil {
		return err
	}
	if x.Shape.Rank() != 4 || w.Shape.Rank() != 4 {
		return fmt.Errorf("ConvTranspose expects 4-D input and weight, got %v and %v", x.Shape, w.Shape)
	}
	group := n.Attrs.Int("group", 1)
	if group <= 0 {
		return fmt.Errorf("ConvTranspose: invalid group %d", group)
	}
	strides, pads, _, err := spatial2D(n)
	if err != nil {
		return err
	}
	kh, kw := w.Shape[2], w.Shape[3]
	oh := (x.Shape[2]-1)*strides[0] + kh - pads[0] - pads[2]
	ow := (x.Shape[3]-1)*strides[1] + kw - pads[1] - pads[3]
	out := Shape{x.Shape[0], w.Shape[1] * group, oh, ow}
	return c.setOut(n, 0, out, x.DType)
}

func (c *inferCtx) inferPool(n *Node) error {
	x, err := c.in(n, 0)
	if err != nil {
		return err
	}
	if x.Shape.Rank() != 4 {
		return fmt.Errorf("%s expects 4-D input, got %v", n.OpType, x.Shape)
	}
	k := n.Attrs.Ints("kernel_shape", nil)
	if len(k) != 2 {
		return fmt.Errorf("%s requires 2-D kernel_shape", n.OpType)
	}
	strides, pads, _, err := spatial2D(n)
	if err != nil {
		return err
	}
	ceil := n.Attrs.Int("ceil_mode", 0) == 1
	oh := poolDim(x.Shape[2], k[0], strides[0], pads[0], pads[2], 1, ceil)
	ow := poolDim(x.Shape[3], k[1], strides[1], pads[1], pads[3], 1, ceil)
	out := Shape{x.Shape[0], x.Shape[1], oh, ow}
	return c.setOut(n, 0, out, x.DType)
}

func (c *inferCtx) inferMatMul(n *Node) error {
	a, err := c.in(n, 0)
	if err != nil {
		return err
	}
	b, err := c.in(n, 1)
	if err != nil {
		return err
	}
	sa, sb := a.Shape, b.Shape
	if len(sa) < 1 || len(sb) < 1 {
		return fmt.Errorf("MatMul on scalar")
	}
	// Promote 1-D operands per numpy semantics.
	promA, promB := false, false
	if len(sa) == 1 {
		sa = Shape{1, sa[0]}
		promA = true
	}
	if len(sb) == 1 {
		sb = Shape{sb[0], 1}
		promB = true
	}
	k1 := sa[len(sa)-1]
	k2 := sb[len(sb)-2]
	if k1 != k2 {
		return fmt.Errorf("MatMul inner dims mismatch: %v x %v", a.Shape, b.Shape)
	}
	battA, battB := sa[:len(sa)-2], sb[:len(sb)-2]
	batch, err := broadcast(Shape(battA), Shape(battB))
	if err != nil {
		return err
	}
	out := append(batch.Clone(), sa[len(sa)-2], sb[len(sb)-1])
	if promA {
		out = append(out[:len(out)-2], out[len(out)-1])
	}
	if promB {
		out = out[:len(out)-1]
	}
	return c.setOut(n, 0, out, a.DType)
}

func (c *inferCtx) inferGemm(n *Node) error {
	a, err := c.in(n, 0)
	if err != nil {
		return err
	}
	b, err := c.in(n, 1)
	if err != nil {
		return err
	}
	if a.Shape.Rank() != 2 || b.Shape.Rank() != 2 {
		return fmt.Errorf("Gemm expects 2-D operands, got %v and %v", a.Shape, b.Shape)
	}
	transA := n.Attrs.Int("transA", 0) == 1
	transB := n.Attrs.Int("transB", 0) == 1
	m, ka := a.Shape[0], a.Shape[1]
	if transA {
		m, ka = ka, m
	}
	kb, nn := b.Shape[0], b.Shape[1]
	if transB {
		kb, nn = nn, kb
	}
	if ka != kb {
		return fmt.Errorf("Gemm inner dims mismatch: %v x %v (transA=%v transB=%v)", a.Shape, b.Shape, transA, transB)
	}
	return c.setOut(n, 0, Shape{m, nn}, a.DType)
}

func (c *inferCtx) inferTranspose(n *Node) error {
	x, err := c.in(n, 0)
	if err != nil {
		return err
	}
	perm := n.Attrs.Ints("perm", nil)
	r := x.Shape.Rank()
	if perm == nil {
		perm = make([]int, r)
		for i := range perm {
			perm[i] = r - 1 - i
		}
	}
	if len(perm) != r {
		return fmt.Errorf("Transpose perm rank %d != input rank %d", len(perm), r)
	}
	out := make(Shape, r)
	for i, p := range perm {
		if p < 0 || p >= r {
			return fmt.Errorf("Transpose perm entry %d out of range for rank %d", p, r)
		}
		out[i] = x.Shape[p]
	}
	return c.setOut(n, 0, out, x.DType)
}

// reshapeTarget resolves the target shape for Reshape/Expand-style ops:
// from the "shape" attribute if present, otherwise from the known value of
// the second input tensor.
func (c *inferCtx) reshapeTarget(n *Node) ([]int, error) {
	if tgt := n.Attrs.Ints("shape", nil); tgt != nil {
		return tgt, nil
	}
	if len(n.Inputs) >= 2 {
		if v, ok := c.values[n.Inputs[1]]; ok {
			out := make([]int, len(v))
			for i, x := range v {
				out[i] = int(x)
			}
			return out, nil
		}
		return nil, fmt.Errorf("shape input %q has no known value", n.Inputs[1])
	}
	return nil, fmt.Errorf("no shape attribute or shape input")
}

func (c *inferCtx) inferReshape(n *Node) error {
	x, err := c.in(n, 0)
	if err != nil {
		return err
	}
	tgt, err := c.reshapeTarget(n)
	if err != nil {
		return err
	}
	total := x.Shape.NumElements()
	out := make(Shape, len(tgt))
	inferIdx := -1
	known := int64(1)
	for i, d := range tgt {
		switch {
		case d == -1:
			if inferIdx >= 0 {
				return fmt.Errorf("Reshape with multiple -1 dims")
			}
			inferIdx = i
		case d == 0:
			if i >= x.Shape.Rank() {
				return fmt.Errorf("Reshape dim 0 at axis %d beyond input rank", i)
			}
			out[i] = x.Shape[i]
			known *= int64(out[i])
		default:
			out[i] = d
			known *= int64(d)
		}
	}
	if inferIdx >= 0 {
		if known == 0 || total%known != 0 {
			return fmt.Errorf("Reshape cannot infer dim: %d elements into %v", total, tgt)
		}
		out[inferIdx] = int(total / known)
	}
	if out.NumElements() != total {
		return fmt.Errorf("Reshape element count mismatch: %v (%d) -> %v (%d)", x.Shape, total, out, out.NumElements())
	}
	return c.setOut(n, 0, out, x.DType)
}

func (c *inferCtx) inferFlatten(n *Node) error {
	x, err := c.in(n, 0)
	if err != nil {
		return err
	}
	axis := n.Attrs.Int("axis", 1)
	if axis < 0 {
		axis += x.Shape.Rank()
	}
	d0, d1 := int64(1), int64(1)
	for i, d := range x.Shape {
		if i < axis {
			d0 *= int64(d)
		} else {
			d1 *= int64(d)
		}
	}
	return c.setOut(n, 0, Shape{int(d0), int(d1)}, x.DType)
}

func (c *inferCtx) inferConcat(n *Node) error {
	if len(n.Inputs) == 0 {
		return fmt.Errorf("Concat with no inputs")
	}
	first, err := c.in(n, 0)
	if err != nil {
		return err
	}
	axis, err := normAxis("Concat", n.Attrs.Int("axis", 0), first.Shape.Rank())
	if err != nil {
		return err
	}
	out := first.Shape.Clone()
	allKnown := true
	var vals []int64
	if v, ok := c.values[n.Inputs[0]]; ok {
		vals = append(vals, v...)
	} else {
		allKnown = false
	}
	for i := 1; i < len(n.Inputs); i++ {
		t, err := c.in(n, i)
		if err != nil {
			return err
		}
		if t.Shape.Rank() != out.Rank() {
			return fmt.Errorf("Concat rank mismatch: %v vs %v", out, t.Shape)
		}
		for d := range out {
			if d != axis && t.Shape[d] != out[d] {
				return fmt.Errorf("Concat dim %d mismatch: %v vs %v", d, out, t.Shape)
			}
		}
		out[axis] += t.Shape[axis]
		if v, ok := c.values[n.Inputs[i]]; ok {
			vals = append(vals, v...)
		} else {
			allKnown = false
		}
	}
	if allKnown && out.Rank() == 1 {
		c.values[n.Outputs[0]] = vals
	}
	return c.setOut(n, 0, out, first.DType)
}

func (c *inferCtx) inferSplit(n *Node) error {
	x, err := c.in(n, 0)
	if err != nil {
		return err
	}
	axis, err := normAxis("Split", n.Attrs.Int("axis", 0), x.Shape.Rank())
	if err != nil {
		return err
	}
	split := n.Attrs.Ints("split", nil)
	if split == nil {
		parts := len(n.Outputs)
		if parts == 0 || x.Shape[axis]%parts != 0 {
			return fmt.Errorf("Split cannot evenly divide dim %d (%d) into %d outputs", axis, x.Shape[axis], parts)
		}
		split = make([]int, parts)
		for i := range split {
			split[i] = x.Shape[axis] / parts
		}
	}
	if len(split) != len(n.Outputs) {
		return fmt.Errorf("Split sizes (%d) != outputs (%d)", len(split), len(n.Outputs))
	}
	sum := 0
	for i, s := range split {
		out := x.Shape.Clone()
		out[axis] = s
		sum += s
		if err := c.setOut(n, i, out, x.DType); err != nil {
			return err
		}
	}
	if sum != x.Shape[axis] {
		return fmt.Errorf("Split sizes sum to %d, dim is %d", sum, x.Shape[axis])
	}
	return nil
}

func (c *inferCtx) inferSlice(n *Node) error {
	x, err := c.in(n, 0)
	if err != nil {
		return err
	}
	starts := n.Attrs.Ints("starts", nil)
	ends := n.Attrs.Ints("ends", nil)
	axes := n.Attrs.Ints("axes", nil)
	steps := n.Attrs.Ints("steps", nil)
	// Opset >= 10 form: starts/ends/axes/steps as (constant) inputs.
	intsFromInput := func(i int) []int {
		if i >= len(n.Inputs) {
			return nil
		}
		v, ok := c.values[n.Inputs[i]]
		if !ok {
			return nil
		}
		out := make([]int, len(v))
		for j, x := range v {
			out[j] = int(x)
		}
		return out
	}
	if starts == nil {
		starts = intsFromInput(1)
	}
	if ends == nil {
		ends = intsFromInput(2)
	}
	if axes == nil && len(n.Inputs) > 3 {
		axes = intsFromInput(3)
	}
	if steps == nil && len(n.Inputs) > 4 {
		steps = intsFromInput(4)
	}
	if starts == nil || ends == nil {
		return fmt.Errorf("Slice requires starts/ends (attributes or constant inputs)")
	}
	if axes == nil {
		axes = make([]int, len(starts))
		for i := range axes {
			axes[i] = i
		}
	}
	out := x.Shape.Clone()
	for i, ax := range axes {
		if ax < 0 {
			ax += x.Shape.Rank()
		}
		dim := x.Shape[ax]
		st, en := starts[i], ends[i]
		step := 1
		if steps != nil {
			step = steps[i]
		}
		if st < 0 {
			st += dim
		}
		if en < 0 {
			en += dim
		}
		if en > dim {
			en = dim
		}
		if st > dim {
			st = dim
		}
		sz := 0
		if step > 0 && en > st {
			sz = (en - st + step - 1) / step
		}
		out[ax] = sz
	}
	// Value propagation for 1-D int tensors.
	if v, ok := c.values[n.Inputs[0]]; ok && x.Shape.Rank() == 1 && len(axes) == 1 && (steps == nil || steps[0] == 1) {
		st, en := starts[0], ends[0]
		if st < 0 {
			st += len(v)
		}
		if en < 0 {
			en += len(v)
		}
		if en > len(v) {
			en = len(v)
		}
		if st >= 0 && st <= en {
			c.values[n.Outputs[0]] = v[st:en]
		}
	}
	return c.setOut(n, 0, out, x.DType)
}

func (c *inferCtx) inferSqueeze(n *Node) error {
	x, err := c.in(n, 0)
	if err != nil {
		return err
	}
	axes := n.Attrs.Ints("axes", nil)
	drop := map[int]bool{}
	if axes == nil {
		for i, d := range x.Shape {
			if d == 1 {
				drop[i] = true
			}
		}
	} else {
		for _, a := range axes {
			if a < 0 {
				a += x.Shape.Rank()
			}
			drop[a] = true
		}
	}
	var out Shape
	for i, d := range x.Shape {
		if !drop[i] {
			out = append(out, d)
		}
	}
	if out == nil {
		out = Shape{}
	}
	if v, ok := c.values[n.Inputs[0]]; ok {
		c.values[n.Outputs[0]] = v
	}
	return c.setOut(n, 0, out, x.DType)
}

func (c *inferCtx) inferUnsqueeze(n *Node) error {
	x, err := c.in(n, 0)
	if err != nil {
		return err
	}
	axes := n.Attrs.Ints("axes", nil)
	if axes == nil {
		return fmt.Errorf("Unsqueeze requires axes")
	}
	r := x.Shape.Rank() + len(axes)
	ins := map[int]bool{}
	for _, a := range axes {
		a, err := normAxis("Unsqueeze", a, r)
		if err != nil {
			return err
		}
		ins[a] = true
	}
	if len(ins) != len(axes) {
		return fmt.Errorf("Unsqueeze: duplicate axes %v", axes)
	}
	out := make(Shape, 0, r)
	src := 0
	for i := 0; i < r; i++ {
		if ins[i] {
			out = append(out, 1)
		} else {
			out = append(out, x.Shape[src])
			src++
		}
	}
	if v, ok := c.values[n.Inputs[0]]; ok {
		c.values[n.Outputs[0]] = v
	}
	return c.setOut(n, 0, out, x.DType)
}

func (c *inferCtx) inferGather(n *Node) error {
	data, err := c.in(n, 0)
	if err != nil {
		return err
	}
	idx, err := c.in(n, 1)
	if err != nil {
		return err
	}
	axis, err := normAxis("Gather", n.Attrs.Int("axis", 0), data.Shape.Rank())
	if err != nil {
		return err
	}
	out := make(Shape, 0, data.Shape.Rank()-1+idx.Shape.Rank())
	out = append(out, data.Shape[:axis]...)
	out = append(out, idx.Shape...)
	out = append(out, data.Shape[axis+1:]...)
	// Value propagation: gathering from a known 1-D value with known
	// scalar/1-D indices.
	if v, ok := c.values[n.Inputs[0]]; ok && axis == 0 {
		if iv, ok2 := c.values[n.Inputs[1]]; ok2 {
			res := make([]int64, 0, len(iv))
			okAll := true
			for _, i := range iv {
				if i < 0 {
					i += int64(len(v))
				}
				if i < 0 || int(i) >= len(v) {
					okAll = false
					break
				}
				res = append(res, v[i])
			}
			if okAll {
				c.values[n.Outputs[0]] = res
			}
		}
	}
	return c.setOut(n, 0, out, data.DType)
}

func (c *inferCtx) inferShapeOp(n *Node) error {
	x, err := c.in(n, 0)
	if err != nil {
		return err
	}
	v := make([]int64, x.Shape.Rank())
	for i, d := range x.Shape {
		v[i] = int64(d)
	}
	c.values[n.Outputs[0]] = v
	return c.setOut(n, 0, Shape{x.Shape.Rank()}, Int64)
}

func (c *inferCtx) inferExpand(n *Node) error {
	x, err := c.in(n, 0)
	if err != nil {
		return err
	}
	tgt, err := c.reshapeTarget(n)
	if err != nil {
		return err
	}
	out, err := broadcast(x.Shape, Shape(tgt))
	if err != nil {
		return err
	}
	return c.setOut(n, 0, out, x.DType)
}

func (c *inferCtx) inferPad(n *Node) error {
	x, err := c.in(n, 0)
	if err != nil {
		return err
	}
	pads := n.Attrs.Ints("pads", nil)
	r := x.Shape.Rank()
	if len(pads) != 2*r {
		return fmt.Errorf("Pad requires %d pad values, got %d", 2*r, len(pads))
	}
	out := x.Shape.Clone()
	for i := 0; i < r; i++ {
		out[i] += pads[i] + pads[r+i]
	}
	return c.setOut(n, 0, out, x.DType)
}

func (c *inferCtx) inferReduce(n *Node) error {
	x, err := c.in(n, 0)
	if err != nil {
		return err
	}
	axes := n.Attrs.Ints("axes", nil)
	keep := n.Attrs.Int("keepdims", 1) == 1
	if axes == nil {
		if keep {
			out := make(Shape, x.Shape.Rank())
			for i := range out {
				out[i] = 1
			}
			return c.setOut(n, 0, out, x.DType)
		}
		return c.setOut(n, 0, Shape{}, x.DType)
	}
	red := map[int]bool{}
	for _, a := range axes {
		if a < 0 {
			a += x.Shape.Rank()
		}
		red[a] = true
	}
	out := make(Shape, 0, x.Shape.Rank())
	for i, d := range x.Shape {
		switch {
		case red[i] && keep:
			out = append(out, 1)
		case red[i]:
		default:
			out = append(out, d)
		}
	}
	return c.setOut(n, 0, out, x.DType)
}

func (c *inferCtx) inferResize(n *Node) error {
	x, err := c.in(n, 0)
	if err != nil {
		return err
	}
	scales := n.Attrs.Ints("scales", nil)
	if scales == nil {
		return fmt.Errorf("Resize requires integer scales attribute")
	}
	if len(scales) != x.Shape.Rank() {
		return fmt.Errorf("Resize scales rank %d != input rank %d", len(scales), x.Shape.Rank())
	}
	out := make(Shape, x.Shape.Rank())
	for i := range out {
		out[i] = x.Shape[i] * scales[i]
	}
	return c.setOut(n, 0, out, x.DType)
}

func (c *inferCtx) inferCast(n *Node) error {
	x, err := c.in(n, 0)
	if err != nil {
		return err
	}
	to := n.Attrs.String("to", "")
	dt, err := ParseDataType(to)
	if err != nil {
		return fmt.Errorf("Cast: %w", err)
	}
	if v, ok := c.values[n.Inputs[0]]; ok {
		c.values[n.Outputs[0]] = v
	}
	return c.setOut(n, 0, x.Shape.Clone(), dt)
}

func (c *inferCtx) inferWhere(n *Node) error {
	cond, err := c.in(n, 0)
	if err != nil {
		return err
	}
	a, err := c.in(n, 1)
	if err != nil {
		return err
	}
	b, err := c.in(n, 2)
	if err != nil {
		return err
	}
	s, err := broadcast(cond.Shape, a.Shape)
	if err != nil {
		return err
	}
	s, err = broadcast(s, b.Shape)
	if err != nil {
		return err
	}
	return c.setOut(n, 0, s, a.DType)
}

func (c *inferCtx) inferConstantOfShape(n *Node) error {
	tgt, err := c.reshapeTarget(n)
	if err != nil {
		// ConstantOfShape takes the shape from input 0 in ONNX.
		if v, ok := c.values[n.Inputs[0]]; ok {
			tgt = make([]int, len(v))
			for i, x := range v {
				tgt[i] = int(x)
			}
		} else {
			return err
		}
	}
	return c.setOut(n, 0, Shape(tgt), Float32)
}

// inferArgReduce handles ArgMax/ArgMin: a reduction producing Int64
// indices.
func (c *inferCtx) inferArgReduce(n *Node) error {
	x, err := c.in(n, 0)
	if err != nil {
		return err
	}
	axis := n.Attrs.Int("axis", 0)
	if axis < 0 {
		axis += x.Shape.Rank()
	}
	keep := n.Attrs.Int("keepdims", 1) == 1
	out := make(Shape, 0, x.Shape.Rank())
	for i, d := range x.Shape {
		switch {
		case i == axis && keep:
			out = append(out, 1)
		case i == axis:
		default:
			out = append(out, d)
		}
	}
	if len(out) == 0 {
		out = Shape{}
	}
	return c.setOut(n, 0, out, Int64)
}

// inferTopK produces the top-k values and indices along an axis; k
// comes from the "k" attribute or a constant second input.
func (c *inferCtx) inferTopK(n *Node) error {
	x, err := c.in(n, 0)
	if err != nil {
		return err
	}
	k := n.Attrs.Int("k", 0)
	if k == 0 && len(n.Inputs) >= 2 {
		if v, ok := c.values[n.Inputs[1]]; ok && len(v) == 1 {
			k = int(v[0])
		}
	}
	if k <= 0 {
		return fmt.Errorf("TopK requires k (attribute or constant input)")
	}
	axis, err := normAxis("TopK", n.Attrs.Int("axis", -1), x.Shape.Rank())
	if err != nil {
		return err
	}
	out := x.Shape.Clone()
	if k > out[axis] {
		return fmt.Errorf("TopK k=%d exceeds dim %d", k, out[axis])
	}
	out[axis] = k
	if err := c.setOut(n, 0, out, x.DType); err != nil {
		return err
	}
	if len(n.Outputs) >= 2 {
		return c.setOut(n, 1, out.Clone(), Int64)
	}
	return nil
}

// inferVariadicElementwise handles Sum/Mean over N broadcastable
// inputs.
func (c *inferCtx) inferVariadicElementwise(n *Node) error {
	if len(n.Inputs) == 0 {
		return fmt.Errorf("%s requires inputs", n.OpType)
	}
	first, err := c.in(n, 0)
	if err != nil {
		return err
	}
	out := first.Shape.Clone()
	for i := 1; i < len(n.Inputs); i++ {
		t, err := c.in(n, i)
		if err != nil {
			return err
		}
		out, err = broadcast(out, t.Shape)
		if err != nil {
			return err
		}
	}
	return c.setOut(n, 0, out, first.DType)
}

func (c *inferCtx) inferTile(n *Node) error {
	x, err := c.in(n, 0)
	if err != nil {
		return err
	}
	reps := n.Attrs.Ints("repeats", nil)
	if reps == nil {
		return fmt.Errorf("Tile requires repeats attribute")
	}
	if len(reps) != x.Shape.Rank() {
		return fmt.Errorf("Tile repeats rank mismatch")
	}
	out := x.Shape.Clone()
	for i := range out {
		out[i] *= reps[i]
	}
	return c.setOut(n, 0, out, x.DType)
}
