package graph

import (
	"errors"
	"fmt"
)

// ValidationCode identifies one class of structural corruption a graph
// can carry. The codes are stable wire-friendly strings: proofd's
// invalid_model responses carry them verbatim, and tests assert on
// them rather than on message text.
type ValidationCode string

const (
	// ErrEmptyNodeName: a node has no name.
	ErrEmptyNodeName ValidationCode = "empty_node_name"
	// ErrDuplicateNode: two nodes share a name.
	ErrDuplicateNode ValidationCode = "duplicate_node"
	// ErrMultiProducer: two nodes produce the same tensor.
	ErrMultiProducer ValidationCode = "multi_producer"
	// ErrDanglingTensor: a node or the graph IO list references a
	// tensor that is not registered.
	ErrDanglingTensor ValidationCode = "dangling_tensor"
	// ErrMissingProducer: a graph output is neither produced by a node
	// nor a graph input.
	ErrMissingProducer ValidationCode = "missing_producer"
	// ErrCycle: the dataflow graph is not acyclic.
	ErrCycle ValidationCode = "cycle"
	// ErrBadTensor: a registered tensor is internally inconsistent —
	// registered under a different name than it carries, nil, a known
	// shape with a non-positive dimension, a parameter without a
	// concrete shape or element type, or constant int data whose
	// length contradicts the shape.
	ErrBadTensor ValidationCode = "bad_tensor"
	// ErrShapeContradiction: declared tensor shapes contradict what
	// the operator semantics imply (an element-wise op whose known
	// input and output ranks differ, or element-wise binary inputs
	// that do not broadcast).
	ErrShapeContradiction ValidationCode = "shape_contradiction"
	// ErrUnusedParam: a parameter (initializer) tensor is consumed by
	// no node and is not a graph output — dead weight that skews the
	// memory-access model.
	ErrUnusedParam ValidationCode = "unused_param"
)

// ValidationError is one structural defect found by Validate. It is a
// typed error so callers (core's pipeline, proofd's HTTP edge) can
// distinguish "the model is broken" from "the profiler is broken" and
// answer with a structured 400 instead of an opaque 500.
type ValidationError struct {
	Code   ValidationCode `json:"code"`
	Graph  string         `json:"graph,omitempty"`
	Node   string         `json:"node,omitempty"`
	Tensor string         `json:"tensor,omitempty"`
	Detail string         `json:"detail"`
}

func (e *ValidationError) Error() string {
	return fmt.Sprintf("graph %s: %s", e.Graph, e.Detail)
}

// AsValidationError unwraps err to the *ValidationError it carries, if
// any.
func AsValidationError(err error) (*ValidationError, bool) {
	var v *ValidationError
	if errors.As(err, &v) {
		return v, true
	}
	return nil, false
}

// Validate checks the graph's structural invariants and returns the
// first defect found (as a *ValidationError), or nil. See ValidateAll
// for the full check list.
func (g *Graph) Validate() error {
	if errs := g.ValidateAll(); len(errs) > 0 {
		return errs[0]
	}
	return nil
}

// ValidateAll runs the full structural verification and returns every
// defect found: node-name uniqueness, single-producer consistency,
// dangling tensor references, graph IO registration and producedness,
// per-tensor sanity (name/registration agreement, positive dimensions,
// concrete parameter shapes and dtypes, int-data length), element-wise
// shape-rank contradictions against the declared shapes, unused
// initializers, and acyclicity. Checks that only make sense on fully
// shaped tensors are skipped for tensors whose shape is still unknown,
// so ValidateAll is safe both before and after shape inference.
func (g *Graph) ValidateAll() []*ValidationError {
	var errs []*ValidationError
	report := func(code ValidationCode, node, tensor, format string, args ...any) {
		errs = append(errs, &ValidationError{
			Code: code, Graph: g.Name, Node: node, Tensor: tensor,
			Detail: fmt.Sprintf(format, args...),
		})
	}

	// Node pass: names, producer uniqueness, tensor references.
	names := make(map[string]bool, len(g.Nodes))
	produced := make(map[string]string)
	for _, n := range g.Nodes {
		if n.Name == "" {
			report(ErrEmptyNodeName, "", "", "node with empty name (%s)", n.OpType)
			continue
		}
		if names[n.Name] {
			report(ErrDuplicateNode, n.Name, "", "duplicate node name %q", n.Name)
		}
		names[n.Name] = true
		for _, o := range n.Outputs {
			if prev, ok := produced[o]; ok {
				report(ErrMultiProducer, n.Name, o,
					"tensor %q produced by both %q and %q", o, prev, n.Name)
			}
			produced[o] = n.Name
			if g.Tensors[o] == nil {
				report(ErrDanglingTensor, n.Name, o,
					"node %q output tensor %q not registered", n.Name, o)
			}
		}
		for _, i := range n.Inputs {
			if g.Tensors[i] == nil {
				report(ErrDanglingTensor, n.Name, i,
					"node %q input tensor %q not registered", n.Name, i)
			}
		}
	}

	// Graph IO pass.
	inputs := make(map[string]bool, len(g.Inputs))
	for _, in := range g.Inputs {
		inputs[in] = true
		if g.Tensors[in] == nil {
			report(ErrDanglingTensor, "", in, "graph input %q not registered", in)
		}
	}
	outputs := make(map[string]bool, len(g.Outputs))
	for _, out := range g.Outputs {
		outputs[out] = true
		if g.Tensors[out] == nil {
			report(ErrDanglingTensor, "", out, "graph output %q not registered", out)
			continue
		}
		if produced[out] == "" && !inputs[out] {
			report(ErrMissingProducer, "", out, "graph output %q has no producer", out)
		}
	}

	// Tensor sanity pass.
	for key, t := range g.Tensors {
		if t == nil {
			report(ErrBadTensor, "", key, "tensor %q registered as nil", key)
			continue
		}
		if t.Name != key {
			report(ErrBadTensor, "", key,
				"tensor registered under %q carries name %q", key, t.Name)
		}
		if t.Shape != nil {
			for _, d := range t.Shape {
				if d <= 0 {
					report(ErrBadTensor, "", key,
						"tensor %q has non-positive dimension in shape %v", key, t.Shape)
					break
				}
			}
		}
		if t.Param {
			if !t.Shape.Valid() {
				report(ErrBadTensor, "", key,
					"parameter tensor %q has no concrete shape (%v)", key, t.Shape)
			}
			if !t.DType.Valid() {
				report(ErrBadTensor, "", key,
					"parameter tensor %q has invalid dtype %v", key, t.DType)
			}
		}
		if t.IntData != nil && t.Shape.Valid() && int64(len(t.IntData)) != t.Shape.NumElements() {
			report(ErrBadTensor, "", key,
				"tensor %q carries %d int values for shape %v (%d elements)",
				key, len(t.IntData), t.Shape, t.Shape.NumElements())
		}
	}

	// Unused initializers: params no node consumes and the graph does
	// not output. (Activations may legitimately dangle — builders and
	// optimizers leave unconsumed intermediates — but dead weights
	// inflate ParamBytes and the Eq. 1 memory model.)
	consumed := make(map[string]bool)
	for _, n := range g.Nodes {
		for _, i := range n.Inputs {
			consumed[i] = true
		}
	}
	for _, key := range g.SortedTensorNames() {
		t := g.Tensors[key]
		if t == nil || !t.Param {
			continue
		}
		if !consumed[key] && !outputs[key] {
			report(ErrUnusedParam, "", key,
				"parameter tensor %q is consumed by no node", key)
		}
	}

	// Shape-contradiction pass: element-wise operator semantics pin
	// output ranks to input ranks; declared shapes that disagree can
	// only come from a corrupt file or a buggy builder. Tensors with
	// unknown (nil) shapes are skipped — inference has not run yet.
	for _, n := range g.Nodes {
		switch {
		case elementwiseUnary[n.OpType]:
			if len(n.Inputs) == 0 || len(n.Outputs) == 0 {
				continue
			}
			in, out := g.Tensors[n.Inputs[0]], g.Tensors[n.Outputs[0]]
			if in == nil || out == nil || in.Shape == nil || out.Shape == nil {
				continue
			}
			if in.Shape.Rank() != out.Shape.Rank() {
				report(ErrShapeContradiction, n.Name, n.Outputs[0],
					"%s node %q: input %v and output %v disagree in rank",
					n.OpType, n.Name, in.Shape, out.Shape)
			}
		case elementwiseBinary[n.OpType]:
			if len(n.Inputs) < 2 || len(n.Outputs) == 0 {
				continue
			}
			a, b := g.Tensors[n.Inputs[0]], g.Tensors[n.Inputs[1]]
			if a == nil || b == nil || a.Shape == nil || b.Shape == nil {
				continue
			}
			bc, err := broadcast(a.Shape, b.Shape)
			if err != nil {
				report(ErrShapeContradiction, n.Name, n.Inputs[0],
					"%s node %q: inputs %v and %v do not broadcast",
					n.OpType, n.Name, a.Shape, b.Shape)
				continue
			}
			if out := g.Tensors[n.Outputs[0]]; out != nil && out.Shape != nil &&
				out.Shape.Rank() != bc.Rank() {
				report(ErrShapeContradiction, n.Name, n.Outputs[0],
					"%s node %q: output %v contradicts broadcast shape %v",
					n.OpType, n.Name, out.Shape, bc)
			}
		}
	}

	// Acyclicity — only meaningful once every reference resolves;
	// TopoSort on a graph with dangling refs would double-report.
	if len(errs) == 0 {
		if _, err := g.TopoSort(); err != nil {
			report(ErrCycle, "", "", "%v", cycleDetail(err, g.Name))
		}
	}
	return errs
}

// cycleDetail strips the "graph <name>: " prefix TopoSort puts on its
// error so the ValidationError formatting does not repeat it.
func cycleDetail(err error, name string) string {
	s := err.Error()
	prefix := fmt.Sprintf("graph %s: ", name)
	if len(s) > len(prefix) && s[:len(prefix)] == prefix {
		return s[len(prefix):]
	}
	return s
}
