package memo

import (
	"encoding/json"
	"testing"

	"proof/internal/graph"
)

// FuzzLayerSignature feeds arbitrary JSON-shaped graphs through the
// signature path and checks the two invariants the memo store relies
// on: hashing never panics on malformed graphs (missing tensors, nil
// attrs, empty shapes), and the key is a pure function of content —
// deterministic across calls and invariant under renaming every node
// and tensor.
func FuzzLayerSignature(f *testing.F) {
	seed := func(g *graph.Graph) {
		raw, err := json.Marshal(g)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(raw)
	}
	seed(convGraph(""))
	empty := graph.New("empty")
	seed(empty)
	dangling := graph.New("dangling")
	dangling.AddNode(&graph.Node{Name: "n", OpType: "Add", Inputs: []string{"missing"}, Outputs: []string{"also-missing"}})
	seed(dangling)
	f.Add([]byte(`{"name":"x","nodes":[{"op_type":"Conv","attrs":{"k":{"kind":2,"ints":[1,2]}}}]}`))
	f.Add([]byte(`not json`))

	f.Fuzz(func(t *testing.T, raw []byte) {
		var g graph.Graph
		if err := json.Unmarshal(raw, &g); err != nil {
			return
		}
		k1 := ContentKey(&g, g.Nodes, "normal")
		k2 := ContentKey(&g, g.Nodes, "normal")
		if k1 != k2 {
			t.Fatalf("content key not deterministic: %s != %s", k1, k2)
		}
		sig := UnitSignature(k1, baseBinding())
		if sig == UnitSignature(k1+"x", baseBinding()) {
			t.Fatal("distinct content keys produced equal signatures")
		}

		// Rename every node and tensor: the key must not move. Tensor
		// references inside nodes are renamed consistently so the
		// slot/sharing structure is preserved.
		renamed := g.Clone()
		names := map[string]string{}
		tensors := make(map[string]*graph.Tensor, len(renamed.Tensors))
		for key, tn := range renamed.Tensors {
			names[key] = "t/" + key
			tn.Name = "t/" + tn.Name
			tensors["t/"+key] = tn
		}
		renamed.Tensors = tensors
		rename := func(refs []string) {
			for i, r := range refs {
				if n, ok := names[r]; ok {
					refs[i] = n
				} else {
					// Dangling reference: rename consistently anyway.
					names[r] = "t/" + r
					refs[i] = "t/" + r
				}
			}
		}
		for _, n := range renamed.Nodes {
			n.Name = "n/" + n.Name
			rename(n.Inputs)
			rename(n.Outputs)
		}
		rename(renamed.Inputs)
		rename(renamed.Outputs)
		if k3 := ContentKey(renamed, renamed.Nodes, "normal"); k3 != k1 {
			t.Fatalf("renaming nodes/tensors changed the content key: %s != %s", k3, k1)
		}
	})
}
