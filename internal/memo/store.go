package memo

import (
	"container/list"
	"context"
	"sync"
	"time"

	"proof/internal/graph"
)

// Unit is the memoized result of profiling one layer unit: everything
// the analysis stage derives per layer that cannot be recomputed from
// the signature alone. Values only — no pointers — so a cached Unit can
// be handed to any number of concurrent readers.
type Unit struct {
	// Latency is the simulated wall time; ComputeTime and MemoryTime
	// are its roofline components (inputs to sim.Utilization).
	Latency     time.Duration
	ComputeTime time.Duration
	MemoryTime  time.Duration
	// ExecutionBound is the dominating term: "compute", "memory" or
	// "overhead".
	ExecutionBound string
	// FLOP and Bytes are the predicted per-layer metrics; together with
	// Latency they determine the roofline point (AI, attained FLOPS,
	// ridge-side bound), which the assembly path recomputes exactly as
	// the unmemoized pipeline does.
	FLOP  int64
	Bytes int64
	// Category is the chart-coloring tag of the mapped layer.
	Category string
}

// PlanKernel records one lowered kernel of a planned layer.
type PlanKernel struct {
	Name  string
	Share float64
}

// PlanLayer is the identity metadata of one backend layer in a plan:
// everything a report carries that is not a function of the unit
// signature (names are model-specific; units are name-free).
type PlanLayer struct {
	Name          string
	IsReformat    bool
	OriginalNodes []string
	OpTypes       []string
	Kernels       []PlanKernel
	// Sig keys the layer's unit in the unit store.
	Sig Signature
}

// Plan is the assembly skeleton of one whole profiling point: the
// resolved configuration echo plus the ordered layer identities. A plan
// hit skips model build, backend build, profiling and layer mapping
// entirely; the report is assembled from the plan and its units. Plans
// are immutable after PutPlan — assembly copies every slice it exposes.
type Plan struct {
	Model    string
	Platform string
	Backend  string
	DType    string
	// EffectiveDType is the resolved inference data type as a typed
	// value (quantized graphs run int8 regardless of the requested
	// type); assembly rebuilds the roofline ceilings from it.
	EffectiveDType graph.DataType
	Batch          int
	NodeCount      int
	ParamsM        float64
	Layers         []PlanLayer
}

// Outcome classifies one unit lookup.
type Outcome string

const (
	// OutcomeHit served a cached unit.
	OutcomeHit Outcome = "hit"
	// OutcomeMiss computed and cached a new unit.
	OutcomeMiss Outcome = "miss"
	// OutcomeDedup waited for a concurrent computation of the same
	// signature (singleflight).
	OutcomeDedup Outcome = "dedup"
)

// StoreConfig bounds a Store.
type StoreConfig struct {
	// UnitCapacity bounds the unit LRU (<=0 = DefaultUnitCapacity).
	UnitCapacity int
	// PlanCapacity bounds the plan LRU (<=0 = DefaultPlanCapacity).
	PlanCapacity int
}

// Default capacities: a full 23-model × 7-platform × batch-grid sweep
// holds well under 16k unique units (models share most of them — that
// is the point), and one plan per sweep point.
const (
	DefaultUnitCapacity = 16384
	DefaultPlanCapacity = 1024
)

// Store is the layer-unit memo store: an LRU of Units keyed by
// Signature, an LRU of Plans keyed by plan key, singleflight dedup on
// concurrent unit misses, and per-platform invalidation driven by
// descriptor hashes. All methods are safe for concurrent use.
type Store struct {
	mu        sync.Mutex
	unitCap   int
	planCap   int
	units     map[Signature]*list.Element // of *unitEntry
	unitOrder *list.List                  // front = most recent
	plans     map[string]*list.Element    // of *planEntry
	planOrder *list.List
	inflight  map[Signature]*unitCall
	platHash  map[string]string // platform key -> last seen descriptor hash

	stats struct {
		hits, misses, dedups int64
		evictions            int64
		invalidations        int64
		planHits, planMisses int64
		planEvictions        int64
		failures             int64 // unit computations that errored (never cached)
	}
}

type unitEntry struct {
	sig      Signature
	platform string
	unit     Unit
}

type planEntry struct {
	key      string
	platform string
	plan     *Plan
}

type unitCall struct {
	done chan struct{}
	unit Unit
	err  error
}

// NewStore creates a bounded store.
func NewStore(cfg StoreConfig) *Store {
	if cfg.UnitCapacity <= 0 {
		cfg.UnitCapacity = DefaultUnitCapacity
	}
	if cfg.PlanCapacity <= 0 {
		cfg.PlanCapacity = DefaultPlanCapacity
	}
	return &Store{
		unitCap:   cfg.UnitCapacity,
		planCap:   cfg.PlanCapacity,
		units:     make(map[Signature]*list.Element),
		unitOrder: list.New(),
		plans:     make(map[string]*list.Element),
		planOrder: list.New(),
		inflight:  make(map[Signature]*unitCall),
		platHash:  make(map[string]string),
	}
}

// Unit returns the cached unit for sig, if present. Used by the plan
// assembly path; a miss there is not counted (the caller falls back to
// the profiling path, whose GetOrCompute accounts for it).
func (s *Store) Unit(sig Signature) (Unit, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.units[sig]
	if !ok {
		return Unit{}, false
	}
	s.unitOrder.MoveToFront(el)
	s.stats.hits++
	return el.Value.(*unitEntry).unit, true
}

// GetOrCompute returns the cached unit for sig or computes it exactly
// once across concurrent callers: the first miss becomes the leader and
// runs compute; callers arriving while it runs wait and share the
// result (OutcomeDedup). Failed computations are never cached — the
// leader's error propagates to its waiters, and the next caller retries
// fresh. A waiter whose ctx ends returns ctx.Err() without disturbing
// the computation.
func (s *Store) GetOrCompute(ctx context.Context, sig Signature, platformKey string, compute func() (Unit, error)) (Unit, Outcome, error) {
	s.mu.Lock()
	if el, ok := s.units[sig]; ok {
		s.unitOrder.MoveToFront(el)
		s.stats.hits++
		u := el.Value.(*unitEntry).unit
		s.mu.Unlock()
		return u, OutcomeHit, nil
	}
	if c, ok := s.inflight[sig]; ok {
		s.stats.dedups++
		s.mu.Unlock()
		select {
		case <-c.done:
			return c.unit, OutcomeDedup, c.err
		case <-ctx.Done():
			return Unit{}, OutcomeDedup, ctx.Err()
		}
	}
	c := &unitCall{done: make(chan struct{})}
	s.inflight[sig] = c
	s.stats.misses++
	s.mu.Unlock()

	c.unit, c.err = compute()

	s.mu.Lock()
	delete(s.inflight, sig)
	if c.err == nil {
		s.insertUnitLocked(sig, platformKey, c.unit)
	} else {
		s.stats.failures++
	}
	s.mu.Unlock()
	close(c.done)
	return c.unit, OutcomeMiss, c.err
}

func (s *Store) insertUnitLocked(sig Signature, platformKey string, u Unit) {
	if el, ok := s.units[sig]; ok {
		el.Value.(*unitEntry).unit = u
		s.unitOrder.MoveToFront(el)
		return
	}
	s.units[sig] = s.unitOrder.PushFront(&unitEntry{sig: sig, platform: platformKey, unit: u})
	for len(s.units) > s.unitCap {
		last := s.unitOrder.Back()
		if last == nil {
			break
		}
		s.unitOrder.Remove(last)
		delete(s.units, last.Value.(*unitEntry).sig)
		s.stats.evictions++
	}
}

// Plan returns the cached assembly plan for key. The returned plan is
// shared and must not be modified.
func (s *Store) Plan(key string) (*Plan, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.plans[key]
	if !ok {
		s.stats.planMisses++
		return nil, false
	}
	s.planOrder.MoveToFront(el)
	s.stats.planHits++
	return el.Value.(*planEntry).plan, true
}

// PutPlan caches the assembly plan of one profiling point. The store
// takes ownership of p, which must not be modified afterwards.
func (s *Store) PutPlan(key, platformKey string, p *Plan) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.plans[key]; ok {
		el.Value.(*planEntry).plan = p
		s.planOrder.MoveToFront(el)
		return
	}
	s.plans[key] = s.planOrder.PushFront(&planEntry{key: key, platform: platformKey, plan: p})
	for len(s.plans) > s.planCap {
		last := s.planOrder.Back()
		if last == nil {
			break
		}
		s.planOrder.Remove(last)
		delete(s.plans, last.Value.(*planEntry).key)
		s.stats.planEvictions++
	}
}

// SyncPlatform records the platform descriptor hash observed by a run
// and, when it differs from the last one seen, purges every unit and
// plan cached for that platform. Correctness never depends on the purge
// — the hash is part of every signature and plan key, so entries from an
// edited descriptor can no longer be looked up — but without it they
// would squat in the LRU until natural eviction and poison the hit-ratio
// signal. Entries computed for *other* platforms are untouched.
func (s *Store) SyncPlatform(platformKey, hash string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	prev, seen := s.platHash[platformKey]
	s.platHash[platformKey] = hash
	if !seen || prev == hash {
		return
	}
	for el := s.unitOrder.Front(); el != nil; {
		next := el.Next()
		if e := el.Value.(*unitEntry); e.platform == platformKey {
			s.unitOrder.Remove(el)
			delete(s.units, e.sig)
			s.stats.invalidations++
		}
		el = next
	}
	for el := s.planOrder.Front(); el != nil; {
		next := el.Next()
		if e := el.Value.(*planEntry); e.platform == platformKey {
			s.planOrder.Remove(el)
			delete(s.plans, e.key)
			s.stats.invalidations++
		}
		el = next
	}
}

// Stats is a point-in-time snapshot of store counters.
type Stats struct {
	// Units and Plans are current entry counts.
	Units int `json:"units"`
	Plans int `json:"plans"`
	// Hits/Misses/Dedups count unit lookups; Failures counts unit
	// computations that errored (and were not cached).
	Hits     int64 `json:"hits"`
	Misses   int64 `json:"misses"`
	Dedups   int64 `json:"dedups"`
	Failures int64 `json:"failures"`
	// Evictions counts capacity evictions; Invalidations counts entries
	// purged by SyncPlatform descriptor changes.
	Evictions     int64 `json:"evictions"`
	Invalidations int64 `json:"invalidations"`
	// PlanHits/PlanMisses/PlanEvictions count plan lookups.
	PlanHits      int64 `json:"plan_hits"`
	PlanMisses    int64 `json:"plan_misses"`
	PlanEvictions int64 `json:"plan_evictions"`
}

// HitRatio returns hits/(hits+misses) over unit lookups, or 0.
func (st Stats) HitRatio() float64 {
	total := st.Hits + st.Misses
	if total == 0 {
		return 0
	}
	return float64(st.Hits) / float64(total)
}

// Stats returns a snapshot of the store counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Units:         len(s.units),
		Plans:         len(s.plans),
		Hits:          s.stats.hits,
		Misses:        s.stats.misses,
		Dedups:        s.stats.dedups,
		Failures:      s.stats.failures,
		Evictions:     s.stats.evictions,
		Invalidations: s.stats.invalidations,
		PlanHits:      s.stats.planHits,
		PlanMisses:    s.stats.planMisses,
		PlanEvictions: s.stats.planEvictions,
	}
}
