package memo

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"proof/internal/faults"
)

func sigN(n int) Signature {
	return UnitSignature(fmt.Sprintf("content-%d", n), baseBinding())
}

func unitN(n int) Unit {
	return Unit{
		Latency:        time.Duration(n+1) * time.Millisecond,
		ComputeTime:    time.Duration(n+1) * 600 * time.Microsecond,
		MemoryTime:     time.Duration(n+1) * 400 * time.Microsecond,
		ExecutionBound: "compute",
		FLOP:           int64(n+1) * 1000,
		Bytes:          int64(n+1) * 100,
		Category:       "conv",
	}
}

func mustCompute(t *testing.T, s *Store, n int) {
	t.Helper()
	u, out, err := s.GetOrCompute(context.Background(), sigN(n), "a100", func() (Unit, error) {
		return unitN(n), nil
	})
	if err != nil || out != OutcomeMiss || u != unitN(n) {
		t.Fatalf("compute %d: unit=%+v outcome=%s err=%v", n, u, out, err)
	}
}

func TestStoreHitAndMiss(t *testing.T) {
	s := NewStore(StoreConfig{})
	mustCompute(t, s, 0)
	u, out, err := s.GetOrCompute(context.Background(), sigN(0), "a100", func() (Unit, error) {
		t.Fatal("compute ran on a hit")
		return Unit{}, nil
	})
	if err != nil || out != OutcomeHit || u != unitN(0) {
		t.Fatalf("hit: unit=%+v outcome=%s err=%v", u, out, err)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Units != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if got := st.HitRatio(); got != 0.5 {
		t.Fatalf("hit ratio: %v", got)
	}
}

func TestStoreLRUEviction(t *testing.T) {
	s := NewStore(StoreConfig{UnitCapacity: 3})
	for i := 0; i < 3; i++ {
		mustCompute(t, s, i)
	}
	// Touch unit 0 so unit 1 is the LRU victim.
	if _, ok := s.Unit(sigN(0)); !ok {
		t.Fatal("unit 0 missing before eviction")
	}
	mustCompute(t, s, 3)
	if _, ok := s.Unit(sigN(1)); ok {
		t.Fatal("LRU victim (unit 1) still cached")
	}
	for _, n := range []int{0, 2, 3} {
		if _, ok := s.Unit(sigN(n)); !ok {
			t.Fatalf("unit %d evicted out of LRU order", n)
		}
	}
	st := s.Stats()
	if st.Evictions != 1 || st.Units != 3 {
		t.Fatalf("stats after eviction: %+v", st)
	}
}

func TestStoreErrorNeverCached(t *testing.T) {
	s := NewStore(StoreConfig{})
	boom := errors.New("profiling failed")
	_, out, err := s.GetOrCompute(context.Background(), sigN(0), "a100", func() (Unit, error) {
		return Unit{}, boom
	})
	if !errors.Is(err, boom) || out != OutcomeMiss {
		t.Fatalf("outcome=%s err=%v", out, err)
	}
	if _, ok := s.Unit(sigN(0)); ok {
		t.Fatal("failed computation was cached")
	}
	if st := s.Stats(); st.Failures != 1 || st.Units != 0 {
		t.Fatalf("stats after failure: %+v", st)
	}
	// The next caller retries fresh and the success is cached.
	mustCompute(t, s, 0)
	if _, ok := s.Unit(sigN(0)); !ok {
		t.Fatal("retry after failure was not cached")
	}
}

// TestStoreFaultScheduleNeverCaches drives the compute function through
// the chaos injector that proofd uses on the live pipeline: under an
// injected error schedule, every failed unit profile must stay
// uncached, every successful one must be cached, and the failure
// counter must match the injector's own accounting exactly.
func TestStoreFaultScheduleNeverCaches(t *testing.T) {
	inj := faults.New(faults.Config{Seed: 42, ErrorRate: 0.5, TransientShare: 0.5})
	profile := faults.Wrap(inj, func(_ context.Context, n int) (Unit, error) {
		return unitN(n), nil
	})
	s := NewStore(StoreConfig{})
	var failed, succeeded int
	for n := 0; n < 64; n++ {
		_, _, err := s.GetOrCompute(context.Background(), sigN(n), "a100", func() (Unit, error) {
			return profile(context.Background(), n)
		})
		cached, ok := s.Unit(sigN(n))
		if err != nil {
			failed++
			if ok {
				t.Fatalf("unit %d: failed profile was cached", n)
			}
		} else {
			succeeded++
			if !ok || cached != unitN(n) {
				t.Fatalf("unit %d: successful profile not cached intact", n)
			}
		}
	}
	if failed == 0 || succeeded == 0 {
		t.Fatalf("fault schedule degenerate: %d failed, %d succeeded", failed, succeeded)
	}
	st := s.Stats()
	if st.Failures != int64(failed) {
		t.Fatalf("failure counter %d != observed failures %d", st.Failures, failed)
	}
	if st.Units != succeeded {
		t.Fatalf("cached units %d != observed successes %d", st.Units, succeeded)
	}
}

func TestStoreSingleflight(t *testing.T) {
	s := NewStore(StoreConfig{})
	var computes atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})

	const waiters = 8
	var wg sync.WaitGroup
	results := make([]Outcome, waiters+1)
	errs := make([]error, waiters+1)
	units := make([]Unit, waiters+1)

	wg.Add(1)
	go func() {
		defer wg.Done()
		units[0], results[0], errs[0] = s.GetOrCompute(context.Background(), sigN(0), "a100", func() (Unit, error) {
			computes.Add(1)
			close(started)
			<-release
			return unitN(0), nil
		})
	}()
	<-started // leader is inside compute; everyone else must dedup
	for i := 1; i <= waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			units[i], results[i], errs[i] = s.GetOrCompute(context.Background(), sigN(0), "a100", func() (Unit, error) {
				computes.Add(1)
				return unitN(0), nil
			})
		}(i)
	}
	// Let the waiters reach the dedup wait before releasing the leader.
	deadline := time.Now().Add(2 * time.Second)
	for s.Stats().Dedups < waiters {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d waiters deduped", s.Stats().Dedups, waiters)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times, want 1", n)
	}
	if results[0] != OutcomeMiss {
		t.Fatalf("leader outcome %s", results[0])
	}
	for i := 1; i <= waiters; i++ {
		if errs[i] != nil || results[i] != OutcomeDedup || units[i] != unitN(0) {
			t.Fatalf("waiter %d: unit=%+v outcome=%s err=%v", i, units[i], results[i], errs[i])
		}
	}
}

func TestStoreDedupWaiterCancellation(t *testing.T) {
	s := NewStore(StoreConfig{})
	started := make(chan struct{})
	release := make(chan struct{})
	go s.GetOrCompute(context.Background(), sigN(0), "a100", func() (Unit, error) {
		close(started)
		<-release
		return unitN(0), nil
	})
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, out, err := s.GetOrCompute(ctx, sigN(0), "a100", func() (Unit, error) {
		t.Error("cancelled waiter ran compute")
		return Unit{}, nil
	})
	if !errors.Is(err, context.Canceled) || out != OutcomeDedup {
		t.Fatalf("cancelled waiter: outcome=%s err=%v", out, err)
	}
	close(release)
	// The leader's result must still land despite the waiter bailing.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, ok := s.Unit(sigN(0)); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("leader result never cached after waiter cancellation")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestStoreConcurrentSweeps is the seeded concurrency suite: N
// goroutines sweep overlapping signature sets against one shared store
// (run under -race -count=2 in CI). Each unique signature must be
// computed exactly once, every returned unit must be the complete value
// for its signature — never a partial or cross-contaminated entry —
// and the counters must balance.
func TestStoreConcurrentSweeps(t *testing.T) {
	const (
		goroutines = 16
		sigs       = 40
		rounds     = 3
	)
	s := NewStore(StoreConfig{})
	computes := make([]atomic.Int64, sigs)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				// Overlapping sweeps: every goroutine walks the whole
				// signature ring, each from its own starting offset.
				for i := 0; i < sigs; i++ {
					n := (g + i) % sigs
					u, _, err := s.GetOrCompute(context.Background(), sigN(n), "a100", func() (Unit, error) {
						computes[n].Add(1)
						time.Sleep(50 * time.Microsecond) // widen the dedup window
						return unitN(n), nil
					})
					if err != nil {
						t.Errorf("goroutine %d sig %d: %v", g, n, err)
						return
					}
					if u != unitN(n) {
						t.Errorf("goroutine %d sig %d: partial or foreign unit %+v", g, n, u)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	for n := range computes {
		if c := computes[n].Load(); c != 1 {
			t.Errorf("sig %d computed %d times, want exactly 1", n, c)
		}
	}
	st := s.Stats()
	if st.Units != sigs {
		t.Fatalf("units cached %d, want %d", st.Units, sigs)
	}
	total := goroutines * rounds * sigs
	if got := st.Hits + st.Misses + st.Dedups; got != int64(total) {
		t.Fatalf("counter balance: hits+misses+dedups = %d, want %d lookups", got, total)
	}
	if st.Misses != sigs {
		t.Fatalf("misses %d, want %d (one per unique signature)", st.Misses, sigs)
	}
}

func TestStorePlans(t *testing.T) {
	s := NewStore(StoreConfig{PlanCapacity: 2})
	if _, ok := s.Plan("a"); ok {
		t.Fatal("phantom plan")
	}
	s.PutPlan("a", "a100", &Plan{Model: "ma"})
	s.PutPlan("b", "a100", &Plan{Model: "mb"})
	p, ok := s.Plan("a") // touch "a": "b" becomes the LRU victim
	if !ok || p.Model != "ma" {
		t.Fatalf("plan a: %+v ok=%v", p, ok)
	}
	s.PutPlan("c", "agx", &Plan{Model: "mc"})
	if _, ok := s.Plan("b"); ok {
		t.Fatal("plan LRU victim still cached")
	}
	st := s.Stats()
	if st.PlanEvictions != 1 || st.Plans != 2 {
		t.Fatalf("plan stats: %+v", st)
	}
}

func TestSyncPlatformInvalidation(t *testing.T) {
	s := NewStore(StoreConfig{})
	s.SyncPlatform("a100", "h1")
	_, _, _ = s.GetOrCompute(context.Background(), sigN(0), "a100", func() (Unit, error) { return unitN(0), nil })
	_, _, _ = s.GetOrCompute(context.Background(), sigN(1), "agx", func() (Unit, error) { return unitN(1), nil })
	s.PutPlan("pa", "a100", &Plan{Model: "ma"})
	s.PutPlan("pb", "agx", &Plan{Model: "mb"})

	// Same hash again: nothing purged.
	s.SyncPlatform("a100", "h1")
	if st := s.Stats(); st.Invalidations != 0 || st.Units != 2 {
		t.Fatalf("stable hash purged entries: %+v", st)
	}

	// Changed hash: a100 entries purged, agx entries untouched.
	s.SyncPlatform("a100", "h2")
	if _, ok := s.Unit(sigN(0)); ok {
		t.Fatal("stale a100 unit survived descriptor change")
	}
	if _, ok := s.Unit(sigN(1)); !ok {
		t.Fatal("agx unit purged by a100 descriptor change")
	}
	if _, ok := s.Plan("pa"); ok {
		t.Fatal("stale a100 plan survived descriptor change")
	}
	if _, ok := s.Plan("pb"); !ok {
		t.Fatal("agx plan purged by a100 descriptor change")
	}
	if st := s.Stats(); st.Invalidations != 2 {
		t.Fatalf("invalidations: %+v", st)
	}

	// First sighting of a platform never purges.
	s.SyncPlatform("orin", "h9")
	if st := s.Stats(); st.Invalidations != 2 {
		t.Fatalf("first sighting purged: %+v", st)
	}
}
