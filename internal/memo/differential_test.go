// The differential correctness suite: memoization must be invisible.
// For every zoo model × every platform × {batch 1, platform default},
// the report produced through a shared memo store — both on the cold
// recording pass and on the warm plan-assembly pass — must be
// byte-identical (as JSON) to the report from the plain pipeline.
// Anything short of byte identity means the signature either misses a
// semantic input (stale units served across distinct layers) or the
// assembly path diverges numerically from the pipeline.
package memo_test

import (
	"context"
	"encoding/json"
	"fmt"
	"testing"

	"proof/internal/core"
	"proof/internal/graph"
	"proof/internal/hardware"
	"proof/internal/memo"
	"proof/internal/models"
)

func reportJSON(t *testing.T, opts core.Options) ([]byte, error) {
	t.Helper()
	r, err := core.ProfileCtx(context.Background(), opts)
	if err != nil {
		return nil, err
	}
	raw, err := json.Marshal(r)
	if err != nil {
		t.Fatalf("marshal report: %v", err)
	}
	return raw, nil
}

func TestDifferentialFullMatrix(t *testing.T) {
	// One store across the whole matrix: cross-model and cross-batch
	// unit reuse is exactly the risk surface under test.
	store := memo.NewStore(memo.StoreConfig{})
	for _, info := range models.List() {
		for _, p := range hardware.List() {
			for _, batch := range []int{1, 0} { // 0 = platform default
				name := fmt.Sprintf("%s/%s/batch=%d", info.Key, p.Key, batch)
				t.Run(name, func(t *testing.T) {
					plain := core.Options{Model: info.Key, Platform: p.Key, Batch: batch}
					memoized := plain
					memoized.Memo = store

					want, wantErr := reportJSON(t, plain)
					cold, coldErr := reportJSON(t, memoized)
					warm, warmErr := reportJSON(t, memoized)

					if (wantErr == nil) != (coldErr == nil) || (wantErr == nil) != (warmErr == nil) {
						t.Fatalf("error disagreement: plain=%v cold=%v warm=%v", wantErr, coldErr, warmErr)
					}
					if wantErr != nil {
						// Unsupported combinations must fail identically.
						if wantErr.Error() != coldErr.Error() || wantErr.Error() != warmErr.Error() {
							t.Fatalf("error text disagreement:\n  plain: %v\n  cold:  %v\n  warm:  %v", wantErr, coldErr, warmErr)
						}
						return
					}
					if string(cold) != string(want) {
						t.Fatalf("cold memoized report differs from unmemoized:\n  plain: %s\n  memo:  %s", want, cold)
					}
					if string(warm) != string(want) {
						t.Fatalf("warm (plan-assembled) report differs from unmemoized:\n  plain: %s\n  memo:  %s", want, warm)
					}
				})
			}
		}
	}
	st := store.Stats()
	if st.Hits == 0 || st.PlanHits == 0 {
		t.Fatalf("matrix exercised no memo reuse (stats %+v) — the differential proved nothing", st)
	}
	t.Logf("memo stats after full matrix: %+v (unit hit ratio %.1f%%)", st, 100*st.HitRatio())
}

// TestDifferentialSeedAndDType extends the differential beyond platform
// defaults: explicit seeds and dtypes key separate units, and each
// configuration must still be byte-identical to its unmemoized twin.
func TestDifferentialSeedAndDType(t *testing.T) {
	store := memo.NewStore(memo.StoreConfig{})
	cases := []core.Options{
		{Model: "resnet-18", Platform: "a100", Seed: 7},
		{Model: "resnet-18", Platform: "a100", Seed: 8},
		{Model: "resnet-18", Platform: "a100", DType: graph.Float32},
		{Model: "mobilenetv2-0.5", Platform: "xeon-6330", Batch: 4},
	}
	for _, opts := range cases {
		name := fmt.Sprintf("%s/%s/seed=%d/dtype=%s/batch=%d", opts.Model, opts.Platform, opts.Seed, opts.DType, opts.Batch)
		t.Run(name, func(t *testing.T) {
			want, err := reportJSON(t, opts)
			if err != nil {
				t.Fatal(err)
			}
			memoized := opts
			memoized.Memo = store
			for pass, label := range []string{"cold", "warm"} {
				got, err := reportJSON(t, memoized)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				if string(got) != string(want) {
					t.Fatalf("pass %d (%s) differs from unmemoized:\n  plain: %s\n  memo:  %s", pass, label, want, got)
				}
			}
		})
	}
}

// twinGraph builds a graph holding two structurally *similar but
// distinct* MatMul layers — identical op type, identical output shape,
// differing only in the inner (reduction) dimension of their weights.
// Their signatures must differ, and a memoized profile must keep their
// per-layer results apart. This is the regression fixture for
// cross-contamination: a signature that dropped any shape dimension
// would serve layer A's unit for layer B.
func twinGraph(batch int) *graph.Graph {
	g := graph.New("twin-fixture")
	g.AddTensor(&graph.Tensor{Name: "in", DType: graph.Float32, Shape: graph.Shape{batch, 256}})
	g.AddTensor(&graph.Tensor{Name: "w1", DType: graph.Float32, Shape: graph.Shape{256, 256}, Param: true})
	g.AddTensor(&graph.Tensor{Name: "mid", DType: graph.Float32, Shape: graph.Shape{batch, 256}})
	g.AddTensor(&graph.Tensor{Name: "w2", DType: graph.Float32, Shape: graph.Shape{256, 256}, Param: true})
	g.AddTensor(&graph.Tensor{Name: "mid2", DType: graph.Float32, Shape: graph.Shape{batch, 256}})
	// The distinct twin: same op, same output shape, fatter reduction.
	g.AddTensor(&graph.Tensor{Name: "w3", DType: graph.Float32, Shape: graph.Shape{256, 1024}, Param: true})
	g.AddTensor(&graph.Tensor{Name: "mid3", DType: graph.Float32, Shape: graph.Shape{batch, 1024}})
	g.AddTensor(&graph.Tensor{Name: "w4", DType: graph.Float32, Shape: graph.Shape{1024, 256}, Param: true})
	g.AddTensor(&graph.Tensor{Name: "out", DType: graph.Float32, Shape: graph.Shape{batch, 256}})
	g.AddNode(&graph.Node{Name: "fc1", OpType: "Gemm", Inputs: []string{"in", "w1"}, Outputs: []string{"mid"}})
	g.AddNode(&graph.Node{Name: "fc2", OpType: "Gemm", Inputs: []string{"mid", "w2"}, Outputs: []string{"mid2"}})
	g.AddNode(&graph.Node{Name: "fc3", OpType: "Gemm", Inputs: []string{"mid2", "w3"}, Outputs: []string{"mid3"}})
	g.AddNode(&graph.Node{Name: "fc4", OpType: "Gemm", Inputs: []string{"mid3", "w4"}, Outputs: []string{"out"}})
	g.Inputs = []string{"in"}
	g.Outputs = []string{"out"}
	return g
}

func TestDifferentialSimilarLayersNeverCrossContaminate(t *testing.T) {
	store := memo.NewStore(memo.StoreConfig{})
	run := func(st *memo.Store) *core.Report {
		t.Helper()
		r, err := core.ProfileCtx(context.Background(), core.Options{
			Graph: twinGraph(1), Platform: "a100", Batch: 1, Memo: st,
		})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	want := run(nil)
	cold := run(store)
	warm := run(store)

	// fc1 and fc2 are structurally identical (their units should be
	// shared); fc3/fc4 are similar but distinct and must not inherit
	// fc1's numbers.
	wantJSON, _ := json.Marshal(want)
	for pass, r := range []*core.Report{cold, warm} {
		gotJSON, _ := json.Marshal(r)
		if string(gotJSON) != string(wantJSON) {
			t.Fatalf("pass %d: twin-fixture report differs from unmemoized:\n  plain: %s\n  memo:  %s", pass, wantJSON, gotJSON)
		}
	}
	if st := store.Stats(); st.Hits == 0 {
		t.Fatalf("twin fixture produced no unit reuse (fc1/fc2 should share): %+v", st)
	}
}
