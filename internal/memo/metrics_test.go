package memo

import (
	"context"
	"errors"
	"strings"
	"testing"

	"proof/internal/obs"
)

func TestRegisterMetrics(t *testing.T) {
	s := NewStore(StoreConfig{})
	reg := obs.NewRegistry()
	if err := RegisterMetrics(reg, "proofd", s); err != nil {
		t.Fatal(err)
	}
	// A second registration of the same family names must conflict.
	if err := RegisterMetrics(reg, "proofd", s); !errors.Is(err, obs.ErrMetricConflict) {
		t.Fatalf("double registration: %v", err)
	}
	// Nil registry/store are no-ops, not panics.
	if err := RegisterMetrics(nil, "proofd", s); err != nil {
		t.Fatal(err)
	}
	if err := RegisterMetrics(reg, "x", nil); err != nil {
		t.Fatal(err)
	}

	mustCompute(t, s, 0)
	_, _, _ = s.GetOrCompute(context.Background(), sigN(0), "a100", func() (Unit, error) { return unitN(0), nil })

	var b strings.Builder
	reg.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"proofd_memo_hits_total 1",
		"proofd_memo_misses_total 1",
		"proofd_memo_units 1",
		"proofd_memo_hit_ratio 0.5",
		"proofd_memo_plan_misses_total 0",
		"proofd_memo_invalidations_total 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}
