package memo

import (
	"strings"
	"testing"

	"proof/internal/graph"
	"proof/internal/hardware"
)

// convGraph builds a small two-node graph (Conv -> Relu) whose names,
// attribute insertion order and tensor names the tests permute.
func convGraph(prefix string) *graph.Graph {
	g := graph.New(prefix + "net")
	g.AddTensor(&graph.Tensor{Name: prefix + "in", DType: graph.Float32, Shape: graph.Shape{1, 3, 224, 224}})
	g.AddTensor(&graph.Tensor{Name: prefix + "w", DType: graph.Float32, Shape: graph.Shape{64, 3, 7, 7}, Param: true})
	g.AddTensor(&graph.Tensor{Name: prefix + "mid", DType: graph.Float32, Shape: graph.Shape{1, 64, 112, 112}})
	g.AddTensor(&graph.Tensor{Name: prefix + "out", DType: graph.Float32, Shape: graph.Shape{1, 64, 112, 112}})
	g.AddNode(&graph.Node{
		Name:    prefix + "conv",
		OpType:  "Conv",
		Inputs:  []string{prefix + "in", prefix + "w"},
		Outputs: []string{prefix + "mid"},
		Attrs: graph.Attrs{
			"strides":      graph.IntsAttr(2, 2),
			"pads":         graph.IntsAttr(3, 3, 3, 3),
			"kernel_shape": graph.IntsAttr(7, 7),
			"group":        graph.IntAttr(1),
		},
	})
	g.AddNode(&graph.Node{
		Name:    prefix + "relu",
		OpType:  "Relu",
		Inputs:  []string{prefix + "mid"},
		Outputs: []string{prefix + "out"},
	})
	return g
}

func contentKeyOf(g *graph.Graph) string {
	return ContentKey(g, g.Nodes, "normal")
}

func TestContentKeyDeterministic(t *testing.T) {
	g := convGraph("")
	want := contentKeyOf(g)
	// Go randomizes map iteration order per range; many repetitions catch
	// any leak of attr-map order into the hash.
	for i := 0; i < 200; i++ {
		if got := contentKeyOf(g); got != want {
			t.Fatalf("iteration %d: key changed: %s != %s", i, got, want)
		}
	}
}

func TestContentKeyIgnoresNames(t *testing.T) {
	want := contentKeyOf(convGraph(""))
	if got := contentKeyOf(convGraph("renamed/")); got != want {
		t.Fatalf("renaming nodes and tensors changed the key:\n  %s\n  %s", got, want)
	}
}

func TestContentKeyIgnoresAttrInsertionOrder(t *testing.T) {
	g := convGraph("")
	want := contentKeyOf(g)
	// Rebuild the conv attrs in reverse insertion order.
	conv := g.Node("conv")
	attrs := graph.Attrs{}
	attrs["group"] = graph.IntAttr(1)
	attrs["kernel_shape"] = graph.IntsAttr(7, 7)
	attrs["pads"] = graph.IntsAttr(3, 3, 3, 3)
	attrs["strides"] = graph.IntsAttr(2, 2)
	conv.Attrs = attrs
	if got := contentKeyOf(g); got != want {
		t.Fatalf("attr insertion order changed the key")
	}
}

// TestContentKeySensitivity mutates one semantic field at a time and
// requires each mutation to move the key: a collision here would let
// the memo store serve one layer's profile for a different layer.
func TestContentKeySensitivity(t *testing.T) {
	base := contentKeyOf(convGraph(""))
	mutations := map[string]func(g *graph.Graph){
		"op type":        func(g *graph.Graph) { g.Node("conv").OpType = "ConvTranspose" },
		"attr int":       func(g *graph.Graph) { g.Node("conv").Attrs["group"] = graph.IntAttr(2) },
		"attr ints":      func(g *graph.Graph) { g.Node("conv").Attrs["strides"] = graph.IntsAttr(1, 1) },
		"attr added":     func(g *graph.Graph) { g.Node("conv").Attrs["dilations"] = graph.IntsAttr(1, 1) },
		"attr removed":   func(g *graph.Graph) { delete(g.Node("conv").Attrs, "group") },
		"attr key":       func(g *graph.Graph) { a := g.Node("conv").Attrs; a["strides2"] = a["strides"]; delete(a, "strides") },
		"input shape":    func(g *graph.Graph) { g.Tensor("in").Shape = graph.Shape{1, 3, 112, 112} },
		"input dtype":    func(g *graph.Graph) { g.Tensor("in").DType = graph.Float16 },
		"output shape":   func(g *graph.Graph) { g.Tensor("out").Shape = graph.Shape{1, 64, 56, 56} },
		"param flag":     func(g *graph.Graph) { g.Tensor("w").Param = false },
		"const int data": func(g *graph.Graph) { g.Tensor("w").IntData = []int64{4} },
		"extra input":    func(g *graph.Graph) { n := g.Node("conv"); n.Inputs = append(n.Inputs, "w") },
		"node dropped":   func(g *graph.Graph) { g.Nodes = g.Nodes[:1] },
	}
	for name, mutate := range mutations {
		g := convGraph("")
		mutate(g)
		if got := contentKeyOf(g); got == base {
			t.Errorf("mutation %q did not change the content key", name)
		}
	}
	if got := ContentKey(convGraph(""), convGraph("").Nodes, "myelin"); got == base {
		t.Errorf("group kind did not change the content key")
	}
}

// TestContentKeyTensorIdentity: the same tensor referenced twice must
// hash differently from two distinct tensors with identical contents —
// slot indices carry the sharing structure.
func TestContentKeyTensorIdentity(t *testing.T) {
	shared := convGraph("")
	n := shared.Node("relu")
	n.Inputs = []string{"mid", "mid"}

	distinct := convGraph("")
	distinct.AddTensor(&graph.Tensor{Name: "mid2", DType: graph.Float32, Shape: graph.Shape{1, 64, 112, 112}})
	n2 := distinct.Node("relu")
	n2.Inputs = []string{"mid", "mid2"}

	if contentKeyOf(shared) == contentKeyOf(distinct) {
		t.Fatalf("shared vs distinct input tensors collided")
	}
}

// TestContentKeyFraming: adjacent variable-length fields must not be
// re-splittable into a colliding encoding ("ab"+"c" vs "a"+"bc").
func TestContentKeyFraming(t *testing.T) {
	mk := func(op1, op2 string) string {
		g := graph.New("f")
		g.AddTensor(&graph.Tensor{Name: "t", DType: graph.Float32, Shape: graph.Shape{1}})
		g.AddNode(&graph.Node{Name: "n1", OpType: op1, Outputs: []string{"t"}})
		g.AddNode(&graph.Node{Name: "n2", OpType: op2, Inputs: []string{"t"}})
		return contentKeyOf(g)
	}
	if mk("ab", "c") == mk("a", "bc") {
		t.Fatalf("adjacent op-type strings re-split into a collision")
	}
}

func TestContentKeyNilTolerant(t *testing.T) {
	g := convGraph("")
	if ContentKey(nil, g.Nodes, "normal") == contentKeyOf(g) {
		t.Fatalf("nil graph (all tensors unresolvable) collided with resolved graph")
	}
	nodes := append([]*graph.Node{nil}, g.Nodes...)
	_ = ContentKey(g, nodes, "normal") // must not panic
}

func TestReformatKey(t *testing.T) {
	a := &graph.Tensor{Name: "x", DType: graph.Float16, Shape: graph.Shape{8, 64, 56, 56}}
	b := &graph.Tensor{Name: "renamed", DType: graph.Float16, Shape: graph.Shape{8, 64, 56, 56}}
	if ReformatKey(a) != ReformatKey(b) {
		t.Fatalf("reformat key depends on the tensor name")
	}
	c := &graph.Tensor{Name: "x", DType: graph.Float32, Shape: graph.Shape{8, 64, 56, 56}}
	if ReformatKey(a) == ReformatKey(c) {
		t.Fatalf("reformat key ignores dtype")
	}
	d := &graph.Tensor{Name: "x", DType: graph.Float16, Shape: graph.Shape{8, 64, 56, 57}}
	if ReformatKey(a) == ReformatKey(d) {
		t.Fatalf("reformat key ignores shape")
	}
}

func baseBinding() Binding {
	return Binding{
		Backend:      "trtsim",
		PlatformKey:  "a100",
		PlatformHash: "abc123",
		DType:        graph.Float16,
		Batch:        8,
		Mode:         "predicted",
		Seed:         1,
	}
}

// TestUnitSignatureSensitivity: every binding field keys the cache —
// the same layer content behaves differently per platform, dtype,
// batch, mode, seed and clock configuration.
func TestUnitSignatureSensitivity(t *testing.T) {
	ck := contentKeyOf(convGraph(""))
	base := UnitSignature(ck, baseBinding())
	mutations := map[string]func(b *Binding){
		"backend":        func(b *Binding) { b.Backend = "other" },
		"platform key":   func(b *Binding) { b.PlatformKey = "agx" },
		"platform hash":  func(b *Binding) { b.PlatformHash = "def456" },
		"dtype":          func(b *Binding) { b.DType = graph.Int8 },
		"batch":          func(b *Binding) { b.Batch = 16 },
		"mode":           func(b *Binding) { b.Mode = "measured" },
		"seed":           func(b *Binding) { b.Seed = 2 },
		"gpu clock":      func(b *Binding) { b.Clocks.GPUMHz = 900 },
		"emc clock":      func(b *Binding) { b.Clocks.EMCMHz = 1600 },
		"cpu clock":      func(b *Binding) { b.Clocks.CPUMHz = 1200 },
		"cpu clusters":   func(b *Binding) { b.Clocks.CPUClusters = 2 },
		"gpu capacity":   func(b *Binding) { b.Clocks.GPUCapacity = 0.5 },
		"content change": func(b *Binding) {}, // handled below
	}
	for name, mutate := range mutations {
		b := baseBinding()
		mutate(&b)
		sig := UnitSignature(ck, b)
		if name == "content change" {
			sig = UnitSignature(ck+"x", b)
		}
		if sig == base {
			t.Errorf("mutation %q did not change the unit signature", name)
		}
	}
}

func TestUnitSignatureUsesDescriptorHash(t *testing.T) {
	p, ok := hardware.Lookup("a100")
	if !ok {
		t.Fatal("platform a100 missing")
	}
	edited := *p
	edited.MemBW *= 2
	b1, b2 := baseBinding(), baseBinding()
	b1.PlatformHash = p.DescriptorHash()
	b2.PlatformHash = edited.DescriptorHash()
	if b1.PlatformHash == b2.PlatformHash {
		t.Fatal("editing MemBW did not change the descriptor hash")
	}
	ck := contentKeyOf(convGraph(""))
	if UnitSignature(ck, b1) == UnitSignature(ck, b2) {
		t.Fatal("edited platform descriptor did not change the unit signature")
	}
}

func TestPlanKeySensitivity(t *testing.T) {
	b := baseBinding()
	base := PlanKey("resnet-50", "zoo:resnet-50", b)
	if PlanKey("resnet-50-renamed", "zoo:resnet-50", b) == base {
		t.Error("model display name does not key the plan")
	}
	if PlanKey("resnet-50", "graph:deadbeef", b) == base {
		t.Error("content source does not key the plan")
	}
	b2 := b
	b2.Batch = 32
	if PlanKey("resnet-50", "zoo:resnet-50", b2) == base {
		t.Error("binding does not key the plan")
	}
}

func TestSignatureString(t *testing.T) {
	sig := UnitSignature("ck", baseBinding())
	s := sig.String()
	if len(s) != 64 || strings.Trim(s, "0123456789abcdef") != "" {
		t.Fatalf("signature string is not 64 hex chars: %q", s)
	}
}

func TestGraphDigestStable(t *testing.T) {
	d1, err := GraphDigest(convGraph(""))
	if err != nil {
		t.Fatal(err)
	}
	d2, err := GraphDigest(convGraph(""))
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Fatal("graph digest not deterministic")
	}
	g := convGraph("")
	g.Tensor("in").Shape = graph.Shape{2, 3, 224, 224}
	d3, err := GraphDigest(g)
	if err != nil {
		t.Fatal(err)
	}
	if d3 == d1 {
		t.Fatal("graph digest ignores tensor shapes")
	}
}
