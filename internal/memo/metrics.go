package memo

import (
	"errors"

	"proof/internal/obs"
)

// RegisterMetrics publishes a store's counters into reg under
// <prefix>_memo_*, read live at scrape time. Call once per
// store/registry pair; a second registration of the same names returns
// an error wrapping obs.ErrMetricConflict.
func RegisterMetrics(reg *obs.Registry, prefix string, s *Store) error {
	if reg == nil || s == nil {
		return nil
	}
	p := prefix + "_memo_"
	errs := []error{
		reg.CounterFunc(p+"hits_total",
			"Layer-unit lookups served from the memo store.",
			func() float64 { return float64(s.Stats().Hits) }),
		reg.CounterFunc(p+"misses_total",
			"Layer-unit lookups that profiled the unit.",
			func() float64 { return float64(s.Stats().Misses) }),
		reg.CounterFunc(p+"dedups_total",
			"Layer-unit lookups that joined an in-flight computation.",
			func() float64 { return float64(s.Stats().Dedups) }),
		reg.CounterFunc(p+"failures_total",
			"Layer-unit computations that errored and were not cached.",
			func() float64 { return float64(s.Stats().Failures) }),
		reg.CounterFunc(p+"evictions_total",
			"Layer units dropped by the LRU policy.",
			func() float64 { return float64(s.Stats().Evictions) }),
		reg.CounterFunc(p+"invalidations_total",
			"Entries purged by platform descriptor-hash changes.",
			func() float64 { return float64(s.Stats().Invalidations) }),
		reg.CounterFunc(p+"plan_hits_total",
			"Profiling points assembled entirely from a cached plan.",
			func() float64 { return float64(s.Stats().PlanHits) }),
		reg.CounterFunc(p+"plan_misses_total",
			"Profiling points that ran the pipeline and recorded a plan.",
			func() float64 { return float64(s.Stats().PlanMisses) }),
		reg.GaugeFunc(p+"units",
			"Layer units currently memoized.",
			func() float64 { return float64(s.Stats().Units) }),
		reg.GaugeFunc(p+"plans",
			"Assembly plans currently memoized.",
			func() float64 { return float64(s.Stats().Plans) }),
		reg.GaugeFunc(p+"hit_ratio",
			"Lifetime unit hit ratio: hits / (hits + misses).",
			func() float64 { return s.Stats().HitRatio() }),
	}
	return errors.Join(errs...)
}
