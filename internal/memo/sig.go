// Package memo implements the redundancy-aware sweep engine's layer-unit
// memo store (ROADMAP item 3). PRoof's hierarchical decomposition means a
// multi-model × multi-platform × batch-grid sweep re-profiles layer units
// that recur verbatim across configurations — Dooly observes that this
// cross-configuration redundancy dominates profiling-driven simulation
// cost. The store caches per-layer profile/roofline results keyed by a
// canonical layer signature and whole-point assembly plans keyed by the
// resolved configuration, so each unique unit is profiled once and every
// later occurrence is assembled from the cache.
//
// Correctness hinges on two properties, both tested differentially:
//
//   - The signature covers everything the simulated execution depends on
//     (op types, canonical attributes, input/output shapes and dtypes,
//     batch, data type, backend, mode, seed, clocks, platform descriptor
//     hash) and nothing it does not (node names, tensor names, attribute
//     map order) — so memoized reports are byte-identical to unmemoized
//     ones, and distinct layers can never collide.
//   - Invalidation is keyed on hardware.Platform.DescriptorHash(): the
//     hash is embedded in every signature, so an edited platform
//     descriptor changes the key and stale units are structurally
//     unreachable; SyncPlatform additionally purges the unreachable
//     entries so capacity is not wasted on them.
package memo

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"hash"
	"math"

	"proof/internal/graph"
	"proof/internal/hardware"
)

// Signature is the 32-byte key of one memoized layer unit.
type Signature [sha256.Size]byte

// String returns the hex form, for logs and fixtures.
func (s Signature) String() string { return hex.EncodeToString(s[:]) }

// ContentKey canonically fingerprints the content of one fusion group:
// the ordered op types, attributes, and input/output tensor contents
// (dtype, shape, param flag, constant data) of its nodes, plus the
// group kind the backend lowered it as. Node and tensor *names* are
// deliberately excluded — tensors are identified by first-reference slot
// index — so structurally identical layers from different models produce
// the same key, which is what makes cross-model unit reuse sound. The
// encoding frames every field with a length or tag, so no concatenation
// of adjacent fields can collide with a different field split.
func ContentKey(g *graph.Graph, nodes []*graph.Node, kind string) string {
	h := sha256.New()
	writeStr(h, "proof-unit-v1")
	writeStr(h, kind)
	writeInt(h, int64(len(nodes)))
	slots := map[string]int{} // tensor name -> first-reference slot
	slot := func(name string) int64 {
		if i, ok := slots[name]; ok {
			return int64(i)
		}
		i := len(slots)
		slots[name] = i
		return int64(i)
	}
	for _, n := range nodes {
		if n == nil {
			writeStr(h, "nil-node")
			continue
		}
		writeStr(h, n.OpType)
		writeAttrs(h, n.Attrs)
		writeInt(h, int64(len(n.Inputs)))
		for _, in := range n.Inputs {
			writeInt(h, slot(in))
			writeTensor(h, tensorOf(g, in))
		}
		writeInt(h, int64(len(n.Outputs)))
		for _, out := range n.Outputs {
			writeInt(h, slot(out))
			writeTensor(h, tensorOf(g, out))
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// ReformatKey fingerprints a runtime-inserted reformat/reorder layer,
// whose simulated cost depends only on the converted tensor's dtype and
// shape.
func ReformatKey(t *graph.Tensor) string {
	h := sha256.New()
	writeStr(h, "proof-reformat-v1")
	writeTensor(h, t)
	return hex.EncodeToString(h.Sum(nil))
}

// Binding is the execution-environment half of a unit signature: the
// same layer content behaves differently per backend, platform
// descriptor, data type, batch, metrics mode, jitter seed and clock
// configuration, so all of them key the cache.
type Binding struct {
	// Backend is the runtime key ("trtsim", ...).
	Backend string
	// PlatformKey and PlatformHash identify the platform: the key tags
	// entries for targeted invalidation, the descriptor hash makes
	// edited descriptors structurally miss (see SyncPlatform).
	PlatformKey  string
	PlatformHash string
	// DType, Batch and Mode are the resolved run configuration.
	DType graph.DataType
	Batch int
	Mode  string
	// Seed is the run-to-run jitter seed.
	Seed uint64
	// Clocks is the clock configuration as requested (zero = defaults).
	Clocks hardware.Clocks
}

// UnitSignature combines a layer content key with its execution binding
// into the cache key of one memoized unit.
func UnitSignature(contentKey string, b Binding) Signature {
	h := sha256.New()
	writeStr(h, "proof-sig-v1")
	writeStr(h, contentKey)
	writeBinding(h, b)
	var sig Signature
	h.Sum(sig[:0])
	return sig
}

// PlanKey keys a whole profiling point: source identifies the model
// content (a zoo key for registry models, a graph digest for inline
// graphs), model is the report's display name (it can differ from the
// content source for inline graphs, and reports must echo it), and b is
// the execution binding.
func PlanKey(model, source string, b Binding) string {
	h := sha256.New()
	writeStr(h, "proof-plan-v1")
	writeStr(h, model)
	writeStr(h, source)
	writeBinding(h, b)
	return hex.EncodeToString(h.Sum(nil))
}

// GraphDigest fingerprints an inline graph's full content (JSON form) so
// sweeps over caller-supplied graphs can be plan-keyed. Sweep drivers
// compute it once per graph and pass it through Options.GraphDigest.
func GraphDigest(g *graph.Graph) (string, error) {
	raw, err := json.Marshal(g)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:]), nil
}

func writeBinding(h hash.Hash, b Binding) {
	writeStr(h, b.Backend)
	writeStr(h, b.PlatformKey)
	writeStr(h, b.PlatformHash)
	writeInt(h, int64(b.DType))
	writeInt(h, int64(b.Batch))
	writeStr(h, b.Mode)
	writeInt(h, int64(b.Seed))
	writeInt(h, int64(b.Clocks.GPUMHz))
	writeInt(h, int64(b.Clocks.EMCMHz))
	writeInt(h, int64(b.Clocks.CPUMHz))
	writeInt(h, int64(b.Clocks.CPUClusters))
	writeFloat(h, b.Clocks.GPUCapacity)
}

func tensorOf(g *graph.Graph, name string) *graph.Tensor {
	if g == nil {
		return nil
	}
	return g.Tensor(name)
}

func writeTensor(h hash.Hash, t *graph.Tensor) {
	if t == nil {
		writeStr(h, "nil-tensor")
		return
	}
	writeStr(h, "tensor")
	writeInt(h, int64(t.DType))
	writeInt(h, int64(len(t.Shape)))
	for _, d := range t.Shape {
		writeInt(h, int64(d))
	}
	if t.Param {
		writeInt(h, 1)
	} else {
		writeInt(h, 0)
	}
	writeInt(h, int64(len(t.IntData)))
	for _, v := range t.IntData {
		writeInt(h, v)
	}
}

// writeAttrs hashes an attribute map order-independently by sorting the
// keys; Go map iteration order must never leak into a signature.
func writeAttrs(h hash.Hash, attrs graph.Attrs) {
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	// Insertion sort: attr maps hold a handful of keys.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	writeInt(h, int64(len(keys)))
	for _, k := range keys {
		a := attrs[k]
		writeStr(h, k)
		writeInt(h, int64(a.Kind))
		switch a.Kind {
		case graph.AttrInt:
			writeInt(h, int64(a.I))
		case graph.AttrInts:
			writeInt(h, int64(len(a.Ints)))
			for _, v := range a.Ints {
				writeInt(h, int64(v))
			}
		case graph.AttrFloat:
			writeFloat(h, a.F)
		case graph.AttrString:
			writeStr(h, a.S)
		}
	}
}

// writeStr frames the string with its length so adjacent fields cannot
// be re-split into a colliding encoding.
func writeStr(h hash.Hash, s string) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], uint64(len(s)))
	h.Write(buf[:n])
	h.Write([]byte(s))
}

func writeInt(h hash.Hash, v int64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], v)
	h.Write(buf[:n])
}

func writeFloat(h hash.Hash, v float64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
	h.Write(buf[:])
}
