package lint

import (
	"go/ast"
)

// isPkgCall reports whether call is syntactically pkg.name(...), e.g.
// obs.Start or time.Sleep. Without type information a shadowed "obs"
// identifier would fool this; the repo's convention of never shadowing
// package names keeps that theoretical.
func isPkgCall(call *ast.CallExpr, pkg, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == pkg && sel.Sel.Name == name
}

// methodName returns the selector name of a method-style call
// (anything of the form expr.Name(...)), or "".
func methodName(call *ast.CallExpr) string {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		return sel.Sel.Name
	}
	return ""
}

// recvIdent returns the receiver identifier of a call x.Name(...)
// when the receiver is a plain identifier, or nil (e.g. for
// s.mu.Lock() it returns nil; use recvPath for dotted receivers).
func recvIdent(call *ast.CallExpr) *ast.Ident {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	id, _ := sel.X.(*ast.Ident)
	return id
}

// recvPath renders the receiver expression of a method call as a
// dotted path ("s.mu", "mu"), or "" when it is not a pure
// identifier/selector chain.
func recvPath(call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	return exprPath(sel.X)
}

// exprPath renders an identifier/selector chain ("a.b.c"), or "".
func exprPath(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		base := exprPath(x.X)
		if base == "" {
			return ""
		}
		return base + "." + x.Sel.Name
	}
	return ""
}

// walkSameFunc visits the subtree under n without descending into
// nested function literals: the traversal sees exactly the code that
// runs as part of the enclosing function's own activation, not code
// that a closure may run later (or never).
func walkSameFunc(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(node ast.Node) bool {
		if _, ok := node.(*ast.FuncLit); ok && node != n {
			return false
		}
		return fn(node)
	})
}

// funcBodies yields every function body in a file — top-level
// declarations and nested literals — paired with a printable name.
func funcBodies(f *ast.File, visit func(name string, fn ast.Node, body *ast.BlockStmt)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				visit(fn.Name.Name, fn, fn.Body)
			}
		case *ast.FuncLit:
			visit("func literal", fn, fn.Body)
		}
		return true
	})
}
