// Package ctxfirst is a prooflint fixture; it is parsed, never built.
package ctxfirst

import (
	"context"
	"sync"
	"time"
)

func work(i int) { _ = i }

// Fanout starts goroutines without a context.
func Fanout(n int) {
	for i := 0; i < n; i++ {
		go work(i)
	}
}

// WaitAll blocks on a WaitGroup.
func WaitAll(wg *sync.WaitGroup) { wg.Wait() }

// Sleepy sleeps.
func Sleepy() { time.Sleep(time.Millisecond) }

// Recv receives from a channel.
func Recv(ch chan int) int { return <-ch }

// Send sends on a channel.
func Send(ch chan int) { ch <- 1 }

// Good blocks but takes ctx first.
func Good(ctx context.Context, ch chan int) int {
	select {
	case v := <-ch:
		return v
	case <-ctx.Done():
		return 0
	}
}

// CtxSecond blocks and has a context, but not as the first parameter.
func CtxSecond(n int, ctx context.Context) {
	go work(n)
	<-ctx.Done()
}

// unexportedBlock may block without ctx; the rule guards the API
// surface only.
func unexportedBlock(ch chan int) { <-ch }

// Pure never blocks, so no context is demanded.
func Pure(a, b int) int { return a + b }

// ClosureOnly returns a closure that blocks; the function itself does
// not.
func ClosureOnly(ch chan int) func() int {
	return func() int { return <-ch }
}

// Ignored is exempted with a reason.
//
//lint:ignore ctxfirst pre-context API frozen for downstream users
func Ignored(ch chan int) { <-ch }

//lint:ignore
func MalformedDirective(ch chan int) { <-ch }
