// Package retryctx is a prooflint fixture; it is parsed, never built.
package retryctx

import (
	"context"
	"time"
)

func attempt() error { return nil }

// RetryNoCtx sleeps between attempts and never looks at the context.
func RetryNoCtx(ctx context.Context) error {
	var err error
	for i := 0; i < 3; i++ {
		if err = attempt(); err == nil {
			return nil
		}
		time.Sleep(time.Millisecond << i)
	}
	return err
}

// RetryAfterNoCtx blocks on time.After instead of time.Sleep — the
// same uncancellable backoff in channel clothing.
func RetryAfterNoCtx(items []int) {
	for range items {
		if attempt() == nil {
			return
		}
		<-time.After(time.Millisecond)
	}
}

// RetryWithErr checks ctx.Err() before every attempt.
func RetryWithErr(ctx context.Context) error {
	for i := 0; i < 3; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if attempt() == nil {
			return nil
		}
		time.Sleep(time.Millisecond)
	}
	return nil
}

// RetryWithDone selects on the context while backing off.
func RetryWithDone(ctx context.Context) error {
	for i := 0; i < 3; i++ {
		if attempt() == nil {
			return nil
		}
		select {
		case <-time.After(time.Millisecond):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}

// NoSleep retries hot; pacing is someone else's problem, not this
// analyzer's.
func NoSleep() {
	for i := 0; i < 3; i++ {
		if attempt() == nil {
			return
		}
	}
}

// SleepOutsideLoop sleeps once before a loop that never sleeps.
func SleepOutsideLoop() {
	time.Sleep(time.Millisecond)
	for i := 0; i < 3; i++ {
		if attempt() == nil {
			return
		}
	}
}

// ClosureSleeps builds a closure that sleeps; the loop itself does not
// block, the closure blocks whoever calls it later.
func ClosureSleeps() []func() {
	var fns []func()
	for i := 0; i < 3; i++ {
		fns = append(fns, func() { time.Sleep(time.Millisecond) })
	}
	return fns
}

// NestedBadLoop hides the uncancellable retry inside an outer loop
// that is itself fine.
func NestedBadLoop(ctx context.Context, jobs []int) {
	for range jobs {
		if ctx.Err() != nil {
			return
		}
		for i := 0; i < 3; i++ {
			if attempt() == nil {
				break
			}
			time.Sleep(time.Millisecond)
		}
	}
}

// Ignored is exempted with a reason on the loop itself (diagnostics
// anchor at the for statement, not the function).
func Ignored() {
	//lint:ignore retryctx fixture demonstrates suppression
	for i := 0; i < 3; i++ {
		time.Sleep(time.Millisecond)
	}
}
