// Package goroutinetest is a prooflint fixture; it is parsed, never
// built or run.
package goroutinetest

import (
	"sync"
	"testing"
)

func cond() bool { return false }

func TestFatalInGoroutine(t *testing.T) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t.Fatal("flagged: kills the goroutine, not the test")
	}()
	go func() {
		t.Fatalf("flagged: %d", 1)
	}()
	go func() {
		if cond() {
			t.FailNow() // flagged even when nested in a branch
		}
	}()
	go func() {
		f := func() { t.Skip("flagged: closure still runs on the goroutine") }
		f()
	}()
	go func() {
		t.Error("fine: Error does not call runtime.Goexit")
	}()
	wg.Wait()
	t.Fatal("fine: runs on the test goroutine itself")
}

func TestSuppressed(t *testing.T) {
	go func() {
		//lint:ignore goroutinetest exercising the hang on purpose
		t.Fatal("suppressed")
	}()
}

func BenchmarkFatalInGoroutine(b *testing.B) {
	go func() {
		b.Fatal("flagged: benchmarks have the same footgun")
	}()
}
