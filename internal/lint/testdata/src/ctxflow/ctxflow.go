// Package ctxflow is a prooflint fixture: context threading through
// the call graph.
package ctxflow

import "context"

func process(ctx context.Context, s string) error { _ = ctx; _ = s; return nil }

func fire(ctx context.Context) { _ = ctx }

// HasCtxMintsBackground holds a ctx but severs it.
func HasCtxMintsBackground(ctx context.Context) error {
	_ = ctx
	return process(context.Background(), "x")
}

// NoCtxBackground mints a root context outside main.
func NoCtxBackground() error {
	ctx := context.Background()
	return process(ctx, "x")
}

// UsesTODO is the same violation through context.TODO (two
// statements, so the compatibility-wrapper exemption does not apply).
func UsesTODO() error {
	ctx := context.TODO()
	return process(ctx, "x")
}

// Process is a sanctioned single-statement compatibility wrapper.
func Process(s string) error {
	return process(context.Background(), s)
}

// Fire is a sanctioned wrapper without a result.
func Fire() {
	fire(context.Background())
}

// PassesNil hands a nil context to a ctx-accepting callee.
func PassesNil() error {
	return process(nil, "x")
}

// Threads is clean: the held ctx reaches the callee.
func Threads(ctx context.Context) error {
	return process(ctx, "x")
}

// InClosure severs the ctx inside a nested function literal.
func InClosure(ctx context.Context) error {
	_ = ctx
	f := func() error { return process(context.Background(), "y") }
	return f()
}

var bgCtx context.Context

// init may mint a root context.
func init() {
	bgCtx = context.Background()
}

// Suppressed carries an ignore directive on a real violation.
func Suppressed() error {
	//lint:ignore ctxflow fixture: detached on purpose
	ctx := context.Background()
	return process(ctx, "x")
}
