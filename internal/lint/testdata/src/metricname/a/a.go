// Package a registers the shared metric first (fixture; parsed only).
package a

import "proof/internal/obs"

func wire(reg *obs.Registry) {
	reg.Counter("proofd_shared_total", "first registration wins")
}
