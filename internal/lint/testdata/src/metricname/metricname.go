// Package metricname is a prooflint fixture; it is parsed, never
// built.
package metricname

import (
	"context"

	"proof/internal/obs"
)

func wire(ctx context.Context, reg *obs.Registry, prefix string) {
	reg.Counter("proofd_good_total", "ok")
	reg.Counter("proofd_good_total", "same-package re-registration is the registry's business")
	reg.Gauge("proofd_BadCase", "flagged: not snake_case")
	reg.Counter("requests_total", "flagged: lacks the namespace prefix")
	reg.Histogram("proofd_trailing_", "flagged: trailing underscore", nil)
	reg.CounterFunc(prefix+"_hits_total", "fragments with a legal charset pass", nil)
	reg.GaugeFunc(prefix+"_Bad-Frag", "flagged fragment", nil)
	reg.Counter(dynamicName(), "dynamic names are out of syntactic reach")

	_, sp := obs.Start(ctx, "good_span")
	sp.End()
	_, sp2 := obs.Start(ctx, "BadSpan")
	sp2.End()
	//lint:ignore metricname grandfathered name predates the convention
	reg.Counter("legacy-total", "suppressed")

	// History-store and drift families added with the persistent
	// profile history: the proofd_store_* / proofd_roofline_* shapes
	// must pass, and a mixed-case store name must be flagged.
	reg.Counter("proofd_store_appends_total", "ok")
	reg.Gauge("proofd_store_last_append_age_seconds", "ok")
	reg.GaugeVec("proofd_roofline_drift", "vec names are checked like any other", "model", "platform")
	reg.Gauge("proofd_store_Bytes", "flagged: mixed case")
}

func dynamicName() string { return "proofd_dynamic_total" }
