// Package b collides with package a's metric (fixture; parsed only).
package b

import "proof/internal/obs"

func wire(reg *obs.Registry) {
	reg.Counter("proofd_shared_total", "flagged: duplicate across packages")
}
