// Package lockorder is a prooflint fixture: cross-function
// lock-ordering cycles and non-reentrant re-acquisition.
package lockorder

import "sync"

type a struct{ mu sync.Mutex }

type b struct{ mu sync.Mutex }

var (
	A a
	B b
)

// lockAB acquires a.mu before b.mu.
func lockAB() {
	A.mu.Lock()
	defer A.mu.Unlock()
	B.mu.Lock()
	B.mu.Unlock()
}

// lockBA acquires them in the reverse order: the AB/BA deadlock shape.
func lockBA() {
	B.mu.Lock()
	defer B.mu.Unlock()
	A.mu.Lock()
	A.mu.Unlock()
}

type c struct{ mu sync.Mutex }

type d struct{ mu sync.Mutex }

var (
	C c
	D d
)

// lockCviaCall holds c.mu across a call that acquires d.mu.
func lockCviaCall() {
	C.mu.Lock()
	defer C.mu.Unlock()
	grabD()
}

func grabD() {
	D.mu.Lock()
	D.mu.Unlock()
}

// lockDC closes the transitive cycle directly.
func lockDC() {
	D.mu.Lock()
	defer D.mu.Unlock()
	C.mu.Lock()
	C.mu.Unlock()
}

type once struct{ mu sync.Mutex }

// relock re-acquires the same instance: guaranteed self-deadlock.
func (o *once) relock() {
	o.mu.Lock()
	o.mu.Lock()
	o.mu.Unlock()
	o.mu.Unlock()
}

// merge nests two instances of one lock with no global order.
func merge(x, y *once) {
	x.mu.Lock()
	defer x.mu.Unlock()
	y.mu.Lock()
	y.mu.Unlock()
}

type registry struct{ sync.Mutex }

var reg registry

// regThenA orders the embedded registry lock before a.mu.
func regThenA() {
	reg.Lock()
	defer reg.Unlock()
	A.mu.Lock()
	A.mu.Unlock()
}

// aThenReg reverses it.
func aThenReg() {
	A.mu.Lock()
	defer A.mu.Unlock()
	reg.Lock()
	reg.Unlock()
}

// sequential never overlaps: no edges, no findings.
func sequential() {
	A.mu.Lock()
	A.mu.Unlock()
	B.mu.Lock()
	B.mu.Unlock()
}
