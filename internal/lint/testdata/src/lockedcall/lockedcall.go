// Package lockedcall is a prooflint fixture; it is parsed, never
// built.
package lockedcall

import (
	"net/http"
	"sync"
	"time"
)

type state struct {
	mu    sync.RWMutex
	wg    sync.WaitGroup
	ch    chan int
	ready bool
	n     int
}

func recvLocked(s *state) {
	s.mu.Lock()
	<-s.ch // flagged
	s.mu.Unlock()
}

func sendUnderDefer(s *state) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ch <- 1 // flagged: the deferred Unlock has not run yet
}

func selectLocked(s *state) {
	s.mu.Lock()
	select { // flagged
	case <-s.ch:
	default:
	}
	s.mu.Unlock()
}

func sleepLocked(s *state) {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // flagged
	s.mu.Unlock()
}

func waitLocked(s *state) {
	s.mu.Lock()
	s.wg.Wait() // flagged
	s.mu.Unlock()
}

func httpLocked(s *state) {
	s.mu.RLock()
	resp, err := http.Get("http://example.invalid/") // flagged
	_, _ = resp, err
	s.mu.RUnlock()
}

func branchStillLocked(s *state) {
	s.mu.Lock()
	if s.ready {
		<-s.ch // flagged: the branch inherits the lock
	}
	s.mu.Unlock()
}

func branchUnlocksFirst(s *state) {
	s.mu.Lock()
	if s.ready {
		s.mu.Unlock()
		<-s.ch // fine: this path unlocked above
		return
	}
	s.mu.Unlock()
}

func afterUnlock(s *state) {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
	<-s.ch // fine
}

func closureEscapes(s *state) func() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return func() int { return <-s.ch } // fine: runs after Unlock
}

func suppressed(s *state) {
	s.mu.Lock()
	//lint:ignore lockedcall single-writer channel can never block here
	s.ch <- 1
	s.mu.Unlock()
}
