// Package spanend is a prooflint fixture; it is parsed, never built.
package spanend

import (
	"context"

	"proof/internal/obs"
)

func keep(v any) { _ = v }

func good(ctx context.Context) {
	ctx, sp := obs.Start(ctx, "good_stage")
	defer sp.End()
	_ = ctx
}

func goodErr(ctx context.Context) (err error) {
	_, sp := obs.Start(ctx, "good_err_stage")
	defer func() { sp.EndErr(err) }()
	return nil
}

func goodAssignForm(ctx context.Context) {
	var sp *obs.Span
	ctx, sp = obs.Start(ctx, "assigned_stage")
	sp.End()
	_ = ctx
}

func leaked(ctx context.Context) {
	_, sp := obs.Start(ctx, "leaked_stage")
	keep(sp)
}

func discarded(ctx context.Context) {
	ctx, _ = obs.Start(ctx, "discarded_stage")
	_ = ctx
}

func nestedLitLeak(ctx context.Context) {
	f := func() {
		_, sp := obs.Start(ctx, "inner_stage")
		keep(sp)
	}
	f()
}

func outerEndsForInner(ctx context.Context) {
	// The literal leaks its own span even though an identically named
	// span is ended by the outer function.
	_, sp := obs.Start(ctx, "outer_stage")
	f := func() {
		_, sp := obs.Start(ctx, "shadow_stage")
		keep(sp)
	}
	f()
	sp.End()
}

func ignored(ctx context.Context) {
	_, sp := obs.Start(ctx, "handed_off_stage") //lint:ignore spanend span ownership transfers to keep
	keep(sp)
}
