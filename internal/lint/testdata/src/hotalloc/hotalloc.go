// Package hotalloc is a prooflint fixture: allocation flagging on
// //lint:hotpath routes through the call graph.
package hotalloc

import "fmt"

type point struct{ x, y float64 }

//lint:hotpath fixture: latency-critical kernel
func Hot(n int) float64 {
	p := &point{x: 1}
	s := make([]float64, 0)
	for i := 0; i < n; i++ {
		s = append(s, float64(i))
	}
	_ = fmt.Sprintf("%d", n)
	return p.x + s[0]
}

//lint:hotpath fixture: transitive root
func HotRoot(n int) int {
	return helper(n)
}

// helper is reached transitively from HotRoot; it carries no
// directive of its own.
func helper(n int) int {
	m := map[int]int{}
	m[n] = n
	return len(m)
}

// cold is unreachable from any hot root: its allocations are fine.
func cold() []int {
	return []int{1, 2, 3}
}

//lint:hotpath fixture: string handling
func HotStrings(a, b string) string {
	c := a + b
	d := []byte(c)
	return string(d)
}

func take(v any) { _ = v }

//lint:hotpath fixture: interface boxing
func HotBox(n int) {
	take(n)
	take(&n)
	go spin()
}

func spin() {}

//lint:hotpath fixture: closures allocate
func HotClosure(n int) func() int {
	return func() int { return n }
}

//lint:hotpath fixture: suppression interplay
func HotIgnored(n int) []int {
	//lint:ignore hotalloc preallocated once at startup, measured free
	buf := make([]int, n)
	return buf
}
