package lint

import (
	"bufio"
	"bytes"
	"fmt"
	"sort"
	"strings"
)

// A baseline file lets new analyzers land strict-for-new-code: known
// findings are committed (each with a justification comment) and the
// run fails only on diagnostics not in the file. Entries are keyed by
// "file: analyzer: message" — deliberately without line numbers, so
// unrelated edits above a baselined finding do not invalidate it —
// and matched as a multiset: three identical findings in one file need
// three entries, and fixing one shrinks the allowance.

// BaselineKey renders the baseline identity of a diagnostic.
func BaselineKey(d Diagnostic) string {
	return fmt.Sprintf("%s: %s: %s", d.Pos.Filename, d.Analyzer, d.Message)
}

// ParseBaseline reads a baseline file into a multiset of keys. Blank
// lines and #-comments (the per-entry justifications) are skipped.
func ParseBaseline(data []byte) map[string]int {
	base := map[string]int{}
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		base[line]++
	}
	return base
}

// ApplyBaseline splits diags into the ones not covered by the
// baseline (still position-sorted) and the number it absorbed. stale
// returns baseline entries that matched nothing — fixed findings whose
// entries should be deleted so the allowance cannot be respent.
func ApplyBaseline(diags []Diagnostic, base map[string]int) (fresh []Diagnostic, matched int, stale []string) {
	remaining := make(map[string]int, len(base))
	for k, n := range base {
		remaining[k] = n
	}
	for _, d := range diags {
		key := BaselineKey(d)
		if remaining[key] > 0 {
			remaining[key]--
			matched++
			continue
		}
		fresh = append(fresh, d)
	}
	for k, n := range remaining {
		for i := 0; i < n; i++ {
			stale = append(stale, k)
		}
	}
	sort.Strings(stale)
	return fresh, matched, stale
}

// FormatBaseline renders diagnostics as a baseline file, sorted by
// key so regeneration diffs cleanly.
func FormatBaseline(diags []Diagnostic) []byte {
	keys := make([]string, 0, len(diags))
	for _, d := range diags {
		keys = append(keys, BaselineKey(d))
	}
	sort.Strings(keys)
	var buf bytes.Buffer
	buf.WriteString("# prooflint baseline: known findings that do not fail the run.\n")
	buf.WriteString("# Regenerate with: go run ./cmd/prooflint -write-baseline ./...\n")
	buf.WriteString("# Annotate every entry with a justification comment above it.\n")
	for _, k := range keys {
		buf.WriteString(k)
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}
