package lint

import (
	"go/ast"
	"strings"
)

// defaultCtxScopes are the package-path substrings where the
// ctx-first rule is enforced: the pipeline packages whose exported
// functions fan work out (goroutines, parallel maps) or block
// (channel operations, waits). Everything those packages launch must
// be cancellable from the request context, so the context has to
// arrive as the first parameter — the same contract core.ProfileCtx
// and profsession promise in their docs.
var defaultCtxScopes = []string{
	"internal/core",
	"internal/backend",
	"internal/histstore",
	"internal/memo",
	"internal/parallel",
	"internal/profsession",
	"internal/roofline",
	"internal/server",
	"internal/workload",
}

// CtxFirst flags exported functions in scoped packages that fan out
// or block without taking a context.Context as their first parameter.
type CtxFirst struct {
	scopes []string
}

// NewCtxFirst builds the analyzer; with no arguments it guards the
// default pipeline packages.
func NewCtxFirst(scopes ...string) *CtxFirst {
	if len(scopes) == 0 {
		scopes = defaultCtxScopes
	}
	return &CtxFirst{scopes: scopes}
}

func (*CtxFirst) Name() string { return "ctxfirst" }
func (*CtxFirst) Doc() string {
	return "exported pipeline functions that fan out or block must take ctx context.Context first"
}

// inScope reports whether the file's package directory is guarded.
func (a *CtxFirst) inScope(f *File) bool {
	dir := f.Pkg.Dir + "/"
	for _, s := range a.scopes {
		if strings.Contains(dir, s+"/") || strings.HasSuffix(f.Pkg.Dir, s) {
			return true
		}
	}
	return false
}

func (a *CtxFirst) Check(f *File, r *Reporter) {
	if f.Test || !a.inScope(f) {
		return
	}
	for _, decl := range f.AST.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil || !fn.Name.IsExported() {
			continue
		}
		if hasCtxFirstParam(fn.Type) {
			continue
		}
		if what := blockingConstruct(fn.Body); what != "" {
			r.Report(fn.Name.Pos(),
				"exported function %s %s but does not take ctx context.Context as its first parameter",
				fn.Name.Name, what)
		}
	}
}

// hasCtxFirstParam reports whether the first parameter is typed
// context.Context (by syntax).
func hasCtxFirstParam(ft *ast.FuncType) bool {
	if ft.Params == nil || len(ft.Params.List) == 0 {
		return false
	}
	sel, ok := ft.Params.List[0].Type.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == "context" && sel.Sel.Name == "Context"
}

// selectHasDefault reports whether a select statement has a default
// clause (making every channel operation in it a non-blocking poll).
func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, clause := range sel.Body.List {
		if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// blockingConstruct returns a description of the first fan-out or
// blocking construct in the function's own body (nested function
// literals excluded: a closure blocks whoever eventually calls it,
// not this function), or "".
func blockingConstruct(body *ast.BlockStmt) string {
	found := ""
	walkSameFunc(body, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		switch x := n.(type) {
		case *ast.GoStmt:
			found = "starts goroutines"
		case *ast.SelectStmt:
			if !selectHasDefault(x) {
				found = "blocks in select"
				return false
			}
			// A select with a default never blocks: its channel
			// operations are polls. Only the case bodies can block.
			for _, clause := range x.Body.List {
				if found != "" {
					break
				}
				if cc, ok := clause.(*ast.CommClause); ok {
					found = blockingConstruct(&ast.BlockStmt{List: cc.Body})
				}
			}
			return false
		case *ast.SendStmt:
			found = "sends on a channel"
		case *ast.UnaryExpr:
			if x.Op.String() == "<-" {
				found = "receives from a channel"
			}
		case *ast.CallExpr:
			if isPkgCall(x, "time", "Sleep") {
				found = "sleeps"
			} else if methodName(x) == "Wait" {
				found = "waits on " + recvPath(x)
			}
		}
		return found == ""
	})
	return found
}
