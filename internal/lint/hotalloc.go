package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"runtime"
	"strings"
)

// hotpathPrefix marks a function as a zero-alloc hot path root in its
// doc comment: //lint:hotpath <reason>.
const hotpathPrefix = "//lint:hotpath"

// HotAlloc is the enforcement arm of the zero-alloc pass (ROADMAP
// item 5): functions marked //lint:hotpath (or listed in Roots) are
// walked transitively through the call graph, and every
// allocation-inducing construct on the way is flagged — escaping
// composite literals, slice/map literals, make/new, string
// concatenation and string<->[]byte conversions, fmt calls, interface
// boxing of concrete values, append growth inside loops, closures and
// goroutine launches. The analyzer is deliberately conservative
// (escape analysis may prove some sites free); intentional
// allocations on cold branches carry //lint:ignore hotalloc with the
// measurement that justifies them, and the testing.AllocsPerRun == 0
// assertions stay the ground truth.
type HotAlloc struct {
	// Roots lists extra hot-path entry points by FuncKey ("pkg.Func"
	// or "pkg.(Type).Method") for call sites that cannot carry a
	// //lint:hotpath directive (e.g. generated code).
	Roots []string
}

// NewHotAlloc returns the analyzer.
func NewHotAlloc() *HotAlloc { return &HotAlloc{} }

// Name implements Analyzer.
func (*HotAlloc) Name() string { return "hotalloc" }

// Doc implements Analyzer.
func (*HotAlloc) Doc() string {
	return "flag allocation-inducing constructs reachable from //lint:hotpath functions"
}

// Check implements Analyzer; hotalloc works only at program scope.
func (*HotAlloc) Check(*File, *Reporter) {}

// CheckProgram implements ProgramAnalyzer.
func (a *HotAlloc) CheckProgram(prog *Program, r *Reporter) {
	extra := map[string]bool{}
	for _, key := range a.Roots {
		extra[key] = true
	}
	// Seed the walk with annotated and config-listed roots.
	type item struct {
		node *FuncNode
		root string
	}
	var queue []item
	visited := map[*types.Func]bool{}
	for _, node := range prog.Graph.Funcs() {
		if hasHotpathDirective(node.Decl) || extra[FuncKey(node.Fn)] {
			queue = append(queue, item{node, node.Fn.Name()})
			visited[node.Fn] = true
		}
	}
	scan := newAllocScanner(prog, r)
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		if prog.InScope(prog.Fset.Position(it.node.Decl.Pos()).Filename) {
			scan.function(it.node, it.root)
		}
		for _, site := range it.node.Calls {
			if site.InClosure {
				continue // the closure itself is flagged; its body runs elsewhere
			}
			// Interface-dispatched Error() fans out to every error
			// implementation in the program, and error stringification
			// only runs once a failure already happened — cold by
			// convention, so it stays outside the hot-path walk.
			if site.Iface && isErrorMethod(site.Callees) {
				continue
			}
			for _, callee := range site.Callees {
				next := prog.Graph.Node(callee)
				if next == nil || visited[callee] {
					continue
				}
				visited[callee] = true
				queue = append(queue, item{next, it.root})
			}
		}
	}
}

// isErrorMethod reports whether the resolved callees are Error()
// string implementations — the error interface's only method.
func isErrorMethod(callees []*types.Func) bool {
	for _, fn := range callees {
		if fn.Name() != "Error" {
			return false
		}
		sig, _ := fn.Type().(*types.Signature)
		if sig == nil || sig.Params().Len() != 0 || sig.Results().Len() != 1 {
			return false
		}
		basic, ok := sig.Results().At(0).Type().(*types.Basic)
		if !ok || basic.Kind() != types.String {
			return false
		}
	}
	return len(callees) > 0
}

// hasHotpathDirective reports whether the function's doc comment
// carries //lint:hotpath.
func hasHotpathDirective(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(c.Text, hotpathPrefix) {
			rest := strings.TrimPrefix(c.Text, hotpathPrefix)
			if rest == "" || rest[0] == ' ' || rest[0] == '\t' {
				return true
			}
		}
	}
	return false
}

// allocScanner walks one function body flagging allocation-inducing
// constructs.
type allocScanner struct {
	prog  *Program
	r     *Reporter
	sizes types.Sizes
}

func newAllocScanner(prog *Program, r *Reporter) *allocScanner {
	sizes := types.SizesFor("gc", runtime.GOARCH)
	if sizes == nil {
		sizes = types.SizesFor("gc", "amd64")
	}
	return &allocScanner{prog: prog, r: r, sizes: sizes}
}

func (s *allocScanner) report(pos token.Pos, root, format string, args ...any) {
	args = append(args, root)
	s.r.Report(pos, format+" (hot path via %s)", args...)
}

// function scans one hot function's body.
func (s *allocScanner) function(node *FuncNode, root string) {
	s.walk(node.Decl.Body, root, false)
}

// walk descends n, tracking whether the traversal is inside a loop
// (append growth only matters there).
func (s *allocScanner) walk(n ast.Node, root string, inLoop bool) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.ForStmt:
			s.walkLoop(node.Init, node.Cond, node.Post, node.Body, root)
			return false
		case *ast.RangeStmt:
			s.walk(node.X, root, inLoop)
			s.walkLoop(nil, nil, nil, node.Body, root)
			return false
		case *ast.FuncLit:
			s.report(node.Pos(), root, "function literal allocates a closure")
			return false
		case *ast.GoStmt:
			s.report(node.Pos(), root, "go statement allocates a goroutine")
			return true
		case *ast.UnaryExpr:
			if node.Op == token.AND {
				if _, ok := ast.Unparen(node.X).(*ast.CompositeLit); ok {
					s.report(node.Pos(), root, "address of composite literal escapes to the heap")
					return false
				}
			}
		case *ast.CompositeLit:
			switch s.typeOf(node).Underlying().(type) {
			case *types.Slice:
				s.report(node.Pos(), root, "slice literal allocates")
			case *types.Map:
				s.report(node.Pos(), root, "map literal allocates")
			}
		case *ast.BinaryExpr:
			// Report a concat chain (a + b + c) once, at its first +:
			// the chain's ADD nodes all share the same position and
			// would only duplicate the diagnostic.
			if node.Op == token.ADD && s.isNonConstString(node) && !s.isStringAdd(node.X) {
				s.report(node.Pos(), root, "string concatenation allocates")
			}
		case *ast.CallExpr:
			s.call(node, root, inLoop)
		}
		return true
	})
}

// walkLoop scans a loop: header outside the loop context, body inside.
func (s *allocScanner) walkLoop(init, cond, post ast.Node, body *ast.BlockStmt, root string) {
	for _, h := range []ast.Node{init, cond, post} {
		if h != nil {
			s.walk(h, root, false)
		}
	}
	s.walk(body, root, true)
}

func (s *allocScanner) typeOf(e ast.Expr) types.Type {
	if tv, ok := s.prog.Info.Types[e]; ok && tv.Type != nil {
		return tv.Type
	}
	return types.Typ[types.Invalid]
}

// isStringAdd reports whether e is itself a non-constant string
// concatenation (the left spine of a concat chain).
func (s *allocScanner) isStringAdd(e ast.Expr) bool {
	b, ok := ast.Unparen(e).(*ast.BinaryExpr)
	return ok && b.Op == token.ADD && s.isNonConstString(b)
}

// isNonConstString reports whether e is a string expression not folded
// to a constant (constant concatenation happens at compile time).
func (s *allocScanner) isNonConstString(e *ast.BinaryExpr) bool {
	tv, ok := s.prog.Info.Types[e]
	if !ok || tv.Type == nil || tv.Value != nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsString != 0
}

// call handles the call-shaped allocation sources: conversions,
// builtins, fmt, and interface boxing of arguments.
func (s *allocScanner) call(call *ast.CallExpr, root string, inLoop bool) {
	if tv, ok := s.prog.Info.Types[call.Fun]; ok && tv.IsType() {
		s.conversion(call, tv.Type, root)
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := s.prog.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				s.report(call.Pos(), root, "make allocates")
			case "new":
				s.report(call.Pos(), root, "new allocates")
			case "append":
				if inLoop {
					s.report(call.Pos(), root, "append inside a loop may grow the backing array; preallocate capacity")
				}
			}
			return
		}
	}
	if callee, _ := resolveCallee(s.prog.Info, call); callee != nil && callee.Pkg() != nil && callee.Pkg().Path() == "fmt" {
		s.report(call.Pos(), root, "fmt.%s allocates (formatting boxes every operand)", callee.Name())
		return
	}
	s.boxing(call, root)
}

// conversion flags string<->[]byte conversions, which copy.
func (s *allocScanner) conversion(call *ast.CallExpr, to types.Type, root string) {
	if len(call.Args) != 1 {
		return
	}
	from := s.typeOf(call.Args[0])
	if isStringType(to) && isByteSlice(from) {
		s.report(call.Pos(), root, "[]byte-to-string conversion copies")
	}
	if isByteSlice(to) && isStringType(from) {
		s.report(call.Pos(), root, "string-to-[]byte conversion copies")
	}
}

// boxing flags concrete non-pointer values passed into interface
// parameters (the conversion heap-allocates unless the value is
// zero-size or escape analysis saves it).
func (s *allocScanner) boxing(call *ast.CallExpr, root string) {
	sig, _ := s.typeOf(call.Fun).(*types.Signature)
	if sig == nil {
		return
	}
	args := call.Args
	if se, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if sel, ok := s.prog.Info.Selections[se]; ok && sel.Kind() == types.MethodExpr && len(args) > 0 {
			args = args[1:]
		}
	}
	n := sig.Params().Len()
	fixed := n
	if sig.Variadic() {
		fixed--
	}
	for i, arg := range args {
		var param types.Type
		switch {
		case i < fixed:
			param = sig.Params().At(i).Type()
		case sig.Variadic():
			if call.Ellipsis.IsValid() {
				return // f(xs...) forwards an existing slice, no per-element boxing
			}
			slice, ok := sig.Params().At(n - 1).Type().(*types.Slice)
			if !ok {
				return
			}
			param = slice.Elem()
		default:
			return
		}
		if s.boxes(param, arg) {
			s.report(arg.Pos(), root, "%s argument is boxed into %s", s.typeOf(arg), param)
		}
	}
}

// boxes reports whether passing arg as param heap-allocates: param is
// an interface, arg is a concrete non-pointer value of non-zero size
// and not an untyped nil or constant... constants of pointer-free
// scalar kinds still box, so only nil and zero-size values are exempt.
func (s *allocScanner) boxes(param types.Type, arg ast.Expr) bool {
	if !types.IsInterface(param) {
		return false
	}
	tv, ok := s.prog.Info.Types[arg]
	if !ok || tv.Type == nil || tv.IsNil() {
		return false
	}
	at := tv.Type
	if types.IsInterface(at) {
		return false // interface-to-interface carries the existing box
	}
	switch at.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false // pointer-shaped: the word itself is stored
	}
	if s.sizes.Sizeof(at) == 0 {
		return false // zero-size values share runtime.zerobase
	}
	return true
}

func isStringType(t types.Type) bool {
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	slice, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	basic, ok := slice.Elem().Underlying().(*types.Basic)
	return ok && basic.Kind() == types.Byte
}
