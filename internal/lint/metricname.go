package lint

import (
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strconv"
)

// registryMethods are the obs.Registry constructors whose first
// argument is a metric family name.
var registryMethods = map[string]bool{
	"Counter":      true,
	"CounterVec":   true,
	"CounterFunc":  true,
	"Gauge":        true,
	"GaugeVec":     true,
	"GaugeFunc":    true,
	"Histogram":    true,
	"HistogramVec": true,
}

var (
	// snakeName is the full-name rule: Prometheus-compatible
	// lower-snake-case with no leading/trailing underscore.
	snakeName = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)*$`)
	// snakeFragment is the looser rule for pieces of concatenated
	// names ("_session_", "hits_total"): only the legal character set
	// is checkable, since the fragment's underscore placement depends
	// on its neighbors.
	snakeFragment = regexp.MustCompile(`^[a-z0-9_]+$`)
)

// metricPrefix is the process-wide namespace every fully-literal
// metric family name must carry, so /metrics stays greppable and two
// subsystems cannot collide with generic names like "requests_total".
const metricPrefix = "proofd_"

// MetricName enforces the naming conventions for metric families and
// span names, and detects the same fully-literal metric name being
// registered from two different packages — the collision obs.Registry
// would only surface at runtime (as an ErrMetricConflict or, worse,
// two subsystems silently sharing one counter).
type MetricName struct {
	// firstSeen maps fully-literal metric names to the package and
	// position that registered them first (non-test files only).
	firstSeen map[string]metricSite
	dups      []Diagnostic
}

type metricSite struct {
	pkg string
	pos token.Position
}

// NewMetricName builds the analyzer.
func NewMetricName() *MetricName {
	return &MetricName{firstSeen: map[string]metricSite{}}
}

func (*MetricName) Name() string { return "metricname" }
func (*MetricName) Doc() string {
	return "metric/span name literals must be snake_case (metrics proofd_-prefixed), unique across packages"
}

func (a *MetricName) Check(f *File, r *Reporter) {
	ast.Inspect(f.AST, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch {
		case registryMethods[methodName(call)] && len(call.Args) >= 1:
			a.checkName(f, r, call.Args[0], "metric", true)
		case isPkgCall(call, "obs", "Start") && len(call.Args) >= 2:
			a.checkName(f, r, call.Args[1], "span", false)
		}
		return true
	})
}

// checkName validates one name argument. Full string literals get the
// complete rule set; concatenations get per-fragment character
// checks; dynamic names (idents, calls) are out of syntactic reach
// and pass.
func (a *MetricName) checkName(f *File, r *Reporter, arg ast.Expr, kind string, isMetric bool) {
	if f.Test {
		return // test registries may use throwaway names
	}
	switch e := arg.(type) {
	case *ast.BasicLit:
		if e.Kind != token.STRING {
			return
		}
		name, err := strconv.Unquote(e.Value)
		if err != nil {
			return
		}
		if !snakeName.MatchString(name) {
			r.Report(e.Pos(), "%s name %q is not snake_case", kind, name)
			return
		}
		if !isMetric {
			return
		}
		if len(name) < len(metricPrefix) || name[:len(metricPrefix)] != metricPrefix {
			r.Report(e.Pos(), "metric name %q lacks the %q namespace prefix", name, metricPrefix)
			return
		}
		pos := f.Fset.Position(e.Pos())
		if first, ok := a.firstSeen[name]; ok {
			if first.pkg != f.Pkg.Dir {
				a.dups = append(a.dups, Diagnostic{
					Pos:      pos,
					Analyzer: a.Name(),
					Message: "metric " + strconv.Quote(name) + " already registered by package " +
						first.pkg + " (" + first.pos.String() + ")",
				})
			}
			return
		}
		a.firstSeen[name] = metricSite{pkg: f.Pkg.Dir, pos: pos}
	case *ast.BinaryExpr:
		if e.Op != token.ADD {
			return
		}
		a.checkFragments(r, e, kind)
	}
}

// checkFragments walks a + concatenation and validates each string
// literal operand's character set.
func (a *MetricName) checkFragments(r *Reporter, e ast.Expr, kind string) {
	switch x := e.(type) {
	case *ast.BinaryExpr:
		if x.Op != token.ADD {
			return
		}
		a.checkFragments(r, x.X, kind)
		a.checkFragments(r, x.Y, kind)
	case *ast.BasicLit:
		if x.Kind != token.STRING {
			return
		}
		frag, err := strconv.Unquote(x.Value)
		if err != nil || frag == "" {
			return
		}
		if !snakeFragment.MatchString(frag) {
			r.Report(x.Pos(), "%s name fragment %q contains non-snake_case characters", kind, frag)
		}
	}
}

// Finish emits the cross-package duplicates in deterministic order.
func (a *MetricName) Finish(r *Reporter) {
	sort.Slice(a.dups, func(i, j int) bool {
		if a.dups[i].Pos.Filename != a.dups[j].Pos.Filename {
			return a.dups[i].Pos.Filename < a.dups[j].Pos.Filename
		}
		return a.dups[i].Pos.Line < a.dups[j].Pos.Line
	})
	for _, d := range a.dups {
		r.ReportAt(d.Pos, "%s", d.Message)
	}
}
