package lint

import (
	"go/ast"
	"go/types"
)

// CtxFlow is the interprocedural context-threading analyzer. Where
// ctxfirst checks signatures syntactically (ctx exists and comes
// first), ctxflow follows the context through the call graph:
//
//   - a function that already has a ctx parameter must thread it —
//     minting context.Background()/context.TODO() there severs the
//     caller's cancellation and deadline chain;
//   - context.Background()/context.TODO() are forbidden everywhere
//     else except main, init, tests, and single-statement
//     compatibility wrappers (a no-ctx function whose whole body
//     forwards to the ctx variant is the sanctioned bridge for old
//     call sites);
//   - nil must never be passed where a callee expects a
//     context.Context (ctx.Done() on a nil interface panics at use,
//     far from the call site that caused it).
type CtxFlow struct{}

// NewCtxFlow returns the analyzer.
func NewCtxFlow() *CtxFlow { return &CtxFlow{} }

// Name implements Analyzer.
func (*CtxFlow) Name() string { return "ctxflow" }

// Doc implements Analyzer.
func (*CtxFlow) Doc() string {
	return "thread held contexts to callees; context.Background()/TODO() only in main, tests and compatibility wrappers"
}

// Check implements Analyzer; ctxflow works only at program scope.
func (*CtxFlow) Check(*File, *Reporter) {}

// CheckProgram implements ProgramAnalyzer.
func (a *CtxFlow) CheckProgram(prog *Program, r *Reporter) {
	for _, node := range prog.Graph.Funcs() {
		if !prog.InScope(prog.Fset.Position(node.Decl.Pos()).Filename) {
			continue
		}
		a.checkFunc(prog, node, r)
	}
}

func (a *CtxFlow) checkFunc(prog *Program, node *FuncNode, r *Reporter) {
	hasCtx := hasCtxParam(node.Fn)
	for _, site := range node.Calls {
		callee := site.Callees[0]
		switch FuncKey(callee) {
		case "context.Background", "context.TODO":
			switch {
			case hasCtx:
				r.Report(site.Pos, "context.%s() in a function that has a ctx parameter; thread ctx instead", callee.Name())
			case isEntryPoint(node.Fn), isForwardingWrapper(node.Decl):
				// main, init and single-statement compatibility
				// wrappers are where root contexts legitimately start.
			default:
				r.Report(site.Pos, "context.%s() outside main or tests; accept a ctx parameter and thread it", callee.Name())
			}
			continue
		}
		a.checkNilCtxArgs(prog, site, callee, r)
	}
}

// checkNilCtxArgs flags literal nil passed in a context.Context
// parameter position.
func (a *CtxFlow) checkNilCtxArgs(prog *Program, site CallSite, callee *types.Func, r *Reporter) {
	sig, _ := callee.Type().(*types.Signature)
	if sig == nil {
		return
	}
	args := site.Call.Args
	// Method expressions (T.M(recv, ...)) carry the receiver as the
	// first argument; realign.
	if se, ok := ast.Unparen(site.Call.Fun).(*ast.SelectorExpr); ok {
		if sel, ok := prog.Info.Selections[se]; ok && sel.Kind() == types.MethodExpr && len(args) > 0 {
			args = args[1:]
		}
	}
	n := sig.Params().Len()
	if sig.Variadic() {
		n--
	}
	for i := 0; i < n && i < len(args); i++ {
		if !isCtxType(sig.Params().At(i).Type()) {
			continue
		}
		arg := ast.Unparen(args[i])
		if id, ok := arg.(*ast.Ident); ok && id.Name == "nil" && prog.Info.Types[args[i]].IsNil() {
			r.Report(args[i].Pos(), "nil passed as context.Context to %s; pass the caller's ctx", callee.Name())
		}
	}
}

// isCtxType reports whether t is context.Context.
func isCtxType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// hasCtxParam reports whether fn declares a context.Context parameter.
func hasCtxParam(fn *types.Func) bool {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isCtxType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// isEntryPoint reports whether fn is package main's main or an init
// function — the places a root context legitimately starts.
func isEntryPoint(fn *types.Func) bool {
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		return false
	}
	switch fn.Name() {
	case "main":
		return fn.Pkg() != nil && fn.Pkg().Name() == "main"
	case "init":
		return true
	}
	return false
}

// isForwardingWrapper reports whether fd's whole body is one
// forwarding statement — the shape of a compatibility shim like
//
//	func Profile(m Model) (Report, error) { return ProfileCtx(context.Background(), m) }
//
// which exists precisely to mint a root context for legacy callers.
func isForwardingWrapper(fd *ast.FuncDecl) bool {
	if fd.Body == nil || len(fd.Body.List) != 1 {
		return false
	}
	switch stmt := fd.Body.List[0].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		_, ok := stmt.X.(*ast.CallExpr)
		return ok
	}
	return false
}
